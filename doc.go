// Package outran is a from-scratch Go reproduction of "OutRAN:
// Co-optimizing for Flow Completion Time in Radio Access Network"
// (CoNEXT 2022): a discrete-event LTE/5G downlink simulator with a
// full base-station user plane (PDCP, RLC UM/AM, per-RB MAC
// scheduling, HARQ), TCP-Cubic end hosts, and the OutRAN flow
// scheduler — per-UE MLFQ intra-user scheduling plus ε-relaxed
// inter-user re-selection — alongside the PF/MT/RR/SRJF/PSS/CQA
// baselines and a harness that regenerates every table and figure of
// the paper's evaluation. See README.md, DESIGN.md and EXPERIMENTS.md.
package outran
