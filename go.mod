module outran

go 1.22
