package ran

import "outran/internal/sim"

// This file holds the cell's hot-path arenas: free lists for the two
// object populations that used to be allocated per event — transport
// blocks (one per served grant, recycled when the HARQ process ends)
// and flow runtimes (one per flow, recycled after completion). At
// city scale these dominate steady-state garbage: a 64-cell × 2000-UE
// deployment creates millions of flows and tens of millions of TBs,
// all of identical shape and bounded lifetime.
//
// Recycling changes memory identity only, never simulated values:
// every recycled object is field-reset to exactly the state a fresh
// allocation would have, and every map walk that could observe
// pointer identity is already //outran:orderfree or sorted. Traces,
// KPI streams and checkpoints stay byte-identical.
//
// The arenas themselves are dead state — they hold only terminated
// objects — so snapshots neither encode nor restore them; a resumed
// run simply regrows its free lists.

// deadFlow is one retired flow runtime resting in the graveyard until
// its reuse hold expires.
type deadFlow struct {
	fr        *flowRuntime
	retiredAt sim.Time
}

// flowHold is how long a retired flow runtime rests before reuse.
// Uplink ACK events scheduled before the flow completed still capture
// the sender directly and fire up to Path.UplinkDelay later (a
// completed sender ignores them); reusing the sender earlier would
// let a stale ACK land on the next flow's state. One uplink delay is
// the hard bound; doubled for margin, and reclaimFlow additionally
// requires strictly later simulation time so same-instant stragglers
// (UplinkDelay == 0) have fired before reuse.
func (c *Cell) flowHold() sim.Time { return 2 * c.cfg.Path.UplinkDelay }

// newTB returns a zeroed transport block, recycling one retired by
// putTB when available. The recycled pdus and subbands slices keep
// their capacity, so the steady state allocates nothing.
//
//outran:allocfree
func (c *Cell) newTB() *harqTB {
	if n := len(c.tbFree); n > 0 {
		tb := c.tbFree[n-1]
		c.tbFree[n-1] = nil
		c.tbFree = c.tbFree[:n-1]
		return tb
	}
	//outran:allocok cold path: the free list grows to the in-flight TB population once, then every TB recycles
	return &harqTB{}
}

// putTB retires a terminated transport block to the free list. The
// caller must hold the only live reference: tbArrive retires a TB
// only on its two termination paths, after the pending-event registry
// entry has been deleted at fire time and the TB is off harqPending.
// PDU pointers are cleared so the free list does not pin delivered
// PDUs (in AM mode they may still be live in the retransmission
// window — the window keeps its own references).
//
//outran:allocfree
func (c *Cell) putTB(tb *harqTB) {
	for i := range tb.pdus {
		tb.pdus[i] = nil
	}
	tb.pdus = tb.pdus[:0]
	tb.bits = 0
	tb.attempts = 0
	tb.readyAt = 0
	tb.reqSINR = 0
	tb.subbands = tb.subbands[:0]
	tb.waited = 0
	//outran:allocok amortized free-list growth, bounded by the in-flight TB population; steady state reuses capacity
	c.tbFree = append(c.tbFree, tb)
}

// retireFlow parks a completed flow runtime in the graveyard. The
// flow must already be out of the UE's flow table (or displaced by a
// successor on the same tuple), so nothing simulated can reach it;
// the closures are dropped here so the graveyard retains only the
// three structs it will recycle.
func (c *Cell) retireFlow(fr *flowRuntime) {
	fr.onComplete = nil
	fr.sender.Send = nil
	fr.sender.OnComplete = nil
	fr.receiver.SendAck = nil
	fr.receiver.OnDeliver = nil
	c.flowGrave = append(c.flowGrave, deadFlow{fr: fr, retiredAt: c.Eng.Now()})
}

// reclaimFlow pops the oldest graveyard entry whose hold has expired,
// or nil when none is ready. Retirement order is time order, so only
// the head can ever be ready. The strict time comparison guarantees
// every event scheduled at or before retirement has already fired.
func (c *Cell) reclaimFlow() *flowRuntime {
	if c.graveHead >= len(c.flowGrave) {
		return nil
	}
	d := c.flowGrave[c.graveHead]
	if c.Eng.Now() <= d.retiredAt+c.flowHold() {
		return nil
	}
	c.flowGrave[c.graveHead].fr = nil
	c.graveHead++
	switch {
	case c.graveHead == len(c.flowGrave):
		c.flowGrave = c.flowGrave[:0]
		c.graveHead = 0
	case c.graveHead >= 1024 && c.graveHead*2 >= len(c.flowGrave):
		// Compact the consumed prefix so a never-idle cell cannot grow
		// the graveyard without bound.
		n := copy(c.flowGrave, c.flowGrave[c.graveHead:])
		for i := n; i < len(c.flowGrave); i++ {
			c.flowGrave[i] = deadFlow{}
		}
		c.flowGrave = c.flowGrave[:n]
		c.graveHead = 0
	}
	return d.fr
}

// ArenaStats reports the current free-list populations (testing and
// memory accounting).
func (c *Cell) ArenaStats() (freeTBs, deadFlows int) {
	return len(c.tbFree), len(c.flowGrave) - c.graveHead
}
