package ran

import (
	"fmt"

	"outran/internal/core"
	"outran/internal/mac"
	"outran/internal/obs"
	"outran/internal/sim"
	"outran/internal/snapshot"
)

// kpiState is the cell's live-telemetry accumulation between samples.
// It exists only when Config.KPIEvery > 0 and is mutated exclusively
// from simulation state, so the KPI stream is byte-identical across
// same-seed runs and worker counts. Sampling is driven externally at
// run barriers — the cell schedules no events for it, keeping the
// checkpoint pending-event registry untouched.
type kpiState struct {
	win     *obs.Histogram // FCT ms, current window
	winDone *obs.Histogram // FCT ms, window closed by the last sample
	cum     *obs.Histogram // FCT ms, whole run

	lastT         sim.Time
	lastBits      int64
	lastHARQTx    uint64
	lastHARQRetx  uint64
	lastDecisions uint64
	lastSacSum    float64
}

func newKPIState() *kpiState {
	b := obs.KPIBuckets()
	return &kpiState{
		win:     obs.NewHistogram(b),
		winDone: obs.NewHistogram(b),
		cum:     obs.NewHistogram(b),
	}
}

// observeKPIFCT feeds one recorded completion into the KPI windows
// (called from the flow completion hook; no-op when KPI is off).
func (c *Cell) observeKPIFCT(fct sim.Time) {
	if c.kpi == nil {
		return
	}
	ms := float64(fct) / float64(sim.Millisecond)
	c.kpi.win.Observe(ms)
	c.kpi.cum.Observe(ms)
}

// KPIEnabled reports whether the cell accumulates live KPI state.
func (c *Cell) KPIEnabled() bool { return c.kpi != nil }

// SampleKPI closes the current KPI window at now and returns the
// sample: the emitted record plus the mergeable state a deployment
// roll-up needs. The returned Win histogram stays valid until the
// next SampleKPI call; Cum for the cell's lifetime. The record's Cell
// field is 0 — deployment callers overwrite it with the cell index.
//
// Calling SampleKPI is part of the cell's deterministic state
// evolution: a restored cell must replay the same sampling instants
// (discarding the output) to stay byte-identical with a crash-free
// run.
func (c *Cell) SampleKPI(now sim.Time) obs.KPISample {
	k := c.kpi
	if k == nil {
		panic("ran: SampleKPI on a cell without Config.KPIEvery")
	}
	rec := obs.KPIRecord{V: obs.KPISchemaVersion, T: now}

	rec.WinFlows = int64(k.win.Count())
	rec.WinP50Ms = k.win.Quantile(0.50)
	rec.WinP99Ms = k.win.Quantile(0.99)
	rec.CumFlows = int64(k.cum.Count())
	rec.CumP50Ms = k.cum.Quantile(0.50)
	rec.CumP99Ms = k.cum.Quantile(0.99)

	// Window spectral efficiency from the tracker's cumulative bit
	// count. A tracker reset (warmup cut) rewinds the counter; the
	// window then re-anchors at zero, deterministically.
	totalBits := c.Tracker.TotalBits()
	if totalBits < k.lastBits {
		k.lastBits = 0
	}
	if dur := (now - k.lastT).Seconds(); dur > 0 && c.grid.BandwidthHz() > 0 {
		rec.SE = float64(totalBits-k.lastBits) / dur / c.grid.BandwidthHz()
	}

	// Jain fairness over the users' long-term average throughputs,
	// with the raw moments retained for cross-cell aggregation.
	var fairSum, fairSumSq float64
	for _, u := range c.macUsers {
		t := u.AvgTputBps
		if t < 0 {
			t = 0
		}
		fairSum += t
		fairSumSq += t * t
	}
	rec.Fairness = 1
	if fairSumSq != 0 {
		rec.Fairness = fairSum * fairSum / (float64(len(c.macUsers)) * fairSumSq)
	}

	// Load: in-flight flows and RLC backlog per MLFQ priority level.
	// Status returns entity-owned scratch; the bytes are folded into
	// the record's own slice immediately.
	for _, ue := range c.ues {
		rec.ActiveFlows += len(ue.flows)
		var st mac.BufferStatus
		if ue.umTx != nil {
			st = ue.umTx.Status(now)
		} else {
			st = ue.amTx.Status(now)
		}
		for i, b := range st.PerPriority {
			if i >= len(rec.QueueBytes) {
				rec.QueueBytes = append(rec.QueueBytes, 0)
			}
			rec.QueueBytes[i] += int64(b)
		}
	}

	// HARQ activity in the window.
	tx, retx := c.ctrHARQTx.Value(), c.ctrHARQRetx.Value()
	rec.WinHARQTx = int64(tx - k.lastHARQTx)
	rec.WinHARQRetx = int64(retx - k.lastHARQRetx)
	if rec.WinHARQTx > 0 {
		rec.HARQRetxRate = float64(rec.WinHARQRetx) / float64(rec.WinHARQTx)
	}
	k.lastHARQTx, k.lastHARQRetx = tx, retx

	// ε-relaxation activity in the window (OutRAN schedulers only).
	if iu, ok := c.sched.(*core.InterUser); ok {
		dec, _, sac := iu.Audit()
		rec.WinDecisions = int64(dec - k.lastDecisions)
		rec.WinSacSum = sac - k.lastSacSum
		if rec.WinDecisions > 0 {
			rec.Sacrifice = rec.WinSacSum / float64(rec.WinDecisions)
		}
		k.lastDecisions, k.lastSacSum = dec, sac
	}

	k.lastT = now
	k.lastBits = totalBits

	// Close the window: the just-filled histogram becomes the
	// returned one, the previous return buffer is recycled as the new
	// (empty) window.
	k.win, k.winDone = k.winDone, k.win
	k.win.Reset()

	return obs.KPISample{
		Rec:         rec,
		Win:         k.winDone,
		Cum:         k.cum,
		FairSum:     fairSum,
		FairSumSq:   fairSumSq,
		FairN:       len(c.macUsers),
		BandwidthHz: c.grid.BandwidthHz(),
	}
}

// tagKPI is the structural sentinel of the cell's kpi snapshot
// section.
const tagKPI = 0x2a09

// snapshotKPI encodes the KPI accumulation state. The winDone buffer
// is excluded on purpose: it only carries the previous sample's
// return value and is recycled (reset) before its content is ever
// read again.
func (c *Cell) snapshotKPI(e *snapshot.Encoder) {
	k := c.kpi
	e.Mark(tagKPI)
	k.win.Snapshot(e)
	k.cum.Snapshot(e)
	e.I64(int64(k.lastT))
	e.I64(k.lastBits)
	e.U64(k.lastHARQTx)
	e.U64(k.lastHARQRetx)
	e.U64(k.lastDecisions)
	e.F64(k.lastSacSum)
}

func (c *Cell) restoreKPI(d *snapshot.Decoder) error {
	k := c.kpi
	d.Expect(tagKPI)
	if err := k.win.RestoreSnapshot(d); err != nil {
		return fmt.Errorf("restoring kpi window: %w", err)
	}
	if err := k.cum.RestoreSnapshot(d); err != nil {
		return fmt.Errorf("restoring kpi cumulative: %w", err)
	}
	k.lastT = sim.Time(d.I64())
	k.lastBits = d.I64()
	k.lastHARQTx = d.U64()
	k.lastHARQRetx = d.U64()
	k.lastDecisions = d.U64()
	k.lastSacSum = d.F64()
	if err := d.Err(); err != nil {
		return fmt.Errorf("restoring kpi state: %w", err)
	}
	return nil
}
