package ran

import (
	"testing"

	"outran/internal/sim"
	"outran/internal/transport"
)

// TestArenaRecyclesTransportBlocks: after a backlogged run, terminated
// TBs must be parked on the free list (serveUE draws from it), not
// left to the garbage collector.
func TestArenaRecyclesTransportBlocks(t *testing.T) {
	cell := backloggedCell(t)
	cell.Run(200 * sim.Millisecond)
	freeTBs, _ := cell.ArenaStats()
	if freeTBs == 0 {
		t.Fatal("no transport blocks on the free list after a backlogged run")
	}
	st := cell.CollectStats()
	if st.TTIs == 0 {
		t.Fatal("cell did not run")
	}
	// The free list holds only idle TBs: bounded by the in-flight HARQ
	// population, not the TB count of the whole run.
	if uint64(freeTBs) >= cell.ctrHARQTx.Value() {
		t.Fatalf("free list (%d) as large as total TB transmissions (%d); TBs are not recycling",
			freeTBs, cell.ctrHARQTx.Value())
	}
}

// TestArenaRecyclesFlowRuntimes: sequential flows spaced past the
// graveyard hold must reuse the retired runtime — the graveyard
// drains back to (at most) the final flow instead of accumulating one
// corpse per flow.
func TestArenaRecyclesFlowRuntimes(t *testing.T) {
	cfg := smallConfig(SchedPF)
	cell, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const flows = 8
	completed := 0
	var startNext func()
	startNext = func() {
		err := cell.StartFlow(0, 20*1024, FlowOptions{OnComplete: func(sim.Time) {
			completed++
			if completed < flows {
				// Well past flowHold (2×UplinkDelay), so the next
				// StartFlow reclaims this flow's runtime.
				cell.Eng.After(cell.flowHold()+10*sim.Millisecond, startNext)
			}
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	cell.Eng.At(sim.Millisecond, startNext)
	cell.Run(20 * sim.Second)
	if completed != flows {
		t.Fatalf("completed %d flows, want %d", completed, flows)
	}
	_, dead := cell.ArenaStats()
	if dead != 1 {
		t.Fatalf("graveyard holds %d runtimes after %d sequential flows, want exactly 1 (each start reclaimed its predecessor)",
			dead, flows)
	}
}

// TestArenaHoldBlocksImmediateReuse: a runtime retired at time T must
// not be reclaimable at T (stale uplink-ACK closures may still be
// scheduled); it becomes reclaimable only strictly after the hold.
func TestArenaHoldBlocksImmediateReuse(t *testing.T) {
	cfg := smallConfig(SchedPF)
	cell, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cell.retireFlow(&flowRuntime{
		sender:   transport.NewSender(cell.Eng, cell.cfg.Transport, cell.allocTuple(0), 1),
		receiver: &transport.Receiver{},
	})
	if got := cell.reclaimFlow(); got != nil {
		t.Fatal("runtime reclaimed at retirement instant; stale ACK closures could still fire")
	}
	cell.Eng.After(cell.flowHold(), func() {
		if got := cell.reclaimFlow(); got != nil {
			t.Error("runtime reclaimed exactly at the hold boundary, want strictly after")
		}
	})
	cell.Eng.After(cell.flowHold()+sim.Nanosecond, func() {
		if got := cell.reclaimFlow(); got == nil {
			t.Error("runtime not reclaimable strictly after the hold")
		}
	})
	cell.Run(sim.Second)
}
