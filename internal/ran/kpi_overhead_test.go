package ran

import (
	"os"
	"testing"
	"time"

	"outran/internal/obs"
	"outran/internal/rng"
	"outran/internal/sim"
	"outran/internal/workload"
)

// kpiScenario runs the fixed benchmark scenario once. kpiEvery > 0
// enables KPI state and samples at that cadence the way the deployment
// loop does; profiled installs the phase profiler.
func kpiScenario(tb testing.TB, kpiEvery sim.Time, profiled bool) {
	cfg := DefaultLTEConfig()
	cfg.NumUEs = 8
	cfg.Grid.NumRB = 25
	cfg.Scheduler = SchedOutRAN
	cfg.Seed = 42
	cfg.KPIEvery = kpiEvery
	cell, err := NewCell(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if profiled {
		cell.SetPhaseProfiler(obs.NewPhaseProfiler())
	}
	const dur = 800 * sim.Millisecond
	src, err := workload.Poisson(workload.PoissonConfig{
		Dist:            workload.LTECellular(),
		NumUEs:          cfg.NumUEs,
		Load:            0.7,
		CellCapacityBps: cell.EffectiveCapacityBps(),
		Duration:        dur,
	}, rng.New(9))
	if err != nil {
		tb.Fatal(err)
	}
	cell.ScheduleSource(src, 0, dur)
	total := dur + 4*sim.Second
	if kpiEvery > 0 {
		for t := kpiEvery; t <= total; t += kpiEvery {
			cell.Run(t)
			cell.SampleKPI(t)
		}
	}
	cell.Run(total)
}

// gateRatio times the scenario min-of-rounds in both configurations
// and returns instrumented/baseline.
func gateRatio(t *testing.T, rounds int, baseline, instrumented func()) float64 {
	t.Helper()
	timeOne := func(fn func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < rounds; i++ {
			start := time.Now()
			fn()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	// Warm both paths so neither pays first-run costs.
	baseline()
	instrumented()
	return float64(timeOne(instrumented)) / float64(timeOne(baseline))
}

// TestKPIOverheadGate: with OUTRAN_OVERHEAD_GATE=1, KPI state plus
// per-100 ms sampling may cost at most 5% over the plain run — the
// telemetry budget of the live-KPI issue. Min-of-5 filters runner
// noise; the env guard keeps the timing off developer test runs.
func TestKPIOverheadGate(t *testing.T) {
	if os.Getenv("OUTRAN_OVERHEAD_GATE") == "" {
		t.Skip("set OUTRAN_OVERHEAD_GATE=1 to run the timing gate")
	}
	ratio := gateRatio(t, 5,
		func() { kpiScenario(t, 0, false) },
		func() { kpiScenario(t, 100*sim.Millisecond, false) })
	t.Logf("kpi sampling ratio %.3f", ratio)
	if ratio > 1.05 {
		t.Fatalf("KPI sampling costs %.1f%% over the plain run (budget 5%%)", 100*(ratio-1))
	}
}

// TestPhaseProfilerOverheadGate: the enabled profiler (two clock reads
// per instrumented phase) must stay within 5% of the uninstrumented
// run. The disabled cost is pinned at zero separately — a nil
// profiler never reads the clock (obs.TestPhaseProfilerNilInert) and
// the hot path's allocation contract is unchanged.
func TestPhaseProfilerOverheadGate(t *testing.T) {
	if os.Getenv("OUTRAN_OVERHEAD_GATE") == "" {
		t.Skip("set OUTRAN_OVERHEAD_GATE=1 to run the timing gate")
	}
	ratio := gateRatio(t, 5,
		func() { kpiScenario(t, 0, false) },
		func() { kpiScenario(t, 0, true) })
	t.Logf("phase profiler ratio %.3f", ratio)
	if ratio > 1.05 {
		t.Fatalf("phase profiler costs %.1f%% enabled (budget 5%%)", 100*(ratio-1))
	}
}
