// Package ran assembles the full downlink system: UEs with fading
// channels, the xNodeB user plane (PDCP header inspection + ciphering,
// RLC UM/AM buffers, MAC scheduling with HARQ), the wired core-network
// path, and TCP-Cubic end hosts. It is the substrate on which every
// experiment of the paper runs.
package ran

import (
	"fmt"

	"outran/internal/channel"
	"outran/internal/cn"
	"outran/internal/core"
	"outran/internal/mac"
	"outran/internal/phy"
	"outran/internal/sim"
	"outran/internal/transport"
	"outran/internal/workload"
)

// SchedulerKind names a MAC scheduling policy.
type SchedulerKind string

// Available schedulers.
const (
	SchedPF         SchedulerKind = "PF"
	SchedMT         SchedulerKind = "MT"
	SchedRR         SchedulerKind = "RR"
	SchedSRJF       SchedulerKind = "SRJF"
	SchedPSS        SchedulerKind = "PSS"
	SchedCQA        SchedulerKind = "CQA"
	SchedOutRAN     SchedulerKind = "OutRAN"
	SchedStrictMLFQ SchedulerKind = "StrictMLFQ"
)

// RLCMode selects the RLC data transfer mode.
type RLCMode int

// RLC modes.
const (
	UM RLCMode = iota
	AM
)

func (m RLCMode) String() string {
	if m == AM {
		return "AM"
	}
	return "UM"
}

// Config describes one cell simulation.
type Config struct {
	Grid     phy.Grid
	Scenario channel.Scenario
	NumUEs   int

	Scheduler SchedulerKind
	// InnerScheduler is the legacy scheduler OutRAN wraps (PF or MT).
	InnerScheduler SchedulerKind
	// OutRAN holds the OutRAN knobs (used by SchedOutRAN/StrictMLFQ).
	OutRAN core.Config

	// FairnessWindow is the PF T_f (EWMA horizon). Default 1 s.
	FairnessWindow sim.Time

	RLC        RLCMode
	BufferSDUs int // per-UE RLC buffer capacity (default 128)

	Path cn.PathConfig

	// CQIPeriod is the UE CQI reporting period (default 5 ms).
	CQIPeriod sim.Time
	// PDCPSNBits is the PDCP sequence number width (default 12).
	PDCPSNBits int
	// DisableHARQ turns off the air-interface error model (clean PHY).
	DisableHARQ bool

	Transport transport.Config

	// QoSShortFlows grants flows <= 10 KB a dedicated low-latency QoS
	// profile (50 ms budget) — for the PSS/CQA baselines only.
	QoSShortFlows bool

	// KPIEvery, when > 0, enables live KPI telemetry: the cell keeps
	// windowed FCT histograms and counters that Cell.SampleKPI folds
	// into one obs.KPIRecord per interval. Sampling itself is driven
	// externally (deploy barriers / the outran-sim segment loop) so
	// the instants are identical across worker counts.
	KPIEvery sim.Time

	// StreamFCT selects the bounded-memory streaming FCT recorder:
	// completions are counted into fixed-layout histograms instead of
	// retained per-flow (quantiles within ~4.4% of exact).
	StreamFCT bool

	// Workload declares the traffic offered against the cell: composed
	// traffic classes under a temporal envelope, a trace replay, or
	// scripted Extra flows. The harness instantiates it against the
	// cell's effective capacity at build time. Plain data, so it
	// fingerprints with the rest of the configuration.
	Workload workload.Spec

	Seed uint64
}

// DefaultLTEConfig is the paper's main LTE simulation setup (§6.2):
// 20 MHz / 100 RB eNodeB, pedestrian channel, PF baseline, UM RLC,
// 10 ms wired delay.
func DefaultLTEConfig() Config {
	return Config{
		Grid:           phy.LTE20MHz(),
		Scenario:       channel.Pedestrian(),
		NumUEs:         20,
		Scheduler:      SchedPF,
		InnerScheduler: SchedPF,
		OutRAN:         core.DefaultConfig(),
		FairnessWindow: sim.Second,
		RLC:            UM,
		BufferSDUs:     128,
		Path:           cn.DefaultPath(),
		CQIPeriod:      5 * sim.Millisecond,
		PDCPSNBits:     12,
		Seed:           1,
	}
}

// Default5GConfig is the paper's 5G setup: 100 MHz gNodeB at the given
// numerology, urban 28 GHz channel, 40 UEs.
func Default5GConfig(mu phy.Numerology) Config {
	c := DefaultLTEConfig()
	c.Grid = phy.NR100MHz(mu)
	c.Scenario = channel.Urban28GHz()
	c.NumUEs = 40
	return c
}

// WithDefaults returns a copy of c with every unset field replaced by
// its default. NewCell applies it automatically; callers that validate
// or serialise a configuration before building a cell should apply it
// themselves so they see the effective values.
func (c Config) WithDefaults() Config {
	if c.NumUEs <= 0 {
		c.NumUEs = 1
	}
	if c.FairnessWindow <= 0 {
		c.FairnessWindow = sim.Second
	}
	if c.BufferSDUs <= 0 {
		c.BufferSDUs = 128
	}
	if c.CQIPeriod <= 0 {
		c.CQIPeriod = 5 * sim.Millisecond
	}
	if c.PDCPSNBits == 0 {
		c.PDCPSNBits = 12
	}
	if c.InnerScheduler == "" {
		c.InnerScheduler = SchedPF
	}
	if c.Path.WiredDelay == 0 && c.Path.UplinkDelay == 0 {
		c.Path = cn.DefaultPath()
	}
	if c.Scheduler == "" {
		c.Scheduler = SchedPF
	}
	return c
}

// knownSchedulers is the set Validate checks membership against.
var knownSchedulers = map[SchedulerKind]bool{
	SchedPF: true, SchedMT: true, SchedRR: true, SchedSRJF: true,
	SchedPSS: true, SchedCQA: true, SchedOutRAN: true, SchedStrictMLFQ: true,
}

// Validate checks the configuration and returns an error naming the
// offending field. It expects a defaulted configuration (WithDefaults);
// NewCell applies both and returns Validate's error wrapped.
func (c *Config) Validate() error {
	if c.NumUEs <= 0 {
		return fmt.Errorf("ran: Config.NumUEs = %d, want > 0", c.NumUEs)
	}
	if err := c.Grid.Validate(); err != nil {
		return fmt.Errorf("ran: Config.Grid: %w", err)
	}
	if !knownSchedulers[c.Scheduler] {
		return fmt.Errorf("ran: Config.Scheduler: unknown scheduler %q", c.Scheduler)
	}
	if c.Scheduler == SchedOutRAN && c.InnerScheduler != SchedPF && c.InnerScheduler != SchedMT {
		return fmt.Errorf("ran: Config.InnerScheduler: OutRAN cannot wrap %q", c.InnerScheduler)
	}
	if c.RLC != UM && c.RLC != AM {
		return fmt.Errorf("ran: Config.RLC: unknown RLC mode %d", c.RLC)
	}
	if c.FairnessWindow <= 0 {
		return fmt.Errorf("ran: Config.FairnessWindow = %v, want > 0", c.FairnessWindow)
	}
	if c.BufferSDUs <= 0 {
		return fmt.Errorf("ran: Config.BufferSDUs = %d, want > 0", c.BufferSDUs)
	}
	if c.CQIPeriod <= 0 {
		return fmt.Errorf("ran: Config.CQIPeriod = %v, want > 0", c.CQIPeriod)
	}
	if c.PDCPSNBits < 5 || c.PDCPSNBits > 18 {
		return fmt.Errorf("ran: Config.PDCPSNBits = %d, want 5..18", c.PDCPSNBits)
	}
	if c.KPIEvery < 0 {
		return fmt.Errorf("ran: Config.KPIEvery = %v, want >= 0", c.KPIEvery)
	}
	if c.usesMLFQ() {
		if err := c.OutRAN.Validate(); err != nil {
			return fmt.Errorf("ran: Config.OutRAN: %w", err)
		}
	}
	if err := c.Workload.Validate(); err != nil {
		return fmt.Errorf("ran: Config.Workload: %w", err)
	}
	return nil
}

// WithTopology returns a copy with the UE count and, when rbs > 0, the
// resource-grid width set — the two knobs every sweep varies.
func (c Config) WithTopology(ues, rbs int) Config {
	c.NumUEs = ues
	if rbs > 0 {
		c.Grid.NumRB = rbs
	}
	return c
}

// ForScheduler returns a copy configured for the given scheduler,
// applying the dedicated short-flow QoS profile the PSS/CQA baselines
// assume (and clearing it for everything else).
func (c Config) ForScheduler(k SchedulerKind) Config {
	c.Scheduler = k
	c.QoSShortFlows = k == SchedPSS || k == SchedCQA
	return c
}

// WithSeed returns a copy with the simulation seed set.
func (c Config) WithSeed(seed uint64) Config {
	c.Seed = seed
	return c
}

// WithWorkload returns a copy with the workload spec set.
func (c Config) WithWorkload(s workload.Spec) Config {
	c.Workload = s
	return c
}

// usesMLFQ reports whether the configuration needs per-UE MLFQ queues
// and PDCP flow classification.
func (c *Config) usesMLFQ() bool {
	return c.Scheduler == SchedOutRAN || c.Scheduler == SchedStrictMLFQ
}

// buildScheduler constructs the MAC scheduler.
func (c *Config) buildScheduler() (mac.Scheduler, error) {
	switch c.Scheduler {
	case SchedPF:
		return mac.NewPF(), nil
	case SchedMT:
		return mac.NewMT(), nil
	case SchedRR:
		return mac.NewRR(), nil
	case SchedSRJF:
		return &mac.SRJF{}, nil
	case SchedPSS:
		return &mac.PSS{}, nil
	case SchedCQA:
		return &mac.CQA{}, nil
	case SchedStrictMLFQ:
		return core.StrictMLFQ(), nil
	case SchedOutRAN:
		var inner mac.MetricFunc
		var name string
		switch c.InnerScheduler {
		case SchedMT:
			inner, name = mac.MTMetric, "MT"
		case SchedPF, "":
			inner, name = mac.PFMetric, "PF"
		default:
			return nil, fmt.Errorf("ran: OutRAN cannot wrap %q", c.InnerScheduler)
		}
		s, err := core.NewInterUser(inner, name, c.OutRAN.Epsilon)
		if err != nil {
			return nil, err
		}
		s.TopK = c.OutRAN.TopK
		return s, nil
	}
	return nil, fmt.Errorf("ran: unknown scheduler %q", c.Scheduler)
}
