package ran

import (
	"fmt"

	"outran/internal/mac"
	"outran/internal/rlc"
	"outran/internal/sim"
)

// FaultHooks lets an external fault-injection framework and runtime
// invariant monitor (internal/fault) perturb and observe the cell's
// layers without reaching into its internals. Every field is optional;
// nil means "no effect". Hooks run on the single-threaded event loop,
// so implementations must be deterministic (own rng.Source, no wall
// clock) for same-seed chaos runs to reproduce bit-for-bit.
type FaultHooks struct {
	// SINROffsetDB returns an extra SINR offset in dB (usually
	// negative) applied to UE ue's channel at time now — deep fades
	// and outage bursts layered on the channel model. The offset is
	// seen both by the CQI report and by the HARQ decode evaluation.
	SINROffsetDB func(ue int, now sim.Time) float64
	// DropCQIReport reports whether UE ue's CQI report at now is lost.
	// The MAC then keeps scheduling on the stale previous report —
	// exactly the link-adaptation mismatch a real report loss causes.
	DropCQIReport func(ue int, now sim.Time) bool
	// CorruptHARQFeedback may flip the decode outcome the xNodeB sees
	// for UE ue's transport block: ok is the true outcome, the return
	// value is the (possibly corrupted) feedback. ACK->NACK causes a
	// spurious retransmission (duplicates at the receiver); NACK->ACK
	// loses the block without HARQ recovery, leaving it to the RLC.
	CorruptHARQFeedback func(ue int, now sim.Time, ok bool) bool
	// DropRLCPDU reports whether one RLC PDU is lost on top of the
	// BLER model (burst interference below HARQ granularity).
	DropRLCPDU func(ue int, now sim.Time, pdu *rlc.PDU) bool
	// Backhaul returns extra one-way delay and a drop decision for one
	// downlink packet on the CN->PDCP path (server to xNodeB).
	Backhaul func(now sim.Time) (extra sim.Time, drop bool)

	// OnDeliveryFail fires when UE ue's AM transmitter abandons a PDU
	// after maxRetx — the radio-link-failure trigger.
	OnDeliveryFail func(ue int, sn uint32)
	// OnDeliver fires for every SDU the RLC hands up to UE ue's PDCP.
	OnDeliver func(ue int, sdu *rlc.SDU)
	// OnTTI fires at the end of every scheduling interval with the
	// TTI's resource-block allocation.
	OnTTI func(now sim.Time, alloc mac.Allocation)
	// OnReestablish fires after UE ue's RLC/PDCP entities have been
	// rebuilt by ReestablishUE.
	OnReestablish func(ue int, now sim.Time)
}

// SetFaultHooks installs the hooks. Call after NewCell and before the
// first Run; replacing hooks mid-run is allowed but the swap itself
// must then be a scheduled, deterministic event.
func (c *Cell) SetFaultHooks(h FaultHooks) { c.hooks = h }

// Reestablishments returns how many RRC re-establishments the cell
// has performed.
func (c *Cell) Reestablishments() uint64 { return c.ctrReestablish.Value() }

// ReestablishUE models RRC re-establishment after a radio-link
// failure: in-flight HARQ transport blocks and the entire RLC state
// (tx buffers, retransmission tables, reassembly windows) are torn
// down, PDCP is rebuilt with fresh COUNT state on both ends, and the
// per-flow sent-bytes table survives via the §7 handover flow-state
// export so MLFQ priorities re-anchor instead of resetting. Bytes in
// flight below PDCP are lost; the transport senders recover them
// end-to-end via RTO.
//
// Do not call from inside an RLC pull/receive path (e.g. directly
// from an OnDeliveryFail hook): the entities being replaced are still
// on the stack there. Defer with Eng.After(0, ...) instead.
func (c *Cell) ReestablishUE(id int) error {
	if id < 0 || id >= len(c.ues) {
		return fmt.Errorf("ran: no UE %d", id)
	}
	ue := c.ues[id]
	blob := ue.pdcpTx.ExportFlowState()
	// Retire the old entities' loss counters into cell-level
	// accumulators so CollectStats keeps counting them after the swap.
	c.retired.decipherFailures += ue.pdcpRx.DecipherFailures()
	if ue.umTx != nil {
		c.retired.evictions += ue.umTx.Evictions()
		c.retired.reassemblyDrops += ue.umRx.Discarded()
		ue.umRx.Close()
	} else {
		c.retired.evictions += ue.amTx.Evictions()
		c.retired.amAbandoned += ue.amTx.Abandoned()
		c.retired.amRetxBytes += ue.amTx.RetxBytes()
		ue.amTx.Close()
		ue.amRx.Close()
	}
	ue.harqPending = nil
	if err := c.wireBearer(ue); err != nil {
		return err
	}
	if err := ue.pdcpTx.ImportFlowState(blob); err != nil {
		return err
	}
	c.ctrReestablish.Inc()
	if h := c.hooks.OnReestablish; h != nil {
		h(id, c.Eng.Now())
	}
	return nil
}

// AuditInvariants verifies the cell's cross-layer structural
// invariants: RLC AM transmitter/receiver consistency, bounded tx
// queue growth, and HARQ retransmission bookkeeping. It returns the
// first violation found (deterministically chosen — see the fold
// style in rlc.AMTx.Audit) or nil. The runtime invariant monitor
// calls this every TTI and at teardown.
func (c *Cell) AuditInvariants() error {
	for _, ue := range c.ues {
		if ue.amTx != nil {
			if err := ue.amTx.Audit(); err != nil {
				return fmt.Errorf("ue %d: %w", ue.id, err)
			}
			if err := ue.amRx.Audit(); err != nil {
				return fmt.Errorf("ue %d: %w", ue.id, err)
			}
		}
		if n := c.queuedSDUs(ue); n > c.cfg.BufferSDUs {
			return fmt.Errorf("ue %d: %d SDUs buffered, limit %d", ue.id, n, c.cfg.BufferSDUs)
		}
		for _, tb := range ue.harqPending {
			if tb.attempts > harqMaxRetx {
				return fmt.Errorf("ue %d: pending HARQ TB with %d attempts, max %d", ue.id, tb.attempts, harqMaxRetx)
			}
			if tb.bits <= 0 {
				return fmt.Errorf("ue %d: pending HARQ TB with %d bits", ue.id, tb.bits)
			}
		}
	}
	return nil
}

// queuedSDUs returns the UE's buffered SDU count regardless of mode.
func (c *Cell) queuedSDUs(ue *ueCtx) int {
	if ue.umTx != nil {
		return ue.umTx.QueuedSDUs()
	}
	return ue.amTx.QueuedSDUs()
}
