package ran

import (
	"bytes"
	"fmt"
	"sort"

	"outran/internal/core"
	"outran/internal/ip"
	"outran/internal/rlc"
	"outran/internal/sim"
	"outran/internal/snapshot"
	"outran/internal/transport"
)

// Structural sentinels for the cell snapshot walk.
const (
	tagConfig  = 0x2a01
	tagEngine  = 0x2a02
	tagCell    = 0x2a03
	tagUE      = 0x2a05
	tagFlow    = 0x2a06
	tagPending = 0x2a07
	tagHarqTB  = 0x2a08
)

// pendingKind classifies an in-flight scheduled event so a restore can
// rebuild its closure from serialisable payload. Zero is reserved so a
// zeroed byte never decodes as a valid kind.
type pendingKind uint8

const (
	// pkArrival is a workload flow arrival (ScheduleSource).
	pkArrival pendingKind = iota + 1
	// pkPacket is a downlink packet crossing the wired backhaul.
	pkPacket
	// pkAck is a transport ACK crossing the uplink path.
	pkAck
	// pkTB is a transport block one TTI out on the air interface.
	pkTB
	// pkAMStatus is an RLC AM status PDU on the uplink.
	pkAMStatus
	// pkTrackerReset / pkTrackerFreeze are the measurement-window
	// boundaries (ran.Harness).
	pkTrackerReset
	pkTrackerFreeze
	// pkExternal is an opaque event owned by an attached subsystem
	// (fault injection); its closure is rebuilt from the key by the
	// function registered with SetExternalRebuild.
	pkExternal
)

// pendingEvent is the serialisable description of one scheduled event.
// It is a fat by-value struct — only the fields its kind documents are
// meaningful — so recording an event costs a map insert, no allocation.
type pendingEvent struct {
	kind   pendingKind
	at     sim.Time
	ue     int
	pkt    ip.Packet
	tuple  ip.FiveTuple
	rel    int64
	tb     *harqTB
	status *rlc.StatusPDU
	size   int64
	incast bool
	skip   bool
	key    uint64
}

// EnableSnapshots turns on the pending-event registry that makes the
// cell checkpointable. It must be called immediately after NewCell,
// before any workload, tracker boundary, or external event is
// scheduled — otherwise those events would be invisible to a
// checkpoint and silently dropped on restore; the guard panics to make
// that wiring bug loud. With snapshots off (the default) every
// recorded-schedule site degrades to a plain Engine.After/At call.
func (c *Cell) EnableSnapshots() {
	if c.snapEnabled {
		return
	}
	want := 2 // TTI + CQI periodics from NewCell
	if c.tickReset != nil {
		want = 3
	}
	if c.Eng.Now() != 0 || c.Eng.Pending() != want {
		panic("ran: EnableSnapshots must be called immediately after NewCell, before any workload is scheduled")
	}
	c.snapEnabled = true
	c.pending = make(map[uint64]pendingEvent)
}

// SnapshotsEnabled reports whether the pending-event registry is on.
func (c *Cell) SnapshotsEnabled() bool { return c.snapEnabled }

// recAfter schedules fn to run d from now, recording the event in the
// pending registry when snapshots are enabled. The recorded wrapper
// unregisters the event at fire time via the engine's current seq, so
// the registry always holds exactly the still-pending set.
//
// The disabled path adds no work beyond the Engine.After call itself —
// pendingEvent is passed by value and never escapes — which keeps the
// hot-path alloc contracts intact for every run that never checkpoints.
func (c *Cell) recAfter(d sim.Time, pe pendingEvent, fn func()) {
	if !c.snapEnabled {
		c.Eng.After(d, fn)
		return
	}
	c.Eng.After(d, func() {
		delete(c.pending, c.Eng.CurSeq())
		fn()
	})
	if d < 0 {
		d = 0
	}
	pe.at = c.Eng.Now() + d
	c.pending[c.Eng.LastSeq()] = pe
}

// recAt is recAfter for absolute-time scheduling.
func (c *Cell) recAt(at sim.Time, pe pendingEvent, fn func()) {
	if !c.snapEnabled {
		c.Eng.At(at, fn)
		return
	}
	c.Eng.At(at, func() {
		delete(c.pending, c.Eng.CurSeq())
		fn()
	})
	pe.at = at
	c.pending[c.Eng.LastSeq()] = pe
}

// registerRestored re-registers a snapshotted event with its exact
// original (at, seq) so same-time tie-breaks replay identically, and
// puts it back in the registry so a later checkpoint still sees it.
func (c *Cell) registerRestored(seq uint64, pe pendingEvent, fn func()) {
	c.Eng.ScheduleExact(pe.at, seq, func() {
		delete(c.pending, c.Eng.CurSeq())
		fn()
	})
	c.pending[seq] = pe
}

// ScheduleTrackerReset schedules the measurement-window reset as a
// recorded event so it survives a checkpoint (ran.Harness uses this
// instead of a raw Engine.At).
func (c *Cell) ScheduleTrackerReset(at sim.Time) {
	c.recAt(at, pendingEvent{kind: pkTrackerReset}, c.Tracker.Reset)
}

// ScheduleTrackerFreeze schedules the measurement-window freeze as a
// recorded event.
func (c *Cell) ScheduleTrackerFreeze(at sim.Time) {
	c.recAt(at, pendingEvent{kind: pkTrackerFreeze}, c.Tracker.Freeze)
}

// ScheduleExternal schedules an event owned by an attached subsystem
// (fault injection) at an absolute time, recorded under an opaque key.
// On restore the closure is rebuilt by the SetExternalRebuild hook from
// the same key, after the subsystem has re-attached its own state.
func (c *Cell) ScheduleExternal(at sim.Time, key uint64, fn func()) {
	c.recAt(at, pendingEvent{kind: pkExternal, key: key}, fn)
}

// ScheduleExternalAfter is ScheduleExternal with a relative delay.
func (c *Cell) ScheduleExternalAfter(d sim.Time, key uint64, fn func()) {
	c.recAfter(d, pendingEvent{kind: pkExternal, key: key}, fn)
}

// SetExternalRebuild registers the closure factory RestoreSnapshot uses
// to reconstruct pkExternal events. A snapshot that holds external
// events fails to restore until one is registered.
func (c *Cell) SetExternalRebuild(f func(key uint64) func()) { c.extRebuild = f }

// configFingerprint renders the effective (defaulted) configuration to
// a canonical string. Every field is plain data — no maps, pointers or
// function values — so the rendering is byte-stable across processes;
// restore compares it wholesale rather than diffing field by field.
func (c *Cell) configFingerprint() []byte {
	return []byte(fmt.Sprintf("%+v", c.cfg))
}

// sortedPendingSeqs returns the registry's keys in ascending seq order
// so the encoded pending set is independent of map iteration order.
func (c *Cell) sortedPendingSeqs() []uint64 {
	seqs := make([]uint64, 0, len(c.pending))
	//outran:orderfree collected seqs are sorted before use
	for s := range c.pending {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

func putPeriodic(e *snapshot.Encoder, p *sim.Periodic) {
	stopped, nextAt, seq := p.Snap()
	e.Bool(stopped)
	e.I64(int64(nextAt))
	e.U64(seq)
}

type periodicArm struct {
	stopped bool
	nextAt  sim.Time
	seq     uint64
}

func getPeriodicArm(d *snapshot.Decoder) periodicArm {
	var a periodicArm
	a.stopped = d.Bool()
	a.nextAt = sim.Time(d.I64())
	a.seq = d.U64()
	return a
}

// putHarqTB encodes one transport block through the UE's shared RLC
// encoding context, so PDUs the TB shares with the AM retransmission
// window serialise as references to one instance.
func putHarqTB(se *rlc.SnapEnc, tb *harqTB) {
	e := se.E
	e.Mark(tagHarqTB)
	e.U32(uint32(len(tb.pdus)))
	for _, p := range tb.pdus {
		se.PDU(p)
	}
	e.Int(tb.bits)
	e.Int(tb.attempts)
	e.I64(int64(tb.readyAt))
	e.F64(tb.reqSINR)
	e.U32(uint32(len(tb.subbands)))
	for _, sb := range tb.subbands {
		e.Int(sb)
	}
	e.Int(tb.waited)
}

func getHarqTB(sd *rlc.SnapDec) *harqTB {
	d := sd.D
	d.Expect(tagHarqTB)
	tb := &harqTB{}
	n := d.Count(1 << 16)
	for i := 0; i < n && d.Err() == nil; i++ {
		if p := sd.PDU(); p != nil {
			tb.pdus = append(tb.pdus, p)
		}
	}
	tb.bits = d.Int()
	tb.attempts = d.Int()
	tb.readyAt = sim.Time(d.I64())
	tb.reqSINR = d.F64()
	ns := d.Count(1 << 16)
	for i := 0; i < ns && d.Err() == nil; i++ {
		tb.subbands = append(tb.subbands, d.Int())
	}
	tb.waited = d.Int()
	if d.Err() != nil {
		return nil
	}
	return tb
}

// SnapshotTo appends the cell's complete mid-run state to the builder
// as the sections config/engine/cell/metrics/ue<i>/pending. The cell
// must have snapshots enabled; flows started with persistent-connection
// or completion-callback options cannot be serialised and make the
// whole snapshot fail (checkpointed runs use the plain workload path).
func (c *Cell) SnapshotTo(b *snapshot.Builder) error {
	if !c.snapEnabled {
		return fmt.Errorf("ran: snapshots not enabled on this cell (EnableSnapshots before scheduling work)")
	}
	for _, ue := range c.ues {
		//outran:orderfree error check only; no encoding happens in this loop
		for tuple, fr := range ue.flows {
			if fr.onComplete != nil || fr.keep || fr.seqBase != 0 {
				return fmt.Errorf("ran: flow %v on UE %d uses persistent-connection or completion-callback options and cannot be checkpointed", tuple, ue.id)
			}
		}
	}
	seqs := c.sortedPendingSeqs()

	var ce snapshot.Encoder
	ce.Mark(tagConfig)
	ce.Bytes32(c.configFingerprint())
	b.Add("config", &ce)

	var ee snapshot.Encoder
	ee.Mark(tagEngine)
	now, seq, nEvents := c.Eng.SnapState()
	ee.I64(int64(now))
	ee.U64(seq)
	ee.U64(nEvents)
	putPeriodic(&ee, c.tickTTI)
	putPeriodic(&ee, c.tickCQI)
	ee.Bool(c.tickReset != nil)
	if c.tickReset != nil {
		putPeriodic(&ee, c.tickReset)
	}
	b.Add("engine", &ee)

	var le snapshot.Encoder
	le.Mark(tagCell)
	st := c.r.State()
	for _, w := range st {
		le.U64(w)
	}
	le.U64(c.sduSeq)
	le.U16(c.nextPort)
	le.I64(int64(c.rttSum))
	le.Int(c.rttCnt)
	le.Int(c.retired.evictions)
	le.U64(c.retired.decipherFailures)
	le.U64(c.retired.reassemblyDrops)
	le.U64(c.retired.amAbandoned)
	le.U64(c.retired.amRetxBytes)
	le.U32(uint32(len(c.blockBits)))
	for _, v := range c.blockBits {
		le.I64(v)
	}
	for _, v := range c.blockActive {
		le.Bool(v)
	}
	le.Int(c.blockTTIs)
	// Scheduler audit counters — zeros when the scheduler is not an
	// InterUser (or is wrapped by one that isn't, as test harnesses
	// do), so the layout never depends on a runtime type assertion.
	var dec, ovr uint64
	var sac float64
	if iu, ok := c.sched.(*core.InterUser); ok {
		dec, ovr, sac = iu.Audit()
	}
	le.U64(dec)
	le.U64(ovr)
	le.F64(sac)
	b.Add("cell", &le)

	var me snapshot.Encoder
	c.Tracker.Snapshot(&me)
	c.FCT.Snapshot(&me)
	c.Delay.Snapshot(&me)
	c.Reg.Snapshot(&me)
	b.Add("metrics", &me)

	if c.kpi != nil {
		var ke snapshot.Encoder
		c.snapshotKPI(&ke)
		b.Add("kpi", &ke)
	}

	for i, ue := range c.ues {
		var e snapshot.Encoder
		c.snapshotUE(&e, ue, seqs)
		b.Add(fmt.Sprintf("ue%d", i), &e)
	}

	var pe snapshot.Encoder
	c.snapshotPending(&pe, seqs)
	b.Add("pending", &pe)
	return nil
}

// Snapshot assembles a complete snapshot file image.
func (c *Cell) Snapshot() ([]byte, error) {
	var b snapshot.Builder
	if err := c.SnapshotTo(&b); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// snapshotUE encodes one UE: MAC view, PDCP entities, RLC entities,
// pending HARQ retransmissions, live flows (in canonical tuple order),
// and the UE's in-flight air-interface events — everything that can
// share SDU/PDU objects goes through one rlc.SnapEnc so pointer
// identity survives the round trip.
func (c *Cell) snapshotUE(e *snapshot.Encoder, ue *ueCtx, seqs []uint64) {
	e.Mark(tagUE)
	e.Int(ue.id)
	ue.macUser.Snapshot(e)
	ue.pdcpTx.Snapshot(e)
	ue.pdcpRx.Snapshot(e)
	se := rlc.NewSnapEnc(e)
	if ue.umTx != nil {
		e.U8(0)
		ue.umTx.Snapshot(se)
		ue.umRx.Snapshot(se)
	} else {
		e.U8(1)
		ue.amTx.Snapshot(se)
		ue.amRx.Snapshot(se)
	}
	e.U32(uint32(len(ue.harqPending)))
	for _, tb := range ue.harqPending {
		putHarqTB(se, tb)
	}
	e.Int(ue.enqueueDrops)
	keys := make([]ip.FiveTuple, 0, len(ue.flows))
	//outran:orderfree collected tuples are sorted before encoding
	for ft := range ue.flows {
		keys = append(keys, ft)
	}
	ip.SortTuples(keys)
	e.U32(uint32(len(keys)))
	for _, ft := range keys {
		fr := ue.flows[ft]
		e.Mark(tagFlow)
		ip.PutTuple(e, ft)
		e.I64(fr.size)
		e.I64(int64(fr.start))
		e.Bool(fr.incast)
		e.Bool(fr.record)
		fr.sender.Snapshot(e)
		fr.receiver.Snapshot(e)
	}
	var mine []uint64
	for _, s := range seqs {
		pe := c.pending[s]
		if (pe.kind == pkTB || pe.kind == pkAMStatus) && pe.ue == ue.id {
			mine = append(mine, s)
		}
	}
	e.U32(uint32(len(mine)))
	for _, s := range mine {
		pe := c.pending[s]
		e.U64(s)
		e.I64(int64(pe.at))
		e.U8(uint8(pe.kind))
		if pe.kind == pkTB {
			putHarqTB(se, pe.tb)
		} else {
			rlc.EncodeStatus(e, pe.status)
		}
	}
}

// snapshotPending encodes every pending event not owned by a UE
// section, in ascending seq order.
func (c *Cell) snapshotPending(e *snapshot.Encoder, seqs []uint64) {
	e.Mark(tagPending)
	var rest []uint64
	for _, s := range seqs {
		k := c.pending[s].kind
		if k == pkTB || k == pkAMStatus {
			continue
		}
		rest = append(rest, s)
	}
	e.U32(uint32(len(rest)))
	for _, s := range rest {
		pe := c.pending[s]
		e.U64(s)
		e.I64(int64(pe.at))
		e.U8(uint8(pe.kind))
		switch pe.kind {
		case pkArrival:
			e.Int(pe.ue)
			e.I64(pe.size)
			e.Bool(pe.incast)
			e.Bool(pe.skip)
		case pkPacket:
			e.Int(pe.ue)
			ip.PutPacket(e, pe.pkt)
		case pkAck:
			e.Int(pe.ue)
			ip.PutTuple(e, pe.tuple)
			e.I64(pe.rel)
		case pkTrackerReset, pkTrackerFreeze:
		case pkExternal:
			e.U64(pe.key)
		}
	}
}

// RestoreSnapshot overlays a snapshot onto a freshly built cell of the
// same configuration and re-registers every pending event with its
// exact original (time, seq), so continuing the run is byte-identical
// to never having stopped: same per-TTI schedule, same trace suffix,
// same end-of-run summary.
//
// The target must come straight from NewCell — same Config, clock still
// at zero, nothing scheduled beyond the construction tickers. Tracers
// (SetTracerResumed) and fault plumbing (SetFaultHooks,
// SetExternalRebuild plus the injector's own restore) are re-attached
// by the caller; external events fail the restore if no rebuild hook
// is registered.
func (c *Cell) RestoreSnapshot(a *snapshot.Archive) error {
	if c.restored {
		return fmt.Errorf("ran: cell already restored from a snapshot once")
	}
	if now, _, _ := c.Eng.SnapState(); now != 0 {
		return fmt.Errorf("ran: restore target already ran to %v; restore needs a freshly built cell", now)
	}
	c.EnableSnapshots()

	d, err := a.Section("config")
	if err != nil {
		return fmt.Errorf("ran: restoring cell: %w", err)
	}
	d.Expect(tagConfig)
	fp := d.Bytes32()
	if err := d.Err(); err != nil {
		return fmt.Errorf("ran: restoring config fingerprint: %w", err)
	}
	if want := c.configFingerprint(); !bytes.Equal(fp, want) {
		return fmt.Errorf("ran: snapshot was taken under a different configuration:\n  snapshot: %s\n  this run: %s", fp, want)
	}

	d, err = a.Section("engine")
	if err != nil {
		return fmt.Errorf("ran: restoring cell: %w", err)
	}
	d.Expect(tagEngine)
	now := sim.Time(d.I64())
	seq := d.U64()
	nEvents := d.U64()
	ttiArm := getPeriodicArm(d)
	cqiArm := getPeriodicArm(d)
	hasReset := d.Bool()
	var resetArm periodicArm
	if hasReset {
		resetArm = getPeriodicArm(d)
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("ran: restoring engine state: %w", err)
	}
	if hasReset != (c.tickReset != nil) {
		return fmt.Errorf("%w: snapshot and configuration disagree on the MLFQ reset ticker", snapshot.ErrCorrupt)
	}
	c.Eng.DropPending()
	c.Eng.RestoreState(now, seq, nEvents)
	c.tickTTI.RestoreArm(ttiArm.stopped, ttiArm.nextAt, ttiArm.seq)
	c.tickCQI.RestoreArm(cqiArm.stopped, cqiArm.nextAt, cqiArm.seq)
	if c.tickReset != nil {
		c.tickReset.RestoreArm(resetArm.stopped, resetArm.nextAt, resetArm.seq)
	}

	d, err = a.Section("cell")
	if err != nil {
		return fmt.Errorf("ran: restoring cell: %w", err)
	}
	d.Expect(tagCell)
	var rs [4]uint64
	for i := range rs {
		rs[i] = d.U64()
	}
	c.sduSeq = d.U64()
	c.nextPort = d.U16()
	c.rttSum = sim.Time(d.I64())
	c.rttCnt = d.Int()
	c.retired.evictions = d.Int()
	c.retired.decipherFailures = d.U64()
	c.retired.reassemblyDrops = d.U64()
	c.retired.amAbandoned = d.U64()
	c.retired.amRetxBytes = d.U64()
	nb := d.Count(1 << 20)
	if d.Err() == nil && nb != len(c.blockBits) {
		return fmt.Errorf("%w: snapshot has %d UEs of block accounting, cell has %d", snapshot.ErrCorrupt, nb, len(c.blockBits))
	}
	for i := 0; i < nb && d.Err() == nil; i++ {
		c.blockBits[i] = d.I64()
	}
	for i := 0; i < nb && d.Err() == nil; i++ {
		c.blockActive[i] = d.Bool()
	}
	c.blockTTIs = d.Int()
	dec := d.U64()
	ovr := d.U64()
	sac := d.F64()
	if iu, ok := c.sched.(*core.InterUser); ok && d.Err() == nil {
		iu.SetAudit(dec, ovr, sac)
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("ran: restoring cell scalars: %w", err)
	}
	c.r.SetState(rs)

	d, err = a.Section("metrics")
	if err != nil {
		return fmt.Errorf("ran: restoring cell: %w", err)
	}
	if err := c.Tracker.Restore(d); err != nil {
		return fmt.Errorf("ran: %w", err)
	}
	if err := c.FCT.Restore(d); err != nil {
		return fmt.Errorf("ran: %w", err)
	}
	if err := c.Delay.Restore(d); err != nil {
		return fmt.Errorf("ran: %w", err)
	}
	if err := c.Reg.Restore(d); err != nil {
		return fmt.Errorf("ran: %w", err)
	}

	if c.kpi != nil {
		d, err = a.Section("kpi")
		if err != nil {
			return fmt.Errorf("ran: restoring cell: %w", err)
		}
		if err := c.restoreKPI(d); err != nil {
			return fmt.Errorf("ran: %w", err)
		}
	}

	for i, ue := range c.ues {
		d, err = a.Section(fmt.Sprintf("ue%d", i))
		if err != nil {
			return fmt.Errorf("ran: restoring cell: %w", err)
		}
		if err := c.restoreUE(d, ue); err != nil {
			return fmt.Errorf("ran: restoring UE %d: %w", i, err)
		}
	}

	d, err = a.Section("pending")
	if err != nil {
		return fmt.Errorf("ran: restoring cell: %w", err)
	}
	if err := c.restorePending(d); err != nil {
		return fmt.Errorf("ran: restoring pending events: %w", err)
	}
	c.restored = true
	return nil
}

func (c *Cell) restoreUE(d *snapshot.Decoder, ue *ueCtx) error {
	d.Expect(tagUE)
	if id := d.Int(); d.Err() == nil && id != ue.id {
		return fmt.Errorf("%w: section holds UE %d", snapshot.ErrCorrupt, id)
	}
	if err := ue.macUser.Restore(d); err != nil {
		return err
	}
	if err := ue.pdcpTx.Restore(d); err != nil {
		return err
	}
	if err := ue.pdcpRx.Restore(d); err != nil {
		return err
	}
	sd := rlc.NewSnapDec(d)
	mode := d.U8()
	if d.Err() == nil && (mode == 1) != (c.cfg.RLC == AM) {
		return fmt.Errorf("%w: snapshot RLC mode %d does not match configured %s", snapshot.ErrCorrupt, mode, c.cfg.RLC)
	}
	if ue.umTx != nil {
		if err := ue.umTx.Restore(sd); err != nil {
			return err
		}
		if err := ue.umRx.Restore(sd); err != nil {
			return err
		}
	} else {
		if err := ue.amTx.Restore(sd); err != nil {
			return err
		}
		if err := ue.amRx.Restore(sd); err != nil {
			return err
		}
	}
	nh := d.Count(1 << 20)
	for j := 0; j < nh && d.Err() == nil; j++ {
		if tb := getHarqTB(sd); tb != nil {
			ue.harqPending = append(ue.harqPending, tb)
		}
	}
	ue.enqueueDrops = d.Int()
	nf := d.Count(1 << 24)
	for j := 0; j < nf && d.Err() == nil; j++ {
		d.Expect(tagFlow)
		tuple := ip.GetTuple(d)
		size := d.I64()
		start := sim.Time(d.I64())
		incast := d.Bool()
		record := d.Bool()
		if d.Err() != nil {
			break
		}
		fr := &flowRuntime{ue: ue.id, tuple: tuple, size: size, start: start, incast: incast, record: record}
		fr.meta = c.flowMeta(size)
		fr.sender = transport.NewSender(c.Eng, c.cfg.Transport, tuple, size)
		fr.receiver = &transport.Receiver{}
		c.wireFlow(ue, fr)
		if err := fr.sender.Restore(d); err != nil {
			return err
		}
		if err := fr.receiver.Restore(d); err != nil {
			return err
		}
		ue.flows[tuple] = fr
	}
	np := d.Count(1 << 24)
	for j := 0; j < np && d.Err() == nil; j++ {
		seq := d.U64()
		at := sim.Time(d.I64())
		kind := pendingKind(d.U8())
		switch kind {
		case pkTB:
			tb := getHarqTB(sd)
			if d.Err() != nil || tb == nil {
				break
			}
			u := ue
			c.registerRestored(seq, pendingEvent{kind: pkTB, at: at, ue: ue.id, tb: tb},
				func() { c.tbArrive(u, tb) })
		case pkAMStatus:
			if ue.amTx == nil {
				return fmt.Errorf("%w: AM status event on a UM-mode bearer", snapshot.ErrCorrupt)
			}
			st := rlc.DecodeStatus(d)
			if d.Err() != nil {
				break
			}
			u := ue
			c.registerRestored(seq, pendingEvent{kind: pkAMStatus, at: at, ue: ue.id, status: st},
				func() { u.amTx.OnStatus(st) })
		default:
			d.Fail(fmt.Errorf("%w: unexpected pending kind %d in UE section", snapshot.ErrCorrupt, kind))
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes in UE section", snapshot.ErrCorrupt, d.Remaining())
	}
	return nil
}

func (c *Cell) restorePending(d *snapshot.Decoder) error {
	d.Expect(tagPending)
	n := d.Count(1 << 24)
	for j := 0; j < n && d.Err() == nil; j++ {
		seq := d.U64()
		at := sim.Time(d.I64())
		kind := pendingKind(d.U8())
		switch kind {
		case pkArrival:
			rawUE := d.Int()
			size := d.I64()
			incast := d.Bool()
			skip := d.Bool()
			if d.Err() != nil {
				break
			}
			o := FlowOptions{Incast: incast, SkipRecord: skip}
			c.registerRestored(seq, pendingEvent{kind: pkArrival, at: at, ue: rawUE, size: size, incast: incast, skip: skip},
				func() {
					if err := c.StartFlow(rawUE%len(c.ues), size, o); err != nil {
						panic(err)
					}
				})
		case pkPacket:
			ueIdx := d.Int()
			pkt := ip.GetPacket(d)
			if d.Err() != nil {
				break
			}
			if ueIdx < 0 || ueIdx >= len(c.ues) {
				return fmt.Errorf("%w: packet event for UE %d of %d", snapshot.ErrCorrupt, ueIdx, len(c.ues))
			}
			u := c.ues[ueIdx]
			c.registerRestored(seq, pendingEvent{kind: pkPacket, at: at, ue: ueIdx, pkt: pkt},
				func() { c.deliverToXNB(u, pkt) })
		case pkAck:
			ueIdx := d.Int()
			tuple := ip.GetTuple(d)
			rel := d.I64()
			if d.Err() != nil {
				break
			}
			if ueIdx < 0 || ueIdx >= len(c.ues) {
				return fmt.Errorf("%w: ack event for UE %d of %d", snapshot.ErrCorrupt, ueIdx, len(c.ues))
			}
			u := c.ues[ueIdx]
			// The live closure held the sender directly; a completed
			// sender ignores late ACKs, so the torn-down-flow case is
			// an equivalent no-op here.
			c.registerRestored(seq, pendingEvent{kind: pkAck, at: at, ue: ueIdx, tuple: tuple, rel: rel},
				func() {
					if fr := u.flows[tuple]; fr != nil {
						fr.sender.OnAck(rel)
					}
				})
		case pkTrackerReset:
			c.registerRestored(seq, pendingEvent{kind: pkTrackerReset, at: at}, c.Tracker.Reset)
		case pkTrackerFreeze:
			c.registerRestored(seq, pendingEvent{kind: pkTrackerFreeze, at: at}, c.Tracker.Freeze)
		case pkExternal:
			key := d.U64()
			if d.Err() != nil {
				break
			}
			if c.extRebuild == nil {
				return fmt.Errorf("ran: snapshot holds external event %#x but no rebuild hook is registered (SetExternalRebuild before RestoreSnapshot)", key)
			}
			fn := c.extRebuild(key)
			if fn == nil {
				return fmt.Errorf("ran: external rebuild hook returned nil for key %#x", key)
			}
			c.registerRestored(seq, pendingEvent{kind: pkExternal, at: at, key: key}, fn)
		default:
			d.Fail(fmt.Errorf("%w: unknown pending kind %d", snapshot.ErrCorrupt, kind))
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes in pending section", snapshot.ErrCorrupt, d.Remaining())
	}
	return nil
}
