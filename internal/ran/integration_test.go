package ran

import (
	"testing"

	"outran/internal/metrics"
	"outran/internal/sim"
)

func TestPersistentConnSequentialFlows(t *testing.T) {
	cfg := smallConfig(SchedPF)
	cell, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := cell.NewConn(0)
	if err != nil {
		t.Fatal(err)
	}
	var fcts []sim.Time
	var start2 func()
	cell.Eng.At(sim.Millisecond, func() {
		err := cell.StartFlow(0, 30*1024, FlowOptions{Conn: conn, OnComplete: func(d sim.Time) {
			fcts = append(fcts, d)
			start2()
		}})
		if err != nil {
			t.Fatal(err)
		}
	})
	start2 = func() {
		err := cell.StartFlow(0, 20*1024, FlowOptions{Conn: conn, OnComplete: func(d sim.Time) {
			fcts = append(fcts, d)
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	cell.Run(30 * sim.Second)
	if len(fcts) != 2 {
		t.Fatalf("completed %d/2 flows on the conn", len(fcts))
	}
	for i, d := range fcts {
		if d <= 0 || d > 5*sim.Second {
			t.Fatalf("flow %d FCT %v implausible", i, d)
		}
	}
}

func TestConnReuseAggregatesSentBytes(t *testing.T) {
	// §4.2's limitation: flows multiplexed on one five-tuple share a
	// sent-bytes counter, so a later short flow on a reused connection
	// can be tagged with a demoted priority.
	cfg := smallConfig(SchedOutRAN)
	cell, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := cell.NewConn(0)
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	var chain func(n int)
	chain = func(n int) {
		if n == 0 {
			return
		}
		err := cell.StartFlow(0, 60*1024, FlowOptions{Conn: conn, OnComplete: func(sim.Time) {
			done++
			chain(n - 1)
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	cell.Eng.At(sim.Millisecond, func() { chain(3) })
	cell.Run(60 * sim.Second)
	if done != 3 {
		t.Fatalf("completed %d/3 chained flows", done)
	}
}

func TestConnWrongUERejected(t *testing.T) {
	cell, err := NewCell(smallConfig(SchedPF))
	if err != nil {
		t.Fatal(err)
	}
	conn, err := cell.NewConn(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cell.StartFlow(1, 1000, FlowOptions{Conn: conn}); err == nil {
		t.Fatal("conn bound to UE 0 accepted for UE 1")
	}
}

func TestStartFlowValidation(t *testing.T) {
	cell, err := NewCell(smallConfig(SchedPF))
	if err != nil {
		t.Fatal(err)
	}
	if err := cell.StartFlow(99, 1000, FlowOptions{}); err == nil {
		t.Fatal("bad UE accepted")
	}
	if err := cell.StartFlow(0, 0, FlowOptions{}); err == nil {
		t.Fatal("zero size accepted")
	}
}

// TestDelayedSNAblation reproduces the §4.4 failure mode at system
// level: OutRAN with MLFQ reordering but WITHOUT delayed SN numbering
// produces PDCP decipher failures at the UE under a small SN space,
// while the full design produces none.
func TestDelayedSNAblation(t *testing.T) {
	run := func(delayed bool) Stats {
		cfg := smallConfig(SchedOutRAN)
		cfg.PDCPSNBits = 7 // small HFN window to make desync observable
		cfg.OutRAN.DelayedSN = delayed
		cfg.DisableHARQ = true // isolate the reordering effect
		cell, err := NewCell(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// One long flow and a stream of shorts on the same UE: shorts
		// continually overtake the long flow's queued packets.
		cell.Eng.At(sim.Millisecond, func() {
			if err := cell.StartFlow(0, 2*1024*1024, FlowOptions{}); err != nil {
				t.Error(err)
			}
		})
		for i := 0; i < 60; i++ {
			at := sim.Time(i+2) * 20 * sim.Millisecond
			cell.Eng.At(at, func() {
				if err := cell.StartFlow(0, 6*1024, FlowOptions{}); err != nil {
					t.Error(err)
				}
			})
		}
		cell.Run(20 * sim.Second)
		return cell.CollectStats()
	}
	with := run(true)
	without := run(false)
	if with.DecipherFailures != 0 {
		t.Fatalf("full design had %d decipher failures", with.DecipherFailures)
	}
	if without.DecipherFailures == 0 {
		t.Fatal("ablation (immediate SN + MLFQ) produced no decipher failures; the §4.4 hazard is not being exercised")
	}
}

func TestPriorityResetWiring(t *testing.T) {
	cfg := smallConfig(SchedOutRAN)
	cfg.OutRAN.ResetPeriod = 100 * sim.Millisecond
	cell, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	cell.Eng.At(sim.Millisecond, func() {
		if err := cell.StartFlow(0, 500*1024, FlowOptions{OnComplete: func(sim.Time) { done = true }}); err != nil {
			t.Fatal(err)
		}
	})
	cell.Run(30 * sim.Second)
	if !done {
		t.Fatal("flow with periodic resets did not complete")
	}
}

func TestAMModeEndToEnd(t *testing.T) {
	cfg := smallConfig(SchedOutRAN)
	cfg.RLC = AM
	cell, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for i := 0; i < 5; i++ {
		i := i
		cell.Eng.At(sim.Time(i+1)*50*sim.Millisecond, func() {
			if err := cell.StartFlow(i%cfg.NumUEs, 100*1024, FlowOptions{OnComplete: func(sim.Time) { done++ }}); err != nil {
				t.Fatal(err)
			}
		})
	}
	cell.Run(30 * sim.Second)
	if done != 5 {
		st := cell.CollectStats()
		t.Fatalf("AM mode completed %d/5 flows; stats %+v", done, st)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func() (sim.Time, Stats) {
		cfg := smallConfig(SchedOutRAN)
		cell, err := NewCell(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var fct sim.Time
		cell.Eng.At(sim.Millisecond, func() {
			cell.StartFlow(0, 200*1024, FlowOptions{OnComplete: func(d sim.Time) { fct = d }})
		})
		cell.Run(20 * sim.Second)
		return fct, cell.CollectStats()
	}
	f1, s1 := run()
	f2, s2 := run()
	if f1 != f2 {
		t.Fatalf("same seed, different FCT: %v vs %v", f1, f2)
	}
	if s1 != s2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", s1, s2)
	}
}

func TestQoSShortFlowsMetaOnlyForOracle(t *testing.T) {
	cfg := smallConfig(SchedPSS)
	cfg.QoSShortFlows = true
	cell, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	cell.Eng.At(sim.Millisecond, func() {
		cell.StartFlow(0, 5*1024, FlowOptions{OnComplete: func(sim.Time) { done = true }})
	})
	cell.Run(10 * sim.Second)
	if !done {
		t.Fatal("QoS short flow did not complete under PSS")
	}
}

func TestFCTClassesPopulated(t *testing.T) {
	cell, err := NewCell(smallConfig(SchedPF))
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int64{5 * 1024, 50 * 1024, 500 * 1024}
	for i, sz := range sizes {
		sz := sz
		cell.Eng.At(sim.Time(i+1)*10*sim.Millisecond, func() {
			cell.StartFlow(i, sz, FlowOptions{})
		})
	}
	cell.Run(30 * sim.Second)
	if cell.FCT.ByClass(metrics.Short).Count != 1 ||
		cell.FCT.ByClass(metrics.Medium).Count != 1 ||
		cell.FCT.ByClass(metrics.Long).Count != 1 {
		t.Fatalf("class counts wrong: %+v", cell.FCT.Overall())
	}
}
