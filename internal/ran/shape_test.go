package ran

import (
	"testing"

	"outran/internal/metrics"
	"outran/internal/rng"
	"outran/internal/sim"
	"outran/internal/workload"
)

// runLoaded runs a sustained-load cell and returns the cell.
func runLoaded(t testing.TB, sched SchedulerKind, load float64, seed uint64, mut func(*Config)) *Cell {
	t.Helper()
	cfg := DefaultLTEConfig()
	cfg.Grid.NumRB = 50
	cfg.NumUEs = 20
	cfg.Scheduler = sched
	cfg.Seed = seed
	cfg.QoSShortFlows = sched == SchedPSS || sched == SchedCQA
	if mut != nil {
		mut(&cfg)
	}
	cell, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dur := 8 * sim.Second
	src, err := workload.Poisson(workload.PoissonConfig{
		Dist:            workload.LTECellular(),
		NumUEs:          cfg.NumUEs,
		Load:            load,
		CellCapacityBps: cell.EffectiveCapacityBps(),
		Duration:        dur,
	}, rng.New(seed+1000))
	if err != nil {
		t.Fatal(err)
	}
	cell.ScheduleSource(src, 0, dur)
	cell.Eng.At(dur, cell.Tracker.Freeze)
	cell.Run(dur + 10*sim.Second)
	return cell
}

// TestMLFQQueueCountSteady checks §4.2's claim that performance is
// steady for K > 4: K=4 and K=8 MLFQ configurations should produce
// similar short-flow FCT (within a generous tolerance — the claim is
// "no further improvement", not equality).
func TestMLFQQueueCountSteady(t *testing.T) {
	if testing.Short() {
		t.Skip("loaded-cell comparison is slow")
	}
	run := func(k int) sim.Time {
		cell := runLoaded(t, SchedOutRAN, 0.6, 21, func(c *Config) {
			c.OutRAN.Queues = k
			c.OutRAN.Thresholds = nil
		})
		return cell.FCT.ByClass(metrics.Short).Mean
	}
	k4 := run(4)
	k8 := run(8)
	t.Logf("short FCT: K=4 %v, K=8 %v", k4, k8)
	if k8 > k4*2 || k4 > k8*2 {
		t.Fatalf("K sensitivity too strong: K=4 %v vs K=8 %v", k4, k8)
	}
}

// TestPaperShape verifies the headline comparative claims of the paper
// on a moderate-size run: OutRAN improves short-flow FCT over PF while
// preserving most of PF's spectral efficiency and fairness; SRJF also
// improves short FCT but collapses both system metrics.
func TestPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("loaded-cell comparison is slow")
	}
	load := 0.6
	pf := runLoaded(t, SchedPF, load, 11, nil)
	outran := runLoaded(t, SchedOutRAN, load, 11, nil)
	srjf := runLoaded(t, SchedSRJF, load, 11, nil)

	type row struct {
		name     string
		short    metrics.Stats
		long     metrics.Stats
		se, fair float64
	}
	rows := []row{}
	for _, c := range []struct {
		n string
		c *Cell
	}{{"PF", pf}, {"OutRAN", outran}, {"SRJF", srjf}} {
		st := c.c.CollectStats()
		rows = append(rows, row{
			name:  c.n,
			short: c.c.FCT.ByClass(metrics.Short),
			long:  c.c.FCT.ByClass(metrics.Long),
			se:    st.MeanSpectralEff,
			fair:  st.MeanFairnessIndex,
		})
		t.Logf("%-7s shortFCT mean=%v p95=%v  longFCT mean=%v  SE=%.3f fair=%.3f (flows %d/%d) drops=%d decipher=%d reasm=%d harqFail=%d qdelay=%v qdelayShort=%v",
			c.n, rows[len(rows)-1].short.Mean, rows[len(rows)-1].short.P95,
			rows[len(rows)-1].long.Mean, rows[len(rows)-1].se, rows[len(rows)-1].fair,
			st.FlowsCompleted, st.FlowsStarted,
			st.BufferDrops, st.DecipherFailures, st.ReassemblyDrops, st.HARQFailures,
			c.c.Delay.Mean(), c.c.Delay.MeanShort())
	}
	pfR, outR := rows[0], rows[1]
	if outR.short.Mean >= pfR.short.Mean {
		t.Errorf("OutRAN short FCT %v not better than PF %v", outR.short.Mean, pfR.short.Mean)
	}
	if outR.se < 0.90*pfR.se {
		t.Errorf("OutRAN SE %.3f lost more than 10%% of PF %.3f", outR.se, pfR.se)
	}
	if outR.fair < 0.90*pfR.fair {
		t.Errorf("OutRAN fairness %.3f lost more than 10%% of PF %.3f", outR.fair, pfR.fair)
	}
}
