package ran

import (
	"fmt"
	"io"

	"outran/internal/obs"
	"outran/internal/rng"
	"outran/internal/sim"
	"outran/internal/workload"
)

// Harness is the single run entry point shared by the binaries, the
// experiment harnesses, the fault runner and the multi-cell deployment
// runtime: build the cell, attach the workload, run, summarize. It
// encodes the measurement methodology once — a warm-up transient whose
// flows are excluded, a recorded main window, and a pressure tail that
// keeps arrivals flowing so flows recorded near the window's end
// complete under sustained load.
//
// The traffic itself is declared on Config.Workload (a workload.Spec):
// the harness instantiates it against the cell's effective capacity and
// the arrival span, pulls the resulting Source, and schedules every
// flow. Keeping the spec on the Config means one value pins the whole
// run — topology, scheduler, seed and offered traffic — and the
// checkpoint fingerprint covers it.
type Harness struct {
	// Config describes the cell and its workload. NewCell defaults and
	// validates it.
	Config Config

	// Warmup/Window/Tail partition the arrival span: flows arriving in
	// [0,Warmup) and [Warmup+Window,span) are scheduled but excluded
	// from the FCT recorder; only the main window is measured. Drain is
	// extra run time after the last arrival so in-flight flows finish.
	Warmup sim.Time
	Window sim.Time
	Tail   sim.Time
	Drain  sim.Time

	// WorkloadSeed pins the arrival process; 0 derives it from the cell
	// seed (Config.Seed + 7919) so one seed still pins the whole run.
	WorkloadSeed uint64

	// WorkloadTrace, when non-nil, receives the exact flow schedule the
	// run offered as a versioned JSONL trace (workload.TraceWriter), in
	// pull order. Replaying it via Spec.TraceFile reproduces the run
	// byte-identically. Deliberately not part of Config: io.Writer is
	// not plain data and must stay out of the checkpoint fingerprint.
	WorkloadTrace io.Writer

	// Tracer, when non-nil, is installed on the cell before any event
	// runs (see Cell.SetTracer).
	Tracer *obs.Tracer

	// Setup, when non-nil, runs after the cell is built and before any
	// workload is scheduled — the attachment point for fault injection,
	// invariant monitors and custom hooks.
	Setup func(*Cell) error

	// Snapshots enables the cell's pending-event registry so the run
	// can be checkpointed and resumed byte-identically (Cell.Snapshot /
	// Cell.RestoreSnapshot). Off by default: the registry is cheap but
	// not free, and most runs never checkpoint.
	Snapshots bool
}

// Total returns the full run horizon: arrival span plus drain.
func (h Harness) Total() sim.Time { return h.Warmup + h.Window + h.Tail + h.Drain }

// Build constructs the cell and schedules the workload, the tracker
// reset/freeze boundaries, and nothing else — the caller drives the
// engine (the deployment runtime needs to pause at handover barriers).
// Most callers want Run.
func (h Harness) Build() (*Cell, error) {
	cell, err := NewCell(h.Config)
	if err != nil {
		return nil, err
	}
	if h.Snapshots {
		// Before anything else is scheduled: the registry must see
		// every workload arrival and tracker boundary.
		cell.EnableSnapshots()
	}
	if h.Tracer != nil {
		cell.SetTracer(h.Tracer)
	}
	if h.Setup != nil {
		if err := h.Setup(cell); err != nil {
			return nil, fmt.Errorf("ran: harness setup: %w", err)
		}
	}
	span := h.Warmup + h.Window + h.Tail
	spec := cell.Config().Workload
	if spec.Enabled() {
		seed := h.WorkloadSeed
		if seed == 0 {
			seed = cell.Config().Seed + 7919
		}
		src, err := spec.Build(workload.Env{
			NumUEs:      cell.Config().NumUEs,
			CapacityBps: cell.EffectiveCapacityBps(),
			Span:        span,
		}, rng.New(seed))
		if err != nil {
			return nil, fmt.Errorf("ran: harness workload: %w", err)
		}
		var tw *workload.TraceWriter
		if h.WorkloadTrace != nil {
			tw = workload.NewTraceWriter(h.WorkloadTrace)
			src = workload.Tee(src, tw)
		}
		cell.ScheduleSource(src, h.Warmup, h.Warmup+h.Window)
		if tw != nil {
			if err := tw.Flush(); err != nil {
				return nil, fmt.Errorf("ran: harness workload trace: %w", err)
			}
		}
	}
	if h.Warmup > 0 {
		cell.ScheduleTrackerReset(h.Warmup)
	}
	if h.Window > 0 {
		cell.ScheduleTrackerFreeze(h.Warmup + h.Window)
	}
	return cell, nil
}

// Run builds the cell and drives it to the end of the horizon.
func (h Harness) Run() (*Cell, error) {
	cell, err := h.Build()
	if err != nil {
		return nil, err
	}
	cell.Run(h.Total())
	return cell, nil
}
