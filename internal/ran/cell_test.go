package ran

import (
	"testing"

	"outran/internal/rng"
	"outran/internal/sim"
	"outran/internal/workload"
)

func smallConfig(sched SchedulerKind) Config {
	cfg := DefaultLTEConfig()
	cfg.Grid.NumRB = 25
	cfg.NumUEs = 6
	cfg.Scheduler = sched
	cfg.Seed = 42
	return cfg
}

func TestSingleFlowCompletes(t *testing.T) {
	cfg := smallConfig(SchedPF)
	cell, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	var fct sim.Time
	cell.Eng.At(10*sim.Millisecond, func() {
		err := cell.StartFlow(0, 50*1024, FlowOptions{OnComplete: func(d sim.Time) {
			done = true
			fct = d
		}})
		if err != nil {
			t.Fatal(err)
		}
	})
	cell.Run(10 * sim.Second)
	if !done {
		st := cell.CollectStats()
		t.Fatalf("flow did not complete; stats=%+v", st)
	}
	if fct <= 0 || fct > 5*sim.Second {
		t.Fatalf("implausible FCT %v", fct)
	}
	t.Logf("FCT=%v stats=%+v", fct, cell.CollectStats())
}

func TestManyFlowsAllSchedulers(t *testing.T) {
	for _, sched := range []SchedulerKind{SchedPF, SchedMT, SchedRR, SchedSRJF, SchedPSS, SchedCQA, SchedOutRAN, SchedStrictMLFQ} {
		sched := sched
		t.Run(string(sched), func(t *testing.T) {
			cfg := smallConfig(sched)
			cfg.QoSShortFlows = sched == SchedPSS || sched == SchedCQA
			cell, err := NewCell(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(7)
			src, err := workload.Poisson(workload.PoissonConfig{
				Dist:            workload.LTECellular(),
				NumUEs:          cfg.NumUEs,
				Load:            0.4,
				CellCapacityBps: cell.EstimateCapacityBps(),
				Duration:        3 * sim.Second,
				MaxFlows:        60,
			}, r)
			if err != nil {
				t.Fatal(err)
			}
			cell.ScheduleSource(src, 0, 3*sim.Second)
			cell.Run(20 * sim.Second)
			st := cell.CollectStats()
			if st.FlowsStarted == 0 {
				t.Fatal("no flows started")
			}
			frac := float64(st.FlowsCompleted) / float64(st.FlowsStarted)
			if frac < 0.95 {
				t.Fatalf("only %d/%d flows completed; stats=%+v", st.FlowsCompleted, st.FlowsStarted, st)
			}
			t.Logf("%s: %d flows, overall FCT %v, SE %.2f, fairness %.2f",
				sched, st.FlowsCompleted, cell.FCT.Overall().Mean, st.MeanSpectralEff, st.MeanFairnessIndex)
		})
	}
}
