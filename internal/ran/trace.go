package ran

import (
	"outran/internal/core"
	"outran/internal/ip"
	"outran/internal/metrics"
	"outran/internal/obs"
	"outran/internal/sim"
)

// trackerObs forwards the CellTracker's sample folds and window
// boundaries to the tracer so the end-of-run spectral-efficiency and
// fairness aggregates can be recomputed from the trace alone — the
// decision-audit cross-check in cmd/outran-trace depends on replaying
// exactly the samples the tracker folded.
type trackerObs struct{ c *Cell }

func (o trackerObs) OnSample(now sim.Time, se, fair, activeSE float64) {
	o.c.tracer.Emit(obs.Event{T: now, Type: obs.EvSESample, SE: se, Fairness: fair, ActiveSE: activeSE})
}

func (o trackerObs) OnReset() {
	o.c.tracer.Emit(obs.Event{T: o.c.Eng.Now(), Type: obs.EvTrackerReset})
}

func (o trackerObs) OnFreeze() {
	o.c.tracer.Emit(obs.Event{T: o.c.Eng.Now(), Type: obs.EvTrackerFreeze})
}

// SetTracer installs (or, with a nil/inert tracer, removes) the
// structured-event tracer. Call after NewCell and before Run: the
// opening meta event is stamped at the current simulation time and the
// per-layer hooks start firing from the next event onward. All event
// timestamps come from the event engine, so two same-seed runs emit
// byte-identical traces.
func (c *Cell) SetTracer(t *obs.Tracer) { c.installTracer(t, true) }

// SetTracerResumed installs a tracer without re-emitting the opening
// meta event — the restore path uses it when appending to a trace file
// that already holds the original run's meta line.
func (c *Cell) SetTracerResumed(t *obs.Tracer) { c.installTracer(t, false) }

func (c *Cell) installTracer(t *obs.Tracer, emitMeta bool) {
	c.tracer = t
	if !t.Enabled() {
		c.Tracker.Obs = nil
		if iu, ok := c.sched.(*core.InterUser); ok {
			iu.OnDecision = nil
		}
		for _, ue := range c.ues {
			ue.pdcpTx.OnSNAssign = nil
			ue.pdcpTx.OnLevelChange = nil
			if ue.amTx != nil {
				ue.amTx.OnRetx = nil
			}
		}
		return
	}
	if emitMeta {
		t.Emit(obs.Event{
			T: c.Eng.Now(), Type: obs.EvMeta,
			Sched:        c.sched.Name(),
			UEs:          len(c.ues),
			RBs:          c.grid.NumRB,
			Seed:         c.cfg.Seed,
			BandwidthHz:  c.grid.BandwidthHz(),
			TTINanos:     c.grid.TTI(),
			SamplePeriod: c.Tracker.SamplePeriod,
		})
	}
	c.Tracker.Obs = trackerObs{c}
	if iu, ok := c.sched.(*core.InterUser); ok {
		iu.OnDecision = func(now sim.Time, rb, best, sel int, bestM, selM float64, selLevel, candidates int) {
			c.tracer.Emit(obs.Event{
				T: now, Type: obs.EvDecision,
				RB: rb, Best: best, Sel: sel, BestM: bestM, SelM: selM,
				Level: selLevel, Cands: candidates,
			})
		}
	}
	for _, ue := range c.ues {
		c.wireTraceHooks(ue)
	}
}

// Tracer returns the installed tracer (nil when tracing is off).
func (c *Cell) Tracer() *obs.Tracer { return c.tracer }

// wireTraceHooks attaches the per-UE flow-lifecycle hooks to the UE's
// current PDCP/RLC entities. wireBearer calls it on every (re)build so
// RRC re-establishment does not silently drop the hooks; SetTracer
// calls it for the initial installation. A disabled tracer leaves the
// hooks nil — the layers' fast path.
func (c *Cell) wireTraceHooks(ue *ueCtx) {
	if !c.tracer.Enabled() {
		return
	}
	id := ue.id
	ue.pdcpTx.OnSNAssign = func(flow ip.FiveTuple, sn uint32) {
		c.tracer.Emit(obs.Event{
			T: c.Eng.Now(), Type: obs.EvPDCPSN,
			UE: id, Flow: flow.String(), SN: int64(sn),
		})
	}
	var thresholds []int64
	if c.policy != nil {
		thresholds = c.policy.Thresholds()
	}
	ue.pdcpTx.OnLevelChange = func(flow ip.FiveTuple, level int, sent int64) {
		var thr int64
		if level > 0 && level-1 < len(thresholds) {
			thr = thresholds[level-1]
		}
		c.tracer.Emit(obs.Event{
			T: c.Eng.Now(), Type: obs.EvMLFQ,
			UE: id, Flow: flow.String(), Level: level, Sent: sent, Threshold: thr,
		})
	}
	if ue.amTx != nil {
		ue.amTx.OnRetx = func(sn uint32, bytes, attempt int) {
			c.tracer.Emit(obs.Event{
				T: c.Eng.Now(), Type: obs.EvRLCRetx,
				UE: id, SN: int64(sn), Bytes: bytes, Attempts: attempt, Retx: true,
			})
		}
	}
}

// Summary assembles the complete JSON-exportable run summary: the
// configuration line, the consolidated counter schema, the FCT
// distribution per size class and the flattened metrics registry.
func (c *Cell) Summary() metrics.RunSummary {
	return metrics.RunSummary{
		Scheduler:  c.sched.Name(),
		RLC:        c.cfg.RLC.String(),
		UEs:        len(c.ues),
		RBs:        c.grid.NumRB,
		Seed:       c.cfg.Seed,
		Counters:   c.CollectStats(),
		FCTOverall: c.FCT.Overall(),
		FCTShort:   c.FCT.ByClass(metrics.Short),
		FCTMedium:  c.FCT.ByClass(metrics.Medium),
		FCTLong:    c.FCT.ByClass(metrics.Long),
		DelayMean:  c.Delay.Mean(),
		DelayShort: c.Delay.MeanShort(),
		Metrics:    c.Reg.Flatten(),
		Phases:     c.prof.NsPerTTI(),
	}
}
