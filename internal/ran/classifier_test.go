package ran

import (
	"testing"

	"outran/internal/core"
	"outran/internal/pdcp"
)

func TestMLFQClassifierIgnoresOracle(t *testing.T) {
	c := mlfqClassifier{core.MustMLFQ([]int64{1000})}
	// Same sent-bytes, wildly different oracle metadata: identical
	// priority (information-agnosticism is the design's core claim).
	a := c.Classify(500, pdcp.FlowMeta{FlowSize: 10})
	b := c.Classify(500, pdcp.FlowMeta{FlowSize: 1 << 30, QoS: true})
	if a != b {
		t.Fatal("MLFQ classifier used oracle metadata")
	}
	if c.Classify(0, pdcp.FlowMeta{}) != 0 || c.Classify(1000, pdcp.FlowMeta{}) != 1 {
		t.Fatal("demotion boundary wrong")
	}
}

func TestSJFClassifierOrdersBySize(t *testing.T) {
	c := newSJFClassifier()
	small := c.Classify(0, pdcp.FlowMeta{FlowSize: 2 * 1024})
	mid := c.Classify(0, pdcp.FlowMeta{FlowSize: 100 * 1024})
	big := c.Classify(0, pdcp.FlowMeta{FlowSize: 50 * 1024 * 1024})
	if !(small < mid && mid < big) {
		t.Fatalf("SJF ordering wrong: %d %d %d", small, mid, big)
	}
	unknown := c.Classify(0, pdcp.FlowMeta{FlowSize: -1})
	if unknown != c.queues()-1 {
		t.Fatal("unknown size should sort last")
	}
	// Sent bytes must not matter for the oracle classifier.
	if c.Classify(1<<30, pdcp.FlowMeta{FlowSize: 2 * 1024}) != small {
		t.Fatal("SJF classifier used sent bytes")
	}
}

func TestQoSClassifier(t *testing.T) {
	var c qosClassifier
	if c.Classify(0, pdcp.FlowMeta{QoS: true}) != 0 {
		t.Fatal("QoS flow not top priority")
	}
	if c.Classify(0, pdcp.FlowMeta{}) != 1 {
		t.Fatal("best-effort flow not second priority")
	}
}

func TestIntraQueueingSelection(t *testing.T) {
	policy := core.DefaultMLFQ()
	cases := []struct {
		sched  SchedulerKind
		qos    bool
		queues int
	}{
		{SchedPF, false, 1},
		{SchedMT, false, 1},
		{SchedOutRAN, false, policy.NumQueues()},
		{SchedStrictMLFQ, false, policy.NumQueues()},
		{SchedSRJF, false, newSJFClassifier().queues()},
		{SchedPSS, true, 2},
		{SchedCQA, true, 2},
		{SchedPSS, false, 1}, // QoS baselines without QoS marking degrade to FIFO
	}
	for _, c := range cases {
		cfg := Config{Scheduler: c.sched, QoSShortFlows: c.qos}
		_, q := cfg.intraQueueing(policy)
		if q != c.queues {
			t.Errorf("%s (qos=%v): %d queues, want %d", c.sched, c.qos, q, c.queues)
		}
	}
}

func TestBuildSchedulerKinds(t *testing.T) {
	for _, k := range []SchedulerKind{SchedPF, SchedMT, SchedRR, SchedSRJF, SchedPSS, SchedCQA, SchedOutRAN, SchedStrictMLFQ} {
		cfg := DefaultLTEConfig()
		cfg.Scheduler = k
		s, err := cfg.buildScheduler()
		if err != nil {
			t.Errorf("%s: %v", k, err)
			continue
		}
		if s.Name() == "" {
			t.Errorf("%s: empty name", k)
		}
	}
	cfg := DefaultLTEConfig()
	cfg.Scheduler = "bogus"
	if _, err := cfg.buildScheduler(); err == nil {
		t.Error("bogus scheduler accepted")
	}
	cfg.Scheduler = SchedOutRAN
	cfg.InnerScheduler = SchedSRJF
	if _, err := cfg.buildScheduler(); err == nil {
		t.Error("OutRAN wrapping SRJF accepted")
	}
}

func TestOutRANTopKWiring(t *testing.T) {
	cfg := DefaultLTEConfig()
	cfg.Scheduler = SchedOutRAN
	cfg.OutRAN.TopK = 3
	s, err := cfg.buildScheduler()
	if err != nil {
		t.Fatal(err)
	}
	iu, ok := s.(*core.InterUser)
	if !ok {
		t.Fatalf("unexpected scheduler type %T", s)
	}
	if iu.TopK != 3 {
		t.Fatal("TopK not wired through")
	}
}

func TestRLCModeString(t *testing.T) {
	if UM.String() != "UM" || AM.String() != "AM" {
		t.Fatal("mode strings")
	}
}
