package ran

import (
	"outran/internal/core"
	"outran/internal/pdcp"
)

// mlfqClassifier adapts OutRAN's information-agnostic MLFQ policy to
// the PDCP classifier interface: priority depends only on the flow's
// sent bytes, never on the oracle metadata.
type mlfqClassifier struct{ policy *core.MLFQ }

func (c mlfqClassifier) Classify(sentBytes int64, _ pdcp.FlowMeta) int {
	return c.policy.PriorityFor(sentBytes)
}

// sjfClassifier gives the SRJF baseline its clairvoyant intra-user
// flow ordering: packets are queued by the flow's total size so the
// shortest flow's packets bypass longer flows within a user, matching
// the flow-granular scheduling the paper simulates in NS-3.
type sjfClassifier struct{ thresholds []int64 }

// sjfBuckets spans the flow-size range in log steps.
func newSJFClassifier() sjfClassifier {
	return sjfClassifier{thresholds: []int64{
		4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024, 8 * 1024 * 1024,
	}}
}

func (c sjfClassifier) queues() int { return len(c.thresholds) + 1 }

func (c sjfClassifier) Classify(_ int64, meta pdcp.FlowMeta) int {
	if meta.FlowSize < 0 {
		return len(c.thresholds) // unknown size sorts last
	}
	for i, t := range c.thresholds {
		if meta.FlowSize <= t {
			return i
		}
	}
	return len(c.thresholds)
}

// qosClassifier gives the PSS/CQA baselines their two-level intra-user
// ordering: dedicated-QoS (short, delay-budgeted) flows first, the
// default bearer after — the per-bearer queueing of the LENA
// schedulers.
type qosClassifier struct{}

func (qosClassifier) Classify(_ int64, meta pdcp.FlowMeta) int {
	if meta.QoS {
		return 0
	}
	return 1
}

// intraQueueing returns the classifier and queue count for the
// configured scheduler, or (nil, 1) for plain FIFO.
func (c *Config) intraQueueing(policy *core.MLFQ) (pdcp.Classifier, int) {
	switch c.Scheduler {
	case SchedOutRAN, SchedStrictMLFQ:
		return mlfqClassifier{policy}, policy.NumQueues()
	case SchedSRJF:
		cls := newSJFClassifier()
		return cls, cls.queues()
	case SchedPSS, SchedCQA:
		if c.QoSShortFlows {
			return qosClassifier{}, 2
		}
	}
	return nil, 1
}
