package ran

import (
	"strings"
	"testing"

	"outran/internal/sim"
)

func TestWithDefaultsFillsUnsetFields(t *testing.T) {
	c := Config{Grid: DefaultLTEConfig().Grid}.WithDefaults()
	if c.NumUEs != 1 {
		t.Errorf("NumUEs = %d, want 1", c.NumUEs)
	}
	if c.FairnessWindow != sim.Second {
		t.Errorf("FairnessWindow = %v, want 1s", c.FairnessWindow)
	}
	if c.BufferSDUs != 128 {
		t.Errorf("BufferSDUs = %d, want 128", c.BufferSDUs)
	}
	if c.CQIPeriod != 5*sim.Millisecond {
		t.Errorf("CQIPeriod = %v, want 5ms", c.CQIPeriod)
	}
	if c.PDCPSNBits != 12 {
		t.Errorf("PDCPSNBits = %d, want 12", c.PDCPSNBits)
	}
	if c.Scheduler != SchedPF || c.InnerScheduler != SchedPF {
		t.Errorf("schedulers = %q/%q, want PF/PF", c.Scheduler, c.InnerScheduler)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("defaulted config does not validate: %v", err)
	}
	// Set fields survive defaulting untouched.
	d := DefaultLTEConfig()
	d.NumUEs = 7
	d.BufferSDUs = 64
	if got := d.WithDefaults(); got.NumUEs != 7 || got.BufferSDUs != 64 {
		t.Errorf("WithDefaults clobbered set fields: %+v", got)
	}
}

// TestValidateNamesOffendingField checks each rejection path mentions
// the bad field, so config errors from the binaries are actionable.
func TestValidateNamesOffendingField(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string // substring of the error
	}{
		{"ues", func(c *Config) { c.NumUEs = -1 }, "NumUEs"},
		{"scheduler", func(c *Config) { c.Scheduler = "bogus" }, "Scheduler"},
		{"inner", func(c *Config) { c.Scheduler = SchedOutRAN; c.InnerScheduler = SchedRR }, "InnerScheduler"},
		{"rlc", func(c *Config) { c.RLC = RLCMode(9) }, "RLC"},
		{"fairness", func(c *Config) { c.FairnessWindow = -sim.Second }, "FairnessWindow"},
		{"buffer", func(c *Config) { c.BufferSDUs = -1 }, "BufferSDUs"},
		{"cqi", func(c *Config) { c.CQIPeriod = -sim.Millisecond }, "CQIPeriod"},
		{"snbits low", func(c *Config) { c.PDCPSNBits = 4 }, "PDCPSNBits"},
		{"snbits high", func(c *Config) { c.PDCPSNBits = 19 }, "PDCPSNBits"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := DefaultLTEConfig()
			tc.mut(&c)
			err := c.Validate()
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}
}

func TestNewCellRejectsInvalidConfig(t *testing.T) {
	c := DefaultLTEConfig()
	c.Scheduler = "bogus"
	if _, err := NewCell(c); err == nil || !strings.Contains(err.Error(), "invalid cell config") {
		t.Fatalf("NewCell error = %v, want wrapped validation error", err)
	}
}

func TestConfigBuilders(t *testing.T) {
	c := DefaultLTEConfig().WithTopology(12, 30).ForScheduler(SchedPSS).WithSeed(99)
	if c.NumUEs != 12 || c.Grid.NumRB != 30 || c.Seed != 99 {
		t.Fatalf("builder chain: %+v", c)
	}
	if c.Scheduler != SchedPSS || !c.QoSShortFlows {
		t.Fatalf("ForScheduler(PSS) must enable the short-flow QoS profile: %+v", c)
	}
	c = c.ForScheduler(SchedOutRAN)
	if c.QoSShortFlows {
		t.Fatal("ForScheduler(OutRAN) must clear the short-flow QoS profile")
	}
	// rbs = 0 keeps the grid width.
	if got := DefaultLTEConfig().WithTopology(5, 0); got.Grid.NumRB != DefaultLTEConfig().Grid.NumRB {
		t.Fatalf("WithTopology(5, 0) changed the grid: %d RBs", got.Grid.NumRB)
	}
}
