package ran

import (
	"os"
	"testing"
	"time"

	"outran/internal/obs"
	"outran/internal/rng"
	"outran/internal/sim"
	"outran/internal/workload"
)

// overheadScenario runs the fixed benchmark scenario once. tracer nil
// means tracing fully off (SetTracer never called); a nil-sink tracer
// exercises the Enabled() fast path at every emit site.
func overheadScenario(tb testing.TB, tracer *obs.Tracer, withTracer bool) {
	cfg := DefaultLTEConfig()
	cfg.NumUEs = 8
	cfg.Grid.NumRB = 25
	cfg.Scheduler = SchedOutRAN
	cfg.Seed = 42
	cell, err := NewCell(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if withTracer {
		cell.SetTracer(tracer)
	}
	const dur = 800 * sim.Millisecond
	src, err := workload.Poisson(workload.PoissonConfig{
		Dist:            workload.LTECellular(),
		NumUEs:          cfg.NumUEs,
		Load:            0.7,
		CellCapacityBps: cell.EffectiveCapacityBps(),
		Duration:        dur,
	}, rng.New(9))
	if err != nil {
		tb.Fatal(err)
	}
	cell.ScheduleSource(src, 0, dur)
	cell.Run(dur + 4*sim.Second)
}

// BenchmarkTracingDisabled measures the scenario with tracing compiled
// in but never installed — the baseline every emit site's nil guard is
// compared against.
func BenchmarkTracingDisabled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		overheadScenario(b, nil, false)
	}
}

// BenchmarkTracingNilSink measures the same scenario with a tracer
// installed whose sink is nil: Enabled() is false, so every emit site
// takes the same branch as the disabled case. The delta between the
// two benchmarks is the total cost of the tracing layer when off.
func BenchmarkTracingNilSink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		overheadScenario(b, obs.NewTracer(nil), true)
	}
}

// BenchmarkTracingRingSink measures full tracing into an in-memory
// ring, bounding what a live trace costs.
func BenchmarkTracingRingSink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		overheadScenario(b, obs.NewTracer(obs.NewRingSink(1<<16)), true)
	}
}

// TestNilSinkOverheadGate is the CI overhead gate (satellite of the
// tracing issue): with OUTRAN_OVERHEAD_GATE=1 it times the scenario
// min-of-5 with tracing fully off and with a nil-sink tracer, and
// fails when the nil-sink path regresses more than 5%. Min-of-N is
// the standard noise filter for wall-clock gates; the env guard keeps
// the timing off developer `go test ./...` runs.
func TestNilSinkOverheadGate(t *testing.T) {
	if os.Getenv("OUTRAN_OVERHEAD_GATE") == "" {
		t.Skip("set OUTRAN_OVERHEAD_GATE=1 to run the timing gate")
	}
	const rounds = 5
	//outran:wallclock benchmark timing for the overhead gate; never enters simulation state
	timeOne := func(withTracer bool) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < rounds; i++ {
			start := time.Now()
			if withTracer {
				overheadScenario(t, obs.NewTracer(nil), true)
			} else {
				overheadScenario(t, nil, false)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	// Warm both paths once so neither pays first-run costs.
	overheadScenario(t, nil, false)
	overheadScenario(t, obs.NewTracer(nil), true)
	disabled := timeOne(false)
	nilSink := timeOne(true)
	ratio := float64(nilSink) / float64(disabled)
	t.Logf("disabled %v, nil-sink %v, ratio %.3f", disabled, nilSink, ratio)
	if ratio > 1.05 {
		t.Fatalf("nil-sink tracing costs %.1f%% over disabled (budget 5%%): %v vs %v",
			100*(ratio-1), nilSink, disabled)
	}
}
