package ran

import (
	"bytes"
	"reflect"
	"testing"

	"outran/internal/metrics"
	"outran/internal/obs"
	"outran/internal/sim"
	"outran/internal/snapshot"
	"outran/internal/workload"
)

// resumeScenario is a small but complete measured run: warm-up,
// recorded window, pressure tail, drain — every phase a checkpoint can
// land in.
func resumeScenario(sched SchedulerKind, rlcMode RLCMode) Harness {
	cfg := DefaultLTEConfig()
	cfg.NumUEs = 6
	cfg.Grid.NumRB = 25
	cfg.Scheduler = sched
	cfg.RLC = rlcMode
	cfg.Seed = 42
	if sched == SchedOutRAN {
		// Exercise the MLFQ reset ticker across the snapshot boundary.
		cfg.OutRAN.ResetPeriod = 150 * sim.Millisecond
	}
	return Harness{
		Config:    cfg.WithWorkload(workload.PoissonSpec("lte", 0.7)),
		Warmup:    200 * sim.Millisecond,
		Window:    600 * sim.Millisecond,
		Tail:      200 * sim.Millisecond,
		Drain:     4 * sim.Second,
		Snapshots: true,
	}
}

type runResult struct {
	summary metrics.RunSummary
	fct     []metrics.FCTSample
	hash    uint64
	events  []obs.Event
}

// runUninterrupted drives the scenario start to finish in one process
// with a decision-hashing scheduler and an in-memory trace.
func runUninterrupted(t *testing.T, h Harness) runResult {
	t.Helper()
	sink := obs.NewRingSink(0)
	h.Tracer = obs.NewTracer(sink)
	cell, err := h.Build()
	if err != nil {
		t.Fatal(err)
	}
	hs := &hashingScheduler{inner: cell.sched}
	cell.sched = hs
	cell.Run(h.Total())
	return runResult{summary: cell.Summary(), fct: cell.FCT.Samples(), hash: hs.h, events: sink.Events()}
}

// runWithResume drives the same scenario to mid, snapshots, restores
// into a fresh cell (fresh scheduler wrapper seeded with the hash so
// the decision chain keeps folding), and finishes there.
func runWithResume(t *testing.T, h Harness, mid sim.Time) runResult {
	t.Helper()
	sinkA := obs.NewRingSink(0)
	h.Tracer = obs.NewTracer(sinkA)
	cellA, err := h.Build()
	if err != nil {
		t.Fatal(err)
	}
	hsA := &hashingScheduler{inner: cellA.sched}
	cellA.sched = hsA
	cellA.Run(mid)

	img, err := cellA.Snapshot()
	if err != nil {
		t.Fatalf("snapshot at %v: %v", mid, err)
	}
	a, err := snapshot.Open(img)
	if err != nil {
		t.Fatalf("open snapshot: %v", err)
	}

	cellB, err := NewCell(h.Config)
	if err != nil {
		t.Fatal(err)
	}
	sinkB := obs.NewRingSink(0)
	cellB.SetTracerResumed(obs.NewTracer(sinkB))
	if err := cellB.RestoreSnapshot(a); err != nil {
		t.Fatalf("restore: %v", err)
	}
	// A snapshot of the freshly restored cell must be byte-identical to
	// the one it was restored from — the round trip loses nothing.
	img2, err := cellB.Snapshot()
	if err != nil {
		t.Fatalf("re-snapshot after restore: %v", err)
	}
	if !bytes.Equal(img, img2) {
		t.Fatalf("snapshot -> restore -> snapshot is not byte-identical (%d vs %d bytes)", len(img), len(img2))
	}
	hsB := &hashingScheduler{inner: cellB.sched, h: hsA.h}
	cellB.sched = hsB
	cellB.Run(h.Total())

	events := append(sinkA.Events(), sinkB.Events()...)
	return runResult{summary: cellB.Summary(), fct: cellB.FCT.Samples(), hash: hsB.h, events: events}
}

func compareRuns(t *testing.T, ref, res runResult) {
	t.Helper()
	if len(ref.fct) == 0 {
		t.Fatal("no flows completed; the scenario is not exercising the stack")
	}
	if len(ref.fct) != len(res.fct) {
		t.Fatalf("uninterrupted run completed %d flows, resumed run %d", len(ref.fct), len(res.fct))
	}
	for i := range ref.fct {
		if ref.fct[i] != res.fct[i] {
			t.Fatalf("FCT trace diverges at flow %d: %+v vs %+v", i, ref.fct[i], res.fct[i])
		}
	}
	if ref.hash != res.hash {
		t.Fatalf("scheduler decision hashes differ: %#x vs %#x", ref.hash, res.hash)
	}
	if len(ref.events) != len(res.events) {
		t.Fatalf("trace lengths differ: %d vs %d events", len(ref.events), len(res.events))
	}
	for i := range ref.events {
		if ref.events[i] != res.events[i] {
			t.Fatalf("trace diverges at event %d:\n  uninterrupted: %+v\n  resumed:       %+v", i, ref.events[i], res.events[i])
		}
	}
	if !reflect.DeepEqual(ref.summary, res.summary) {
		t.Fatalf("summaries differ:\n uninterrupted: %+v\n resumed:       %+v", ref.summary, res.summary)
	}
}

// TestResumeEquivalence is the tentpole acceptance gate: a run
// checkpointed mid-flight and resumed in a fresh cell must continue
// byte-identically — same per-TTI scheduler decisions, same trace
// suffix, same per-flow FCTs, same end-of-run summary — for both the
// PF baseline and the full OutRAN stack (AM mode, MLFQ reset ticker).
func TestResumeEquivalence(t *testing.T) {
	cases := []struct {
		name  string
		sched SchedulerKind
		rlc   RLCMode
		mid   sim.Time
	}{
		// Mid-window, deliberately not TTI-aligned.
		{"PF-UM", SchedPF, UM, 433*sim.Millisecond + 137*sim.Microsecond},
		{"OutRAN-AM", SchedOutRAN, AM, 433*sim.Millisecond + 137*sim.Microsecond},
		// Checkpoint inside the warm-up transient.
		{"PF-UM-warmup", SchedPF, UM, 97 * sim.Millisecond},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			h := resumeScenario(tc.sched, tc.rlc)
			ref := runUninterrupted(t, h)
			res := runWithResume(t, h, tc.mid)
			compareRuns(t, ref, res)
		})
	}
}

// TestRestoreRejectsConfigMismatch: a snapshot restores only into a
// cell built from the identical effective configuration.
func TestRestoreRejectsConfigMismatch(t *testing.T) {
	h := resumeScenario(SchedPF, UM)
	cell, err := h.Build()
	if err != nil {
		t.Fatal(err)
	}
	cell.Run(50 * sim.Millisecond)
	img, err := cell.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	a, err := snapshot.Open(img)
	if err != nil {
		t.Fatal(err)
	}
	other := h.Config
	other.Seed = 43
	cellB, err := NewCell(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := cellB.RestoreSnapshot(a); err == nil {
		t.Fatal("restore into a different configuration succeeded; want error")
	}
}

// TestRestoreRejectsDoubleRestore: an instance accepts one restore per
// lifetime; a second would silently merge two runs' state.
func TestRestoreRejectsDoubleRestore(t *testing.T) {
	h := resumeScenario(SchedPF, UM)
	cell, err := h.Build()
	if err != nil {
		t.Fatal(err)
	}
	cell.Run(50 * sim.Millisecond)
	img, err := cell.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	a, err := snapshot.Open(img)
	if err != nil {
		t.Fatal(err)
	}
	cellB, err := NewCell(h.Config)
	if err != nil {
		t.Fatal(err)
	}
	if err := cellB.RestoreSnapshot(a); err != nil {
		t.Fatal(err)
	}
	if err := cellB.RestoreSnapshot(a); err == nil {
		t.Fatal("second restore into the same instance succeeded; want error")
	}
	// A cell that has already run is no restore target either.
	cellC, err := NewCell(h.Config)
	if err != nil {
		t.Fatal(err)
	}
	cellC.EnableSnapshots()
	cellC.Run(10 * sim.Millisecond)
	if err := cellC.RestoreSnapshot(a); err == nil {
		t.Fatal("restore into a cell that already ran succeeded; want error")
	}
}

// TestSnapshotRefusesUnserialisableFlows: persistent connections and
// completion callbacks cannot cross a checkpoint.
func TestSnapshotRefusesUnserialisableFlows(t *testing.T) {
	cfg := DefaultLTEConfig()
	cfg.NumUEs = 2
	cfg.Grid.NumRB = 15
	cfg.Seed = 5
	cell, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cell.EnableSnapshots()
	if err := cell.StartFlow(0, 20000, FlowOptions{OnComplete: func(sim.Time) {}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cell.Snapshot(); err == nil {
		t.Fatal("snapshot with a callback-bearing flow succeeded; want error")
	}
}

// TestSnapshotRequiresEnable: the registry must be on before snapshot.
func TestSnapshotRequiresEnable(t *testing.T) {
	cfg := DefaultLTEConfig()
	cfg.NumUEs = 2
	cfg.Grid.NumRB = 15
	cell, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cell.Snapshot(); err == nil {
		t.Fatal("snapshot without EnableSnapshots succeeded; want error")
	}
}

// TestRestoreRejectsCorruptSections: flipping a byte inside a section
// payload fails the file checksum; truncating a section fails the
// parse; both surface as errors, never panics.
func TestRestoreRejectsCorruptSections(t *testing.T) {
	h := resumeScenario(SchedPF, UM)
	cell, err := h.Build()
	if err != nil {
		t.Fatal(err)
	}
	cell.Run(250 * sim.Millisecond)
	img, err := cell.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), img...)
	bad[len(bad)/2] ^= 0x40
	if _, err := snapshot.Open(bad); err == nil {
		t.Fatal("corrupted snapshot opened cleanly; want checksum error")
	}
	if _, err := snapshot.Open(img[:len(img)-9]); err == nil {
		t.Fatal("truncated snapshot opened cleanly; want error")
	}
}
