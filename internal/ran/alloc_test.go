package ran

import (
	"testing"

	"outran/internal/analysis/probetest"
	"outran/internal/mac"
	"outran/internal/rlc"
	"outran/internal/sim"
)

// backloggedCell builds a cell with one large in-flight flow and runs
// it long enough that the RLC buffers and per-UE CQI state are warm.
func backloggedCell(t *testing.T) *Cell {
	t.Helper()
	cfg := smallConfig(SchedPF)
	cell, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cell.Eng.At(1*sim.Millisecond, func() {
		if err := cell.StartFlow(0, 5*1024*1024, FlowOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	cell.Run(50 * sim.Millisecond)
	return cell
}

// TestCellZeroAllocs pins the per-TTI cell paths annotated
// //outran:allocfree with AllocsPerRun probes; probetest.Run fails
// when the registry and the annotations drift apart.
func TestCellZeroAllocs(t *testing.T) {
	probetest.Run(t, ".", map[string]func(t *testing.T){
		"(*ueCtx).txStatus": func(t *testing.T) {
			cell := backloggedCell(t)
			ue := cell.ues[0]
			now := cell.Eng.Now()
			if st := ue.txStatus(now); st.TotalBytes == 0 {
				t.Fatal("UE 0 not backlogged; probe would be vacuous")
			}
			allocs := testing.AllocsPerRun(100, func() {
				ue.txStatus(now)
			})
			if allocs != 0 {
				t.Errorf("txStatus: %.1f allocs/call, want 0", allocs)
			}
		},
		"(*Cell).newTB": func(t *testing.T) {
			cell := backloggedCell(t)
			// Warm the free list so the steady-state path is exercised.
			cell.putTB(&harqTB{pdus: make([]*rlc.PDU, 0, 4), subbands: make([]int, 0, 4)})
			allocs := testing.AllocsPerRun(100, func() {
				cell.putTB(cell.newTB())
			})
			if allocs != 0 {
				t.Errorf("newTB/putTB cycle: %.1f allocs/call, want 0", allocs)
			}
		},
		"(*Cell).putTB": func(t *testing.T) {
			cell := backloggedCell(t)
			tb := &harqTB{pdus: make([]*rlc.PDU, 1, 4), subbands: make([]int, 2, 4)}
			allocs := testing.AllocsPerRun(100, func() {
				cell.putTB(tb)
				tb = cell.newTB()
			})
			if allocs != 0 {
				t.Errorf("putTB: %.1f allocs/call, want 0", allocs)
			}
		},
		"(*Cell).rbStats": func(t *testing.T) {
			cell := backloggedCell(t)
			alloc := mac.NewAllocation(cell.grid.NumRB)
			for b := range alloc.RBOwner {
				alloc.RBOwner[b] = 0
			}
			bits, nRB, _, _ := cell.rbStats(0, alloc)
			if bits == 0 || nRB != cell.grid.NumRB {
				t.Fatalf("rbStats(0) = %d bits over %d RBs; want full-grid grant", bits, nRB)
			}
			allocs := testing.AllocsPerRun(100, func() {
				cell.rbStats(0, alloc)
			})
			if allocs != 0 {
				t.Errorf("rbStats: %.1f allocs/call, want 0", allocs)
			}
		},
	})
}
