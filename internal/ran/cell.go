package ran

import (
	"fmt"
	"math"

	"outran/internal/channel"
	"outran/internal/core"
	"outran/internal/ip"
	"outran/internal/mac"
	"outran/internal/metrics"
	"outran/internal/obs"
	"outran/internal/pdcp"
	"outran/internal/phy"
	"outran/internal/rlc"
	"outran/internal/rng"
	"outran/internal/sim"
	"outran/internal/transport"
)

// harqMaxRetx is the maximum HARQ retransmissions before a transport
// block is abandoned to the RLC layer.
const harqMaxRetx = 3

// harqRTT is the retransmission turnaround (8 HARQ processes).
func harqRTT(tti sim.Time) sim.Time { return 8 * tti }

// statusUplinkDelay models the UE->eNB RLC status PDU path.
const statusUplinkDelay = 8 * sim.Millisecond

type harqTB struct {
	pdus     []*rlc.PDU
	bits     int
	attempts int
	readyAt  sim.Time
	reqSINR  float64
	subbands []int // subbands the TB was mapped to (BLER evaluation)
	waited   int   // TTIs a ready retransmission spent blocked
}

type flowRuntime struct {
	ue       int
	tuple    ip.FiveTuple
	size     int64
	seqBase  int64
	start    sim.Time
	sender   *transport.Sender
	receiver *transport.Receiver
	meta     pdcp.FlowMeta
	incast   bool
	record   bool
	// keep marks a persistent-connection flow whose table entry
	// survives completion (FlowOptions.Conn).
	keep       bool
	onComplete func(sim.Time)
}

type ueCtx struct {
	id      int
	addr    ip.Addr
	ch      *channel.Model
	macUser *mac.User
	key     [16]byte // PDCP ciphering key, stable across re-establishment

	pdcpTx *pdcp.Tx
	pdcpRx *pdcp.Rx
	umTx   *rlc.UMTx
	umRx   *rlc.UMRx
	amTx   *rlc.AMTx
	amRx   *rlc.AMRx

	harqPending []*harqTB
	flows       map[ip.FiveTuple]*flowRuntime

	enqueueDrops int
}

// txStatus returns the RLC buffer status plus pending HARQ bytes so
// the MAC keeps scheduling a UE that only has retransmissions left.
// The status aliases RLC-entity scratch (see rlc.UMTx.Status); the
// annotation propagates that contract to txStatus's own callers.
//
//outran:allocfree
//outran:scratch
func (u *ueCtx) txStatus(now sim.Time) mac.BufferStatus {
	var st mac.BufferStatus
	if u.umTx != nil {
		st = u.umTx.Status(now)
	} else {
		st = u.amTx.Status(now)
	}
	for _, tb := range u.harqPending {
		st.TotalBytes += tb.bits / 8
	}
	return st
}

func (u *ueCtx) enqueue(s *rlc.SDU) bool {
	if u.umTx != nil {
		return u.umTx.Enqueue(s)
	}
	return u.amTx.Enqueue(s)
}

// Cell is one xNodeB with its attached UEs and end-to-end plumbing.
type Cell struct {
	Eng  *sim.Engine
	cfg  Config
	grid phy.Grid

	sched    mac.Scheduler
	ues      []*ueCtx
	macUsers []*mac.User
	policy   *core.MLFQ

	Tracker *metrics.CellTracker
	FCT     *metrics.FCTRecorder
	Delay   *metrics.DelayTracker

	// Reg is the cell's metrics registry: the structured home of the
	// counters that used to live as ad-hoc fields. Always non-nil.
	Reg *obs.Registry
	// tracer emits structured trace events; nil (the default) and a
	// nil-sink tracer are both inert. Installed by SetTracer.
	tracer *obs.Tracer

	r        *rng.Source
	sduSeq   uint64
	nextPort uint16

	rttSum sim.Time
	rttCnt int

	ctrHARQFailures *obs.Counter
	ctrHARQTx       *obs.Counter
	ctrHARQRetx     *obs.Counter
	ctrTTIs         *obs.Counter
	histFCT         *obs.Histogram // fct_ms, exponential buckets

	// kpi accumulates live-telemetry state between SampleKPI calls;
	// nil (the default) unless Config.KPIEvery > 0. See kpi.go.
	kpi *kpiState
	// prof attributes wall ns/TTI to sub-TTI phases; nil (the default)
	// is fully inert — one pointer check per site. See SetPhaseProfiler.
	prof *obs.PhaseProfiler

	// Fault-injection plumbing (internal/fault). hooks is the zero
	// value — i.e. fully inert — unless SetFaultHooks was called.
	hooks               FaultHooks
	ctrAMDeliveryFails  *obs.Counter
	ctrHARQFeedbackErrs *obs.Counter
	ctrBackhaulDrops    *obs.Counter
	ctrReestablish      *obs.Counter
	// retired accumulates the loss counters of entities torn down by
	// ReestablishUE so CollectStats spans the whole run.
	retired retiredCounters
	// Per-sample-block accounting for the fairness index (eq. 3): the
	// index is computed over users that contended (were backlogged or
	// served) within the block, from the bits they were served — a
	// starved backlogged user drags the index down, an idle one does
	// not.
	blockBits   []int64
	blockActive []bool
	blockTTIs   int
	blockTputs  []float64

	// sbScratch backs the per-UE allocated-subband list inside onTTI.
	// It is reused across UEs and TTIs; serveUE copies it into a harqTB
	// at TB creation, the only point the list outlives the TTI.
	sbScratch []int

	// Hot-path arenas (see arena.go): the transport-block free list
	// and the retired-flow graveyard. Pure dead state — field-reset on
	// reuse, never snapshotted; recycling changes memory identity
	// only, never simulated values.
	tbFree    []*harqTB
	flowGrave []deadFlow
	graveHead int

	// Checkpoint/restore plumbing (see snapshot.go). The tickers are
	// snapshot-aware periodics; snapEnabled gates the pending-event
	// registry — off (the default) the registry costs nothing and
	// recorded scheduling degrades to plain Engine.After/At calls.
	tickTTI     *sim.Periodic
	tickCQI     *sim.Periodic
	tickReset   *sim.Periodic
	snapEnabled bool
	pending     map[uint64]pendingEvent
	extRebuild  func(key uint64) func()
	restored    bool
}

// retiredCounters carries per-entity counters across re-establishment.
type retiredCounters struct {
	evictions        int
	decipherFailures uint64
	reassemblyDrops  uint64
	amAbandoned      uint64
	amRetxBytes      uint64
}

// NewCell builds and wires a cell; the simulation clock starts at 0.
// The configuration is defaulted (Config.WithDefaults) and validated
// (Config.Validate); validation errors name the offending field.
func NewCell(cfg Config) (*Cell, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("invalid cell config: %w", err)
	}
	sched, err := cfg.buildScheduler()
	if err != nil {
		return nil, err
	}
	fct := &metrics.FCTRecorder{}
	if cfg.StreamFCT {
		fct = metrics.NewStreamingFCTRecorder()
	}
	c := &Cell{
		Eng:      &sim.Engine{},
		cfg:      cfg,
		grid:     cfg.Grid,
		sched:    sched,
		Tracker:  metrics.NewCellTracker(cfg.Grid.BandwidthHz()),
		FCT:      fct,
		Delay:    &metrics.DelayTracker{},
		Reg:      obs.NewRegistry(),
		r:        rng.New(cfg.Seed),
		nextPort: 10000,
	}
	if cfg.KPIEvery > 0 {
		c.kpi = newKPIState()
	}
	c.ctrHARQFailures = c.Reg.Counter("harq_failures")
	c.ctrHARQTx = c.Reg.Counter("harq_tx")
	c.ctrHARQRetx = c.Reg.Counter("harq_retx")
	c.ctrTTIs = c.Reg.Counter("ttis")
	c.ctrAMDeliveryFails = c.Reg.Counter("am_delivery_failures")
	c.ctrHARQFeedbackErrs = c.Reg.Counter("harq_feedback_errors")
	c.ctrBackhaulDrops = c.Reg.Counter("backhaul_drops")
	c.ctrReestablish = c.Reg.Counter("reestablishments")
	// 1 ms .. ~2 minutes; FCTs land in milliseconds on every scenario.
	c.histFCT = c.Reg.Histogram("fct_ms", obs.ExpBuckets(1, 2, 17))
	c.Tracker.RBBandwidthHz = cfg.Grid.Numerology.RBBandwidthHz()
	c.Tracker.TTISeconds = cfg.Grid.TTI().Seconds()
	if cfg.usesMLFQ() {
		c.policy, err = cfg.OutRAN.Policy()
		if err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.NumUEs; i++ {
		ue, err := c.newUE(i)
		if err != nil {
			return nil, err
		}
		c.ues = append(c.ues, ue)
		c.macUsers = append(c.macUsers, ue.macUser)
	}
	c.blockBits = make([]int64, cfg.NumUEs)
	c.blockActive = make([]bool, cfg.NumUEs)
	c.blockTputs = make([]float64, 0, cfg.NumUEs)
	c.tickTTI = sim.NewPeriodic(c.Eng, c.grid.TTI(), c.onTTI)
	c.tickCQI = sim.NewPeriodic(c.Eng, cfg.CQIPeriod, c.reportCQI)
	c.reportCQIAt(0)
	if cfg.usesMLFQ() && cfg.OutRAN.ResetPeriod > 0 {
		c.tickReset = sim.NewPeriodic(c.Eng, cfg.OutRAN.ResetPeriod, c.resetFlowStates)
	}
	return c, nil
}

// resetFlowStates is the MLFQ priority-boost tick (§6.3): every flow's
// sent-bytes resets so long-lived latency-sensitive flows regain
// priority.
func (c *Cell) resetFlowStates() {
	for _, ue := range c.ues {
		ue.pdcpTx.ResetFlowStates()
	}
}

func (c *Cell) newUE(id int) (*ueCtx, error) {
	ue := &ueCtx{
		id:    id,
		addr:  ip.AddrFrom(10, 1, byte(id>>8), byte(id&0xff)),
		ch:    c.cfg.Scenario.NewUEChannel(c.grid.CarrierHz, c.r),
		flows: make(map[ip.FiveTuple]*flowRuntime),
	}
	nsb := ue.ch.NumSubbands()
	ue.macUser = &mac.User{ID: mac.UserID(id), SubbandCQI: make([]phy.CQI, nsb)}

	kr := c.r.Fork()
	for i := range ue.key {
		ue.key[i] = byte(kr.Uint64())
	}
	if err := c.wireBearer(ue); err != nil {
		return nil, err
	}
	return ue, nil
}

// wireBearer builds and wires the UE's PDCP and RLC entities. It runs
// once at cell construction and again on RRC re-establishment, which
// is why it is separate from newUE: the channel, MAC user state, key
// and flow table survive a re-establishment, the bearer state does
// not.
func (c *Cell) wireBearer(ue *ueCtx) error {
	classifier, queues := c.cfg.intraQueueing(c.policy)
	delayedSN := false
	promote := false
	if queues > 1 {
		// Any intra-user reordering needs the §4.4 fixes. For OutRAN
		// they are config knobs (so the ablations can break them on
		// purpose); the oracle baselines always get them.
		if c.cfg.usesMLFQ() {
			delayedSN = c.cfg.OutRAN.DelayedSN
			promote = c.cfg.OutRAN.SegmentPromotion
		} else {
			delayedSN = true
			promote = true
		}
	}
	pcfg := pdcp.TxConfig{
		SNBits:    c.cfg.PDCPSNBits,
		DelayedSN: delayedSN,
		Key:       ue.key,
		Bearer:    6, // default bearer, Table 1
	}
	var err error
	ue.pdcpTx, err = pdcp.NewTx(c.Eng, pcfg, classifier, &c.sduSeq)
	if err != nil {
		return err
	}
	ue.pdcpRx, err = pdcp.NewRx(pcfg, func(pkt ip.Packet) { c.onPacketAtUE(ue, pkt) })
	if err != nil {
		return err
	}

	bufCfg := rlc.TxBufConfig{
		Queues:           queues,
		LimitSDUs:        c.cfg.BufferSDUs,
		SegmentPromotion: promote,
	}
	deliver := func(s *rlc.SDU) {
		if c.tracer.Enabled() {
			c.tracer.Emit(obs.Event{
				T: c.Eng.Now(), Type: obs.EvDeliver,
				UE: ue.id, Flow: s.Flow.String(), SN: int64(s.PDCPSN),
			})
		}
		if h := c.hooks.OnDeliver; h != nil {
			h(ue.id, s)
		}
		ue.pdcpRx.OnSDU(s)
	}
	if c.cfg.RLC == UM {
		ue.umTx = rlc.NewUMTx(bufCfg)
		ue.umTx.AssignSN = ue.pdcpTx.AssignSN
		ue.umRx = rlc.NewUMRx(c.Eng, deliver)
	} else {
		ue.amTx = rlc.NewAMTx(c.Eng, bufCfg)
		ue.amTx.AssignSN = ue.pdcpTx.AssignSN
		ue.amTx.OnDeliveryFail = func(sn uint32, _ *rlc.PDU) {
			c.ctrAMDeliveryFails.Inc()
			if h := c.hooks.OnDeliveryFail; h != nil {
				h(ue.id, sn)
			}
		}
		ue.amRx = rlc.NewAMRx(c.Eng, deliver, func(st *rlc.StatusPDU) {
			// ue.amTx is read at fire time, so a status in flight across
			// an RRC re-establishment lands on the rebuilt entity — and
			// the restore path reconstructs the same late binding.
			c.recAfter(statusUplinkDelay, pendingEvent{kind: pkAMStatus, ue: ue.id, status: st},
				func() { ue.amTx.OnStatus(st) })
		})
	}
	// Re-establishment rebuilds the entities above, so the trace hooks
	// must be re-attached here rather than only in SetTracer.
	c.wireTraceHooks(ue)
	return nil
}

// reportCQI refreshes every UE's reported CQI from its channel.
func (c *Cell) reportCQI() { c.reportCQIAt(c.Eng.Now()) }

func (c *Cell) reportCQIAt(now sim.Time) {
	tPhy := c.prof.Begin()
	defer c.prof.End(obs.PhasePhy, tPhy)
	for _, ue := range c.ues {
		if h := c.hooks.DropCQIReport; h != nil && h(ue.id, now) {
			continue // report lost: the MAC schedules on the stale CQI
		}
		var off float64
		if h := c.hooks.SINROffsetDB; h != nil {
			off = h(ue.id, now)
		}
		for sb := range ue.macUser.SubbandCQI {
			if off != 0 {
				ue.macUser.SubbandCQI[sb] = phy.CQIFromSINR(ue.ch.SINRdB(now, sb) + off)
			} else {
				ue.macUser.SubbandCQI[sb] = ue.ch.CQI(now, sb)
			}
		}
	}
}

// onTTI runs one scheduling interval.
func (c *Cell) onTTI() {
	now := c.Eng.Now()
	c.ctrTTIs.Inc()
	tti := c.grid.TTI()
	// Buffer aliases RLC-entity scratch (valid until that entity's next
	// Status call — i.e. this UE's next TTI) and alloc aliases
	// scheduler-owned scratch (valid until the next Allocate); both are
	// consumed within this TTI.
	tMac := c.prof.Begin()
	for i, ue := range c.ues {
		//outran:scratchsafe consumed within this TTI and overwritten here before the entity's next Status call
		c.macUsers[i].Buffer = ue.txStatus(now)
	}
	alloc := c.sched.Allocate(now, c.macUsers, c.grid)
	c.prof.End(obs.PhaseMac, tMac)
	tRlc := c.prof.Begin()
	totalBits := 0
	totalUsedRBs := 0
	for i, ue := range c.ues {
		bits, nAllocRB, sinrReqSum, sbs := c.rbStats(i, alloc)
		var used int
		if bits > 0 {
			reqSINR := sinrReqSum / float64(nAllocRB)
			used = c.serveUE(ue, bits, reqSINR, sbs)
			if used > 0 {
				c.macUsers[i].LastServed = now
				// Count the RBs that actually carried data (partially
				// filled grants count their filled share).
				frac := float64(used) / float64(bits)
				totalUsedRBs += int(frac*float64(nAllocRB) + 0.999)
			}
		}
		c.macUsers[i].UpdateAvgTput(used, tti, c.cfg.FairnessWindow)
		c.blockBits[i] += int64(used)
		if used > 0 || c.macUsers[i].Buffer.Backlogged() {
			c.blockActive[i] = true
		}
		totalBits += used
	}
	c.prof.End(obs.PhaseRlc, tRlc)
	tObs := c.prof.Begin()
	c.blockTTIs++
	c.blockTputs = c.blockTputs[:0]
	for i := range c.ues {
		if c.blockActive[i] {
			c.blockTputs = append(c.blockTputs, float64(c.blockBits[i]))
		}
	}
	c.Tracker.OnTTIUsed(now, totalBits, totalUsedRBs, c.blockTputs)
	if c.tracer.Enabled() {
		c.tracer.Emit(obs.Event{
			T: now, Type: obs.EvTTI,
			ServedBits: totalBits, UsedRBs: totalUsedRBs, AllocRBs: alloc.Allocated(),
		})
	}
	if h := c.hooks.OnTTI; h != nil {
		h(now, alloc)
	}
	if c.blockTTIs >= c.Tracker.SamplePeriod {
		c.blockTTIs = 0
		for i := range c.blockBits {
			c.blockBits[i] = 0
			c.blockActive[i] = false
		}
	}
	c.prof.End(obs.PhaseObs, tObs)
	c.prof.OnTTI()
}

// rbStats aggregates UE i's share of one TTI's allocation: the bits
// its grant carries, the RB count, the summed SINR decode floor, and
// the distinct allocated subbands. sbs aliases c.sbScratch and is
// valid only until the next rbStats call — serveUE copies it when a
// transport block must outlive the TTI.
//
//outran:allocfree
//outran:scratch
func (c *Cell) rbStats(i int, alloc mac.Allocation) (bits, nAllocRB int, sinrReqSum float64, sbs []int) {
	sbs = c.sbScratch[:0]
	nsb := len(c.macUsers[i].SubbandCQI)
	for b, owner := range alloc.RBOwner {
		if owner != i {
			continue
		}
		cqi := c.macUsers[i].CQIForRB(b, c.grid.NumRB)
		bits += phy.RBBits(cqi)
		sinrReqSum += cqi.SINRFloorDB()
		nAllocRB++
		if nsb > 0 {
			sb := b * nsb / c.grid.NumRB
			if len(sbs) == 0 || sbs[len(sbs)-1] != sb {
				//outran:allocok amortized scratch growth, bounded by the subband count; steady state reuses capacity
				sbs = append(sbs, sb)
			}
		}
	}
	c.sbScratch = sbs[:0]
	return
}

// harqForceAfter is the number of TTIs a ready retransmission may be
// blocked by an insufficient grant before the scheduler allocates it
// the whole opportunity anyway (real eNodeBs prioritise HARQ
// retransmissions when sizing allocations; without this, a TB built
// under a good channel can starve forever once the channel fades).
const harqForceAfter = 4

// serveUE spends up to budgetBits on HARQ retransmissions first, then
// new RLC PDUs. Returns the bits actually used.
func (c *Cell) serveUE(ue *ueCtx, budgetBits int, reqSINR float64, sbs []int) int {
	now := c.Eng.Now()
	used := 0
	// HARQ retransmissions first.
	remaining := ue.harqPending[:0]
	for _, tb := range ue.harqPending {
		if tb.readyAt > now {
			remaining = append(remaining, tb)
			continue
		}
		if tb.bits <= budgetBits-used {
			used += tb.bits
			c.transmitTB(ue, tb)
			continue
		}
		tb.waited++
		if tb.waited > harqForceAfter && used < budgetBits {
			// Force the retransmission out with whatever remains.
			used = budgetBits
			c.transmitTB(ue, tb)
			continue
		}
		remaining = append(remaining, tb)
	}
	ue.harqPending = remaining
	// New data within the leftover opportunity. The TB comes from the
	// free list; PullAppend fills its recycled pdus capacity in place.
	grantBytes := (budgetBits - used) / 8
	tb := c.newTB()
	if ue.umTx != nil {
		if pdu := ue.umTx.Pull(grantBytes); pdu != nil {
			tb.pdus = append(tb.pdus, pdu)
		}
	} else {
		tb.pdus = ue.amTx.PullAppend(tb.pdus, grantBytes)
	}
	if len(tb.pdus) == 0 {
		c.putTB(tb)
		return used
	}
	bits := 0
	for _, pdu := range tb.pdus {
		bits += pdu.Bytes * 8
		if !pdu.Retx && c.tracer.Enabled() {
			// Retransmissions are traced at the AM entity (rlc_retx).
			c.tracer.Emit(obs.Event{
				T: now, Type: obs.EvRLCTx,
				UE: ue.id, SN: int64(pdu.SN), Bytes: pdu.Bytes, Segs: len(pdu.Segments),
			})
		}
		for _, seg := range pdu.Segments {
			if seg.Offset == 0 && !pdu.Retx {
				short := seg.SDU.FlowSize >= 0 && seg.SDU.FlowSize <= metrics.ShortMax
				c.Delay.Record(now-seg.SDU.Arrival, short)
			}
		}
	}
	used += bits
	tb.bits = bits
	tb.reqSINR = reqSINR
	// sbs is cell-owned scratch; the TB outlives the TTI, so it gets
	// its own copy (into the recycled subbands capacity).
	tb.subbands = append(tb.subbands, sbs...)
	c.transmitTB(ue, tb)
	return used
}

// transmitTB sends a transport block over the air: it arrives one TTI
// later and succeeds against the instantaneous channel, with chase
// combining gain on retransmissions. Fault hooks can corrupt the HARQ
// feedback the xNodeB sees (decoupling delivery from retransmission)
// and drop individual RLC PDUs on top of the BLER model.
func (c *Cell) transmitTB(ue *ueCtx, tb *harqTB) {
	c.ctrHARQTx.Inc()
	if tb.attempts > 0 {
		c.ctrHARQRetx.Inc()
	}
	c.recAfter(c.grid.TTI(), pendingEvent{kind: pkTB, ue: ue.id, tb: tb}, func() {
		c.tbArrive(ue, tb)
	})
}

// tbArrive is the over-the-air arrival of a transport block, one TTI
// after transmitTB: decode against the instantaneous channel, deliver
// the PDUs upward on success, and re-queue on NACKed feedback.
func (c *Cell) tbArrive(ue *ueCtx, tb *harqTB) {
	now := c.Eng.Now()
	ok := true
	if !c.cfg.DisableHARQ {
		real := c.sinrOver(ue, now, tb.subbands)
		margin := real - tb.reqSINR + 3*float64(tb.attempts)
		p := blerProb(margin)
		ok = c.r.Float64() >= p
	}
	fb := ok
	if h := c.hooks.CorruptHARQFeedback; h != nil {
		fb = h(ue.id, now, ok)
		if fb != ok {
			c.ctrHARQFeedbackErrs.Inc()
		}
	}
	if c.tracer.Enabled() {
		c.tracer.Emit(obs.Event{
			T: now, Type: obs.EvHARQ,
			UE: ue.id, OK: ok, Attempts: tb.attempts, Bits: tb.bits,
		})
	}
	if ok {
		for _, pdu := range tb.pdus {
			if h := c.hooks.DropRLCPDU; h != nil && h(ue.id, now, pdu) {
				continue // lost; UM gives up, AM recovers via NACK
			}
			if ue.umRx != nil {
				ue.umRx.Receive(pdu)
			} else {
				ue.amRx.Receive(pdu)
			}
		}
	}
	if fb {
		// ACK seen (genuine or corrupted): the HARQ process ends.
		// A false ACK on a failed decode loses the TB silently.
		// Either way the TB is terminated: the pending-registry entry
		// was deleted at fire time, so this is the last reference.
		c.putTB(tb)
		return
	}
	tb.attempts++
	if tb.attempts > harqMaxRetx {
		c.ctrHARQFailures.Inc()
		c.putTB(tb)
		return // lost; UM gives up, AM recovers via status NACK
	}
	tb.readyAt = now + harqRTT(c.grid.TTI())
	ue.harqPending = append(ue.harqPending, tb)
}

// sinrOver is the instantaneous SINR averaged over the given subbands
// (all subbands when the list is empty) — the channel the transport
// block actually flew over, including any injected fade.
func (c *Cell) sinrOver(ue *ueCtx, now sim.Time, sbs []int) float64 {
	var off float64
	if h := c.hooks.SINROffsetDB; h != nil {
		off = h(ue.id, now)
	}
	if len(sbs) == 0 {
		n := ue.ch.NumSubbands()
		s := 0.0
		for sb := 0; sb < n; sb++ {
			s += ue.ch.SINRdB(now, sb)
		}
		return s/float64(n) + off
	}
	s := 0.0
	for _, sb := range sbs {
		s += ue.ch.SINRdB(now, sb)
	}
	return s/float64(len(sbs)) + off
}

// blerProb maps the SINR margin (dB) above the MCS decode threshold to
// a block error probability, anchored at the 10% BLER link adaptation
// target for margin 0.
func blerProb(marginDB float64) float64 {
	// Logistic fit: p(0)=0.095, p(2)~0.005, p(-2)~0.68.
	x := 1.5 * (marginDB + 1.5)
	p := 1.0 / (1.0 + math.Exp(x))
	if p < 1e-4 {
		p = 1e-4
	}
	return p
}

// onPacketAtUE handles a deciphered downlink packet at the UE: it is
// fed to the flow's transport receiver, which acks back to the server.
func (c *Cell) onPacketAtUE(ue *ueCtx, pkt ip.Packet) {
	fr := ue.flows[pkt.Tuple]
	if fr == nil {
		return // flow already torn down
	}
	fr.receiver.OnData(int64(pkt.Seq), pkt.PayloadLen, c.Eng.Now())
}

// SetPhaseProfiler installs (or with nil removes) the sub-TTI phase
// profiler. Profiling reads the wall clock, so results are for the run
// summary only — they never enter simulated state or the Registry.
func (c *Cell) SetPhaseProfiler(p *obs.PhaseProfiler) { c.prof = p }

// PhaseProfiler returns the installed profiler (nil when disabled).
func (c *Cell) PhaseProfiler() *obs.PhaseProfiler { return c.prof }

// Users exposes the MAC user states (read-only use).
func (c *Cell) Users() []*mac.User { return c.macUsers }

// Scheduler returns the active MAC scheduler.
func (c *Cell) Scheduler() mac.Scheduler { return c.sched }

// Grid returns the cell's resource grid.
func (c *Cell) Grid() phy.Grid { return c.grid }

// Config returns the cell configuration (after defaulting).
func (c *Cell) Config() Config { return c.cfg }

// EstimateCapacityBps estimates the cell's raw capacity from the
// attached UEs' mean SINRs.
func (c *Cell) EstimateCapacityBps() float64 {
	if len(c.ues) == 0 {
		return 0
	}
	s := 0.0
	for _, ue := range c.ues {
		cqi := phy.CQIFromSINR(ue.ch.MeanSINRdB())
		s += phy.RatePerRB(cqi, c.grid) * float64(c.grid.NumRB)
	}
	return s / float64(len(c.ues))
}

// capacityDerating folds in what the analytic estimate ignores —
// fading dips below the mean SINR, first-transmission BLER at the 10%
// link-adaptation target, and protocol overheads. Calibrated against
// a saturated PF cell (see TestSaturationProbe-style probes).
const capacityDerating = 0.78

// EffectiveCapacityBps is the deliverable capacity used to calibrate
// offered load, matching how the paper defines cell load.
func (c *Cell) EffectiveCapacityBps() float64 {
	return capacityDerating * c.EstimateCapacityBps()
}

// Stats bundles end-of-run counters not covered by the recorders. It
// is the metrics.RunCounters schema — the one JSON-exportable counter
// set shared by outran-sim, outran-bench, outran-chaos and the trace
// tooling.
type Stats = metrics.RunCounters

// CollectStats summarises the run.
func (c *Cell) CollectStats() Stats {
	st := Stats{
		HARQFailures:       c.ctrHARQFailures.Value(),
		FlowsStarted:       c.FCT.Started(),
		FlowsCompleted:     c.FCT.Completed(),
		TTIs:               c.ctrTTIs.Value(),
		MeanSpectralEff:    c.Tracker.MeanSpectralEfficiency(),
		MeanFairnessIndex:  c.Tracker.MeanFairness(),
		AMDeliveryFailures: c.ctrAMDeliveryFails.Value(),
		HARQFeedbackErrors: c.ctrHARQFeedbackErrs.Value(),
		BackhaulDrops:      c.ctrBackhaulDrops.Value(),
		Reestablishments:   c.ctrReestablish.Value(),
	}
	// Counters retired by ReestablishUE when entities were torn down.
	st.BufferEvictions += c.retired.evictions
	st.DecipherFailures += c.retired.decipherFailures
	st.ReassemblyDrops += c.retired.reassemblyDrops
	st.AMAbandoned += c.retired.amAbandoned
	st.AMRetxBytes += c.retired.amRetxBytes
	for _, ue := range c.ues {
		st.BufferDrops += ue.enqueueDrops
		st.DecipherFailures += ue.pdcpRx.DecipherFailures()
		if ue.umTx != nil {
			st.BufferEvictions += ue.umTx.Evictions()
			st.ReassemblyDrops += ue.umRx.Discarded()
		} else {
			st.BufferEvictions += ue.amTx.Evictions()
			st.AMAbandoned += ue.amTx.Abandoned()
			st.AMRetxBytes += ue.amTx.RetxBytes()
		}
	}
	if c.rttCnt > 0 {
		st.MeanSRTT = c.rttSum / sim.Time(c.rttCnt)
	}
	return st
}
