package ran

import (
	"hash/fnv"
	"testing"

	"outran/internal/mac"
	"outran/internal/metrics"
	"outran/internal/phy"
	"outran/internal/rng"
	"outran/internal/sim"
	"outran/internal/workload"
)

// hashingScheduler wraps the cell's real scheduler and folds every
// per-TTI allocation decision into a running FNV hash, so two runs can
// be compared decision-by-decision, not just on end-of-run aggregates.
type hashingScheduler struct {
	inner mac.Scheduler
	h     uint64
	ttis  int
}

func (s *hashingScheduler) Name() string { return s.inner.Name() }

func (s *hashingScheduler) Allocate(now sim.Time, users []*mac.User, grid phy.Grid) mac.Allocation {
	alloc := s.inner.Allocate(now, users, grid)
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(s.h)
	put(uint64(now))
	for _, owner := range alloc.RBOwner {
		put(uint64(int64(owner)))
	}
	s.h = h.Sum64()
	s.ttis++
	return alloc
}

// quickstartTrace runs the quickstart scenario (scaled down to keep the
// test fast) and returns the full per-flow FCT trace, the scheduler
// decision hash, and the end-of-run stats.
func quickstartTrace(t *testing.T, sched SchedulerKind) ([]metrics.FCTSample, uint64, Stats) {
	t.Helper()
	cfg := DefaultLTEConfig()
	cfg.NumUEs = 8
	cfg.Grid.NumRB = 25
	cfg.Scheduler = sched
	cfg.Seed = 42
	cell, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := &hashingScheduler{inner: cell.sched}
	cell.sched = hs

	const dur = 1500 * sim.Millisecond
	src, err := workload.Poisson(workload.PoissonConfig{
		Dist:            workload.LTECellular(),
		NumUEs:          cfg.NumUEs,
		Load:            0.7,
		CellCapacityBps: cell.EffectiveCapacityBps(),
		Duration:        dur,
	}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	cell.ScheduleSource(src, 0, dur)
	cell.Run(dur + 6*sim.Second) // drain
	return cell.FCT.Samples(), hs.h, cell.CollectStats()
}

// TestQuickstartDeterminism is the same-seed double-run regression
// gate: the quickstart scenario, run twice, must produce identical
// per-flow FCT traces (same flows, same completion order, same times)
// and bit-identical scheduler decisions on every TTI. Any map-order or
// wall-clock leak into the schedule shows up here.
func TestQuickstartDeterminism(t *testing.T) {
	for _, sched := range []SchedulerKind{SchedPF, SchedOutRAN} {
		sched := sched
		t.Run(string(sched), func(t *testing.T) {
			fct1, hash1, st1 := quickstartTrace(t, sched)
			fct2, hash2, st2 := quickstartTrace(t, sched)

			if len(fct1) == 0 {
				t.Fatal("no flows completed; the scenario is not exercising the stack")
			}
			if len(fct1) != len(fct2) {
				t.Fatalf("run 1 completed %d flows, run 2 completed %d", len(fct1), len(fct2))
			}
			for i := range fct1 {
				if fct1[i] != fct2[i] {
					t.Fatalf("FCT trace diverges at flow %d: %+v vs %+v", i, fct1[i], fct2[i])
				}
			}
			if hash1 != hash2 {
				t.Fatalf("scheduler decision hashes differ: %#x vs %#x", hash1, hash2)
			}
			if st1 != st2 {
				t.Fatalf("stats differ:\n run 1: %+v\n run 2: %+v", st1, st2)
			}
		})
	}
}

// TestDeterminismAcrossRLCModes repeats the double-run check under AM
// mode, whose status-PDU and retransmission machinery exercises the
// map-backed paths (txed table sweeps, reassembly drains) that the
// maprange analyzer polices.
func TestDeterminismAcrossRLCModes(t *testing.T) {
	run := func() ([]metrics.FCTSample, Stats) {
		cfg := smallConfig(SchedPF)
		cfg.RLC = AM
		cfg.Seed = 42
		cell, err := NewCell(cfg)
		if err != nil {
			t.Fatal(err)
		}
		src, err := workload.Poisson(workload.PoissonConfig{
			Dist:            workload.LTECellular(),
			NumUEs:          cfg.NumUEs,
			Load:            0.6,
			CellCapacityBps: cell.EffectiveCapacityBps(),
			Duration:        sim.Second,
		}, rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		cell.ScheduleSource(src, 0, sim.Second)
		cell.Run(7 * sim.Second)
		return cell.FCT.Samples(), cell.CollectStats()
	}
	fct1, st1 := run()
	fct2, st2 := run()
	if len(fct1) != len(fct2) {
		t.Fatalf("completed-flow counts differ: %d vs %d", len(fct1), len(fct2))
	}
	for i := range fct1 {
		if fct1[i] != fct2[i] {
			t.Fatalf("AM FCT trace diverges at flow %d: %+v vs %+v", i, fct1[i], fct2[i])
		}
	}
	if st1 != st2 {
		t.Fatalf("AM stats differ:\n run 1: %+v\n run 2: %+v", st1, st2)
	}
}
