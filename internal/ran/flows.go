package ran

import (
	"fmt"

	"outran/internal/ip"
	"outran/internal/metrics"
	"outran/internal/obs"
	"outran/internal/pdcp"
	"outran/internal/sim"
	"outran/internal/transport"
	"outran/internal/workload"
)

// serverAddr is the application server behind the P-GW.
var serverAddr = ip.AddrFrom(10, 0, 0, 1)

// qosDelayBudget is the low-latency profile the PSS/CQA baselines
// enforce on short flows.
const qosDelayBudget = 50 * sim.Millisecond

// FlowOptions customises one flow.
type FlowOptions struct {
	// Incast marks the flow for the §6.3 incast experiment metrics.
	Incast bool
	// SkipRecord excludes the flow from the FCT recorder (warm-up or
	// helper traffic).
	SkipRecord bool
	// OnComplete fires with the flow completion time.
	OnComplete func(fct sim.Time)
	// Conn, when set, reuses a persistent connection's five-tuple
	// (QUIC-like multiplexing, §4.2's limitation).
	Conn *Conn
}

// Conn is a persistent transport connection whose five-tuple is reused
// by consecutive logical flows.
type Conn struct {
	UE    int
	Tuple ip.FiveTuple

	cell    *Cell
	nextSeq int64
}

// NewConn allocates a persistent connection to the given UE.
func (c *Cell) NewConn(ue int) (*Conn, error) {
	if ue < 0 || ue >= len(c.ues) {
		return nil, fmt.Errorf("ran: no UE %d", ue)
	}
	return &Conn{UE: ue, Tuple: c.allocTuple(ue), cell: c}, nil
}

// AdoptConn returns a persistent connection bound to an explicit
// five-tuple — the continuation of a flow handed over from a source
// cell. PDCP classifies the continued flow from its imported
// sent-bytes state, so a demoted flow resumes at its demoted priority
// instead of restarting at the top.
func (c *Cell) AdoptConn(ue int, tuple ip.FiveTuple) (*Conn, error) {
	if ue < 0 || ue >= len(c.ues) {
		return nil, fmt.Errorf("ran: no UE %d", ue)
	}
	return &Conn{UE: ue, Tuple: tuple, cell: c}, nil
}

func (c *Cell) allocTuple(ue int) ip.FiveTuple {
	c.nextPort++
	if c.nextPort == 0 {
		c.nextPort = 10000
	}
	return ip.FiveTuple{
		Src:     serverAddr,
		Dst:     c.ues[ue].addr,
		SrcPort: 443,
		DstPort: c.nextPort,
		Proto:   ip.ProtoTCP,
	}
}

// StartFlow launches a size-byte downlink flow to UE ue at the current
// simulation time.
func (c *Cell) StartFlow(ue int, size int64, opt FlowOptions) error {
	if ue < 0 || ue >= len(c.ues) {
		return fmt.Errorf("ran: no UE %d", ue)
	}
	if size <= 0 {
		return fmt.Errorf("ran: non-positive flow size %d", size)
	}
	ueCtx := c.ues[ue]
	var tuple ip.FiveTuple
	var seqBase int64
	if opt.Conn != nil {
		if opt.Conn.UE != ue {
			return fmt.Errorf("ran: conn belongs to UE %d, not %d", opt.Conn.UE, ue)
		}
		tuple = opt.Conn.Tuple
		seqBase = opt.Conn.nextSeq
		opt.Conn.nextSeq += size
	} else {
		tuple = c.allocTuple(ue)
	}

	// Recycle a retired runtime (sender, receiver and the struct
	// itself) when the graveyard has one past its hold; otherwise
	// allocate. Both paths produce field-identical state.
	fr := c.reclaimFlow()
	if fr == nil {
		fr = &flowRuntime{
			sender:   transport.NewSender(c.Eng, c.cfg.Transport, tuple, size),
			receiver: &transport.Receiver{},
		}
	} else {
		fr.sender.Reset(tuple, size)
		fr.receiver.Reset()
	}
	sender, receiver := fr.sender, fr.receiver
	*fr = flowRuntime{
		ue:         ue,
		tuple:      tuple,
		size:       size,
		seqBase:    seqBase,
		start:      c.Eng.Now(),
		sender:     sender,
		receiver:   receiver,
		incast:     opt.Incast,
		record:     !opt.SkipRecord,
		keep:       opt.Conn != nil,
		onComplete: opt.OnComplete,
	}
	fr.meta = c.flowMeta(size)

	if opt.Conn != nil {
		// Continue the connection's receive state: pre-advance cumack
		// to the base so earlier flows' bytes are already "received".
		fr.receiver.OnData(0, int(seqBase), c.Eng.Now())
	}
	c.wireFlow(ueCtx, fr)

	// A persistent connection's new flow displaces its completed
	// predecessor on the same tuple; retire that runtime too (an
	// incomplete predecessor — overlapping logical flows — stays out
	// of the arena, as before).
	if prev := ueCtx.flows[tuple]; prev != nil && prev.sender.Completed() {
		c.retireFlow(prev)
	}
	ueCtx.flows[tuple] = fr
	if fr.record {
		c.FCT.FlowStarted()
	}
	if c.tracer.Enabled() {
		c.tracer.Emit(obs.Event{
			T: fr.start, Type: obs.EvFlowStart,
			UE: ue, Flow: tuple.String(), Size: size,
		})
	}
	fr.sender.Start()
	return nil
}

// flowMeta derives the PDCP flow metadata a flow of the given size
// carries — factored out of StartFlow so the snapshot-restore path
// recomputes exactly the same metadata for a resumed flow.
func (c *Cell) flowMeta(size int64) pdcp.FlowMeta {
	m := pdcp.FlowMeta{FlowSize: size}
	if c.cfg.QoSShortFlows && size <= metrics.ShortMax {
		m.QoS = true
		m.DelayBudget = qosDelayBudget
	}
	return m
}

// wireFlow attaches the transport callbacks (downlink send, uplink
// ack, completion) to a flow runtime. StartFlow calls it for new flows
// and the restore path for resumed ones; everything the callbacks need
// lives on fr so both paths produce identical wiring.
func (c *Cell) wireFlow(u *ueCtx, fr *flowRuntime) {
	sender, recv := fr.sender, fr.receiver
	tuple, seqBase := fr.tuple, fr.seqBase
	sender.Send = func(pkt ip.Packet) {
		pkt.Seq += uint32(seqBase)
		delay := c.cfg.Path.WiredDelay
		if h := c.hooks.Backhaul; h != nil {
			extra, drop := h(c.Eng.Now())
			if drop {
				c.ctrBackhaulDrops.Inc()
				return
			}
			delay += extra
		}
		c.recAfter(delay, pendingEvent{kind: pkPacket, ue: fr.ue, pkt: pkt},
			func() { c.deliverToXNB(u, pkt) })
	}
	recv.SendAck = func(ack int64) {
		rel := ack - seqBase
		if rel <= 0 {
			return
		}
		c.recAfter(c.cfg.Path.UplinkDelay, pendingEvent{kind: pkAck, ue: fr.ue, tuple: tuple, rel: rel},
			func() { sender.OnAck(rel) })
	}
	sender.OnComplete = func() {
		fct := c.Eng.Now() - fr.start
		if fr.record {
			c.FCT.Record(metrics.FCTSample{Size: fr.size, FCT: fct, UE: fr.ue, Incast: fr.incast})
			c.histFCT.Observe(float64(fct) / float64(sim.Millisecond))
			c.observeKPIFCT(fct)
		}
		if c.tracer.Enabled() {
			c.tracer.Emit(obs.Event{
				T: c.Eng.Now(), Type: obs.EvFlowEnd,
				UE: fr.ue, Flow: tuple.String(), Size: fr.size, FCT: fct,
			})
		}
		c.rttSum += sender.SRTT()
		c.rttCnt++
		if !fr.keep {
			delete(u.flows, tuple)
		}
		if fr.onComplete != nil {
			fr.onComplete(fct)
		}
		if !fr.keep {
			// Off the flow table and fully acked: nothing simulated
			// can reach the runtime again, so park it for reuse. Kept
			// (persistent-connection) runtimes retire when the next
			// flow on the tuple displaces them.
			c.retireFlow(fr)
		}
	}
}

// deliverToXNB ingests one downlink packet at the base station.
func (c *Cell) deliverToXNB(ue *ueCtx, pkt ip.Packet) {
	tPdcp := c.prof.Begin()
	defer c.prof.End(obs.PhasePdcp, tPdcp)
	fr := ue.flows[pkt.Tuple]
	meta := pdcp.FlowMeta{FlowSize: -1}
	if fr != nil {
		meta = fr.meta
	}
	sdu := ue.pdcpTx.Submit(pkt, meta)
	if sdu == nil {
		return
	}
	if !ue.enqueue(sdu) {
		ue.enqueueDrops++
	}
}

// ScheduleSource drains a workload source and registers every flow's
// arrival, in pull order. Flows starting outside [recordFrom,
// recordUntil) are scheduled but excluded from the FCT recorder —
// warm-up transient and pressure-tail traffic. The source must yield
// flows in non-decreasing start order (the Source contract); pull order
// then equals time order, so the event sequence numbers — and with
// them every downstream tie-break — are reproducible across runs and
// across trace replay.
func (c *Cell) ScheduleSource(src workload.Source, recordFrom, recordUntil sim.Time) {
	for {
		f, ok := src.Next()
		if !ok {
			return
		}
		skip := f.Start < recordFrom || f.Start >= recordUntil
		opt := FlowOptions{Incast: f.Incast, SkipRecord: skip}
		c.recAt(f.Start, pendingEvent{kind: pkArrival, ue: f.UE, size: f.Size, incast: f.Incast, skip: skip},
			func() {
				if err := c.StartFlow(f.UE%len(c.ues), f.Size, opt); err != nil {
					panic(err)
				}
			})
	}
}

// Run advances the simulation to the given time.
func (c *Cell) Run(until sim.Time) { c.Eng.RunUntil(until) }
