package ran

import (
	"testing"

	"outran/internal/sim"
)

func TestSJFIntraOrdering(t *testing.T) {
	cfg := smallConfig(SchedSRJF)
	cell, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var bigDone, smallDone sim.Time
	cell.Eng.At(sim.Millisecond, func() {
		cell.StartFlow(0, 3*1024*1024, FlowOptions{OnComplete: func(d sim.Time) { bigDone = cell.Eng.Now() }})
	})
	cell.Eng.At(300*sim.Millisecond, func() {
		cell.StartFlow(0, 8*1024, FlowOptions{OnComplete: func(d sim.Time) { smallDone = cell.Eng.Now() }})
	})
	cell.Run(60 * sim.Second)
	if smallDone == 0 || bigDone == 0 {
		t.Fatalf("not done: small=%v big=%v", smallDone, bigDone)
	}
	t.Logf("small done at %v, big at %v", smallDone, bigDone)
	if smallDone > bigDone {
		t.Fatal("short flow finished after the long flow under SRJF")
	}
	if smallDone > 600*sim.Millisecond {
		t.Fatalf("short flow took %v despite SJF bypass", smallDone-300*sim.Millisecond)
	}
}
