package ran

import (
	"fmt"

	"outran/internal/ip"
	"outran/internal/pdcp"
)

// Inter-cell handover (§7 of the paper): the source xNodeB exports its
// per-flow sent-bytes table (41 bytes per flow) and the target imports
// it, so the MLFQ priorities of the migrated UE's flows re-anchor at
// the target instead of resetting to top priority. These methods are
// the cell-level surface of pdcp.ExportFlowState/ImportFlowState; the
// deployment runtime (internal/deploy) scripts them between two live
// cells at a parallel-execution barrier.

// HandoverExport serialises UE ue's per-flow sent-bytes table for
// import at a target cell. The blob is pdcp.FlowRecordLen bytes per
// flow, in canonical five-tuple order.
func (c *Cell) HandoverExport(ue int) ([]byte, error) {
	if ue < 0 || ue >= len(c.ues) {
		return nil, fmt.Errorf("ran: handover export: no UE %d", ue)
	}
	return c.ues[ue].pdcpTx.ExportFlowState(), nil
}

// HandoverImport merges a blob exported by a source cell into UE ue's
// PDCP entity. Existing entries for the same five-tuple are
// overwritten: the source cell's view is fresher.
func (c *Cell) HandoverImport(ue int, blob []byte) error {
	if ue < 0 || ue >= len(c.ues) {
		return fmt.Errorf("ran: handover import: no UE %d", ue)
	}
	if err := c.ues[ue].pdcpTx.ImportFlowState(blob); err != nil {
		return fmt.Errorf("ran: handover import: %w", err)
	}
	return nil
}

// UEFlows returns the five-tuples UE ue's PDCP entity currently
// tracks, in canonical order — completed flows linger until idle
// eviction, which is exactly what a handover wants to transfer.
func (c *Cell) UEFlows(ue int) ([]ip.FiveTuple, error) {
	if ue < 0 || ue >= len(c.ues) {
		return nil, fmt.Errorf("ran: no UE %d", ue)
	}
	return c.ues[ue].pdcpTx.FlowTuples(), nil
}

// FlowSentBytes returns the PDCP-tracked sent bytes of UE ue's flow
// (zero for an untracked tuple).
func (c *Cell) FlowSentBytes(ue int, tuple ip.FiveTuple) (int64, error) {
	if ue < 0 || ue >= len(c.ues) {
		return 0, fmt.Errorf("ran: no UE %d", ue)
	}
	return c.ues[ue].pdcpTx.SentBytes(tuple), nil
}

// FlowPriority returns the intra-user queue priority the next packet
// of the given flow would be classified at — for MLFQ schedulers the
// demotion level implied by the flow's sent bytes. Cells without an
// intra-user classifier report 0.
func (c *Cell) FlowPriority(ue int, tuple ip.FiveTuple) (int, error) {
	if ue < 0 || ue >= len(c.ues) {
		return 0, fmt.Errorf("ran: no UE %d", ue)
	}
	cls, _ := c.cfg.intraQueueing(c.policy)
	if cls == nil {
		return 0, nil
	}
	sent := c.ues[ue].pdcpTx.SentBytes(tuple)
	return cls.Classify(sent, pdcp.FlowMeta{FlowSize: -1}), nil
}
