package ran

import (
	"bytes"
	"math"
	"testing"

	"outran/internal/obs"
	"outran/internal/rng"
	"outran/internal/sim"
	"outran/internal/workload"
)

// runTraced runs a small scenario with the given sink attached and
// returns the cell for post-run inspection. Warmup is cut with a
// tracker reset and the measurement window closed with a freeze, so
// the trace carries both window-boundary events.
func runTraced(t *testing.T, cfg Config, sink obs.Sink) *Cell {
	t.Helper()
	cell, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cell.SetTracer(obs.NewTracer(sink))
	const dur = 1200 * sim.Millisecond
	src, err := workload.Poisson(workload.PoissonConfig{
		Dist:            workload.LTECellular(),
		NumUEs:          cfg.NumUEs,
		Load:            0.7,
		CellCapacityBps: cell.EffectiveCapacityBps(),
		Duration:        dur,
	}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	cell.ScheduleSource(src, 0, dur)
	cell.Eng.At(200*sim.Millisecond, cell.Tracker.Reset)
	cell.Eng.At(dur, cell.Tracker.Freeze)
	cell.Run(dur + 5*sim.Second)
	if err := cell.Tracer().Close(); err != nil {
		t.Fatalf("closing tracer: %v", err)
	}
	return cell
}

// TestTraceByteIdenticalSameSeed is the tracing determinism gate: two
// same-seed runs must write byte-identical JSONL traces. Any map-order
// or wall-clock leak into an emit site shows up here as a diff.
func TestTraceByteIdenticalSameSeed(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() Config
	}{
		{"OutRAN-UM", func() Config { return smallConfig(SchedOutRAN) }},
		{"PF-AM", func() Config {
			cfg := smallConfig(SchedPF)
			cfg.RLC = AM
			return cfg
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var buf1, buf2 bytes.Buffer
			runTraced(t, tc.cfg(), obs.NewJSONLSink(&buf1))
			runTraced(t, tc.cfg(), obs.NewJSONLSink(&buf2))
			if buf1.Len() == 0 {
				t.Fatal("empty trace; the scenario emitted nothing")
			}
			if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
				a, b := buf1.Bytes(), buf2.Bytes()
				n := len(a)
				if len(b) < n {
					n = len(b)
				}
				off := 0
				for off < n && a[off] == b[off] {
					off++
				}
				lo := off - 80
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("traces differ (%d vs %d bytes) at offset %d:\n run 1: %q\n run 2: %q",
					len(a), len(b), off, a[lo:min(off+80, len(a))], b[lo:min(off+80, len(b))])
			}
		})
	}
}

// TestAuditMatchesLiveStats cross-checks the trace-derived decision
// audit against the live run's end-of-run statistics: the spectral
// efficiency and fairness replayed from se_sample events must equal
// the CellTracker aggregates, TTI counts must agree, and the flow
// spans must cover every recorded flow.
func TestAuditMatchesLiveStats(t *testing.T) {
	ring := obs.NewRingSink(0)
	cell := runTraced(t, smallConfig(SchedOutRAN), ring)
	st := cell.CollectStats()
	events := ring.Events()
	a := obs.ComputeAudit(events)

	const tol = 1e-12
	if math.Abs(a.MeanSE-st.MeanSpectralEff) > tol {
		t.Fatalf("trace-replayed SE %.15g != live %.15g", a.MeanSE, st.MeanSpectralEff)
	}
	if math.Abs(a.MeanFairness-st.MeanFairnessIndex) > tol {
		t.Fatalf("trace-replayed fairness %.15g != live %.15g", a.MeanFairness, st.MeanFairnessIndex)
	}
	if math.Abs(a.MeanActiveSE-cell.Tracker.MeanActiveSE()) > tol {
		t.Fatalf("trace-replayed active SE %.15g != live %.15g", a.MeanActiveSE, cell.Tracker.MeanActiveSE())
	}
	if got := len(cell.Tracker.SpectralEfficiencySamples()); a.Samples != got {
		t.Fatalf("replayed %d samples, tracker folded %d", a.Samples, got)
	}
	if uint64(a.TTIs) != st.TTIs {
		t.Fatalf("trace saw %d TTIs, live counted %d", a.TTIs, st.TTIs)
	}
	if a.Decisions == 0 {
		t.Fatal("no decision records from the ε-relaxation scheduler")
	}
	if a.Overrides == 0 {
		t.Fatal("no ε-relaxation overrides recorded; scenario too quiet to audit")
	}
	if a.SacrificeMean < 0 || a.SacrificeMean > 1 {
		t.Fatalf("implausible mean SE sacrifice %g", a.SacrificeMean)
	}
	if a.CandMean < 1 {
		t.Fatalf("mean candidate set %g below 1", a.CandMean)
	}

	timelines := obs.Timelines(events)
	completed := 0
	for _, f := range timelines {
		if f.End < 0 {
			continue
		}
		completed++
		if f.Start < 0 || f.Size <= 0 {
			t.Fatalf("flow %s completed without a start span", f.Flow)
		}
		if r, ok := f.Residency(); ok {
			if got := r.Ingress + r.Air + r.Drain; got != f.FCT {
				t.Fatalf("flow %s residency sums to %v, FCT %v", f.Flow, got, f.FCT)
			}
		} else {
			t.Fatalf("flow %s completed but has no residency breakdown", f.Flow)
		}
	}
	if completed != st.FlowsCompleted {
		t.Fatalf("trace shows %d completed flows, live recorded %d", completed, st.FlowsCompleted)
	}
}

// TestTraceHooksSurviveReestablish guards the re-wiring path: RRC
// re-establishment rebuilds the PDCP/RLC entities, and the trace hooks
// must be re-attached by wireBearer or the flow-lifecycle events
// silently stop after the first RLF.
func TestTraceHooksSurviveReestablish(t *testing.T) {
	cfg := smallConfig(SchedOutRAN)
	cfg.RLC = AM
	cell, err := NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRingSink(0)
	cell.SetTracer(obs.NewTracer(ring))
	const reestablishAt = 100 * sim.Millisecond
	cell.Eng.At(10*sim.Millisecond, func() {
		if err := cell.StartFlow(0, 400*1024, FlowOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	cell.Eng.At(reestablishAt, func() {
		if err := cell.ReestablishUE(0); err != nil {
			t.Fatal(err)
		}
	})
	cell.Run(8 * sim.Second)

	ue := cell.ues[0]
	if ue.pdcpTx.OnSNAssign == nil || ue.pdcpTx.OnLevelChange == nil {
		t.Fatal("PDCP trace hooks dropped by re-establishment")
	}
	if ue.amTx.OnRetx == nil {
		t.Fatal("AM retx trace hook dropped by re-establishment")
	}
	after := 0
	for _, ev := range ring.Events() {
		if ev.Type == obs.EvPDCPSN && ev.T > reestablishAt {
			after++
		}
	}
	if after == 0 {
		t.Fatal("no pdcp_sn events after re-establishment; hooks not re-wired")
	}
}

// TestSetTracerDisable verifies that installing an inert tracer clears
// every hook, restoring the zero-overhead path.
func TestSetTracerDisable(t *testing.T) {
	cell, err := NewCell(smallConfig(SchedOutRAN))
	if err != nil {
		t.Fatal(err)
	}
	cell.SetTracer(obs.NewTracer(obs.NewRingSink(0)))
	cell.SetTracer(nil)
	if cell.Tracker.Obs != nil {
		t.Fatal("tracker observer not cleared")
	}
	for _, ue := range cell.ues {
		if ue.pdcpTx.OnSNAssign != nil || ue.pdcpTx.OnLevelChange != nil {
			t.Fatal("PDCP hooks not cleared")
		}
	}
	cell.Eng.At(10*sim.Millisecond, func() {
		if err := cell.StartFlow(0, 10*1024, FlowOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	cell.Run(2 * sim.Second) // must not panic on the nil tracer
}
