package transport

import (
	"outran/internal/ip"
	"outran/internal/sim"
)

// Config tunes a sender. Zero fields take defaults.
type Config struct {
	MSS          int      // payload bytes per segment (default 1400)
	InitCwnd     float64  // initial window in segments (default 10)
	MinRTO       sim.Time // default 200 ms
	MaxRTO       sim.Time // default 60 s
	InitialRTO   sim.Time // before the first RTT sample (default 1 s)
	DupAckThresh int      // default 3
}

func (c *Config) defaults() {
	if c.MSS <= 0 {
		c.MSS = 1400
	}
	if c.InitCwnd <= 0 {
		c.InitCwnd = 10
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 200 * sim.Millisecond
	}
	if c.MaxRTO <= 0 {
		// Bounded backoff: cellular stacks cap the RTO well below
		// RFC 6298's 60 s so a burst loss cannot stall a flow for
		// tens of seconds.
		c.MaxRTO = 8 * sim.Second
	}
	if c.InitialRTO <= 0 {
		c.InitialRTO = 1 * sim.Second
	}
	if c.DupAckThresh <= 0 {
		c.DupAckThresh = 3
	}
}

// Sender transmits one flow of Size bytes reliably toward a receiver.
// Output and completion are delivered through callbacks wired by the
// cell.
type Sender struct {
	eng   *sim.Engine
	cfg   Config
	tuple ip.FiveTuple
	size  int64

	// Send transmits one segment toward the UE.
	Send func(ip.Packet)
	// OnComplete fires once when every byte has been cumulatively
	// acknowledged.
	OnComplete func()

	nextSeq      int64
	highestAcked int64
	cwnd         float64
	ssthresh     float64
	cubic        cubicState
	dupAcks      int
	inRecovery   bool
	recoverSeq   int64
	// rtoRecover is the pre-timeout send point. While acks are below
	// it, every unacked segment up there was (potentially) lost, so
	// each new ack retransmits the next hole instead of waiting for
	// dupacks that can never arrive — without this, a burst loss wider
	// than cwnd stalls at one segment per (backed-off) RTO, because
	// the lost bytes still count as inflight and block trySend.
	rtoRecover int64

	srtt, rttvar sim.Time
	rto          sim.Time
	rtoTimer     *sim.Timer
	sentAt       map[int64]sim.Time // segment seq -> first send time (Karn)

	completed   bool
	retransmits int
	timeouts    int
	segsSent    int
}

// NewSender builds a sender for a size-byte flow identified by tuple.
func NewSender(eng *sim.Engine, cfg Config, tuple ip.FiveTuple, size int64) *Sender {
	cfg.defaults()
	s := &Sender{
		eng:      eng,
		cfg:      cfg,
		tuple:    tuple,
		size:     size,
		cwnd:     cfg.InitCwnd,
		ssthresh: 1 << 30,
		rto:      cfg.InitialRTO,
		sentAt:   make(map[int64]sim.Time),
	}
	s.rtoTimer = sim.NewTimer(eng, s.onRTO)
	return s
}

// Start begins transmission.
func (s *Sender) Start() { s.trySend() }

// Reset re-arms a completed sender for a new flow, reusing the engine
// binding, config, RTO timer and the send-time map. The caller must
// guarantee no scheduled callback still references the sender — the
// ran layer's flow graveyard holds retired senders past the uplink
// delay for exactly this reason. After Reset the sender's state is
// field-identical to NewSender output; only memory identity differs.
func (s *Sender) Reset(tuple ip.FiveTuple, size int64) {
	s.rtoTimer.Stop()
	s.tuple = tuple
	s.size = size
	s.Send = nil
	s.OnComplete = nil
	s.nextSeq = 0
	s.highestAcked = 0
	s.cwnd = s.cfg.InitCwnd
	s.ssthresh = 1 << 30
	s.cubic = cubicState{}
	s.dupAcks = 0
	s.inRecovery = false
	s.recoverSeq = 0
	s.rtoRecover = 0
	s.srtt = 0
	s.rttvar = 0
	s.rto = s.cfg.InitialRTO
	clear(s.sentAt)
	s.completed = false
	s.retransmits = 0
	s.timeouts = 0
	s.segsSent = 0
}

// Completed reports whether the flow has fully finished.
func (s *Sender) Completed() bool { return s.completed }

// Retransmits returns the count of retransmitted segments.
func (s *Sender) Retransmits() int { return s.retransmits }

// Timeouts returns the RTO count.
func (s *Sender) Timeouts() int { return s.timeouts }

// Cwnd returns the current congestion window in segments.
func (s *Sender) Cwnd() float64 { return s.cwnd }

func (s *Sender) inflight() int64 { return s.nextSeq - s.highestAcked }

func (s *Sender) sendSegment(seq int64, isRetx bool) {
	segLen := int(min(int64(s.cfg.MSS), s.size-seq))
	if segLen <= 0 {
		return
	}
	pkt := ip.Packet{
		Tuple:      s.tuple,
		Seq:        uint32(seq),
		PayloadLen: segLen,
	}
	if isRetx {
		s.retransmits++
		delete(s.sentAt, seq) // Karn: never sample retransmitted
	} else if _, dup := s.sentAt[seq]; !dup {
		s.sentAt[seq] = s.eng.Now()
	}
	s.segsSent++
	if s.Send != nil {
		s.Send(pkt)
	}
	if !s.rtoTimer.Running() {
		s.rtoTimer.Start(s.rto)
	}
}

func (s *Sender) trySend() {
	if s.completed {
		return
	}
	windowBytes := int64(s.cwnd * float64(s.cfg.MSS))
	for s.nextSeq < s.size && s.inflight() < windowBytes {
		s.sendSegment(s.nextSeq, false)
		s.nextSeq += min(int64(s.cfg.MSS), s.size-s.nextSeq)
	}
}

// OnAck processes a cumulative acknowledgment up to ackSeq bytes.
func (s *Sender) OnAck(ackSeq int64) {
	if s.completed {
		return
	}
	now := s.eng.Now()
	if ackSeq > s.highestAcked {
		// RTT sample from the first newly acked segment, if eligible.
		if t0, ok := s.sentAt[s.highestAcked]; ok {
			s.sampleRTT(now - t0)
		}
		for seq := range s.sentAt {
			if seq < ackSeq {
				delete(s.sentAt, seq)
			}
		}
		s.highestAcked = ackSeq
		s.dupAcks = 0
		if s.inRecovery && ackSeq >= s.recoverSeq {
			s.inRecovery = false
			s.cwnd = s.ssthresh
		} else if s.inRecovery {
			// Partial ack: the next segment is missing too.
			s.sendSegment(ackSeq, true)
		} else if s.rtoRecover > 0 {
			if ackSeq < s.rtoRecover {
				// Timeout repair (go-back-N): keep retransmitting the
				// earliest unacked segment until the pre-timeout send
				// point is covered.
				s.sendSegment(ackSeq, true)
			} else {
				s.rtoRecover = 0
			}
		}
		if !s.inRecovery {
			if s.cwnd < s.ssthresh {
				s.cwnd++ // slow start
			} else {
				s.cwnd = s.cubic.onAck(s.cwnd, now, s.srtt)
			}
		}
		if s.highestAcked >= s.size {
			s.completed = true
			s.rtoTimer.Stop()
			if s.OnComplete != nil {
				s.OnComplete()
			}
			return
		}
		s.rtoTimer.Start(s.rto)
		s.trySend()
		return
	}
	// Duplicate ACK.
	s.dupAcks++
	if !s.inRecovery && s.dupAcks >= s.cfg.DupAckThresh {
		s.enterRecovery(now)
	} else if s.inRecovery {
		// Inflate by one segment per extra dupack (NewReno-style),
		// letting new data flow during recovery.
		s.cwnd += 1
		s.trySend()
	}
}

func (s *Sender) enterRecovery(now sim.Time) {
	s.inRecovery = true
	s.recoverSeq = s.nextSeq
	s.cwnd = s.cubic.onLoss(s.cwnd)
	s.ssthresh = s.cwnd
	s.sendSegment(s.highestAcked, true)
}

func (s *Sender) onRTO() {
	if s.completed {
		return
	}
	s.timeouts++
	s.ssthresh = max(s.cwnd/2, 2)
	s.cwnd = 1
	s.cubic.reset()
	s.inRecovery = false
	s.dupAcks = 0
	s.rtoRecover = s.nextSeq
	s.rto *= 2
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
	s.sendSegment(s.highestAcked, true)
	s.rtoTimer.Start(s.rto)
}

// sampleRTT folds one sample into SRTT/RTTVAR per RFC 6298.
func (s *Sender) sampleRTT(rtt sim.Time) {
	if rtt <= 0 {
		return
	}
	if s.srtt == 0 {
		s.srtt = rtt
		s.rttvar = rtt / 2
	} else {
		d := s.srtt - rtt
		if d < 0 {
			d = -d
		}
		s.rttvar = (3*s.rttvar + d) / 4
		s.srtt = (7*s.srtt + rtt) / 8
	}
	rto := s.srtt + 4*s.rttvar
	if rto < s.cfg.MinRTO {
		rto = s.cfg.MinRTO
	}
	if rto > s.cfg.MaxRTO {
		rto = s.cfg.MaxRTO
	}
	s.rto = rto
}

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (s *Sender) SRTT() sim.Time { return s.srtt }
