package transport

import "outran/internal/sim"

// interval is a half-open received byte range [lo, hi).
type interval struct{ lo, hi int64 }

// Receiver reassembles a flow at the UE and generates cumulative ACKs.
type Receiver struct {
	// SendAck transmits a cumulative acknowledgment toward the sender
	// (the cell wires it through the uplink delay).
	SendAck func(ackSeq int64)
	// OnDeliver fires whenever new contiguous bytes become available,
	// with the new contiguous high-water mark.
	OnDeliver func(contiguous int64)

	ooo        []interval // disjoint out-of-order ranges beyond cumAck
	scratch    []interval // insert's merge buffer, swapped with ooo
	cumAck     int64
	bytesRecvd int64
	lastData   sim.Time
}

// Reset clears the receiver for reuse on a new flow, keeping the
// interval buffers' capacity. Callbacks are dropped; the caller
// rewires them. After Reset the receiver's state is field-identical
// to a zero Receiver.
func (r *Receiver) Reset() {
	r.SendAck = nil
	r.OnDeliver = nil
	r.ooo = r.ooo[:0]
	r.cumAck = 0
	r.bytesRecvd = 0
	r.lastData = 0
}

// CumAck returns the contiguous high-water mark.
func (r *Receiver) CumAck() int64 { return r.cumAck }

// BytesReceived returns the total payload bytes received (including
// duplicates).
func (r *Receiver) BytesReceived() int64 { return r.bytesRecvd }

// OnData processes one data segment.
func (r *Receiver) OnData(seq int64, length int, now sim.Time) {
	r.bytesRecvd += int64(length)
	r.lastData = now
	lo, hi := seq, seq+int64(length)
	if hi > r.cumAck {
		if lo < r.cumAck {
			lo = r.cumAck
		}
		r.insert(interval{lo, hi})
		prev := r.cumAck
		r.advance()
		if r.cumAck > prev && r.OnDeliver != nil {
			r.OnDeliver(r.cumAck)
		}
	}
	// Every data segment triggers an ACK (no delayed ACK) so dupacks
	// signal losses promptly.
	if r.SendAck != nil {
		r.SendAck(r.cumAck)
	}
}

// insert merges rng into the disjoint sorted interval set. The merge
// builds into the receiver's second interval buffer and swaps, so the
// steady state allocates nothing: ooo and scratch alternate backing
// arrays and never alias.
func (r *Receiver) insert(v interval) {
	out := r.scratch[:0]
	placed := false
	for _, iv := range r.ooo {
		switch {
		case iv.hi < v.lo:
			out = append(out, iv)
		case v.hi < iv.lo:
			if !placed {
				out = append(out, v)
				placed = true
			}
			out = append(out, iv)
		default: // overlap: merge
			if iv.lo < v.lo {
				v.lo = iv.lo
			}
			if iv.hi > v.hi {
				v.hi = iv.hi
			}
		}
	}
	if !placed {
		out = append(out, v)
	}
	r.scratch = r.ooo[:0]
	r.ooo = out
}

// advance slides cumAck over now-contiguous intervals.
func (r *Receiver) advance() {
	for len(r.ooo) > 0 && r.ooo[0].lo <= r.cumAck {
		if r.ooo[0].hi > r.cumAck {
			r.cumAck = r.ooo[0].hi
		}
		r.ooo = r.ooo[1:]
	}
}

// Gaps returns the number of out-of-order holes currently held.
func (r *Receiver) Gaps() int { return len(r.ooo) }
