// Package transport implements the end-host transport the paper's
// flows ride on: a window-based reliable sender with TCP-Cubic
// congestion control (RFC 8312), cumulative-ACK receiver, duplicate-ACK
// fast retransmit, and RTO with exponential backoff. The uplink ACK
// path is modelled as a fixed-delay pipe by the cell (the paper
// schedules only the downlink).
package transport

import (
	"math"

	"outran/internal/sim"
)

// Cubic constants per RFC 8312.
const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// cubicState tracks the Cubic window evolution in units of segments.
type cubicState struct {
	wMax       float64
	epochStart sim.Time
	k          float64
	ackCount   float64 // acks since epoch, for the TCP-friendly region
	started    bool
}

func (c *cubicState) reset() { *c = cubicState{} }

// onLoss records a congestion event and returns the new cwnd.
func (c *cubicState) onLoss(cwnd float64) float64 {
	// Fast convergence.
	if cwnd < c.wMax {
		c.wMax = cwnd * (1 + cubicBeta) / 2
	} else {
		c.wMax = cwnd
	}
	c.started = false
	next := cwnd * cubicBeta
	if next < 2 {
		next = 2
	}
	return next
}

// onAck advances the window in congestion avoidance.
func (c *cubicState) onAck(cwnd float64, now sim.Time, srtt sim.Time) float64 {
	if !c.started {
		c.started = true
		c.epochStart = now
		c.ackCount = 0
		if c.wMax < cwnd {
			c.wMax = cwnd
		}
		c.k = math.Cbrt(c.wMax * (1 - cubicBeta) / cubicC)
	}
	c.ackCount++
	t := (now - c.epochStart).Seconds()
	rtt := srtt.Seconds()
	if rtt <= 0 {
		rtt = 0.01
	}
	target := cubicC*math.Pow(t+rtt-c.k, 3) + c.wMax
	// TCP-friendly region (RFC 8312 §4.2).
	wEst := c.wMax*cubicBeta + 3*(1-cubicBeta)/(1+cubicBeta)*(t/rtt)
	if wEst > target {
		target = wEst
	}
	if target > cwnd {
		cwnd += (target - cwnd) / cwnd
	} else {
		cwnd += 0.01 / cwnd // minimal growth as in RFC 8312
	}
	return cwnd
}
