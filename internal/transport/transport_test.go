package transport

import (
	"testing"
	"testing/quick"

	"outran/internal/ip"
	"outran/internal/sim"
)

// pipe wires a Sender to a Receiver through a fixed-delay channel with
// programmable loss.
type pipe struct {
	eng   *sim.Engine
	s     *Sender
	r     *Receiver
	delay sim.Time
	drop  func(seq int64) bool
	sent  int
}

func newPipe(t *testing.T, size int64, cfg Config) *pipe {
	t.Helper()
	eng := &sim.Engine{}
	tuple := ip.FiveTuple{SrcPort: 443, DstPort: 1000, Proto: ip.ProtoTCP}
	p := &pipe{eng: eng, delay: 10 * sim.Millisecond}
	p.s = NewSender(eng, cfg, tuple, size)
	p.r = &Receiver{}
	p.s.Send = func(pkt ip.Packet) {
		p.sent++
		if p.drop != nil && p.drop(int64(pkt.Seq)) {
			return
		}
		seq, ln := int64(pkt.Seq), pkt.PayloadLen
		eng.After(p.delay, func() { p.r.OnData(seq, ln, eng.Now()) })
	}
	p.r.SendAck = func(ack int64) {
		eng.After(p.delay, func() { p.s.OnAck(ack) })
	}
	return p
}

func TestLosslessTransferCompletes(t *testing.T) {
	for _, size := range []int64{100, 1400, 10 * 1024, 1024 * 1024} {
		p := newPipe(t, size, Config{})
		done := false
		p.s.OnComplete = func() { done = true }
		p.s.Start()
		p.eng.RunUntil(60 * sim.Second)
		if !done {
			t.Fatalf("size %d did not complete (cumAck %d)", size, p.r.CumAck())
		}
		if p.r.CumAck() != size {
			t.Fatalf("cumAck %d != size %d", p.r.CumAck(), size)
		}
		if p.s.Retransmits() != 0 {
			t.Fatalf("lossless transfer retransmitted %d", p.s.Retransmits())
		}
	}
}

func TestShortFlowFitsInitialWindow(t *testing.T) {
	// A 10 KB flow fits in the initial window: it should finish in
	// roughly one RTT (2*delay) plus epsilon, with no waiting on acks.
	p := newPipe(t, 10*1024, Config{})
	var done sim.Time
	p.s.OnComplete = func() { done = p.eng.Now() }
	p.s.Start()
	p.eng.RunUntil(10 * sim.Second)
	if done == 0 {
		t.Fatal("did not complete")
	}
	if done > 25*sim.Millisecond {
		t.Fatalf("10 KB took %v, want ~1 RTT (20 ms)", done)
	}
}

func TestSlowStartGrowsWindow(t *testing.T) {
	p := newPipe(t, 4*1024*1024, Config{})
	p.s.Start()
	p.eng.RunUntil(300 * sim.Millisecond)
	if p.s.Cwnd() <= 10 {
		t.Fatalf("cwnd %g did not grow in slow start", p.s.Cwnd())
	}
}

func TestSingleLossFastRetransmit(t *testing.T) {
	p := newPipe(t, 512*1024, Config{})
	dropped := false
	p.drop = func(seq int64) bool {
		if !dropped && seq == 28000 {
			dropped = true
			return true
		}
		return false
	}
	done := false
	p.s.OnComplete = func() { done = true }
	p.s.Start()
	p.eng.RunUntil(60 * sim.Second)
	if !done {
		t.Fatalf("did not recover from single loss (cumAck %d)", p.r.CumAck())
	}
	if p.s.Retransmits() == 0 {
		t.Fatal("no retransmission recorded")
	}
	if p.s.Timeouts() != 0 {
		t.Fatalf("needed %d RTOs for a dupack-recoverable loss", p.s.Timeouts())
	}
}

func TestLossReducesCwnd(t *testing.T) {
	p := newPipe(t, 4*1024*1024, Config{})
	dropped := false
	p.drop = func(seq int64) bool {
		if !dropped && seq > 200000 {
			dropped = true
			return true
		}
		return false
	}
	// Sample the window after every ack; after the loss the window
	// must at some point fall below its value at the drop. (The dip
	// is momentary: NewReno-style dupack inflation re-grows it within
	// the same burst, so coarse time-based sampling would miss it.)
	// The window keeps growing between the drop and its detection one
	// RTT later, so compare the post-backoff window against the peak:
	// Cubic multiplies by beta=0.7 on a congestion event.
	maxSeen := 0.0
	backedOff := false
	p.r.SendAck = func(ack int64) {
		p.eng.After(p.delay, func() {
			p.s.OnAck(ack)
			w := p.s.Cwnd()
			if w > maxSeen {
				maxSeen = w
			}
			if dropped && w <= 0.71*maxSeen {
				backedOff = true
			}
		})
	}
	p.s.Start()
	p.eng.RunUntil(2 * sim.Second)
	if !dropped {
		t.Skip("flow too short to trigger drop point")
	}
	if !backedOff {
		t.Fatalf("window never backed off to beta x peak (peak %g)", maxSeen)
	}
}

func TestTailLossRecoversViaRTO(t *testing.T) {
	p := newPipe(t, 20*1400, Config{})
	p.drop = func(seq int64) bool { return seq == 19*1400 } // drop the last segment forever? no: only first tx
	first := true
	p.drop = func(seq int64) bool {
		if seq == 19*1400 && first {
			first = false
			return true
		}
		return false
	}
	done := false
	p.s.OnComplete = func() { done = true }
	p.s.Start()
	p.eng.RunUntil(60 * sim.Second)
	if !done {
		t.Fatal("tail loss not recovered")
	}
	if p.s.Timeouts() == 0 {
		t.Fatal("tail loss should need an RTO (no dupacks possible)")
	}
}

func TestHeavyRandomLossStillCompletes(t *testing.T) {
	p := newPipe(t, 256*1024, Config{})
	n := 0
	p.drop = func(seq int64) bool {
		n++
		return n%11 == 0 // ~9% loss
	}
	done := false
	p.s.OnComplete = func() { done = true }
	p.s.Start()
	p.eng.RunUntil(120 * sim.Second)
	if !done {
		t.Fatalf("did not complete under 9%% loss (cumAck %d/%d)", p.r.CumAck(), 256*1024)
	}
}

func TestRTTEstimate(t *testing.T) {
	p := newPipe(t, 100*1024, Config{})
	p.s.Start()
	p.eng.RunUntil(5 * sim.Second)
	srtt := p.s.SRTT()
	if srtt < 18*sim.Millisecond || srtt > 30*sim.Millisecond {
		t.Fatalf("SRTT %v for a 20 ms path", srtt)
	}
}

func TestMinRTOEnforced(t *testing.T) {
	p := newPipe(t, 100*1024, Config{MinRTO: 200 * sim.Millisecond})
	p.s.Start()
	p.eng.RunUntil(time2s())
	if p.s.rto < 200*sim.Millisecond {
		t.Fatalf("rto %v below MinRTO", p.s.rto)
	}
}

func time2s() sim.Time { return 2 * sim.Second }

func TestReceiverReordering(t *testing.T) {
	r := &Receiver{}
	var acks []int64
	r.SendAck = func(a int64) { acks = append(acks, a) }
	r.OnData(1400, 1400, 0) // out of order
	r.OnData(0, 1400, 0)
	r.OnData(2800, 1400, 0)
	if r.CumAck() != 4200 {
		t.Fatalf("cumAck %d", r.CumAck())
	}
	if len(acks) != 3 || acks[0] != 0 || acks[1] != 2800 || acks[2] != 4200 {
		t.Fatalf("acks %v", acks)
	}
	if r.Gaps() != 0 {
		t.Fatalf("gaps %d", r.Gaps())
	}
}

func TestReceiverDuplicateData(t *testing.T) {
	r := &Receiver{}
	r.OnData(0, 1400, 0)
	r.OnData(0, 1400, 0)
	if r.CumAck() != 1400 {
		t.Fatalf("cumAck %d after duplicate", r.CumAck())
	}
	if r.BytesReceived() != 2800 {
		t.Fatalf("raw bytes %d", r.BytesReceived())
	}
}

func TestReceiverOverlap(t *testing.T) {
	r := &Receiver{}
	r.OnData(0, 1000, 0)
	r.OnData(500, 1000, 0)
	if r.CumAck() != 1500 {
		t.Fatalf("cumAck %d after overlap", r.CumAck())
	}
}

// Property: for any arrival order of the segments of a flow, the
// receiver ends with cumAck == flow size and no residual gaps.
func TestReceiverPermutationProperty(t *testing.T) {
	prop := func(perm []uint8, dup uint8) bool {
		const mss, n = 100, 12
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		// Fisher-Yates keyed by the fuzz input.
		for i := n - 1; i > 0; i-- {
			j := 0
			if len(perm) > 0 {
				j = int(perm[i%len(perm)]) % (i + 1)
			}
			order[i], order[j] = order[j], order[i]
		}
		r := &Receiver{}
		for _, k := range order {
			r.OnData(int64(k*mss), mss, 0)
			if dup%3 == 0 {
				r.OnData(int64(k*mss), mss, 0)
			}
		}
		return r.CumAck() == n*mss && r.Gaps() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCubicWindowEvolution(t *testing.T) {
	var c cubicState
	cwnd := 100.0
	cwnd = c.onLoss(cwnd)
	if cwnd != 70 {
		t.Fatalf("post-loss cwnd %g, want 70 (beta=0.7)", cwnd)
	}
	// Growth back toward wMax then beyond.
	now := sim.Time(0)
	srtt := 20 * sim.Millisecond
	prev := cwnd
	for i := 0; i < 2000; i++ {
		now += 10 * sim.Millisecond
		cwnd = c.onAck(cwnd, now, srtt)
		if cwnd < prev-1e-9 {
			t.Fatalf("cubic window decreased on ack at step %d", i)
		}
		prev = cwnd
	}
	if cwnd <= 100 {
		t.Fatalf("cubic did not grow past wMax: %g", cwnd)
	}
}

func TestCubicFastConvergence(t *testing.T) {
	var c cubicState
	c.onLoss(100)      // wMax = 100
	cw := c.onLoss(80) // below wMax: fast convergence shrinks wMax
	if c.wMax >= 80 {
		t.Fatalf("fast convergence did not shrink wMax: %g", c.wMax)
	}
	if cw != 80*cubicBeta {
		t.Fatalf("post-loss cwnd %g", cw)
	}
}

func TestCubicMinWindow(t *testing.T) {
	var c cubicState
	if got := c.onLoss(1); got < 2 {
		t.Fatalf("cwnd floor violated: %g", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.defaults()
	if c.MSS != 1400 || c.InitCwnd != 10 || c.MinRTO != 200*sim.Millisecond || c.DupAckThresh != 3 || c.MaxRTO != 8*sim.Second {
		t.Fatalf("defaults %+v", c)
	}
}

// TestRTOBackoffUnderOutage pins RFC 6298 exponential backoff against
// a full outage: consecutive timeout retransmissions must space out
// 1 s, 2 s, 4 s, 8 s and then stay capped at MaxRTO (8 s default, the
// cellular-bounded cap), and once the outage lifts the flow must still
// complete with a sanely regrown window.
func TestRTOBackoffUnderOutage(t *testing.T) {
	const outageEnd = 26 * sim.Second
	p := newPipe(t, 100*1024, Config{})
	var rtx0 []sim.Time // send times of the repeatedly timed-out base segment
	p.drop = func(seq int64) bool {
		if p.eng.Now() < outageEnd {
			if seq == 0 && p.eng.Now() > 0 {
				rtx0 = append(rtx0, p.eng.Now())
			}
			return true
		}
		return false
	}
	done := false
	p.s.OnComplete = func() { done = true }
	p.s.Start()
	p.eng.RunUntil(120 * sim.Second)

	// Timeout retransmissions during the outage: 1, 3, 7, 15, 23 s —
	// gaps of 1, 2, 4, 8 s (InitialRTO then doubling to the cap).
	want := []sim.Time{sim.Second, 3 * sim.Second, 7 * sim.Second, 15 * sim.Second, 23 * sim.Second}
	if len(rtx0) != len(want) {
		t.Fatalf("outage retransmissions at %v, want %v", rtx0, want)
	}
	for i := range want {
		if rtx0[i] != want[i] {
			t.Fatalf("retransmission %d at %v, want %v (backoff broken)", i, rtx0[i], want[i])
		}
	}
	// The cap: no gap may exceed MaxRTO.
	for i := 1; i < len(rtx0); i++ {
		if gap := rtx0[i] - rtx0[i-1]; gap > 8*sim.Second {
			t.Fatalf("backoff gap %v exceeds the 8 s MaxRTO cap", gap)
		}
	}
	if p.s.Timeouts() < len(want) {
		t.Fatalf("only %d timeouts recorded", p.s.Timeouts())
	}
	if !done {
		t.Fatalf("flow never completed after the outage lifted (cumAck %d)", p.r.CumAck())
	}
	if p.s.Cwnd() <= 1 {
		t.Fatalf("cwnd %g never recovered after the outage", p.s.Cwnd())
	}
}

// TestTimeoutRepairFillsBurstHole verifies the go-back-N timeout
// repair: a loss burst wider than the post-RTO window must be repaired
// segment-by-segment on new acks, not at one segment per backed-off
// RTO (which would stall a wide hole for minutes).
func TestTimeoutRepairFillsBurstHole(t *testing.T) {
	p := newPipe(t, 256*1024, Config{})
	// Drop everything in [14000, 42000) once: a 20-segment hole.
	dropped := map[int64]bool{}
	p.drop = func(seq int64) bool {
		if seq >= 14000 && seq < 42000 && !dropped[seq] {
			dropped[seq] = true
			return true
		}
		return false
	}
	var doneAt sim.Time
	p.s.OnComplete = func() { doneAt = p.eng.Now() }
	p.s.Start()
	p.eng.RunUntil(120 * sim.Second)
	if doneAt == 0 {
		t.Fatalf("did not complete (cumAck %d)", p.r.CumAck())
	}
	// One RTT per repaired hole segment (~20 ms each) plus the first
	// RTO (~1 s): far under two RTO backoffs.
	if doneAt > 10*sim.Second {
		t.Fatalf("burst-hole repair took %v — stalled in RTO-per-segment mode", doneAt)
	}
}
