package transport

import (
	"testing"

	"outran/internal/ip"
	"outran/internal/sim"
)

// BenchmarkTransfer1MB measures the event cost of a full reliable
// 1 MB transfer over a clean 20 ms pipe.
func BenchmarkTransfer1MB(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := &sim.Engine{}
		tuple := ip.FiveTuple{SrcPort: 443, DstPort: 1000, Proto: ip.ProtoTCP}
		s := NewSender(eng, Config{}, tuple, 1024*1024)
		r := &Receiver{}
		delay := 10 * sim.Millisecond
		s.Send = func(pkt ip.Packet) {
			seq, ln := int64(pkt.Seq), pkt.PayloadLen
			eng.After(delay, func() { r.OnData(seq, ln, eng.Now()) })
		}
		r.SendAck = func(ack int64) {
			eng.After(delay, func() { s.OnAck(ack) })
		}
		done := false
		s.OnComplete = func() { done = true }
		s.Start()
		eng.RunUntil(60 * sim.Second)
		if !done {
			b.Fatal("transfer incomplete")
		}
	}
}

// BenchmarkReceiverInOrder measures the receiver's per-segment cost on
// the common in-order path.
func BenchmarkReceiverInOrder(b *testing.B) {
	r := &Receiver{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.OnData(int64(i)*1400, 1400, 0)
	}
}

func BenchmarkCubicOnAck(b *testing.B) {
	var c cubicState
	cwnd := c.onLoss(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cwnd = c.onAck(cwnd, sim.Time(i)*sim.Millisecond, 20*sim.Millisecond)
	}
	_ = cwnd
}
