package transport

import (
	"fmt"
	"sort"

	"outran/internal/sim"
	"outran/internal/snapshot"
)

// Snapshot section tags (see snapshot.Encoder.Mark).
const (
	tagSender   = 0x7301
	tagReceiver = 0x7302
)

// Snapshot encodes the sender's full mutable state, including the
// congestion controller, the RTT estimator, the Karn send-time map
// (in sorted seq order so encoding is deterministic), and the live
// RTO timer arm. Construction inputs (cfg, tuple, size, callbacks)
// are not encoded: the restore side rebuilds the sender from the same
// flow metadata and overlays this state.
func (s *Sender) Snapshot(e *snapshot.Encoder) {
	e.Mark(tagSender)
	e.I64(s.nextSeq)
	e.I64(s.highestAcked)
	e.F64(s.cwnd)
	e.F64(s.ssthresh)
	e.F64(s.cubic.wMax)
	e.I64(int64(s.cubic.epochStart))
	e.F64(s.cubic.k)
	e.F64(s.cubic.ackCount)
	e.Bool(s.cubic.started)
	e.Int(s.dupAcks)
	e.Bool(s.inRecovery)
	e.I64(s.recoverSeq)
	e.I64(s.rtoRecover)
	e.I64(int64(s.srtt))
	e.I64(int64(s.rttvar))
	e.I64(int64(s.rto))
	running, expires, seq := s.rtoTimer.SnapArm()
	e.Bool(running)
	e.I64(int64(expires))
	e.U64(seq)
	keys := make([]int64, 0, len(s.sentAt))
	for k := range s.sentAt {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		e.I64(k)
		e.I64(int64(s.sentAt[k]))
	}
	e.Bool(s.completed)
	e.Int(s.retransmits)
	e.Int(s.timeouts)
	e.Int(s.segsSent)
}

// Restore overlays snapshotted state onto a freshly constructed
// sender and re-registers the RTO timer arm with its exact original
// (expiry, seq). It returns the decoder's sticky error, if any.
func (s *Sender) Restore(d *snapshot.Decoder) error {
	d.Expect(tagSender)
	s.nextSeq = d.I64()
	s.highestAcked = d.I64()
	s.cwnd = d.F64()
	s.ssthresh = d.F64()
	s.cubic.wMax = d.F64()
	s.cubic.epochStart = sim.Time(d.I64())
	s.cubic.k = d.F64()
	s.cubic.ackCount = d.F64()
	s.cubic.started = d.Bool()
	s.dupAcks = d.Int()
	s.inRecovery = d.Bool()
	s.recoverSeq = d.I64()
	s.rtoRecover = d.I64()
	s.srtt = sim.Time(d.I64())
	s.rttvar = sim.Time(d.I64())
	s.rto = sim.Time(d.I64())
	running := d.Bool()
	expires := sim.Time(d.I64())
	armSeq := d.U64()
	n := d.Count(1 << 24)
	for i := 0; i < n; i++ {
		k := d.I64()
		v := sim.Time(d.I64())
		if d.Err() != nil {
			break
		}
		s.sentAt[k] = v
	}
	s.completed = d.Bool()
	s.retransmits = d.Int()
	s.timeouts = d.Int()
	s.segsSent = d.Int()
	if err := d.Err(); err != nil {
		return fmt.Errorf("transport: restoring sender: %w", err)
	}
	s.rtoTimer.RestoreArm(running, expires, armSeq)
	return nil
}

// Snapshot encodes the receiver's reassembly state.
func (r *Receiver) Snapshot(e *snapshot.Encoder) {
	e.Mark(tagReceiver)
	e.U32(uint32(len(r.ooo)))
	for _, iv := range r.ooo {
		e.I64(iv.lo)
		e.I64(iv.hi)
	}
	e.I64(r.cumAck)
	e.I64(r.bytesRecvd)
	e.I64(int64(r.lastData))
}

// Restore overlays snapshotted reassembly state.
func (r *Receiver) Restore(d *snapshot.Decoder) error {
	d.Expect(tagReceiver)
	n := d.Count(1 << 24)
	if n > 0 {
		r.ooo = make([]interval, 0, n)
	}
	for i := 0; i < n; i++ {
		lo := d.I64()
		hi := d.I64()
		if d.Err() != nil {
			break
		}
		r.ooo = append(r.ooo, interval{lo, hi})
	}
	r.cumAck = d.I64()
	r.bytesRecvd = d.I64()
	r.lastData = sim.Time(d.I64())
	if err := d.Err(); err != nil {
		return fmt.Errorf("transport: restoring receiver: %w", err)
	}
	return nil
}
