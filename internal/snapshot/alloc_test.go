package snapshot

import (
	"testing"

	"outran/internal/analysis/probetest"
)

// TestZeroAllocs pins every //outran:allocfree encode helper with an
// AllocsPerRun probe; probetest.Run fails when the probe registry and
// the annotations drift apart. Each probe reuses one pre-sized encoder
// and truncates between runs, so the amortized append growth justified
// at the //outran:allocok site never fires during measurement.
func TestZeroAllocs(t *testing.T) {
	fixed := func(f func(e *Encoder)) func(t *testing.T) {
		return func(t *testing.T) {
			e := &Encoder{buf: make([]byte, 0, 1024)}
			allocs := testing.AllocsPerRun(100, func() {
				e.buf = e.buf[:0]
				f(e)
			})
			if allocs != 0 {
				t.Errorf("%.1f allocs/call, want 0", allocs)
			}
		}
	}
	probetest.Run(t, ".", map[string]func(t *testing.T){
		"(*Encoder).U8":   fixed(func(e *Encoder) { e.U8(0x7f) }),
		"(*Encoder).Bool": fixed(func(e *Encoder) { e.Bool(true) }),
		"(*Encoder).U16":  fixed(func(e *Encoder) { e.U16(0xbeef) }),
		"(*Encoder).U32":  fixed(func(e *Encoder) { e.U32(0xdeadbeef) }),
		"(*Encoder).U64":  fixed(func(e *Encoder) { e.U64(1 << 60) }),
		"(*Encoder).I64":  fixed(func(e *Encoder) { e.I64(-42) }),
		"(*Encoder).Int":  fixed(func(e *Encoder) { e.Int(7) }),
		"(*Encoder).F64":  fixed(func(e *Encoder) { e.F64(3.14159) }),
		"(*Encoder).Mark": fixed(func(e *Encoder) { e.Mark(0x4d01) }),
	})
}
