package snapshot

import (
	"bytes"
	"testing"
)

// FuzzOpen throws arbitrary bytes at the archive parser: it must
// either reject with an error or yield an archive that re-serialises
// losslessly — and it must never panic.
func FuzzOpen(f *testing.F) {
	var b Builder
	var s1, s2 Encoder
	s1.U64(42)
	s1.F64(3.5)
	s2.String("state")
	b.Add("meta", &s1)
	b.Add("cell0", &s2)
	f.Add(b.Bytes())
	f.Add([]byte{})
	f.Add([]byte("OSNP"))
	f.Add([]byte("OSNP\x01\x00\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := Open(data)
		if err != nil {
			return
		}
		// Accepted input must round-trip: rebuild from the parsed
		// sections and reparse to the same content.
		var rb Builder
		for _, name := range a.Names() {
			d, err := a.Section(name)
			if err != nil {
				t.Fatalf("listed section %q unreadable: %v", name, err)
			}
			var e Encoder
			e.Raw(d.take(d.Remaining()))
			rb.Add(name, &e)
		}
		a2, err := Open(rb.Bytes())
		if err != nil {
			t.Fatalf("re-encoded archive rejected: %v", err)
		}
		if len(a2.Names()) != len(a.Names()) {
			t.Fatalf("section count changed: %d -> %d", len(a.Names()), len(a2.Names()))
		}
		for _, name := range a.Names() {
			d1, _ := a.Section(name)
			d2, err := a2.Section(name)
			if err != nil {
				t.Fatalf("section %q lost: %v", name, err)
			}
			b1 := d1.take(d1.Remaining())
			b2 := d2.take(d2.Remaining())
			if !bytes.Equal(b1, b2) {
				t.Fatalf("section %q payload changed", name)
			}
		}
	})
}

// FuzzDecoder drives the primitive readers over arbitrary input; the
// sticky-error contract means no sequence of reads may panic.
func FuzzDecoder(f *testing.F) {
	var e Encoder
	e.U8(1)
	e.U64(2)
	e.String("x")
	f.Add(e.Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		for d.Err() == nil && d.Remaining() > 0 {
			switch d.Offset() % 5 {
			case 0:
				d.U8()
			case 1:
				d.U16()
			case 2:
				d.U64()
			case 3:
				d.Bytes32()
			default:
				d.Count(1 << 16)
			}
		}
	})
}
