package snapshot

import (
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	var e Encoder
	e.U8(0xab)
	e.Bool(true)
	e.Bool(false)
	e.U16(0xbeef)
	e.U32(0xdeadbeef)
	e.U64(0x0123456789abcdef)
	e.I64(-42)
	e.Int(1 << 40)
	e.F64(math.Pi)
	e.F64(math.Inf(-1))
	e.F64(math.Float64frombits(0x7ff8000000000001)) // a specific NaN payload
	e.Bytes32([]byte{1, 2, 3})
	e.String("hello")
	e.Mark(7)

	d := NewDecoder(e.Bytes())
	if got := d.U8(); got != 0xab {
		t.Fatalf("U8 = %#x", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round-trip")
	}
	if got := d.U16(); got != 0xbeef {
		t.Fatalf("U16 = %#x", got)
	}
	if got := d.U32(); got != 0xdeadbeef {
		t.Fatalf("U32 = %#x", got)
	}
	if got := d.U64(); got != 0x0123456789abcdef {
		t.Fatalf("U64 = %#x", got)
	}
	if got := d.I64(); got != -42 {
		t.Fatalf("I64 = %d", got)
	}
	if got := d.Int(); got != 1<<40 {
		t.Fatalf("Int = %d", got)
	}
	if got := d.F64(); got != math.Pi {
		t.Fatalf("F64 = %v", got)
	}
	if got := d.F64(); !math.IsInf(got, -1) {
		t.Fatalf("F64 inf = %v", got)
	}
	if got := math.Float64bits(d.F64()); got != 0x7ff8000000000001 {
		t.Fatalf("NaN payload not bit-exact: %#x", got)
	}
	if got := d.Bytes32(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Bytes32 = %v", got)
	}
	if got := d.String(); got != "hello" {
		t.Fatalf("String = %q", got)
	}
	d.Expect(7)
	if err := d.Err(); err != nil {
		t.Fatalf("decode error: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left over", d.Remaining())
	}
}

func TestDecoderTruncationSticksNeverPanics(t *testing.T) {
	var e Encoder
	e.U64(1)
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		_ = d.U64()
		if !errors.Is(d.Err(), ErrTruncated) {
			t.Fatalf("cut=%d: err = %v, want ErrTruncated", cut, d.Err())
		}
		// Sticky: later reads keep the original error and zero values.
		if v := d.U32(); v != 0 {
			t.Fatalf("cut=%d: post-error read = %d", cut, v)
		}
		if !errors.Is(d.Err(), ErrTruncated) {
			t.Fatalf("cut=%d: error not sticky", cut)
		}
	}
}

func TestSentinelMismatch(t *testing.T) {
	var e Encoder
	e.Mark(1)
	d := NewDecoder(e.Bytes())
	d.Expect(2)
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", d.Err())
	}
}

func TestCountLimit(t *testing.T) {
	var e Encoder
	e.U32(1 << 30)
	d := NewDecoder(e.Bytes())
	if n := d.Count(100); n != 0 {
		t.Fatalf("Count returned %d despite limit", n)
	}
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", d.Err())
	}
}

func buildArchive(t *testing.T) []byte {
	t.Helper()
	var b Builder
	var s1, s2 Encoder
	s1.U64(123)
	s2.String("cell")
	b.Add("meta", &s1)
	b.Add("cell0", &s2)
	return b.Bytes()
}

func TestArchiveRoundTrip(t *testing.T) {
	data := buildArchive(t)
	a, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if n := a.Names(); len(n) != 2 || n[0] != "meta" || n[1] != "cell0" {
		t.Fatalf("names = %v", n)
	}
	d, err := a.Section("meta")
	if err != nil {
		t.Fatal(err)
	}
	if got := d.U64(); got != 123 {
		t.Fatalf("meta payload = %d", got)
	}
	if _, err := a.Section("nope"); !errors.Is(err, ErrNoSection) {
		t.Fatalf("missing section err = %v", err)
	}
}

func TestOpenRejectsBadMagic(t *testing.T) {
	data := buildArchive(t)
	data[0] ^= 0xff
	if _, err := Open(data); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestOpenRejectsVersionMismatch(t *testing.T) {
	data := buildArchive(t)
	data[4] = Version + 1 // little-endian u16 version lives at [4:6]
	// Fix the checksum so the version check is what fires.
	data = fixCRC(data)
	if _, err := Open(data); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	data := buildArchive(t)
	data[len(data)/2] ^= 0x01
	if _, err := Open(data); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

func TestOpenRejectsTruncation(t *testing.T) {
	data := buildArchive(t)
	for _, cut := range []int{0, 3, 7, len(data) - 1} {
		_, err := Open(data[:cut])
		if err == nil {
			t.Fatalf("cut=%d accepted", cut)
		}
	}
}

func TestOpenRejectsCorruptSectionLength(t *testing.T) {
	var b Builder
	var s Encoder
	s.U64(9)
	b.Add("only", &s)
	data := b.Bytes()
	// The section payload length prefix sits after magic(4) + ver(2) +
	// count(4) + namelen(4) + name(4). Blow it up and re-checksum so
	// only the length corruption is on trial.
	off := 4 + 2 + 4 + 4 + len("only")
	data[off] = 0xff
	data[off+1] = 0xff
	data = fixCRC(data)
	if _, err := Open(data); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func fixCRC(data []byte) []byte {
	body := data[:len(data)-4]
	var e Encoder
	e.Raw(body)
	e.U32(crc32.ChecksumIEEE(body))
	return e.Bytes()
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.snap")
	data := buildArchive(t)
	if err := WriteFileAtomic(path, data); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite must also be atomic (rename over existing).
	if err := WriteFileAtomic(path, data); err != nil {
		t.Fatal(err)
	}
	// No temp litter left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("dir has %d entries, want just the snapshot", len(ents))
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent.snap")); err == nil {
		t.Fatal("missing file accepted")
	}
}
