// Package snapshot defines the versioned binary checkpoint format used
// for deterministic crash-resume: a magic header, a format version, a
// sequence of named length-prefixed sections, and a trailing CRC32.
// Encoders append fixed-width little-endian primitives; decoders are
// sticky-error and bounds-checked so corrupt or truncated input always
// surfaces as a wrapped error, never a panic.
//
// The package is a leaf: it imports only the standard library, so every
// stateful layer (sim, rng, rlc, pdcp, transport, mac, core, metrics,
// obs, ran, fault, deploy) can depend on it without cycles.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
)

// Format constants. Version bumps whenever the byte layout of any
// section changes; readers reject mismatches outright rather than
// guessing (a wrong-version restore that "mostly works" would silently
// break byte-identical continuation).
const (
	Version = 1
)

// magic identifies a snapshot file ("OutRAN SNaPshot").
var magic = [4]byte{'O', 'S', 'N', 'P'}

// Sentinel errors, always wrapped with context by the functions that
// return them.
var (
	ErrBadMagic  = errors.New("snapshot: bad magic")
	ErrVersion   = errors.New("snapshot: format version mismatch")
	ErrChecksum  = errors.New("snapshot: checksum mismatch")
	ErrTruncated = errors.New("snapshot: truncated input")
	ErrCorrupt   = errors.New("snapshot: corrupt input")
	ErrNoSection = errors.New("snapshot: missing section")
)

// Encoder appends primitives to a growing byte buffer. The zero value
// is ready to use. Encoding never fails; all validation happens on the
// decode side.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends a byte.
//
//outran:allocfree
func (e *Encoder) U8(v uint8) {
	e.buf = append(e.buf, v) //outran:allocok amortized buffer growth; callers reuse encoders or pre-size
}

// Bool appends a boolean as one byte.
//
//outran:allocfree
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U16 appends a little-endian uint16.
//
//outran:allocfree
func (e *Encoder) U16(v uint16) {
	e.buf = binary.LittleEndian.AppendUint16(e.buf, v)
}

// U32 appends a little-endian uint32.
//
//outran:allocfree
func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 appends a little-endian uint64.
//
//outran:allocfree
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 appends a little-endian int64.
//
//outran:allocfree
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as 8 bytes.
//
//outran:allocfree
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 bit-exactly (IEEE-754 bits, not a decimal
// round-trip), preserving byte-identical continuation of EWMA and
// metric state.
//
//outran:allocfree
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes32 appends a length-prefixed byte slice (u32 length).
func (e *Encoder) Bytes32(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed UTF-8 string.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Raw appends b with no length prefix (the caller owns framing).
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Mark appends a structural sentinel. Decoders verify it with Expect;
// a mismatch pinpoints where a walk went out of sync instead of
// letting misaligned fields masquerade as plausible state.
//
//outran:allocfree
func (e *Encoder) Mark(tag uint32) { e.U32(tag ^ 0x5eed5eed) }

// Decoder reads primitives back out of a byte buffer. The first
// failure (out-of-bounds read, sentinel mismatch) sticks: every later
// read returns the zero value and Err() reports the original cause.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps b for reading.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Offset returns the current read position.
func (d *Decoder) Offset() int { return d.off }

func (d *Decoder) fail(want int) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: need %d bytes at offset %d, have %d",
			ErrTruncated, want, d.off, len(d.buf)-d.off)
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.fail(n)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads a byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int encoded as 8 bytes.
func (d *Decoder) Int() int { return int(d.I64()) }

// F64 reads a bit-exact float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bytes32 reads a length-prefixed byte slice. The returned slice
// aliases the decoder's buffer; callers that retain it must copy.
func (d *Decoder) Bytes32() []byte {
	n := int(d.U32())
	if d.err != nil {
		return nil
	}
	return d.take(n)
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Bytes32()) }

// Expect verifies a structural sentinel written by Encoder.Mark.
func (d *Decoder) Expect(tag uint32) {
	at := d.off
	got := d.U32()
	if d.err == nil && got != tag^0x5eed5eed {
		d.err = fmt.Errorf("%w: sentinel mismatch at offset %d (want tag %#x)",
			ErrCorrupt, at, tag)
	}
}

// Fail records an application-level decode error (e.g. an impossible
// count) if no earlier error is pending.
func (d *Decoder) Fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Count reads a u32 element count and validates it against max,
// guarding slice pre-allocation against corrupt lengths.
func (d *Decoder) Count(max int) int {
	at := d.off
	n := int(d.U32())
	if d.err == nil && (n < 0 || n > max) {
		d.err = fmt.Errorf("%w: count %d at offset %d exceeds limit %d",
			ErrCorrupt, n, at, max)
		return 0
	}
	if d.err != nil {
		return 0
	}
	return n
}

// Builder assembles a snapshot file from named sections.
type Builder struct {
	sections []struct {
		name string
		data []byte
	}
}

// Add appends a named section with the encoder's payload. Section
// names must be unique within a file; duplicates are caught by Open.
func (b *Builder) Add(name string, enc *Encoder) {
	b.sections = append(b.sections, struct {
		name string
		data []byte
	}{name, enc.Bytes()})
}

// Bytes assembles the file: magic, version, sections, trailing CRC32
// (IEEE) over everything before it.
func (b *Builder) Bytes() []byte {
	var e Encoder
	e.Raw(magic[:])
	e.U16(Version)
	e.U32(uint32(len(b.sections)))
	for _, s := range b.sections {
		e.String(s.name)
		e.Bytes32(s.data)
	}
	sum := crc32.ChecksumIEEE(e.Bytes())
	e.U32(sum)
	return e.Bytes()
}

// Archive is a parsed, checksum-verified snapshot file.
type Archive struct {
	sections map[string][]byte
	names    []string
}

// Open parses data, rejecting bad magic, version mismatch, checksum
// failure, truncation, and duplicate section names with clear errors.
func Open(data []byte) (*Archive, error) {
	if len(data) < len(magic)+2+4+4 {
		return nil, fmt.Errorf("%w: %d bytes is smaller than the fixed header", ErrTruncated, len(data))
	}
	if string(data[:4]) != string(magic[:]) {
		return nil, fmt.Errorf("%w: got %q, want %q", ErrBadMagic, data[:4], magic[:])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	want := binary.LittleEndian.Uint32(tail)
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: crc32 %#x, file says %#x", ErrChecksum, got, want)
	}
	d := NewDecoder(body[4:])
	if v := d.U16(); v != Version {
		return nil, fmt.Errorf("%w: file version %d, this build reads %d", ErrVersion, v, Version)
	}
	n := d.Count(1 << 20)
	a := &Archive{sections: make(map[string][]byte, n)}
	for i := 0; i < n; i++ {
		name := d.String()
		payload := d.Bytes32()
		if d.Err() != nil {
			break
		}
		if _, dup := a.sections[name]; dup {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrCorrupt, name)
		}
		// Copy out of the input buffer so the archive owns its data.
		a.sections[name] = append([]byte(nil), payload...)
		a.names = append(a.names, name)
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("parsing sections: %w", err)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after last section", ErrCorrupt, d.Remaining())
	}
	return a, nil
}

// Names returns section names in file order.
func (a *Archive) Names() []string { return a.names }

// Has reports whether a section exists.
func (a *Archive) Has(name string) bool {
	_, ok := a.sections[name]
	return ok
}

// Section returns a decoder over the named section's payload.
func (a *Archive) Section(name string) (*Decoder, error) {
	b, ok := a.sections[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSection, name)
	}
	return NewDecoder(b), nil
}

// WriteFileAtomic writes data to path via a temp file in the same
// directory followed by rename, so a checkpoint is either the complete
// previous file or the complete new one — never a torn write.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return fmt.Errorf("snapshot: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("snapshot: writing %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("snapshot: syncing %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("snapshot: closing %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("snapshot: renaming into place: %w", err)
	}
	return nil
}

// ReadFile loads and parses a snapshot file.
func ReadFile(path string) (*Archive, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: reading %s: %w", path, err)
	}
	a, err := Open(data)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %s: %w", path, err)
	}
	return a, nil
}
