package ip

import "outran/internal/snapshot"

// PutTuple encodes a five-tuple in its canonical 13-byte layout.
func PutTuple(e *snapshot.Encoder, ft FiveTuple) {
	e.Raw(ft.Src[:])
	e.Raw(ft.Dst[:])
	e.U16(ft.SrcPort)
	e.U16(ft.DstPort)
	e.U8(ft.Proto)
}

// GetTuple decodes a five-tuple written by PutTuple.
func GetTuple(d *snapshot.Decoder) FiveTuple {
	var ft FiveTuple
	for i := range ft.Src {
		ft.Src[i] = d.U8()
	}
	for i := range ft.Dst {
		ft.Dst[i] = d.U8()
	}
	ft.SrcPort = d.U16()
	ft.DstPort = d.U16()
	ft.Proto = d.U8()
	return ft
}

// PutPacket encodes a packet's full header state.
func PutPacket(e *snapshot.Encoder, p Packet) {
	PutTuple(e, p.Tuple)
	e.U32(p.Seq)
	e.U32(p.Ack)
	e.Bool(p.ACKFlag)
	e.Bool(p.SYN)
	e.Bool(p.FIN)
	e.Int(p.PayloadLen)
}

// GetPacket decodes a packet written by PutPacket.
func GetPacket(d *snapshot.Decoder) Packet {
	var p Packet
	p.Tuple = GetTuple(d)
	p.Seq = d.U32()
	p.Ack = d.U32()
	p.ACKFlag = d.Bool()
	p.SYN = d.Bool()
	p.FIN = d.Bool()
	p.PayloadLen = d.Int()
	return p
}
