package ip

import (
	"testing"
	"testing/quick"
)

func samplePacket() Packet {
	return Packet{
		Tuple: FiveTuple{
			Src:     AddrFrom(10, 0, 0, 1),
			Dst:     AddrFrom(10, 1, 0, 7),
			SrcPort: 443,
			DstPort: 50123,
			Proto:   ProtoTCP,
		},
		Seq:        123456,
		Ack:        7890,
		ACKFlag:    true,
		PayloadLen: 1400,
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	p := samplePacket()
	buf := make([]byte, HeadersLen)
	n, err := p.Marshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != HeadersLen {
		t.Fatalf("wrote %d bytes, want %d", n, HeadersLen)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tuple != p.Tuple || got.Seq != p.Seq || got.Ack != p.Ack ||
		got.ACKFlag != p.ACKFlag || got.PayloadLen != p.PayloadLen {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, p)
	}
}

func TestMarshalShortBuffer(t *testing.T) {
	p := samplePacket()
	if _, err := p.Marshal(make([]byte, 10)); err != ErrShortPacket {
		t.Fatalf("got %v, want ErrShortPacket", err)
	}
}

func TestUnmarshalCorruption(t *testing.T) {
	p := samplePacket()
	buf := make([]byte, HeadersLen)
	if _, err := p.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	// Flip one bit anywhere in the IP header: checksum must catch it.
	for i := 0; i < IPv4HeaderLen; i++ {
		c := append([]byte(nil), buf...)
		c[i] ^= 0x04
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("corruption at IP byte %d not detected", i)
		}
	}
	// Flip bits in the TCP header too.
	for i := IPv4HeaderLen; i < HeadersLen; i++ {
		c := append([]byte(nil), buf...)
		c[i] ^= 0x10
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("corruption at TCP byte %d not detected", i)
		}
	}
}

func TestUnmarshalShort(t *testing.T) {
	if _, err := Unmarshal(make([]byte, 12)); err != ErrShortPacket {
		t.Fatalf("got %v", err)
	}
}

func TestNonTCPRejected(t *testing.T) {
	p := samplePacket()
	p.Tuple.Proto = ProtoUDP
	buf := make([]byte, HeadersLen)
	if _, err := p.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(buf); err != ErrNotTCP {
		t.Fatalf("got %v, want ErrNotTCP", err)
	}
}

func TestParseFiveTuple(t *testing.T) {
	p := samplePacket()
	buf := make([]byte, HeadersLen)
	if _, err := p.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	ft, err := ParseFiveTuple(buf)
	if err != nil {
		t.Fatal(err)
	}
	if ft != p.Tuple {
		t.Fatalf("parsed %v, want %v", ft, p.Tuple)
	}
}

func TestParseFiveTupleErrors(t *testing.T) {
	if _, err := ParseFiveTuple(make([]byte, 8)); err != ErrShortPacket {
		t.Fatal("short buffer accepted")
	}
	buf := make([]byte, HeadersLen)
	buf[0] = 0x65 // IPv6 nibble
	if _, err := ParseFiveTuple(buf); err != ErrBadVersion {
		t.Fatal("bad version accepted")
	}
}

func TestReverse(t *testing.T) {
	ft := samplePacket().Tuple
	r := ft.Reverse()
	if r.Src != ft.Dst || r.Dst != ft.Src || r.SrcPort != ft.DstPort || r.DstPort != ft.SrcPort {
		t.Fatal("Reverse wrong")
	}
	if r.Reverse() != ft {
		t.Fatal("double reverse not identity")
	}
}

func TestTupleAsMapKey(t *testing.T) {
	m := map[FiveTuple]int{}
	ft := samplePacket().Tuple
	m[ft] = 1
	ft2 := ft
	m[ft2] = 2
	if len(m) != 1 || m[ft] != 2 {
		t.Fatal("five-tuple not usable as map key")
	}
}

func TestTotalLen(t *testing.T) {
	p := samplePacket()
	if p.TotalLen() != 1440 {
		t.Fatalf("TotalLen %d", p.TotalLen())
	}
}

func TestStringFormats(t *testing.T) {
	a := AddrFrom(192, 168, 1, 2)
	if a.String() != "192.168.1.2" {
		t.Fatalf("addr string %q", a.String())
	}
	ft := samplePacket().Tuple
	if ft.String() != "10.0.0.1:443>10.1.0.7:50123/6" {
		t.Fatalf("tuple string %q", ft.String())
	}
}

// Property: any packet with valid field ranges survives a round trip.
func TestRoundTripProperty(t *testing.T) {
	prop := func(src, dst [4]byte, sp, dp uint16, seq, ack uint32, payload uint16, synFin uint8) bool {
		p := Packet{
			Tuple:      FiveTuple{Src: src, Dst: dst, SrcPort: sp, DstPort: dp, Proto: ProtoTCP},
			Seq:        seq,
			Ack:        ack,
			ACKFlag:    synFin&1 != 0,
			SYN:        synFin&2 != 0,
			FIN:        synFin&4 != 0,
			PayloadLen: int(payload % 60000),
		}
		buf := make([]byte, HeadersLen)
		if _, err := p.Marshal(buf); err != nil {
			return false
		}
		got, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		return got == p
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareOrdering(t *testing.T) {
	base := samplePacket().Tuple
	if base.Compare(base) != 0 {
		t.Fatal("tuple does not compare equal to itself")
	}
	// Each case bumps one field of base upward; ordered by significance.
	bump := []func(*FiveTuple){
		func(ft *FiveTuple) { ft.Src = AddrFrom(10, 0, 0, 2) },
		func(ft *FiveTuple) { ft.Dst = AddrFrom(10, 1, 0, 8) },
		func(ft *FiveTuple) { ft.SrcPort++ },
		func(ft *FiveTuple) { ft.DstPort++ },
		func(ft *FiveTuple) { ft.Proto = ProtoUDP },
	}
	for i, f := range bump {
		hi := base
		f(&hi)
		if base.Compare(hi) != -1 || hi.Compare(base) != 1 {
			t.Errorf("case %d: Compare not antisymmetric for %v vs %v", i, base, hi)
		}
		if !base.Less(hi) || hi.Less(base) {
			t.Errorf("case %d: Less inconsistent for %v vs %v", i, base, hi)
		}
	}
	// Higher-significance fields dominate lower ones: a smaller Src
	// wins even with larger ports.
	lo := base
	hi := base
	hi.Src = AddrFrom(10, 0, 0, 9)
	lo.SrcPort = 65000
	lo.DstPort = 65000
	if !lo.Less(hi) {
		t.Error("Src must dominate port ordering")
	}
}

func TestSortTuplesDeterministic(t *testing.T) {
	mk := func(n int) FiveTuple {
		return FiveTuple{
			Src: AddrFrom(10, 0, byte(n>>8), byte(n)), Dst: AddrFrom(10, 1, 0, 1),
			SrcPort: 443, DstPort: uint16(10000 + n), Proto: ProtoTCP,
		}
	}
	// Two shuffled permutations of the same tuple set must sort to the
	// same sequence — the property every sorted map walk relies on.
	var fwd, rev []FiveTuple
	for i := 0; i < 64; i++ {
		fwd = append(fwd, mk(i))
		rev = append(rev, mk(63-i))
	}
	SortTuples(fwd)
	SortTuples(rev)
	for i := range fwd {
		if fwd[i] != rev[i] {
			t.Fatalf("sorted orders diverge at %d: %v vs %v", i, fwd[i], rev[i])
		}
		if i > 0 && !fwd[i-1].Less(fwd[i]) {
			t.Fatalf("not strictly ascending at %d", i)
		}
	}
}
