// Package ip implements the minimal IPv4 and TCP header handling the
// base station's user plane needs: serialising downlink packets into
// real header bytes and parsing the five-tuple back out at the PDCP
// ingress (header inspection, §4.2 of the paper). Checksums are
// computed and verified so the encode/decode paths are honest.
package ip

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Protocol numbers used by the simulator.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// Addr is an IPv4 address.
type Addr [4]byte

// AddrFrom builds an address from four octets.
func AddrFrom(a, b, c, d byte) Addr { return Addr{a, b, c, d} }

func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// FiveTuple identifies a transport flow. It is comparable and usable
// as a map key (the flow-table key of the intra-user scheduler).
type FiveTuple struct {
	Src, Dst         Addr
	SrcPort, DstPort uint16
	Proto            uint8
}

func (ft FiveTuple) String() string {
	return fmt.Sprintf("%s:%d>%s:%d/%d", ft.Src, ft.SrcPort, ft.Dst, ft.DstPort, ft.Proto)
}

// Compare orders five-tuples canonically — lexicographically by
// (Src, Dst, SrcPort, DstPort, Proto) — returning -1, 0 or +1. This is
// the iteration order every flow-table walk in the simulator uses so
// that same-seed runs visit flows identically (map order is
// randomized by the runtime; see outran-vet's maprange analyzer).
func (ft FiveTuple) Compare(o FiveTuple) int {
	if c := bytes.Compare(ft.Src[:], o.Src[:]); c != 0 {
		return c
	}
	if c := bytes.Compare(ft.Dst[:], o.Dst[:]); c != 0 {
		return c
	}
	if ft.SrcPort != o.SrcPort {
		if ft.SrcPort < o.SrcPort {
			return -1
		}
		return 1
	}
	if ft.DstPort != o.DstPort {
		if ft.DstPort < o.DstPort {
			return -1
		}
		return 1
	}
	if ft.Proto != o.Proto {
		if ft.Proto < o.Proto {
			return -1
		}
		return 1
	}
	return 0
}

// Less reports whether ft orders before o (see Compare).
func (ft FiveTuple) Less(o FiveTuple) bool { return ft.Compare(o) < 0 }

// SortTuples sorts tuples into canonical Compare order in place.
func SortTuples(tuples []FiveTuple) {
	sort.Slice(tuples, func(i, j int) bool { return tuples[i].Less(tuples[j]) })
}

// Reverse returns the tuple of the opposite direction.
func (ft FiveTuple) Reverse() FiveTuple {
	return FiveTuple{Src: ft.Dst, Dst: ft.Src, SrcPort: ft.DstPort, DstPort: ft.SrcPort, Proto: ft.Proto}
}

// Header sizes.
const (
	IPv4HeaderLen = 20
	TCPHeaderLen  = 20
	HeadersLen    = IPv4HeaderLen + TCPHeaderLen
)

// Packet is a downlink or uplink transport segment. PayloadLen stands
// in for the payload bytes themselves: the simulator tracks sizes, not
// content, but headers are real bytes.
type Packet struct {
	Tuple      FiveTuple
	Seq        uint32 // TCP sequence number (byte offset)
	Ack        uint32 // cumulative ACK number
	ACKFlag    bool
	SYN, FIN   bool
	PayloadLen int
}

// TotalLen returns the on-the-wire length including headers.
func (p *Packet) TotalLen() int { return HeadersLen + p.PayloadLen }

var (
	// ErrShortPacket reports a buffer too small to hold the headers.
	ErrShortPacket = errors.New("ip: buffer shorter than IPv4+TCP headers")
	// ErrBadChecksum reports a failed checksum verification.
	ErrBadChecksum = errors.New("ip: checksum mismatch")
	// ErrNotTCP reports a non-TCP protocol field where TCP was required.
	ErrNotTCP = errors.New("ip: not a TCP packet")
	// ErrBadVersion reports a non-IPv4 version nibble.
	ErrBadVersion = errors.New("ip: not IPv4")
)

// Marshal serialises the IPv4+TCP headers into buf, which must be at
// least HeadersLen bytes. It returns the number of header bytes
// written. The payload itself is not written; the IPv4 total-length
// field accounts for it.
func (p *Packet) Marshal(buf []byte) (int, error) {
	if len(buf) < HeadersLen {
		return 0, ErrShortPacket
	}
	ipb := buf[:IPv4HeaderLen]
	ipb[0] = 0x45 // v4, IHL 5
	ipb[1] = 0
	binary.BigEndian.PutUint16(ipb[2:4], uint16(IPv4HeaderLen+TCPHeaderLen+p.PayloadLen))
	binary.BigEndian.PutUint16(ipb[4:6], 0)      // ident
	binary.BigEndian.PutUint16(ipb[6:8], 0x4000) // DF
	ipb[8] = 64                                  // TTL
	ipb[9] = p.Tuple.Proto
	binary.BigEndian.PutUint16(ipb[10:12], 0) // checksum placeholder
	copy(ipb[12:16], p.Tuple.Src[:])
	copy(ipb[16:20], p.Tuple.Dst[:])
	binary.BigEndian.PutUint16(ipb[10:12], checksum(ipb))

	tcp := buf[IPv4HeaderLen:HeadersLen]
	binary.BigEndian.PutUint16(tcp[0:2], p.Tuple.SrcPort)
	binary.BigEndian.PutUint16(tcp[2:4], p.Tuple.DstPort)
	binary.BigEndian.PutUint32(tcp[4:8], p.Seq)
	binary.BigEndian.PutUint32(tcp[8:12], p.Ack)
	tcp[12] = 5 << 4 // data offset 5 words
	var flags byte
	if p.FIN {
		flags |= 0x01
	}
	if p.SYN {
		flags |= 0x02
	}
	if p.ACKFlag {
		flags |= 0x10
	}
	tcp[13] = flags
	binary.BigEndian.PutUint16(tcp[14:16], 65535) // window
	binary.BigEndian.PutUint16(tcp[16:18], 0)     // checksum placeholder
	binary.BigEndian.PutUint16(tcp[18:20], 0)     // urgent
	binary.BigEndian.PutUint16(tcp[16:18], tcpChecksum(p.Tuple, tcp, p.PayloadLen))
	return HeadersLen, nil
}

// Unmarshal parses and verifies the IPv4+TCP headers in buf.
func Unmarshal(buf []byte) (Packet, error) {
	var p Packet
	if len(buf) < HeadersLen {
		return p, ErrShortPacket
	}
	ipb := buf[:IPv4HeaderLen]
	if ipb[0]>>4 != 4 {
		return p, ErrBadVersion
	}
	if checksum(ipb) != 0 {
		return p, ErrBadChecksum
	}
	p.Tuple.Proto = ipb[9]
	copy(p.Tuple.Src[:], ipb[12:16])
	copy(p.Tuple.Dst[:], ipb[16:20])
	total := int(binary.BigEndian.Uint16(ipb[2:4]))
	if p.Tuple.Proto != ProtoTCP {
		return p, ErrNotTCP
	}
	tcp := buf[IPv4HeaderLen:HeadersLen]
	p.Tuple.SrcPort = binary.BigEndian.Uint16(tcp[0:2])
	p.Tuple.DstPort = binary.BigEndian.Uint16(tcp[2:4])
	p.Seq = binary.BigEndian.Uint32(tcp[4:8])
	p.Ack = binary.BigEndian.Uint32(tcp[8:12])
	p.FIN = tcp[13]&0x01 != 0
	p.SYN = tcp[13]&0x02 != 0
	p.ACKFlag = tcp[13]&0x10 != 0
	p.PayloadLen = total - HeadersLen
	if p.PayloadLen < 0 {
		return p, ErrShortPacket
	}
	if tcpChecksum(p.Tuple, tcp, p.PayloadLen) != 0 {
		return p, ErrBadChecksum
	}
	return p, nil
}

// ParseFiveTuple extracts just the five-tuple without verifying
// checksums. This is the hot path of the PDCP header inspection; it
// touches only the fields it needs, mirroring how a production
// classifier avoids full reassembly.
func ParseFiveTuple(buf []byte) (FiveTuple, error) {
	var ft FiveTuple
	if len(buf) < HeadersLen {
		return ft, ErrShortPacket
	}
	if buf[0]>>4 != 4 {
		return ft, ErrBadVersion
	}
	ft.Proto = buf[9]
	copy(ft.Src[:], buf[12:16])
	copy(ft.Dst[:], buf[16:20])
	ihl := int(buf[0]&0x0f) * 4
	if len(buf) < ihl+4 {
		return ft, ErrShortPacket
	}
	ft.SrcPort = binary.BigEndian.Uint16(buf[ihl : ihl+2])
	ft.DstPort = binary.BigEndian.Uint16(buf[ihl+2 : ihl+4])
	return ft, nil
}

// checksum is the Internet checksum over b (with the checksum field
// included; a correct header sums to 0).
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// tcpChecksum computes the TCP checksum over the pseudo-header and the
// TCP header. The payload is simulated (all-zero), so it contributes
// nothing to the sum and honesty is preserved for any PayloadLen.
func tcpChecksum(ft FiveTuple, tcp []byte, payloadLen int) uint16 {
	var pseudo [12]byte
	copy(pseudo[0:4], ft.Src[:])
	copy(pseudo[4:8], ft.Dst[:])
	pseudo[9] = ft.Proto
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(TCPHeaderLen+payloadLen))
	var sum uint32
	//outran:allocok non-escaping local closure; the compiler keeps it (and sum) on the stack
	add := func(b []byte) {
		for i := 0; i+1 < len(b); i += 2 {
			sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
		}
		if len(b)%2 == 1 {
			sum += uint32(b[len(b)-1]) << 8
		}
	}
	add(pseudo[:])
	add(tcp)
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
