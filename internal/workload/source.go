package workload

// Source is the pull-based workload API: a deterministic, sim-time
// ordered stream of flow arrivals. Next returns flows in non-decreasing
// Start order until the stream is exhausted. Implementations may
// materialize their schedule internally; the contract is about the
// consumption side — the harness pulls one flow at a time and installs
// it as a recorded arrival event, never retaining a slice of its own.
//
// Determinism contract: a Source built from the same spec, environment
// and rng seed yields the same flow sequence on every platform, run
// and worker count.
type Source interface {
	Next() (FlowSpec, bool)
}

// sliceSource streams a pre-sorted schedule.
type sliceSource struct {
	flows []FlowSpec
	i     int
}

func (s *sliceSource) Next() (FlowSpec, bool) {
	if s.i >= len(s.flows) {
		return FlowSpec{}, false
	}
	f := s.flows[s.i]
	s.i++
	return f, true
}

// SliceSource wraps a time-sorted schedule as a Source. The slice is
// not copied; the caller must not mutate it afterwards.
func SliceSource(flows []FlowSpec) Source {
	return &sliceSource{flows: flows}
}

// Collect drains a source into a slice — the bridge back to the
// slice-based helpers (Merge, TotalBytes, WriteTrace) and to callers
// that schedule flows directly on a cell.
func Collect(src Source) []FlowSpec {
	var out []FlowSpec
	for {
		f, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, f)
	}
}

// mergeSource lazily k-way merges sorted sources. Ties break on the
// lowest source index, so composition order is part of the stream's
// identity and the merge is stable.
type mergeSource struct {
	srcs []Source
	head []FlowSpec
	ok   []bool
}

// MergeSources combines sorted sources into one sorted stream. Each
// input is pulled only as its head is consumed; same-instant flows
// come out in source order (stable).
func MergeSources(srcs ...Source) Source {
	m := &mergeSource{
		srcs: srcs,
		head: make([]FlowSpec, len(srcs)),
		ok:   make([]bool, len(srcs)),
	}
	for i, s := range srcs {
		m.head[i], m.ok[i] = s.Next()
	}
	return m
}

func (m *mergeSource) Next() (FlowSpec, bool) {
	best := -1
	for i := range m.srcs {
		if !m.ok[i] {
			continue
		}
		if best < 0 || m.head[i].Start < m.head[best].Start {
			best = i
		}
	}
	if best < 0 {
		return FlowSpec{}, false
	}
	f := m.head[best]
	m.head[best], m.ok[best] = m.srcs[best].Next()
	return f, true
}

// limitSource caps a stream at n flows.
type limitSource struct {
	src Source
	n   int
}

func (l *limitSource) Next() (FlowSpec, bool) {
	if l.n <= 0 {
		return FlowSpec{}, false
	}
	l.n--
	return l.src.Next()
}

// Limit caps a source at n flows (n <= 0 passes everything through).
func Limit(src Source, n int) Source {
	if n <= 0 {
		return src
	}
	return &limitSource{src: src, n: n}
}

// teeSource copies every pulled flow to a trace writer.
type teeSource struct {
	src Source
	tw  *TraceWriter
}

func (t *teeSource) Next() (FlowSpec, bool) {
	f, ok := t.src.Next()
	if ok {
		t.tw.Emit(f)
	}
	return f, ok
}

// Tee mirrors every flow pulled from src into tw, in pull order — the
// emission side of trace replay. Write errors stick in the writer and
// surface from its Flush/Close.
func Tee(src Source, tw *TraceWriter) Source {
	return &teeSource{src: src, tw: tw}
}
