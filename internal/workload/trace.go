package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"outran/internal/sim"
)

// Trace serialisation: flow schedules can be written to and read from
// CSV so a generated workload can be archived with results, diffed
// across runs, or replayed against a different scheduler build.
//
// Format: header row, then one row per flow:
//
//	start_us,ue,size_bytes,incast

// WriteTrace writes flows as CSV.
func WriteTrace(w io.Writer, flows []FlowSpec) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"start_us", "ue", "size_bytes", "incast"}); err != nil {
		return err
	}
	for _, f := range flows {
		rec := []string{
			strconv.FormatInt(int64(f.Start/sim.Microsecond), 10),
			strconv.Itoa(f.UE),
			strconv.FormatInt(f.Size, 10),
			strconv.FormatBool(f.Incast),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTrace parses a CSV written by WriteTrace.
func ReadTrace(r io.Reader) ([]FlowSpec, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	if len(recs[0]) != 4 || recs[0][0] != "start_us" {
		return nil, fmt.Errorf("workload: unrecognised trace header %v", recs[0])
	}
	flows := make([]FlowSpec, 0, len(recs)-1)
	for i, rec := range recs[1:] {
		if len(rec) != 4 {
			return nil, fmt.Errorf("workload: row %d has %d fields", i+2, len(rec))
		}
		startUS, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: row %d start: %v", i+2, err)
		}
		ue, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("workload: row %d ue: %v", i+2, err)
		}
		size, err := strconv.ParseInt(rec[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: row %d size: %v", i+2, err)
		}
		if size <= 0 {
			return nil, fmt.Errorf("workload: row %d non-positive size %d", i+2, size)
		}
		incast, err := strconv.ParseBool(rec[3])
		if err != nil {
			return nil, fmt.Errorf("workload: row %d incast: %v", i+2, err)
		}
		flows = append(flows, FlowSpec{
			Start:  sim.Time(startUS) * sim.Microsecond,
			UE:     ue,
			Size:   size,
			Incast: incast,
		})
	}
	return flows, nil
}
