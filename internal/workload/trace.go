package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"outran/internal/sim"
)

// Workload trace serialisation: the exact flow schedule a run offered
// can be written out and replayed byte-identically as input
// (Spec.TraceFile), archived with results, or diffed across runs.
//
// Format: JSONL. The first line is a header object carrying the format
// name and version; every following line is one flow with its start
// time in integer nanoseconds — lossless, unlike the retired CSV
// format's microsecond truncation, which is what makes replay
// byte-exact. Rows are in non-decreasing start order (the order the
// harness pulled them), and readers enforce that.
//
// Version rules: readers accept any trace whose version is <=
// TraceVersion (fields are only ever added, with omitempty); a larger
// version is an error, not a guess.

// TraceFormat identifies the trace header.
const TraceFormat = "outran-workload-trace"

// TraceVersion is the current trace schema version.
const TraceVersion = 1

// traceHeader is the first line of a trace file.
type traceHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
}

// traceRow is one flow line. T is the start time in nanoseconds.
type traceRow struct {
	T      int64 `json:"t"`
	UE     int   `json:"ue"`
	Size   int64 `json:"size"`
	Incast bool  `json:"incast,omitempty"`
}

// TraceWriter streams a workload trace. The header goes out at
// creation; Emit appends one flow per call in pull order. The first
// error sticks and surfaces from Flush.
type TraceWriter struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewTraceWriter starts a trace on w and writes the version header.
func NewTraceWriter(w io.Writer) *TraceWriter {
	bw := bufio.NewWriterSize(w, 1<<16)
	tw := &TraceWriter{w: bw, enc: json.NewEncoder(bw)}
	tw.err = tw.enc.Encode(traceHeader{Format: TraceFormat, Version: TraceVersion})
	return tw
}

// Emit appends one flow to the trace.
func (tw *TraceWriter) Emit(f FlowSpec) {
	if tw.err != nil {
		return
	}
	tw.err = tw.enc.Encode(traceRow{T: int64(f.Start), UE: f.UE, Size: f.Size, Incast: f.Incast})
}

// Flush drains the buffer and reports the first error seen.
func (tw *TraceWriter) Flush() error {
	if ferr := tw.w.Flush(); tw.err == nil {
		tw.err = ferr
	}
	return tw.err
}

// WriteTrace writes a whole schedule as a versioned JSONL trace.
func WriteTrace(w io.Writer, flows []FlowSpec) error {
	tw := NewTraceWriter(w)
	for _, f := range flows {
		tw.Emit(f)
	}
	return tw.Flush()
}

// ReadTrace parses a JSONL trace written by WriteTrace / TraceWriter,
// validating the header, the schema version, row sanity and time
// ordering.
func ReadTrace(r io.Reader) ([]FlowSpec, error) {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<16))
	var hdr traceHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("workload: trace header: %w", err)
	}
	if hdr.Format != TraceFormat {
		return nil, fmt.Errorf("workload: trace format %q, want %q", hdr.Format, TraceFormat)
	}
	if hdr.Version < 1 || hdr.Version > TraceVersion {
		return nil, fmt.Errorf("workload: trace version %d, reader supports 1..%d", hdr.Version, TraceVersion)
	}
	var flows []FlowSpec
	for {
		var row traceRow
		if err := dec.Decode(&row); err == io.EOF {
			return flows, nil
		} else if err != nil {
			return nil, fmt.Errorf("workload: trace row %d: %w", len(flows)+1, err)
		}
		switch {
		case row.T < 0:
			return nil, fmt.Errorf("workload: trace row %d: negative time %d", len(flows)+1, row.T)
		case row.UE < 0:
			return nil, fmt.Errorf("workload: trace row %d: negative ue %d", len(flows)+1, row.UE)
		case row.Size <= 0:
			return nil, fmt.Errorf("workload: trace row %d: non-positive size %d", len(flows)+1, row.Size)
		case len(flows) > 0 && sim.Time(row.T) < flows[len(flows)-1].Start:
			return nil, fmt.Errorf("workload: trace row %d: time %d out of order", len(flows)+1, row.T)
		}
		flows = append(flows, FlowSpec{
			Start:  sim.Time(row.T),
			UE:     row.UE,
			Size:   row.Size,
			Incast: row.Incast,
		})
	}
}
