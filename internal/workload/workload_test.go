package workload

import (
	"math"
	"testing"

	"outran/internal/rng"
	"outran/internal/sim"
)

func TestLTECellularMatchesPaperAnchors(t *testing.T) {
	d := LTECellular()
	// Fig 2a: 90% of flows are smaller than 35.9 KB.
	if p := d.Prob(35.9 * KB); math.Abs(p-0.90) > 0.005 {
		t.Fatalf("P(size <= 35.9KB) = %g, want 0.90", p)
	}
	// Heavy tail: mean far above median.
	if d.Mean() < 10*d.Quantile(0.5) {
		t.Fatalf("mean %g vs median %g: not heavy-tailed", d.Mean(), d.Quantile(0.5))
	}
}

func TestWebSearchMean(t *testing.T) {
	d := WebSearch()
	// Paper: background websearch traffic has ~1.92 MB average size.
	mean := d.Mean()
	if mean < 1.5*MB || mean > 2.4*MB {
		t.Fatalf("websearch mean %g MB, want ~1.92 MB", mean/MB)
	}
}

func TestMirageSmallFlowMass(t *testing.T) {
	d := Mirage()
	if d.Prob(1*KB) < 0.3 {
		t.Fatalf("MIRAGE small-flow mass %g too low", d.Prob(1*KB))
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"lte", "lte-cellular", "mirage", "mobile-app", "websearch", "web-search"} {
		if _, ok := ByName(n); !ok {
			t.Errorf("ByName(%q) failed", n)
		}
	}
	if _, ok := ByName("bogus"); ok {
		t.Fatal("bogus name resolved")
	}
}

// poissonFlows drains the adapter for the slice-shaped assertions.
func poissonFlows(t *testing.T, cfg PoissonConfig, seed uint64) []FlowSpec {
	t.Helper()
	src, err := Poisson(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return Collect(src)
}

func TestPoissonLoadCalibration(t *testing.T) {
	cfg := PoissonConfig{
		Dist:            LTECellular(),
		NumUEs:          10,
		Load:            0.6,
		CellCapacityBps: 50e6,
		Duration:        60 * sim.Second,
	}
	flows := poissonFlows(t, cfg, 1)
	offered := float64(TotalBytes(flows)) * 8 / 60
	want := 0.6 * 50e6
	if math.Abs(offered-want)/want > 0.2 {
		t.Fatalf("offered %g bps, want %g (±20%%)", offered, want)
	}
	for i := 1; i < len(flows); i++ {
		if flows[i].Start < flows[i-1].Start {
			t.Fatal("arrivals not time-ordered")
		}
	}
	for _, f := range flows {
		if f.UE < 0 || f.UE >= 10 || f.Size <= 0 || f.Start >= cfg.Duration {
			t.Fatalf("bad flow %+v", f)
		}
	}
}

// TestPoissonVolumeMatchingProperty: across seeds, the generated
// volume reaches the target and never overshoots by more than the
// final draw's size cap — the volume-matching invariant.
func TestPoissonVolumeMatchingProperty(t *testing.T) {
	cfg := PoissonConfig{
		Dist:            LTECellular(),
		NumUEs:          6,
		Load:            0.5,
		CellCapacityBps: 30e6,
		Duration:        20 * sim.Second,
	}
	target := int64(cfg.Load * cfg.CellCapacityBps / 8 * cfg.Duration.Seconds())
	for seed := uint64(1); seed <= 25; seed++ {
		flows := poissonFlows(t, cfg, seed)
		vol := TotalBytes(flows)
		if vol < target {
			t.Fatalf("seed %d: volume %d below target %d", seed, vol, target)
		}
		// One draw past the target, each capped at target/2.
		if vol > target+target/2 {
			t.Fatalf("seed %d: volume %d overshoots target %d", seed, vol, target)
		}
	}
}

func TestPoissonValidation(t *testing.T) {
	bad := PoissonConfig{NumUEs: 1, Load: 0.5, CellCapacityBps: 1e6, Duration: sim.Second}
	if _, err := Poisson(bad, rng.New(1)); err == nil {
		t.Fatal("nil dist accepted")
	}
	bad.Dist = LTECellular()
	bad.Load = 0
	if _, err := Poisson(bad, rng.New(1)); err == nil {
		t.Fatal("zero load accepted")
	}
}

func TestPoissonMaxFlows(t *testing.T) {
	flows := poissonFlows(t, PoissonConfig{
		Dist: LTECellular(), NumUEs: 5, Load: 0.9, CellCapacityBps: 100e6,
		Duration: 100 * sim.Second, MaxFlows: 50,
	}, 2)
	if len(flows) != 50 {
		t.Fatalf("MaxFlows not honoured: %d", len(flows))
	}
}

func TestPoissonDeterministic(t *testing.T) {
	cfg := PoissonConfig{Dist: LTECellular(), NumUEs: 4, Load: 0.5, CellCapacityBps: 20e6, Duration: 5 * sim.Second}
	a := poissonFlows(t, cfg, 9)
	b := poissonFlows(t, cfg, 9)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic schedule")
		}
	}
}

func TestIncastBursts(t *testing.T) {
	cfg := IncastConfig{
		FlowSize:       8 * KB,
		VolumeFraction: 0.1,
		BurstSize:      16,
		BaseLoadBps:    20e6,
		NumUEs:         10,
		Duration:       10 * sim.Second,
	}
	src, err := Incast(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	flows := Collect(src)
	if len(flows) == 0 {
		t.Fatal("no incast flows")
	}
	// Flows come in bursts of exactly BurstSize at the same instant.
	counts := map[sim.Time]int{}
	for _, f := range flows {
		if !f.Incast || f.Size != 8*KB {
			t.Fatalf("bad incast flow %+v", f)
		}
		counts[f.Start]++
	}
	for at, n := range counts {
		if n != 16 {
			t.Fatalf("burst at %v has %d flows", at, n)
		}
	}
	// Volume matches the requested fraction of base load.
	vol := float64(TotalBytes(flows)) * 8 / 10
	want := 0.1 * 20e6
	if math.Abs(vol-want)/want > 0.25 {
		t.Fatalf("incast volume %g, want %g", vol, want)
	}
}

func TestIncastValidation(t *testing.T) {
	if _, err := Incast(IncastConfig{}, rng.New(1)); err == nil {
		t.Fatal("zero config accepted")
	}
}

// TestIncastRejectsNonPositiveUEs is the regression test for the
// former panic: UE assignment calls r.Intn(NumUEs), so a config with
// NumUEs <= 0 must be rejected up front, not blow up mid-generation.
func TestIncastRejectsNonPositiveUEs(t *testing.T) {
	cfg := IncastConfig{
		FlowSize:       8 * KB,
		VolumeFraction: 0.1,
		BurstSize:      4,
		BaseLoadBps:    20e6,
		Duration:       5 * sim.Second,
		// NumUEs left 0.
	}
	if _, err := Incast(cfg, rng.New(1)); err == nil {
		t.Fatal("NumUEs = 0 accepted")
	}
	cfg.NumUEs = -3
	if _, err := Incast(cfg, rng.New(1)); err == nil {
		t.Fatal("negative NumUEs accepted")
	}
	cfg.NumUEs = 4
	cfg.Duration = 0
	if _, err := Incast(cfg, rng.New(1)); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestMerge(t *testing.T) {
	a := []FlowSpec{{Start: 1}, {Start: 5}}
	b := []FlowSpec{{Start: 2}, {Start: 3}, {Start: 9}}
	m := Collect(MergeSources(SliceSource(a), SliceSource(b)))
	if len(m) != 5 {
		t.Fatalf("merged %d", len(m))
	}
	for i := 1; i < len(m); i++ {
		if m[i].Start < m[i-1].Start {
			t.Fatal("merge not ordered")
		}
	}
	if len(Collect(MergeSources(SliceSource(nil), SliceSource(nil)))) != 0 {
		t.Fatal("empty merge")
	}
}

// TestMergeStabilityProperty: across random sorted inputs, MergeSources (a)
// keeps the output sorted, (b) preserves multiset membership, and (c)
// is stable — same-instant flows keep a-before-b order. UE carries a
// provenance tag so stability is checkable.
func TestMergeStabilityProperty(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		r := rng.New(seed)
		mk := func(tag, n int) []FlowSpec {
			out := make([]FlowSpec, n)
			at := sim.Time(0)
			for i := range out {
				at += sim.Time(r.Intn(3)) * sim.Millisecond // duplicates likely
				out[i] = FlowSpec{Start: at, UE: tag, Size: int64(i + 1)}
			}
			return out
		}
		a := mk(0, 1+r.Intn(20))
		b := mk(1, 1+r.Intn(20))
		m := Collect(MergeSources(SliceSource(a), SliceSource(b)))
		if len(m) != len(a)+len(b) {
			t.Fatalf("seed %d: merged %d, want %d", seed, len(m), len(a)+len(b))
		}
		var ia, ib int
		for i, f := range m {
			if i > 0 && f.Start < m[i-1].Start {
				t.Fatalf("seed %d: out of order at %d", seed, i)
			}
			// Stability: ties resolve a-first, and each input's
			// elements appear in their original order.
			if f.UE == 0 {
				if f != a[ia] {
					t.Fatalf("seed %d: a reordered at %d", seed, i)
				}
				ia++
			} else {
				if f != b[ib] {
					t.Fatalf("seed %d: b reordered at %d", seed, i)
				}
				ib++
			}
		}
		// Explicit tie check: at every instant, no a-flow may follow a
		// b-flow of the same instant.
		for i := 1; i < len(m); i++ {
			if m[i].Start == m[i-1].Start && m[i-1].UE == 1 && m[i].UE == 0 {
				t.Fatalf("seed %d: tie broken b-before-a at %d", seed, i)
			}
		}
	}
}

func TestMergeSourcesStable(t *testing.T) {
	a := []FlowSpec{{Start: 1, UE: 0}, {Start: 2, UE: 0}}
	b := []FlowSpec{{Start: 1, UE: 1}, {Start: 2, UE: 1}}
	got := Collect(MergeSources(SliceSource(a), SliceSource(b)))
	want := []FlowSpec{a[0], b[0], a[1], b[1]}
	if len(got) != len(want) {
		t.Fatalf("merged %d", len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestTotalBytes(t *testing.T) {
	if TotalBytes([]FlowSpec{{Size: 10}, {Size: 20}}) != 30 {
		t.Fatal("TotalBytes wrong")
	}
}

func TestLimit(t *testing.T) {
	flows := []FlowSpec{{Start: 1, Size: 1}, {Start: 2, Size: 1}, {Start: 3, Size: 1}}
	if n := len(Collect(Limit(SliceSource(flows), 2))); n != 2 {
		t.Fatalf("Limit(2) yielded %d", n)
	}
	if n := len(Collect(Limit(SliceSource(flows), 0))); n != 3 {
		t.Fatalf("Limit(0) yielded %d", n)
	}
}
