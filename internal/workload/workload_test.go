package workload

import (
	"math"
	"testing"

	"outran/internal/rng"
	"outran/internal/sim"
)

func TestLTECellularMatchesPaperAnchors(t *testing.T) {
	d := LTECellular()
	// Fig 2a: 90% of flows are smaller than 35.9 KB.
	if p := d.Prob(35.9 * KB); math.Abs(p-0.90) > 0.005 {
		t.Fatalf("P(size <= 35.9KB) = %g, want 0.90", p)
	}
	// Heavy tail: mean far above median.
	if d.Mean() < 10*d.Quantile(0.5) {
		t.Fatalf("mean %g vs median %g: not heavy-tailed", d.Mean(), d.Quantile(0.5))
	}
}

func TestWebSearchMean(t *testing.T) {
	d := WebSearch()
	// Paper: background websearch traffic has ~1.92 MB average size.
	mean := d.Mean()
	if mean < 1.5*MB || mean > 2.4*MB {
		t.Fatalf("websearch mean %g MB, want ~1.92 MB", mean/MB)
	}
}

func TestMirageSmallFlowMass(t *testing.T) {
	d := Mirage()
	if d.Prob(1*KB) < 0.3 {
		t.Fatalf("MIRAGE small-flow mass %g too low", d.Prob(1*KB))
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"lte", "lte-cellular", "mirage", "mobile-app", "websearch", "web-search"} {
		if _, ok := ByName(n); !ok {
			t.Errorf("ByName(%q) failed", n)
		}
	}
	if _, ok := ByName("bogus"); ok {
		t.Fatal("bogus name resolved")
	}
}

func TestPoissonLoadCalibration(t *testing.T) {
	d := LTECellular()
	cfg := PoissonConfig{
		Dist:            d,
		NumUEs:          10,
		Load:            0.6,
		CellCapacityBps: 50e6,
		Duration:        60 * sim.Second,
	}
	flows, err := Poisson(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	offered := float64(TotalBytes(flows)) * 8 / 60
	want := 0.6 * 50e6
	if math.Abs(offered-want)/want > 0.2 {
		t.Fatalf("offered %g bps, want %g (±20%%)", offered, want)
	}
	for i := 1; i < len(flows); i++ {
		if flows[i].Start < flows[i-1].Start {
			t.Fatal("arrivals not time-ordered")
		}
	}
	for _, f := range flows {
		if f.UE < 0 || f.UE >= 10 || f.Size <= 0 || f.Start >= cfg.Duration {
			t.Fatalf("bad flow %+v", f)
		}
	}
}

func TestPoissonValidation(t *testing.T) {
	bad := PoissonConfig{NumUEs: 1, Load: 0.5, CellCapacityBps: 1e6, Duration: sim.Second}
	if _, err := Poisson(bad, rng.New(1)); err == nil {
		t.Fatal("nil dist accepted")
	}
	bad.Dist = LTECellular()
	bad.Load = 0
	if _, err := Poisson(bad, rng.New(1)); err == nil {
		t.Fatal("zero load accepted")
	}
}

func TestPoissonMaxFlows(t *testing.T) {
	flows, err := Poisson(PoissonConfig{
		Dist: LTECellular(), NumUEs: 5, Load: 0.9, CellCapacityBps: 100e6,
		Duration: 100 * sim.Second, MaxFlows: 50,
	}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 50 {
		t.Fatalf("MaxFlows not honoured: %d", len(flows))
	}
}

func TestPoissonDeterministic(t *testing.T) {
	cfg := PoissonConfig{Dist: LTECellular(), NumUEs: 4, Load: 0.5, CellCapacityBps: 20e6, Duration: 5 * sim.Second}
	a, _ := Poisson(cfg, rng.New(9))
	b, _ := Poisson(cfg, rng.New(9))
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic schedule")
		}
	}
}

func TestIncastBursts(t *testing.T) {
	cfg := IncastConfig{
		FlowSize:       8 * KB,
		VolumeFraction: 0.1,
		BurstSize:      16,
		BaseLoadBps:    20e6,
		NumUEs:         10,
		Duration:       10 * sim.Second,
	}
	flows, err := Incast(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) == 0 {
		t.Fatal("no incast flows")
	}
	// Flows come in bursts of exactly BurstSize at the same instant.
	counts := map[sim.Time]int{}
	for _, f := range flows {
		if !f.Incast || f.Size != 8*KB {
			t.Fatalf("bad incast flow %+v", f)
		}
		counts[f.Start]++
	}
	for at, n := range counts {
		if n != 16 {
			t.Fatalf("burst at %v has %d flows", at, n)
		}
	}
	// Volume matches the requested fraction of base load.
	vol := float64(TotalBytes(flows)) * 8 / 10
	want := 0.1 * 20e6
	if math.Abs(vol-want)/want > 0.25 {
		t.Fatalf("incast volume %g, want %g", vol, want)
	}
}

func TestIncastValidation(t *testing.T) {
	if _, err := Incast(IncastConfig{}, rng.New(1)); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestMerge(t *testing.T) {
	a := []FlowSpec{{Start: 1}, {Start: 5}}
	b := []FlowSpec{{Start: 2}, {Start: 3}, {Start: 9}}
	m := Merge(a, b)
	if len(m) != 5 {
		t.Fatalf("merged %d", len(m))
	}
	for i := 1; i < len(m); i++ {
		if m[i].Start < m[i-1].Start {
			t.Fatal("merge not ordered")
		}
	}
	if len(Merge(nil, nil)) != 0 {
		t.Fatal("empty merge")
	}
}

func TestTotalBytes(t *testing.T) {
	if TotalBytes([]FlowSpec{{Size: 10}, {Size: 20}}) != 30 {
		t.Fatal("TotalBytes wrong")
	}
}
