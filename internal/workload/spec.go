package workload

import (
	"fmt"
	"os"
	"sort"

	"outran/internal/rng"
	"outran/internal/sim"
)

// ClassKind names a per-app traffic class.
type ClassKind string

// Available traffic classes.
const (
	// ClassWeb is the paper's workload: Poisson arrivals with sizes
	// from an empirical CDF preset (default "lte", Table 2).
	ClassWeb ClassKind = "web"
	// ClassVideo is ABR streaming: per-session fixed-size segments
	// fetched on a cadence (on/off pacing — a segment downloads, the
	// player idles until the next one).
	ClassVideo ClassKind = "video"
	// ClassIoT is machine-type traffic: tiny keepalive payloads on a
	// slow per-device cadence.
	ClassIoT ClassKind = "iot"
	// ClassBulk is background transfer: Poisson arrivals with sizes
	// from a bulky preset (default "websearch", mean ~1.92 MB).
	ClassBulk ClassKind = "bulk"
	// ClassVoice is VoIP-like traffic: small talk-spurt bundles on a
	// fast per-session cadence.
	ClassVoice ClassKind = "voice"
	// ClassIncast is the §6.3 worst case: periodic synchronized bursts
	// of identical short flows.
	ClassIncast ClassKind = "incast"
)

// ClassSpec composes one traffic class into a Spec. Zero-valued knobs
// take per-kind defaults, so {Kind: ClassWeb} alone is a valid class.
// ClassSpec is plain data: it names its size distribution instead of
// holding one, which keeps a Spec printable, comparable and safe to
// embed in a checkpoint-fingerprinted ran.Config.
type ClassSpec struct {
	Kind ClassKind

	// Share is the class's fraction of the spec's offered volume.
	// Shares are normalized across the spec; 0 means an equal share of
	// whatever the explicit shares leave unclaimed.
	Share float64

	// Dist names a size-distribution preset (ByName) for web/bulk
	// classes. Default "lte" for web, "websearch" for bulk.
	Dist string

	// Begin and End restrict the class to a sub-window of the arrival
	// span, as fractions in [0, 1]; both zero means the whole span.
	// The class's full volume share is packed into its window, which
	// is how an app-mix shift is expressed.
	Begin, End float64

	// Size overrides the kind's unit size in bytes: video segment
	// (default 384 KB), IoT keepalive (128 B), voice spurt (3 KB),
	// incast flow (8 KB). Ignored by web/bulk.
	Size int64

	// Every overrides the kind's cadence: video segment interval
	// (default 3 s), IoT keepalive period (5 s), voice spurt interval
	// (400 ms). Ignored by web/bulk/incast.
	Every sim.Time

	// Burst is the incast burst width in flows (default 30).
	Burst int
}

// Per-kind unit defaults.
const (
	defaultVideoSegment = 384 * KB
	defaultVideoEvery   = 3 * sim.Second
	defaultIoTSize      = 128
	defaultIoTEvery     = 5 * sim.Second
	defaultVoiceSize    = 3 * KB
	defaultVoiceEvery   = 400 * sim.Millisecond
	defaultIncastSize   = 8 * KB
	defaultIncastBurst  = 30
)

// Spec is the declarative workload description a ran.Config carries:
// what traffic to offer, how much, and how it varies over time. It is
// plain data — no pointers, functions or maps — so it fingerprints and
// compares like the rest of the configuration. The harness instantiates
// it against the cell (Build) to obtain the Source it pulls from.
type Spec struct {
	// Classes composes the generated traffic. Empty means no generated
	// workload (Extra/TraceFile-only specs are valid).
	Classes []ClassSpec

	// Load is the total offered load as a fraction of the cell's
	// effective capacity, split across Classes by Share.
	Load float64

	// Envelope shapes the arrival rate over the span (applies to every
	// class). Zero value = stationary.
	Envelope Envelope

	// MaxFlows caps total generation (0 = no cap).
	MaxFlows int

	// TraceFile, when set, replays a recorded workload trace (the
	// versioned JSONL format of WriteTrace) instead of generating
	// traffic. Mutually exclusive with Classes/Load/Envelope.
	TraceFile string

	// Extra flows are merged into the stream as-is — the hook for
	// scripted scenarios (handover continuations, targeted probes).
	Extra []FlowSpec
}

// Env is the cell context a Spec is instantiated against: the harness
// supplies it at build time so specs stay portable across topologies.
type Env struct {
	NumUEs      int
	CapacityBps float64  // effective cell capacity the load calibrates to
	Span        sim.Time // arrival span (warmup + window + tail)
}

// Enabled reports whether the spec describes any traffic at all.
func (s Spec) Enabled() bool {
	return len(s.Classes) > 0 || len(s.Extra) > 0 || s.TraceFile != ""
}

// Validate checks the spec and returns an error naming the offending
// field, mirroring ran.Config.Validate.
func (s Spec) Validate() error {
	if s.TraceFile != "" {
		if len(s.Classes) > 0 {
			return fmt.Errorf("workload: Spec.TraceFile and Spec.Classes are mutually exclusive")
		}
		if s.Load != 0 {
			return fmt.Errorf("workload: Spec.Load = %v, want 0 with TraceFile (the trace fixes the volume)", s.Load)
		}
		if s.Envelope.Kind != EnvNone {
			return fmt.Errorf("workload: Spec.Envelope.Kind = %q, want none with TraceFile (the trace fixes the timing)", s.Envelope.Kind)
		}
	}
	if len(s.Classes) > 0 && s.Load <= 0 {
		return fmt.Errorf("workload: Spec.Load = %v, want > 0 with Classes", s.Load)
	}
	if s.MaxFlows < 0 {
		return fmt.Errorf("workload: Spec.MaxFlows = %d, want >= 0", s.MaxFlows)
	}
	if err := s.Envelope.validate(); err != nil {
		return err
	}
	for i, c := range s.Classes {
		if err := c.validate(); err != nil {
			return fmt.Errorf("workload: Spec.Classes[%d] (%s): %w", i, c.Kind, err)
		}
	}
	for i, f := range s.Extra {
		switch {
		case f.Size <= 0:
			return fmt.Errorf("workload: Spec.Extra[%d].Size = %d, want > 0", i, f.Size)
		case f.Start < 0:
			return fmt.Errorf("workload: Spec.Extra[%d].Start = %v, want >= 0", i, f.Start)
		case f.UE < 0:
			return fmt.Errorf("workload: Spec.Extra[%d].UE = %d, want >= 0", i, f.UE)
		}
	}
	return nil
}

// validate checks one class spec (field-naming errors; the caller
// prefixes the class index).
func (c ClassSpec) validate() error {
	switch c.Kind {
	case ClassWeb, ClassVideo, ClassIoT, ClassBulk, ClassVoice, ClassIncast:
	default:
		return fmt.Errorf("Kind: unknown class %q", c.Kind)
	}
	if c.Share < 0 || c.Share > 1 {
		return fmt.Errorf("Share = %v, want 0..1", c.Share)
	}
	if c.Dist != "" {
		if c.Kind != ClassWeb && c.Kind != ClassBulk {
			return fmt.Errorf("Dist = %q, only web/bulk classes draw from a distribution", c.Dist)
		}
		if _, ok := ByName(c.Dist); !ok {
			return fmt.Errorf("Dist: unknown preset %q", c.Dist)
		}
	}
	if c.Begin < 0 || c.Begin >= 1 {
		return fmt.Errorf("Begin = %v, want 0..1", c.Begin)
	}
	if c.End < 0 || c.End > 1 || (c.End != 0 && c.End <= c.Begin) {
		return fmt.Errorf("End = %v, want (Begin, 1]", c.End)
	}
	if c.Size < 0 {
		return fmt.Errorf("Size = %d, want >= 0", c.Size)
	}
	if c.Every < 0 {
		return fmt.Errorf("Every = %v, want >= 0", c.Every)
	}
	if c.Burst < 0 {
		return fmt.Errorf("Burst = %d, want >= 0", c.Burst)
	}
	return nil
}

// Build instantiates the spec against a cell environment: one sorted
// Source covering every class (each on its own forked rng stream, in
// class order), warped through the envelope, merged with Extra. The
// same (spec, env, seed) triple always yields the same stream.
func (s Spec) Build(env Env, r *rng.Source) (Source, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if env.NumUEs <= 0 {
		return nil, fmt.Errorf("workload: Env.NumUEs = %d, want > 0", env.NumUEs)
	}
	var srcs []Source
	if s.TraceFile != "" {
		f, err := os.Open(s.TraceFile)
		if err != nil {
			return nil, fmt.Errorf("workload: Spec.TraceFile: %w", err)
		}
		flows, err := ReadTrace(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("workload: Spec.TraceFile %s: %w", s.TraceFile, err)
		}
		srcs = append(srcs, SliceSource(flows))
	}
	if len(s.Classes) > 0 {
		if env.CapacityBps <= 0 {
			return nil, fmt.Errorf("workload: Env.CapacityBps = %v, want > 0", env.CapacityBps)
		}
		if env.Span <= 0 {
			return nil, fmt.Errorf("workload: Env.Span = %v, want > 0", env.Span)
		}
		totalVol := int64(s.Load * env.CapacityBps / 8 * env.Span.Seconds())
		shares := normalizeShares(s.Classes)
		warp := newWarper(s.Envelope, env.Span)
		for i, c := range s.Classes {
			cr := r.Fork() // class order fixes the stream assignment
			vol := int64(float64(totalVol) * shares[i])
			flows, err := c.generate(vol, env, cr)
			if err != nil {
				return nil, fmt.Errorf("workload: Spec.Classes[%d] (%s): %w", i, c.Kind, err)
			}
			for j := range flows {
				flows[j].Start = warp.warp(flows[j].Start)
			}
			sort.SliceStable(flows, func(a, b int) bool { return flows[a].Start < flows[b].Start })
			srcs = append(srcs, SliceSource(flows))
		}
	}
	if len(s.Extra) > 0 {
		extra := make([]FlowSpec, len(s.Extra))
		copy(extra, s.Extra)
		sort.SliceStable(extra, func(a, b int) bool { return extra[a].Start < extra[b].Start })
		srcs = append(srcs, SliceSource(extra))
	}
	var src Source
	switch len(srcs) {
	case 0:
		src = SliceSource(nil)
	case 1:
		src = srcs[0]
	default:
		src = MergeSources(srcs...)
	}
	return Limit(src, s.MaxFlows), nil
}

// normalizeShares resolves the per-class volume fractions: explicit
// shares keep their ratio of the claimed mass, zero shares split the
// remainder equally (or everything, when no share is explicit).
func normalizeShares(classes []ClassSpec) []float64 {
	out := make([]float64, len(classes))
	var claimed float64
	zeros := 0
	for _, c := range classes {
		claimed += c.Share
		if c.Share == 0 {
			zeros++
		}
	}
	switch {
	case zeros == 0:
		// All explicit: normalize to 1.
		for i, c := range classes {
			out[i] = c.Share / claimed
		}
	case claimed >= 1 || zeros == len(classes):
		// Zero shares get an equal cut alongside normalized explicit ones.
		for i, c := range classes {
			if c.Share == 0 {
				out[i] = 1 / float64(len(classes))
			} else {
				out[i] = c.Share / claimed * (1 - float64(zeros)/float64(len(classes)))
			}
		}
	default:
		// Explicit shares are absolute; zeros split the remainder.
		rest := (1 - claimed) / float64(zeros)
		for i, c := range classes {
			if c.Share == 0 {
				out[i] = rest
			} else {
				out[i] = c.Share
			}
		}
	}
	return out
}

// window resolves the class's active window in simulation time.
func (c ClassSpec) window(span sim.Time) (begin, end sim.Time) {
	begin = sim.Time(c.Begin * float64(span))
	end = span
	if c.End != 0 {
		end = sim.Time(c.End * float64(span))
	}
	return begin, end
}

// generate produces the class's nominal (pre-warp) schedule for the
// given byte volume. Schedules need not be sorted; Build sorts after
// warping.
func (c ClassSpec) generate(vol int64, env Env, r *rng.Source) ([]FlowSpec, error) {
	if vol <= 0 {
		return nil, nil
	}
	begin, end := c.window(env.Span)
	switch c.Kind {
	case ClassWeb, ClassBulk:
		name := c.Dist
		if name == "" {
			if c.Kind == ClassWeb {
				name = "lte"
			} else {
				name = "websearch"
			}
		}
		dist, _ := ByName(name) // Validate already vetted the preset
		return drawPoisson(dist, env.NumUEs, vol, begin, end, r), nil
	case ClassVideo:
		return c.periodicSessions(vol, env, begin, end, defaultVideoSegment, defaultVideoEvery, r), nil
	case ClassIoT:
		return c.periodicSessions(vol, env, begin, end, defaultIoTSize, defaultIoTEvery, r), nil
	case ClassVoice:
		return c.periodicSessions(vol, env, begin, end, defaultVoiceSize, defaultVoiceEvery, r), nil
	case ClassIncast:
		return c.incastBursts(vol, env, begin, end, r), nil
	}
	return nil, fmt.Errorf("unknown class %q", c.Kind)
}

// periodicSessions lays out per-UE sessions that each emit one
// size-byte unit every cadence tick, phase-offset at random, until the
// class volume is met. This is the shared shape of video segments, IoT
// keepalives and voice spurts — only the unit size and cadence differ.
func (c ClassSpec) periodicSessions(vol int64, env Env, begin, end sim.Time, defSize int64, defEvery sim.Time, r *rng.Source) []FlowSpec {
	size, every := c.Size, c.Every
	if size <= 0 {
		size = defSize
	}
	if every <= 0 {
		every = defEvery
	}
	window := end - begin
	if window <= 0 {
		return nil
	}
	ticks := int64(window / every)
	if ticks < 1 {
		ticks = 1
	}
	perSession := size * ticks
	sessions := int((vol + perSession - 1) / perSession)
	if sessions < 1 {
		sessions = 1
	}
	var flows []FlowSpec
	var emitted int64
	for s := 0; s < sessions && emitted < vol; s++ {
		ue := r.Intn(env.NumUEs)
		phase := sim.Time(r.Float64() * float64(every))
		for t := begin + phase; t < end && emitted < vol; t += every {
			flows = append(flows, FlowSpec{Start: t, UE: ue, Size: size})
			emitted += size
		}
	}
	return flows
}

// incastBursts schedules periodic synchronized bursts of identical
// short flows, sized so the bursts carry the class volume.
func (c ClassSpec) incastBursts(vol int64, env Env, begin, end sim.Time, r *rng.Source) []FlowSpec {
	size, burst := c.Size, c.Burst
	if size <= 0 {
		size = defaultIncastSize
	}
	if burst <= 0 {
		burst = defaultIncastBurst
	}
	window := end - begin
	if window <= 0 {
		return nil
	}
	bytesPerBurst := size * int64(burst)
	bursts := vol / bytesPerBurst
	if bursts < 1 {
		bursts = 1
	}
	period := window / sim.Time(bursts+1)
	if period <= 0 {
		period = sim.Millisecond
	}
	var flows []FlowSpec
	for t := begin + period; t < end; t += period {
		for i := 0; i < burst; i++ {
			flows = append(flows, FlowSpec{Start: t, UE: r.Intn(env.NumUEs), Size: size, Incast: true})
		}
	}
	return flows
}

// drawPoisson is the volume-matched arrival core shared by the web and
// bulk classes and the Poisson adapter: sizes are drawn until their
// sum reaches the target, arrival instants are placed uniformly over
// the window (a Poisson process conditioned on its count).
func drawPoisson(dist *rng.EmpiricalCDF, numUEs int, targetVol int64, begin, end sim.Time, r *rng.Source) []FlowSpec {
	window := end - begin
	if window <= 0 || targetVol <= 0 {
		return nil
	}
	var flows []FlowSpec
	var vol int64
	for vol < targetVol {
		size := int64(dist.Sample(r))
		if size < 1 {
			size = 1
		}
		// A single flow must not dwarf the whole window's budget, or
		// one tail draw turns the run into a saturation test.
		if size > targetVol/2 && targetVol > 2 {
			size = targetVol / 2
		}
		flows = append(flows, FlowSpec{
			Start: begin + sim.Time(r.Float64()*float64(window)),
			UE:    r.Intn(numUEs),
			Size:  size,
		})
		vol += size
	}
	return flows
}

// PoissonSpec is the paper's baseline workload as a Spec: one web
// class drawing from the named preset at the given load.
func PoissonSpec(dist string, load float64) Spec {
	return Spec{Load: load, Classes: []ClassSpec{{Kind: ClassWeb, Dist: dist}}}
}

// ReplaySpec replays a recorded workload trace file.
func ReplaySpec(path string) Spec {
	return Spec{TraceFile: path}
}

// Scenario resolves a named workload scenario preset against a size
// distribution and load. The names are the -workload vocabulary of
// outran-sim and outran-chaos.
func Scenario(name, dist string, load float64) (Spec, bool) {
	switch name {
	case "", "poisson", "static":
		return PoissonSpec(dist, load), true
	case "diurnal":
		s := PoissonSpec(dist, load)
		s.Envelope = Envelope{Kind: EnvDiurnal}
		return s, true
	case "flashcrowd":
		s := PoissonSpec(dist, load)
		s.Envelope = Envelope{Kind: EnvFlashCrowd}
		return s, true
	case "ramp":
		s := PoissonSpec(dist, load)
		s.Envelope = Envelope{Kind: EnvRamp}
		return s, true
	case "appmix-shift":
		// The size distribution flips mid-run: web browsing gives way
		// to the bulkier mobile-app mix, at constant offered load.
		return Spec{Load: load, Classes: []ClassSpec{
			{Kind: ClassWeb, Dist: dist, End: 0.5},
			{Kind: ClassWeb, Dist: "mirage", Begin: 0.5},
		}}, true
	case "mixed":
		// A plausible busy-cell app mix across all five classes.
		return Spec{Load: load, Classes: []ClassSpec{
			{Kind: ClassWeb, Share: 0.5, Dist: dist},
			{Kind: ClassVideo, Share: 0.3},
			{Kind: ClassBulk, Share: 0.12},
			{Kind: ClassVoice, Share: 0.05},
			{Kind: ClassIoT, Share: 0.03},
		}}, true
	}
	return Spec{}, false
}

// ScenarioNames lists the Scenario vocabulary (for CLI usage strings).
func ScenarioNames() []string {
	return []string{"poisson", "diurnal", "flashcrowd", "ramp", "appmix-shift", "mixed"}
}
