package workload

import (
	"bytes"
	"strings"
	"testing"

	"outran/internal/rng"
	"outran/internal/sim"
)

func TestTraceRoundTrip(t *testing.T) {
	flows, err := Poisson(PoissonConfig{
		Dist: LTECellular(), NumUEs: 8, Load: 0.5,
		CellCapacityBps: 20e6, Duration: 3 * sim.Second,
	}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, flows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(flows) {
		t.Fatalf("round trip %d flows, want %d", len(got), len(flows))
	}
	for i := range got {
		// Start times are stored at µs resolution.
		if got[i].UE != flows[i].UE || got[i].Size != flows[i].Size || got[i].Incast != flows[i].Incast {
			t.Fatalf("row %d: %+v vs %+v", i, got[i], flows[i])
		}
		d := got[i].Start - flows[i].Start
		if d < -sim.Microsecond || d > sim.Microsecond {
			t.Fatalf("row %d start drifted %v", i, d)
		}
	}
}

func TestTraceIncastFlag(t *testing.T) {
	flows := []FlowSpec{{Start: sim.Second, UE: 3, Size: 8192, Incast: true}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, flows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Incast {
		t.Fatal("incast flag lost")
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus,header,row,x\n1,2,3,false\n",
		"start_us,ue,size_bytes,incast\nnotanumber,1,100,false\n",
		"start_us,ue,size_bytes,incast\n1,x,100,false\n",
		"start_us,ue,size_bytes,incast\n1,1,x,false\n",
		"start_us,ue,size_bytes,incast\n1,1,0,false\n",
		"start_us,ue,size_bytes,incast\n1,1,100,maybe\n",
	}
	for i, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad trace accepted", i)
		}
	}
}
