package workload

import (
	"bytes"
	"strings"
	"testing"

	"outran/internal/rng"
	"outran/internal/sim"
)

func TestTraceRoundTripExact(t *testing.T) {
	src, err := Poisson(PoissonConfig{
		Dist: LTECellular(), NumUEs: 8, Load: 0.5,
		CellCapacityBps: 20e6, Duration: 3 * sim.Second,
	}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	flows := Collect(src)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, flows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(flows) {
		t.Fatalf("round trip %d flows, want %d", len(got), len(flows))
	}
	for i := range got {
		// Nanosecond-exact: the JSONL format stores integer ns, so
		// replay reproduces the schedule bit-for-bit.
		if got[i] != flows[i] {
			t.Fatalf("row %d: %+v vs %+v", i, got[i], flows[i])
		}
	}
}

// TestTraceByteIdentityAcrossSeeds: emit -> read -> re-emit yields an
// identical byte stream, for many seeds — the round-trip property the
// CI replay smoke builds on.
func TestTraceByteIdentityAcrossSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		src, err := Poisson(PoissonConfig{
			Dist: LTECellular(), NumUEs: 5, Load: 0.4,
			CellCapacityBps: 10e6, Duration: 2 * sim.Second,
		}, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		flows := Collect(src)
		var first bytes.Buffer
		if err := WriteTrace(&first, flows); err != nil {
			t.Fatal(err)
		}
		read, err := ReadTrace(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var second bytes.Buffer
		if err := WriteTrace(&second, read); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("seed %d: emit->replay->emit not byte-identical", seed)
		}
	}
}

func TestTraceWriterStreams(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	flows := []FlowSpec{
		{Start: sim.Second, UE: 3, Size: 8192, Incast: true},
		{Start: 2 * sim.Second, UE: 1, Size: 100},
	}
	teed := Collect(Tee(SliceSource(flows), tw))
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(teed) != len(flows) {
		t.Fatalf("tee consumed %d flows", len(teed))
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != flows[0] || got[1] != flows[1] {
		t.Fatalf("teed trace %+v", got)
	}
	if !got[0].Incast {
		t.Fatal("incast flag lost")
	}
}

func TestReadTraceErrors(t *testing.T) {
	hdr := `{"format":"outran-workload-trace","version":1}` + "\n"
	cases := []string{
		"",                                      // empty
		"start_us,ue,size_bytes,incast\n",       // retired CSV format
		`{"format":"other","version":1}` + "\n", // wrong format
		`{"format":"outran-workload-trace","version":99}` + "\n", // future version
		hdr + "not json\n",                                                          // bad row
		hdr + `{"t":-1,"ue":0,"size":10}` + "\n",                                    // negative time
		hdr + `{"t":5,"ue":-2,"size":10}` + "\n",                                    // negative ue
		hdr + `{"t":5,"ue":0,"size":0}` + "\n",                                      // non-positive size
		hdr + `{"t":5,"ue":0,"size":10}` + "\n" + `{"t":4,"ue":0,"size":10}` + "\n", // out of order
	}
	for i, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad trace accepted", i)
		}
	}
}
