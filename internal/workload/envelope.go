package workload

import (
	"fmt"
	"math"

	"outran/internal/sim"
)

// EnvelopeKind names a temporal arrival-rate shape.
type EnvelopeKind string

// Available envelopes.
const (
	// EnvNone is the stationary process the paper evaluates.
	EnvNone EnvelopeKind = ""
	// EnvDiurnal is a sinusoidal day/night swing: the rate starts at
	// the trough, peaks mid-period, and returns to the trough.
	EnvDiurnal EnvelopeKind = "diurnal"
	// EnvFlashCrowd is a step: baseline rate with a Gain-times burst
	// over the [At, At+Width) fraction of the span.
	EnvFlashCrowd EnvelopeKind = "flashcrowd"
	// EnvRamp ramps the rate linearly From -> To across the span.
	EnvRamp EnvelopeKind = "ramp"
)

// Envelope shapes a class's arrival rate over the run. It
// redistributes a fixed offered volume in time rather than scaling it:
// the generated flow count and byte volume stay calibrated to
// Spec.Load, and arrival instants are warped so their density follows
// the envelope. That keeps PF-vs-OutRAN comparisons load-matched
// across envelopes.
//
// Envelope is plain data (fingerprint- and checkpoint-safe); zero
// fields take scenario defaults at build time.
type Envelope struct {
	Kind EnvelopeKind

	// Period is the diurnal cycle length; 0 means one full cycle over
	// the arrival span.
	Period sim.Time
	// Depth is the diurnal swing amplitude in (0, 1]; 0 means 0.8.
	Depth float64

	// At and Width place the flash-crowd step as fractions of the
	// span; zero values mean 0.4 and 0.2.
	At, Width float64
	// Gain is the flash-crowd rate multiplier; 0 means 4.
	Gain float64

	// From and To are the ramp's endpoint rate multipliers; both zero
	// means 0.25 -> 1.75.
	From, To float64
}

// validate checks the envelope fields, naming the offending one.
func (e Envelope) validate() error {
	switch e.Kind {
	case EnvNone, EnvDiurnal, EnvFlashCrowd, EnvRamp:
	default:
		return fmt.Errorf("workload: Envelope.Kind: unknown envelope %q", e.Kind)
	}
	if e.Period < 0 {
		return fmt.Errorf("workload: Envelope.Period = %v, want >= 0", e.Period)
	}
	if e.Depth < 0 || e.Depth > 1 {
		return fmt.Errorf("workload: Envelope.Depth = %v, want 0..1", e.Depth)
	}
	if e.At < 0 || e.At >= 1 {
		return fmt.Errorf("workload: Envelope.At = %v, want 0..1", e.At)
	}
	if e.Width < 0 || e.Width > 1 {
		return fmt.Errorf("workload: Envelope.Width = %v, want 0..1", e.Width)
	}
	if e.Gain < 0 {
		return fmt.Errorf("workload: Envelope.Gain = %v, want >= 0", e.Gain)
	}
	if e.From < 0 || e.To < 0 {
		return fmt.Errorf("workload: Envelope.From/To = %v/%v, want >= 0", e.From, e.To)
	}
	return nil
}

// rateFloor keeps the instantaneous rate strictly positive so the
// cumulative integral is strictly increasing and invertible.
const rateFloor = 0.05

// rate returns the relative arrival-rate multiplier at t, with
// defaults resolved against the span.
func (e Envelope) rate(t, span sim.Time) float64 {
	v := 1.0
	switch e.Kind {
	case EnvDiurnal:
		period := e.Period
		if period <= 0 {
			period = span
		}
		depth := e.Depth
		if depth == 0 {
			depth = 0.8
		}
		v = 1 + depth*math.Sin(2*math.Pi*float64(t)/float64(period)-math.Pi/2)
	case EnvFlashCrowd:
		at, width, gain := e.At, e.Width, e.Gain
		if at == 0 {
			at = 0.4
		}
		if width == 0 {
			width = 0.2
		}
		if gain == 0 {
			gain = 4
		}
		u := float64(t) / float64(span)
		if u >= at && u < at+width {
			v = gain
		}
	case EnvRamp:
		from, to := e.From, e.To
		if from == 0 && to == 0 {
			from, to = 0.25, 1.75
		}
		v = from + (to-from)*float64(t)/float64(span)
	}
	if v < rateFloor {
		v = rateFloor
	}
	return v
}

// warpSteps is the resolution of the precomputed cumulative-rate
// table. 4096 steps keep the interpolation error well under one TTI
// for any span the experiments use.
const warpSteps = 4096

// warper maps nominal (uniform-time) arrival instants onto the
// envelope: an instant t is sent to W(t) such that the density of
// warped arrivals is proportional to rate. W is the inverse CDF of the
// normalized cumulative rate integral, so it is strictly increasing,
// fixes 0 and span, and preserves arrival order — sorted schedules
// stay sorted through the warp.
type warper struct {
	span sim.Time
	cum  []float64 // cumulative rate integral at i*span/warpSteps
}

// newWarper precomputes the cumulative table; nil means identity.
func newWarper(e Envelope, span sim.Time) *warper {
	if e.Kind == EnvNone || span <= 0 {
		return nil
	}
	w := &warper{span: span, cum: make([]float64, warpSteps+1)}
	dt := float64(span) / warpSteps
	for i := 1; i <= warpSteps; i++ {
		mid := sim.Time((float64(i) - 0.5) * dt)
		w.cum[i] = w.cum[i-1] + e.rate(mid, span)*dt
	}
	return w
}

// warp maps a nominal instant in [0, span] to its envelope-shaped
// instant. The nominal fraction u = t/span selects the target mass
// u*total; binary search plus linear interpolation inverts the table.
func (w *warper) warp(t sim.Time) sim.Time {
	if w == nil {
		return t
	}
	if t <= 0 {
		return 0
	}
	if t >= w.span {
		return w.span
	}
	target := float64(t) / float64(w.span) * w.cum[warpSteps]
	lo, hi := 0, warpSteps
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if w.cum[mid] <= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	seg := w.cum[hi] - w.cum[lo]
	frac := 0.0
	if seg > 0 {
		frac = (target - w.cum[lo]) / seg
	}
	out := sim.Time((float64(lo) + frac) / warpSteps * float64(w.span))
	if out > w.span {
		out = w.span
	}
	return out
}
