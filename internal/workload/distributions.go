// Package workload generates the downlink traffic of the paper's
// evaluations: empirical flow-size distributions (the LTE cellular
// trace of Huang et al. [41], the MIRAGE mobile-app trace [12], the
// DCTCP websearch service [13]), Poisson flow arrivals calibrated to a
// target cell load, the incast scenario of §6.3, and persistent
// QUIC-like connections that reuse one five-tuple for many logical
// flows.
package workload

import "outran/internal/rng"

// KB and MB in bytes.
const (
	KB = 1024
	MB = 1024 * KB
)

// LTECellular is the downlink flow-size distribution measured in
// real-world LTE eNodeBs (Huang et al., SIGCOMM'13): strongly
// heavy-tailed, 90% of flows below 35.9 KB while heavy hitters carry
// most of the volume (Fig 2a).
func LTECellular() *rng.EmpiricalCDF {
	return rng.MustCDF([]rng.CDFPoint{
		{Value: 0.2 * KB, Prob: 0.07},
		{Value: 0.6 * KB, Prob: 0.20},
		{Value: 1.5 * KB, Prob: 0.38},
		{Value: 4 * KB, Prob: 0.56},
		{Value: 10 * KB, Prob: 0.72},
		{Value: 35.9 * KB, Prob: 0.90},
		{Value: 100 * KB, Prob: 0.951},
		{Value: 500 * KB, Prob: 0.984},
		{Value: 2 * MB, Prob: 0.995},
		{Value: 10 * MB, Prob: 1},
		// The measured trace continues to hundreds of MB; we bound the
		// tail at 10 MB so bounded-length simulations can realise the
		// distribution (volume-matched arrivals handle the load).
	})
}

// Mirage is the 2019 mobile-app traffic distribution (MIRAGE dataset)
// used for the paper's 5G simulations: a similar heavy tail with a
// larger small-flow mass from app telemetry and API calls.
func Mirage() *rng.EmpiricalCDF {
	return rng.MustCDF([]rng.CDFPoint{
		{Value: 0.15 * KB, Prob: 0.12},
		{Value: 0.5 * KB, Prob: 0.30},
		{Value: 1.2 * KB, Prob: 0.48},
		{Value: 3 * KB, Prob: 0.62},
		{Value: 8 * KB, Prob: 0.74},
		{Value: 30 * KB, Prob: 0.88},
		{Value: 120 * KB, Prob: 0.95},
		{Value: 600 * KB, Prob: 0.985},
		{Value: 3 * MB, Prob: 0.996},
		{Value: 10 * MB, Prob: 1},
	})
}

// WebSearch is the DCTCP web-search service distribution used for the
// background (bulk) traffic of the testbed experiments; its mean is
// ~1.92 MB as the paper states.
func WebSearch() *rng.EmpiricalCDF {
	return rng.MustCDF([]rng.CDFPoint{
		{Value: 6 * KB, Prob: 0.15},
		{Value: 13 * KB, Prob: 0.28},
		{Value: 19 * KB, Prob: 0.39},
		{Value: 33 * KB, Prob: 0.49},
		{Value: 53 * KB, Prob: 0.58},
		{Value: 133 * KB, Prob: 0.67},
		{Value: 667 * KB, Prob: 0.77},
		{Value: 1.7 * MB, Prob: 0.82},
		{Value: 4 * MB, Prob: 0.86},
		{Value: 10 * MB, Prob: 0.92},
		{Value: 20 * MB, Prob: 1},
	})
}

// ByName resolves a distribution preset.
func ByName(name string) (*rng.EmpiricalCDF, bool) {
	switch name {
	case "lte", "lte-cellular":
		return LTECellular(), true
	case "mirage", "mobile-app":
		return Mirage(), true
	case "websearch", "web-search":
		return WebSearch(), true
	}
	return nil, false
}
