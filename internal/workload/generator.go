package workload

import (
	"fmt"
	"sort"

	"outran/internal/rng"
	"outran/internal/sim"
)

// FlowSpec is one generated flow: destination UE, size, and start time.
type FlowSpec struct {
	Start sim.Time
	UE    int
	Size  int64
	// Incast marks flows from the incast class/generator (§6.3).
	Incast bool
}

// PoissonConfig drives the classic generator: UEs request downlink
// flows according to a Poisson process with sizes from Dist, calibrated
// so the offered load equals Load x CellCapacityBps. It remains as a
// thin adapter over the Spec engine for callers that assemble cells by
// hand; harness-driven runs declare a Spec on ran.Config instead.
type PoissonConfig struct {
	Dist            *rng.EmpiricalCDF
	NumUEs          int
	Load            float64 // offered load fraction of capacity
	CellCapacityBps float64 // estimated cell capacity
	Duration        sim.Time
	// MaxFlows caps generation (0 = no cap).
	MaxFlows int
}

// Poisson generates the flow arrival schedule as a sorted Source.
// Arrivals are assigned to UEs uniformly, matching the paper's setup
// where every UE requests service from the remote server.
//
// The schedule is volume-matched: flow sizes are drawn until their sum
// reaches Load x Capacity x Duration, and arrival instants are then
// placed uniformly at random over the window (a Poisson process
// conditioned on its count). With heavy-tailed sizes this guarantees
// every run actually offers the requested load — naive rate-based
// generation under-delivers badly on short runs because the rare huge
// flows that dominate the analytic mean are usually absent from the
// sample.
func Poisson(cfg PoissonConfig, r *rng.Source) (Source, error) {
	if cfg.Dist == nil {
		return nil, fmt.Errorf("workload: nil distribution")
	}
	if cfg.NumUEs <= 0 || cfg.Load <= 0 || cfg.CellCapacityBps <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("workload: invalid Poisson config %+v", cfg)
	}
	targetVol := int64(cfg.Load * cfg.CellCapacityBps / 8 * cfg.Duration.Seconds())
	flows := drawPoisson(cfg.Dist, cfg.NumUEs, targetVol, 0, cfg.Duration, r)
	if cfg.MaxFlows > 0 && len(flows) > cfg.MaxFlows {
		flows = flows[:cfg.MaxFlows]
	}
	sort.SliceStable(flows, func(i, j int) bool { return flows[i].Start < flows[j].Start })
	return SliceSource(flows), nil
}

// IncastConfig reproduces the §6.3 worst case: bursts of simultaneous
// fixed-size short flows layered on the base workload, taking a given
// fraction of the traffic volume.
type IncastConfig struct {
	FlowSize       int64   // 8 KB in the paper
	VolumeFraction float64 // 0.1 in the paper
	BurstSize      int     // simultaneous flows per burst
	BaseLoadBps    float64 // bytes-domain base offered load (bits/s)
	NumUEs         int
	Duration       sim.Time
}

// Incast generates periodic synchronized bursts of short flows as a
// sorted Source.
func Incast(cfg IncastConfig, r *rng.Source) (Source, error) {
	if cfg.FlowSize <= 0 || cfg.BurstSize <= 0 || cfg.VolumeFraction <= 0 {
		return nil, fmt.Errorf("workload: invalid incast config %+v", cfg)
	}
	// UE assignment draws r.Intn(NumUEs), which panics on a
	// non-positive argument — validate it like Poisson does.
	if cfg.NumUEs <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("workload: invalid incast config %+v", cfg)
	}
	incastBps := cfg.BaseLoadBps * cfg.VolumeFraction
	bytesPerBurst := cfg.FlowSize * int64(cfg.BurstSize)
	period := sim.Time(float64(bytesPerBurst*8) / incastBps * float64(sim.Second))
	if period <= 0 {
		return nil, fmt.Errorf("workload: degenerate incast period")
	}
	var flows []FlowSpec
	for t := period; t < cfg.Duration; t += period {
		for i := 0; i < cfg.BurstSize; i++ {
			flows = append(flows, FlowSpec{
				Start:  t,
				UE:     r.Intn(cfg.NumUEs),
				Size:   cfg.FlowSize,
				Incast: true,
			})
		}
	}
	return SliceSource(flows), nil
}

// TotalBytes sums the schedule volume.
func TotalBytes(flows []FlowSpec) int64 {
	var n int64
	for _, f := range flows {
		n += f.Size
	}
	return n
}
