package workload

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"outran/internal/rng"
	"outran/internal/sim"
)

var testEnv = Env{NumUEs: 8, CapacityBps: 40e6, Span: 20 * sim.Second}

func buildFlows(t *testing.T, s Spec, env Env, seed uint64) []FlowSpec {
	t.Helper()
	src, err := s.Build(env, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return Collect(src)
}

func TestSpecValidateFieldErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"classes without load", Spec{Classes: []ClassSpec{{Kind: ClassWeb}}}, "Spec.Load"},
		{"negative max flows", Spec{MaxFlows: -1}, "Spec.MaxFlows"},
		{"unknown class", Spec{Load: 0.5, Classes: []ClassSpec{{Kind: "telnet"}}}, "Kind"},
		{"bad share", Spec{Load: 0.5, Classes: []ClassSpec{{Kind: ClassWeb, Share: 1.5}}}, "Share"},
		{"bad dist", Spec{Load: 0.5, Classes: []ClassSpec{{Kind: ClassWeb, Dist: "bogus"}}}, "Dist"},
		{"dist on video", Spec{Load: 0.5, Classes: []ClassSpec{{Kind: ClassVideo, Dist: "lte"}}}, "Dist"},
		{"bad window", Spec{Load: 0.5, Classes: []ClassSpec{{Kind: ClassWeb, Begin: 0.8, End: 0.4}}}, "End"},
		{"bad envelope kind", Spec{Load: 0.5, Classes: []ClassSpec{{Kind: ClassWeb}}, Envelope: Envelope{Kind: "storm"}}, "Envelope.Kind"},
		{"bad envelope depth", Spec{Load: 0.5, Classes: []ClassSpec{{Kind: ClassWeb}}, Envelope: Envelope{Kind: EnvDiurnal, Depth: 2}}, "Envelope.Depth"},
		{"trace plus classes", Spec{TraceFile: "x.jsonl", Classes: []ClassSpec{{Kind: ClassWeb}}}, "TraceFile"},
		{"trace plus load", Spec{TraceFile: "x.jsonl", Load: 0.5}, "Spec.Load"},
		{"trace plus envelope", Spec{TraceFile: "x.jsonl", Envelope: Envelope{Kind: EnvDiurnal}}, "Envelope"},
		{"bad extra", Spec{Extra: []FlowSpec{{Start: sim.Second}}}, "Extra[0].Size"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not name %q", c.name, err, c.want)
		}
	}
	good := Spec{Load: 0.6, Classes: []ClassSpec{{Kind: ClassWeb}, {Kind: ClassVideo, Share: 0.3}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if (Spec{}).Enabled() {
		t.Fatal("zero spec enabled")
	}
	if !good.Enabled() {
		t.Fatal("good spec not enabled")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestSpecVolumeAcrossClasses: every class kind delivers roughly its
// share of the calibrated volume, and the merged stream is sorted.
func TestSpecVolumeAcrossClasses(t *testing.T) {
	spec := Spec{
		Load: 0.6,
		Classes: []ClassSpec{
			{Kind: ClassWeb, Share: 0.4},
			{Kind: ClassVideo, Share: 0.25},
			{Kind: ClassBulk, Share: 0.2},
			{Kind: ClassVoice, Share: 0.1},
			{Kind: ClassIoT, Share: 0.05},
		},
	}
	flows := buildFlows(t, spec, testEnv, 7)
	for i := 1; i < len(flows); i++ {
		if flows[i].Start < flows[i-1].Start {
			t.Fatal("merged stream not sorted")
		}
	}
	target := 0.6 * testEnv.CapacityBps / 8 * testEnv.Span.Seconds()
	vol := float64(TotalBytes(flows))
	if math.Abs(vol-target)/target > 0.35 {
		t.Fatalf("volume %g, want ~%g", vol, target)
	}
	for _, f := range flows {
		if f.UE < 0 || f.UE >= testEnv.NumUEs || f.Size <= 0 || f.Start < 0 || f.Start > testEnv.Span {
			t.Fatalf("bad flow %+v", f)
		}
	}
}

// TestSpecSameSeedDeterminismPerEnvelope: for every temporal envelope,
// the same (spec, env, seed) yields an identical stream, and different
// seeds yield different streams.
func TestSpecSameSeedDeterminismPerEnvelope(t *testing.T) {
	for _, kind := range []EnvelopeKind{EnvNone, EnvDiurnal, EnvFlashCrowd, EnvRamp} {
		spec := Spec{
			Load:     0.5,
			Classes:  []ClassSpec{{Kind: ClassWeb}, {Kind: ClassIoT, Share: 0.05}},
			Envelope: Envelope{Kind: kind},
		}
		a := buildFlows(t, spec, testEnv, 11)
		b := buildFlows(t, spec, testEnv, 11)
		if len(a) != len(b) {
			t.Fatalf("%q: nondeterministic length %d vs %d", kind, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%q: streams diverge at %d: %+v vs %+v", kind, i, a[i], b[i])
			}
		}
		c := buildFlows(t, spec, testEnv, 12)
		same := len(a) == len(c)
		if same {
			for i := range a {
				if a[i] != c[i] {
					same = false
					break
				}
			}
		}
		if same && len(a) > 0 {
			t.Fatalf("%q: seed change did not perturb the stream", kind)
		}
	}
}

// TestDiurnalEnvelopeShapesArrivals: under the diurnal envelope the
// peak half of the span must hold substantially more arrivals than the
// trough half, while the total volume stays load-matched.
func TestDiurnalEnvelopeShapesArrivals(t *testing.T) {
	flat := Spec{Load: 0.5, Classes: []ClassSpec{{Kind: ClassWeb}}}
	diurnal := flat
	diurnal.Envelope = Envelope{Kind: EnvDiurnal}

	flatFlows := buildFlows(t, flat, testEnv, 3)
	diurnalFlows := buildFlows(t, diurnal, testEnv, 3)

	// Redistribution, not scaling: same calibrated volume either way.
	fv, dv := float64(TotalBytes(flatFlows)), float64(TotalBytes(diurnalFlows))
	if math.Abs(fv-dv)/fv > 0.05 {
		t.Fatalf("envelope changed volume: %g vs %g", fv, dv)
	}

	// The sine peaks mid-span: the middle half should be crowded.
	mid := 0
	for _, f := range diurnalFlows {
		if f.Start >= testEnv.Span/4 && f.Start < 3*testEnv.Span/4 {
			mid++
		}
	}
	frac := float64(mid) / float64(len(diurnalFlows))
	if frac < 0.6 {
		t.Fatalf("diurnal middle-half fraction %.2f, want > 0.6", frac)
	}
}

func TestFlashCrowdEnvelope(t *testing.T) {
	spec := Spec{Load: 0.5, Classes: []ClassSpec{{Kind: ClassWeb}}}
	spec.Envelope = Envelope{Kind: EnvFlashCrowd, At: 0.5, Width: 0.1, Gain: 8}
	flows := buildFlows(t, spec, testEnv, 4)
	in := 0
	for _, f := range flows {
		u := float64(f.Start) / float64(testEnv.Span)
		if u >= 0.5 && u < 0.6 {
			in++
		}
	}
	frac := float64(in) / float64(len(flows))
	// 10% of the time at 8x rate vs baseline elsewhere: expect ~47%.
	if frac < 0.3 {
		t.Fatalf("flash-crowd window fraction %.2f, want > 0.3", frac)
	}
}

func TestWarpMonotoneAndAnchored(t *testing.T) {
	span := 10 * sim.Second
	for _, e := range []Envelope{
		{Kind: EnvDiurnal},
		{Kind: EnvFlashCrowd},
		{Kind: EnvRamp},
		{Kind: EnvRamp, From: 2, To: 0.1},
	} {
		w := newWarper(e, span)
		if got := w.warp(0); got != 0 {
			t.Fatalf("%q: warp(0) = %v", e.Kind, got)
		}
		if got := w.warp(span); got != span {
			t.Fatalf("%q: warp(span) = %v", e.Kind, got)
		}
		prev := sim.Time(-1)
		for i := 0; i <= 1000; i++ {
			at := sim.Time(float64(span) * float64(i) / 1000)
			got := w.warp(at)
			if got < prev {
				t.Fatalf("%q: warp not monotone at %v", e.Kind, at)
			}
			if got < 0 || got > span {
				t.Fatalf("%q: warp(%v) = %v outside span", e.Kind, at, got)
			}
			prev = got
		}
	}
}

func TestAppMixShiftScenario(t *testing.T) {
	spec, ok := Scenario("appmix-shift", "lte", 0.5)
	if !ok {
		t.Fatal("appmix-shift not resolved")
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	flows := buildFlows(t, spec, testEnv, 5)
	if len(flows) == 0 {
		t.Fatal("no flows")
	}
	// Both halves carry traffic (two classes on disjoint windows).
	var first, second int
	for _, f := range flows {
		if f.Start < testEnv.Span/2 {
			first++
		} else {
			second++
		}
	}
	if first == 0 || second == 0 {
		t.Fatalf("mix shift lost a phase: %d / %d", first, second)
	}
}

func TestScenarioNames(t *testing.T) {
	for _, n := range ScenarioNames() {
		s, ok := Scenario(n, "lte", 0.6)
		if !ok {
			t.Errorf("scenario %q not resolved", n)
			continue
		}
		if err := s.Validate(); err != nil {
			t.Errorf("scenario %q invalid: %v", n, err)
		}
	}
	if _, ok := Scenario("bogus", "lte", 0.6); ok {
		t.Fatal("bogus scenario resolved")
	}
}

func TestSpecExtraAndMaxFlows(t *testing.T) {
	extra := []FlowSpec{
		{Start: 3 * sim.Second, UE: 2, Size: 4096},
		{Start: sim.Second, UE: 1, Size: 1024},
	}
	spec := Spec{Extra: extra}
	flows := buildFlows(t, spec, testEnv, 1)
	if len(flows) != 2 || flows[0].Start != sim.Second || flows[1].Start != 3*sim.Second {
		t.Fatalf("extra flows not sorted into the stream: %+v", flows)
	}
	capped := Spec{Load: 0.5, Classes: []ClassSpec{{Kind: ClassWeb}}, MaxFlows: 5}
	if n := len(buildFlows(t, capped, testEnv, 2)); n != 5 {
		t.Fatalf("MaxFlows yielded %d", n)
	}
}

func TestSpecTraceReplay(t *testing.T) {
	gen := Spec{Load: 0.5, Classes: []ClassSpec{{Kind: ClassWeb}}, Envelope: Envelope{Kind: EnvDiurnal}}
	flows := buildFlows(t, gen, testEnv, 9)

	path := filepath.Join(t.TempDir(), "w.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(f, flows); err != nil {
		t.Fatal(err)
	}
	f.Close()

	replayed := buildFlows(t, ReplaySpec(path), testEnv, 1234) // seed must not matter
	if len(replayed) != len(flows) {
		t.Fatalf("replay %d flows, want %d", len(replayed), len(flows))
	}
	for i := range flows {
		if replayed[i] != flows[i] {
			t.Fatalf("replay diverges at %d: %+v vs %+v", i, replayed[i], flows[i])
		}
	}
}

func TestNormalizeShares(t *testing.T) {
	sum := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s
	}
	for name, classes := range map[string][]ClassSpec{
		"explicit":   {{Share: 0.6}, {Share: 0.2}},
		"all zero":   {{}, {}, {}},
		"mixed":      {{Share: 0.5}, {}},
		"overfull":   {{Share: 0.9}, {Share: 0.9}, {}},
		"singleton":  {{}},
		"explicit 1": {{Share: 1}},
	} {
		got := normalizeShares(classes)
		if math.Abs(sum(got)-1) > 1e-9 {
			t.Errorf("%s: shares sum to %g", name, sum(got))
		}
		for i, v := range got {
			if v <= 0 || v > 1 {
				t.Errorf("%s: share %d = %g", name, i, v)
			}
		}
	}
}
