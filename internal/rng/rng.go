// Package rng provides a deterministic random number generator and the
// distribution variates the simulator needs. The generator is
// xoshiro256**, seeded through splitmix64, so identical seeds yield
// identical streams on every platform and Go release.
package rng

import "math"

// Source is a deterministic pseudo-random source. It is not safe for
// concurrent use; the simulator is single-threaded by design.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64.
func New(seed uint64) *Source {
	r := &Source{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

// Fork returns a new independent Source derived from this one. Use it
// to give each subsystem its own stream so adding draws in one place
// does not perturb another.
func (r *Source) Fork() *Source {
	return New(r.Uint64())
}

// State exports the generator's full position (the four xoshiro256**
// words). Together with SetState it lets a checkpoint capture and
// resume a stream bit-exactly; no variate method caches anything
// outside these words.
func (r *Source) State() [4]uint64 { return r.s }

// SetState overwrites the generator position with a value previously
// returned by State.
func (r *Source) SetState(s [4]uint64) { r.s = s }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform float in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponential variate with the given mean.
func (r *Source) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normal variate with the given mean and standard
// deviation (Box–Muller).
func (r *Source) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Poisson returns a Poisson variate with the given mean (Knuth for
// small means, normal approximation above 30).
func (r *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := r.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// LogUniform returns a variate log-uniformly distributed in [lo, hi].
func (r *Source) LogUniform(lo, hi float64) float64 {
	if lo <= 0 || hi < lo {
		panic("rng: LogUniform requires 0 < lo <= hi")
	}
	return math.Exp(math.Log(lo) + r.Float64()*(math.Log(hi)-math.Log(lo)))
}

// Shuffle permutes the order of n elements using swap (Fisher–Yates).
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
