package rng

import (
	"fmt"
	"math"
	"sort"
)

// CDFPoint is one knot of an empirical cumulative distribution.
type CDFPoint struct {
	Value float64 // sample value (e.g. flow size in bytes)
	Prob  float64 // P(X <= Value), non-decreasing, last must be 1
}

// EmpiricalCDF is an empirical distribution interpolated log-linearly
// in value between knots, matching how measurement-paper CDFs (flow
// sizes spanning five decades) are usually digitised.
type EmpiricalCDF struct {
	points []CDFPoint
	mean   float64
}

// NewEmpiricalCDF validates the knots and precomputes the mean.
// Knots must have strictly increasing positive values and
// non-decreasing probabilities ending at 1.
func NewEmpiricalCDF(points []CDFPoint) (*EmpiricalCDF, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("rng: CDF needs at least 2 points, got %d", len(points))
	}
	for i, p := range points {
		if p.Value <= 0 {
			return nil, fmt.Errorf("rng: CDF point %d has non-positive value %g", i, p.Value)
		}
		if p.Prob < 0 || p.Prob > 1 {
			return nil, fmt.Errorf("rng: CDF point %d has probability %g outside [0,1]", i, p.Prob)
		}
		if i > 0 {
			if p.Value <= points[i-1].Value {
				return nil, fmt.Errorf("rng: CDF values not strictly increasing at point %d", i)
			}
			if p.Prob < points[i-1].Prob {
				return nil, fmt.Errorf("rng: CDF probabilities decreasing at point %d", i)
			}
		}
	}
	if points[len(points)-1].Prob != 1 {
		return nil, fmt.Errorf("rng: CDF must end at probability 1, got %g", points[len(points)-1].Prob)
	}
	c := &EmpiricalCDF{points: append([]CDFPoint(nil), points...)}
	c.mean = c.computeMean()
	return c, nil
}

// MustCDF is NewEmpiricalCDF that panics on error, for package-level
// distribution tables.
func MustCDF(points []CDFPoint) *EmpiricalCDF {
	c, err := NewEmpiricalCDF(points)
	if err != nil {
		panic(err)
	}
	return c
}

// quantile returns the value at cumulative probability u in [0,1].
func (c *EmpiricalCDF) quantile(u float64) float64 {
	pts := c.points
	if u <= pts[0].Prob {
		return pts[0].Value
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Prob >= u })
	if i >= len(pts) {
		return pts[len(pts)-1].Value
	}
	lo, hi := pts[i-1], pts[i]
	if hi.Prob == lo.Prob {
		return hi.Value
	}
	frac := (u - lo.Prob) / (hi.Prob - lo.Prob)
	return math.Exp(math.Log(lo.Value) + frac*(math.Log(hi.Value)-math.Log(lo.Value)))
}

// Sample draws one variate.
func (c *EmpiricalCDF) Sample(r *Source) float64 {
	return c.quantile(r.Float64())
}

// Quantile exposes the inverse CDF (useful for tests and for the MLFQ
// threshold optimizer).
func (c *EmpiricalCDF) Quantile(u float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return c.quantile(u)
}

// Prob returns P(X <= v), the forward CDF, log-linearly interpolated.
func (c *EmpiricalCDF) Prob(v float64) float64 {
	pts := c.points
	if v <= pts[0].Value {
		return pts[0].Prob
	}
	if v >= pts[len(pts)-1].Value {
		return 1
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Value >= v })
	lo, hi := pts[i-1], pts[i]
	frac := (math.Log(v) - math.Log(lo.Value)) / (math.Log(hi.Value) - math.Log(lo.Value))
	return lo.Prob + frac*(hi.Prob-lo.Prob)
}

// Mean returns the distribution mean, computed by numerically
// integrating the quantile function.
func (c *EmpiricalCDF) Mean() float64 { return c.mean }

func (c *EmpiricalCDF) computeMean() float64 {
	const n = 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		u := (float64(i) + 0.5) / n
		sum += c.quantile(u)
	}
	return sum / n
}

// Min and Max return the support bounds.
func (c *EmpiricalCDF) Min() float64 { return c.points[0].Value }
func (c *EmpiricalCDF) Max() float64 { return c.points[len(c.points)-1].Value }
