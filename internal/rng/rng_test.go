package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal values", same)
	}
}

func TestForkIndependence(t *testing.T) {
	a := New(7)
	f := a.Fork()
	// Drawing from the fork must not be identical to the parent stream.
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == f.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatal("fork mirrors parent")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if m := sum / n; math.Abs(m-0.5) > 0.01 {
		t.Fatalf("uniform mean %g far from 0.5", m)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(3.5)
	}
	if m := sum / n; math.Abs(m-3.5) > 0.05 {
		t.Fatalf("exponential mean %g far from 3.5", m)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(13)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean %g", mean)
	}
	if math.Abs(std-2) > 0.05 {
		t.Fatalf("normal std %g", std)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(17)
	for _, mean := range []float64{0.5, 4, 25, 100} {
		sum := 0.0
		const n = 50000
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Fatalf("Poisson(%g) mean %g", mean, got)
		}
	}
}

func TestPoissonNonPositive(t *testing.T) {
	r := New(1)
	if r.Poisson(0) != 0 || r.Poisson(-3) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestLogUniformRange(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		v := r.LogUniform(10, 1000)
		if v < 10 || v > 1000 {
			t.Fatalf("LogUniform out of range: %g", v)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		v := make([]int, n)
		for i := range v {
			v[i] = i
		}
		New(seed).Shuffle(n, func(i, j int) { v[i], v[j] = v[j], v[i] })
		seen := make([]bool, n)
		for _, x := range v {
			if x < 0 || x >= n || seen[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
