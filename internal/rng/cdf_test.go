package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func testCDF() *EmpiricalCDF {
	return MustCDF([]CDFPoint{
		{Value: 1000, Prob: 0.5},
		{Value: 10000, Prob: 0.9},
		{Value: 1000000, Prob: 1},
	})
}

func TestCDFValidation(t *testing.T) {
	cases := []struct {
		name string
		pts  []CDFPoint
	}{
		{"too few", []CDFPoint{{Value: 1, Prob: 1}}},
		{"non-positive value", []CDFPoint{{Value: 0, Prob: 0.5}, {Value: 2, Prob: 1}}},
		{"decreasing values", []CDFPoint{{Value: 5, Prob: 0.5}, {Value: 2, Prob: 1}}},
		{"decreasing probs", []CDFPoint{{Value: 1, Prob: 0.9}, {Value: 2, Prob: 0.5}}},
		{"not ending at 1", []CDFPoint{{Value: 1, Prob: 0.5}, {Value: 2, Prob: 0.9}}},
		{"prob above 1", []CDFPoint{{Value: 1, Prob: 0.5}, {Value: 2, Prob: 1.5}}},
	}
	for _, c := range cases {
		if _, err := NewEmpiricalCDF(c.pts); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestMustCDFPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCDF did not panic on bad input")
		}
	}()
	MustCDF(nil)
}

func TestQuantileMonotonic(t *testing.T) {
	c := testCDF()
	prev := 0.0
	for u := 0.0; u <= 1.0; u += 0.001 {
		v := c.Quantile(u)
		if v < prev {
			t.Fatalf("quantile not monotonic at %g: %g < %g", u, v, prev)
		}
		prev = v
	}
}

func TestQuantileKnots(t *testing.T) {
	c := testCDF()
	if got := c.Quantile(0.5); got != 1000 {
		t.Fatalf("Quantile(0.5)=%g, want 1000", got)
	}
	if got := c.Quantile(0.9); math.Abs(got-10000) > 1 {
		t.Fatalf("Quantile(0.9)=%g, want 10000", got)
	}
	if got := c.Quantile(1); math.Abs(got-1000000) > 1 {
		t.Fatalf("Quantile(1)=%g", got)
	}
	if got := c.Quantile(-1); got != 1000 {
		t.Fatalf("clamped Quantile(-1)=%g, want min", got)
	}
}

func TestProbQuantileRoundTrip(t *testing.T) {
	c := testCDF()
	for u := 0.5; u < 1.0; u += 0.01 {
		v := c.Quantile(u)
		back := c.Prob(v)
		if math.Abs(back-u) > 1e-6 {
			t.Fatalf("Prob(Quantile(%g)) = %g", u, back)
		}
	}
}

func TestProbBounds(t *testing.T) {
	c := testCDF()
	if c.Prob(1) != 0.5 {
		t.Fatalf("Prob below support = %g, want first knot prob", c.Prob(1))
	}
	if c.Prob(2e6) != 1 {
		t.Fatal("Prob above support != 1")
	}
}

func TestSampleWithinSupport(t *testing.T) {
	c := testCDF()
	r := New(23)
	for i := 0; i < 10000; i++ {
		v := c.Sample(r)
		if v < c.Min() || v > c.Max() {
			t.Fatalf("sample %g outside [%g, %g]", v, c.Min(), c.Max())
		}
	}
}

func TestEmpiricalMeanMatchesSampleMean(t *testing.T) {
	c := testCDF()
	r := New(29)
	sum := 0.0
	const n = 300000
	for i := 0; i < n; i++ {
		sum += c.Sample(r)
	}
	sampleMean := sum / n
	if math.Abs(sampleMean-c.Mean())/c.Mean() > 0.03 {
		t.Fatalf("analytic mean %g vs sample mean %g", c.Mean(), sampleMean)
	}
}

func TestHeavyTailShare(t *testing.T) {
	// 90% of flows < 10 KB, but the top decile must carry most bytes.
	c := testCDF()
	r := New(31)
	var smallBytes, bigBytes float64
	for i := 0; i < 100000; i++ {
		v := c.Sample(r)
		if v <= 10000 {
			smallBytes += v
		} else {
			bigBytes += v
		}
	}
	if bigBytes < 2*smallBytes {
		t.Fatalf("tail carries too little volume: big=%g small=%g", bigBytes, smallBytes)
	}
}

// Property: quantile output is always inside the support and monotone
// in u for random valid CDFs.
func TestQuantileProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		r := New(seed)
		pts := []CDFPoint{}
		v := 1.0 + r.Float64()*10
		p := 0.1 + 0.3*r.Float64()
		for i := 0; i < 4; i++ {
			pts = append(pts, CDFPoint{Value: v, Prob: p})
			v *= 2 + r.Float64()*10
			p += (1 - p) * (0.3 + 0.4*r.Float64())
		}
		pts = append(pts, CDFPoint{Value: v, Prob: 1})
		c, err := NewEmpiricalCDF(pts)
		if err != nil {
			return false
		}
		prev := 0.0
		for u := 0.0; u <= 1.0; u += 0.05 {
			q := c.Quantile(u)
			if q < c.Min() || q > c.Max() || q < prev {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
