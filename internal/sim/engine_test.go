package sim

import (
	"testing"
	"testing/quick"

	"outran/internal/analysis/probetest"
)

func TestEventOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("wrong order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock at %v, want 30", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered at %d: %v", i, v)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var e Engine
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	var e Engine
	fired := 0
	e.At(10, func() { fired++ })
	e.At(100, func() { fired++ })
	e.RunUntil(50)
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
	if e.Now() != 50 {
		t.Fatalf("clock %v, want 50", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d, want 1", e.Pending())
	}
	e.RunUntil(200)
	if fired != 2 {
		t.Fatalf("fired %d after second run, want 2", fired)
	}
}

func TestAfterFromWithinEvent(t *testing.T) {
	var e Engine
	var times []Time
	e.At(10, func() {
		e.After(5, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 1 || times[0] != 15 {
		t.Fatalf("nested After fired at %v, want [15]", times)
	}
}

func TestStop(t *testing.T) {
	var e Engine
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
}

func TestTicker(t *testing.T) {
	var e Engine
	var ticks []Time
	cancel := e.Ticker(10, func() {
		ticks = append(ticks, e.Now())
	})
	e.At(35, func() { cancel() })
	e.RunUntil(100)
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks %v, want 3", len(ticks), ticks)
	}
	for i, tm := range ticks {
		if tm != Time(10*(i+1)) {
			t.Fatalf("tick %d at %v", i, tm)
		}
	}
}

func TestTimerRestart(t *testing.T) {
	var e Engine
	fired := 0
	tm := NewTimer(&e, func() { fired++ })
	tm.Start(10)
	e.At(5, func() { tm.Start(20) }) // restart: should fire at 25 only
	e.RunUntil(100)
	if fired != 1 {
		t.Fatalf("timer fired %d times, want 1", fired)
	}
}

func TestTimerStop(t *testing.T) {
	var e Engine
	fired := 0
	tm := NewTimer(&e, func() { fired++ })
	tm.Start(10)
	e.At(5, func() { tm.Stop() })
	e.RunUntil(100)
	if fired != 0 {
		t.Fatal("stopped timer fired")
	}
	if tm.Running() {
		t.Fatal("stopped timer reports running")
	}
}

// TestTimerResetSemantics is the Start-as-Reset regression suite: a
// restart from within the timer's own window, a restart after expiry,
// and a stop-then-restart must each yield exactly one (correctly
// timed) firing per arm.
func TestTimerResetSemantics(t *testing.T) {
	var e Engine
	var fired []Time
	tm := NewTimer(&e, func() { fired = append(fired, e.Now()) })

	tm.Start(10)
	e.At(5, func() { tm.Start(20) })  // reset: the arm at 10 must not fire
	e.At(40, func() { tm.Start(10) }) // re-arm after expiry at 25
	e.At(60, func() { tm.Start(10) })
	e.At(65, func() { tm.Stop() })   // cancel the arm at 70
	e.At(80, func() { tm.Start(5) }) // restart after a stop
	e.RunUntil(200)

	want := []Time{25, 50, 85}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("firing %d at %v, want %v (all: %v)", i, fired[i], want[i], fired)
		}
	}
}

// TestTimerStopNeverStarted documents that Stop on a fresh timer is a
// safe no-op and does not poison a later Start.
func TestTimerStopNeverStarted(t *testing.T) {
	var e Engine
	fired := 0
	tm := NewTimer(&e, func() { fired++ })
	tm.Stop() // never started: must be a no-op
	tm.Stop() // idempotent
	if tm.Running() {
		t.Fatal("stopped (never-started) timer reports running")
	}
	tm.Start(10)
	e.RunUntil(100)
	if fired != 1 {
		t.Fatalf("timer fired %d times after stop-then-start, want 1", fired)
	}
	tm.Stop() // already expired: still a no-op
	if tm.Running() {
		t.Fatal("expired timer reports running after Stop")
	}
}

func TestTimerRunningAndExpires(t *testing.T) {
	var e Engine
	tm := NewTimer(&e, func() {})
	if tm.Running() {
		t.Fatal("new timer running")
	}
	tm.Start(30)
	if !tm.Running() || tm.Expires() != 30 {
		t.Fatalf("running=%v expires=%v", tm.Running(), tm.Expires())
	}
	e.RunUntil(100)
	if tm.Running() {
		t.Fatal("expired timer still running")
	}
}

func TestTimeUnits(t *testing.T) {
	if Second != 1e9 || Millisecond != 1e6 || Microsecond != 1e3 {
		t.Fatal("unit constants wrong")
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Fatal("Seconds conversion wrong")
	}
	if (3 * Millisecond).Milliseconds() != 3.0 {
		t.Fatal("Milliseconds conversion wrong")
	}
	if (1500 * Millisecond).String() != "1.5s" {
		t.Fatalf("String = %q", (1500 * Millisecond).String())
	}
}

// Property: for any batch of event times, execution order is sorted by
// time with ties in submission order.
func TestEventOrderProperty(t *testing.T) {
	prop := func(offsets []uint16) bool {
		var e Engine
		type rec struct {
			at  Time
			idx int
		}
		var got []rec
		for i, off := range offsets {
			at := Time(off)
			i := i
			e.At(at, func() { got = append(got, rec{e.Now(), i}) })
		}
		e.Run()
		for k := 1; k < len(got); k++ {
			if got[k].at < got[k-1].at {
				return false
			}
			if got[k].at == got[k-1].at && got[k].idx < got[k-1].idx {
				return false
			}
		}
		return len(got) == len(offsets)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestHeapShrinksAfterDrain is the regression test for the event queue
// pinning its peak capacity: after a large burst of events drains, the
// backing array must be compacted instead of holding the high-water
// mark for the rest of the run.
func TestHeapShrinksAfterDrain(t *testing.T) {
	var e Engine
	const burst = 8192
	for i := 0; i < burst; i++ {
		e.At(Time(i), func() {})
	}
	peak := cap(e.pq)
	if peak < burst {
		t.Fatalf("capacity %d below burst size %d", peak, burst)
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("queue not drained: %d pending", e.Pending())
	}
	if got := cap(e.pq); got >= peak {
		t.Fatalf("heap did not shrink after drain: cap %d (peak %d)", got, peak)
	}
	// Steady state: a small queue under shrinkMinCap must never shrink,
	// so push/pop cycles reuse the backing array without reallocating.
	for i := 0; i < 16; i++ {
		e.At(e.Now()+Time(i), func() {})
	}
	before := cap(e.pq)
	e.Run()
	for i := 0; i < 16; i++ {
		e.At(e.Now()+Time(i), func() {})
	}
	e.Run()
	if cap(e.pq) != before {
		t.Fatalf("small queue reallocated: cap %d -> %d", before, cap(e.pq))
	}
}

// TestHeapPushZeroAlloc pins the tentpole property: steady-state
// scheduling does not allocate. After warm-up, a push/pop cycle on a
// pre-grown heap must be allocation-free. The probe registry is keyed
// by //outran:allocfree annotation (probetest.Run enforces the match).
func TestHeapPushZeroAlloc(t *testing.T) {
	probetest.Run(t, ".", map[string]func(t *testing.T){
		"(*Engine).At": func(t *testing.T) {
			var e Engine
			fn := func() {}
			allocs := testing.AllocsPerRun(1000, func() {
				e.At(e.Now(), fn)
				e.Run()
			})
			if allocs != 0 {
				t.Fatalf("steady-state schedule+run allocates %.1f/op, want 0", allocs)
			}
		},
		"(*eventHeap).push": func(t *testing.T) {
			var h eventHeap
			ev := event{fn: func() {}}
			// Keep the heap size constant per run so push never has
			// to grow past the warm-up high-water mark.
			allocs := testing.AllocsPerRun(1000, func() {
				h.push(ev)
				h.pop()
			})
			if allocs != 0 {
				t.Fatalf("push/pop cycle allocates %.1f/op, want 0", allocs)
			}
		},
		"(*eventHeap).pop": func(t *testing.T) {
			var h eventHeap
			// Pre-grow past a few levels so pop sifts the root down.
			for i := 0; i < 31; i++ {
				h.push(event{at: Time(31 - i), seq: uint64(i), fn: func() {}})
			}
			allocs := testing.AllocsPerRun(1000, func() {
				ev := h.pop()
				h.push(ev)
			})
			if allocs != 0 {
				t.Fatalf("pop/push cycle allocates %.1f/op, want 0", allocs)
			}
		},
	})
}
