// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is kept as integer nanoseconds from the start of the simulation.
// Events scheduled for the same instant fire in the order they were
// scheduled, which makes every run with the same inputs bit-for-bit
// reproducible.
package sim

import (
	"fmt"
	"time"
)

// Time is a simulation timestamp in nanoseconds since simulation start.
type Time int64

// Common time units, usable as sim.Time directly.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts t to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns t in seconds as a float.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns t in milliseconds as a float.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string {
	return time.Duration(t).String()
}

type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among same-time events
	fn  func()
}

// eventHeap is a hand-rolled binary min-heap ordered by (at, seq).
// container/heap would box every event into an interface{} on Push —
// one heap allocation per scheduled event, on the hottest path of the
// simulator — so the sift operations are implemented directly on the
// slice. Pop order is fully determined by the (at, seq) total order,
// so the heap layout itself never affects the simulated schedule.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push appends ev and restores the heap invariant. The backing array
// is reused across push/pop cycles; it grows only when the pending
// event count exceeds every previous high-water mark since the last
// shrink.
//
//outran:allocfree
func (h *eventHeap) push(ev event) {
	//outran:allocok grows only past the high-water mark; steady-state push/pop reuses the array
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// shrinkMinCap is the capacity below which the heap never shrinks:
// steady-state simulations oscillate freely under it without ever
// re-allocating.
const shrinkMinCap = 1024

// pop removes and returns the minimum event. The vacated slot is
// zeroed so the callback closure is released immediately, and when a
// large drain leaves the backing array at under a quarter occupancy
// the storage is compacted — a burst of scheduled events (e.g. a chaos
// sweep) no longer pins its peak memory for the rest of the run.
//
//outran:allocfree
func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	ev := s[0]
	s[0] = s[n]
	s[n] = event{}
	s = s[:n]
	// Sift the relocated root down.
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s.less(r, l) {
			m = r
		}
		if !s.less(m, i) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	if cap(s) >= shrinkMinCap && n <= cap(s)/4 {
		// Halve toward the live size; the slack keeps refills cheap.
		//outran:allocok amortized shrink after a large drain; steady state stays under the occupancy trigger
		compact := make([]event, n, cap(s)/2)
		copy(compact, s)
		s = compact
	}
	*h = s
	return ev
}

// Engine is a single-threaded discrete-event simulator.
// The zero value is ready to use.
type Engine struct {
	now     Time
	pq      eventHeap
	seq     uint64
	curSeq  uint64
	stopped bool
	nEvents uint64
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.nEvents }

// LastSeq returns the sequence number assigned to the most recently
// scheduled event. Snapshot registries read it immediately after
// At/After to record where a pending event sits in the FIFO tie-break
// order; the engine is single-threaded, so the pairing is exact.
func (e *Engine) LastSeq() uint64 { return e.seq }

// CurSeq returns the sequence number of the event currently being
// executed (zero outside the run loop). Recorded events use it to
// unregister themselves when they fire.
func (e *Engine) CurSeq() uint64 { return e.curSeq }

// SnapState exports the engine's restorable counters: the clock, the
// sequence counter, and the processed-event count.
func (e *Engine) SnapState() (now Time, seq, nEvents uint64) {
	return e.now, e.seq, e.nEvents
}

// RestoreState overwrites the clock and counters from a snapshot.
// Callers re-register pending events afterwards via ScheduleExact.
func (e *Engine) RestoreState(now Time, seq, nEvents uint64) {
	e.now = now
	e.seq = seq
	e.nEvents = nEvents
}

// DropPending discards every queued event (slots zeroed so closures
// are released). Restore paths call it to clear construction-time
// events before re-registering the snapshot's pending set.
func (e *Engine) DropPending() {
	for i := range e.pq {
		e.pq[i] = event{}
	}
	e.pq = e.pq[:0]
}

// ScheduleExact re-registers a snapshotted event with its original
// (at, seq) pair, preserving FIFO tie-break order among same-time
// events. Unlike At it does not advance the sequence counter — the
// restored counter already accounts for every event that was ever
// scheduled. Past-time scheduling still panics.
func (e *Engine) ScheduleExact(at Time, seq uint64, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: restoring event at %v before now %v", at, e.now))
	}
	e.pq.push(event{at: at, seq: seq, fn: fn})
}

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it would silently reorder causality.
//
//outran:allocfree
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		//outran:allocok cold panic path; a past-time schedule is a programming error, not steady state
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.pq.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Stop halts the run loop after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// RunUntil executes events in timestamp order until the queue empties,
// Stop is called, or the next event is strictly after deadline. The
// clock is left at min(deadline, time of last executed event).
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for len(e.pq) > 0 && !e.stopped {
		if e.pq[0].at > deadline {
			break
		}
		ev := e.pq.pop()
		e.now = ev.at
		e.nEvents++
		e.curSeq = ev.seq
		ev.fn()
	}
	e.curSeq = 0
	if e.now < deadline {
		e.now = deadline
	}
}

// Run executes all pending events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for len(e.pq) > 0 && !e.stopped {
		ev := e.pq.pop()
		e.now = ev.at
		e.nEvents++
		e.curSeq = ev.seq
		ev.fn()
	}
	e.curSeq = 0
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.pq) }

// Ticker invokes fn every period, starting at the next multiple of
// period after the current time, until the engine stops or cancel is
// called. It returns the cancel function.
func (e *Engine) Ticker(period Time, fn func()) (cancel func()) {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		e.After(period, tick)
	}
	e.After(period, tick)
	return func() { stopped = true }
}

// Timer is a restartable one-shot timer bound to an engine, mirroring
// the protocol timers in RLC/PDCP (t-Reassembly, t-PollRetransmit, …).
//
// Semantics:
//   - Start (re)arms the timer; on a running timer it acts as a reset
//     — the earlier arm never fires. There is no separate Reset.
//   - Stop is always safe: on a running timer it cancels the pending
//     fire; on a never-started, already-stopped, or already-expired
//     timer it is a no-op.
//   - The callback runs at most once per Start and never after Stop;
//     a Start(0) fires at the current time, after the running event.
//
// Cancellation is generation-based (no event-queue surgery), so a
// stopped timer's stale queue entry simply evaporates when it pops.
type Timer struct {
	e       *Engine
	fn      func()
	gen     uint64 // invalidates callbacks from older arms
	running bool
	expires Time
	armSeq  uint64 // event seq of the live arm (snapshot/restore)
}

// NewTimer returns a stopped timer that runs fn on expiry.
func NewTimer(e *Engine, fn func()) *Timer {
	return &Timer{e: e, fn: fn}
}

// Start (re)arms the timer to fire after d. A running timer is restarted.
func (t *Timer) Start(d Time) {
	t.gen++
	gen := t.gen
	t.running = true
	t.expires = t.e.Now() + d
	t.e.After(d, func() {
		if t.gen != gen || !t.running {
			return
		}
		t.running = false
		t.fn()
	})
	t.armSeq = t.e.LastSeq()
}

// SnapArm exports the live arm: whether the timer is running, its
// absolute expiry, and the event seq of the pending fire. Stale arms
// from earlier Start/Stop cycles are gen-guarded no-ops and need not
// be snapshotted.
func (t *Timer) SnapArm() (running bool, expires Time, seq uint64) {
	return t.running, t.expires, t.armSeq
}

// RestoreArm re-registers a snapshotted arm with its exact original
// (expires, seq) so same-time tie-breaks replay identically. Restoring
// a stopped timer is a no-op when running is false.
func (t *Timer) RestoreArm(running bool, expires Time, seq uint64) {
	t.gen++
	t.running = running
	t.expires = expires
	t.armSeq = seq
	if !running {
		return
	}
	gen := t.gen
	t.e.ScheduleExact(expires, seq, func() {
		if t.gen != gen || !t.running {
			return
		}
		t.running = false
		t.fn()
	})
}

// Stop cancels the timer if running. Stopping a never-started,
// already-stopped, or already-expired timer is a safe no-op, so
// teardown paths may call it unconditionally.
func (t *Timer) Stop() {
	t.gen++
	t.running = false
}

// Running reports whether the timer is armed.
func (t *Timer) Running() bool { return t.running }

// Expires returns the absolute expiry time of the last arm.
func (t *Timer) Expires() Time { return t.expires }
