package sim

// Periodic is a snapshot-aware replacement for Engine.Ticker: it
// invokes fn every period with identical scheduling order (fn runs,
// then the next tick is armed, so events scheduled inside fn take
// earlier sequence numbers than the re-arm — exactly as the closure
// ticker behaved), but it additionally tracks the (at, seq) of the
// pending tick so a checkpoint can re-register it bit-exactly.
type Periodic struct {
	e       *Engine
	period  Time
	fn      func()
	tickFn  func() // bound once; re-arming reuses it (no per-tick alloc)
	stopped bool
	nextAt  Time
	seq     uint64
}

// NewPeriodic schedules fn to run every period, starting one period
// from now, and returns the handle. Period must be positive.
func NewPeriodic(e *Engine, period Time, fn func()) *Periodic {
	if period <= 0 {
		panic("sim: non-positive periodic period")
	}
	p := &Periodic{e: e, period: period, fn: fn}
	p.tickFn = p.tick
	p.arm()
	return p
}

func (p *Periodic) arm() {
	p.e.After(p.period, p.tickFn)
	p.nextAt = p.e.Now() + p.period
	p.seq = p.e.LastSeq()
}

func (p *Periodic) tick() {
	if p.stopped {
		return
	}
	p.fn()
	p.arm()
}

// Stop cancels future ticks; the already-queued tick evaporates as a
// no-op when it pops.
func (p *Periodic) Stop() { p.stopped = true }

// Snap exports the pending tick: stopped flag, absolute fire time,
// and event seq.
func (p *Periodic) Snap() (stopped bool, nextAt Time, seq uint64) {
	return p.stopped, p.nextAt, p.seq
}

// RestoreArm re-registers the pending tick with its exact original
// (at, seq). For a stopped periodic it only restores the flag.
func (p *Periodic) RestoreArm(stopped bool, nextAt Time, seq uint64) {
	p.stopped = stopped
	p.nextAt = nextAt
	p.seq = seq
	if stopped {
		return
	}
	p.e.ScheduleExact(nextAt, seq, p.tickFn)
}
