package sim

import "testing"

// BenchmarkEventThroughput measures raw engine throughput: the
// simulator processes hundreds of thousands of events per simulated
// second under load, so this is the floor of everything else.
func BenchmarkEventThroughput(b *testing.B) {
	var e Engine
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%1000), func() {})
		if e.Pending() > 1024 {
			e.Run()
		}
	}
	e.Run()
}

func BenchmarkTimerRestart(b *testing.B) {
	var e Engine
	tm := NewTimer(&e, func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Start(10)
		if e.Pending() > 1024 {
			tm.Stop()
			e.Run()
		}
	}
}
