// Package cn models the pieces of the LTE/5G core network the
// experiments touch: the 3GPP QoS class table (QCI / 5QI), the bearer
// a flow is mapped onto (Table 1 of the paper: everything but VoIP and
// IMS rides the default best-effort bearer), and the wired path
// between the P-GW and the application server.
package cn

import (
	"fmt"

	"outran/internal/sim"
)

// TrafficClass is one of the four generic 3GPP traffic classes.
type TrafficClass int

// 3GPP traffic classes (TS 23.107).
const (
	Conversational TrafficClass = iota
	Streaming
	Interactive
	Background
)

func (c TrafficClass) String() string {
	switch c {
	case Conversational:
		return "Conversational"
	case Streaming:
		return "Streaming"
	case Interactive:
		return "Interactive"
	case Background:
		return "Background"
	}
	return "Unknown"
}

// QCI is an LTE QoS Class Identifier (equal to the 5G QI for the
// classes the paper measures; Table 1 notes 5G SA showed the same
// values).
type QCI int

// QoSProfile describes one row of the QCI table.
type QoSProfile struct {
	QCI            QCI
	GBR            bool
	Priority       int
	DelayBudget    sim.Time
	LossRate       float64
	GuaranteedKbps int // 0 for non-GBR
	Service        string
}

// qciTable holds the profiles relevant to the paper (TS 23.203).
var qciTable = map[QCI]QoSProfile{
	1: {QCI: 1, GBR: true, Priority: 2, DelayBudget: 100 * sim.Millisecond, LossRate: 1e-2,
		GuaranteedKbps: 14, Service: "Guaranteed Bitrate (GBR)=14 kbps"},
	5: {QCI: 5, GBR: false, Priority: 1, DelayBudget: 100 * sim.Millisecond, LossRate: 1e-6,
		Service: "High priority, Best-effort"},
	6: {QCI: 6, GBR: false, Priority: 6, DelayBudget: 300 * sim.Millisecond, LossRate: 1e-6,
		Service: "Low priority, Best-effort"},
	9: {QCI: 9, GBR: false, Priority: 9, DelayBudget: 300 * sim.Millisecond, LossRate: 1e-6,
		Service: "Default bearer, Best-effort"},
}

// Profile returns the profile for a QCI.
func Profile(q QCI) (QoSProfile, error) {
	p, ok := qciTable[q]
	if !ok {
		return QoSProfile{}, fmt.Errorf("cn: unknown QCI %d", q)
	}
	return p, nil
}

// Bearer is a logical channel between UE and P-GW with one QoS
// profile. LTE QoS is enforced at bearer granularity.
type Bearer struct {
	ID        int
	Dedicated bool
	Profile   QoSProfile
}

// AppBinding is one row of Table 1: an application category, its
// traffic class, and the bearer the commercial network actually
// assigns it.
type AppBinding struct {
	Application string
	Class       TrafficClass
	Bearer      Bearer
}

// Table1 reproduces the paper's Table 1: the QoS profiling observed on
// a commercial-grade 5G NSA testbed. Everything except VoIP and IMS
// signalling shares the default best-effort bearer (QCI 6) — the
// motivation for OutRAN.
func Table1() []AppBinding {
	mustProfile := func(q QCI) QoSProfile {
		p, err := Profile(q)
		if err != nil {
			panic(err)
		}
		return p
	}
	return []AppBinding{
		{Application: "VoIP (i.e., VoLTE)", Class: Conversational,
			Bearer: Bearer{ID: 1, Dedicated: true, Profile: mustProfile(1)}},
		{Application: "IMS signaling", Class: Interactive,
			Bearer: Bearer{ID: 5, Dedicated: false, Profile: mustProfile(5)}},
		{Application: "Web browsing, Social networking", Class: Interactive,
			Bearer: Bearer{ID: 6, Dedicated: false, Profile: mustProfile(6)}},
		{Application: "TCP-based video, File transfer", Class: Background,
			Bearer: Bearer{ID: 6, Dedicated: false, Profile: mustProfile(6)}},
	}
}

// ClassifyApp maps an application name to its Table 1 binding,
// defaulting to the best-effort bearer — exactly the behaviour the
// paper measured with XCAL: without sophisticated packet detection
// rules, everything internet-based lands on QCI 6.
func ClassifyApp(app string) AppBinding {
	switch app {
	case "voip", "volte":
		return Table1()[0]
	case "ims":
		return Table1()[1]
	case "web", "chrome", "instagram", "social":
		return Table1()[2]
	default:
		return Table1()[3]
	}
}

// PathConfig describes the wired path between the xNodeB and the
// application server.
type PathConfig struct {
	// WiredDelay is the one-way P-GW <-> server propagation delay
	// (10 ms in the LTE simulations; 5 ms MEC / 20 ms remote in Fig 17).
	WiredDelay sim.Time
	// UplinkDelay is the UE -> server ACK path delay (air + core).
	UplinkDelay sim.Time
}

// DefaultPath is the paper's single-cell simulation path: 10 ms wired
// delay and a comparable uplink return path.
func DefaultPath() PathConfig {
	return PathConfig{
		WiredDelay:  10 * sim.Millisecond,
		UplinkDelay: 14 * sim.Millisecond,
	}
}
