package cn

import (
	"testing"

	"outran/internal/sim"
)

func TestProfileLookup(t *testing.T) {
	p, err := Profile(6)
	if err != nil {
		t.Fatal(err)
	}
	if p.GBR || p.Priority != 6 {
		t.Fatalf("QCI 6 profile %+v", p)
	}
	if _, err := Profile(42); err == nil {
		t.Fatal("unknown QCI accepted")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("Table 1 has %d rows", len(rows))
	}
	// Row 1: VoIP on a dedicated GBR bearer with QCI 1 at 14 kbps.
	voip := rows[0]
	if !voip.Bearer.Dedicated || !voip.Bearer.Profile.GBR || voip.Bearer.Profile.QCI != 1 ||
		voip.Bearer.Profile.GuaranteedKbps != 14 || voip.Class != Conversational {
		t.Fatalf("VoIP row wrong: %+v", voip)
	}
	// Rows 3 and 4: the paper's key observation — web browsing
	// (Interactive) and file transfer (Background) share the SAME
	// default best-effort bearer, QCI 6.
	web, bulk := rows[2], rows[3]
	if web.Class != Interactive || bulk.Class != Background {
		t.Fatal("traffic classes wrong")
	}
	if web.Bearer.Profile.QCI != 6 || bulk.Bearer.Profile.QCI != 6 {
		t.Fatal("web and bulk must share QCI 6")
	}
	if web.Bearer.Dedicated || bulk.Bearer.Dedicated {
		t.Fatal("default bearers must not be dedicated")
	}
	if web.Bearer.Profile.GBR || bulk.Bearer.Profile.GBR {
		t.Fatal("best-effort bearers must be non-GBR")
	}
}

func TestClassifyApp(t *testing.T) {
	if ClassifyApp("volte").Bearer.Profile.QCI != 1 {
		t.Fatal("VoLTE not on QCI 1")
	}
	if ClassifyApp("ims").Bearer.Profile.QCI != 5 {
		t.Fatal("IMS not on QCI 5")
	}
	// The paper's point: everything else — including latency-sensitive
	// browsing — lands on the same default QCI 6 as bulk transfer.
	if ClassifyApp("chrome").Bearer.Profile.QCI != 6 {
		t.Fatal("chrome not on default bearer")
	}
	if ClassifyApp("ftp-client").Bearer.Profile.QCI != 6 {
		t.Fatal("unknown app not on default bearer")
	}
	if ClassifyApp("chrome").Bearer.Profile.QCI != ClassifyApp("bulk-download").Bearer.Profile.QCI {
		t.Fatal("interactive and background must be same citizens (the motivation)")
	}
}

func TestTrafficClassStrings(t *testing.T) {
	for c, want := range map[TrafficClass]string{
		Conversational: "Conversational", Streaming: "Streaming",
		Interactive: "Interactive", Background: "Background",
		TrafficClass(99): "Unknown",
	} {
		if c.String() != want {
			t.Errorf("%d -> %q", c, c.String())
		}
	}
}

func TestDefaultPath(t *testing.T) {
	p := DefaultPath()
	if p.WiredDelay != 10*sim.Millisecond {
		t.Fatalf("wired delay %v, want the paper's 10 ms", p.WiredDelay)
	}
	if p.UplinkDelay <= 0 {
		t.Fatal("no uplink delay")
	}
}
