// Package rlc implements the LTE/5G Radio Link Control layer of the
// xNodeB user plane: per-UE downlink transmission buffers (FIFO or
// OutRAN's per-UE MLFQ), segmentation & concatenation into RLC PDUs,
// Unacknowledged Mode with a reassembly window and t-Reassembly
// discard, and Acknowledged Mode with the 3GPP priority order of
// control / retransmission / transmission queues, polling and status
// reporting. It is the layer OutRAN's intra-user flow scheduler
// (§4.2) lives in.
package rlc

import (
	"outran/internal/ip"
	"outran/internal/sim"
)

// SNUnassigned marks an SDU whose PDCP SN has not been assigned yet
// (OutRAN's delayed SN numbering, §4.4).
const SNUnassigned = ^uint32(0)

// SDU is one PDCP PDU queued for downlink transmission. Size includes
// the IP headers; the 40 header bytes are carried (and ciphered) for
// real, the payload is accounted by size only.
type SDU struct {
	ID       uint64 // unique per cell, for reassembly bookkeeping
	Size     int    // total bytes
	Priority int    // MLFQ priority, 0 = highest; 0 in FIFO mode
	Arrival  sim.Time

	// Flow bookkeeping (BSR, oracle baselines).
	Flow        ip.FiveTuple
	FlowSize    int64 // oracle total flow size; <0 unknown
	QoS         bool  // dedicated low-latency QoS (PSS/CQA baselines)
	DelayBudget sim.Time

	// PDCP state.
	PDCPSN uint32 // SNUnassigned until numbered
	Header []byte // IP+TCP header bytes, ciphered once SN assigned

	// Transport bookkeeping for delivery at the UE.
	Packet ip.Packet

	sentOffset int  // bytes already scheduled into PDUs
	evicted    bool // pushed out of a full buffer before transmission
	// reportPrio is the priority the SDU is accounted under in the
	// BSR. Segment promotion (§4.4) moves an SDU's remainder to the
	// head of the top queue for wire order but must not raise the
	// user's priority as seen by the inter-user scheduler (eq. 2 ranks
	// users by their flows' MLFQ priority, and a promoted long-flow
	// segment is still long-flow traffic).
	reportPrio int
}

// Remaining returns the bytes of the SDU not yet scheduled.
func (s *SDU) Remaining() int { return s.Size - s.sentOffset }

// PartiallySent reports whether some but not all bytes are scheduled.
func (s *SDU) PartiallySent() bool { return s.sentOffset > 0 && s.sentOffset < s.Size }

// deque is a FIFO of SDUs with O(1) amortised push/pop and occasional
// compaction.
type deque struct {
	items []*SDU
	head  int
}

func (d *deque) len() int { return len(d.items) - d.head }

func (d *deque) pushBack(s *SDU) { d.items = append(d.items, s) }

func (d *deque) pushFront(s *SDU) {
	if d.head > 0 {
		d.head--
		d.items[d.head] = s
		return
	}
	d.items = append([]*SDU{s}, d.items...)
}

func (d *deque) front() *SDU {
	if d.len() == 0 {
		return nil
	}
	return d.items[d.head]
}

func (d *deque) back() *SDU {
	if d.len() == 0 {
		return nil
	}
	return d.items[len(d.items)-1]
}

func (d *deque) popBack() *SDU {
	if d.len() == 0 {
		return nil
	}
	s := d.items[len(d.items)-1]
	d.items[len(d.items)-1] = nil
	d.items = d.items[:len(d.items)-1]
	return s
}

func (d *deque) popFront() *SDU {
	if d.len() == 0 {
		return nil
	}
	s := d.items[d.head]
	d.items[d.head] = nil
	d.head++
	if d.head > 64 && d.head*2 > len(d.items) {
		// Compact in place: slide the live tail down and nil the vacated
		// slots (so popped SDUs stay collectable) instead of allocating a
		// fresh backing array. Amortized O(1): each slide moves at most
		// half the slice after at least 64 pops.
		n := copy(d.items, d.items[d.head:])
		for i := n; i < len(d.items); i++ {
			d.items[i] = nil
		}
		d.items = d.items[:n]
		d.head = 0
	}
	return s
}
