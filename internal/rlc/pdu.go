package rlc

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Segment is a contiguous byte range of one SDU carried in a PDU.
type Segment struct {
	SDU    *SDU
	Offset int
	Len    int
	Last   bool // true when this segment completes the SDU
}

// PDU is one RLC protocol data unit: the unit handed to the MAC and
// transmitted as (part of) a transport block.
type PDU struct {
	SN       uint32
	Segments []Segment
	Bytes    int  // wire size including RLC headers
	Poll     bool // AM: status report requested
	Retx     bool // AM: this is a retransmission
}

// RLC header cost model: fixed header plus a length indicator per
// additional segment (matching UM with 10-bit SN).
const (
	pduFixedHeader   = 2
	perExtraSegment  = 2
	minUsefulPayload = 4
)

// MinGrant is the smallest MAC grant that can carry any payload.
const MinGrant = pduFixedHeader + minUsefulPayload

// wireHeader is the on-the-wire UM PDU header used by the
// encode/decode round-trip (tests exercise it; the simulator data path
// carries the struct). Layout:
//
//	byte 0: FI (2 bits) | E (1) | SN high 5 bits
//	byte 1: SN low 8 bits  (13-bit SN variant)
//	then per segment: 2-byte length
type wireHeader struct {
	FirstIsContinuation bool // first segment continues an SDU
	LastIsPartial       bool // last segment does not end its SDU
	SN                  uint32
	SegLens             []int
}

const maxWireSN = 1<<13 - 1

// MaxSegmentLen is the largest SDU segment one PDU can carry: the wire
// header's length indicator is 16 bits, so longer segments are
// unrepresentable. buildPDU splits at this boundary and the encoders
// hard-fail on violation — a segment must never be silently truncated
// to its low 16 bits.
const MaxSegmentLen = 0xffff

var errBadPDU = errors.New("rlc: malformed PDU header")

func (h *wireHeader) encode() ([]byte, error) {
	if len(h.SegLens) == 0 {
		return nil, errors.New("rlc: PDU with no segments")
	}
	buf := make([]byte, 0, 2+2*len(h.SegLens))
	buf, err := appendWireHeader(buf, h.SN, h.FirstIsContinuation, h.LastIsPartial, len(h.SegLens),
		func(i int) int { return h.SegLens[i] })
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// appendWireHeader is the shared allocation-free encoder: it appends
// the header for nSeg segments (lengths via segLen) to dst and returns
// the extended slice. dst's backing array is reused when capacity
// allows; callers own dst before and after.
func appendWireHeader(dst []byte, sn uint32, firstCont, lastPartial bool, nSeg int, segLen func(int) int) ([]byte, error) {
	if sn > maxWireSN {
		//outran:allocok cold error path; the encode loop never runs after it
		return dst, fmt.Errorf("rlc: SN %d exceeds 13-bit field", sn)
	}
	var fi byte
	if firstCont {
		fi |= 0x2
	}
	if lastPartial {
		fi |= 0x1
	}
	//outran:allocok grows only when the caller-owned dst lacks capacity; steady-state callers reuse a sized buffer
	dst = append(dst, fi<<6|byte(sn>>8), byte(sn))
	for i := 0; i < nSeg; i++ {
		l := segLen(i)
		if l <= 0 || l > MaxSegmentLen {
			//outran:allocok cold error path; malformed segments abort the encode
			return dst, fmt.Errorf("rlc: segment length %d out of range", l)
		}
		//outran:allocok grows only when the caller-owned dst lacks capacity; steady-state callers reuse a sized buffer
		dst = append(dst, byte(l>>8), byte(l))
	}
	return dst, nil
}

func decodeWireHeader(buf []byte) (*wireHeader, error) {
	if len(buf) < 4 || len(buf)%2 != 0 {
		return nil, errBadPDU
	}
	h := &wireHeader{
		FirstIsContinuation: buf[0]&0x80 != 0,
		LastIsPartial:       buf[0]&0x40 != 0,
		SN:                  uint32(buf[0]&0x1f)<<8 | uint32(buf[1]),
	}
	for i := 2; i < len(buf); i += 2 {
		l := int(binary.BigEndian.Uint16(buf[i:]))
		if l == 0 {
			return nil, errBadPDU
		}
		h.SegLens = append(h.SegLens, l)
	}
	return h, nil
}

// AppendWireHeader serialises the PDU's header exactly as it would go
// on the air, appending to dst and returning the extended slice. It
// performs no allocation when dst has capacity for the header
// (2 + 2·segments bytes); pass p.AppendWireHeader(buf[:0]) to reuse a
// caller-owned buffer across PDUs. Segments longer than MaxSegmentLen
// are a hard error, never a truncation.
//
//outran:allocfree
func (p *PDU) AppendWireHeader(dst []byte) ([]byte, error) {
	if len(p.Segments) == 0 {
		return dst, errors.New("rlc: PDU with no segments")
	}
	return appendWireHeader(dst,
		p.SN%(maxWireSN+1),
		p.Segments[0].Offset > 0,
		!p.Segments[len(p.Segments)-1].Last,
		len(p.Segments),
		//outran:allocok non-escaping closure over p; the compiler keeps it off the heap (AllocsPerRun holds it to zero)
		func(i int) int { return p.Segments[i].Len })
}

// WireHeader is the allocating convenience form of AppendWireHeader;
// used by tests and by the overhead accounting checks.
func (p *PDU) WireHeader() ([]byte, error) {
	return p.AppendWireHeader(nil)
}

// PayloadBytes returns the SDU bytes carried (excluding headers).
func (p *PDU) PayloadBytes() int {
	n := 0
	for _, s := range p.Segments {
		n += s.Len
	}
	return n
}

// headerBytes returns the modelled header cost for nSegments.
func headerBytes(nSegments int) int {
	if nSegments <= 0 {
		return pduFixedHeader
	}
	return pduFixedHeader + perExtraSegment*(nSegments-1)
}
