package rlc

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Segment is a contiguous byte range of one SDU carried in a PDU.
type Segment struct {
	SDU    *SDU
	Offset int
	Len    int
	Last   bool // true when this segment completes the SDU
}

// PDU is one RLC protocol data unit: the unit handed to the MAC and
// transmitted as (part of) a transport block.
type PDU struct {
	SN       uint32
	Segments []Segment
	Bytes    int  // wire size including RLC headers
	Poll     bool // AM: status report requested
	Retx     bool // AM: this is a retransmission
}

// RLC header cost model: fixed header plus a length indicator per
// additional segment (matching UM with 10-bit SN).
const (
	pduFixedHeader   = 2
	perExtraSegment  = 2
	minUsefulPayload = 4
)

// MinGrant is the smallest MAC grant that can carry any payload.
const MinGrant = pduFixedHeader + minUsefulPayload

// wireHeader is the on-the-wire UM PDU header used by the
// encode/decode round-trip (tests exercise it; the simulator data path
// carries the struct). Layout:
//
//	byte 0: FI (2 bits) | E (1) | SN high 5 bits
//	byte 1: SN low 8 bits  (13-bit SN variant)
//	then per segment: 2-byte length
type wireHeader struct {
	FirstIsContinuation bool // first segment continues an SDU
	LastIsPartial       bool // last segment does not end its SDU
	SN                  uint32
	SegLens             []int
}

const maxWireSN = 1<<13 - 1

var errBadPDU = errors.New("rlc: malformed PDU header")

func (h *wireHeader) encode() ([]byte, error) {
	if h.SN > maxWireSN {
		return nil, fmt.Errorf("rlc: SN %d exceeds 13-bit field", h.SN)
	}
	if len(h.SegLens) == 0 {
		return nil, errors.New("rlc: PDU with no segments")
	}
	buf := make([]byte, 2+2*len(h.SegLens))
	var fi byte
	if h.FirstIsContinuation {
		fi |= 0x2
	}
	if h.LastIsPartial {
		fi |= 0x1
	}
	buf[0] = fi<<6 | byte(h.SN>>8)
	buf[1] = byte(h.SN)
	for i, l := range h.SegLens {
		if l <= 0 || l > 0xffff {
			return nil, fmt.Errorf("rlc: segment length %d out of range", l)
		}
		binary.BigEndian.PutUint16(buf[2+2*i:], uint16(l))
	}
	return buf, nil
}

func decodeWireHeader(buf []byte) (*wireHeader, error) {
	if len(buf) < 4 || len(buf)%2 != 0 {
		return nil, errBadPDU
	}
	h := &wireHeader{
		FirstIsContinuation: buf[0]&0x80 != 0,
		LastIsPartial:       buf[0]&0x40 != 0,
		SN:                  uint32(buf[0]&0x1f)<<8 | uint32(buf[1]),
	}
	for i := 2; i < len(buf); i += 2 {
		l := int(binary.BigEndian.Uint16(buf[i:]))
		if l == 0 {
			return nil, errBadPDU
		}
		h.SegLens = append(h.SegLens, l)
	}
	return h, nil
}

// WireHeader serialises the PDU's header exactly as it would go on the
// air; used by tests and by the overhead accounting checks.
func (p *PDU) WireHeader() ([]byte, error) {
	if len(p.Segments) == 0 {
		return nil, errors.New("rlc: PDU with no segments")
	}
	h := wireHeader{
		FirstIsContinuation: p.Segments[0].Offset > 0,
		LastIsPartial:       !p.Segments[len(p.Segments)-1].Last,
		SN:                  p.SN % (maxWireSN + 1),
	}
	for _, s := range p.Segments {
		h.SegLens = append(h.SegLens, s.Len)
	}
	return h.encode()
}

// PayloadBytes returns the SDU bytes carried (excluding headers).
func (p *PDU) PayloadBytes() int {
	n := 0
	for _, s := range p.Segments {
		n += s.Len
	}
	return n
}

// headerBytes returns the modelled header cost for nSegments.
func headerBytes(nSegments int) int {
	if nSegments <= 0 {
		return pduFixedHeader
	}
	return pduFixedHeader + perExtraSegment*(nSegments-1)
}
