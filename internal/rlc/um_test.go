package rlc

import (
	"testing"

	"outran/internal/sim"
)

func TestUMDeliveryInOrder(t *testing.T) {
	var eng sim.Engine
	var got []uint64
	rx := NewUMRx(&eng, func(s *SDU) { got = append(got, s.ID) })
	tx := NewUMTx(TxBufConfig{Queues: 1, LimitSDUs: 10})
	a, b := mkSDU(500, 0, 1), mkSDU(500, 0, 1)
	tx.Enqueue(a)
	tx.Enqueue(b)
	for {
		pdu := tx.Pull(400)
		if pdu == nil {
			break
		}
		rx.Receive(pdu)
	}
	eng.Run()
	if len(got) != 2 || got[0] != a.ID || got[1] != b.ID {
		t.Fatalf("delivered %v", got)
	}
	if rx.Delivered() != 2 || rx.Discarded() != 0 {
		t.Fatalf("delivered=%d discarded=%d", rx.Delivered(), rx.Discarded())
	}
}

func TestUMSNIncrements(t *testing.T) {
	tx := NewUMTx(TxBufConfig{Queues: 1, LimitSDUs: 10})
	tx.Enqueue(mkSDU(100, 0, 1))
	tx.Enqueue(mkSDU(100, 0, 1))
	p1 := tx.Pull(150)
	p2 := tx.Pull(150)
	if p1.SN+1 != p2.SN {
		t.Fatalf("SNs %d, %d", p1.SN, p2.SN)
	}
}

func TestUMSegmentedAcrossPDUs(t *testing.T) {
	var eng sim.Engine
	var got []uint64
	rx := NewUMRx(&eng, func(s *SDU) { got = append(got, s.ID) })
	tx := NewUMTx(TxBufConfig{Queues: 1, LimitSDUs: 10})
	s := mkSDU(3000, 0, 1)
	tx.Enqueue(s)
	for {
		pdu := tx.Pull(800)
		if pdu == nil {
			break
		}
		rx.Receive(pdu)
	}
	eng.Run()
	if len(got) != 1 || got[0] != s.ID {
		t.Fatalf("segmented SDU not reassembled: %v", got)
	}
}

func TestUMReassemblyTimeoutDiscards(t *testing.T) {
	var eng sim.Engine
	delivered := 0
	rx := NewUMRx(&eng, func(*SDU) { delivered++ })
	tx := NewUMTx(TxBufConfig{Queues: 1, LimitSDUs: 10})
	s := mkSDU(3000, 0, 1)
	tx.Enqueue(s)
	first := tx.Pull(800)
	rx.Receive(first)
	// The continuation never arrives within t-Reassembly.
	eng.RunUntil(DefaultTReassembly * 3)
	if delivered != 0 {
		t.Fatal("partial SDU delivered")
	}
	if rx.Discarded() != 1 {
		t.Fatalf("discarded=%d, want 1", rx.Discarded())
	}
	if rx.PendingPartials() != 0 {
		t.Fatal("partial retained after discard")
	}
}

func TestUMLateContinuationWithinWindowOK(t *testing.T) {
	var eng sim.Engine
	delivered := 0
	rx := NewUMRx(&eng, func(*SDU) { delivered++ })
	tx := NewUMTx(TxBufConfig{Queues: 1, LimitSDUs: 10})
	s := mkSDU(3000, 0, 1)
	tx.Enqueue(s)
	rx.Receive(tx.Pull(800))
	eng.At(DefaultTReassembly/2, func() {
		rx.Receive(tx.Pull(800))
	})
	eng.At(DefaultTReassembly, func() {
		rx.Receive(tx.Pull(4000))
	})
	eng.RunUntil(3 * DefaultTReassembly)
	if delivered != 1 {
		t.Fatalf("delivered=%d; continuation within window discarded", delivered)
	}
}

func TestUMLostPDUDiscardsOnlyItsSDUs(t *testing.T) {
	var eng sim.Engine
	var got []uint64
	rx := NewUMRx(&eng, func(s *SDU) { got = append(got, s.ID) })
	tx := NewUMTx(TxBufConfig{Queues: 1, LimitSDUs: 10})
	a, b, c := mkSDU(500, 0, 1), mkSDU(500, 0, 1), mkSDU(500, 0, 1)
	tx.Enqueue(a)
	tx.Enqueue(b)
	tx.Enqueue(c)
	// Grant of exactly one SDU + header so PDUs align with SDUs.
	p1 := tx.Pull(502)
	p2 := tx.Pull(502) // lost
	p3 := tx.Pull(502)
	_ = p2
	rx.Receive(p1)
	rx.Receive(p3)
	eng.Run()
	if len(got) != 2 || got[0] != a.ID || got[1] != c.ID {
		t.Fatalf("delivered %v, want a and c", got)
	}
}

func TestUMDropsCounter(t *testing.T) {
	tx := NewUMTx(TxBufConfig{Queues: 1, LimitSDUs: 1})
	tx.Enqueue(mkSDU(100, 0, 1))
	tx.Enqueue(mkSDU(100, 0, 1))
	if tx.Drops() != 1 {
		t.Fatalf("drops %d", tx.Drops())
	}
	if tx.QueuedSDUs() != 1 || tx.QueuedBytes() != 100 {
		t.Fatalf("queued %d/%d", tx.QueuedSDUs(), tx.QueuedBytes())
	}
}
