package rlc

import (
	"testing"

	"outran/internal/sim"
)

// BenchmarkEnqueuePull measures the steady-state RLC tx path: one SDU
// in, one PDU out, through the 4-queue MLFQ.
func BenchmarkEnqueuePullMLFQ(b *testing.B) {
	buf := NewUMTx(TxBufConfig{Queues: 4, LimitSDUs: 256})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := mkSDU(1400, i%4, uint16(i%16))
		if !buf.Enqueue(s) {
			b.Fatal("unexpected drop")
		}
		if buf.Pull(1500) == nil {
			b.Fatal("no PDU")
		}
	}
}

func BenchmarkEnqueuePullFIFO(b *testing.B) {
	buf := NewUMTx(TxBufConfig{Queues: 1, LimitSDUs: 256})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := mkSDU(1400, 0, uint16(i%16))
		if !buf.Enqueue(s) {
			b.Fatal("unexpected drop")
		}
		if buf.Pull(1500) == nil {
			b.Fatal("no PDU")
		}
	}
}

// BenchmarkStatus measures the BSR generation cost (runs every TTI for
// every UE).
func BenchmarkStatus(b *testing.B) {
	buf := NewUMTx(TxBufConfig{Queues: 4, LimitSDUs: 256})
	for i := 0; i < 100; i++ {
		s := mkSDU(1400, i%4, uint16(i%8))
		s.FlowSize = int64(1400 * (i + 1))
		buf.Enqueue(s)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Status(sim.Time(i))
	}
}

func BenchmarkUMReceive(b *testing.B) {
	var eng sim.Engine
	rx := NewUMRx(&eng, func(*SDU) {})
	tx := NewUMTx(TxBufConfig{Queues: 1, LimitSDUs: 1 << 20})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.Enqueue(mkSDU(1400, 0, 1))
		pdu := tx.Pull(1500)
		rx.Receive(pdu)
	}
}
