package rlc

import (
	"sort"

	"outran/internal/mac"
	"outran/internal/sim"
)

// DefaultTReassembly is the receiver-side reassembly window: a
// partially received SDU whose remaining segments do not arrive within
// this window is discarded (3GPP t-Reassembly).
const DefaultTReassembly = 40 * sim.Millisecond

// UMTx is the transmitting RLC Unacknowledged Mode entity of one UE's
// downlink bearer.
type UMTx struct {
	buf *txBuf
	sn  uint32
	// AssignSN is invoked when an SDU with an unassigned PDCP SN is
	// first scheduled (OutRAN's delayed SN numbering & ciphering).
	AssignSN func(*SDU)
}

// NewUMTx builds a UM transmitter with the given buffer configuration.
func NewUMTx(cfg TxBufConfig) *UMTx {
	return &UMTx{buf: newTxBuf(cfg)}
}

// Enqueue queues an SDU for transmission; false means tail-dropped.
func (t *UMTx) Enqueue(s *SDU) bool { return t.buf.enqueue(s) }

// Pull builds the next PDU for a MAC grant of the given size, or nil.
func (t *UMTx) Pull(grant int) *PDU {
	pdu := t.buf.buildPDU(grant, t.sn, t.AssignSN)
	if pdu != nil {
		t.sn++
	}
	return pdu
}

// Status reports the buffer state for the MAC BSR. The returned
// PerPriority slice aliases entity-owned scratch and is valid only
// until the next Status call; copy to retain.
//
//outran:allocfree
//outran:scratch
func (t *UMTx) Status(now sim.Time) mac.BufferStatus { return t.buf.status(now) }

// QueuedSDUs returns the buffered SDU count.
func (t *UMTx) QueuedSDUs() int { return t.buf.count }

// QueuedBytes returns the buffered byte count.
func (t *UMTx) QueuedBytes() int { return t.buf.bytes }

// Drops returns the number of dropped arrivals.
func (t *UMTx) Drops() int { return t.buf.dropCount() }

// Evictions returns the number of queued SDUs pushed out by
// higher-priority arrivals.
func (t *UMTx) Evictions() int { return t.buf.evictionCount() }

// partialSDU tracks reassembly progress of one SDU at the receiver.
type partialSDU struct {
	sdu      *SDU
	received int
	lastSeen sim.Time
}

// sortedPartialIDs returns the reassembly table's SDU ids in ascending
// order — the deterministic walk order for drains whose effects are
// order-sensitive (shared by the UM and AM receivers).
func sortedPartialIDs(partials map[uint64]*partialSDU) []uint64 {
	ids := make([]uint64, 0, len(partials))
	for id := range partials {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// maxHeldPDUs bounds the reordering buffer (half the 13-bit UM SN
// window would be the spec bound; HARQ reordering needs only a few).
const maxHeldPDUs = 256

// UMRx is the receiving UM entity at the UE. PDUs are processed in SN
// order within a reordering window (hiding HARQ retransmission
// reordering from the transport, as real RLC does); complete SDUs are
// handed to Deliver in order. PDUs missing beyond t-Reassembly are
// skipped, and SDUs whose segments stall beyond t-Reassembly are
// discarded — the failure mode §4.4's segment promotion avoids.
type UMRx struct {
	eng         *sim.Engine
	TReassembly sim.Time
	Deliver     func(*SDU)

	expected uint32          // next SN to process (VR(UR))
	held     map[uint32]*PDU // received, waiting for in-order processing
	partials map[uint64]*partialSDU

	delivered uint64
	discarded uint64
	skipped   uint64 // PDUs given up on (gap expiry)
	gapTimer  *sim.Timer
	sduTimer  *sim.Timer
}

// NewUMRx builds a UM receiver.
func NewUMRx(eng *sim.Engine, deliver func(*SDU)) *UMRx {
	rx := &UMRx{
		eng:         eng,
		TReassembly: DefaultTReassembly,
		Deliver:     deliver,
		held:        make(map[uint32]*PDU),
		partials:    make(map[uint64]*partialSDU),
	}
	rx.gapTimer = sim.NewTimer(eng, rx.onGapExpiry)
	rx.sduTimer = sim.NewTimer(eng, rx.onSDUExpiry)
	return rx
}

// Close cancels the receiver's timers (teardown; a torn-down entity's
// gap timer would otherwise keep re-arming on the engine forever).
func (r *UMRx) Close() {
	r.gapTimer.Stop()
	r.sduTimer.Stop()
}

// Receive accepts one PDU that survived the air interface.
func (r *UMRx) Receive(pdu *PDU) {
	if pdu.SN < r.expected {
		return // stale duplicate
	}
	if _, dup := r.held[pdu.SN]; dup {
		return
	}
	r.held[pdu.SN] = pdu
	r.drain()
	if len(r.held) > 0 {
		// A gap blocks in-order processing: start t-Reassembly, or
		// force past the gap if the window overflows.
		if len(r.held) > maxHeldPDUs {
			r.skipGap()
		} else if !r.gapTimer.Running() {
			r.gapTimer.Start(r.TReassembly)
		}
	} else {
		r.gapTimer.Stop()
	}
}

// drain processes consecutively available PDUs in SN order.
func (r *UMRx) drain() {
	for {
		pdu, ok := r.held[r.expected]
		if !ok {
			return
		}
		delete(r.held, r.expected)
		r.expected++
		r.processPDU(pdu)
	}
}

// skipGap advances expected to the lowest held SN, abandoning the
// missing PDUs.
func (r *UMRx) skipGap() {
	lowest := uint32(0)
	first := true
	//outran:orderfree min fold over the keys; commutative, order cannot matter
	for sn := range r.held {
		if first || sn < lowest {
			lowest = sn
			first = false
		}
	}
	if first {
		return
	}
	r.skipped += uint64(lowest - r.expected)
	r.expected = lowest
	r.drain()
}

func (r *UMRx) onGapExpiry() {
	if len(r.held) > 0 {
		r.skipGap()
	}
	if len(r.held) > 0 {
		r.gapTimer.Start(r.TReassembly)
	}
}

// processPDU accounts one in-order PDU's segments and delivers
// completed SDUs.
func (r *UMRx) processPDU(pdu *PDU) {
	now := r.eng.Now()
	for _, seg := range pdu.Segments {
		p := r.partials[seg.SDU.ID]
		if p == nil {
			p = &partialSDU{sdu: seg.SDU}
			r.partials[seg.SDU.ID] = p
		}
		p.received += seg.Len
		p.lastSeen = now
		if p.received >= p.sdu.Size {
			delete(r.partials, seg.SDU.ID)
			r.delivered++
			if r.Deliver != nil {
				r.Deliver(p.sdu)
			}
		}
	}
	if len(r.partials) > 0 && !r.sduTimer.Running() {
		r.sduTimer.Start(r.TReassembly)
	}
}

// onSDUExpiry discards SDUs whose remaining segments have not arrived
// within the reassembly window. The reassembly drain walks in SDU-id
// order so the discard sequence is stable across same-seed runs.
func (r *UMRx) onSDUExpiry() {
	now := r.eng.Now()
	for _, id := range sortedPartialIDs(r.partials) {
		if now-r.partials[id].lastSeen >= r.TReassembly {
			delete(r.partials, id)
			r.discarded++
		}
	}
	if len(r.partials) > 0 {
		r.sduTimer.Start(r.TReassembly)
	}
}

// Delivered returns the count of SDUs delivered upward.
func (r *UMRx) Delivered() uint64 { return r.delivered }

// Discarded returns the count of SDUs dropped by reassembly expiry.
func (r *UMRx) Discarded() uint64 { return r.discarded }

// SkippedPDUs returns the count of PDUs abandoned at gap expiry.
func (r *UMRx) SkippedPDUs() uint64 { return r.skipped }

// PendingPartials returns the number of incomplete SDUs being held.
func (r *UMRx) PendingPartials() int { return len(r.partials) }
