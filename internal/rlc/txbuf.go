package rlc

import (
	"outran/internal/ip"
	"outran/internal/mac"
	"outran/internal/sim"
)

// TxBufConfig configures a downlink transmission buffer.
type TxBufConfig struct {
	// Queues is the number of priority queues: 1 gives the legacy
	// FIFO, K>1 gives OutRAN's per-UE MLFQ.
	Queues int
	// LimitSDUs caps the buffered SDU count (srsENB default: 128).
	// Arrivals beyond the cap are dropped (tail drop).
	LimitSDUs int
	// SegmentPromotion moves a partially sent SDU's remainder to the
	// head of the top priority queue (§4.4).
	SegmentPromotion bool
}

// DefaultLimitSDUs is the srsENB default UM buffer capacity.
const DefaultLimitSDUs = 128

type flowAgg struct {
	queuedSDUs  int
	queuedBytes int
	dequeued    int64
	flowSize    int64
}

// txBuf is the shared tx-queue machinery of the UM and AM entities:
// priority queues, drop accounting, per-flow aggregates for the BSR
// and the oracle baselines, and PDU building with segmentation.
type txBuf struct {
	cfg       TxBufConfig
	queues    []deque
	count     int
	bytes     int
	prioBytes []int
	flows     map[ip.FiveTuple]*flowAgg
	drops     int
	evictions int

	qosBytes int
	qosList  deque // QoS SDUs in arrival order (HOL tracking)

	// prioScratch backs BufferStatus.PerPriority across status calls so
	// the per-TTI BSR path does not allocate; see the status ownership
	// note.
	prioScratch []int
}

func newTxBuf(cfg TxBufConfig) *txBuf {
	if cfg.Queues < 1 {
		cfg.Queues = 1
	}
	if cfg.LimitSDUs <= 0 {
		cfg.LimitSDUs = DefaultLimitSDUs
	}
	return &txBuf{
		cfg:       cfg,
		queues:    make([]deque, cfg.Queues),
		prioBytes: make([]int, cfg.Queues),
		flows:     make(map[ip.FiveTuple]*flowAgg),
	}
}

// enqueue adds an SDU, returning false when dropped. A full buffer
// prefers pushing out the newest SDU of a lower-priority queue over
// dropping a higher-priority arrival: with MLFQ, plain tail drop
// inverts priorities — the buffer fills with demoted long-flow bytes
// and the short flows the scheduler exists to protect get dropped at
// the door.
func (b *txBuf) enqueue(s *SDU) bool {
	if b.count >= b.cfg.LimitSDUs {
		if !b.pushOut(s.Priority) {
			b.drops++
			return false
		}
	}
	q := s.Priority
	if q < 0 {
		q = 0
	}
	if q >= len(b.queues) {
		q = len(b.queues) - 1
	}
	s.Priority = q
	s.reportPrio = q
	b.queues[q].pushBack(s)
	b.count++
	b.bytes += s.Size
	b.prioBytes[q] += s.Size
	fa := b.flows[s.Flow]
	if fa == nil {
		fa = &flowAgg{flowSize: s.FlowSize}
		b.flows[s.Flow] = fa
	}
	fa.queuedSDUs++
	fa.queuedBytes += s.Size
	if s.FlowSize >= 0 {
		fa.flowSize = s.FlowSize
	}
	if s.QoS {
		b.qosBytes += s.Size
		b.qosList.pushBack(s)
	}
	return true
}

// pushOut evicts the newest SDU from the lowest-priority non-empty
// queue strictly below arrivingPrio (higher index = lower priority).
// In-service (partially sent) SDUs are never evicted. Returns whether
// a slot was freed.
func (b *txBuf) pushOut(arrivingPrio int) bool {
	for q := len(b.queues) - 1; q > arrivingPrio; q-- {
		victim := b.queues[q].back()
		if victim == nil || victim.PartiallySent() {
			continue
		}
		b.queues[q].popBack()
		rem := victim.Remaining()
		b.count--
		b.bytes -= rem
		b.prioBytes[victim.reportPrio] -= rem
		if victim.QoS {
			b.qosBytes -= rem
		}
		if fa := b.flows[victim.Flow]; fa != nil {
			fa.queuedSDUs--
			fa.queuedBytes -= rem
		}
		victim.evicted = true
		b.evictions++
		return true
	}
	return false
}

// headQueue returns the index of the highest-priority non-empty queue
// or -1.
func (b *txBuf) headQueue() int {
	for i := range b.queues {
		if b.queues[i].len() > 0 {
			return i
		}
	}
	return -1
}

func (b *txBuf) empty() bool { return b.count == 0 }

// buildPDU pulls up to grant bytes into one PDU, in strict priority
// order, segmenting the last SDU if needed. assignSN is invoked for
// SDUs whose PDCP SN is still unassigned the moment their first byte
// is scheduled (delayed numbering). Returns nil when the grant is too
// small or the buffer empty.
func (b *txBuf) buildPDU(grant int, sn uint32, assignSN func(*SDU)) *PDU {
	if grant < MinGrant || b.empty() {
		return nil
	}
	pdu := &PDU{SN: sn}
	budget := grant - pduFixedHeader
	for budget >= 1 {
		qi := b.headQueue()
		if qi < 0 {
			break
		}
		segHeader := 0
		if len(pdu.Segments) > 0 {
			segHeader = perExtraSegment
		}
		avail := budget - segHeader
		if avail < 1 {
			break
		}
		s := b.queues[qi].front()
		need := s.Remaining()
		take := need
		if take > avail {
			take = avail
		}
		if take > MaxSegmentLen {
			// The wire header's 16-bit length indicator cannot carry a
			// longer segment; split here and continue in the next PDU
			// rather than truncate on the air.
			take = MaxSegmentLen
		}
		if take < minUsefulPayload && take < need {
			// Don't open a segment for a sliver.
			break
		}
		if s.PDCPSN == SNUnassigned && assignSN != nil {
			assignSN(s)
		}
		seg := Segment{SDU: s, Offset: s.sentOffset, Len: take, Last: take == need}
		pdu.Segments = append(pdu.Segments, seg)
		s.sentOffset += take
		budget -= take + segHeader
		b.bytes -= take
		b.prioBytes[s.reportPrio] -= take
		if s.QoS {
			b.qosBytes -= take
		}
		if fa := b.flows[s.Flow]; fa != nil {
			fa.queuedBytes -= take
			fa.dequeued += int64(take)
		}
		if seg.Last {
			b.queues[qi].popFront()
			b.count--
			b.finishSDUFlow(s)
		} else {
			// Partially sent: the grant is exhausted. Optionally
			// promote the remainder so it is continued first. The
			// promotion changes only the wire order; reportPrio keeps
			// the BSR accounting under the original priority.
			if b.cfg.SegmentPromotion && qi != 0 {
				b.queues[qi].popFront()
				b.queues[0].pushFront(s)
				s.Priority = 0
			}
			break
		}
	}
	if len(pdu.Segments) == 0 {
		return nil
	}
	pdu.Bytes = headerBytes(len(pdu.Segments)) + pdu.PayloadBytes()
	return pdu
}

func (b *txBuf) finishSDUFlow(s *SDU) {
	fa := b.flows[s.Flow]
	if fa == nil {
		return
	}
	fa.queuedSDUs--
	if fa.queuedSDUs <= 0 && fa.queuedBytes <= 0 {
		// Keep dequeued totals for oracle remaining only while the
		// flow has queued data; an empty flow entry can go.
		if fa.flowSize >= 0 && fa.dequeued >= fa.flowSize {
			delete(b.flows, s.Flow)
		}
	}
}

// status summarises the buffer for the MAC BSR.
//
// Ownership: the returned status's PerPriority slice aliases scratch
// owned by the buffer and is valid only until the next status call —
// exactly the per-TTI lifetime of the BSR it models. Callers that keep
// it longer must copy.
//
//outran:allocfree
//outran:scratch
func (b *txBuf) status(now sim.Time) mac.BufferStatus {
	st := mac.BufferStatus{
		TotalBytes:         b.bytes,
		OracleMinRemaining: -1,
	}
	if len(b.queues) > 1 {
		if cap(b.prioScratch) < len(b.prioBytes) {
			//outran:allocok capacity-guarded scratch growth; priority count is fixed per config
			b.prioScratch = make([]int, len(b.prioBytes))
		}
		st.PerPriority = b.prioScratch[:len(b.prioBytes)]
		copy(st.PerPriority, b.prioBytes)
	}
	if qi := b.headQueue(); qi >= 0 {
		st.HOLArrival = b.queues[qi].front().Arrival
	}
	// Drop fully sent (or evicted) QoS SDUs off the HOL tracker.
	for b.qosList.len() > 0 && (b.qosList.front().Remaining() == 0 || b.qosList.front().evicted) {
		b.qosList.popFront()
	}
	st.QoSBytes = b.qosBytes
	if hol := b.qosList.front(); hol != nil {
		st.QoSHOLArrival = hol.Arrival
		st.QoSDelayBudget = hol.DelayBudget
	}
	//outran:orderfree min fold over per-flow remaining; commutative, order cannot matter
	for _, fa := range b.flows {
		if fa.queuedBytes <= 0 || fa.flowSize < 0 {
			continue
		}
		rem := fa.flowSize - fa.dequeued
		if rem <= 0 {
			rem = int64(fa.queuedBytes)
		}
		if st.OracleMinRemaining < 0 || rem < st.OracleMinRemaining {
			st.OracleMinRemaining = rem
		}
	}
	_ = now
	return st
}

// Drops returns the arrival-drop count.
func (b *txBuf) dropCount() int { return b.drops }

// evictionCount returns how many queued SDUs were pushed out by
// higher-priority arrivals.
func (b *txBuf) evictionCount() int { return b.evictions }
