package rlc

import (
	"testing"

	"outran/internal/sim"
)

// amPair wires an AMTx to an AMRx with a lossy forward channel.
type amPair struct {
	eng       *sim.Engine
	tx        *AMTx
	rx        *AMRx
	delivered []uint64
	lossNext  map[uint32]bool // SNs to drop on first transmission
}

func newAMPair(eng *sim.Engine) *amPair {
	p := &amPair{eng: eng, lossNext: make(map[uint32]bool)}
	p.tx = NewAMTx(eng, TxBufConfig{Queues: 1, LimitSDUs: 100})
	p.rx = NewAMRx(eng,
		func(s *SDU) { p.delivered = append(p.delivered, s.ID) },
		func(st *StatusPDU) { eng.After(sim.Millisecond, func() { p.tx.OnStatus(st) }) },
	)
	return p
}

// pump transfers PDUs each millisecond with the configured losses.
func (p *amPair) pump(grant int, rounds int) {
	for i := 0; i < rounds; i++ {
		p.eng.After(sim.Time(i)*sim.Millisecond, func() {
			for _, pdu := range p.tx.Pull(grant) {
				pdu := pdu
				if !pdu.Retx && p.lossNext[pdu.SN] {
					delete(p.lossNext, pdu.SN)
					continue // dropped on the air
				}
				p.eng.After(sim.Millisecond, func() { p.rx.Receive(pdu) })
			}
		})
	}
}

func TestAMLosslessDelivery(t *testing.T) {
	var eng sim.Engine
	p := newAMPair(&eng)
	var want []uint64
	for i := 0; i < 10; i++ {
		s := mkSDU(500, 0, 1)
		want = append(want, s.ID)
		p.tx.Enqueue(s)
	}
	p.pump(600, 30)
	eng.RunUntil(200 * sim.Millisecond)
	if len(p.delivered) != 10 {
		t.Fatalf("delivered %d/10", len(p.delivered))
	}
	for i, id := range p.delivered {
		if id != want[i] {
			t.Fatalf("order broken at %d", i)
		}
	}
}

func TestAMRetransmissionRecoversLoss(t *testing.T) {
	var eng sim.Engine
	p := newAMPair(&eng)
	for i := 0; i < 20; i++ {
		p.tx.Enqueue(mkSDU(500, 0, 1))
	}
	p.lossNext[2] = true
	p.lossNext[5] = true
	p.pump(600, 120)
	eng.RunUntil(2 * sim.Second)
	if len(p.delivered) != 20 {
		t.Fatalf("delivered %d/20 after losses; retx bytes=%d abandoned=%d",
			len(p.delivered), p.tx.RetxBytes(), p.tx.Abandoned())
	}
	if p.tx.RetxBytes() == 0 {
		t.Fatal("no retransmissions recorded despite losses")
	}
}

func TestAMPollTriggersStatus(t *testing.T) {
	var eng sim.Engine
	statuses := 0
	tx := NewAMTx(&eng, TxBufConfig{Queues: 1, LimitSDUs: 100})
	rx := NewAMRx(&eng, func(*SDU) {}, func(*StatusPDU) { statuses++ })
	for i := 0; i < DefaultPollPDU+2; i++ {
		tx.Enqueue(mkSDU(100, 0, 1))
	}
	for i := 0; i < DefaultPollPDU+2; i++ {
		// Grant of exactly one SDU + header: one PDU per pull.
		for _, pdu := range tx.Pull(102) {
			rx.Receive(pdu)
		}
	}
	// Bounded run: with no status path wired back, t-PollRetransmit
	// keeps re-polling (by design), so the event queue never drains.
	eng.RunUntil(sim.Second)
	if statuses == 0 {
		t.Fatal("poll bit never triggered a status report")
	}
}

func TestAMStatusProhibitThrottles(t *testing.T) {
	var eng sim.Engine
	statuses := 0
	rx := NewAMRx(&eng, func(*SDU) {}, func(*StatusPDU) { statuses++ })
	// Two polled PDUs back-to-back: the second status must be held by
	// t-StatusProhibit.
	mk := func(sn uint32) *PDU {
		s := mkSDU(100, 0, 1)
		return &PDU{SN: sn, Poll: true, Bytes: 102,
			Segments: []Segment{{SDU: s, Len: 100, Last: true}}}
	}
	rx.Receive(mk(0))
	rx.Receive(mk(1))
	if statuses != 1 {
		t.Fatalf("statuses %d before prohibit expiry, want 1", statuses)
	}
	eng.RunUntil(2 * DefaultTStatusProhibit)
	if statuses != 2 {
		t.Fatalf("pending status not sent after prohibit: %d", statuses)
	}
}

func TestAMControlQueueFirst(t *testing.T) {
	var eng sim.Engine
	tx := NewAMTx(&eng, TxBufConfig{Queues: 1, LimitSDUs: 100})
	tx.Enqueue(mkSDU(500, 0, 1))
	tx.EnqueueStatus(&StatusPDU{AckSN: 3})
	// A grant that only covers the status PDU: no data PDU comes out.
	out := tx.Pull(4)
	if len(out) != 0 {
		t.Fatalf("data sent with control-only grant: %d PDUs", len(out))
	}
	// Next grant carries data.
	out = tx.Pull(600)
	if len(out) != 1 {
		t.Fatalf("want 1 data PDU, got %d", len(out))
	}
}

func TestAMAbandonAfterMaxRetx(t *testing.T) {
	var eng sim.Engine
	p := newAMPair(&eng)
	for i := 0; i < 5; i++ {
		p.tx.Enqueue(mkSDU(500, 0, 1))
	}
	// Drop SN 1 forever: mark loss on every transmission by wrapping
	// the pump manually. Grant 502 aligns PDUs with SDUs.
	for i := 0; i < 2000; i++ {
		p.eng.After(sim.Time(i)*sim.Millisecond, func() {
			for _, pdu := range p.tx.Pull(502) {
				pdu := pdu
				if pdu.SN == 1 {
					continue // black hole
				}
				p.eng.After(sim.Millisecond, func() { p.rx.Receive(pdu) })
			}
		})
	}
	eng.RunUntil(2 * sim.Second)
	if p.tx.Abandoned() == 0 {
		t.Fatal("endlessly lost PDU never abandoned")
	}
	if len(p.delivered) != 4 {
		t.Fatalf("delivered %d/4 survivable SDUs", len(p.delivered))
	}
}

func TestAMStatusAckFreesState(t *testing.T) {
	var eng sim.Engine
	tx := NewAMTx(&eng, TxBufConfig{Queues: 1, LimitSDUs: 100})
	tx.Enqueue(mkSDU(100, 0, 1))
	out := tx.Pull(200)
	if len(out) != 1 {
		t.Fatal("setup")
	}
	if len(tx.txed) != 1 {
		t.Fatalf("txed size %d", len(tx.txed))
	}
	tx.OnStatus(&StatusPDU{AckSN: 1})
	if len(tx.txed) != 0 {
		t.Fatal("acked PDU retained")
	}
}

// TestAMMaxRetxDeliveryFail pins the delivery-failure signal: before
// OnDeliveryFail existed, exhausting maxRetx silently discarded the
// PDU (only a counter moved) — a test like this one, asserting that
// the upper layer is told which SN died, would have passed vacuously.
func TestAMMaxRetxDeliveryFail(t *testing.T) {
	var eng sim.Engine
	p := newAMPair(&eng)
	var failedSNs []uint32
	p.tx.OnDeliveryFail = func(sn uint32, pdu *PDU) {
		if pdu == nil {
			t.Error("delivery-fail callback got nil PDU")
		}
		failedSNs = append(failedSNs, sn)
	}
	for i := 0; i < 5; i++ {
		p.tx.Enqueue(mkSDU(500, 0, 1))
	}
	// Black-hole SN 1 on every attempt.
	for i := 0; i < 2000; i++ {
		p.eng.After(sim.Time(i)*sim.Millisecond, func() {
			for _, pdu := range p.tx.Pull(502) {
				pdu := pdu
				if pdu.SN == 1 {
					continue
				}
				p.eng.After(sim.Millisecond, func() { p.rx.Receive(pdu) })
			}
		})
	}
	eng.RunUntil(2 * sim.Second)
	if p.tx.Abandoned() == 0 {
		t.Fatal("setup: PDU never abandoned")
	}
	if uint64(len(failedSNs)) != p.tx.Abandoned() {
		t.Fatalf("%d delivery failures signalled, %d PDUs abandoned", len(failedSNs), p.tx.Abandoned())
	}
	for _, sn := range failedSNs {
		if sn != 1 {
			t.Fatalf("delivery failure reported for SN %d, only SN 1 was lost", sn)
		}
	}
}

// TestAMTxAuditDetectsCorruption drives the structural audit with
// deliberately corrupted transmitter state.
func TestAMTxAuditDetectsCorruption(t *testing.T) {
	var eng sim.Engine
	tx := NewAMTx(&eng, TxBufConfig{Queues: 1, LimitSDUs: 100})
	tx.Enqueue(mkSDU(100, 0, 1))
	if len(tx.Pull(200)) != 1 {
		t.Fatal("setup")
	}
	if err := tx.Audit(); err != nil {
		t.Fatalf("clean state failed audit: %v", err)
	}
	tx.retxQ = append(tx.retxQ, 5, 3) // descending
	if err := tx.Audit(); err == nil {
		t.Fatal("unordered retxQ passed audit")
	}
	tx.retxQ = nil
	tx.sn = 0 // now txed holds SN 0 >= next sn
	if err := tx.Audit(); err == nil {
		t.Fatal("txed SN beyond next-SN passed audit")
	}
	tx.sn = 1
	tx.retxCount[9] = 1 // orphaned: SN 9 not in txed
	if err := tx.Audit(); err == nil {
		t.Fatal("orphaned retxCount entry passed audit")
	}
}

// TestAMRxAuditDetectsCorruption does the same for the receiver.
func TestAMRxAuditDetectsCorruption(t *testing.T) {
	var eng sim.Engine
	rx := NewAMRx(&eng, func(*SDU) {}, func(*StatusPDU) {})
	if err := rx.Audit(); err != nil {
		t.Fatalf("clean state failed audit: %v", err)
	}
	rx.floor = 7
	rx.highest = 3
	if err := rx.Audit(); err == nil {
		t.Fatal("floor beyond highest passed audit")
	}
	rx.floor, rx.highest = 0, 8
	rx.held[9] = &PDU{SN: 9}
	if err := rx.Audit(); err == nil {
		t.Fatal("held PDU outside window passed audit")
	}
}
