package rlc

import (
	"errors"
	"fmt"
	"sort"

	"outran/internal/ip"
	"outran/internal/sim"
	"outran/internal/snapshot"
)

// Structural sentinels for the RLC snapshot walk.
const (
	tagSDU   = 0x7c01
	tagPDU   = 0x7c02
	tagTxBuf = 0x7c03
	tagUMTx  = 0x7c04
	tagUMRx  = 0x7c05
	tagAMTx  = 0x7c06
	tagAMRx  = 0x7c07
)

// Reference markers: an object is written inline on first encounter
// and as a table index afterwards, so pointer sharing (an SDU queued
// in the tx buffer AND referenced by segments of in-flight PDUs AND
// half-reassembled at the receiver) survives the round trip.
const (
	refNil    = 0
	refInline = 1
	refIndex  = 2
)

var errDoubleRestore = errors.New("rlc: entity already restored once")

// SnapEnc threads an encoder together with the identity tables for
// SDUs and PDUs. One SnapEnc spans everything that can share objects —
// in practice one UE's bearer plus its in-flight transport blocks.
type SnapEnc struct {
	E      *snapshot.Encoder
	sduIdx map[*SDU]uint32
	pduIdx map[*PDU]uint32
}

// NewSnapEnc builds an encoding context over e.
func NewSnapEnc(e *snapshot.Encoder) *SnapEnc {
	return &SnapEnc{E: e, sduIdx: make(map[*SDU]uint32), pduIdx: make(map[*PDU]uint32)}
}

// SDU encodes a reference to s, inlining the full object on first
// encounter. Nil is representable (absent optional references).
func (se *SnapEnc) SDU(s *SDU) {
	if s == nil {
		se.E.U8(refNil)
		return
	}
	if idx, ok := se.sduIdx[s]; ok {
		se.E.U8(refIndex)
		se.E.U32(idx)
		return
	}
	idx := uint32(len(se.sduIdx))
	se.sduIdx[s] = idx
	se.E.U8(refInline)
	se.E.Mark(tagSDU)
	se.E.U64(s.ID)
	se.E.Int(s.Size)
	se.E.Int(s.Priority)
	se.E.I64(int64(s.Arrival))
	ip.PutTuple(se.E, s.Flow)
	se.E.I64(s.FlowSize)
	se.E.Bool(s.QoS)
	se.E.I64(int64(s.DelayBudget))
	se.E.U32(s.PDCPSN)
	se.E.Bytes32(s.Header)
	ip.PutPacket(se.E, s.Packet)
	se.E.Int(s.sentOffset)
	se.E.Bool(s.evicted)
	se.E.Int(s.reportPrio)
}

// PDU encodes a reference to p, inlining segments as SDU references
// so segment sharing across retransmission copies is preserved.
func (se *SnapEnc) PDU(p *PDU) {
	if p == nil {
		se.E.U8(refNil)
		return
	}
	if idx, ok := se.pduIdx[p]; ok {
		se.E.U8(refIndex)
		se.E.U32(idx)
		return
	}
	idx := uint32(len(se.pduIdx))
	se.pduIdx[p] = idx
	se.E.U8(refInline)
	se.E.Mark(tagPDU)
	se.E.U32(p.SN)
	se.E.U32(uint32(len(p.Segments)))
	for _, seg := range p.Segments {
		se.SDU(seg.SDU)
		se.E.Int(seg.Offset)
		se.E.Int(seg.Len)
		se.E.Bool(seg.Last)
	}
	se.E.Int(p.Bytes)
	se.E.Bool(p.Poll)
	se.E.Bool(p.Retx)
}

// SnapDec is the decoding counterpart of SnapEnc: table indices
// resolve back to the one restored instance of each object.
type SnapDec struct {
	D    *snapshot.Decoder
	sdus []*SDU
	pdus []*PDU
}

// NewSnapDec builds a decoding context over d.
func NewSnapDec(d *snapshot.Decoder) *SnapDec {
	return &SnapDec{D: d}
}

// SDU decodes a reference written by SnapEnc.SDU.
func (sd *SnapDec) SDU() *SDU {
	switch sd.D.U8() {
	case refNil:
		return nil
	case refIndex:
		idx := int(sd.D.U32())
		if sd.D.Err() != nil {
			return nil
		}
		if idx >= len(sd.sdus) {
			sd.D.Fail(fmt.Errorf("%w: SDU ref %d beyond table of %d", snapshot.ErrCorrupt, idx, len(sd.sdus)))
			return nil
		}
		return sd.sdus[idx]
	case refInline:
		sd.D.Expect(tagSDU)
		s := &SDU{}
		s.ID = sd.D.U64()
		s.Size = sd.D.Int()
		s.Priority = sd.D.Int()
		s.Arrival = sim.Time(sd.D.I64())
		s.Flow = ip.GetTuple(sd.D)
		s.FlowSize = sd.D.I64()
		s.QoS = sd.D.Bool()
		s.DelayBudget = sim.Time(sd.D.I64())
		s.PDCPSN = sd.D.U32()
		if h := sd.D.Bytes32(); len(h) > 0 {
			s.Header = append([]byte(nil), h...)
		}
		s.Packet = ip.GetPacket(sd.D)
		s.sentOffset = sd.D.Int()
		s.evicted = sd.D.Bool()
		s.reportPrio = sd.D.Int()
		if sd.D.Err() != nil {
			return nil
		}
		sd.sdus = append(sd.sdus, s)
		return s
	default:
		sd.D.Fail(fmt.Errorf("%w: unknown SDU reference marker", snapshot.ErrCorrupt))
		return nil
	}
}

// PDU decodes a reference written by SnapEnc.PDU.
func (sd *SnapDec) PDU() *PDU {
	switch sd.D.U8() {
	case refNil:
		return nil
	case refIndex:
		idx := int(sd.D.U32())
		if sd.D.Err() != nil {
			return nil
		}
		if idx >= len(sd.pdus) {
			sd.D.Fail(fmt.Errorf("%w: PDU ref %d beyond table of %d", snapshot.ErrCorrupt, idx, len(sd.pdus)))
			return nil
		}
		return sd.pdus[idx]
	case refInline:
		sd.D.Expect(tagPDU)
		p := &PDU{}
		p.SN = sd.D.U32()
		n := sd.D.Count(1 << 20)
		for i := 0; i < n && sd.D.Err() == nil; i++ {
			var seg Segment
			seg.SDU = sd.SDU()
			seg.Offset = sd.D.Int()
			seg.Len = sd.D.Int()
			seg.Last = sd.D.Bool()
			p.Segments = append(p.Segments, seg)
		}
		p.Bytes = sd.D.Int()
		p.Poll = sd.D.Bool()
		p.Retx = sd.D.Bool()
		if sd.D.Err() != nil {
			return nil
		}
		sd.pdus = append(sd.pdus, p)
		return p
	default:
		sd.D.Fail(fmt.Errorf("%w: unknown PDU reference marker", snapshot.ErrCorrupt))
		return nil
	}
}

// EncodeStatus writes a status PDU (used both by AM entity state and
// by the cell's in-flight status-uplink events).
func EncodeStatus(e *snapshot.Encoder, st *StatusPDU) {
	e.U32(st.AckSN)
	e.U32(uint32(len(st.Nacks)))
	for _, sn := range st.Nacks {
		e.U32(sn)
	}
}

// DecodeStatus reads a status PDU written by EncodeStatus.
func DecodeStatus(d *snapshot.Decoder) *StatusPDU {
	st := &StatusPDU{AckSN: d.U32()}
	n := d.Count(1 << 20)
	for i := 0; i < n && d.Err() == nil; i++ {
		st.Nacks = append(st.Nacks, d.U32())
	}
	return st
}

func snapshotDeque(se *SnapEnc, d *deque) {
	se.E.U32(uint32(d.len()))
	for i := d.head; i < len(d.items); i++ {
		se.SDU(d.items[i])
	}
}

func restoreDeque(sd *SnapDec, d *deque) {
	n := sd.D.Count(1 << 24)
	for i := 0; i < n && sd.D.Err() == nil; i++ {
		if s := sd.SDU(); s != nil {
			d.pushBack(s)
		}
	}
}

func (b *txBuf) snapshot(se *SnapEnc) {
	se.E.Mark(tagTxBuf)
	se.E.U32(uint32(len(b.queues)))
	for i := range b.queues {
		snapshotDeque(se, &b.queues[i])
	}
	se.E.Int(b.count)
	se.E.Int(b.bytes)
	for _, pb := range b.prioBytes {
		se.E.Int(pb)
	}
	keys := make([]ip.FiveTuple, 0, len(b.flows))
	for ft := range b.flows {
		keys = append(keys, ft)
	}
	ip.SortTuples(keys)
	se.E.U32(uint32(len(keys)))
	for _, ft := range keys {
		fa := b.flows[ft]
		ip.PutTuple(se.E, ft)
		se.E.Int(fa.queuedSDUs)
		se.E.Int(fa.queuedBytes)
		se.E.I64(fa.dequeued)
		se.E.I64(fa.flowSize)
	}
	se.E.Int(b.drops)
	se.E.Int(b.evictions)
	se.E.Int(b.qosBytes)
	snapshotDeque(se, &b.qosList)
}

func (b *txBuf) restore(sd *SnapDec) {
	sd.D.Expect(tagTxBuf)
	nq := sd.D.Count(1 << 10)
	if sd.D.Err() == nil && nq != len(b.queues) {
		sd.D.Fail(fmt.Errorf("%w: snapshot has %d priority queues, entity configured with %d",
			snapshot.ErrCorrupt, nq, len(b.queues)))
		return
	}
	for i := 0; i < nq && sd.D.Err() == nil; i++ {
		restoreDeque(sd, &b.queues[i])
	}
	b.count = sd.D.Int()
	b.bytes = sd.D.Int()
	for i := range b.prioBytes {
		b.prioBytes[i] = sd.D.Int()
	}
	nf := sd.D.Count(1 << 24)
	for i := 0; i < nf && sd.D.Err() == nil; i++ {
		ft := ip.GetTuple(sd.D)
		fa := &flowAgg{}
		fa.queuedSDUs = sd.D.Int()
		fa.queuedBytes = sd.D.Int()
		fa.dequeued = sd.D.I64()
		fa.flowSize = sd.D.I64()
		b.flows[ft] = fa
	}
	b.drops = sd.D.Int()
	b.evictions = sd.D.Int()
	b.qosBytes = sd.D.Int()
	restoreDeque(sd, &b.qosList)
}

func snapTimer(e *snapshot.Encoder, t *sim.Timer) {
	running, expires, seq := t.SnapArm()
	e.Bool(running)
	e.I64(int64(expires))
	e.U64(seq)
}

func restoreTimer(d *snapshot.Decoder, t *sim.Timer) {
	running := d.Bool()
	expires := sim.Time(d.I64())
	seq := d.U64()
	if d.Err() != nil {
		return
	}
	t.RestoreArm(running, expires, seq)
}

// Snapshot encodes the UM transmitter: buffer contents and SN state.
func (t *UMTx) Snapshot(se *SnapEnc) {
	se.E.Mark(tagUMTx)
	t.buf.snapshot(se)
	se.E.U32(t.sn)
}

// Restore overlays a snapshot onto a freshly built entity. Importing
// into an entity that already holds state is an error.
func (t *UMTx) Restore(sd *SnapDec) error {
	if t.buf.count != 0 || t.sn != 0 {
		return fmt.Errorf("restoring UM tx entity: %w", errDoubleRestore)
	}
	sd.D.Expect(tagUMTx)
	t.buf.restore(sd)
	t.sn = sd.D.U32()
	if err := sd.D.Err(); err != nil {
		return fmt.Errorf("rlc: restoring UM tx entity: %w", err)
	}
	return nil
}

// Snapshot encodes the UM receiver: reordering window, reassembly
// table, counters, and live timer arms.
func (r *UMRx) Snapshot(se *SnapEnc) {
	se.E.Mark(tagUMRx)
	se.E.I64(int64(r.TReassembly))
	se.E.U32(r.expected)
	sns := make([]uint32, 0, len(r.held))
	for sn := range r.held {
		sns = append(sns, sn)
	}
	sort.Slice(sns, func(i, j int) bool { return sns[i] < sns[j] })
	se.E.U32(uint32(len(sns)))
	for _, sn := range sns {
		se.E.U32(sn)
		se.PDU(r.held[sn])
	}
	ids := sortedPartialIDs(r.partials)
	se.E.U32(uint32(len(ids)))
	for _, id := range ids {
		p := r.partials[id]
		se.E.U64(id)
		se.SDU(p.sdu)
		se.E.Int(p.received)
		se.E.I64(int64(p.lastSeen))
	}
	se.E.U64(r.delivered)
	se.E.U64(r.discarded)
	se.E.U64(r.skipped)
	snapTimer(se.E, r.gapTimer)
	snapTimer(se.E, r.sduTimer)
}

// Restore overlays a snapshot onto a freshly built entity and
// re-registers its timer arms bit-exactly.
func (r *UMRx) Restore(sd *SnapDec) error {
	if r.expected != 0 || len(r.held) != 0 || len(r.partials) != 0 {
		return fmt.Errorf("restoring UM rx entity: %w", errDoubleRestore)
	}
	sd.D.Expect(tagUMRx)
	r.TReassembly = sim.Time(sd.D.I64())
	r.expected = sd.D.U32()
	nh := sd.D.Count(1 << 20)
	for i := 0; i < nh && sd.D.Err() == nil; i++ {
		sn := sd.D.U32()
		if p := sd.PDU(); p != nil {
			r.held[sn] = p
		}
	}
	np := sd.D.Count(1 << 24)
	for i := 0; i < np && sd.D.Err() == nil; i++ {
		id := sd.D.U64()
		p := &partialSDU{}
		p.sdu = sd.SDU()
		p.received = sd.D.Int()
		p.lastSeen = sim.Time(sd.D.I64())
		r.partials[id] = p
	}
	r.delivered = sd.D.U64()
	r.discarded = sd.D.U64()
	r.skipped = sd.D.U64()
	restoreTimer(sd.D, r.gapTimer)
	restoreTimer(sd.D, r.sduTimer)
	if err := sd.D.Err(); err != nil {
		return fmt.Errorf("rlc: restoring UM rx entity: %w", err)
	}
	return nil
}

// Snapshot encodes the AM transmitter: buffer, unacked PDU window,
// retransmission queue, control queue, polling state, and the
// t-PollRetransmit arm.
func (t *AMTx) Snapshot(se *SnapEnc) {
	se.E.Mark(tagAMTx)
	t.buf.snapshot(se)
	se.E.U32(t.sn)
	sns := make([]uint32, 0, len(t.txed))
	for sn := range t.txed {
		sns = append(sns, sn)
	}
	sort.Slice(sns, func(i, j int) bool { return sns[i] < sns[j] })
	se.E.U32(uint32(len(sns)))
	for _, sn := range sns {
		se.E.U32(sn)
		se.PDU(t.txed[sn])
	}
	se.E.U32(uint32(len(t.retxQ)))
	for _, sn := range t.retxQ {
		se.E.U32(sn)
	}
	rcs := make([]uint32, 0, len(t.retxCount))
	for sn := range t.retxCount {
		rcs = append(rcs, sn)
	}
	sort.Slice(rcs, func(i, j int) bool { return rcs[i] < rcs[j] })
	se.E.U32(uint32(len(rcs)))
	for _, sn := range rcs {
		se.E.U32(sn)
		se.E.Int(t.retxCount[sn])
	}
	se.E.U32(uint32(len(t.ctrlQ)))
	for _, st := range t.ctrlQ {
		EncodeStatus(se.E, st)
	}
	se.E.Int(t.pollPDU)
	se.E.Int(t.sincePoll)
	se.E.U32(t.pollSN)
	se.E.Bool(t.pollOut)
	snapTimer(se.E, t.tPollRetx)
	se.E.Int(t.maxRetx)
	se.E.U64(t.abandoned)
	se.E.U64(t.retxBytesSent)
}

// Restore overlays a snapshot onto a freshly built entity.
func (t *AMTx) Restore(sd *SnapDec) error {
	if t.sn != 0 || len(t.txed) != 0 || t.buf.count != 0 {
		return fmt.Errorf("restoring AM tx entity: %w", errDoubleRestore)
	}
	sd.D.Expect(tagAMTx)
	t.buf.restore(sd)
	t.sn = sd.D.U32()
	nt := sd.D.Count(1 << 20)
	for i := 0; i < nt && sd.D.Err() == nil; i++ {
		sn := sd.D.U32()
		if p := sd.PDU(); p != nil {
			t.txed[sn] = p
		}
	}
	nr := sd.D.Count(1 << 20)
	for i := 0; i < nr && sd.D.Err() == nil; i++ {
		t.retxQ = append(t.retxQ, sd.D.U32())
	}
	nc := sd.D.Count(1 << 20)
	for i := 0; i < nc && sd.D.Err() == nil; i++ {
		sn := sd.D.U32()
		t.retxCount[sn] = sd.D.Int()
	}
	nq := sd.D.Count(1 << 20)
	for i := 0; i < nq && sd.D.Err() == nil; i++ {
		t.ctrlQ = append(t.ctrlQ, DecodeStatus(sd.D))
	}
	t.pollPDU = sd.D.Int()
	t.sincePoll = sd.D.Int()
	t.pollSN = sd.D.U32()
	t.pollOut = sd.D.Bool()
	restoreTimer(sd.D, t.tPollRetx)
	t.maxRetx = sd.D.Int()
	t.abandoned = sd.D.U64()
	t.retxBytesSent = sd.D.U64()
	if err := sd.D.Err(); err != nil {
		return fmt.Errorf("rlc: restoring AM tx entity: %w", err)
	}
	return nil
}

// Snapshot encodes the AM receiver: window, reassembly table, NACK
// bookkeeping, and the three timer arms.
func (r *AMRx) Snapshot(se *SnapEnc) {
	se.E.Mark(tagAMRx)
	ids := sortedPartialIDs(r.partials)
	se.E.U32(uint32(len(ids)))
	for _, id := range ids {
		p := r.partials[id]
		se.E.U64(id)
		se.SDU(p.sdu)
		se.E.Int(p.received)
		se.E.I64(int64(p.lastSeen))
	}
	sns := make([]uint32, 0, len(r.held))
	for sn := range r.held {
		sns = append(sns, sn)
	}
	sort.Slice(sns, func(i, j int) bool { return sns[i] < sns[j] })
	se.E.U32(uint32(len(sns)))
	for _, sn := range sns {
		se.E.U32(sn)
		se.PDU(r.held[sn])
	}
	se.E.U32(r.floor)
	se.E.U32(r.highest)
	nts := make([]uint32, 0, len(r.nackTry))
	for sn := range r.nackTry {
		nts = append(nts, sn)
	}
	sort.Slice(nts, func(i, j int) bool { return nts[i] < nts[j] })
	se.E.U32(uint32(len(nts)))
	for _, sn := range nts {
		se.E.U32(sn)
		se.E.Int(r.nackTry[sn])
	}
	snapTimer(se.E, r.prohibit)
	snapTimer(se.E, r.gapTimer)
	snapTimer(se.E, r.sduTimer)
	se.E.Bool(r.pending)
	se.E.U64(r.delivered)
	se.E.U64(r.discarded)
}

// Restore overlays a snapshot onto a freshly built entity.
func (r *AMRx) Restore(sd *SnapDec) error {
	if r.floor != 0 || r.highest != 0 || len(r.held) != 0 {
		return fmt.Errorf("restoring AM rx entity: %w", errDoubleRestore)
	}
	sd.D.Expect(tagAMRx)
	np := sd.D.Count(1 << 24)
	for i := 0; i < np && sd.D.Err() == nil; i++ {
		id := sd.D.U64()
		p := &partialSDU{}
		p.sdu = sd.SDU()
		p.received = sd.D.Int()
		p.lastSeen = sim.Time(sd.D.I64())
		r.partials[id] = p
	}
	nh := sd.D.Count(1 << 20)
	for i := 0; i < nh && sd.D.Err() == nil; i++ {
		sn := sd.D.U32()
		if p := sd.PDU(); p != nil {
			r.held[sn] = p
		}
	}
	r.floor = sd.D.U32()
	r.highest = sd.D.U32()
	nn := sd.D.Count(1 << 20)
	for i := 0; i < nn && sd.D.Err() == nil; i++ {
		sn := sd.D.U32()
		r.nackTry[sn] = sd.D.Int()
	}
	restoreTimer(sd.D, r.prohibit)
	restoreTimer(sd.D, r.gapTimer)
	restoreTimer(sd.D, r.sduTimer)
	r.pending = sd.D.Bool()
	r.delivered = sd.D.U64()
	r.discarded = sd.D.U64()
	if err := sd.D.Err(); err != nil {
		return fmt.Errorf("rlc: restoring AM rx entity: %w", err)
	}
	return nil
}
