package rlc

import (
	"testing"

	"outran/internal/analysis/probetest"
	"outran/internal/sim"
)

// statusBuf builds a populated tx buffer for the BSR probes.
func statusBuf() *txBuf {
	b := newTxBuf(TxBufConfig{Queues: 4})
	for i := 0; i < 4; i++ {
		s := mkSDU(500, i, uint16(i))
		s.FlowSize = 2000
		b.enqueue(s)
	}
	return b
}

// TestZeroAllocs pins every //outran:allocfree function in this
// package with an AllocsPerRun probe; probetest.Run fails when the
// probe registry and the annotations drift apart. The status probes
// rely on AllocsPerRun's warm-up call to grow the PerPriority scratch
// before measurement.
func TestZeroAllocs(t *testing.T) {
	probetest.Run(t, ".", map[string]func(t *testing.T){
		"(*txBuf).status": func(t *testing.T) {
			b := statusBuf()
			allocs := testing.AllocsPerRun(100, func() {
				if st := b.status(0); st.TotalBytes == 0 {
					t.Fatal("empty status")
				}
			})
			if allocs != 0 {
				t.Errorf("status: %.1f allocs/call, want 0", allocs)
			}
		},
		"(*UMTx).Status": func(t *testing.T) {
			um := NewUMTx(TxBufConfig{Queues: 4})
			for i := 0; i < 4; i++ {
				um.Enqueue(mkSDU(500, i, uint16(i)))
			}
			allocs := testing.AllocsPerRun(100, func() {
				if st := um.Status(0); st.TotalBytes == 0 {
					t.Fatal("empty status")
				}
			})
			if allocs != 0 {
				t.Errorf("UM Status: %.1f allocs/call, want 0", allocs)
			}
		},
		"(*AMTx).Status": func(t *testing.T) {
			var eng sim.Engine
			am := NewAMTx(&eng, TxBufConfig{Queues: 4})
			for i := 0; i < 4; i++ {
				am.Enqueue(mkSDU(500, i, uint16(i)))
			}
			// Build one PDU so txed bookkeeping is live.
			if pdus := am.Pull(256); len(pdus) == 0 {
				t.Fatal("no PDU built")
			}
			allocs := testing.AllocsPerRun(100, func() {
				if st := am.Status(0); st.TotalBytes == 0 {
					t.Fatal("empty status")
				}
			})
			if allocs != 0 {
				t.Errorf("AM Status: %.1f allocs/call, want 0", allocs)
			}
		},
		"(*PDU).AppendWireHeader": func(t *testing.T) {
			p := &PDU{SN: 42, Segments: []Segment{
				{Offset: 10, Len: 100},
				{Offset: 0, Len: 200, Last: true},
			}}
			buf := make([]byte, 0, 64)
			allocs := testing.AllocsPerRun(100, func() {
				var err error
				buf, err = p.AppendWireHeader(buf[:0])
				if err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("AppendWireHeader: %.1f allocs/PDU, want 0", allocs)
			}
		},
	})
}
