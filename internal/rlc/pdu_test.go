package rlc

import (
	"testing"
	"testing/quick"
)

func TestWireHeaderRoundTrip(t *testing.T) {
	h := wireHeader{
		FirstIsContinuation: true,
		LastIsPartial:       false,
		SN:                  1234,
		SegLens:             []int{700, 44, 1400},
	}
	buf, err := h.encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeWireHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.FirstIsContinuation != h.FirstIsContinuation || got.LastIsPartial != h.LastIsPartial || got.SN != h.SN {
		t.Fatalf("round trip %+v vs %+v", got, h)
	}
	if len(got.SegLens) != 3 || got.SegLens[0] != 700 || got.SegLens[2] != 1400 {
		t.Fatalf("seg lens %v", got.SegLens)
	}
}

func TestWireHeaderErrors(t *testing.T) {
	if _, err := (&wireHeader{SN: maxWireSN + 1, SegLens: []int{1}}).encode(); err == nil {
		t.Error("oversized SN accepted")
	}
	if _, err := (&wireHeader{SN: 1}).encode(); err == nil {
		t.Error("empty header accepted")
	}
	if _, err := (&wireHeader{SN: 1, SegLens: []int{0}}).encode(); err == nil {
		t.Error("zero segment length accepted")
	}
	if _, err := decodeWireHeader([]byte{1, 2}); err == nil {
		t.Error("short buffer accepted")
	}
	if _, err := decodeWireHeader([]byte{0, 1, 0, 0}); err == nil {
		t.Error("zero length indicator accepted")
	}
}

func TestPDUWireHeader(t *testing.T) {
	s := mkSDU(1000, 0, 1)
	pdu := &PDU{SN: 9, Segments: []Segment{{SDU: s, Offset: 200, Len: 300}}}
	buf, err := pdu.WireHeader()
	if err != nil {
		t.Fatal(err)
	}
	h, err := decodeWireHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !h.FirstIsContinuation {
		t.Fatal("offset > 0 should mark continuation")
	}
	if !h.LastIsPartial {
		t.Fatal("non-final segment should mark partial")
	}
	if h.SN != 9 {
		t.Fatalf("SN %d", h.SN)
	}
}

func TestHeaderBytesModel(t *testing.T) {
	if headerBytes(1) != pduFixedHeader {
		t.Fatal("single-segment header cost")
	}
	if headerBytes(3) != pduFixedHeader+2*perExtraSegment {
		t.Fatal("multi-segment header cost")
	}
}

func TestPayloadBytes(t *testing.T) {
	s := mkSDU(1000, 0, 1)
	pdu := &PDU{Segments: []Segment{{SDU: s, Len: 300}, {SDU: s, Len: 200}}}
	if pdu.PayloadBytes() != 500 {
		t.Fatalf("payload %d", pdu.PayloadBytes())
	}
}

// Property: the modelled PDU size in buildPDU matches the actual wire
// header cost model for any segment structure it produces.
func TestPDUSizeMatchesModelProperty(t *testing.T) {
	prop := func(sizes []uint16, grantRaw uint16) bool {
		b := newTxBuf(TxBufConfig{Queues: 1, LimitSDUs: 64})
		for _, sz := range sizes {
			b.enqueue(mkSDU(int(sz%3000)+1, 0, 1))
		}
		grant := int(grantRaw%4000) + MinGrant
		pdu := b.buildPDU(grant, 0, nil)
		if pdu == nil {
			return true
		}
		if pdu.Bytes > grant {
			return false
		}
		return pdu.Bytes == headerBytes(len(pdu.Segments))+pdu.PayloadBytes()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
