package rlc

import (
	"testing"
	"testing/quick"
)

func TestWireHeaderRoundTrip(t *testing.T) {
	h := wireHeader{
		FirstIsContinuation: true,
		LastIsPartial:       false,
		SN:                  1234,
		SegLens:             []int{700, 44, 1400},
	}
	buf, err := h.encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeWireHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.FirstIsContinuation != h.FirstIsContinuation || got.LastIsPartial != h.LastIsPartial || got.SN != h.SN {
		t.Fatalf("round trip %+v vs %+v", got, h)
	}
	if len(got.SegLens) != 3 || got.SegLens[0] != 700 || got.SegLens[2] != 1400 {
		t.Fatalf("seg lens %v", got.SegLens)
	}
}

func TestWireHeaderErrors(t *testing.T) {
	if _, err := (&wireHeader{SN: maxWireSN + 1, SegLens: []int{1}}).encode(); err == nil {
		t.Error("oversized SN accepted")
	}
	if _, err := (&wireHeader{SN: 1}).encode(); err == nil {
		t.Error("empty header accepted")
	}
	if _, err := (&wireHeader{SN: 1, SegLens: []int{0}}).encode(); err == nil {
		t.Error("zero segment length accepted")
	}
	if _, err := decodeWireHeader([]byte{1, 2}); err == nil {
		t.Error("short buffer accepted")
	}
	if _, err := decodeWireHeader([]byte{0, 1, 0, 0}); err == nil {
		t.Error("zero length indicator accepted")
	}
}

func TestPDUWireHeader(t *testing.T) {
	s := mkSDU(1000, 0, 1)
	pdu := &PDU{SN: 9, Segments: []Segment{{SDU: s, Offset: 200, Len: 300}}}
	buf, err := pdu.WireHeader()
	if err != nil {
		t.Fatal(err)
	}
	h, err := decodeWireHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !h.FirstIsContinuation {
		t.Fatal("offset > 0 should mark continuation")
	}
	if !h.LastIsPartial {
		t.Fatal("non-final segment should mark partial")
	}
	if h.SN != 9 {
		t.Fatalf("SN %d", h.SN)
	}
}

func TestHeaderBytesModel(t *testing.T) {
	if headerBytes(1) != pduFixedHeader {
		t.Fatal("single-segment header cost")
	}
	if headerBytes(3) != pduFixedHeader+2*perExtraSegment {
		t.Fatal("multi-segment header cost")
	}
}

func TestPayloadBytes(t *testing.T) {
	s := mkSDU(1000, 0, 1)
	pdu := &PDU{Segments: []Segment{{SDU: s, Len: 300}, {SDU: s, Len: 200}}}
	if pdu.PayloadBytes() != 500 {
		t.Fatalf("payload %d", pdu.PayloadBytes())
	}
}

// Property: the modelled PDU size in buildPDU matches the actual wire
// header cost model for any segment structure it produces.
func TestPDUSizeMatchesModelProperty(t *testing.T) {
	prop := func(sizes []uint16, grantRaw uint16) bool {
		b := newTxBuf(TxBufConfig{Queues: 1, LimitSDUs: 64})
		for _, sz := range sizes {
			b.enqueue(mkSDU(int(sz%3000)+1, 0, 1))
		}
		grant := int(grantRaw%4000) + MinGrant
		pdu := b.buildPDU(grant, 0, nil)
		if pdu == nil {
			return true
		}
		if pdu.Bytes > grant {
			return false
		}
		return pdu.Bytes == headerBytes(len(pdu.Segments))+pdu.PayloadBytes()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestWireHeaderSegmentBoundary pins the 16-bit length-indicator
// boundary: a 65535-byte segment round-trips exactly, and 65536 is a
// hard encode error — never a silent truncation to the low 16 bits.
func TestWireHeaderSegmentBoundary(t *testing.T) {
	at := func(l int) (*wireHeader, []byte, error) {
		h := &wireHeader{SN: 7, SegLens: []int{l}}
		buf, err := h.encode()
		return h, buf, err
	}
	_, buf, err := at(MaxSegmentLen)
	if err != nil {
		t.Fatalf("65535-byte segment rejected: %v", err)
	}
	got, err := decodeWireHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.SegLens) != 1 || got.SegLens[0] != MaxSegmentLen {
		t.Fatalf("round-trip %v, want [65535]", got.SegLens)
	}
	if _, _, err := at(MaxSegmentLen + 1); err == nil {
		t.Fatal("65536-byte segment encoded; must hard-fail")
	}
	p := &PDU{SN: 1, Segments: []Segment{{Len: MaxSegmentLen + 1, Last: true}}}
	if _, err := p.WireHeader(); err == nil {
		t.Fatal("oversized PDU segment encoded; must hard-fail")
	}
}

// TestAppendWireHeaderReuse checks the append-style encoder against
// the allocating form and that a caller-owned buffer is reused.
func TestAppendWireHeaderReuse(t *testing.T) {
	p := &PDU{SN: 42, Segments: []Segment{
		{Offset: 10, Len: 100},
		{Offset: 0, Len: 65535, Last: true},
	}}
	want, err := p.WireHeader()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 64)
	got, err := p.AppendWireHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("append encode %x != %x", got, want)
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("AppendWireHeader reallocated despite sufficient capacity")
	}
}
