package rlc

import "testing"

// TestDequeCompactionInPlace pins the popFront compaction fix found
// by the allocfree pass: once the head passes the compaction
// threshold the live tail slides down inside the same backing array —
// no allocation — FIFO order survives, and the vacated slots are
// nil'd so popped SDUs stay collectable.
func TestDequeCompactionInPlace(t *testing.T) {
	const n = 200 // head must exceed 64 and pass half the slice
	var d deque
	for i := 0; i < n; i++ {
		d.pushBack(mkSDU(100, 0, uint16(i)))
	}
	base := &d.items[0]
	for i := 0; i < n; i++ {
		s := d.popFront()
		if s == nil || s.Flow.SrcPort != uint16(i) {
			t.Fatalf("pop %d: got %v, want flow %d", i, s, i)
		}
		if d.head == 0 && i > 64 && i < n-1 {
			// Compaction just ran: same backing array, and every slot
			// past the live region must be nil.
			if &d.items[:1][0] != base {
				t.Fatalf("pop %d: compaction reallocated the backing array", i)
			}
			for j := len(d.items); j < cap(d.items); j++ {
				if d.items[:cap(d.items)][j] != nil {
					t.Fatalf("pop %d: vacated slot %d still pins an SDU", i, j)
				}
			}
		}
	}
	if d.len() != 0 || d.popFront() != nil {
		t.Fatal("deque not empty after draining")
	}

	// Steady-state drain must not allocate: once the backing array has
	// grown to its cycle capacity, a full drain/refill (including the
	// compactions it triggers) is allocation-free.
	sdus := make([]*SDU, n)
	cycle := func() {
		for i := 0; i < n; i++ {
			sdus[i] = d.popFront()
		}
		for i := 0; i < n; i++ {
			d.pushBack(sdus[i])
		}
	}
	for i := 0; i < n; i++ {
		d.pushBack(mkSDU(100, 0, uint16(i)))
	}
	cycle() // reach the steady-state capacity before measuring
	cycle()
	allocs := testing.AllocsPerRun(10, cycle)
	if allocs != 0 {
		t.Errorf("drain/refill cycle allocates %.1f/op, want 0", allocs)
	}
}
