package rlc

import (
	"fmt"
	"sort"

	"outran/internal/mac"
	"outran/internal/sim"
)

// AM timer defaults matching the NS-3 LENA configuration the paper
// uses for its RLC AM case study (§6.3).
const (
	DefaultTPollRetransmit = 45 * sim.Millisecond
	DefaultTStatusProhibit = 10 * sim.Millisecond
	DefaultPollPDU         = 16
	DefaultMaxRetx         = 8
)

// StatusPDU is the AM receiver's ACK/NACK report.
type StatusPDU struct {
	AckSN uint32   // all SNs below this are acknowledged unless NACKed
	Nacks []uint32 // missing SNs below AckSN
}

// wireBytes is the modelled size of a status PDU.
func (s *StatusPDU) wireBytes() int { return 3 + 2*len(s.Nacks) }

// AMTx is the transmitting Acknowledged Mode entity. It maintains the
// three 3GPP priority levels: control PDUs first, retransmissions
// second, new data last (§4.4); OutRAN's MLFQ applies only inside the
// new-data queue.
type AMTx struct {
	eng *sim.Engine
	buf *txBuf
	// AssignSN as in UMTx.
	AssignSN func(*SDU)
	// OnDeliveryFail fires when a PDU is abandoned after exhausting
	// maxRetx retransmissions — the upper-layer delivery-failure signal
	// (3GPP: RLC indicates maxRetx to RRC, which declares radio link
	// failure). Before this hook the loss was visible only in the
	// private abandoned counter, i.e. the data vanished silently.
	OnDeliveryFail func(sn uint32, pdu *PDU)
	// OnRetx, when set, observes every retransmission the entity puts
	// on the air: the PDU's SN, its wire size, and how many times it
	// has now been retransmitted (the tracing layer's rlc_retx event).
	OnRetx func(sn uint32, bytes, attempt int)

	sn        uint32
	txed      map[uint32]*PDU // sent, unacknowledged
	retxQ     []uint32        // SNs awaiting retransmission, ascending
	retxCount map[uint32]int
	ctrlQ     []*StatusPDU // status PDUs to send back to the peer

	pollPDU       int
	sincePoll     int
	pollSN        uint32
	pollOut       bool
	tPollRetx     *sim.Timer
	maxRetx       int
	abandoned     uint64 // PDUs dropped after max retx
	retxBytesSent uint64
}

// NewAMTx builds an AM transmitter.
func NewAMTx(eng *sim.Engine, cfg TxBufConfig) *AMTx {
	t := &AMTx{
		eng:       eng,
		buf:       newTxBuf(cfg),
		txed:      make(map[uint32]*PDU),
		retxCount: make(map[uint32]int),
		pollPDU:   DefaultPollPDU,
		maxRetx:   DefaultMaxRetx,
	}
	t.tPollRetx = sim.NewTimer(eng, t.onPollRetransmit)
	return t
}

// Enqueue queues an SDU; false means tail-dropped.
func (t *AMTx) Enqueue(s *SDU) bool { return t.buf.enqueue(s) }

// EnqueueStatus queues a status PDU for the reverse direction (the
// peer's receiver status destined to the peer transmitter). Used by
// the cell to model the UE->eNB status path.
func (t *AMTx) EnqueueStatus(st *StatusPDU) { t.ctrlQ = append(t.ctrlQ, st) }

// Pull builds the transmissions for a MAC grant: control first, then
// retransmissions, then new data within the leftover opportunity.
// It can return multiple PDUs (retx PDUs keep their original SN).
func (t *AMTx) Pull(grant int) []*PDU { return t.PullAppend(nil, grant) }

// PullAppend is Pull appending into out, so a caller recycling
// transport-block storage (the ran arena) reuses slice capacity
// instead of paying one slice allocation per served grant. Ownership
// of the returned slice transfers to the caller either way.
func (t *AMTx) PullAppend(out []*PDU, grant int) []*PDU {
	// 1. Control queue.
	for len(t.ctrlQ) > 0 {
		st := t.ctrlQ[0]
		cost := st.wireBytes()
		if grant < cost {
			return out
		}
		grant -= cost
		t.ctrlQ = t.ctrlQ[1:]
		// Control PDUs are delivered via the status path, not as data
		// PDUs; they consume grant only.
	}
	// 2. Retransmission queue.
	for len(t.retxQ) > 0 {
		sn := t.retxQ[0]
		pdu := t.txed[sn]
		if pdu == nil {
			t.retxQ = t.retxQ[1:]
			continue
		}
		if grant < pdu.Bytes {
			return out
		}
		grant -= pdu.Bytes
		t.retxQ = t.retxQ[1:]
		t.retxCount[sn]++
		t.retxBytesSent += uint64(pdu.Bytes)
		if t.retxCount[sn] > t.maxRetx {
			delete(t.txed, sn)
			delete(t.retxCount, sn)
			t.abandoned++
			if t.OnDeliveryFail != nil {
				t.OnDeliveryFail(sn, pdu)
			}
			continue
		}
		re := *pdu
		re.Retx = true
		if t.OnRetx != nil {
			t.OnRetx(sn, pdu.Bytes, t.retxCount[sn])
		}
		out = append(out, &re)
	}
	// 3. New data.
	for grant >= MinGrant && !t.buf.empty() {
		pdu := t.buf.buildPDU(grant, t.sn, t.AssignSN)
		if pdu == nil {
			break
		}
		t.sn++
		grant -= pdu.Bytes
		t.sincePoll++
		if t.sincePoll >= t.pollPDU && !t.pollOut {
			pdu.Poll = true
			t.sincePoll = 0
			t.pollOut = true
			t.pollSN = pdu.SN
			t.tPollRetx.Start(DefaultTPollRetransmit)
		}
		t.txed[pdu.SN] = pdu
		out = append(out, pdu)
	}
	return out
}

// OnStatus processes a status report from the peer receiver.
func (t *AMTx) OnStatus(st *StatusPDU) {
	if t.pollOut && st.AckSN > t.pollSN {
		t.pollOut = false
		t.tPollRetx.Stop()
	}
	nacked := make(map[uint32]bool, len(st.Nacks))
	for _, sn := range st.Nacks {
		nacked[sn] = true
	}
	//outran:orderfree each acked SN is deleted independently; no visit-order effect
	for sn := range t.txed {
		if sn < st.AckSN && !nacked[sn] {
			delete(t.txed, sn)
			delete(t.retxCount, sn)
		}
	}
	inRetx := make(map[uint32]bool, len(t.retxQ))
	for _, sn := range t.retxQ {
		inRetx[sn] = true
	}
	for _, sn := range st.Nacks {
		if t.txed[sn] != nil && !inRetx[sn] {
			t.retxQ = append(t.retxQ, sn)
		}
	}
	sort.Slice(t.retxQ, func(i, j int) bool { return t.retxQ[i] < t.retxQ[j] })
}

func (t *AMTx) onPollRetransmit() {
	if !t.pollOut {
		return
	}
	// Re-request status by retransmitting the polled PDU. Skip the
	// append when the SN is already queued: a duplicate entry would
	// retransmit the PDU twice and double-count toward maxRetx.
	if t.txed[t.pollSN] != nil && !t.inRetxQ(t.pollSN) {
		t.retxQ = append(t.retxQ, t.pollSN)
		sort.Slice(t.retxQ, func(i, j int) bool { return t.retxQ[i] < t.retxQ[j] })
	}
	t.tPollRetx.Start(DefaultTPollRetransmit)
}

// inRetxQ reports whether sn is queued for retransmission (the queue
// is kept sorted ascending).
func (t *AMTx) inRetxQ(sn uint32) bool {
	i := sort.Search(len(t.retxQ), func(i int) bool { return t.retxQ[i] >= sn })
	return i < len(t.retxQ) && t.retxQ[i] == sn
}

// Status reports buffer state for the MAC BSR; control and retx
// backlog count toward the total so the MAC keeps granting. The
// returned PerPriority slice aliases entity-owned scratch and is valid
// only until the next Status call; copy to retain.
//
//outran:allocfree
//outran:scratch
func (t *AMTx) Status(now sim.Time) mac.BufferStatus {
	st := t.buf.status(now)
	extra := 0
	for _, st := range t.ctrlQ {
		extra += st.wireBytes()
	}
	for _, sn := range t.retxQ {
		if p := t.txed[sn]; p != nil {
			extra += p.Bytes
		}
	}
	st.TotalBytes += extra
	return st
}

// QueuedSDUs returns the buffered (new-data) SDU count.
func (t *AMTx) QueuedSDUs() int { return t.buf.count }

// BufferLimit returns the configured SDU capacity of the tx buffer.
func (t *AMTx) BufferLimit() int { return t.buf.cfg.LimitSDUs }

// Close cancels the entity's timers. Call when tearing the entity
// down (e.g. RRC re-establishment) so orphaned callbacks stop
// re-arming on the engine.
func (t *AMTx) Close() { t.tPollRetx.Stop() }

// Audit verifies the transmitter's structural invariants — the
// per-TTI probe of the runtime invariant monitor (internal/fault).
// Map-backed checks are written as commutative folds so the error
// reported (and therefore the monitor's report) is identical across
// same-seed runs regardless of map iteration order.
func (t *AMTx) Audit() error {
	if t.buf.count > t.buf.cfg.LimitSDUs {
		return fmt.Errorf("rlc: AM tx buffer holds %d SDUs, limit %d", t.buf.count, t.buf.cfg.LimitSDUs)
	}
	for i := 1; i < len(t.retxQ); i++ {
		if t.retxQ[i-1] >= t.retxQ[i] {
			return fmt.Errorf("rlc: retxQ not strictly ascending: %d then %d at index %d", t.retxQ[i-1], t.retxQ[i], i)
		}
	}
	maxTxed := int64(-1)
	//outran:orderfree max fold; commutative, no visit-order effect
	for sn := range t.txed {
		if int64(sn) > maxTxed {
			maxTxed = int64(sn)
		}
	}
	if maxTxed >= int64(t.sn) {
		return fmt.Errorf("rlc: unacked SN %d at or beyond next new SN %d", maxTxed, t.sn)
	}
	bad := int64(-1)
	//outran:orderfree min fold; commutative, no visit-order effect
	for sn, n := range t.retxCount {
		if (t.txed[sn] == nil || n < 1 || n > t.maxRetx) && (bad < 0 || int64(sn) < bad) {
			bad = int64(sn)
		}
	}
	if bad >= 0 {
		return fmt.Errorf("rlc: retxCount entry for SN %d orphaned or out of range", bad)
	}
	return nil
}

// Drops returns dropped-arrival count.
func (t *AMTx) Drops() int { return t.buf.dropCount() }

// Evictions returns queued SDUs pushed out by higher-priority arrivals.
func (t *AMTx) Evictions() int { return t.buf.evictionCount() }

// Abandoned returns PDUs dropped after exhausting retransmissions.
func (t *AMTx) Abandoned() uint64 { return t.abandoned }

// RetxBytes returns total retransmitted bytes (bandwidth waste metric).
func (t *AMTx) RetxBytes() uint64 { return t.retxBytesSent }

// AMRx is the receiving AM entity at the UE: PDUs are processed — and
// SDUs delivered — in SN order (held PDUs wait for retransmissions of
// the gap), with loss detection and status generation throttled by
// t-StatusProhibit.
type AMRx struct {
	eng     *sim.Engine
	Deliver func(*SDU)
	// SendStatus transmits a status PDU back to the AMTx (wired by the
	// cell through the uplink delay).
	SendStatus func(*StatusPDU)

	partials map[uint64]*partialSDU
	held     map[uint32]*PDU // received, waiting for in-order processing
	floor    uint32          // next SN to process
	highest  uint32          // highest SN received + 1
	nackTry  map[uint32]int
	prohibit *sim.Timer
	gapTimer *sim.Timer // re-sends status while a gap persists
	sduTimer *sim.Timer // reaps partials orphaned by abandoned PDUs
	pending  bool       // status wanted while prohibited

	delivered uint64
	discarded uint64
}

// gapStatusPeriod is how often the receiver re-reports a persistent
// gap (the t-Reassembly-driven status retrigger of 38.322).
const gapStatusPeriod = 40 * sim.Millisecond

// maxNackReports bounds how often a missing SN is NACKed before the
// receiver gives up and advances past it (the transmitter abandons
// PDUs after maxRetx anyway).
const maxNackReports = 16

// amPartialAge is the cleanup horizon for partials orphaned by a
// given-up SN. Generous: AM retransmissions legitimately take several
// status round trips.
const amPartialAge = 10 * DefaultTReassembly

// NewAMRx builds an AM receiver.
func NewAMRx(eng *sim.Engine, deliver func(*SDU), sendStatus func(*StatusPDU)) *AMRx {
	rx := &AMRx{
		eng:        eng,
		Deliver:    deliver,
		SendStatus: sendStatus,
		partials:   make(map[uint64]*partialSDU),
		held:       make(map[uint32]*PDU),
		nackTry:    make(map[uint32]int),
	}
	rx.prohibit = sim.NewTimer(eng, rx.onProhibitExpiry)
	rx.gapTimer = sim.NewTimer(eng, rx.onGapTimer)
	rx.sduTimer = sim.NewTimer(eng, rx.onSDUExpiry)
	return rx
}

func (r *AMRx) onGapTimer() {
	if r.gapExists() {
		r.maybeSendStatus()
		r.gapTimer.Start(gapStatusPeriod)
	}
}

// Receive processes one PDU that survived the air interface.
func (r *AMRx) Receive(pdu *PDU) {
	if pdu.SN < r.floor {
		// Duplicate of an SN already processed (or given up on).
		if pdu.Poll {
			r.maybeSendStatus()
		}
		return
	}
	if _, dup := r.held[pdu.SN]; !dup {
		r.held[pdu.SN] = pdu
		if pdu.SN >= r.highest {
			r.highest = pdu.SN + 1
		}
		r.drain()
	}
	if gap := r.gapExists(); pdu.Poll || gap {
		r.maybeSendStatus()
		if gap && !r.gapTimer.Running() {
			r.gapTimer.Start(gapStatusPeriod)
		}
	}
}

// drain processes held PDUs in SN order, advancing past SNs that have
// been given up on.
func (r *AMRx) drain() {
	for r.floor < r.highest {
		if pdu, ok := r.held[r.floor]; ok {
			delete(r.held, r.floor)
			delete(r.nackTry, r.floor)
			r.floor++
			r.processPDU(pdu)
			continue
		}
		if r.nackTry[r.floor] >= maxNackReports {
			delete(r.nackTry, r.floor)
			r.floor++
			continue
		}
		break
	}
}

func (r *AMRx) processPDU(pdu *PDU) {
	now := r.eng.Now()
	for _, seg := range pdu.Segments {
		p := r.partials[seg.SDU.ID]
		if p == nil {
			p = &partialSDU{sdu: seg.SDU}
			r.partials[seg.SDU.ID] = p
		}
		p.received += seg.Len
		p.lastSeen = now
		if p.received >= p.sdu.Size {
			delete(r.partials, seg.SDU.ID)
			r.delivered++
			if r.Deliver != nil {
				r.Deliver(p.sdu)
			}
		}
	}
	if len(r.partials) > 0 && !r.sduTimer.Running() {
		r.sduTimer.Start(amPartialAge)
	}
}

// onSDUExpiry reaps partials whose missing bytes were in PDUs the
// receiver has permanently given up on. The reassembly drain walks in
// SDU-id order so the discard sequence is stable across same-seed runs.
func (r *AMRx) onSDUExpiry() {
	now := r.eng.Now()
	for _, id := range sortedPartialIDs(r.partials) {
		if now-r.partials[id].lastSeen >= amPartialAge {
			delete(r.partials, id)
			r.discarded++
		}
	}
	if len(r.partials) > 0 {
		r.sduTimer.Start(amPartialAge)
	}
}

func (r *AMRx) gapExists() bool {
	r.drain()
	return r.floor < r.highest
}

func (r *AMRx) buildStatus() *StatusPDU {
	r.drain()
	st := &StatusPDU{AckSN: r.highest}
	for sn := r.floor; sn < r.highest; sn++ {
		if _, ok := r.held[sn]; !ok {
			st.Nacks = append(st.Nacks, sn)
			r.nackTry[sn]++
		}
	}
	return st
}

func (r *AMRx) maybeSendStatus() {
	if r.prohibit.Running() {
		r.pending = true
		return
	}
	if r.SendStatus != nil {
		r.SendStatus(r.buildStatus())
	}
	r.prohibit.Start(DefaultTStatusProhibit)
}

func (r *AMRx) onProhibitExpiry() {
	if r.pending {
		r.pending = false
		if r.SendStatus != nil {
			r.SendStatus(r.buildStatus())
		}
		r.prohibit.Start(DefaultTStatusProhibit)
	}
}

// Delivered returns SDUs delivered upward.
func (r *AMRx) Delivered() uint64 { return r.delivered }

// Discarded returns SDUs dropped because their missing bytes were in
// permanently given-up PDUs.
func (r *AMRx) Discarded() uint64 { return r.discarded }

// Close cancels the entity's timers (teardown; see AMTx.Close).
func (r *AMRx) Close() {
	r.prohibit.Stop()
	r.gapTimer.Stop()
	r.sduTimer.Stop()
}

// Audit verifies the receiver's structural invariants (see
// AMTx.Audit for the determinism note on the fold style).
func (r *AMRx) Audit() error {
	if r.floor > r.highest {
		return fmt.Errorf("rlc: AM rx floor %d beyond highest %d", r.floor, r.highest)
	}
	if window := int64(r.highest) - int64(r.floor); int64(len(r.held)) > window {
		return fmt.Errorf("rlc: AM rx holds %d PDUs in a window of %d", len(r.held), window)
	}
	bad := int64(-1)
	//outran:orderfree min fold; commutative, no visit-order effect
	for sn := range r.held {
		if (sn < r.floor || sn >= r.highest) && (bad < 0 || int64(sn) < bad) {
			bad = int64(sn)
		}
	}
	if bad >= 0 {
		return fmt.Errorf("rlc: held PDU SN %d outside window [%d,%d)", bad, r.floor, r.highest)
	}
	return nil
}
