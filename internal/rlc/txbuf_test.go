package rlc

import (
	"testing"
	"testing/quick"

	"outran/internal/ip"
	"outran/internal/sim"
)

var nextID uint64

func mkSDU(size, prio int, flow uint16) *SDU {
	nextID++
	return &SDU{
		ID:       nextID,
		Size:     size,
		Priority: prio,
		Flow:     ip.FiveTuple{SrcPort: flow, Proto: ip.ProtoTCP},
		FlowSize: -1,
		PDCPSN:   1, // pre-assigned unless a test wants delayed SN
	}
}

func TestEnqueueTailDrop(t *testing.T) {
	b := newTxBuf(TxBufConfig{Queues: 1, LimitSDUs: 3})
	for i := 0; i < 3; i++ {
		if !b.enqueue(mkSDU(100, 0, 1)) {
			t.Fatal("early drop")
		}
	}
	if b.enqueue(mkSDU(100, 0, 1)) {
		t.Fatal("over-capacity enqueue accepted")
	}
	if b.dropCount() != 1 {
		t.Fatalf("drops %d", b.dropCount())
	}
}

func TestFIFOOrder(t *testing.T) {
	b := newTxBuf(TxBufConfig{Queues: 1, LimitSDUs: 10})
	first := mkSDU(100, 0, 1)
	second := mkSDU(100, 0, 2)
	b.enqueue(first)
	b.enqueue(second)
	pdu := b.buildPDU(500, 0, nil)
	if pdu == nil || len(pdu.Segments) != 2 {
		t.Fatalf("pdu %+v", pdu)
	}
	if pdu.Segments[0].SDU != first || pdu.Segments[1].SDU != second {
		t.Fatal("FIFO violated")
	}
}

func TestStrictPriorityDequeue(t *testing.T) {
	b := newTxBuf(TxBufConfig{Queues: 4, LimitSDUs: 10})
	low := mkSDU(100, 3, 1)
	high := mkSDU(100, 0, 2)
	b.enqueue(low)
	b.enqueue(high)
	pdu := b.buildPDU(150, 0, nil)
	if pdu.Segments[0].SDU != high {
		t.Fatal("high priority SDU not served first")
	}
}

func TestPriorityClamping(t *testing.T) {
	b := newTxBuf(TxBufConfig{Queues: 4, LimitSDUs: 10})
	s := mkSDU(100, 99, 1)
	b.enqueue(s)
	if s.Priority != 3 {
		t.Fatalf("priority %d not clamped to 3", s.Priority)
	}
	s2 := mkSDU(100, -1, 1)
	b.enqueue(s2)
	if s2.Priority != 0 {
		t.Fatal("negative priority not clamped")
	}
}

func TestSegmentationBudget(t *testing.T) {
	b := newTxBuf(TxBufConfig{Queues: 1, LimitSDUs: 10})
	b.enqueue(mkSDU(1000, 0, 1))
	pdu := b.buildPDU(300, 0, nil)
	if pdu == nil || len(pdu.Segments) != 1 {
		t.Fatalf("pdu %+v", pdu)
	}
	seg := pdu.Segments[0]
	if seg.Last || seg.Offset != 0 {
		t.Fatalf("segment %+v", seg)
	}
	if pdu.Bytes > 300 {
		t.Fatalf("PDU %d bytes exceeds 300-byte grant", pdu.Bytes)
	}
	// Continuation.
	pdu2 := b.buildPDU(2000, 1, nil)
	seg2 := pdu2.Segments[0]
	if seg2.Offset != seg.Len || !seg2.Last {
		t.Fatalf("continuation %+v", seg2)
	}
	if seg.Len+seg2.Len != 1000 {
		t.Fatalf("segments cover %d bytes", seg.Len+seg2.Len)
	}
}

func TestTinyGrantRejected(t *testing.T) {
	b := newTxBuf(TxBufConfig{Queues: 1, LimitSDUs: 10})
	b.enqueue(mkSDU(1000, 0, 1))
	if pdu := b.buildPDU(MinGrant-1, 0, nil); pdu != nil {
		t.Fatal("sub-minimum grant produced a PDU")
	}
	if pdu := b.buildPDU(0, 0, nil); pdu != nil {
		t.Fatal("zero grant produced a PDU")
	}
}

func TestEmptyBufferNoPDU(t *testing.T) {
	b := newTxBuf(TxBufConfig{Queues: 1, LimitSDUs: 10})
	if b.buildPDU(1000, 0, nil) != nil {
		t.Fatal("PDU from empty buffer")
	}
}

func TestSegmentPromotionWireOrder(t *testing.T) {
	b := newTxBuf(TxBufConfig{Queues: 4, LimitSDUs: 10, SegmentPromotion: true})
	long := mkSDU(1000, 3, 1)
	b.enqueue(long)
	pdu := b.buildPDU(300, 0, nil)
	if pdu == nil || pdu.Segments[0].SDU != long {
		t.Fatal("setup failed")
	}
	// A new high-priority SDU arrives; promotion must still continue
	// the segmented SDU first.
	short := mkSDU(100, 0, 2)
	b.enqueue(short)
	pdu2 := b.buildPDU(2000, 1, nil)
	if pdu2.Segments[0].SDU != long || !pdu2.Segments[0].Last {
		t.Fatal("promoted segment not continued first")
	}
	if pdu2.Segments[1].SDU != short {
		t.Fatal("short SDU should follow the promoted remainder")
	}
}

func TestNoPromotionLeavesRemainderInPlace(t *testing.T) {
	b := newTxBuf(TxBufConfig{Queues: 4, LimitSDUs: 10, SegmentPromotion: false})
	long := mkSDU(1000, 3, 1)
	b.enqueue(long)
	b.buildPDU(300, 0, nil)
	short := mkSDU(100, 0, 2)
	b.enqueue(short)
	pdu := b.buildPDU(2000, 1, nil)
	if pdu.Segments[0].SDU != short {
		t.Fatal("without promotion the P1 SDU should pre-empt the remainder")
	}
	if pdu.Segments[1].SDU != long {
		t.Fatal("remainder lost")
	}
}

func TestPromotionDoesNotRaiseReportedPriority(t *testing.T) {
	// Regression for the inter-user inversion: a promoted long-flow
	// segment must not make the user look like a P1 user in the BSR.
	b := newTxBuf(TxBufConfig{Queues: 4, LimitSDUs: 10, SegmentPromotion: true})
	long := mkSDU(1000, 3, 1)
	b.enqueue(long)
	b.buildPDU(300, 0, nil) // leaves a promoted remainder
	st := b.status(0)
	if st.PerPriority[0] != 0 {
		t.Fatalf("promoted segment reported as P1 bytes: %v", st.PerPriority)
	}
	if st.PerPriority[3] != long.Remaining() {
		t.Fatalf("remainder not reported under original priority: %v", st.PerPriority)
	}
	if st.TopPriority() != 3 {
		t.Fatalf("TopPriority %d, want 3", st.TopPriority())
	}
}

func TestStatusAccounting(t *testing.T) {
	b := newTxBuf(TxBufConfig{Queues: 4, LimitSDUs: 10})
	b.enqueue(mkSDU(100, 0, 1))
	b.enqueue(mkSDU(200, 2, 2))
	st := b.status(0)
	if st.TotalBytes != 300 {
		t.Fatalf("total %d", st.TotalBytes)
	}
	if st.PerPriority[0] != 100 || st.PerPriority[2] != 200 {
		t.Fatalf("per-priority %v", st.PerPriority)
	}
	if st.TopPriority() != 0 {
		t.Fatalf("top priority %d", st.TopPriority())
	}
}

func TestOracleMinRemaining(t *testing.T) {
	b := newTxBuf(TxBufConfig{Queues: 1, LimitSDUs: 20})
	s1 := mkSDU(1000, 0, 1)
	s1.FlowSize = 50000
	s2 := mkSDU(1000, 0, 2)
	s2.FlowSize = 8000
	b.enqueue(s1)
	b.enqueue(s2)
	st := b.status(0)
	if st.OracleMinRemaining != 8000 {
		t.Fatalf("oracle remaining %d, want 8000", st.OracleMinRemaining)
	}
	// Serving flow 1 reduces its remaining.
	b.buildPDU(1002, 0, nil) // drains s1 fully
	st = b.status(0)
	if st.OracleMinRemaining != 8000 {
		t.Fatalf("oracle remaining %d after drain", st.OracleMinRemaining)
	}
}

func TestQoSTracking(t *testing.T) {
	b := newTxBuf(TxBufConfig{Queues: 1, LimitSDUs: 20})
	q := mkSDU(500, 0, 1)
	q.QoS = true
	q.DelayBudget = 50 * sim.Millisecond
	q.Arrival = 7 * sim.Millisecond
	b.enqueue(mkSDU(500, 0, 2))
	b.enqueue(q)
	st := b.status(10 * sim.Millisecond)
	if st.QoSBytes != 500 {
		t.Fatalf("QoS bytes %d", st.QoSBytes)
	}
	if st.QoSHOLArrival != 7*sim.Millisecond || st.QoSDelayBudget != 50*sim.Millisecond {
		t.Fatalf("QoS HOL %v budget %v", st.QoSHOLArrival, st.QoSDelayBudget)
	}
}

func TestDelayedSNAssignment(t *testing.T) {
	b := newTxBuf(TxBufConfig{Queues: 1, LimitSDUs: 10})
	s := mkSDU(100, 0, 1)
	s.PDCPSN = SNUnassigned
	b.enqueue(s)
	assigned := 0
	b.buildPDU(200, 0, func(x *SDU) {
		assigned++
		x.PDCPSN = 42
	})
	if assigned != 1 || s.PDCPSN != 42 {
		t.Fatalf("assigned=%d sn=%d", assigned, s.PDCPSN)
	}
}

// Property: bytes accounting stays consistent across arbitrary
// enqueue/pull interleavings — total bytes equals the sum of SDU
// remainders and per-priority counts are non-negative.
func TestTxBufAccountingProperty(t *testing.T) {
	prop := func(ops []uint16, promo bool) bool {
		b := newTxBuf(TxBufConfig{Queues: 4, LimitSDUs: 64, SegmentPromotion: promo})
		var live []*SDU
		for _, op := range ops {
			if op%3 != 0 {
				s := mkSDU(int(op%1900)+10, int(op%4), uint16(op%5))
				if b.enqueue(s) {
					live = append(live, s)
				}
			} else {
				b.buildPDU(int(op%700)+MinGrant, 0, nil)
			}
			sum := 0
			for _, s := range live {
				if s.evicted {
					continue
				}
				sum += s.Remaining()
			}
			if sum != b.bytes {
				return false
			}
			perSum := 0
			for _, v := range b.prioBytes {
				if v < 0 {
					return false
				}
				perSum += v
			}
			if perSum != b.bytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPushOutPriorityInversionAvoided(t *testing.T) {
	// Full buffer of low-priority bytes must not tail-drop a
	// high-priority arrival: the newest low-priority SDU is evicted.
	b := newTxBuf(TxBufConfig{Queues: 4, LimitSDUs: 3})
	l1 := mkSDU(100, 3, 1)
	l2 := mkSDU(100, 3, 1)
	l3 := mkSDU(100, 3, 1)
	b.enqueue(l1)
	b.enqueue(l2)
	b.enqueue(l3)
	hi := mkSDU(100, 0, 2)
	if !b.enqueue(hi) {
		t.Fatal("high-priority arrival dropped despite evictable victims")
	}
	if b.evictionCount() != 1 {
		t.Fatalf("evictions %d", b.evictionCount())
	}
	if !l3.evicted || l1.evicted || l2.evicted {
		t.Fatal("wrong victim: the newest low-priority SDU should go")
	}
	if b.count != 3 || b.bytes != 300 {
		t.Fatalf("accounting off: count=%d bytes=%d", b.count, b.bytes)
	}
	// Equal or higher-priority arrivals still tail-drop.
	lo := mkSDU(100, 3, 3)
	if b.enqueue(lo) {
		t.Fatal("low-priority arrival must not evict anything")
	}
	if b.dropCount() != 1 {
		t.Fatalf("drops %d", b.dropCount())
	}
}

func TestPushOutSkipsInServiceSDU(t *testing.T) {
	b := newTxBuf(TxBufConfig{Queues: 2, LimitSDUs: 1, SegmentPromotion: false})
	long := mkSDU(1000, 1, 1)
	b.enqueue(long)
	b.buildPDU(300, 0, nil) // long is now partially sent
	hi := mkSDU(100, 0, 2)
	if b.enqueue(hi) {
		t.Fatal("in-service SDU was evicted")
	}
}

func TestStatusFlowIterationDeterministic(t *testing.T) {
	// status() walks the b.flows map to compute OracleMinRemaining.
	// Map iteration order varies between otherwise identical map
	// instances, so replaying the exact same concurrent-arrival
	// workload against fresh buffers must yield identical status
	// sequences — the min fold must not leak visit order.
	type step struct {
		total, min int64
		qos        int
	}
	replay := func() []step {
		b := newTxBuf(TxBufConfig{Queues: 4, LimitSDUs: 512})
		id := uint64(0)
		mk := func(size int, prio int, flow uint16, flowSize int64) *SDU {
			id++
			return &SDU{
				ID: id, Size: size, Priority: prio,
				Flow:     ip.FiveTuple{SrcPort: flow, DstPort: 1000 + flow, Proto: ip.ProtoTCP},
				FlowSize: flowSize, PDCPSN: 1,
			}
		}
		// 32 flows arriving interleaved: each round delivers one SDU
		// for every flow, modelling concurrent arrivals.
		var trace []step
		for round := 0; round < 8; round++ {
			for f := uint16(0); f < 32; f++ {
				fs := int64(3000 + 500*int64(f))
				b.enqueue(mk(400, int(f)%4, f, fs))
			}
			st := b.status(sim.Time(round))
			trace = append(trace, step{int64(st.TotalBytes), st.OracleMinRemaining, st.QoSBytes})
			// Drain a PDU between arrival bursts so flows empty and the
			// flow table churns (entries deleted mid-workload).
			if pdu := b.buildPDU(1500, uint32(round), nil); pdu == nil {
				t.Fatal("expected a PDU while backlogged")
			}
			st = b.status(sim.Time(round))
			trace = append(trace, step{int64(st.TotalBytes), st.OracleMinRemaining, st.QoSBytes})
		}
		// Full drain, sampling status throughout.
		for sn := uint32(100); !b.empty(); sn++ {
			if pdu := b.buildPDU(4000, sn, nil); pdu == nil {
				break
			}
			st := b.status(0)
			trace = append(trace, step{int64(st.TotalBytes), st.OracleMinRemaining, st.QoSBytes})
		}
		return trace
	}
	first := replay()
	if len(first) == 0 {
		t.Fatal("empty trace")
	}
	for trial := 1; trial < 8; trial++ {
		again := replay()
		if len(again) != len(first) {
			t.Fatalf("trial %d: trace length %d, want %d", trial, len(again), len(first))
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("trial %d: status diverges at step %d: %+v vs %+v", trial, i, first[i], again[i])
			}
		}
	}
}

func TestOracleMinRemainingInsertionOrderInvariant(t *testing.T) {
	// The min over per-flow remaining bytes is a commutative fold (the
	// //outran:orderfree justification on the status() walk): any
	// arrival interleaving of the same flow set must report the same
	// OracleMinRemaining.
	build := func(order []uint16) *txBuf {
		b := newTxBuf(TxBufConfig{Queues: 1, LimitSDUs: 128})
		id := uint64(0)
		for _, f := range order {
			id++
			b.enqueue(&SDU{
				ID: id, Size: 500,
				Flow:     ip.FiveTuple{SrcPort: f, Proto: ip.ProtoTCP},
				FlowSize: int64(2000 + 100*int64(f)),
				PDCPSN:   1,
			})
		}
		return b
	}
	fwd := []uint16{1, 2, 3, 4, 5, 6, 7, 8}
	rev := []uint16{8, 7, 6, 5, 4, 3, 2, 1}
	mixed := []uint16{5, 2, 8, 1, 7, 4, 6, 3}
	want := build(fwd).status(0).OracleMinRemaining
	if want <= 0 {
		t.Fatalf("oracle remaining %d, want positive", want)
	}
	for i, order := range [][]uint16{rev, mixed} {
		if got := build(order).status(0).OracleMinRemaining; got != want {
			t.Fatalf("order %d: oracle remaining %d, want %d", i, got, want)
		}
	}
}

// TestBuildPDUSplitsAtSegmentCap is the regression test for segments
// the wire header cannot represent: a grant larger than 65535 bytes
// must split the SDU at the 16-bit boundary and leave the remainder
// queued, and every emitted segment must wire-encode cleanly.
func TestBuildPDUSplitsAtSegmentCap(t *testing.T) {
	b := newTxBuf(TxBufConfig{Queues: 1})
	sduSize := MaxSegmentLen + 1000
	b.enqueue(mkSDU(sduSize, 0, 1))
	pdu := b.buildPDU(sduSize+64, 0, nil)
	if pdu == nil {
		t.Fatal("no PDU")
	}
	if len(pdu.Segments) != 1 || pdu.Segments[0].Len != MaxSegmentLen {
		t.Fatalf("segment len %d, want cap %d", pdu.Segments[0].Len, MaxSegmentLen)
	}
	if pdu.Segments[0].Last {
		t.Fatal("capped segment marked Last")
	}
	if _, err := pdu.WireHeader(); err != nil {
		t.Fatalf("capped segment does not encode: %v", err)
	}
	rest := b.buildPDU(4096, 1, nil)
	if rest == nil || rest.Segments[0].Offset != MaxSegmentLen {
		t.Fatalf("remainder not continued from %d: %+v", MaxSegmentLen, rest)
	}
	if b.bytes != sduSize-MaxSegmentLen-rest.Segments[0].Len {
		t.Fatalf("byte accounting off: %d left", b.bytes)
	}
}
