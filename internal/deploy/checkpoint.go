package deploy

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"outran/internal/obs"
	"outran/internal/ran"
	"outran/internal/sim"
	"outran/internal/snapshot"
)

// CheckpointConfig enables periodic deployment checkpointing: every
// Every of simulation time, each cell's complete state is written
// atomically (temp file + rename) to Dir, and only the newest Retain
// files per cell are kept. A checkpointed run can be killed and
// resumed (Resume, outran-sim -resume) or survive scripted worker
// crashes (Config.Crashes) with byte-identical results.
type CheckpointConfig struct {
	// Dir is the checkpoint directory; empty disables checkpointing.
	Dir string
	// Every is the checkpoint period in simulation time (default 1 s).
	Every sim.Time
	// Retain bounds how many checkpoint files each cell keeps (default
	// 2 — the latest plus one behind, so a crash mid-write of the
	// newest never strands the deployment without a usable file).
	Retain int
}

// Enabled reports whether checkpointing is on.
func (cc CheckpointConfig) Enabled() bool { return cc.Dir != "" }

// WithDefaults fills the zero fields with the documented defaults.
func (cc CheckpointConfig) WithDefaults() CheckpointConfig {
	if cc.Every <= 0 {
		cc.Every = sim.Second
	}
	if cc.Retain <= 0 {
		cc.Retain = 2
	}
	return cc
}

func (cc CheckpointConfig) withDefaults() CheckpointConfig { return cc.WithDefaults() }

// Times returns the checkpoint instants in (0, total), ascending.
func (cc CheckpointConfig) Times(total sim.Time) []sim.Time {
	var out []sim.Time
	for t := cc.Every; t < total; t += cc.Every {
		out = append(out, t)
	}
	return out
}

func (cc CheckpointConfig) times(total sim.Time) []sim.Time { return cc.Times(total) }

// The checkpoint archive carries the cell's own sections (see
// ran.Cell.SnapshotTo) plus one deployment section: the cell's trace
// offset and the deployment-level handover counters as of the write.
const (
	deploySection = "deploy"
	tagDeploy     = 0x4d01
)

// CheckpointMeta is the deployment section of a checkpoint file.
type CheckpointMeta struct {
	// At is the simulation instant the checkpoint was taken.
	At sim.Time
	// TraceOffset is the cell's JSONL trace size in bytes at the
	// checkpoint, or -1 when the cell was not tracing. A resumed run
	// truncates the trace file back to it so the continuation appends
	// the exact suffix the uninterrupted run would have written.
	TraceOffset int64
	// HandoversApplied and FlowsTransferred are the deployment-level
	// counters at the checkpoint (identical across cells at a barrier).
	HandoversApplied int
	FlowsTransferred int
	// KPIOffset is the KPI JSONL stream size in bytes at the
	// checkpoint, or -1 when the run emitted no KPI stream. KPI
	// sampling happens before checkpoint writes at a shared barrier, so
	// the offset includes the barrier's own records; a resumed run
	// truncates the stream back to it and re-emits the exact suffix.
	KPIOffset int64
}

// ReadCheckpointMeta decodes the deployment section of a checkpoint.
func ReadCheckpointMeta(a *snapshot.Archive) (CheckpointMeta, error) {
	d, err := a.Section(deploySection)
	if err != nil {
		return CheckpointMeta{}, fmt.Errorf("deploy: checkpoint meta: %w", err)
	}
	d.Expect(tagDeploy)
	m := CheckpointMeta{
		At:               sim.Time(d.I64()),
		TraceOffset:      d.I64(),
		HandoversApplied: d.Int(),
		FlowsTransferred: d.Int(),
		KPIOffset:        d.I64(),
	}
	if err := d.Err(); err != nil {
		return CheckpointMeta{}, fmt.Errorf("deploy: checkpoint meta: %w", err)
	}
	if d.Remaining() != 0 {
		return CheckpointMeta{}, fmt.Errorf("deploy: checkpoint meta: %w: %d trailing bytes",
			snapshot.ErrCorrupt, d.Remaining())
	}
	return m, nil
}

// Checkpointer writes one cell's periodic checkpoints and surfaces
// the checkpoint cadence, latest snapshot size and write count as
// registry instruments in the cell's RunSummary. It is the shared
// building block of the deployment runtime and outran-sim's
// single-cell -checkpoint-every path.
type Checkpointer struct {
	dir    string
	cell   int
	every  sim.Time
	retain int

	c           *ran.Cell
	writes      *obs.Counter
	bytes       *obs.Gauge
	traceOffset func() int64 // nil when the cell is not tracing

	files []string // retained checkpoint paths, oldest first
}

// NewCheckpointer builds a checkpointer for one cell index.
func NewCheckpointer(cc CheckpointConfig, cell int) *Checkpointer {
	cc = cc.WithDefaults()
	return &Checkpointer{dir: cc.Dir, cell: cell, every: cc.Every, retain: cc.Retain}
}

// Attach binds the checkpointer to its cell, registers the checkpoint
// instruments, creates the checkpoint directory, and scans it for
// files left by an earlier incarnation (so retention keeps counting
// across a resume). traceOffset, when non-nil, reports the cell's
// absolute trace size in bytes (obs.JSONLSink.BytesWritten plus any
// resumed-from base).
func (ck *Checkpointer) Attach(c *ran.Cell, traceOffset func() int64) error {
	ck.c = c
	ck.traceOffset = traceOffset
	c.Reg.Gauge("checkpoint_period_s").Set(ck.every.Seconds())
	ck.writes = c.Reg.Counter("checkpoint_writes")
	ck.bytes = c.Reg.Gauge("checkpoint_bytes")
	if err := os.MkdirAll(ck.dir, 0o755); err != nil {
		return fmt.Errorf("deploy: checkpoint dir: %w", err)
	}
	files, err := checkpointFiles(ck.dir, ck.cell)
	if err != nil {
		return err
	}
	ck.files = files
	return nil
}

// Write takes one checkpoint at the current simulation time. The
// write counter is bumped BEFORE encoding, so the k-th checkpoint
// records k writes and a run resumed from it reaches the same final
// count as an uninterrupted one. The size gauge is set after the
// write to the finished file's size; restores overwrite it the same
// way (Restore), so it always reads "bytes of the latest checkpoint
// in this cell's lineage" in every incarnation.
//
// kpiOff is the KPI stream's byte offset as of this barrier, or -1
// when the run emits no KPI stream. It is passed by value (not read
// through a callback like the trace offset) because the KPI stream is
// shared by all cells and must be captured once, before the per-cell
// checkpoint writes fan out.
func (ck *Checkpointer) Write(handovers, flowsTransferred int, kpiOff int64) error {
	now := ck.c.Eng.Now()
	ck.writes.Inc()
	var b snapshot.Builder
	if err := ck.c.SnapshotTo(&b); err != nil {
		return fmt.Errorf("deploy: checkpoint cell %d at %v: %w", ck.cell, now, err)
	}
	var e snapshot.Encoder
	e.Mark(tagDeploy)
	e.I64(int64(now))
	off := int64(-1)
	if ck.traceOffset != nil {
		off = ck.traceOffset()
	}
	e.I64(off)
	e.Int(handovers)
	e.Int(flowsTransferred)
	e.I64(kpiOff)
	b.Add(deploySection, &e)

	data := b.Bytes()
	path := CheckpointPath(ck.dir, ck.cell, now)
	if err := snapshot.WriteFileAtomic(path, data); err != nil {
		return fmt.Errorf("deploy: checkpoint cell %d at %v: %w", ck.cell, now, err)
	}
	ck.bytes.Set(float64(len(data)))
	// Emitted after the offset capture above, so a restore that
	// truncates back to the offset re-emits exactly this event.
	ck.c.Tracer().Emit(obs.Event{T: now, Type: obs.EvCheckpoint, Size: int64(len(data)), Sent: int64(ck.writes.Value())})
	// A rewrite of an instant already on disk (a resumed run replaying
	// a barrier a pre-crash incarnation had written) must not count the
	// file toward retention twice: a duplicate list entry would make the
	// positional prune below os.Remove a path a later entry still
	// references, silently shrinking the on-disk set under Retain.
	for i, f := range ck.files {
		if f == path {
			ck.files = append(ck.files[:i], ck.files[i+1:]...)
			break
		}
	}
	ck.files = append(ck.files, path)
	for len(ck.files) > ck.retain {
		if err := os.Remove(ck.files[0]); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("deploy: pruning checkpoint: %w", err)
		}
		ck.files = ck.files[1:]
	}
	return nil
}

// Restore rebuilds the cell from its checkpoint at the given instant:
// fresh construction from cfg (which must match the snapshotted run's
// — the archive's config fingerprint is cross-checked), trace file
// truncated back to the checkpoint's offset (tracePath "" = not
// tracing), snapshot overlaid, checkpointer bound to the result. The
// restored cell continues byte-identically to the original.
func (ck *Checkpointer) Restore(cfg ran.Config, at sim.Time, tracePath string) (*ran.Cell, *TraceFile, CheckpointMeta, error) {
	path := CheckpointPath(ck.dir, ck.cell, at)
	a, err := snapshot.ReadFile(path)
	if err != nil {
		return nil, nil, CheckpointMeta{}, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return nil, nil, CheckpointMeta{}, err
	}
	meta, err := ReadCheckpointMeta(a)
	if err != nil {
		return nil, nil, CheckpointMeta{}, err
	}
	if meta.At != at {
		return nil, nil, CheckpointMeta{}, fmt.Errorf("deploy: %s: checkpoint taken at %v, filename says %v", path, meta.At, at)
	}
	c, err := ran.NewCell(cfg)
	if err != nil {
		return nil, nil, CheckpointMeta{}, err
	}
	var tf *TraceFile
	var off func() int64
	if tracePath != "" {
		tf, err = ResumeTraceFile(tracePath, meta.TraceOffset)
		if err != nil {
			return nil, nil, CheckpointMeta{}, err
		}
		c.SetTracerResumed(tf.Tracer())
		off = tf.Offset
	}
	if err := ck.Attach(c, off); err != nil {
		return nil, tf, CheckpointMeta{}, err
	}
	// Files newer than the resume instant are stale: this lineage never
	// produced them (the deployment resumes every cell from the oldest
	// shared barrier, so a cell that was "a file ahead" at kill time
	// still carries the newer checkpoints). They must be removed, not
	// counted toward Retain — the resumed run re-writes those instants.
	if err := ck.pruneNewerThan(at); err != nil {
		return nil, tf, CheckpointMeta{}, err
	}
	if err := c.RestoreSnapshot(a); err != nil {
		return nil, tf, CheckpointMeta{}, err
	}
	// The metrics section carried the gauge as of one write earlier;
	// re-anchor it to the file actually restored from, which is the
	// value the uninterrupted run holds at this instant.
	ck.bytes.Set(float64(st.Size()))
	// Re-emit the restored-from checkpoint's trace event: the trace
	// was truncated to the offset captured just before the original
	// emission, and the write counter came back from the snapshot.
	c.Tracer().Emit(obs.Event{T: meta.At, Type: obs.EvCheckpoint, Size: st.Size(), Sent: int64(ck.writes.Value())})
	return c, tf, meta, nil
}

// pruneNewerThan deletes this cell's checkpoint files taken after the
// given instant and drops them from the retention list (which Attach
// filled oldest-first; removing a suffix keeps it ordered).
func (ck *Checkpointer) pruneNewerThan(at sim.Time) error {
	kept := ck.files[:0]
	for _, f := range ck.files {
		t, err := checkpointTime(f)
		if err != nil {
			return err
		}
		if t > at {
			if err := os.Remove(f); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("deploy: pruning stale checkpoint: %w", err)
			}
			continue
		}
		kept = append(kept, f)
	}
	ck.files = kept
	return nil
}

// CheckpointPath names cell's checkpoint at the given instant. The
// nanosecond timestamp is zero-padded so lexical order is time order.
func CheckpointPath(dir string, cell int, at sim.Time) string {
	return filepath.Join(dir, fmt.Sprintf("cell%d-%019d.ckpt", cell, int64(at)))
}

// checkpointFiles lists cell's checkpoint files in dir, oldest first.
func checkpointFiles(dir string, cell int) ([]string, error) {
	pattern := filepath.Join(dir, fmt.Sprintf("cell%d-*.ckpt", cell))
	files, err := filepath.Glob(pattern)
	if err != nil {
		return nil, fmt.Errorf("deploy: listing checkpoints: %w", err)
	}
	sort.Strings(files)
	return files, nil
}

// LatestCheckpoint returns the newest checkpoint file for the cell
// and its timestamp. A missing checkpoint is an error: the caller
// asked to resume a run that never checkpointed this cell.
func LatestCheckpoint(dir string, cell int) (string, sim.Time, error) {
	files, err := checkpointFiles(dir, cell)
	if err != nil {
		return "", 0, err
	}
	if len(files) == 0 {
		return "", 0, fmt.Errorf("deploy: no checkpoint for cell %d in %s", cell, dir)
	}
	path := files[len(files)-1]
	at, err := checkpointTime(path)
	if err != nil {
		return "", 0, err
	}
	return path, at, nil
}

// checkpointTime parses the timestamp out of a checkpoint filename.
func checkpointTime(path string) (sim.Time, error) {
	base := filepath.Base(path)
	var cell int
	var ns int64
	if _, err := fmt.Sscanf(base, "cell%d-%d.ckpt", &cell, &ns); err != nil {
		return 0, fmt.Errorf("deploy: malformed checkpoint name %q: %w", base, err)
	}
	return sim.Time(ns), nil
}

// TraceFile is a runtime-owned JSONL trace file — the form of tracing
// that supports crash recovery, because the runtime can truncate the
// file back to a checkpoint's offset and append the replayed suffix.
type TraceFile struct {
	path   string
	file   *os.File
	sink   *obs.JSONLSink
	tracer *obs.Tracer
	base   int64 // bytes present before this sink's writes
}

// OpenTraceFile starts a fresh trace file.
func OpenTraceFile(path string) (*TraceFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("deploy: trace: %w", err)
	}
	sink := obs.NewJSONLSink(f)
	return &TraceFile{path: path, file: f, sink: sink, tracer: obs.NewTracer(sink)}, nil
}

// ResumeTraceFile truncates the trace file back to off and appends
// from there — the resumed run re-emits exactly the suffix the
// uninterrupted run would have written.
func ResumeTraceFile(path string, off int64) (*TraceFile, error) {
	if off < 0 {
		return nil, fmt.Errorf("deploy: trace %s: checkpoint has no trace offset (original run was not tracing)", path)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("deploy: trace: %w", err)
	}
	if err := f.Truncate(off); err != nil {
		f.Close()
		return nil, fmt.Errorf("deploy: truncating trace %s to %d: %w", path, off, err)
	}
	sink := obs.NewJSONLSink(f)
	return &TraceFile{path: path, file: f, sink: sink, tracer: obs.NewTracer(sink), base: off}, nil
}

// Tracer returns the tracer bound to this file (install via
// ran.Harness.Tracer or ran.Cell.SetTracerResumed).
func (tf *TraceFile) Tracer() *obs.Tracer { return tf.tracer }

// Offset returns the absolute trace size in bytes (flushes first).
func (tf *TraceFile) Offset() int64 { return tf.base + tf.sink.BytesWritten() }

// Close flushes and closes the file.
func (tf *TraceFile) Close() error { return tf.sink.Close() }

// KPIFile is the runtime-owned KPI JSONL stream — TraceFile's sibling
// for live telemetry. One file serves the whole deployment (records
// carry the cell index), so checkpoints record its offset by value
// rather than through per-cell callbacks.
type KPIFile struct {
	sampler *obs.KPISampler
	base    int64 // bytes present before this sampler's writes
}

// OpenKPIFile starts a fresh KPI stream with the given sampling
// interval.
func OpenKPIFile(path string, every sim.Time) (*KPIFile, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("deploy: kpi: %w", err)
	}
	return &KPIFile{sampler: obs.NewKPISampler(f, every)}, nil
}

// ResumeKPIFile truncates the KPI stream back to off and appends from
// there — the resumed run re-emits exactly the suffix the
// uninterrupted run would have written.
func ResumeKPIFile(path string, every sim.Time, off int64) (*KPIFile, error) {
	if off < 0 {
		return nil, fmt.Errorf("deploy: kpi %s: checkpoint has no KPI offset (original run emitted no KPI stream)", path)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("deploy: kpi: %w", err)
	}
	if err := f.Truncate(off); err != nil {
		f.Close()
		return nil, fmt.Errorf("deploy: truncating kpi %s to %d: %w", path, off, err)
	}
	return &KPIFile{sampler: obs.NewKPISampler(f, every), base: off}, nil
}

// Emit appends one record to the stream.
func (kf *KPIFile) Emit(rec *obs.KPIRecord) { kf.sampler.Emit(rec) }

// Offset returns the absolute stream size in bytes (flushes first).
func (kf *KPIFile) Offset() int64 { return kf.base + kf.sampler.Offset() }

// Close flushes and closes the file.
func (kf *KPIFile) Close() error { return kf.sampler.Close() }
