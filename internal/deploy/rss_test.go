package deploy

import "testing"

// TestPeakRSSBytes: the budget checks divide by this number, so it
// must be positive on every platform (VmHWM on Linux, the runtime
// fallback elsewhere).
func TestPeakRSSBytes(t *testing.T) {
	if got := PeakRSSBytes(); got == 0 {
		t.Fatal("PeakRSSBytes() = 0")
	}
}
