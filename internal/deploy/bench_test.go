package deploy_test

import (
	"testing"

	"outran/internal/deploy"
	"outran/internal/ran"
	"outran/internal/sim"
	"outran/internal/workload"
)

// benchmarkDeployment measures one 4-cell deployment run at the given
// worker count. Compare:
//
//	go test -bench Deployment -benchtime 3x ./internal/deploy
//
// The acceptance target for this PR is >= 2.5x speedup for Workers4
// over Workers1 on a 4-core machine (the per-cell engines are fully
// independent, so the sweep is embarrassingly parallel; the remainder
// is pool overhead plus the serial aggregation fold).
func benchmarkDeployment(b *testing.B, workers int) {
	cfg := deploy.Config{
		Cells:   4,
		Workers: workers,
		Cell: ran.DefaultLTEConfig().
			WithTopology(10, 25).
			ForScheduler(ran.SchedOutRAN).
			WithWorkload(workload.PoissonSpec("lte", 0.6)),
		Window: 2 * sim.Second,
		Drain:  sim.Second,
		Seed:   42,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := deploy.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeploymentWorkers1(b *testing.B) { benchmarkDeployment(b, 1) }
func BenchmarkDeploymentWorkers4(b *testing.B) { benchmarkDeployment(b, 4) }
