package deploy

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestForEachErrorPropagation is the regression test for the silent
// error drop the pool used to have: a failing index must surface with
// the index wrapped in, deterministically the lowest failing index for
// any worker count, and the remaining indices must still run.
func TestForEachErrorPropagation(t *testing.T) {
	sentinel := errors.New("cell exploded")
	for _, workers := range []int{1, 3, 0} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var ran atomic.Int64
			err := ForEach(8, workers, func(i int) error {
				ran.Add(1)
				if i == 5 || i == 2 {
					return fmt.Errorf("worker %d: %w", i, sentinel)
				}
				return nil
			})
			if err == nil {
				t.Fatal("ForEach swallowed the error")
			}
			if !errors.Is(err, sentinel) {
				t.Fatalf("error chain lost the cause: %v", err)
			}
			// Lowest failing index wins, whatever order workers finish in.
			if want := "index 2: worker 2: cell exploded"; err.Error() != want {
				t.Fatalf("err = %q, want %q", err, want)
			}
			if got := ran.Load(); got != 8 {
				t.Fatalf("only %d of 8 indices ran; a failure must not cancel siblings", got)
			}
		})
	}
}

// TestForEachEmpty: n <= 0 is a no-op, not a hang or panic.
func TestForEachEmpty(t *testing.T) {
	called := false
	if err := ForEach(0, 4, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for n=0")
	}
}
