package deploy_test

import (
	"testing"

	"outran/internal/deploy"
	"outran/internal/pdcp"
	"outran/internal/ran"
	"outran/internal/sim"
	"outran/internal/workload"
)

// TestHandoverPreservesFlowState runs the §7 flow-state transfer
// between two real, live ran.Cells (not the pdcp-level round-trip of
// pdcp/handover_test.go): a long flow accumulates sent-bytes at the
// source until it has demoted below top MLFQ priority, the state is
// exported mid-run and imported at the target, and the target must see
// the same per-flow sent-bytes and the same demoted priority — a
// migrated elephant must not restart as a fresh P0 mouse.
func TestHandoverPreservesFlowState(t *testing.T) {
	cfg := ran.DefaultLTEConfig().
		WithTopology(2, 25).
		ForScheduler(ran.SchedOutRAN)
	src, err := ran.NewCell(cfg.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := ran.NewCell(cfg.WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := src.StartFlow(0, 2<<20, ran.FlowOptions{SkipRecord: true}); err != nil {
		t.Fatal(err)
	}

	const at = 150 * sim.Millisecond
	src.Run(at)
	dst.Run(at)

	tuples, err := src.UEFlows(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 {
		t.Fatalf("source UE 0 tracks %d flows, want 1", len(tuples))
	}
	tuple := tuples[0]
	sent, err := src.FlowSentBytes(0, tuple)
	if err != nil {
		t.Fatal(err)
	}
	if sent <= 10<<10 {
		t.Fatalf("flow sent only %d B by %v — below the first MLFQ demotion threshold, test can't bite", sent, at)
	}
	srcPrio, err := src.FlowPriority(0, tuple)
	if err != nil {
		t.Fatal(err)
	}
	if srcPrio == 0 {
		t.Fatalf("flow with %d B sent still at priority 0 at the source", sent)
	}

	blob, err := src.HandoverExport(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) != pdcp.FlowRecordLen*len(tuples) {
		t.Fatalf("export blob is %d B, want %d (= %d flows x %d B)",
			len(blob), pdcp.FlowRecordLen*len(tuples), len(tuples), pdcp.FlowRecordLen)
	}
	if err := dst.HandoverImport(0, blob); err != nil {
		t.Fatal(err)
	}

	gotSent, err := dst.FlowSentBytes(0, tuple)
	if err != nil {
		t.Fatal(err)
	}
	if gotSent != sent {
		t.Fatalf("target sees %d sent bytes, source sent %d", gotSent, sent)
	}
	gotPrio, err := dst.FlowPriority(0, tuple)
	if err != nil {
		t.Fatal(err)
	}
	if gotPrio != srcPrio {
		t.Fatalf("target classifies the flow at priority %d, source had %d", gotPrio, srcPrio)
	}

	// The migrated UE's traffic resumes at the target on the same
	// five-tuple and must complete there.
	conn, err := dst.AdoptConn(0, tuple)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	err = dst.StartFlow(0, 64<<10, ran.FlowOptions{
		Conn:       conn,
		SkipRecord: true,
		OnComplete: func(sim.Time) { done = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	dst.Run(at + 5*sim.Second)
	if !done {
		t.Fatal("continuation flow did not complete at the target cell")
	}
}

// TestDeploymentHandover drives the same §7 transfer through the
// deployment runtime's scripted path: a single long flow on cell 0's
// UE 0, a handover to cell 1 mid-run, and a recorded continuation flow
// at the target.
func TestDeploymentHandover(t *testing.T) {
	cfg := deploy.Config{
		Cells: 2,
		Cell: ran.DefaultLTEConfig().
			WithTopology(2, 25).
			ForScheduler(ran.SchedOutRAN),
		Window: 300 * sim.Millisecond,
		Drain:  5 * sim.Second,
		Seed:   11,
		PerCell: func(cell int, cfg ran.Config) ran.Config {
			if cell != 0 {
				return cfg
			}
			return cfg.WithWorkload(workload.Spec{
				Extra: []workload.FlowSpec{{Start: 10 * sim.Millisecond, UE: 0, Size: 1 << 20}},
			})
		},
		Handovers: []deploy.Handover{{
			At: 200 * sim.Millisecond, UE: 0, From: 0, To: 1, ContinueBytes: 64 << 10,
		}},
	}
	res, err := deploy.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.HandoversApplied != 1 {
		t.Fatalf("handovers applied = %d, want 1", res.Aggregate.HandoversApplied)
	}
	if res.Aggregate.FlowsTransferred != 1 {
		t.Fatalf("flows transferred = %d, want 1", res.Aggregate.FlowsTransferred)
	}
	// The target cell ran the recorded continuation flow.
	target := res.Cells[1].Summary.Counters
	if target.FlowsStarted != 1 || target.FlowsCompleted != 1 {
		t.Fatalf("target cell flows = %d started / %d completed, want 1/1",
			target.FlowsStarted, target.FlowsCompleted)
	}
	// And it sees the source's sent-bytes for the migrated tuple.
	tuples, err := res.Live[0].UEFlows(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 {
		t.Fatalf("source tracks %d flows, want 1", len(tuples))
	}
	got, err := res.Live[1].FlowSentBytes(0, tuples[0])
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 {
		t.Fatalf("target has no imported sent-bytes for the migrated flow")
	}
}
