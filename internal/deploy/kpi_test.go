package deploy_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"outran/internal/deploy"
	"outran/internal/fault"
	"outran/internal/obs"
	"outran/internal/sim"
)

const kpiCadence = 100 * sim.Millisecond

// kpiDeployment is smallDeployment with live KPI sampling into
// dir/kpi.jsonl at a 100 ms cadence.
func kpiDeployment(dir string, workers int) deploy.Config {
	cfg := smallDeployment(workers)
	cfg.Cell.KPIEvery = kpiCadence
	cfg.KPIPath = filepath.Join(dir, "kpi.jsonl")
	return cfg
}

func readKPIFile(t *testing.T, path string) ([]byte, []obs.KPIRecord) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("KPI stream is empty — the gate is vacuous")
	}
	recs, err := obs.ReadKPI(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return raw, recs
}

// TestKPIWorkerCountByteIdentity is the determinism gate for the KPI
// stream: 1 worker and 4 workers must write byte-identical files, and
// each instant must carry every cell in index order followed by one
// deployment roll-up.
func TestKPIWorkerCountByteIdentity(t *testing.T) {
	dir1, dir4 := t.TempDir(), t.TempDir()
	if _, err := deploy.Run(kpiDeployment(dir1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := deploy.Run(kpiDeployment(dir4, 4)); err != nil {
		t.Fatal(err)
	}
	raw1, recs := readKPIFile(t, filepath.Join(dir1, "kpi.jsonl"))
	raw4, _ := readKPIFile(t, filepath.Join(dir4, "kpi.jsonl"))
	if !bytes.Equal(raw1, raw4) {
		t.Fatalf("KPI streams differ between 1 and 4 workers (%d vs %d bytes)", len(raw1), len(raw4))
	}

	cfg := kpiDeployment(dir1, 1)
	perInstant := cfg.Cells + 1 // all cells + the roll-up
	if len(recs)%perInstant != 0 {
		t.Fatalf("%d records is not a multiple of %d (cells+rollup)", len(recs), perInstant)
	}
	// Horizon 700 ms at 100 ms cadence → 7 instants.
	if instants := len(recs) / perInstant; instants != 7 {
		t.Errorf("%d sampling instants, want 7", instants)
	}
	for i, r := range recs {
		wantCell := i % perInstant
		if wantCell == cfg.Cells {
			wantCell = obs.RollupCell
		}
		if r.Cell != wantCell {
			t.Fatalf("record %d: cell %d, want %d (cells must appear in index order, roll-up last)", i, r.Cell, wantCell)
		}
		wantT := sim.Time(i/perInstant+1) * kpiCadence
		if r.T != wantT {
			t.Fatalf("record %d: t=%v, want %v", i, r.T, wantT)
		}
	}
	// The roll-up must actually aggregate: its cumulative flow count at
	// the final instant equals the sum over cells.
	lastBlock := recs[len(recs)-perInstant:]
	var sum int64
	for _, r := range lastBlock[:cfg.Cells] {
		sum += r.CumFlows
	}
	if rollup := lastBlock[cfg.Cells]; rollup.CumFlows != sum || sum == 0 {
		t.Errorf("final roll-up cum_flows %d, want the per-cell sum %d (nonzero)", rollup.CumFlows, sum)
	}
}

// kpiCheckpointedDeployment adds KPI sampling to the checkpointed
// fixture shared with the resume tests.
func kpiCheckpointedDeployment(dir string, retain int) deploy.Config {
	cfg := checkpointedDeployment(dir, retain)
	cfg.Cell.KPIEvery = kpiCadence
	cfg.KPIPath = filepath.Join(dir, "kpi.jsonl")
	return cfg
}

// TestKPIResumeByteIdentity is the crash-resume gate for the KPI
// stream: kill a checkpointed deployment after the 300 ms barrier
// (with the stream holding records past the checkpoint, plus a torn
// trailing line), Resume, and require the final file byte-identical to
// the uninterrupted run's.
func TestKPIResumeByteIdentity(t *testing.T) {
	dirA := t.TempDir()
	if _, err := deploy.Run(kpiCheckpointedDeployment(dirA, 100)); err != nil {
		t.Fatal(err)
	}
	ref, _ := readKPIFile(t, filepath.Join(dirA, "kpi.jsonl"))

	dirB := t.TempDir()
	cfgB := kpiCheckpointedDeployment(dirB, 100)
	if _, err := deploy.Run(cfgB); err != nil {
		t.Fatal(err)
	}
	kill := 300 * sim.Millisecond
	for cell := 0; cell < cfgB.Cells; cell++ {
		for at, f := range mustCheckpointFiles(t, cfgB.Checkpoint.Dir, cell) {
			if at > kill {
				if err := os.Remove(f); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// A real kill can leave a torn final line; Resume's truncation must
	// erase it along with the post-checkpoint records.
	f, err := os.OpenFile(cfgB.KPIPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"t":999,"ce`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := deploy.Resume(cfgB); err != nil {
		t.Fatal(err)
	}
	got, _ := readKPIFile(t, cfgB.KPIPath)
	if !bytes.Equal(ref, got) {
		t.Fatalf("resumed KPI stream differs from uninterrupted run (%d vs %d bytes)", len(ref), len(got))
	}
}

// TestKPICrashReplayByteIdentity: a scripted worker crash at an
// instant that is not a KPI barrier restores the cell from its latest
// checkpoint and must replay the lost KPI windows without duplicating
// or skewing any record — the stream stays byte-identical to the
// crash-free run.
func TestKPICrashReplayByteIdentity(t *testing.T) {
	dirA := t.TempDir()
	if _, err := deploy.Run(kpiCheckpointedDeployment(dirA, 2)); err != nil {
		t.Fatal(err)
	}
	ref, _ := readKPIFile(t, filepath.Join(dirA, "kpi.jsonl"))

	dirB := t.TempDir()
	cfgB := kpiCheckpointedDeployment(dirB, 2)
	cfgB.Crashes = []fault.Event{{
		Kind:  fault.WorkerCrash,
		UE:    1, // cell index
		Start: 420 * sim.Millisecond,
	}}
	res, err := deploy.Run(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if res.Restores != 1 {
		t.Errorf("crash run performed %d restores, want 1", res.Restores)
	}
	got, _ := readKPIFile(t, cfgB.KPIPath)
	if !bytes.Equal(ref, got) {
		t.Fatalf("crash-recovered KPI stream differs from crash-free run (%d vs %d bytes)", len(ref), len(got))
	}
}

// TestKPIValidation: a KPI path without a sampling cadence must be
// rejected up front.
func TestKPIValidation(t *testing.T) {
	cfg := smallDeployment(1)
	cfg.KPIPath = filepath.Join(t.TempDir(), "kpi.jsonl")
	if _, err := deploy.Run(cfg); err == nil {
		t.Fatal("KPIPath without Cell.KPIEvery was accepted")
	}
}
