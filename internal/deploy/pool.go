package deploy

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines; workers <= 0 means GOMAXPROCS. It returns when every
// call has finished.
//
// This is the one worker pool shared by the deployment runtime, the
// experiment sweeps and the chaos tool. The determinism contract:
// fn(i) must touch only state owned by index i (each cell/run has its
// own sim.Engine and rng streams), results must be written to
// index-addressed slots, and every fold over those slots must happen
// after ForEach returns, in index order. Under that contract the
// worker count changes wall-clock time and nothing else — the
// parallel-vs-serial equivalence gates in deploy_test.go and CI hold
// the pool to it.
func ForEach(n, workers int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
