package deploy

import (
	"fmt"
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines; workers <= 0 means GOMAXPROCS. It returns when every
// call has finished. If any call fails, ForEach returns the
// lowest-index error with the index wrapped in; later indices still
// run to completion (a failed cell never cancels its siblings, so
// partial results stay deterministic).
//
// This is the one worker pool shared by the deployment runtime, the
// experiment sweeps and the chaos tool. The determinism contract:
// fn(i) must touch only state owned by index i (each cell/run has its
// own sim.Engine and rng streams), results must be written to
// index-addressed slots, and every fold over those slots must happen
// after ForEach returns, in index order. Under that contract the
// worker count changes wall-clock time and nothing else — the
// parallel-vs-serial equivalence gates in deploy_test.go and CI hold
// the pool to it.
func ForEach(n, workers int, fn func(int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
		return firstError(errs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return firstError(errs)
}

// firstError folds the index-addressed error slots in index order, so
// the reported failure is the same for any worker count.
func firstError(errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("index %d: %w", i, err)
		}
	}
	return nil
}
