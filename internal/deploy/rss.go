package deploy

import (
	"os"
	"runtime"
	"strconv"
	"strings"
)

// PeakRSSBytes reports the process's lifetime peak resident set size —
// the number the city-scale memory budgets are written against. On
// Linux it reads VmHWM from /proc/self/status (the kernel's high-water
// mark, which includes Go runtime overhead and never decreases).
// Elsewhere it falls back to the Go runtime's view of memory obtained
// from the OS, which undercounts non-heap mappings but moves with the
// same workloads the budget checks care about.
func PeakRSSBytes() uint64 {
	if v, ok := procPeakRSS(); ok {
		return v
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Sys
}

// procPeakRSS parses the VmHWM line of /proc/self/status:
//
//	VmHWM:	  123456 kB
func procPeakRSS() (uint64, bool) {
	buf, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(buf), "\n") {
		rest, ok := strings.CutPrefix(line, "VmHWM:")
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) >= 1 {
			if kb, err := strconv.ParseUint(fields[0], 10, 64); err == nil {
				return kb * 1024, true
			}
		}
	}
	return 0, false
}
