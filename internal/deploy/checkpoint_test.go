package deploy_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"outran/internal/deploy"
	"outran/internal/fault"
	"outran/internal/obs"
	"outran/internal/sim"
)

// checkpointedDeployment is smallDeployment with checkpointing: four
// cells, a mid-run handover (no ContinueBytes — persistent connections
// cannot be checkpointed), runtime-owned traces, 150 ms cadence.
func checkpointedDeployment(dir string, retain int) deploy.Config {
	cfg := smallDeployment(0)
	cfg.Handovers[0].ContinueBytes = 0
	cfg.Checkpoint = deploy.CheckpointConfig{
		Dir:    filepath.Join(dir, "ck"),
		Every:  150 * sim.Millisecond,
		Retain: retain,
	}
	cfg.TracePathFor = func(cell int) string {
		return filepath.Join(dir, fmt.Sprintf("trace%d.jsonl", cell))
	}
	return cfg
}

// deployOutcome flattens a deployment result plus its trace files into
// comparable bytes.
type deployOutcome struct {
	cells  [][]byte
	traces [][]byte
	agg    []byte
}

func outcomeOf(t *testing.T, dir string, res *deploy.Result) deployOutcome {
	t.Helper()
	var out deployOutcome
	for _, c := range res.Cells {
		b, err := json.Marshal(c.Summary)
		if err != nil {
			t.Fatal(err)
		}
		out.cells = append(out.cells, b)
	}
	for i := range res.Cells {
		b, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("trace%d.jsonl", i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 {
			t.Fatalf("cell %d trace is empty — the gate is vacuous", i)
		}
		out.traces = append(out.traces, b)
	}
	b, err := json.Marshal(res.Aggregate)
	if err != nil {
		t.Fatal(err)
	}
	out.agg = b
	return out
}

func compareOutcomes(t *testing.T, want, got deployOutcome, label string) {
	t.Helper()
	for i := range want.cells {
		if !bytes.Equal(want.cells[i], got.cells[i]) {
			t.Errorf("%s: cell %d summary differs:\n  want %s\n  got  %s", label, i, want.cells[i], got.cells[i])
		}
		if !bytes.Equal(want.traces[i], got.traces[i]) {
			t.Errorf("%s: cell %d trace differs (%d vs %d bytes)", label, i, len(want.traces[i]), len(got.traces[i]))
		}
	}
	if !bytes.Equal(want.agg, got.agg) {
		t.Errorf("%s: aggregate differs:\n  want %s\n  got  %s", label, want.agg, got.agg)
	}
}

// mustCheckpointFiles lists one cell's checkpoints with their instants.
func mustCheckpointFiles(t *testing.T, dir string, cell int) map[sim.Time]string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("cell%d-*.ckpt", cell)))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[sim.Time]string, len(files))
	for _, f := range files {
		var c int
		var ns int64
		if _, err := fmt.Sscanf(filepath.Base(f), "cell%d-%d.ckpt", &c, &ns); err != nil {
			t.Fatalf("malformed checkpoint name %q: %v", f, err)
		}
		out[sim.Time(ns)] = f
	}
	return out
}

// TestDeployResumeEquivalence is the deployment-level crash-resume
// acceptance gate: run a 4-cell checkpointed deployment to completion,
// then take an identically configured deployment, "kill" it just after
// the 300 ms checkpoint barrier (drop every newer checkpoint file, as
// a real kill would have never written them), and Resume. Per-cell
// summaries, traces and the aggregate must be byte-identical.
func TestDeployResumeEquivalence(t *testing.T) {
	dirA := t.TempDir()
	resA, err := deploy.Run(checkpointedDeployment(dirA, 100))
	if err != nil {
		t.Fatal(err)
	}
	outA := outcomeOf(t, dirA, resA)

	dirB := t.TempDir()
	cfgB := checkpointedDeployment(dirB, 100)
	if _, err := deploy.Run(cfgB); err != nil {
		t.Fatal(err)
	}
	// Simulate the kill: the process died after the 300 ms barrier, so
	// checkpoints newer than 300 ms never reached disk. The trace files
	// keep whatever was flushed — Resume truncates them back.
	kill := 300 * sim.Millisecond
	for cell := 0; cell < cfgB.Cells; cell++ {
		files := mustCheckpointFiles(t, cfgB.Checkpoint.Dir, cell)
		if _, ok := files[kill]; !ok {
			t.Fatalf("cell %d has no checkpoint at %v (have %v)", cell, kill, files)
		}
		for at, f := range files {
			if at > kill {
				if err := os.Remove(f); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	resB, err := deploy.Resume(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if resB.Restores != cfgB.Cells {
		t.Errorf("Resume restored %d cells, want %d", resB.Restores, cfgB.Cells)
	}
	compareOutcomes(t, outA, outcomeOf(t, dirB, resB), "resume")
}

// TestDeployCrashRecovery is the scripted-crash acceptance gate: a
// fault.WorkerCrash event kills one cell mid-deployment at an instant
// that is not a checkpoint barrier; the runtime restores it from its
// latest checkpoint and replays the lost segment. The deployment
// summary and every trace must be byte-identical to the crash-free
// same-seed run.
func TestDeployCrashRecovery(t *testing.T) {
	dirA := t.TempDir()
	resA, err := deploy.Run(checkpointedDeployment(dirA, 2))
	if err != nil {
		t.Fatal(err)
	}
	outA := outcomeOf(t, dirA, resA)

	dirB := t.TempDir()
	cfgB := checkpointedDeployment(dirB, 2)
	cfgB.Crashes = []fault.Event{{
		Kind:  fault.WorkerCrash,
		UE:    1, // cell index
		Start: 420 * sim.Millisecond,
	}}
	resB, err := deploy.Run(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if resB.Restores != 1 {
		t.Errorf("crash run performed %d restores, want 1", resB.Restores)
	}
	compareOutcomes(t, outA, outcomeOf(t, dirB, resB), "crash recovery")

	// The live summaries must not leak the recovery either: restore
	// counts are deliberately kept out of the registry.
	for _, c := range resB.Cells {
		for name := range c.Summary.Metrics {
			if name == "checkpoint_restores" {
				t.Errorf("cell %d exports %q; restores must stay out of the byte-compared summary", c.Cell, name)
			}
		}
	}
}

// TestCheckpointMetricsInSummary: a checkpointed run surfaces cadence,
// write count and latest-snapshot size through the cell registry.
func TestCheckpointMetricsInSummary(t *testing.T) {
	dir := t.TempDir()
	res, err := deploy.Run(checkpointedDeployment(dir, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Horizon 700 ms at 150 ms cadence → barriers at 150/300/450/600.
	for _, c := range res.Cells {
		m := c.Summary.Metrics
		if got := m["checkpoint_period_s"]; got != 0.15 {
			t.Errorf("cell %d checkpoint_period_s = %v, want 0.15", c.Cell, got)
		}
		if got := m["checkpoint_writes"]; got != 4 {
			t.Errorf("cell %d checkpoint_writes = %v, want 4", c.Cell, got)
		}
		if got := m["checkpoint_bytes"]; got <= 0 {
			t.Errorf("cell %d checkpoint_bytes = %v, want > 0", c.Cell, got)
		}
	}
	// Retention: only the newest 2 files per cell remain.
	for cell := 0; cell < 4; cell++ {
		files := mustCheckpointFiles(t, filepath.Join(dir, "ck"), cell)
		if len(files) != 2 {
			t.Errorf("cell %d retains %d checkpoints, want 2", cell, len(files))
		}
		for _, at := range []sim.Time{450 * sim.Millisecond, 600 * sim.Millisecond} {
			if _, ok := files[at]; !ok {
				t.Errorf("cell %d: newest checkpoints missing %v (have %v)", cell, at, files)
			}
		}
	}
}

// TestCheckpointRetentionAcrossResume is the regression gate for the
// resume-then-checkpoint retention bug: when Resume writes new
// checkpoints into a directory still holding pre-crash files, stale
// files from later-than-resume instants must be removed (the resumed
// lineage never produced them), not counted toward Retain. Before the
// fix, the rewritten instants entered the retention list twice and
// the positional prune deleted files still referenced by later
// entries — a 4-barrier run with Retain=3 ended with a single file on
// disk.
func TestCheckpointRetentionAcrossResume(t *testing.T) {
	dirA := t.TempDir()
	resA, err := deploy.Run(checkpointedDeployment(dirA, 3))
	if err != nil {
		t.Fatal(err)
	}
	outA := outcomeOf(t, dirA, resA)

	dirB := t.TempDir()
	cfgB := checkpointedDeployment(dirB, 3)
	if _, err := deploy.Run(cfgB); err != nil {
		t.Fatal(err)
	}
	// Kill scenario: cell 0's newer checkpoints are gone (the worker
	// died first), the other cells were "a file ahead" and still hold
	// files past the shared resume instant — exactly the stale state
	// Resume must clean up.
	kill := 300 * sim.Millisecond
	for at, f := range mustCheckpointFiles(t, cfgB.Checkpoint.Dir, 0) {
		if at > kill {
			if err := os.Remove(f); err != nil {
				t.Fatal(err)
			}
		}
	}
	resB, err := deploy.Resume(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	compareOutcomes(t, outA, outcomeOf(t, dirB, resB), "retention resume")

	// Retention invariant: barriers at 150/300/450/600 ms with Retain=3
	// leave exactly {300, 450, 600} on disk for every cell — the stale
	// pre-crash 450/600 files were replaced by the resumed lineage's
	// rewrites, never double-counted.
	want := []sim.Time{300 * sim.Millisecond, 450 * sim.Millisecond, 600 * sim.Millisecond}
	for cell := 0; cell < cfgB.Cells; cell++ {
		files := mustCheckpointFiles(t, cfgB.Checkpoint.Dir, cell)
		if len(files) != len(want) {
			t.Errorf("cell %d retains %d checkpoints after resume, want %d (%v)", cell, len(files), len(want), files)
		}
		for _, at := range want {
			if _, ok := files[at]; !ok {
				t.Errorf("cell %d: checkpoint at %v missing after resume (have %v)", cell, at, files)
			}
		}
	}
}

// TestCheckpointValidation covers the checkpoint/crash configuration
// error paths.
func TestCheckpointValidation(t *testing.T) {
	crash := func(cell int, at sim.Time) []fault.Event {
		return []fault.Event{{Kind: fault.WorkerCrash, UE: cell, Start: at}}
	}
	cases := []struct {
		name string
		mut  func(*deploy.Config)
	}{
		{"crash without checkpointing", func(c *deploy.Config) {
			c.Checkpoint = deploy.CheckpointConfig{}
			c.TracePathFor = nil
			c.Crashes = crash(0, 400*sim.Millisecond)
		}},
		{"crash with wrong kind", func(c *deploy.Config) {
			c.Crashes = []fault.Event{{Kind: fault.DeepFade, UE: 0, Start: 400 * sim.Millisecond}}
		}},
		{"crash cell out of range", func(c *deploy.Config) {
			c.Crashes = crash(7, 400*sim.Millisecond)
		}},
		{"crash before first checkpoint", func(c *deploy.Config) {
			c.Crashes = crash(0, 100*sim.Millisecond)
		}},
		{"crash after horizon", func(c *deploy.Config) {
			c.Crashes = crash(0, 10*sim.Second)
		}},
		{"handover in replay window", func(c *deploy.Config) {
			// Handover at 200 ms touches cells 0/1; a crash on cell 1 at
			// 250 ms replays from the 150 ms checkpoint through 200 ms.
			c.Crashes = crash(1, 250*sim.Millisecond)
		}},
		{"ContinueBytes with checkpointing", func(c *deploy.Config) {
			c.Handovers[0].ContinueBytes = 32 << 10
		}},
		{"TracerFor with checkpointing", func(c *deploy.Config) {
			c.TracePathFor = nil
			c.TracerFor = func(int) *obs.Tracer { return nil }
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := checkpointedDeployment(t.TempDir(), 2)
			tc.mut(&cfg)
			if _, err := deploy.Run(cfg); err == nil {
				t.Fatal("want error, got nil")
			}
		})
	}

	t.Run("resume without checkpointing", func(t *testing.T) {
		cfg := smallDeployment(0)
		if _, err := deploy.Resume(cfg); err == nil {
			t.Fatal("want error, got nil")
		}
	})
	t.Run("resume without checkpoint files", func(t *testing.T) {
		cfg := checkpointedDeployment(t.TempDir(), 2)
		if err := os.MkdirAll(cfg.Checkpoint.Dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if _, err := deploy.Resume(cfg); err == nil {
			t.Fatal("want error, got nil")
		}
	})
}

// TestCheckpointedParallelSerialEquivalence extends the worker-count
// determinism gate to checkpointed runs: 1 worker and 4 workers must
// write byte-identical checkpoints, summaries and traces.
func TestCheckpointedParallelSerialEquivalence(t *testing.T) {
	run := func(workers int) (deployOutcome, string) {
		dir := t.TempDir()
		cfg := checkpointedDeployment(dir, 2)
		cfg.Workers = workers
		res, err := deploy.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return outcomeOf(t, dir, res), cfg.Checkpoint.Dir
	}
	serial, serialDir := run(1)
	parallel, parallelDir := run(4)
	compareOutcomes(t, serial, parallel, "workers")
	for cell := 0; cell < 4; cell++ {
		sf := mustCheckpointFiles(t, serialDir, cell)
		pf := mustCheckpointFiles(t, parallelDir, cell)
		if len(sf) != len(pf) {
			t.Fatalf("cell %d: %d vs %d checkpoint files", cell, len(sf), len(pf))
		}
		for at, f := range sf {
			pb, err := os.ReadFile(pf[at])
			if err != nil {
				t.Fatal(err)
			}
			sb, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sb, pb) {
				t.Errorf("cell %d checkpoint at %v differs between worker counts", cell, at)
			}
		}
	}
}
