package deploy

import (
	"math"
	"testing"

	"outran/internal/ran"
	"outran/internal/sim"
)

// fairnessCell builds a minimal cell and replaces its tracker's
// sampling cadence so every driven TTI folds one measurement block
// with the given per-user throughputs.
func fairnessCell(t *testing.T, blocks [][]float64) *ran.Cell {
	t.Helper()
	cfg := ran.DefaultLTEConfig().WithTopology(2, 15).ForScheduler(ran.SchedPF)
	c, err := ran.NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Tracker.SamplePeriod = 1
	c.Tracker.OnTTI(0, 0, nil) // anchor tick
	for i, tputs := range blocks {
		c.Tracker.OnTTI(sim.Time(i+1)*sim.Millisecond, 0, tputs)
	}
	return c
}

// TestAggregateFairnessMergedMoments is the regression test for the
// deployment fairness bug: the roll-up must compute Jain over the
// union of every cell's users (merged raw moments per block), not
// average the per-cell indices. Two internally fair cells at very
// different throughput scales expose the difference: per-cell Jain is
// 1.0 in both, but the union index is ≈0.51.
func TestAggregateFairnessMergedMoments(t *testing.T) {
	a := fairnessCell(t, [][]float64{{10, 10}})
	b := fairnessCell(t, [][]float64{{1000, 1000}})

	if fa := a.Tracker.MeanFairness(); fa != 1 {
		t.Fatalf("cell A per-cell fairness %v, want 1 (fixture broken)", fa)
	}
	if fb := b.Tracker.MeanFairness(); fb != 1 {
		t.Fatalf("cell B per-cell fairness %v, want 1 (fixture broken)", fb)
	}

	got, ok := aggregateFairness([]*ran.Cell{a, b})
	if !ok {
		t.Fatal("aggregateFairness reported no blocks")
	}
	want := 2020.0 * 2020.0 / (4 * (200 + 2e6)) // Jain over {10,10,1000,1000}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("deployment fairness = %v, want union Jain %v (mean of per-cell means would be 1)", got, want)
	}
}

// TestAggregateFairnessSingleCell: with one cell the merged-moment
// computation must reproduce the cell's own per-block mean exactly —
// the refactor cannot change single-cell results.
func TestAggregateFairnessSingleCell(t *testing.T) {
	c := fairnessCell(t, [][]float64{{5, 3, 2}, {7, 7, 7}, {1, 9, 4}})
	got, ok := aggregateFairness([]*ran.Cell{c})
	if !ok {
		t.Fatal("aggregateFairness reported no blocks")
	}
	if want := c.Tracker.MeanFairness(); math.Abs(got-want) > 1e-15 {
		t.Errorf("single-cell aggregate %v != cell's own mean fairness %v", got, want)
	}
}

// TestAggregateFairnessRaggedBlocks: cells with different block counts
// (one froze earlier) still merge — trailing blocks cover only the
// cells that have them.
func TestAggregateFairnessRaggedBlocks(t *testing.T) {
	a := fairnessCell(t, [][]float64{{10, 10}, {10, 10}})
	b := fairnessCell(t, [][]float64{{1000, 1000}})
	got, ok := aggregateFairness([]*ran.Cell{a, b})
	if !ok {
		t.Fatal("aggregateFairness reported no blocks")
	}
	union := 2020.0 * 2020.0 / (4 * (200 + 2e6))
	want := (union + 1.0) / 2 // block 1: merged; block 2: cell A alone, fair
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ragged-block fairness = %v, want %v", got, want)
	}
}

// TestAggregateFairnessNoBlocks: cells that never folded a block
// report no data rather than a fabricated index.
func TestAggregateFairnessNoBlocks(t *testing.T) {
	cfg := ran.DefaultLTEConfig().WithTopology(2, 15).ForScheduler(ran.SchedPF)
	c, err := ran.NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := aggregateFairness([]*ran.Cell{c}); ok {
		t.Error("aggregateFairness fabricated an index with no measurement blocks")
	}
}
