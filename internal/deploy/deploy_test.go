package deploy_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"outran/internal/deploy"
	"outran/internal/obs"
	"outran/internal/ran"
	"outran/internal/sim"
	"outran/internal/workload"
)

// smallDeployment is the shared test configuration: four lightly
// loaded cells, short horizon, one mid-run handover so the phased
// execution path is always exercised.
func smallDeployment(workers int) deploy.Config {
	return deploy.Config{
		Cells:   4,
		Workers: workers,
		Cell: ran.DefaultLTEConfig().
			WithTopology(4, 15).
			ForScheduler(ran.SchedOutRAN).
			WithWorkload(workload.PoissonSpec("lte", 0.5)),
		Window: 400 * sim.Millisecond,
		Drain:  300 * sim.Millisecond,
		Seed:   42,
		Handovers: []deploy.Handover{{
			At: 200 * sim.Millisecond, UE: 0, From: 0, To: 1, ContinueBytes: 32 << 10,
		}},
	}
}

// TestParallelSerialEquivalence is the determinism gate for the
// deployment runtime: a run on 1 worker and a run on 4 workers must
// produce byte-identical per-cell summaries, byte-identical per-cell
// traces, and an identical aggregate. The worker count may change
// wall-clock time and nothing else.
func TestParallelSerialEquivalence(t *testing.T) {
	type outcome struct {
		cells  [][]byte // per-cell JSON summaries
		traces [][]byte // per-cell JSONL traces
		agg    []byte
	}
	run := func(workers int) outcome {
		cfg := smallDeployment(workers)
		n := cfg.Cells
		bufs := make([]*bytes.Buffer, n)
		tracers := make([]*obs.Tracer, n)
		for i := range bufs {
			bufs[i] = &bytes.Buffer{}
			tracers[i] = obs.NewTracer(obs.NewJSONLSink(bufs[i]))
		}
		cfg.TracerFor = func(i int) *obs.Tracer { return tracers[i] }
		res, err := deploy.Run(cfg)
		if err != nil {
			t.Fatalf("deploy.Run(workers=%d): %v", workers, err)
		}
		var out outcome
		for i, c := range res.Cells {
			if c.Cell != i {
				t.Fatalf("workers=%d: cell %d reported index %d", workers, i, c.Cell)
			}
			b, err := json.Marshal(c.Summary)
			if err != nil {
				t.Fatal(err)
			}
			out.cells = append(out.cells, b)
		}
		for i := range tracers {
			if err := tracers[i].Close(); err != nil {
				t.Fatalf("tracer %d: %v", i, err)
			}
			out.traces = append(out.traces, bufs[i].Bytes())
		}
		b, err := json.Marshal(res.Aggregate)
		if err != nil {
			t.Fatal(err)
		}
		out.agg = b
		return out
	}

	serial := run(1)
	parallel := run(4)

	for i := range serial.cells {
		if !bytes.Equal(serial.cells[i], parallel.cells[i]) {
			t.Errorf("cell %d summary differs between 1 and 4 workers:\n  serial:   %s\n  parallel: %s",
				i, serial.cells[i], parallel.cells[i])
		}
		if !bytes.Equal(serial.traces[i], parallel.traces[i]) {
			t.Errorf("cell %d trace differs between 1 and 4 workers (%d vs %d bytes)",
				i, len(serial.traces[i]), len(parallel.traces[i]))
		}
		if len(serial.traces[i]) == 0 {
			t.Errorf("cell %d trace is empty — the gate is vacuous", i)
		}
	}
	if !bytes.Equal(serial.agg, parallel.agg) {
		t.Errorf("aggregate differs between 1 and 4 workers:\n  serial:   %s\n  parallel: %s",
			serial.agg, parallel.agg)
	}
}

// TestDeploymentShape checks the aggregate bookkeeping: cell count,
// seed echo, counters actually summed, handover accounted.
func TestDeploymentShape(t *testing.T) {
	cfg := smallDeployment(0)
	res, err := deploy.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 || res.Aggregate.Cells != 4 {
		t.Fatalf("want 4 cells, got %d (aggregate %d)", len(res.Cells), res.Aggregate.Cells)
	}
	if res.Aggregate.Seed != 42 {
		t.Fatalf("aggregate seed = %d, want 42", res.Aggregate.Seed)
	}
	if res.Aggregate.HandoversApplied != 1 {
		t.Fatalf("handovers applied = %d, want 1", res.Aggregate.HandoversApplied)
	}
	var started int
	seeds := map[uint64]bool{}
	for _, c := range res.Cells {
		started += c.Summary.Counters.FlowsStarted
		seeds[c.Summary.Seed] = true
	}
	if started == 0 {
		t.Fatal("no flows started across the deployment")
	}
	if started != res.Aggregate.Counters.FlowsStarted {
		t.Fatalf("aggregate FlowsStarted = %d, want %d", res.Aggregate.Counters.FlowsStarted, started)
	}
	if len(seeds) != 4 {
		t.Fatalf("per-cell seeds not distinct: %v", seeds)
	}
	if res.Aggregate.FCTOverall.Count == 0 {
		t.Fatal("aggregate FCT distribution is empty")
	}
}

// TestDeploymentValidation covers the scripted-handover error paths.
func TestDeploymentValidation(t *testing.T) {
	base := smallDeployment(1)
	cases := []struct {
		name string
		mut  func(*deploy.Config)
	}{
		{"source out of range", func(c *deploy.Config) { c.Handovers[0].From = 9 }},
		{"target out of range", func(c *deploy.Config) { c.Handovers[0].To = -1 }},
		{"self handover", func(c *deploy.Config) { c.Handovers[0].To = c.Handovers[0].From }},
		{"negative UE", func(c *deploy.Config) { c.Handovers[0].UE = -1 }},
		{"after horizon", func(c *deploy.Config) { c.Handovers[0].At = 10 * sim.Second }},
		{"zero horizon", func(c *deploy.Config) { c.Window, c.Drain = 0, 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			cfg.Handovers = []deploy.Handover{base.Handovers[0]}
			tc.mut(&cfg)
			if _, err := deploy.Run(cfg); err == nil {
				t.Fatal("want error, got nil")
			}
		})
	}
}

// TestStreamingFCTDefault pins the city-scale memory contract:
// deployment runs record FCTs into bounded streaming accumulators
// unless the caller opts back into exact per-flow retention with
// Config.ExactFCT — and both modes agree on the aggregate counts.
func TestStreamingFCTDefault(t *testing.T) {
	cfg := smallDeployment(0)
	res, err := deploy.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Live {
		if c.FCT.Stream() == nil {
			t.Errorf("cell %d retains exact samples; deployments must stream by default", i)
		}
		if got := len(c.FCT.Samples()); got != 0 {
			t.Errorf("cell %d: %d exact samples under streaming default, want 0", i, got)
		}
	}

	exact := smallDeployment(0)
	exact.ExactFCT = true
	eres, err := deploy.Run(exact)
	if err != nil {
		t.Fatal(err)
	}
	var samples int
	for i, c := range eres.Live {
		if c.FCT.Stream() != nil {
			t.Errorf("cell %d streams despite ExactFCT", i)
		}
		samples += len(c.FCT.Samples())
	}
	if samples == 0 {
		t.Fatal("ExactFCT run retained no samples")
	}
	// Same seed, same horizon: the recorder mode never changes what is
	// simulated, only how completions are summarised.
	if res.Aggregate.FCTOverall.Count != eres.Aggregate.FCTOverall.Count {
		t.Fatalf("FCT count differs by recorder mode: streaming %d, exact %d",
			res.Aggregate.FCTOverall.Count, eres.Aggregate.FCTOverall.Count)
	}
	if res.Aggregate.Counters.FlowsCompleted != eres.Aggregate.Counters.FlowsCompleted {
		t.Fatalf("FlowsCompleted differs by recorder mode: streaming %d, exact %d",
			res.Aggregate.Counters.FlowsCompleted, eres.Aggregate.Counters.FlowsCompleted)
	}
}
