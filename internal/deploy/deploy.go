// Package deploy is the multi-cell deployment runtime: it instantiates
// N ran.Cells — each with its own sim.Engine, a per-cell seed derived
// from one master stream, and its own Poisson workload — executes them
// across a bounded worker pool, and aggregates the per-cell results
// into one deployment-level summary.
//
// Determinism contract: every cell is a self-contained single-threaded
// simulation; the pool only decides which cells run concurrently, never
// what any cell computes. Per-cell seeds are drawn in cell order before
// any goroutine starts, results land in index-addressed slots, and all
// aggregation folds in cell order after the pool drains — so a
// deployment run on 1 worker and on GOMAXPROCS workers produces
// byte-identical per-cell summaries and traces (gated in deploy_test.go
// and CI).
//
// Inter-cell handover rides on the §7 flow-state transfer: the run is
// phased at the scripted handover instants; at each barrier every
// engine has advanced to exactly the handover time, the source cell
// exports the migrating UE's per-flow sent-bytes table (41 bytes per
// flow) and the target imports it, re-anchoring the MLFQ priorities of
// the transferred flows at the target cell.
//
// Checkpointing extends the same barrier structure: with
// Config.Checkpoint set, every cell snapshots at each checkpoint
// instant (atomic rename-into-place, newest Retain files kept). A
// killed run resumes with Resume; a scripted fault.WorkerCrash kills
// one cell mid-run and the runtime restores it from its latest
// checkpoint and replays — in both cases the per-cell summaries and
// traces are byte-identical to an uninterrupted run, because cell
// restoration is byte-exact (see ran.Cell.RestoreSnapshot).
package deploy

import (
	"fmt"
	"os"
	"sort"

	"outran/internal/fault"
	"outran/internal/metrics"
	"outran/internal/obs"
	"outran/internal/pdcp"
	"outran/internal/ran"
	"outran/internal/rng"
	"outran/internal/sim"
)

// Handover scripts one UE migration between two live cells.
type Handover struct {
	// At is the simulation instant of the transfer. It must fall
	// inside the run horizon; every cell's clock is advanced to
	// exactly At before the transfer happens.
	At sim.Time
	// UE is the UE index at both the source and the target cell.
	UE int
	// From and To are deployment cell indices.
	From, To int
	// ContinueBytes, when > 0, starts a recorded continuation flow of
	// this many bytes at the target on each transferred five-tuple —
	// the migrated UE's traffic resuming at the target, classified
	// from the imported sent-bytes state (demoted flows stay demoted).
	ContinueBytes int64
}

// Config describes one deployment run.
type Config struct {
	// Cells is the number of cells (default 1).
	Cells int
	// Workers bounds how many cells execute concurrently; <= 0 means
	// GOMAXPROCS. The worker count never changes results.
	Workers int
	// Cell is the per-cell base configuration; each cell gets a copy
	// with its own derived seed. Its Workload spec declares the traffic
	// every cell offers (use PerCell for heterogeneous workloads).
	Cell ran.Config
	// Warmup/Window/Tail/Drain is the shared measurement methodology
	// (ran.Harness fields of the same names).
	Warmup, Window, Tail, Drain sim.Time
	// Seed is the deployment master seed; per-cell seeds derive from
	// it in cell order. 0 falls back to Cell.Seed, then to 1.
	Seed uint64
	// Handovers scripts inter-cell UE migrations, applied in script
	// order at each shared instant.
	Handovers []Handover
	// TracerFor, when non-nil, supplies a per-cell tracer installed
	// before the cell's first event (nil return = no trace). The
	// caller owns the tracers and closes them after Run returns.
	// Mutually exclusive with checkpointing — crash recovery must own
	// the trace files (use TracePathFor).
	TracerFor func(cell int) *obs.Tracer
	// TracePathFor, when non-nil, gives each cell a runtime-owned
	// JSONL trace file ("" = no trace for that cell). This is the
	// tracing form that supports checkpointing: on crash or resume the
	// runtime truncates the file back to the checkpoint's offset and
	// the replay appends the exact suffix an uninterrupted run would
	// have written.
	TracePathFor func(cell int) string
	// PerCell, when non-nil, may adjust each cell's derived config
	// (heterogeneous deployments). It must be deterministic in the
	// cell index.
	PerCell func(cell int, cfg ran.Config) ran.Config
	// WorkloadTracePathFor, when non-nil, gives each cell a workload
	// trace file ("" = none): the exact flow schedule the cell offered,
	// written during build as a versioned JSONL trace
	// (workload.TraceWriter). Replaying a cell's trace via
	// Workload.TraceFile reproduces its run byte-identically. It must
	// be deterministic in the cell index.
	WorkloadTracePathFor func(cell int) string
	// KPIPath, when non-empty, writes the live KPI stream to this JSONL
	// file: one record per cell per sampling instant (in cell order)
	// followed by one deployment roll-up record (Cell == -1). Requires
	// Cell.KPIEvery > 0; the base Cell config fixes the cadence (a
	// PerCell hook must not change KPIEvery). The stream derives only
	// from simulation state, so same-seed runs produce byte-identical
	// files for any worker count, and kill-and-resume or scripted
	// crashes re-emit the exact suffix.
	KPIPath string
	// ExactFCT opts into the exact per-flow FCT recorder for every
	// cell. Deployment runs default to the streaming recorder
	// (ran.Config.StreamFCT is forced on): ~20 KB per cell regardless
	// of flow count, which is what makes city-scale cell counts fit in
	// memory. The exact path retains every FCTSample and is capped at
	// metrics.DefaultExactCap samples per cell — past the cap the
	// recorder folds into a streaming accumulator and the run carries
	// on (finish() notes the degradation on stderr).
	ExactFCT bool
	// Checkpoint enables periodic checkpointing (see CheckpointConfig).
	Checkpoint CheckpointConfig
	// Crashes scripts worker crashes: each event must have Kind
	// fault.WorkerCrash, UE holding the CELL index, and Start the
	// crash instant. The cell's in-memory state at Start is discarded,
	// restored from its latest checkpoint, and replayed — results stay
	// byte-identical to a crash-free run. Requires Checkpoint.
	Crashes []fault.Event
}

// CellResult is one cell's contribution to the deployment result.
type CellResult struct {
	Cell    int                `json:"cell"`
	Summary metrics.RunSummary `json:"summary"`
}

// Summary is the deployment-level aggregate: counters summed, mean
// metrics averaged over cells, FCT distributions merged from every
// cell's samples (in cell order).
type Summary struct {
	Cells            int                 `json:"cells"`
	Seed             uint64              `json:"seed"`
	HandoversApplied int                 `json:"handovers_applied"`
	FlowsTransferred int                 `json:"flows_transferred"`
	Counters         metrics.RunCounters `json:"counters"`
	FCTOverall       metrics.Stats       `json:"fct_overall"`
	FCTShort         metrics.Stats       `json:"fct_short"`
	FCTMedium        metrics.Stats       `json:"fct_medium"`
	FCTLong          metrics.Stats       `json:"fct_long"`
}

// Result bundles everything a deployment run produces.
type Result struct {
	Cells     []CellResult `json:"cells"`
	Aggregate Summary      `json:"aggregate"`

	// Restores counts checkpoint restorations performed during the
	// run (crash recovery and Resume). Deliberately NOT part of the
	// aggregate Summary or any cell's RunSummary: a recovered run's
	// summaries must be byte-identical to an uninterrupted run's.
	Restores int `json:"restores"`

	// Live exposes the finished cells (tests, ad-hoc inspection).
	Live []*ran.Cell `json:"-"`
}

// runState is one deployment execution in flight.
type runState struct {
	cfg   Config
	n     int
	seed  uint64
	seeds []uint64
	total sim.Time

	cells  []*ran.Cell
	traces []*TraceFile
	cks    []*Checkpointer
	ckAt   map[sim.Time]bool

	// KPI sampling schedule (multiples of Cell.KPIEvery up to and
	// including the horizon) and the deployment-level output stream
	// (nil when KPIPath is empty — the cells are still sampled so the
	// windowed state evolves identically with or without a file).
	kpiTimes []sim.Time
	kpiAt    map[sim.Time]bool
	kpiFile  *KPIFile
	kpiBuf   []obs.KPISample // per-barrier scratch, cell order

	res *Result
}

// Run executes the deployment from time zero and returns the per-cell
// and aggregate results.
func Run(cfg Config) (*Result, error) {
	rs, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	defer rs.closeTraces()
	defer rs.closeKPI()
	if err := rs.build(); err != nil {
		return nil, err
	}
	if rs.cfg.KPIPath != "" {
		rs.kpiFile, err = OpenKPIFile(rs.cfg.KPIPath, rs.cfg.Cell.KPIEvery)
		if err != nil {
			return nil, err
		}
	}
	if err := rs.loop(0); err != nil {
		return nil, err
	}
	if err := rs.closeKPI(); err != nil {
		return nil, err
	}
	return rs.finish()
}

// Resume continues a checkpointed deployment that was killed: every
// cell restores from the newest checkpoint instant all cells share,
// trace files are truncated back to that instant's offsets, and the
// run continues to the horizon. The caller passes the SAME Config the
// original run used (cell configs are cross-checked against the
// snapshots' fingerprints; the workload comes back from the snapshots
// themselves). The results are byte-identical to the uninterrupted
// run's.
func Resume(cfg Config) (*Result, error) {
	rs, err := prepare(cfg)
	if err != nil {
		return nil, err
	}
	if !rs.cfg.Checkpoint.Enabled() {
		return nil, fmt.Errorf("deploy: Resume requires Checkpoint.Dir")
	}
	defer rs.closeTraces()
	defer rs.closeKPI()
	from, kpiOff, err := rs.restore()
	if err != nil {
		return nil, err
	}
	if rs.cfg.KPIPath != "" {
		rs.kpiFile, err = ResumeKPIFile(rs.cfg.KPIPath, rs.cfg.Cell.KPIEvery, kpiOff)
		if err != nil {
			return nil, err
		}
	}
	if err := rs.loop(from); err != nil {
		return nil, err
	}
	if err := rs.closeKPI(); err != nil {
		return nil, err
	}
	return rs.finish()
}

// prepare validates the configuration and derives the per-cell seeds.
func prepare(cfg Config) (*runState, error) {
	n := cfg.Cells
	if n <= 0 {
		n = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = cfg.Cell.Seed
	}
	if seed == 0 {
		seed = 1
	}
	cfg.Checkpoint = cfg.Checkpoint.withDefaults()
	total := cfg.Warmup + cfg.Window + cfg.Tail + cfg.Drain
	if total <= 0 {
		return nil, fmt.Errorf("deploy: zero run horizon (set Window and Drain)")
	}
	ckOn := cfg.Checkpoint.Enabled()
	if ckOn {
		if err := os.MkdirAll(cfg.Checkpoint.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("deploy: checkpoint dir: %w", err)
		}
	}
	if ckOn && cfg.TracerFor != nil {
		return nil, fmt.Errorf("deploy: checkpointing requires runtime-owned traces; use TracePathFor, not TracerFor")
	}
	if cfg.TracerFor != nil && cfg.TracePathFor != nil {
		return nil, fmt.Errorf("deploy: TracerFor and TracePathFor are mutually exclusive")
	}
	if cfg.KPIPath != "" && cfg.Cell.KPIEvery <= 0 {
		return nil, fmt.Errorf("deploy: KPIPath requires Cell.KPIEvery > 0")
	}
	for i, h := range cfg.Handovers {
		switch {
		case h.From < 0 || h.From >= n:
			return nil, fmt.Errorf("deploy: handover %d: source cell %d outside [0,%d)", i, h.From, n)
		case h.To < 0 || h.To >= n:
			return nil, fmt.Errorf("deploy: handover %d: target cell %d outside [0,%d)", i, h.To, n)
		case h.From == h.To:
			return nil, fmt.Errorf("deploy: handover %d: source and target are both cell %d", i, h.From)
		case h.UE < 0:
			return nil, fmt.Errorf("deploy: handover %d: negative UE %d", i, h.UE)
		case h.At <= 0 || h.At >= total:
			return nil, fmt.Errorf("deploy: handover %d: time %v outside (0,%v)", i, h.At, total)
		case ckOn && h.ContinueBytes > 0:
			return nil, fmt.Errorf("deploy: handover %d: ContinueBytes needs a persistent connection, which checkpointing cannot serialise", i)
		}
	}
	for i, ev := range cfg.Crashes {
		switch {
		case !ckOn:
			return nil, fmt.Errorf("deploy: crash %d: Crashes require Checkpoint.Dir", i)
		case ev.Kind != fault.WorkerCrash:
			return nil, fmt.Errorf("deploy: crash %d: kind %v, want %v", i, ev.Kind, fault.WorkerCrash)
		case ev.UE < 0 || ev.UE >= n:
			return nil, fmt.Errorf("deploy: crash %d: cell %d outside [0,%d)", i, ev.UE, n)
		case ev.Start <= cfg.Checkpoint.Every || ev.Start >= total:
			return nil, fmt.Errorf("deploy: crash %d: time %v outside (%v,%v) — a crash needs a checkpoint before it",
				i, ev.Start, cfg.Checkpoint.Every, total)
		}
		// The replay window (last checkpoint, crash] must not contain a
		// handover touching the crashed cell: replaying the segment
		// cannot re-apply a deployment-level transfer.
		lastCk := (ev.Start - 1) / cfg.Checkpoint.Every * cfg.Checkpoint.Every
		for j, h := range cfg.Handovers {
			if (h.From == ev.UE || h.To == ev.UE) && h.At > lastCk && h.At <= ev.Start {
				return nil, fmt.Errorf("deploy: crash %d at %v: handover %d at %v touches cell %d inside the replay window (after checkpoint %v)",
					i, ev.Start, j, h.At, ev.UE, lastCk)
			}
		}
	}

	// Derive per-cell seeds from one master stream, in cell order,
	// before any parallel work: the worker count cannot perturb them.
	master := rng.New(seed)
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = master.Uint64()
	}
	rs := &runState{
		cfg:    cfg,
		n:      n,
		seed:   seed,
		seeds:  seeds,
		total:  total,
		cells:  make([]*ran.Cell, n),
		traces: make([]*TraceFile, n),
		cks:    make([]*Checkpointer, n),
		ckAt:   make(map[sim.Time]bool),
		res:    &Result{},
	}
	if ckOn {
		for _, t := range cfg.Checkpoint.times(total) {
			rs.ckAt[t] = true
		}
	}
	if every := cfg.Cell.KPIEvery; every > 0 {
		rs.kpiAt = make(map[sim.Time]bool)
		for t := every; t <= total; t += every {
			rs.kpiTimes = append(rs.kpiTimes, t)
			rs.kpiAt[t] = true
		}
		rs.kpiBuf = make([]obs.KPISample, 0, n)
	}
	return rs, nil
}

// cellConfig derives cell i's effective configuration. Streaming FCT
// is the deployment default — Config.ExactFCT is the explicit opt-in
// for per-flow retention — and the same derivation runs on build and
// restore, so checkpoint fingerprints agree.
func (rs *runState) cellConfig(i int) ran.Config {
	ccfg := rs.cfg.Cell.WithSeed(rs.seeds[i])
	if !rs.cfg.ExactFCT {
		ccfg.StreamFCT = true
	}
	if rs.cfg.PerCell != nil {
		ccfg = rs.cfg.PerCell(i, ccfg)
	}
	return ccfg
}

// build constructs every cell from scratch (cell construction is
// itself deterministic and index-isolated, so it parallelizes like
// the run does).
func (rs *runState) build() error {
	err := ForEach(rs.n, rs.cfg.Workers, func(i int) error {
		h := ran.Harness{
			Config:    rs.cellConfig(i),
			Warmup:    rs.cfg.Warmup,
			Window:    rs.cfg.Window,
			Tail:      rs.cfg.Tail,
			Drain:     rs.cfg.Drain,
			Snapshots: rs.cfg.Checkpoint.Enabled(),
		}
		if rs.cfg.TracerFor != nil {
			h.Tracer = rs.cfg.TracerFor(i)
		}
		if rs.cfg.TracePathFor != nil {
			if path := rs.cfg.TracePathFor(i); path != "" {
				tf, err := OpenTraceFile(path)
				if err != nil {
					return err
				}
				rs.traces[i] = tf
				h.Tracer = tf.Tracer()
			}
		}
		// The workload trace is fully written during Build (the harness
		// drains the source while scheduling), so the file closes here —
		// no lifetime to manage across the run.
		var wt *os.File
		if rs.cfg.WorkloadTracePathFor != nil {
			if path := rs.cfg.WorkloadTracePathFor(i); path != "" {
				f, err := os.Create(path)
				if err != nil {
					return fmt.Errorf("workload trace: %w", err)
				}
				wt = f
				h.WorkloadTrace = f
			}
		}
		cell, err := h.Build()
		if wt != nil {
			if cerr := wt.Close(); err == nil && cerr != nil {
				err = fmt.Errorf("workload trace: %w", cerr)
			}
		}
		if err != nil {
			return err
		}
		rs.cells[i] = cell
		if rs.cfg.Checkpoint.Enabled() {
			ck := NewCheckpointer(rs.cfg.Checkpoint, i)
			var off func() int64
			if rs.traces[i] != nil {
				off = rs.traces[i].Offset
			}
			if err := ck.Attach(cell, off); err != nil {
				return err
			}
			rs.cks[i] = ck
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("deploy: build cell: %w", err)
	}
	return nil
}

// restore rebuilds every cell from the newest checkpoint instant all
// cells share and returns that instant plus the KPI stream offset the
// checkpoint recorded (-1 when the run emitted none).
func (rs *runState) restore() (sim.Time, int64, error) {
	// Cells checkpoint at the same barrier instants, but a kill can
	// land mid-barrier: some cells one file ahead. Resume from the
	// newest instant every cell has (Retain >= 2 keeps it on disk).
	var from sim.Time
	for i := 0; i < rs.n; i++ {
		_, at, err := LatestCheckpoint(rs.cfg.Checkpoint.Dir, i)
		if err != nil {
			return 0, -1, err
		}
		if i == 0 || at < from {
			from = at
		}
	}
	kpiOff := int64(-1)
	err := ForEach(rs.n, rs.cfg.Workers, func(i int) error {
		meta, err := rs.restoreCell(i, from)
		if err != nil {
			return err
		}
		if i == 0 {
			// Deployment-level counters as of the checkpoint barrier
			// (identical across cells).
			rs.res.Aggregate.HandoversApplied = meta.HandoversApplied
			rs.res.Aggregate.FlowsTransferred = meta.FlowsTransferred
			kpiOff = meta.KPIOffset
		}
		return nil
	})
	if err != nil {
		return 0, -1, fmt.Errorf("deploy: restore cell: %w", err)
	}
	rs.res.Restores += rs.n
	return from, kpiOff, nil
}

// restoreCell rebuilds cell i from its checkpoint at the given
// instant and resumes its trace file.
func (rs *runState) restoreCell(i int, at sim.Time) (CheckpointMeta, error) {
	var tracePath string
	if rs.cfg.TracePathFor != nil {
		tracePath = rs.cfg.TracePathFor(i)
	}
	if rs.traces[i] != nil {
		rs.traces[i].Close()
		rs.traces[i] = nil
	}
	ck := NewCheckpointer(rs.cfg.Checkpoint, i)
	cell, tf, meta, err := ck.Restore(rs.cellConfig(i), at, tracePath)
	rs.traces[i] = tf
	if err != nil {
		return CheckpointMeta{}, err
	}
	rs.cells[i] = cell
	rs.cks[i] = ck
	return meta, nil
}

// loop drives all cells from the given instant to the horizon through
// the barrier sequence: advance everyone to each barrier, then — in
// this order — recover scripted crashes, apply handovers, sample KPIs,
// write checkpoints. The order is what keeps recovery byte-exact: a
// crash at t discards state that has NOT yet seen t's handovers, KPI
// sample, or checkpoint, exactly like the crash-free schedule — and a
// checkpoint's KPI offset therefore includes its own barrier's records.
func (rs *runState) loop(from sim.Time) error {
	for _, t := range rs.barriers(from) {
		if err := runAll(rs.cells, rs.cfg.Workers, t); err != nil {
			return err
		}
		for _, ev := range rs.cfg.Crashes {
			if ev.Start == t && ev.Start > from {
				if err := rs.handleCrash(ev.UE, t); err != nil {
					return err
				}
			}
		}
		for _, h := range rs.cfg.Handovers {
			if h.At != t {
				continue
			}
			moved, err := applyHandover(rs.cells, h)
			if err != nil {
				return err
			}
			rs.res.Aggregate.HandoversApplied++
			rs.res.Aggregate.FlowsTransferred += moved
		}
		if rs.kpiAt[t] {
			rs.sampleKPI(t)
		}
		if rs.ckAt[t] {
			// The KPI stream is shared: capture its offset once, before
			// the per-cell writes fan out across workers.
			kpiOff := int64(-1)
			if rs.kpiFile != nil {
				kpiOff = rs.kpiFile.Offset()
			}
			err := ForEach(rs.n, rs.cfg.Workers, func(i int) error {
				return rs.cks[i].Write(rs.res.Aggregate.HandoversApplied, rs.res.Aggregate.FlowsTransferred, kpiOff)
			})
			if err != nil {
				return fmt.Errorf("deploy: checkpoint cell %w", err)
			}
		}
	}
	if err := runAll(rs.cells, rs.cfg.Workers, rs.total); err != nil {
		return err
	}
	if rs.kpiAt[rs.total] {
		rs.sampleKPI(rs.total)
	}
	return nil
}

// sampleKPI closes every KPI-enabled cell's window at the barrier
// instant — in cell order, after all engines reached it — and appends
// the per-cell records plus the deployment roll-up to the stream.
// Sampling happens even without an output file: closing the windows is
// part of the cells' deterministic state evolution.
func (rs *runState) sampleKPI(t sim.Time) {
	rs.kpiBuf = rs.kpiBuf[:0]
	for i, c := range rs.cells {
		if !c.KPIEnabled() {
			continue
		}
		s := c.SampleKPI(t)
		s.Rec.Cell = i
		rs.kpiBuf = append(rs.kpiBuf, s)
	}
	if rs.kpiFile == nil {
		return
	}
	for i := range rs.kpiBuf {
		rs.kpiFile.Emit(&rs.kpiBuf[i].Rec)
	}
	rollup := obs.AggregateKPI(t, rs.kpiBuf)
	rs.kpiFile.Emit(&rollup)
}

// closeKPI flushes and closes the KPI stream (idempotent).
func (rs *runState) closeKPI() error {
	if rs.kpiFile == nil {
		return nil
	}
	err := rs.kpiFile.Close()
	rs.kpiFile = nil
	return err
}

// barriers returns the distinct pause instants in (from, total),
// ascending: handovers, scripted crashes, KPI samples, checkpoints.
// A KPI instant landing exactly on the horizon is handled after the
// final advance instead (loop).
func (rs *runState) barriers(from sim.Time) []sim.Time {
	set := make(map[sim.Time]bool)
	for _, h := range rs.cfg.Handovers {
		set[h.At] = true
	}
	for _, ev := range rs.cfg.Crashes {
		set[ev.Start] = true
	}
	//outran:orderfree set union; the result is sorted below
	for t := range rs.ckAt {
		set[t] = true
	}
	//outran:orderfree set union; the result is sorted below
	for t := range rs.kpiAt {
		set[t] = true
	}
	times := make([]sim.Time, 0, len(set))
	//outran:orderfree set membership collection; sorted below
	for t := range set {
		if t > from && t < rs.total {
			times = append(times, t)
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times
}

// handleCrash simulates cell i's worker dying at t: its in-memory
// state is discarded, the cell restores from its latest checkpoint,
// the trace file rolls back to the checkpoint's offset, and the lost
// segment replays. Byte-exact restoration makes the recovered cell
// indistinguishable from one that never crashed.
func (rs *runState) handleCrash(i int, t sim.Time) error {
	_, at, err := LatestCheckpoint(rs.cfg.Checkpoint.Dir, i)
	if err != nil {
		return fmt.Errorf("deploy: recovering cell %d crash at %v: %w", i, t, err)
	}
	if _, err := rs.restoreCell(i, at); err != nil {
		return fmt.Errorf("deploy: recovering cell %d crash at %v: %w", i, t, err)
	}
	rs.res.Restores++
	// Replay the lost segment. KPI sampling instants strictly inside
	// (checkpoint, crash) must be re-stepped — SampleKPI is part of the
	// cell's deterministic state evolution — with the records discarded:
	// the stream already holds them from before the crash, and byte-
	// exact restoration regenerates identical values. The checkpoint
	// instant itself is excluded (its sample preceded the write) and so
	// is the crash instant (the main loop samples it after this call).
	cell := rs.cells[i]
	if cell.KPIEnabled() {
		for _, s := range rs.kpiTimes {
			if s <= at {
				continue
			}
			if s >= t {
				break
			}
			cell.Run(s)
			cell.SampleKPI(s)
		}
	}
	cell.Run(t)
	return nil
}

// finish folds the per-cell results in cell order: identical for any
// worker count. Cells on the streaming FCT path contribute their
// histograms via Merge (no per-flow samples exist to re-record);
// exact-path cells contribute samples. A mixed deployment merges both
// into one streaming aggregate.
func (rs *runState) finish() (*Result, error) {
	rs.res.Live = rs.cells
	agg := &metrics.FCTRecorder{}
	for _, c := range rs.cells {
		if c.FCT.Stream() != nil {
			agg = metrics.NewStreamingFCTRecorder()
			break
		}
	}
	for i, c := range rs.cells {
		rs.res.Cells = append(rs.res.Cells, CellResult{Cell: i, Summary: c.Summary()})
		if c.FCT.Degraded() {
			// Only possible on ExactFCT runs: the cell outgrew the
			// sample cap and folded into streaming mid-run. The results
			// are still correct (streaming quantiles), but the caller
			// asked for exact samples and should know they are partial.
			fmt.Fprintf(os.Stderr, "deploy: cell %d exact FCT recorder hit its sample cap and degraded to streaming\n", i)
		}
		if s := c.FCT.Stream(); s != nil {
			// All streams share one fixed bucket layout; Merge cannot
			// fail, but surface a defect loudly rather than dropping data.
			if err := agg.Stream().Merge(s); err != nil {
				return nil, fmt.Errorf("deploy: merging cell %d FCT stream: %w", i, err)
			}
			continue
		}
		for _, s := range c.FCT.Samples() {
			agg.Record(s)
		}
	}
	rs.res.Aggregate.Cells = rs.n
	rs.res.Aggregate.Seed = rs.seed
	rs.res.Aggregate.Counters = aggregateCounters(rs.res.Cells)
	if fair, ok := aggregateFairness(rs.cells); ok {
		rs.res.Aggregate.Counters.MeanFairnessIndex = fair
	}
	rs.res.Aggregate.FCTOverall = agg.Overall()
	rs.res.Aggregate.FCTShort = agg.ByClass(metrics.Short)
	rs.res.Aggregate.FCTMedium = agg.ByClass(metrics.Medium)
	rs.res.Aggregate.FCTLong = agg.ByClass(metrics.Long)
	return rs.res, nil
}

// aggregateFairness computes the deployment's mean Jain fairness from
// the cells' per-block raw moments: each measurement block's index is
// Jain over the union of every cell's contending users (S²/(N·Q) with
// the moments summed across cells), and the blocks are then meaned.
// Averaging per-cell indices instead — as aggregateCounters once did —
// answers a different question ("how fair is the average cell") and
// overstates fairness whenever cells differ in throughput scale; the
// paper's eq. 3 is defined over users, not cells.
func aggregateFairness(cells []*ran.Cell) (float64, bool) {
	var sums, sumSqs, ns []float64
	for _, c := range cells {
		s, q, n := c.Tracker.FairnessMoments()
		for k := range s {
			if k >= len(sums) {
				sums = append(sums, 0)
				sumSqs = append(sumSqs, 0)
				ns = append(ns, 0)
			}
			sums[k] += s[k]
			sumSqs[k] += q[k]
			ns[k] += n[k]
		}
	}
	if len(sums) == 0 {
		return 0, false
	}
	total := 0.0
	for k := range sums {
		if sumSqs[k] == 0 {
			total++ // no contending users anywhere: perfectly fair block
			continue
		}
		total += sums[k] * sums[k] / (ns[k] * sumSqs[k])
	}
	return total / float64(len(sums)), true
}

// closeTraces flushes and closes every runtime-owned trace file.
func (rs *runState) closeTraces() {
	for _, tf := range rs.traces {
		if tf != nil {
			tf.Close()
		}
	}
}

// runAll advances every cell to the given instant across the pool.
func runAll(cells []*ran.Cell, workers int, until sim.Time) error {
	err := ForEach(len(cells), workers, func(i int) error {
		cells[i].Run(until)
		return nil
	})
	if err != nil {
		return fmt.Errorf("deploy: run cell: %w", err)
	}
	return nil
}

// applyHandover performs one scripted migration and returns how many
// flows were transferred.
func applyHandover(cells []*ran.Cell, h Handover) (int, error) {
	src, dst := cells[h.From], cells[h.To]
	blob, err := src.HandoverExport(h.UE)
	if err != nil {
		return 0, fmt.Errorf("deploy: handover at %v: %w", h.At, err)
	}
	if err := dst.HandoverImport(h.UE, blob); err != nil {
		return 0, fmt.Errorf("deploy: handover at %v: %w", h.At, err)
	}
	moved := len(blob) / pdcp.FlowRecordLen
	if h.ContinueBytes > 0 {
		tuples, err := src.UEFlows(h.UE)
		if err != nil {
			return moved, fmt.Errorf("deploy: handover at %v: %w", h.At, err)
		}
		for _, tuple := range tuples {
			conn, err := dst.AdoptConn(h.UE, tuple)
			if err != nil {
				return moved, fmt.Errorf("deploy: handover at %v: %w", h.At, err)
			}
			if err := dst.StartFlow(h.UE, h.ContinueBytes, ran.FlowOptions{Conn: conn}); err != nil {
				return moved, fmt.Errorf("deploy: handover at %v: %w", h.At, err)
			}
		}
	}
	return moved, nil
}

// aggregateCounters sums the countable fields and averages the mean
// metrics over cells, in cell order.
func aggregateCounters(cells []CellResult) metrics.RunCounters {
	var out metrics.RunCounters
	if len(cells) == 0 {
		return out
	}
	var srtt sim.Time
	var se, fair float64
	for _, c := range cells {
		st := c.Summary.Counters
		out.BufferDrops += st.BufferDrops
		out.BufferEvictions += st.BufferEvictions
		out.DecipherFailures += st.DecipherFailures
		out.ReassemblyDrops += st.ReassemblyDrops
		out.HARQFailures += st.HARQFailures
		out.AMAbandoned += st.AMAbandoned
		out.AMRetxBytes += st.AMRetxBytes
		out.FlowsStarted += st.FlowsStarted
		out.FlowsCompleted += st.FlowsCompleted
		out.TTIs += st.TTIs
		out.AMDeliveryFailures += st.AMDeliveryFailures
		out.HARQFeedbackErrors += st.HARQFeedbackErrors
		out.BackhaulDrops += st.BackhaulDrops
		out.Reestablishments += st.Reestablishments
		srtt += st.MeanSRTT
		se += st.MeanSpectralEff
		fair += st.MeanFairnessIndex
	}
	out.MeanSRTT = srtt / sim.Time(len(cells))
	out.MeanSpectralEff = se / float64(len(cells))
	out.MeanFairnessIndex = fair / float64(len(cells))
	return out
}
