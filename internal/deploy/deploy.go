// Package deploy is the multi-cell deployment runtime: it instantiates
// N ran.Cells — each with its own sim.Engine, a per-cell seed derived
// from one master stream, and its own Poisson workload — executes them
// across a bounded worker pool, and aggregates the per-cell results
// into one deployment-level summary.
//
// Determinism contract: every cell is a self-contained single-threaded
// simulation; the pool only decides which cells run concurrently, never
// what any cell computes. Per-cell seeds are drawn in cell order before
// any goroutine starts, results land in index-addressed slots, and all
// aggregation folds in cell order after the pool drains — so a
// deployment run on 1 worker and on GOMAXPROCS workers produces
// byte-identical per-cell summaries and traces (gated in deploy_test.go
// and CI).
//
// Inter-cell handover rides on the §7 flow-state transfer: the run is
// phased at the scripted handover instants; at each barrier every
// engine has advanced to exactly the handover time, the source cell
// exports the migrating UE's per-flow sent-bytes table (41 bytes per
// flow) and the target imports it, re-anchoring the MLFQ priorities of
// the transferred flows at the target cell.
package deploy

import (
	"fmt"
	"sort"

	"outran/internal/metrics"
	"outran/internal/obs"
	"outran/internal/pdcp"
	"outran/internal/ran"
	"outran/internal/rng"
	"outran/internal/sim"
	"outran/internal/workload"
)

// Handover scripts one UE migration between two live cells.
type Handover struct {
	// At is the simulation instant of the transfer. It must fall
	// inside the run horizon; every cell's clock is advanced to
	// exactly At before the transfer happens.
	At sim.Time
	// UE is the UE index at both the source and the target cell.
	UE int
	// From and To are deployment cell indices.
	From, To int
	// ContinueBytes, when > 0, starts a recorded continuation flow of
	// this many bytes at the target on each transferred five-tuple —
	// the migrated UE's traffic resuming at the target, classified
	// from the imported sent-bytes state (demoted flows stay demoted).
	ContinueBytes int64
}

// Config describes one deployment run.
type Config struct {
	// Cells is the number of cells (default 1).
	Cells int
	// Workers bounds how many cells execute concurrently; <= 0 means
	// GOMAXPROCS. The worker count never changes results.
	Workers int
	// Cell is the per-cell base configuration; each cell gets a copy
	// with its own derived seed.
	Cell ran.Config
	// Dist and Load describe each cell's Poisson workload (see
	// ran.Harness); Load <= 0 schedules no generated workload.
	Dist *rng.EmpiricalCDF
	Load float64
	// Warmup/Window/Tail/Drain is the shared measurement methodology
	// (ran.Harness fields of the same names).
	Warmup, Window, Tail, Drain sim.Time
	// Seed is the deployment master seed; per-cell seeds derive from
	// it in cell order. 0 falls back to Cell.Seed, then to 1.
	Seed uint64
	// Handovers scripts inter-cell UE migrations, applied in script
	// order at each shared instant.
	Handovers []Handover
	// TracerFor, when non-nil, supplies a per-cell tracer installed
	// before the cell's first event (nil return = no trace). The
	// caller owns the tracers and closes them after Run returns.
	TracerFor func(cell int) *obs.Tracer
	// PerCell, when non-nil, may adjust each cell's derived config
	// (heterogeneous deployments). It must be deterministic in the
	// cell index.
	PerCell func(cell int, cfg ran.Config) ran.Config
	// ExtraFor, when non-nil, supplies scripted extra flows for each
	// cell (see ran.Harness.Extra). It must be deterministic in the
	// cell index.
	ExtraFor func(cell int) []workload.FlowSpec
}

// CellResult is one cell's contribution to the deployment result.
type CellResult struct {
	Cell    int                `json:"cell"`
	Summary metrics.RunSummary `json:"summary"`
}

// Summary is the deployment-level aggregate: counters summed, mean
// metrics averaged over cells, FCT distributions merged from every
// cell's samples (in cell order).
type Summary struct {
	Cells            int                 `json:"cells"`
	Seed             uint64              `json:"seed"`
	HandoversApplied int                 `json:"handovers_applied"`
	FlowsTransferred int                 `json:"flows_transferred"`
	Counters         metrics.RunCounters `json:"counters"`
	FCTOverall       metrics.Stats       `json:"fct_overall"`
	FCTShort         metrics.Stats       `json:"fct_short"`
	FCTMedium        metrics.Stats       `json:"fct_medium"`
	FCTLong          metrics.Stats       `json:"fct_long"`
}

// Result bundles everything a deployment run produces.
type Result struct {
	Cells     []CellResult `json:"cells"`
	Aggregate Summary      `json:"aggregate"`

	// Live exposes the finished cells (tests, ad-hoc inspection).
	Live []*ran.Cell `json:"-"`
}

// Run executes the deployment and returns the per-cell and aggregate
// results.
func Run(cfg Config) (*Result, error) {
	n := cfg.Cells
	if n <= 0 {
		n = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = cfg.Cell.Seed
	}
	if seed == 0 {
		seed = 1
	}
	total := cfg.Warmup + cfg.Window + cfg.Tail + cfg.Drain
	if total <= 0 {
		return nil, fmt.Errorf("deploy: zero run horizon (set Window and Drain)")
	}
	for i, h := range cfg.Handovers {
		switch {
		case h.From < 0 || h.From >= n:
			return nil, fmt.Errorf("deploy: handover %d: source cell %d outside [0,%d)", i, h.From, n)
		case h.To < 0 || h.To >= n:
			return nil, fmt.Errorf("deploy: handover %d: target cell %d outside [0,%d)", i, h.To, n)
		case h.From == h.To:
			return nil, fmt.Errorf("deploy: handover %d: source and target are both cell %d", i, h.From)
		case h.UE < 0:
			return nil, fmt.Errorf("deploy: handover %d: negative UE %d", i, h.UE)
		case h.At <= 0 || h.At >= total:
			return nil, fmt.Errorf("deploy: handover %d: time %v outside (0,%v)", i, h.At, total)
		}
	}

	// Derive per-cell seeds from one master stream, in cell order,
	// before any parallel work: the worker count cannot perturb them.
	master := rng.New(seed)
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = master.Uint64()
	}

	// Build every cell (cell construction is itself deterministic and
	// index-isolated, so it parallelizes like the run does).
	cells := make([]*ran.Cell, n)
	errs := make([]error, n)
	ForEach(n, cfg.Workers, func(i int) {
		ccfg := cfg.Cell.WithSeed(seeds[i])
		if cfg.PerCell != nil {
			ccfg = cfg.PerCell(i, ccfg)
		}
		h := ran.Harness{
			Config: ccfg,
			Dist:   cfg.Dist,
			Load:   cfg.Load,
			Warmup: cfg.Warmup,
			Window: cfg.Window,
			Tail:   cfg.Tail,
			Drain:  cfg.Drain,
		}
		if cfg.TracerFor != nil {
			h.Tracer = cfg.TracerFor(i)
		}
		if cfg.ExtraFor != nil {
			h.Extra = cfg.ExtraFor(i)
		}
		cells[i], errs[i] = h.Build()
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("deploy: cell %d: %w", i, err)
		}
	}

	// Phased execution: advance every cell to each handover instant
	// (a full barrier — all engines at exactly that time), apply the
	// transfers in script order, continue.
	res := &Result{Live: cells}
	for _, at := range handoverTimes(cfg.Handovers) {
		runAll(cells, cfg.Workers, at)
		for _, h := range cfg.Handovers {
			if h.At != at {
				continue
			}
			moved, err := applyHandover(cells, h)
			if err != nil {
				return nil, err
			}
			res.Aggregate.HandoversApplied++
			res.Aggregate.FlowsTransferred += moved
		}
	}
	runAll(cells, cfg.Workers, total)

	// Fold results in cell order: identical for any worker count.
	agg := &metrics.FCTRecorder{}
	for i, c := range cells {
		res.Cells = append(res.Cells, CellResult{Cell: i, Summary: c.Summary()})
		for _, s := range c.FCT.Samples() {
			agg.Record(s)
		}
	}
	res.Aggregate.Cells = n
	res.Aggregate.Seed = seed
	res.Aggregate.Counters = aggregateCounters(res.Cells)
	res.Aggregate.FCTOverall = agg.Overall()
	res.Aggregate.FCTShort = agg.ByClass(metrics.Short)
	res.Aggregate.FCTMedium = agg.ByClass(metrics.Medium)
	res.Aggregate.FCTLong = agg.ByClass(metrics.Long)
	return res, nil
}

// handoverTimes returns the distinct scripted instants in ascending
// order.
func handoverTimes(hs []Handover) []sim.Time {
	var times []sim.Time
	for _, h := range hs {
		found := false
		for _, t := range times {
			if t == h.At {
				found = true
				break
			}
		}
		if !found {
			times = append(times, h.At)
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times
}

// runAll advances every cell to the given instant across the pool.
func runAll(cells []*ran.Cell, workers int, until sim.Time) {
	ForEach(len(cells), workers, func(i int) { cells[i].Run(until) })
}

// applyHandover performs one scripted migration and returns how many
// flows were transferred.
func applyHandover(cells []*ran.Cell, h Handover) (int, error) {
	src, dst := cells[h.From], cells[h.To]
	blob, err := src.HandoverExport(h.UE)
	if err != nil {
		return 0, fmt.Errorf("deploy: handover at %v: %w", h.At, err)
	}
	if err := dst.HandoverImport(h.UE, blob); err != nil {
		return 0, fmt.Errorf("deploy: handover at %v: %w", h.At, err)
	}
	moved := len(blob) / pdcp.FlowRecordLen
	if h.ContinueBytes > 0 {
		tuples, err := src.UEFlows(h.UE)
		if err != nil {
			return moved, fmt.Errorf("deploy: handover at %v: %w", h.At, err)
		}
		for _, tuple := range tuples {
			conn, err := dst.AdoptConn(h.UE, tuple)
			if err != nil {
				return moved, fmt.Errorf("deploy: handover at %v: %w", h.At, err)
			}
			if err := dst.StartFlow(h.UE, h.ContinueBytes, ran.FlowOptions{Conn: conn}); err != nil {
				return moved, fmt.Errorf("deploy: handover at %v: %w", h.At, err)
			}
		}
	}
	return moved, nil
}

// aggregateCounters sums the countable fields and averages the mean
// metrics over cells, in cell order.
func aggregateCounters(cells []CellResult) metrics.RunCounters {
	var out metrics.RunCounters
	if len(cells) == 0 {
		return out
	}
	var srtt sim.Time
	var se, fair float64
	for _, c := range cells {
		st := c.Summary.Counters
		out.BufferDrops += st.BufferDrops
		out.BufferEvictions += st.BufferEvictions
		out.DecipherFailures += st.DecipherFailures
		out.ReassemblyDrops += st.ReassemblyDrops
		out.HARQFailures += st.HARQFailures
		out.AMAbandoned += st.AMAbandoned
		out.AMRetxBytes += st.AMRetxBytes
		out.FlowsStarted += st.FlowsStarted
		out.FlowsCompleted += st.FlowsCompleted
		out.TTIs += st.TTIs
		out.AMDeliveryFailures += st.AMDeliveryFailures
		out.HARQFeedbackErrors += st.HARQFeedbackErrors
		out.BackhaulDrops += st.BackhaulDrops
		out.Reestablishments += st.Reestablishments
		srtt += st.MeanSRTT
		se += st.MeanSpectralEff
		fair += st.MeanFairnessIndex
	}
	out.MeanSRTT = srtt / sim.Time(len(cells))
	out.MeanSpectralEff = se / float64(len(cells))
	out.MeanFairnessIndex = fair / float64(len(cells))
	return out
}
