// Package obs is the simulator's deterministic tracing and telemetry
// layer. It records flow-lifecycle spans (arrival, PDCP SN assignment,
// MLFQ demotions, RLC retransmissions, HARQ rounds, delivery,
// completion) and per-TTI scheduler decision records as structured
// events, timestamped exclusively with sim.Time from the event engine —
// never the wall clock — so two same-seed runs emit byte-identical
// traces.
//
// The layer is built to cost nothing when off: every emit site in the
// hot path guards on Tracer.Enabled(), which is false for both a nil
// *Tracer and a Tracer with a nil sink, so the disabled path is a
// single pointer check (see the overhead gate in internal/ran).
//
// Sinks are pluggable: RingSink keeps events in memory for tests and
// in-process analysis, JSONLSink streams one JSON object per line for
// offline analysis with cmd/outran-trace.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"outran/internal/sim"
)

// Event types. One flat Event schema covers all of them; each type
// populates its documented subset of fields.
const (
	// EvMeta opens a trace: run configuration the analyzers need
	// (scheduler, cell dimensions, seed, sample period).
	EvMeta = "meta"
	// EvFlowStart marks a flow's arrival at the server (ue, flow, size).
	EvFlowStart = "flow_start"
	// EvFlowEnd marks transport-level completion (ue, flow, size, fct).
	EvFlowEnd = "flow_end"
	// EvPDCPSN records a PDCP sequence-number assignment — with delayed
	// numbering (§4.4) this is the moment the first byte of the SDU is
	// scheduled onto the air (ue, flow, sn).
	EvPDCPSN = "pdcp_sn"
	// EvMLFQ records an intra-user MLFQ level transition, with the
	// sent-bytes total and the demotion threshold that triggered it
	// (ue, flow, level, sent, threshold).
	EvMLFQ = "mlfq"
	// EvRLCTx records one RLC PDU leaving the tx buffer (ue, sn, bytes,
	// segs; retx=false). Segs > 1 means concatenation; a PDU whose SDU
	// continues in a later PDU shows up as the SDU's SN spanning PDUs.
	EvRLCTx = "rlc_tx"
	// EvRLCRetx records an AM retransmission (ue, sn, bytes, attempts).
	EvRLCRetx = "rlc_retx"
	// EvHARQ records a transport-block decode outcome one TTI after
	// transmission (ue, ok, attempts, bits). attempts counts previous
	// attempts: 0 is the first transmission.
	EvHARQ = "harq"
	// EvDeliver records an SDU handed up to the UE's PDCP (ue, flow, sn).
	EvDeliver = "deliver"
	// EvTTI summarises one scheduling interval (served_bits, used_rbs,
	// alloc_rbs).
	EvTTI = "tti"
	// EvDecision records one RB allocation by the ε-relaxation
	// inter-user scheduler: the legacy-best user, the candidate set
	// size, the chosen user and its MLFQ level, and both metrics, from
	// which the §5.4 per-decision spectral-efficiency sacrifice
	// (best_m - sel_m)/best_m follows (rb, best, sel, best_m, sel_m,
	// level, cands).
	EvDecision = "decision"
	// EvSESample mirrors one CellTracker sample fold (se, fairness,
	// active_se; active_se < 0 when no RB carried data in the block).
	EvSESample = "se_sample"
	// EvTrackerReset / EvTrackerFreeze bracket the measurement window
	// exactly as the run's CellTracker saw it, so replaying EvSESample
	// events reproduces the end-of-run aggregates bit-for-bit.
	EvTrackerReset  = "tracker_reset"
	EvTrackerFreeze = "tracker_freeze"
	// EvCheckpoint records one checkpoint write (size = snapshot bytes,
	// sent = cumulative writes). A restore re-emits the restored-from
	// checkpoint's event right after truncating the trace back to its
	// offset, so a recovered run's trace stays byte-identical to an
	// uninterrupted one's.
	EvCheckpoint = "checkpoint"
)

// Event is one structured trace record. The schema is flat: every
// event type uses the subset of fields its doc comment names, and the
// JSON field names are the contract shared with cmd/outran-trace.
// Numeric zero values are omitted on the wire; decoding restores them.
type Event struct {
	T    sim.Time `json:"t"`
	Type string   `json:"type"`

	UE   int      `json:"ue,omitempty"`
	Flow string   `json:"flow,omitempty"`
	Size int64    `json:"size,omitempty"`
	FCT  sim.Time `json:"fct,omitempty"`

	SN        int64 `json:"sn,omitempty"`
	Level     int   `json:"level,omitempty"`
	Sent      int64 `json:"sent,omitempty"`
	Threshold int64 `json:"threshold,omitempty"`

	Bytes    int  `json:"bytes,omitempty"`
	Segs     int  `json:"segs,omitempty"`
	Retx     bool `json:"retx,omitempty"`
	OK       bool `json:"ok,omitempty"`
	Attempts int  `json:"attempts,omitempty"`
	Bits     int  `json:"bits,omitempty"`

	ServedBits int `json:"served_bits,omitempty"`
	UsedRBs    int `json:"used_rbs,omitempty"`
	AllocRBs   int `json:"alloc_rbs,omitempty"`

	RB    int     `json:"rb,omitempty"`
	Best  int     `json:"best,omitempty"`
	Sel   int     `json:"sel,omitempty"`
	BestM float64 `json:"best_m,omitempty"`
	SelM  float64 `json:"sel_m,omitempty"`
	Cands int     `json:"cands,omitempty"`

	SE       float64 `json:"se,omitempty"`
	Fairness float64 `json:"fairness,omitempty"`
	ActiveSE float64 `json:"active_se,omitempty"`

	Sched        string   `json:"sched,omitempty"`
	UEs          int      `json:"ues,omitempty"`
	RBs          int      `json:"rbs,omitempty"`
	Seed         uint64   `json:"seed,omitempty"`
	BandwidthHz  float64  `json:"bandwidth_hz,omitempty"`
	TTINanos     sim.Time `json:"tti_ns,omitempty"`
	SamplePeriod int      `json:"sample_period,omitempty"`
}

// Sink consumes emitted events. Implementations are called on the
// single-threaded simulation loop and must not reorder events.
type Sink interface {
	Emit(ev *Event)
	Close() error
}

// Tracer is the per-cell emit front end. A nil *Tracer and a Tracer
// with a nil sink are both fully inert; hot-path callers guard event
// construction with Enabled().
type Tracer struct {
	sink Sink
}

// NewTracer wraps a sink. A nil sink yields the inert fast path.
func NewTracer(s Sink) *Tracer { return &Tracer{sink: s} }

// Enabled reports whether events will actually be recorded. This is
// the hot-path guard: false costs two pointer checks and no allocation.
func (t *Tracer) Enabled() bool { return t != nil && t.sink != nil }

// Emit records one event. Safe on a nil tracer or nil sink.
func (t *Tracer) Emit(ev Event) {
	if t == nil || t.sink == nil {
		return
	}
	t.sink.Emit(&ev)
}

// Close flushes and closes the underlying sink.
func (t *Tracer) Close() error {
	if t == nil || t.sink == nil {
		return nil
	}
	return t.sink.Close()
}

// RingSink keeps the most recent events in memory — the test and
// in-process-analysis sink. Capacity <= 0 keeps everything.
type RingSink struct {
	cap     int
	events  []Event
	start   int // ring head when len(events) == cap
	dropped uint64
}

// NewRingSink builds a sink bounded to capacity events (<= 0: unbounded).
func NewRingSink(capacity int) *RingSink { return &RingSink{cap: capacity} }

// Emit implements Sink.
func (r *RingSink) Emit(ev *Event) {
	if r.cap > 0 && len(r.events) == r.cap {
		r.events[r.start] = *ev
		r.start = (r.start + 1) % r.cap
		r.dropped++
		return
	}
	r.events = append(r.events, *ev)
}

// Close implements Sink.
func (r *RingSink) Close() error { return nil }

// Events returns the retained events in emission order.
func (r *RingSink) Events() []Event {
	if r.start == 0 {
		return r.events
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// Dropped returns how many events the ring overwrote.
func (r *RingSink) Dropped() uint64 { return r.dropped }

// JSONLSink streams events as one JSON object per line. Field order is
// fixed by the Event struct and all values derive from simulation
// state, so same-seed runs write byte-identical files.
type JSONLSink struct {
	w   *bufio.Writer
	cw  *countingWriter
	c   io.Closer // closed by Close when the writer is also a closer
	enc *json.Encoder
	err error
}

// countingWriter tracks cumulative bytes written through it, giving
// the checkpoint layer an exact trace offset to truncate back to on
// resume.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// NewJSONLSink wraps a writer. If w is an io.Closer, Close closes it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	s := &JSONLSink{w: bw, cw: cw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// BytesWritten flushes buffered lines and returns the total bytes
// emitted to the underlying writer so far. The checkpoint layer
// records this alongside each snapshot; a resumed run truncates the
// trace file to it so the continuation appends the exact suffix the
// uninterrupted run would have written.
func (s *JSONLSink) BytesWritten() int64 {
	if ferr := s.w.Flush(); s.err == nil {
		s.err = ferr
	}
	return s.cw.n
}

// Emit implements Sink. The first encode error sticks and is reported
// by Close.
func (s *JSONLSink) Emit(ev *Event) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(ev)
}

// Close flushes buffered lines and reports the first error seen.
func (s *JSONLSink) Close() error {
	if ferr := s.w.Flush(); s.err == nil {
		s.err = ferr
	}
	if s.c != nil {
		if cerr := s.c.Close(); s.err == nil {
			s.err = cerr
		}
	}
	return s.err
}

// ReadTrace decodes a JSONL trace back into events.
func ReadTrace(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<16))
	var out []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("obs: trace line %d: %w", len(out)+1, err)
		}
		out = append(out, ev)
	}
}
