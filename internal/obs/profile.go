package obs

import "time"

// Phase identifies one slice of a TTI's wall-clock cost.
type Phase int

// Sub-TTI phases, in stack order.
const (
	PhasePhy  Phase = iota // CQI measurement + reporting
	PhaseMac               // buffer status collection + scheduler Allocate
	PhaseRlc               // PDU build/serve + HARQ transmit
	PhasePdcp              // SDU submission and delivery
	PhaseObs               // tracker folds + trace emission
	NumPhases
)

var phaseNames = [NumPhases]string{"phy", "mac", "rlc", "pdcp", "obs"}

// Name returns the phase's short name.
func (p Phase) Name() string { return phaseNames[p] }

// PhaseProfiler attributes wall nanoseconds per TTI to the simulator's
// sub-TTI phases. A nil *PhaseProfiler is fully inert: Begin returns
// the zero time and End returns without reading the clock, so the
// disabled cost on the //outran:allocfree hot path is one pointer
// check per site and zero allocations either way. Profiler results
// are wall-clock and therefore nondeterministic — they live only in
// the run summary's phases section, never in the Registry or any
// byte-compared stream.
type PhaseProfiler struct {
	ns   [NumPhases]int64
	ttis int64
}

// NewPhaseProfiler returns an enabled profiler.
func NewPhaseProfiler() *PhaseProfiler { return &PhaseProfiler{} }

// Begin opens a phase measurement. Nil receiver: zero time, no clock
// read.
func (p *PhaseProfiler) Begin() time.Time {
	if p == nil {
		return time.Time{}
	}
	//outran:wallclock phase profiling measures wall cost; results never enter simulated state
	return time.Now()
}

// End closes a phase measurement opened by Begin.
func (p *PhaseProfiler) End(ph Phase, start time.Time) {
	if p == nil {
		return
	}
	//outran:wallclock phase profiling measures wall cost; results never enter simulated state
	p.ns[ph] += time.Since(start).Nanoseconds()
}

// OnTTI counts one completed TTI; per-TTI attribution divides by it.
func (p *PhaseProfiler) OnTTI() {
	if p == nil {
		return
	}
	p.ttis++
}

// TTIs returns the number of counted TTIs.
func (p *PhaseProfiler) TTIs() int64 {
	if p == nil {
		return 0
	}
	return p.ttis
}

// NsPerTTI returns mean wall nanoseconds per TTI for each phase, nil
// when disabled or before the first TTI.
func (p *PhaseProfiler) NsPerTTI() map[string]float64 {
	if p == nil || p.ttis == 0 {
		return nil
	}
	out := make(map[string]float64, NumPhases)
	for ph := Phase(0); ph < NumPhases; ph++ {
		out[ph.Name()] = float64(p.ns[ph]) / float64(p.ttis)
	}
	return out
}
