package obs

import (
	"math"
	"testing"

	"outran/internal/sim"
)

const testFlow = "10.0.0.1:443>10.1.0.2:10001/6"

func syntheticFlow() []Event {
	return []Event{
		{T: 0, Type: EvMeta, Sched: "OutRAN(PF,eps=0.2)", UEs: 2, RBs: 10, Seed: 1},
		{T: 100, Type: EvFlowStart, UE: 2, Flow: testFlow, Size: 20480},
		{T: 150, Type: EvPDCPSN, UE: 2, Flow: testFlow, SN: 0},
		{T: 160, Type: EvMLFQ, UE: 2, Flow: testFlow, Level: 1, Sent: 10240, Threshold: 10000},
		{T: 170, Type: EvPDCPSN, UE: 2, Flow: testFlow, SN: 1},
		{T: 200, Type: EvDeliver, UE: 2, Flow: testFlow, SN: 0},
		{T: 500, Type: EvFlowEnd, UE: 2, Flow: testFlow, Size: 20480, FCT: 400},
	}
}

func TestTimelines(t *testing.T) {
	tl := Timelines(syntheticFlow())
	if len(tl) != 1 {
		t.Fatalf("got %d timelines, want 1", len(tl))
	}
	f := tl[0]
	if f.Flow != testFlow || f.UE != 2 || f.Size != 20480 {
		t.Fatalf("identity wrong: %+v", f)
	}
	if f.Start != 100 || f.End != 500 || f.FCT != 400 {
		t.Fatalf("span wrong: start=%v end=%v fct=%v", f.Start, f.End, f.FCT)
	}
	if f.FirstTx != 150 || f.FirstDeliver != 200 {
		t.Fatalf("first tx/deliver wrong: %v / %v", f.FirstTx, f.FirstDeliver)
	}
	if f.FinalLevel != 1 || len(f.Demotions) != 1 || f.Demotions[0].Threshold != 10000 {
		t.Fatalf("demotion tracking wrong: level=%d demotions=%+v", f.FinalLevel, f.Demotions)
	}
	r, ok := f.Residency()
	if !ok {
		t.Fatal("completed flow has no residency")
	}
	want := Residency{Ingress: 50, Air: 50, Drain: 300}
	if r != want {
		t.Fatalf("residency %+v, want %+v", r, want)
	}
	if r.Ingress+r.Air+r.Drain != f.FCT {
		t.Fatal("residency does not sum to FCT")
	}
}

func TestTimelinesIncomplete(t *testing.T) {
	evs := syntheticFlow()[:3] // start + first SN only
	f := Timelines(evs)[0]
	if f.End >= 0 {
		t.Fatal("incomplete flow has an end")
	}
	if _, ok := f.Residency(); ok {
		t.Fatal("incomplete flow yielded a residency breakdown")
	}
}

func TestComputeAuditDecisions(t *testing.T) {
	evs := []Event{
		{T: 1, Type: EvTTI, ServedBits: 100, UsedRBs: 2, AllocRBs: 3},
		{T: 1, Type: EvDecision, RB: 0, Best: 0, Sel: 0, BestM: 2, SelM: 2, Cands: 1},
		{T: 1, Type: EvDecision, RB: 1, Best: 0, Sel: 1, BestM: 2, SelM: 1.5, Level: 1, Cands: 3},
		{T: 2, Type: EvTTI, ServedBits: 50, UsedRBs: 1, AllocRBs: 1},
		{T: 2, Type: EvDecision, RB: 0, Best: 1, Sel: 2, BestM: 4, SelM: 3, Level: 0, Cands: 2},
	}
	a := ComputeAudit(evs)
	if a.TTIs != 2 || a.ServedBits != 150 || a.UsedRBs != 3 || a.AllocRBs != 4 {
		t.Fatalf("TTI aggregates wrong: %+v", a)
	}
	if a.Decisions != 3 || a.Overrides != 2 {
		t.Fatalf("decisions=%d overrides=%d, want 3/2", a.Decisions, a.Overrides)
	}
	// Sacrifices: (2-1.5)/2 = 0.25 and (4-3)/4 = 0.25; mean over all 3
	// decision records = 0.5/3.
	if math.Abs(a.SacrificeSum-0.5) > 1e-15 {
		t.Fatalf("sacrifice sum %g, want 0.5", a.SacrificeSum)
	}
	if math.Abs(a.SacrificeMean-0.5/3) > 1e-15 {
		t.Fatalf("sacrifice mean %g, want %g", a.SacrificeMean, 0.5/3)
	}
	if math.Abs(a.CandMean-2) > 1e-15 {
		t.Fatalf("cand mean %g, want 2", a.CandMean)
	}
	if a.OverridesByLevel[0] != 1 || a.OverridesByLevel[1] != 1 {
		t.Fatalf("overrides by level wrong: %v", a.OverridesByLevel)
	}
}

func TestComputeAuditResetAndFreeze(t *testing.T) {
	evs := []Event{
		{T: 1, Type: EvSESample, SE: 100, Fairness: 0.1, ActiveSE: -1}, // warmup, discarded
		{T: 2, Type: EvTrackerReset},
		{T: 3, Type: EvSESample, SE: 1, Fairness: 0.5, ActiveSE: 2},
		{T: 4, Type: EvSESample, SE: 3, Fairness: 0.7, ActiveSE: -1}, // idle block: no active sample
		{T: 5, Type: EvTrackerFreeze},
		{T: 6, Type: EvSESample, SE: 999, Fairness: 0.9, ActiveSE: 4}, // after freeze, ignored
	}
	a := ComputeAudit(evs)
	if a.Samples != 2 {
		t.Fatalf("kept %d samples, want 2", a.Samples)
	}
	if a.MeanSE != 2 {
		t.Fatalf("mean SE %g, want 2", a.MeanSE)
	}
	if math.Abs(a.MeanFairness-0.6) > 1e-15 {
		t.Fatalf("mean fairness %g, want 0.6", a.MeanFairness)
	}
	if a.MeanActiveSE != 2 {
		t.Fatalf("mean active SE %g, want 2 (only one active sample)", a.MeanActiveSE)
	}
}

func TestSlowestFlows(t *testing.T) {
	mk := func(flow string, fct sim.Time) []Event {
		return []Event{
			{T: 0, Type: EvFlowStart, Flow: flow, Size: 1000},
			{T: fct, Type: EvFlowEnd, Flow: flow, FCT: fct},
		}
	}
	var evs []Event
	evs = append(evs, mk("a", 30)...)
	evs = append(evs, mk("b", 10)...)
	evs = append(evs, mk("c", 30)...)
	evs = append(evs, Event{T: 5, Type: EvFlowStart, Flow: "d", Size: 9}) // incomplete
	top := SlowestFlows(Timelines(evs), 2)
	if len(top) != 2 {
		t.Fatalf("got %d flows, want 2", len(top))
	}
	// Equal FCTs break ties by flow id.
	if top[0].Flow != "a" || top[1].Flow != "c" {
		t.Fatalf("order %s,%s; want a,c", top[0].Flow, top[1].Flow)
	}
}

func TestCountByTypeAndFindMeta(t *testing.T) {
	evs := syntheticFlow()
	counts := CountByType(evs)
	if counts[0].Type >= counts[len(counts)-1].Type {
		t.Fatal("counts not sorted by type")
	}
	total := 0
	for _, tc := range counts {
		total += tc.Count
	}
	if total != len(evs) {
		t.Fatalf("counts cover %d events, trace has %d", total, len(evs))
	}
	meta, err := FindMeta(evs)
	if err != nil || meta.Sched != "OutRAN(PF,eps=0.2)" {
		t.Fatalf("meta lookup failed: %v %+v", err, meta)
	}
	if _, err := FindMeta(evs[1:]); err == nil {
		t.Fatal("missing meta not reported")
	}
}
