package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the reference estimator: nearest-rank over the
// sorted sample set.
func exactQuantile(vals []float64, q float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// TestQuantileAccuracy: with exponential buckets of growth factor f,
// interpolated quantiles must stay within f-1 relative error of the
// exact estimator. The sample mix mirrors the paper's flow population:
// a heavy mass of short-flow FCTs, a medium band, and a long tail.
func TestQuantileAccuracy(t *testing.T) {
	const factor = 1.0442737824274138 // 2^(1/16), the streaming FCT layout
	bounds := ExpBuckets(50e3, factor, 340)
	h := NewHistogram(bounds)
	r := rand.New(rand.NewSource(7))
	var vals []float64
	draw := func(n int, lo, hi float64) {
		for i := 0; i < n; i++ {
			v := lo * math.Exp(r.Float64()*math.Log(hi/lo))
			vals = append(vals, v)
			h.Observe(v)
		}
	}
	draw(6000, 2e6, 60e6)   // short flows: 2–60 ms
	draw(2500, 30e6, 400e6) // medium: 30–400 ms
	draw(1500, 200e6, 20e9) // long tail: 0.2–20 s
	// The geometric bound is f-1 per bucket; the budget is the issue's
	// 5% to absorb the rank-convention difference between interpolation
	// and nearest-rank at bucket edges.
	const budget = 0.05
	for _, q := range []float64{0.10, 0.50, 0.90, 0.95, 0.99, 0.999} {
		got := h.Quantile(q)
		want := exactQuantile(vals, q)
		rel := math.Abs(got-want) / want
		if rel > budget {
			t.Errorf("q=%.3f: got %.0f want %.0f (rel err %.4f > %.4f)",
				q, got, want, rel, budget)
		}
	}
	if h.Max() != exactQuantile(vals, 1) {
		t.Errorf("Max %.0f != exact max %.0f", h.Max(), exactQuantile(vals, 1))
	}
	if sum := h.Sum(); math.Abs(sum-sumOf(vals))/sumOf(vals) > 1e-12 {
		t.Errorf("Sum %.0f != exact %.0f", sum, sumOf(vals))
	}
}

func sumOf(vals []float64) float64 {
	var s float64
	for _, v := range vals {
		s += v
	}
	return s
}

func TestQuantileEdgeCases(t *testing.T) {
	bounds := ExpBuckets(1, 2, 10)
	h := NewHistogram(bounds)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %v, want 0", got)
	}
	if got := h.Max(); got != 0 {
		t.Errorf("empty histogram Max = %v, want 0", got)
	}

	// A single observation of 3 lands in the (2,4] bucket, clamped
	// above by the exact max: every quantile interpolates inside
	// [2, 3], and q >= 1 returns the max exactly.
	h.Observe(3)
	for _, q := range []float64{0, 0.5, 0.99} {
		if got := h.Quantile(q); got < 2 || got > 3 {
			t.Errorf("single-value Quantile(%v) = %v, want within [2, 3]", q, got)
		}
	}
	if got := h.Quantile(1); got != 3 {
		t.Errorf("single-value Quantile(1) = %v, want the exact max 3", got)
	}

	// Values beyond the last bound land in the implicit +Inf bucket;
	// quantiles there must clamp to the exact max, not extrapolate.
	h2 := NewHistogram(ExpBuckets(1, 2, 4)) // last bound 8
	h2.Observe(100)
	h2.Observe(1000)
	if got := h2.Quantile(0.99); got > 1000 {
		t.Errorf("+Inf bucket Quantile = %v, exceeds exact max 1000", got)
	}
	if got := h2.Quantile(1); got != 1000 {
		t.Errorf("Quantile(1) = %v, want exact max 1000", got)
	}

	// q < 0 clamps to 0, q > 1 to the max.
	if got := h2.Quantile(-0.5); got <= 0 {
		t.Errorf("Quantile(-0.5) = %v, want a positive value from the first occupied bucket", got)
	}
	if got := h2.Quantile(1.5); got != 1000 {
		t.Errorf("Quantile(1.5) = %v, want 1000", got)
	}
}

// TestQuantileDegenerateInputs pins the exact values Quantile returns
// on every degenerate input — q <= 0, q >= 1, NaN, the empty
// histogram, and single-populated-bucket interpolation. Roll-up KPI
// records (Cell = -1) consume these at deployment scale, so the
// answers are pinned exactly, not just range-checked.
func TestQuantileDegenerateInputs(t *testing.T) {
	bounds := ExpBuckets(1, 2, 10) // 1, 2, 4, ..., 512

	// Empty histogram: 0 for every q, NaN included.
	empty := NewHistogram(bounds)
	for _, q := range []float64{-1, 0, 0.5, 1, 2, math.NaN()} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}

	// Single value 3 in the (2,4] bucket: interpolation runs from the
	// bucket's lower edge to the exact max (the clamp tightens hi from
	// 4 to 3), so the quantile sweep is linear on [2,3].
	single := NewHistogram(bounds)
	single.Observe(3)
	cases := []struct{ q, want float64 }{
		{-0.5, 2},  // q < 0 clamps to 0: lower edge of the occupied bucket
		{0, 2},     // rank 0: lower edge, not the max
		{0.5, 2.5}, // midway between edge 2 and max 3
		{0.75, 2.75},
		{1, 3},   // exact max
		{1.5, 3}, // q > 1 clamps to the max
	}
	for _, c := range cases {
		if got := single.Quantile(c.q); got != c.want {
			t.Errorf("single-value Quantile(%v) = %v, want exactly %v", c.q, got, c.want)
		}
	}

	// NaN on a populated histogram must surface as NaN. Before the
	// explicit check, NaN fell through every rank comparison and
	// silently returned the maximum — indistinguishable from q=1.
	if got := single.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Quantile(NaN) = %v, want NaN (not the max)", got)
	}

	// First-bucket values interpolate from lower edge 0: q <= 0 is
	// exactly 0 even though the histogram is non-empty.
	first := NewHistogram(bounds)
	first.Observe(0.5) // (0,1] bucket, max 0.5 clamps hi below bound 1
	if got := first.Quantile(0); got != 0 {
		t.Errorf("first-bucket Quantile(0) = %v, want exactly 0", got)
	}
	if got := first.Quantile(0.5); got != 0.25 {
		t.Errorf("first-bucket Quantile(0.5) = %v, want exactly 0.25", got)
	}

	// +Inf bucket: the lower edge is the last finite bound, the upper
	// the exact max — never an extrapolation.
	inf := NewHistogram(bounds)
	inf.Observe(1000) // beyond the last bound 512
	for _, c := range []struct{ q, want float64 }{
		{0, 512}, {0.5, 756}, {1, 1000},
	} {
		if got := inf.Quantile(c.q); got != c.want {
			t.Errorf("+Inf-bucket Quantile(%v) = %v, want exactly %v", c.q, got, c.want)
		}
	}

	// Two occupied buckets: the rank walk lands each quantile in the
	// right bucket with exact linear interpolation inside it.
	two := NewHistogram(bounds)
	two.Observe(2) // (1,2]
	two.Observe(4) // (2,4], max 4
	for _, c := range []struct{ q, want float64 }{
		{0.25, 1.5}, {0.5, 2}, {0.75, 3}, {1, 4},
	} {
		if got := two.Quantile(c.q); got != c.want {
			t.Errorf("two-bucket Quantile(%v) = %v, want exactly %v", c.q, got, c.want)
		}
	}
}

// TestMergeMatchesUnion: merging two same-layout histograms must be
// indistinguishable from observing the union directly.
func TestMergeMatchesUnion(t *testing.T) {
	bounds := ExpBuckets(1e3, 1.5, 40)
	a, b, union := NewHistogram(bounds), NewHistogram(bounds), NewHistogram(bounds)
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		v := 1e3 * math.Exp(r.Float64()*8)
		a.Observe(v)
		union.Observe(v)
	}
	for i := 0; i < 300; i++ {
		v := 5e4 * math.Exp(r.Float64()*6)
		b.Observe(v)
		union.Observe(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Count() != union.Count() {
		t.Errorf("merged count %d != union %d", a.Count(), union.Count())
	}
	// Summation order differs between the two paths; only the last
	// ulp may move.
	if rel := math.Abs(a.Sum()-union.Sum()) / union.Sum(); rel > 1e-12 {
		t.Errorf("merged sum %v != union %v", a.Sum(), union.Sum())
	}
	if a.Max() != union.Max() {
		t.Errorf("merged max %v != union %v", a.Max(), union.Max())
	}
	for _, q := range []float64{0.25, 0.5, 0.95, 0.99} {
		if got, want := a.Quantile(q), union.Quantile(q); got != want {
			t.Errorf("Quantile(%v): merged %v != union %v", q, got, want)
		}
	}
}

// TestMergeEmptySides: merging an empty histogram in either direction
// must not disturb counts or the max.
func TestMergeEmptySides(t *testing.T) {
	bounds := ExpBuckets(1, 2, 8)
	a, empty := NewHistogram(bounds), NewHistogram(bounds)
	a.Observe(5)
	if err := a.Merge(empty); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 1 || a.Max() != 5 {
		t.Errorf("merge with empty changed state: count %d max %v", a.Count(), a.Max())
	}
	e2 := NewHistogram(bounds)
	if err := e2.Merge(a); err != nil {
		t.Fatal(err)
	}
	if e2.Count() != 1 || e2.Max() != 5 || e2.Sum() != 5 {
		t.Errorf("empty.Merge(a) wrong: count %d max %v sum %v", e2.Count(), e2.Max(), e2.Sum())
	}
}

// TestMergeLayoutMismatch: disjoint bucket layouts must refuse to
// merge — both a different bound count and shifted bound values.
func TestMergeLayoutMismatch(t *testing.T) {
	a := NewHistogram(ExpBuckets(1, 2, 8))
	if err := a.Merge(NewHistogram(ExpBuckets(1, 2, 9))); err == nil {
		t.Error("merge with different bucket count succeeded, want error")
	}
	if err := a.Merge(NewHistogram(ExpBuckets(2, 2, 8))); err == nil {
		t.Error("merge with shifted bounds succeeded, want error")
	}
	// The failed merges must not have corrupted a.
	if a.Count() != 0 {
		t.Errorf("failed merge mutated the receiver: count %d", a.Count())
	}
}
