package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"outran/internal/sim"
)

// KPISchemaVersion is the current KPI record schema. Consumers must
// check it before interpreting fields.
const KPISchemaVersion = 1

// KPIRecord is one line of the KPI JSONL stream: the live-telemetry
// snapshot of one cell (or, with Cell == RollupCell, the whole
// deployment) at a sampling instant. All values derive exclusively
// from simulation state, so same-seed runs emit byte-identical
// streams regardless of worker count. "win_" fields cover the window
// since the previous sample; "cum_" fields cover the run so far.
type KPIRecord struct {
	V    int      `json:"v"`
	T    sim.Time `json:"t"`
	Cell int      `json:"cell"`

	// Flow completion times, streaming-quantile estimates in ms.
	WinFlows int64   `json:"win_flows"`
	WinP50Ms float64 `json:"win_p50_ms"`
	WinP99Ms float64 `json:"win_p99_ms"`
	CumFlows int64   `json:"cum_flows"`
	CumP50Ms float64 `json:"cum_p50_ms"`
	CumP99Ms float64 `json:"cum_p99_ms"`

	// Window spectral efficiency (bit/s/Hz) and Jain fairness over
	// the users' long-term average throughputs.
	SE       float64 `json:"se"`
	Fairness float64 `json:"fairness"`

	// Load: flows currently in flight and RLC queue backlog per MLFQ
	// priority level (bytes, index 0 = highest priority).
	ActiveFlows int     `json:"active_flows"`
	QueueBytes  []int64 `json:"queue_bytes"`

	// HARQ activity in the window: transport blocks sent, of which
	// retransmissions, and the retx fraction.
	WinHARQTx    int64   `json:"win_harq_tx"`
	WinHARQRetx  int64   `json:"win_harq_retx"`
	HARQRetxRate float64 `json:"harq_retx_rate"`

	// ε-relaxation activity in the window: RB decisions, summed
	// relative metric sacrifice (§5.4) and the per-decision mean.
	WinDecisions int64   `json:"win_decisions"`
	WinSacSum    float64 `json:"win_sacrifice_sum"`
	Sacrifice    float64 `json:"sacrifice"`
}

// RollupCell is the Cell value of a deployment roll-up record.
const RollupCell = -1

// KPISample is one cell's sampling result: the emitted record plus
// the mergeable state a deployment roll-up needs. Win and Cum are
// borrowed references into the cell's KPI state — Win stays valid
// until the cell's next sample, Cum for the cell's lifetime; callers
// aggregate immediately and must not retain them.
type KPISample struct {
	Rec KPIRecord

	Win *Histogram // window FCT histogram (ms)
	Cum *Histogram // cumulative FCT histogram (ms)

	// Raw Jain moments over per-user throughputs, and the cell's
	// bandwidth for SE weighting.
	FairSum     float64
	FairSumSq   float64
	FairN       int
	BandwidthHz float64
}

// KPIBuckets returns the bucket layout (ms upper bounds) every KPI
// FCT histogram uses: 2^(1/8) growth from 0.25 ms to ~100 s. All KPI
// histograms share it so cross-cell Merge always succeeds.
func KPIBuckets() []float64 {
	return ExpBuckets(0.25, 1.0905077326652577, 150)
}

// AggregateKPI folds per-cell samples (in cell order) into the
// deployment roll-up record: counts and queue depths sum, FCT
// quantiles come from merged histograms, SE is bandwidth-weighted,
// and fairness is Jain's index over the union of every cell's user
// population (summed raw moments) — not a mean of per-cell indices.
func AggregateKPI(t sim.Time, samples []KPISample) KPIRecord {
	out := KPIRecord{V: KPISchemaVersion, T: t, Cell: RollupCell}
	if len(samples) == 0 {
		out.Fairness = 1
		return out
	}
	win := NewHistogram(samples[0].Win.Bounds())
	cum := NewHistogram(samples[0].Cum.Bounds())
	var fairSum, fairSumSq, seWeighted, bwTotal float64
	var fairN int
	for _, s := range samples {
		// Shared KPIBuckets layout: Merge cannot fail.
		win.Merge(s.Win) //nolint:errcheck
		cum.Merge(s.Cum) //nolint:errcheck
		out.WinFlows += s.Rec.WinFlows
		out.CumFlows += s.Rec.CumFlows
		out.ActiveFlows += s.Rec.ActiveFlows
		out.WinHARQTx += s.Rec.WinHARQTx
		out.WinHARQRetx += s.Rec.WinHARQRetx
		out.WinDecisions += s.Rec.WinDecisions
		out.WinSacSum += s.Rec.WinSacSum
		for i, b := range s.Rec.QueueBytes {
			if i >= len(out.QueueBytes) {
				out.QueueBytes = append(out.QueueBytes, 0)
			}
			out.QueueBytes[i] += b
		}
		fairSum += s.FairSum
		fairSumSq += s.FairSumSq
		fairN += s.FairN
		seWeighted += s.Rec.SE * s.BandwidthHz
		bwTotal += s.BandwidthHz
	}
	out.WinP50Ms = win.Quantile(0.50)
	out.WinP99Ms = win.Quantile(0.99)
	out.CumP50Ms = cum.Quantile(0.50)
	out.CumP99Ms = cum.Quantile(0.99)
	if bwTotal > 0 {
		out.SE = seWeighted / bwTotal
	}
	out.Fairness = 1
	if fairSumSq != 0 {
		out.Fairness = fairSum * fairSum / (float64(fairN) * fairSumSq)
	}
	if out.WinHARQTx > 0 {
		out.HARQRetxRate = float64(out.WinHARQRetx) / float64(out.WinHARQTx)
	}
	if out.WinDecisions > 0 {
		out.Sacrifice = out.WinSacSum / float64(out.WinDecisions)
	}
	return out
}

// KPISampler owns a KPI JSONL stream: the sampling cadence and the
// offset-tracked writer. Sampling itself is driven externally by the
// run loop (deploy barriers or the single-cell segment driver) so the
// instants are identical across worker counts and across a
// checkpoint/restore boundary.
type KPISampler struct {
	every sim.Time
	w     *bufio.Writer
	cw    *countingWriter
	c     io.Closer
	enc   *json.Encoder
	err   error
}

// NewKPISampler wraps a writer (closed by Close when it is an
// io.Closer) with the given sampling interval.
func NewKPISampler(w io.Writer, every sim.Time) *KPISampler {
	if every <= 0 {
		panic("obs: non-positive KPI interval")
	}
	cw := &countingWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	s := &KPISampler{every: every, w: bw, cw: cw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Every returns the sampling interval.
func (s *KPISampler) Every() sim.Time { return s.every }

// Times returns the sampling instants for a run of the given length:
// every, 2·every, … ≤ total.
func (s *KPISampler) Times(total sim.Time) []sim.Time {
	var out []sim.Time
	for t := s.every; t <= total; t += s.every {
		out = append(out, t)
	}
	return out
}

// Emit appends one record to the stream. The first error sticks.
func (s *KPISampler) Emit(rec *KPIRecord) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(rec)
}

// Offset flushes and returns the exact byte offset of the stream —
// recorded per checkpoint so a resumed run can truncate back to it
// and re-emit the suffix byte-identically (same rule as the trace).
func (s *KPISampler) Offset() int64 {
	if ferr := s.w.Flush(); s.err == nil {
		s.err = ferr
	}
	return s.cw.n
}

// Close flushes and reports the first error seen.
func (s *KPISampler) Close() error {
	if ferr := s.w.Flush(); s.err == nil {
		s.err = ferr
	}
	if s.c != nil {
		if cerr := s.c.Close(); s.err == nil {
			s.err = cerr
		}
	}
	return s.err
}

// ReadKPI decodes a KPI JSONL stream.
func ReadKPI(r io.Reader) ([]KPIRecord, error) {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<16))
	var out []KPIRecord
	for {
		var rec KPIRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("obs: kpi line %d: %w", len(out)+1, err)
		}
		if rec.V != KPISchemaVersion {
			return out, fmt.Errorf("obs: kpi line %d: schema v%d, want v%d", len(out)+1, rec.V, KPISchemaVersion)
		}
		out = append(out, rec)
	}
}
