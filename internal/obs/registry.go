package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
)

// Registry holds the run's named counters, gauges and histograms —
// the structured replacement for ad-hoc counter fields scattered over
// the cell. Instruments are identified by name; Counter/Gauge/
// Histogram return the existing instrument when the name is already
// registered, so call sites need no shared setup order. The registry
// is used from the single-threaded simulation loop and does no
// locking.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing count.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a point-in-time value.
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram is a fixed-bucket-layout histogram: Observe counts each
// value into the first bucket whose upper bound is >= v, with an
// implicit +Inf bucket, and accumulates sum and count. The layout is
// fixed at registration so every run exports the same schema.
type Histogram struct {
	bounds []float64 // ascending upper bounds, excluding +Inf
	counts []uint64  // len(bounds)+1, last is +Inf
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// BucketCounts returns the per-bucket counts (last bucket is +Inf).
func (h *Histogram) BucketCounts() []uint64 {
	return append([]uint64(nil), h.counts...)
}

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 {
	return append([]float64(nil), h.bounds...)
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start with the given factor — the standard latency layout helper.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		return []float64{start}
	}
	out := make([]float64, n)
	v := start
	for i := 0; i < n; i++ {
		out[i] = v
		v *= factor
	}
	return out
}

// Counter returns (registering if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering if needed) the named histogram with
// the given fixed bucket layout. An existing histogram keeps its
// original layout; bounds must be ascending.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	h := r.histograms[name]
	if h != nil {
		return h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending at %d", name, i))
		}
	}
	h = &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// Flatten exports every instrument as flat name->value pairs with a
// stable naming scheme: counters and gauges under their own name,
// histograms as name_sum, name_count and name_le_<bound> cumulative
// buckets (name_le_inf last). The map marshals deterministically
// (encoding/json sorts keys), making it safe to embed in summaries
// compared across same-seed runs.
func (r *Registry) Flatten() map[string]float64 {
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+8*len(r.histograms))
	//outran:orderfree each instrument writes distinct keys; visit order cannot matter
	for name, c := range r.counters {
		out[name] = float64(c.v)
	}
	//outran:orderfree each instrument writes distinct keys; visit order cannot matter
	for name, g := range r.gauges {
		out[name] = g.v
	}
	//outran:orderfree each instrument writes distinct keys; visit order cannot matter
	for name, h := range r.histograms {
		out[name+"_sum"] = h.sum
		out[name+"_count"] = float64(h.count)
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += h.counts[i]
			out[name+"_le_"+formatBound(b)] = float64(cum)
		}
		out[name+"_le_inf"] = float64(h.count)
	}
	return out
}

// formatBound renders a bucket bound compactly and unambiguously.
func formatBound(b float64) string {
	if b == math.Trunc(b) && math.Abs(b) < 1e15 {
		return strconv.FormatInt(int64(b), 10)
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// Names returns the registered instrument names, sorted, for
// deterministic iteration by exporters and tests.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	//outran:orderfree collected names are sorted before returning
	for n := range r.counters {
		names = append(names, n)
	}
	//outran:orderfree collected names are sorted before returning
	for n := range r.gauges {
		names = append(names, n)
	}
	//outran:orderfree collected names are sorted before returning
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
