package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
)

// Registry holds the run's named counters, gauges and histograms —
// the structured replacement for ad-hoc counter fields scattered over
// the cell. Instruments are identified by name; Counter/Gauge/
// Histogram return the existing instrument when the name is already
// registered, so call sites need no shared setup order. The registry
// is used from the single-threaded simulation loop and does no
// locking.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing count.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a point-in-time value.
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram is a fixed-bucket-layout histogram: Observe counts each
// value into the first bucket whose upper bound is >= v, with an
// implicit +Inf bucket, and accumulates sum, count and the exact
// maximum. The layout is fixed at registration so every run exports
// the same schema.
type Histogram struct {
	bounds []float64 // ascending upper bounds, excluding +Inf
	counts []uint64  // len(bounds)+1, last is +Inf
	sum    float64
	count  uint64
	max    float64 // exact maximum observed; meaningful only when count > 0
}

// NewHistogram returns a standalone histogram with the given fixed
// bucket layout; bounds must be ascending. Use Registry.Histogram for
// named, exported instruments.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d", i))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Max returns the exact maximum observed value (0 when empty).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the bucket the target rank falls into. The
// estimate is clamped to the tracked exact maximum, so the +Inf
// bucket never extrapolates; with exponential buckets of width factor
// f the relative error is bounded by f-1.
//
// Degenerate inputs are pinned by TestQuantileDegenerateInputs:
// an empty histogram returns 0 for every q (including NaN); q >= 1
// returns the exact maximum; q <= 0 clamps to 0 and returns the lower
// edge of the first occupied bucket (the histogram's minimum
// estimate); a NaN q returns NaN — before this was made explicit, NaN
// fell through every rank comparison and silently aliased the
// maximum, indistinguishable from q=1.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if math.IsNaN(q) {
		return math.NaN()
	}
	if q >= 1 {
		return h.max
	}
	if q < 0 {
		q = 0
	}
	target := q * float64(h.count)
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= target {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			// The +Inf bucket's effective upper bound is the exact
			// max; finite buckets clamp to it too, which tightens
			// the estimate when the max lands mid-bucket.
			hi := h.max
			if i < len(h.bounds) && h.bounds[i] < hi {
				hi = h.bounds[i]
			}
			if hi < lo {
				return h.max
			}
			frac := (target - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			v := lo + frac*(hi-lo)
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum += c
	}
	return h.max
}

// Merge folds other's observations into h. Both histograms must share
// an identical bucket layout; merging disjoint layouts is an error.
func (h *Histogram) Merge(other *Histogram) error {
	if len(h.bounds) != len(other.bounds) {
		return fmt.Errorf("obs: merge: bucket layout mismatch: %d vs %d bounds",
			len(h.bounds), len(other.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != other.bounds[i] {
			return fmt.Errorf("obs: merge: bucket layout mismatch at bound %d: %v vs %v",
				i, h.bounds[i], other.bounds[i])
		}
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.sum += other.sum
	if other.count > 0 && (h.count == 0 || other.max > h.max) {
		h.max = other.max
	}
	h.count += other.count
	return nil
}

// Reset zeroes all observations, keeping the bucket layout.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.sum = 0
	h.count = 0
	h.max = 0
}

// BucketCounts returns the per-bucket counts (last bucket is +Inf).
func (h *Histogram) BucketCounts() []uint64 {
	return append([]uint64(nil), h.counts...)
}

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 {
	return append([]float64(nil), h.bounds...)
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start with the given factor — the standard latency layout helper.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		return []float64{start}
	}
	out := make([]float64, n)
	v := start
	for i := 0; i < n; i++ {
		out[i] = v
		v *= factor
	}
	return out
}

// Counter returns (registering if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering if needed) the named histogram with
// the given fixed bucket layout. An existing histogram keeps its
// original layout; bounds must be ascending.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	h := r.histograms[name]
	if h != nil {
		return h
	}
	h = NewHistogram(bounds)
	r.histograms[name] = h
	return h
}

// Flatten exports every instrument as flat name->value pairs with a
// stable naming scheme: counters and gauges under their own name,
// histograms as name_sum, name_count, name_p50/name_p99 streaming
// quantile estimates and name_le_<bound> cumulative buckets
// (name_le_inf last). The map marshals deterministically
// (encoding/json sorts keys), making it safe to embed in summaries
// compared across same-seed runs.
func (r *Registry) Flatten() map[string]float64 {
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+8*len(r.histograms))
	//outran:orderfree each instrument writes distinct keys; visit order cannot matter
	for name, c := range r.counters {
		out[name] = float64(c.v)
	}
	//outran:orderfree each instrument writes distinct keys; visit order cannot matter
	for name, g := range r.gauges {
		out[name] = g.v
	}
	//outran:orderfree each instrument writes distinct keys; visit order cannot matter
	for name, h := range r.histograms {
		out[name+"_sum"] = h.sum
		out[name+"_count"] = float64(h.count)
		out[name+"_p50"] = h.Quantile(0.5)
		out[name+"_p99"] = h.Quantile(0.99)
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += h.counts[i]
			out[name+"_le_"+formatBound(b)] = float64(cum)
		}
		out[name+"_le_inf"] = float64(h.count)
	}
	return out
}

// formatBound renders a bucket bound compactly and unambiguously.
func formatBound(b float64) string {
	if b == math.Trunc(b) && math.Abs(b) < 1e15 {
		return strconv.FormatInt(int64(b), 10)
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// Names returns the registered instrument names, sorted, for
// deterministic iteration by exporters and tests.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	//outran:orderfree collected names are sorted before returning
	for n := range r.counters {
		names = append(names, n)
	}
	//outran:orderfree collected names are sorted before returning
	for n := range r.gauges {
		names = append(names, n)
	}
	//outran:orderfree collected names are sorted before returning
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
