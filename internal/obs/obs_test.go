package obs

import (
	"bytes"
	"reflect"
	"testing"

	"outran/internal/sim"
)

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Emit(Event{Type: EvTTI}) // must not panic
	if err := tr.Close(); err != nil {
		t.Fatalf("nil tracer close: %v", err)
	}
	tr = NewTracer(nil)
	if tr.Enabled() {
		t.Fatal("nil-sink tracer reports enabled")
	}
	tr.Emit(Event{Type: EvTTI})
	if err := tr.Close(); err != nil {
		t.Fatalf("nil-sink close: %v", err)
	}
}

func TestRingSinkUnbounded(t *testing.T) {
	r := NewRingSink(0)
	for i := 0; i < 100; i++ {
		r.Emit(&Event{T: sim.Time(i), Type: EvTTI})
	}
	evs := r.Events()
	if len(evs) != 100 || r.Dropped() != 0 {
		t.Fatalf("got %d events, %d dropped", len(evs), r.Dropped())
	}
	for i, ev := range evs {
		if ev.T != sim.Time(i) {
			t.Fatalf("event %d out of order: t=%v", i, ev.T)
		}
	}
}

func TestRingSinkWrap(t *testing.T) {
	r := NewRingSink(4)
	for i := 0; i < 10; i++ {
		r.Emit(&Event{T: sim.Time(i), Type: EvTTI})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, want := range []sim.Time{6, 7, 8, 9} {
		if evs[i].T != want {
			t.Fatalf("ring[%d] = t%v, want t%v", i, evs[i].T, want)
		}
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped %d, want 6", r.Dropped())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []Event{
		{T: 0, Type: EvMeta, Sched: "OutRAN(PF,eps=0.2)", UEs: 8, RBs: 25, Seed: 42,
			BandwidthHz: 5e6, TTINanos: sim.Millisecond, SamplePeriod: 50},
		{T: 10, Type: EvFlowStart, UE: 3, Flow: "10.0.0.1:443>10.1.0.3:10001/6", Size: 4096},
		{T: 20, Type: EvMLFQ, UE: 3, Flow: "10.0.0.1:443>10.1.0.3:10001/6",
			Level: 1, Sent: 1500, Threshold: 1024},
		{T: 30, Type: EvDecision, RB: 7, Best: 2, Sel: 3, BestM: 1.5, SelM: 1.44, Level: 1, Cands: 2},
		{T: 40, Type: EvHARQ, UE: 3, OK: true, Attempts: 1, Bits: 1024},
		{T: 50, Type: EvSESample, SE: 0.9, Fairness: 0.76, ActiveSE: -1},
		{T: 60, Type: EvFlowEnd, UE: 3, Flow: "10.0.0.1:443>10.1.0.3:10001/6", Size: 4096, FCT: 50},
	}
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	for i := range in {
		s.Emit(&in[i])
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed events:\n in:  %+v\n out: %+v", in, out)
	}
}

func TestJSONLDeterministicBytes(t *testing.T) {
	write := func() []byte {
		var buf bytes.Buffer
		s := NewJSONLSink(&buf)
		s.Emit(&Event{T: 1, Type: EvDecision, BestM: 1.0 / 3.0, SelM: 0.3141592653589793})
		s.Emit(&Event{T: 2, Type: EvSESample, SE: 0.9008568660968663})
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(write(), write()) {
		t.Fatal("identical event streams serialized differently")
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("harq_failures")
	c.Inc()
	c.Add(4)
	if r.Counter("harq_failures") != c {
		t.Fatal("second lookup returned a different counter")
	}
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("load")
	g.Set(0.7)
	if r.Gauge("load").Value() != 0.7 {
		t.Fatal("gauge lookup lost the value")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("fct_ms", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Fatalf("sum %g, want 556.5", h.Sum())
	}
	// 0.5 and 1 land in le_1; 5 in le_10; 50 in le_100; 500 in +Inf.
	want := []uint64{2, 1, 1, 1}
	if got := h.BucketCounts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("buckets %v, want %v", got, want)
	}
	if r.Histogram("fct_ms", []float64{7}) != h {
		t.Fatal("re-registration replaced the histogram")
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 5)
	want := []float64{1, 2, 4, 8, 16}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ExpBuckets = %v, want %v", got, want)
	}
	if b := ExpBuckets(5, 0.5, 3); len(b) != 1 || b[0] != 5 {
		t.Fatalf("degenerate factor should yield single bound, got %v", b)
	}
}

func TestFlatten(t *testing.T) {
	r := NewRegistry()
	r.Counter("drops").Add(3)
	r.Gauge("load").Set(0.5)
	h := r.Histogram("lat", []float64{1, 2.5})
	h.Observe(0.5)
	h.Observe(2)
	h.Observe(7)
	flat := r.Flatten()
	want := map[string]float64{
		"drops":      3,
		"load":       0.5,
		"lat_sum":    9.5,
		"lat_count":  3,
		"lat_p50":    h.Quantile(0.5),
		"lat_p99":    h.Quantile(0.99),
		"lat_le_1":   1,
		"lat_le_2.5": 2, // cumulative
		"lat_le_inf": 3,
	}
	if !reflect.DeepEqual(flat, want) {
		t.Fatalf("Flatten = %v, want %v", flat, want)
	}
	names := r.Names()
	wantNames := []string{"drops", "lat", "load"}
	if !reflect.DeepEqual(names, wantNames) {
		t.Fatalf("Names = %v, want %v", names, wantNames)
	}
}
