package obs

import (
	"fmt"
	"sort"

	"outran/internal/sim"
)

// FlowTimeline is one flow's reconstructed lifecycle span.
type FlowTimeline struct {
	Flow  string
	UE    int
	Size  int64
	Start sim.Time
	// End is the transport-completion time; < 0 when the flow never
	// completed inside the trace.
	End sim.Time
	FCT sim.Time

	// FirstTx is the first PDCP SN assignment (with delayed numbering,
	// the first byte scheduled onto the air); < 0 when never scheduled.
	FirstTx sim.Time
	// FirstDeliver is the first SDU delivered to the UE; < 0 if none.
	FirstDeliver sim.Time
	// FinalLevel is the lowest MLFQ level the flow reached.
	FinalLevel int
	// Demotions lists the MLFQ transitions in order.
	Demotions []Event
	// Events holds every event tagged with this flow, in trace order.
	Events []Event
}

// Residency is the per-layer queue-residency breakdown of a completed
// flow: where its completion time was spent.
type Residency struct {
	// Ingress spans server send to first air scheduling: backhaul delay
	// plus RLC queueing behind other traffic.
	Ingress sim.Time
	// Air spans first scheduling to first delivery at the UE: HARQ and
	// RLC retransmission rounds included.
	Air sim.Time
	// Drain spans first delivery to transport completion: the
	// congestion-window-paced remainder of the flow.
	Drain sim.Time
}

// Residency computes the breakdown; ok is false when the flow did not
// complete or was never scheduled.
func (f *FlowTimeline) Residency() (Residency, bool) {
	if f.End < 0 || f.FirstTx < 0 || f.FirstDeliver < 0 {
		return Residency{}, false
	}
	return Residency{
		Ingress: f.FirstTx - f.Start,
		Air:     f.FirstDeliver - f.FirstTx,
		Drain:   f.End - f.FirstDeliver,
	}, true
}

// Timelines reconstructs the flow-lifecycle spans from a trace, in
// flow-start order. Events for flows whose start fell outside the
// trace are grouped under a span with Start < 0.
func Timelines(events []Event) []*FlowTimeline {
	byFlow := make(map[string]*FlowTimeline)
	var order []*FlowTimeline
	get := func(flow string) *FlowTimeline {
		f := byFlow[flow]
		if f == nil {
			f = &FlowTimeline{Flow: flow, Start: -1, End: -1, FirstTx: -1, FirstDeliver: -1}
			byFlow[flow] = f
			order = append(order, f)
		}
		return f
	}
	for _, ev := range events {
		if ev.Flow == "" {
			continue
		}
		f := get(ev.Flow)
		f.Events = append(f.Events, ev)
		switch ev.Type {
		case EvFlowStart:
			f.UE, f.Size, f.Start = ev.UE, ev.Size, ev.T
		case EvFlowEnd:
			f.End, f.FCT = ev.T, ev.FCT
		case EvPDCPSN:
			if f.FirstTx < 0 {
				f.FirstTx = ev.T
			}
		case EvDeliver:
			if f.FirstDeliver < 0 {
				f.FirstDeliver = ev.T
			}
		case EvMLFQ:
			f.Demotions = append(f.Demotions, ev)
			if ev.Level > f.FinalLevel {
				f.FinalLevel = ev.Level
			}
		}
	}
	return order
}

// Audit aggregates the per-TTI scheduler decision records and the
// tracker samples of one trace — the trace-derived counterpart of the
// end-of-run Stats.
type Audit struct {
	Meta Event // the trace's meta event (zero when absent)

	TTIs       int
	AllocRBs   int64 // RB allocations across all TTIs
	UsedRBs    int64 // RB-TTIs that actually carried data
	ServedBits int64

	// Decisions is the number of per-RB decision records; Overrides
	// counts those where ε-relaxation picked a user other than the
	// legacy best.
	Decisions int64
	Overrides int64
	// SacrificeSum accumulates the relative metric sacrifice
	// (best_m - sel_m)/best_m of every override; SacrificeMean spreads
	// it over all decision records — the paper's §5.4 per-decision
	// spectral-efficiency cost, measured instead of inferred.
	SacrificeSum  float64
	SacrificeMean float64
	// OverridesByLevel counts overrides by the winning user's MLFQ
	// level (index clamped to 8 levels).
	OverridesByLevel [8]int64
	// CandMean is the mean ε-candidate-set size over decision records.
	CandMean float64

	// MeanSE and MeanFairness replay the EvSESample stream under the
	// trace's reset/freeze bracketing, reproducing the run's
	// CellTracker aggregates from the trace alone.
	MeanSE       float64
	MeanFairness float64
	MeanActiveSE float64
	Samples      int
}

// ComputeAudit replays a trace's scheduler records. The EvSESample
// replay honors EvTrackerReset/EvTrackerFreeze so warmup cuts and
// measurement-window freezes reproduce exactly.
func ComputeAudit(events []Event) Audit {
	var a Audit
	var se, fair, active []float64
	var candSum int64
	frozen := false
	for i := range events {
		ev := &events[i]
		switch ev.Type {
		case EvMeta:
			a.Meta = *ev
		case EvTTI:
			a.TTIs++
			a.AllocRBs += int64(ev.AllocRBs)
			a.UsedRBs += int64(ev.UsedRBs)
			a.ServedBits += int64(ev.ServedBits)
		case EvDecision:
			a.Decisions++
			candSum += int64(ev.Cands)
			if ev.Sel != ev.Best {
				a.Overrides++
				if ev.BestM > 0 {
					a.SacrificeSum += (ev.BestM - ev.SelM) / ev.BestM
				}
				lv := ev.Level
				if lv >= len(a.OverridesByLevel) {
					lv = len(a.OverridesByLevel) - 1
				}
				if lv >= 0 {
					a.OverridesByLevel[lv]++
				}
			}
		case EvTrackerReset:
			se, fair, active = nil, nil, nil
			frozen = false
		case EvTrackerFreeze:
			frozen = true
		case EvSESample:
			if frozen {
				continue
			}
			se = append(se, ev.SE)
			fair = append(fair, ev.Fairness)
			if ev.ActiveSE >= 0 {
				active = append(active, ev.ActiveSE)
			}
		}
	}
	if a.Decisions > 0 {
		a.SacrificeMean = a.SacrificeSum / float64(a.Decisions)
		a.CandMean = float64(candSum) / float64(a.Decisions)
	}
	a.MeanSE = meanFloat(se)
	a.MeanFairness = meanFloat(fair)
	a.MeanActiveSE = meanFloat(active)
	a.Samples = len(se)
	return a
}

func meanFloat(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// SlowestFlows returns the n completed flows with the largest FCT,
// slowest first, ties broken by flow id for determinism.
func SlowestFlows(timelines []*FlowTimeline, n int) []*FlowTimeline {
	done := make([]*FlowTimeline, 0, len(timelines))
	for _, f := range timelines {
		if f.End >= 0 {
			done = append(done, f)
		}
	}
	sort.Slice(done, func(i, j int) bool {
		if done[i].FCT != done[j].FCT {
			return done[i].FCT > done[j].FCT
		}
		return done[i].Flow < done[j].Flow
	})
	if n > len(done) {
		n = len(done)
	}
	return done[:n]
}

// CountByType tallies a trace's events per type, returned as sorted
// (type, count) pairs.
func CountByType(events []Event) []struct {
	Type  string
	Count int
} {
	m := make(map[string]int)
	for i := range events {
		m[events[i].Type]++
	}
	keys := make([]string, 0, len(m))
	//outran:orderfree keys are sorted before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]struct {
		Type  string
		Count int
	}, len(keys))
	for i, k := range keys {
		out[i].Type, out[i].Count = k, m[k]
	}
	return out
}

// FindMeta returns the trace's meta event, or an error when missing.
func FindMeta(events []Event) (Event, error) {
	for i := range events {
		if events[i].Type == EvMeta {
			return events[i], nil
		}
	}
	return Event{}, fmt.Errorf("obs: trace has no meta event")
}
