package obs

import (
	"bytes"
	"math"
	"testing"
	"time"

	"outran/internal/sim"
)

func kpiHist(vals ...float64) *Histogram {
	h := NewHistogram(KPIBuckets())
	for _, v := range vals {
		h.Observe(v)
	}
	return h
}

// TestKPISamplerRoundTrip: emitted records must decode back equal, and
// Offset must track the exact byte position after each flush.
func TestKPISamplerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewKPISampler(&buf, 100*sim.Millisecond)
	recs := []KPIRecord{
		{V: KPISchemaVersion, T: 100 * sim.Millisecond, Cell: 0, WinFlows: 3, WinP50Ms: 12.5, QueueBytes: []int64{10, 0, 4, 0}},
		{V: KPISchemaVersion, T: 100 * sim.Millisecond, Cell: RollupCell, WinFlows: 3, Fairness: 1},
		{V: KPISchemaVersion, T: 200 * sim.Millisecond, Cell: 0, CumFlows: 7, Sacrifice: 0.01},
	}
	s.Emit(&recs[0])
	if off := s.Offset(); off != int64(buf.Len()) {
		t.Errorf("Offset after first record = %d, want %d", off, buf.Len())
	}
	s.Emit(&recs[1])
	s.Emit(&recs[2])
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadKPI(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].T != recs[i].T || got[i].Cell != recs[i].Cell ||
			got[i].WinFlows != recs[i].WinFlows || got[i].CumFlows != recs[i].CumFlows ||
			got[i].WinP50Ms != recs[i].WinP50Ms || got[i].Sacrifice != recs[i].Sacrifice {
			t.Errorf("record %d round-trip mismatch:\n  want %+v\n  got  %+v", i, recs[i], got[i])
		}
	}
}

// TestReadKPIRejectsSchemaDrift: a record with an unknown version must
// fail loudly rather than being silently misinterpreted.
func TestReadKPIRejectsSchemaDrift(t *testing.T) {
	if _, err := ReadKPI(bytes.NewReader([]byte(`{"v":99,"t":1,"cell":0}` + "\n"))); err == nil {
		t.Error("ReadKPI accepted schema v99")
	}
}

// TestKPISamplerTimes: instants are every, 2·every, … ≤ total —
// including one exactly at the horizon.
func TestKPISamplerTimes(t *testing.T) {
	s := NewKPISampler(&bytes.Buffer{}, 100*sim.Millisecond)
	got := s.Times(250 * sim.Millisecond)
	want := []sim.Time{100 * sim.Millisecond, 200 * sim.Millisecond}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Times(250ms) = %v, want %v", got, want)
	}
	got = s.Times(200 * sim.Millisecond)
	if len(got) != 2 || got[1] != 200*sim.Millisecond {
		t.Errorf("Times(200ms) = %v, want the horizon instant included", got)
	}
}

// TestAggregateKPI verifies the roll-up semantics: counts sum, FCT
// quantiles come from merged histograms, SE is bandwidth-weighted and
// fairness is Jain over the union population, not a mean of per-cell
// indices.
func TestAggregateKPI(t *testing.T) {
	// Cell A: two users at 10 each (internally perfectly fair).
	// Cell B: two users at 1000 each (also internally fair).
	// Union fairness: (2020)^2 / (4 * (200 + 2e6)) ≈ 0.51.
	a := KPISample{
		Rec:     KPIRecord{WinFlows: 2, CumFlows: 4, ActiveFlows: 1, WinHARQTx: 10, WinHARQRetx: 1, WinDecisions: 100, WinSacSum: 2, SE: 1.0, Fairness: 1, QueueBytes: []int64{5, 0}},
		Win:     kpiHist(10, 20),
		Cum:     kpiHist(10, 20, 30, 40),
		FairSum: 20, FairSumSq: 200, FairN: 2,
		BandwidthHz: 1e6,
	}
	b := KPISample{
		Rec:     KPIRecord{WinFlows: 1, CumFlows: 2, ActiveFlows: 2, WinHARQTx: 30, WinHARQRetx: 3, WinDecisions: 300, WinSacSum: 1, SE: 3.0, Fairness: 1, QueueBytes: []int64{0, 7, 9}},
		Win:     kpiHist(100),
		Cum:     kpiHist(100, 200),
		FairSum: 2000, FairSumSq: 2e6, FairN: 2,
		BandwidthHz: 3e6,
	}
	out := AggregateKPI(500*sim.Millisecond, []KPISample{a, b})
	if out.Cell != RollupCell || out.T != 500*sim.Millisecond {
		t.Errorf("roll-up identity wrong: cell %d t %v", out.Cell, out.T)
	}
	if out.WinFlows != 3 || out.CumFlows != 6 || out.ActiveFlows != 3 {
		t.Errorf("flow counts not summed: %+v", out)
	}
	if out.WinHARQTx != 40 || out.WinHARQRetx != 4 || out.HARQRetxRate != 0.1 {
		t.Errorf("HARQ roll-up wrong: tx %d retx %d rate %v", out.WinHARQTx, out.WinHARQRetx, out.HARQRetxRate)
	}
	if out.WinDecisions != 400 || out.Sacrifice != 3.0/400 {
		t.Errorf("sacrifice roll-up wrong: dec %d sac %v", out.WinDecisions, out.Sacrifice)
	}
	if len(out.QueueBytes) != 3 || out.QueueBytes[0] != 5 || out.QueueBytes[1] != 7 || out.QueueBytes[2] != 9 {
		t.Errorf("queue depths not summed per level: %v", out.QueueBytes)
	}
	// SE bandwidth-weighted: (1*1e6 + 3*3e6) / 4e6 = 2.5.
	if math.Abs(out.SE-2.5) > 1e-12 {
		t.Errorf("SE = %v, want bandwidth-weighted 2.5", out.SE)
	}
	wantFair := 2020.0 * 2020.0 / (4 * (200 + 2e6))
	if math.Abs(out.Fairness-wantFair) > 1e-12 {
		t.Errorf("fairness = %v, want union Jain %v (mean of per-cell indices would be 1)", out.Fairness, wantFair)
	}
	// Window p50 over the merged {10, 20, 100} population must sit in
	// the middle, far from either cell's own median.
	if out.WinP50Ms < 15 || out.WinP50Ms > 25 {
		t.Errorf("merged win p50 = %v, want ≈20", out.WinP50Ms)
	}
}

// TestAggregateKPIEmpty: no cells sampling still yields a well-formed
// record (fairness degenerates to 1).
func TestAggregateKPIEmpty(t *testing.T) {
	out := AggregateKPI(sim.Second, nil)
	if out.Cell != RollupCell || out.Fairness != 1 || out.WinFlows != 0 {
		t.Errorf("empty roll-up = %+v", out)
	}
}

// TestPhaseProfilerNilInert: every method must be safe and free on a
// nil receiver — the disabled hot path relies on it.
func TestPhaseProfilerNilInert(t *testing.T) {
	var p *PhaseProfiler
	start := p.Begin()
	if !start.IsZero() {
		t.Error("nil Begin read the clock")
	}
	p.End(PhaseMac, start)
	p.OnTTI()
	if p.TTIs() != 0 || p.NsPerTTI() != nil {
		t.Error("nil profiler reported data")
	}
}

// TestPhaseProfilerAttribution: accumulated time lands under the right
// phase and divides by the TTI count.
func TestPhaseProfilerAttribution(t *testing.T) {
	p := NewPhaseProfiler()
	if p.NsPerTTI() != nil {
		t.Error("profiler reported per-TTI data before any TTI")
	}
	for i := 0; i < 4; i++ {
		s := p.Begin()
		time.Sleep(200 * time.Microsecond)
		p.End(PhaseRlc, s)
		p.OnTTI()
	}
	if p.TTIs() != 4 {
		t.Fatalf("TTIs = %d, want 4", p.TTIs())
	}
	got := p.NsPerTTI()
	if len(got) != int(NumPhases) {
		t.Fatalf("NsPerTTI has %d phases, want %d", len(got), NumPhases)
	}
	if got["rlc"] <= 0 {
		t.Errorf("rlc phase ns/TTI = %v, want > 0", got["rlc"])
	}
	for _, name := range []string{"phy", "mac", "pdcp", "obs"} {
		if got[name] != 0 {
			t.Errorf("%s phase ns/TTI = %v, want 0 (never entered)", name, got[name])
		}
	}
}
