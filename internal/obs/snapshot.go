package obs

import (
	"fmt"

	"outran/internal/snapshot"
)

// tagRegistry is the structural sentinel for a registry snapshot;
// tagHistogram marks a standalone histogram payload.
const (
	tagRegistry  = 0x0b01
	tagHistogram = 0x0b02
)

// Snapshot encodes the histogram's full state (layout + counts + sum
// + count + max) as a standalone section payload.
func (h *Histogram) Snapshot(e *snapshot.Encoder) {
	e.Mark(tagHistogram)
	e.U32(uint32(len(h.bounds)))
	for _, b := range h.bounds {
		e.F64(b)
	}
	for _, c := range h.counts {
		e.U64(c)
	}
	e.F64(h.sum)
	e.U64(h.count)
	e.F64(h.max)
}

// decodeHistogram reads a standalone histogram payload (after its tag
// has been consumed) and returns it; nil when the decoder has failed.
func decodeHistogram(d *snapshot.Decoder) *Histogram {
	nb := d.Count(1 << 16)
	bounds := make([]float64, nb)
	for j := range bounds {
		bounds[j] = d.F64()
	}
	if d.Err() != nil {
		return nil
	}
	h := NewHistogram(bounds)
	for j := range h.counts {
		h.counts[j] = d.U64()
	}
	h.sum = d.F64()
	h.count = d.U64()
	h.max = d.F64()
	if d.Err() != nil {
		return nil
	}
	return h
}

// RestoreSnapshot overlays a standalone histogram snapshot onto h.
// The stored bucket layout must match h's exactly.
func (h *Histogram) RestoreSnapshot(d *snapshot.Decoder) error {
	d.Expect(tagHistogram)
	g := decodeHistogram(d)
	if g == nil {
		return fmt.Errorf("obs: restoring histogram: %w", d.Err())
	}
	if len(g.bounds) != len(h.bounds) {
		return fmt.Errorf("%w: histogram bucket layout mismatch: %d vs %d bounds",
			snapshot.ErrCorrupt, len(g.bounds), len(h.bounds))
	}
	for i := range h.bounds {
		if g.bounds[i] != h.bounds[i] {
			return fmt.Errorf("%w: histogram bucket layout mismatch at bound %d",
				snapshot.ErrCorrupt, i)
		}
	}
	copy(h.counts, g.counts)
	h.sum = g.sum
	h.count = g.count
	h.max = g.max
	return nil
}

// Snapshot encodes every instrument by sorted name so same-state
// registries serialise identically regardless of registration order.
func (r *Registry) Snapshot(e *snapshot.Encoder) {
	e.Mark(tagRegistry)
	names := make([]string, 0, len(r.counters))
	//outran:orderfree collected names are sorted before encoding
	for n := range r.counters {
		names = append(names, n)
	}
	sortStrings(names)
	e.U32(uint32(len(names)))
	for _, n := range names {
		e.String(n)
		e.U64(r.counters[n].v)
	}
	names = names[:0]
	//outran:orderfree collected names are sorted before encoding
	for n := range r.gauges {
		names = append(names, n)
	}
	sortStrings(names)
	e.U32(uint32(len(names)))
	for _, n := range names {
		e.String(n)
		e.F64(r.gauges[n].v)
	}
	names = names[:0]
	//outran:orderfree collected names are sorted before encoding
	for n := range r.histograms {
		names = append(names, n)
	}
	sortStrings(names)
	e.U32(uint32(len(names)))
	for _, n := range names {
		h := r.histograms[n]
		e.String(n)
		e.U32(uint32(len(h.bounds)))
		for _, b := range h.bounds {
			e.F64(b)
		}
		for _, c := range h.counts {
			e.U64(c)
		}
		e.F64(h.sum)
		e.U64(h.count)
		e.F64(h.max)
	}
}

// Restore overlays a snapshot onto this registry. Instruments are
// registered on demand, so restore works on both an empty registry
// and one whose construction path has pre-registered (still-zero)
// instruments; any non-zero counter means state has already
// accumulated and restoring would silently merge two runs.
func (r *Registry) Restore(d *snapshot.Decoder) error {
	//outran:orderfree any-match guard; no state depends on visit order
	for name, c := range r.counters {
		if c.v != 0 {
			return fmt.Errorf("obs: restoring registry: counter %q already non-zero", name)
		}
	}
	d.Expect(tagRegistry)
	n := d.Count(1 << 20)
	for i := 0; i < n && d.Err() == nil; i++ {
		name := d.String()
		r.Counter(name).v = d.U64()
	}
	n = d.Count(1 << 20)
	for i := 0; i < n && d.Err() == nil; i++ {
		name := d.String()
		r.Gauge(name).v = d.F64()
	}
	n = d.Count(1 << 20)
	for i := 0; i < n && d.Err() == nil; i++ {
		name := d.String()
		nb := d.Count(1 << 16)
		bounds := make([]float64, nb)
		for j := range bounds {
			bounds[j] = d.F64()
		}
		if d.Err() != nil {
			break
		}
		h := r.Histogram(name, bounds)
		if len(h.bounds) != len(bounds) {
			d.Fail(fmt.Errorf("%w: histogram %q bucket layout mismatch", snapshot.ErrCorrupt, name))
			break
		}
		for j := range h.counts {
			h.counts[j] = d.U64()
		}
		h.sum = d.F64()
		h.count = d.U64()
		h.max = d.F64()
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("obs: restoring registry: %w", err)
	}
	return nil
}

// sortStrings is an insertion sort: instrument-name lists are short
// and this keeps the snapshot walk free of sort.Slice closures.
func sortStrings(v []string) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
