package webpage

import (
	"testing"

	"outran/internal/rng"
)

func TestCatalogueTable2Rows(t *testing.T) {
	// The nine QUIC pages must match Table 2 exactly.
	want := map[string]struct{ size, quicKB, flows, quic int }{
		"facebook.com":  {381, 206, 33, 21},
		"google.com":    {540, 70, 37, 23},
		"google.com.hk": {541, 70, 38, 23},
		"youtube.com":   {899, 79, 26, 8},
		"instagram.com": {1756, 736, 25, 7},
		"netflix.com":   {1902, 1, 49, 1},
		"reddit.com":    {1928, 1, 90, 1},
		"zoom.us":       {2816, 165, 114, 3},
		"sohu.com":      {3370, 1, 522, 8},
	}
	got := 0
	for _, p := range Catalogue() {
		w, ok := want[p.Name]
		if !ok {
			continue
		}
		got++
		if p.SizeKB != w.size || p.QUICKB != w.quicKB || p.Flows != w.flows || p.QUICFlows != w.quic {
			t.Errorf("%s: %+v does not match Table 2", p.Name, p)
		}
	}
	if got != 9 {
		t.Fatalf("found %d/9 Table 2 pages", got)
	}
	if len(Catalogue()) < 20 {
		t.Fatalf("catalogue has %d pages, want the top 20", len(Catalogue()))
	}
}

func TestPageByName(t *testing.T) {
	p, err := PageByName("zoom.us")
	if err != nil || p.Name != "zoom.us" {
		t.Fatalf("lookup failed: %v", err)
	}
	if _, err := PageByName("nope.example"); err == nil {
		t.Fatal("unknown page resolved")
	}
	// Zoom's render time dominates its PLT (the paper's explanation
	// for its lack of PLT improvement).
	if p.RenderMS < 3000 {
		t.Fatalf("zoom render time %d ms should dominate", p.RenderMS)
	}
}

func TestExpandConservesBytes(t *testing.T) {
	r := rng.New(1)
	for _, p := range Catalogue() {
		flows := p.Expand(r)
		if len(flows) != p.Flows {
			t.Fatalf("%s: %d flows, want %d", p.Name, len(flows), p.Flows)
		}
		total := TotalBytes(flows)
		want := int64(p.SizeKB) * KB
		// The splitter enforces a 200-byte floor per flow, so allow a
		// small overshoot for flow-heavy pages.
		if total < want*95/100 || total > want*115/100 {
			t.Fatalf("%s: expanded to %d bytes, want ~%d", p.Name, total, want)
		}
		var quicBytes int64
		quic := 0
		for _, f := range flows {
			if f.Size <= 0 {
				t.Fatalf("%s: non-positive flow size", p.Name)
			}
			if f.Round < 0 || f.Round >= NumRounds {
				t.Fatalf("%s: bad round %d", p.Name, f.Round)
			}
			if f.QUIC {
				quic++
				quicBytes += f.Size
				if f.Conn < 0 || f.Conn >= maxQUICConns {
					t.Fatalf("%s: bad conn %d", p.Name, f.Conn)
				}
			}
		}
		if quic != min(p.QUICFlows, p.Flows) {
			t.Fatalf("%s: %d QUIC flows, want %d", p.Name, quic, p.QUICFlows)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestExpandRootFirst(t *testing.T) {
	r := rng.New(2)
	p, _ := PageByName("google.com")
	flows := p.Expand(r)
	if flows[0].Round != 0 {
		t.Fatal("first flow (document) must be round 0")
	}
}

func TestExpandDeterministic(t *testing.T) {
	p, _ := PageByName("facebook.com")
	a := p.Expand(rng.New(7))
	b := p.Expand(rng.New(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("expansion not deterministic")
		}
	}
}
