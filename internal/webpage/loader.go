package webpage

import (
	"fmt"

	"outran/internal/ran"
	"outran/internal/rng"
	"outran/internal/sim"
)

// LoadResult summarises one page load.
type LoadResult struct {
	Page     string
	PLT      sim.Time   // navigation start to load end (incl. render)
	NetTime  sim.Time   // last sub-flow completion
	FlowFCTs []sim.Time // per-sub-flow completion times
}

// Load fetches a page on the given cell/UE like a browser: round 0
// (the document) first, then each dependency round once the previous
// one finishes; QUIC sub-flows are serialised over their persistent
// connection. onDone fires with the result when the page has loaded.
func Load(cell *ran.Cell, ue int, page Page, r *rng.Source, onDone func(LoadResult)) error {
	flows := page.Expand(r)
	if len(flows) == 0 {
		return fmt.Errorf("webpage: page %q has no flows", page.Name)
	}
	conns := make([]*ran.Conn, maxQUICConns)
	for i := range conns {
		c, err := cell.NewConn(ue)
		if err != nil {
			return err
		}
		conns[i] = c
	}
	byRound := make([][]SubFlow, NumRounds)
	for _, f := range flows {
		rd := f.Round
		if rd < 0 {
			rd = 0
		}
		if rd >= NumRounds {
			rd = NumRounds - 1
		}
		byRound[rd] = append(byRound[rd], f)
	}
	res := &LoadResult{Page: page.Name}
	start := cell.Eng.Now()

	var runRound func(k int)
	finish := func() {
		res.NetTime = cell.Eng.Now() - start
		res.PLT = res.NetTime + sim.Time(page.RenderMS)*sim.Millisecond
		if onDone != nil {
			onDone(*res)
		}
	}
	runRound = func(k int) {
		for k < NumRounds && len(byRound[k]) == 0 {
			k++
		}
		if k >= NumRounds {
			finish()
			return
		}
		pending := len(byRound[k])
		flowDone := func(fct sim.Time) {
			res.FlowFCTs = append(res.FlowFCTs, fct)
			pending--
			if pending == 0 {
				runRound(k + 1)
			}
		}
		// Browsers pool connections: at most maxParallelFetch plain
		// fetches in flight, plus one in-flight fetch per persistent
		// QUIC connection.
		var tcpQueue []SubFlow
		connQueues := make([][]SubFlow, maxQUICConns)
		for _, f := range byRound[k] {
			if f.QUIC {
				connQueues[f.Conn%maxQUICConns] = append(connQueues[f.Conn%maxQUICConns], f)
			} else {
				tcpQueue = append(tcpQueue, f)
			}
		}
		var startNextTCP func()
		startNextTCP = func() {
			if len(tcpQueue) == 0 {
				return
			}
			f := tcpQueue[0]
			tcpQueue = tcpQueue[1:]
			err := cell.StartFlow(ue, f.Size, ran.FlowOptions{OnComplete: func(fct sim.Time) {
				flowDone(fct)
				startNextTCP()
			}})
			if err != nil {
				panic(err)
			}
		}
		for i := 0; i < maxParallelFetch && i < pending; i++ {
			startNextTCP()
		}
		for ci, q := range connQueues {
			if len(q) == 0 {
				continue
			}
			conn := conns[ci]
			q := q
			var next func(i int)
			next = func(i int) {
				if i >= len(q) {
					return
				}
				err := cell.StartFlow(ue, q[i].Size, ran.FlowOptions{
					Conn: conn,
					OnComplete: func(fct sim.Time) {
						flowDone(fct)
						next(i + 1)
					},
				})
				if err != nil {
					panic(err)
				}
			}
			next(0)
		}
	}
	runRound(0)
	return nil
}

// maxParallelFetch is the browser's connection-pool limit for plain
// fetches (Chrome uses 6 per origin; pages span a few origins).
const maxParallelFetch = 8
