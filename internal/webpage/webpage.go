// Package webpage models the paper's web browsing experiments (§6.1):
// each Alexa top-20 page is expanded into its sub-flows using the flow
// statistics the paper reports (page size, flow counts, QUIC flow
// counts and bytes — Table 2 for the QUIC pages, page-size-scaled
// defaults for the rest), fetched in dependency rounds as a browser
// would, and the Page Load Time is the completion of the last sub-flow
// plus a render-time component. QUIC flows reuse one persistent
// connection per origin, reproducing the five-tuple-reuse limitation
// of §4.2.
package webpage

import (
	"fmt"

	"outran/internal/rng"
)

// KB and MB in bytes.
const (
	KB = 1024
	MB = 1024 * KB
)

// Page is one catalogue entry.
type Page struct {
	Name      string
	SizeKB    int // total page weight
	Flows     int // total flows fetched
	QUICFlows int // flows multiplexed over persistent connections
	QUICKB    int // bytes carried by the QUIC flows
	// RenderMS is the non-network fraction of PLT (parse/layout/JS);
	// dominant for pages like Zoom.us where the paper saw no PLT gain
	// despite faster flows.
	RenderMS int
}

// Catalogue returns the 20 pages of the paper's evaluation. The nine
// QUIC-supporting pages carry the exact Table 2 statistics; the rest
// use flow counts scaled from their page weight.
func Catalogue() []Page {
	return []Page{
		// Table 2 rows (QUIC-supporting pages).
		{Name: "facebook.com", SizeKB: 381, Flows: 33, QUICFlows: 21, QUICKB: 206, RenderMS: 900},
		{Name: "google.com", SizeKB: 540, Flows: 37, QUICFlows: 23, QUICKB: 70, RenderMS: 700},
		{Name: "google.com.hk", SizeKB: 541, Flows: 38, QUICFlows: 23, QUICKB: 70, RenderMS: 700},
		{Name: "youtube.com", SizeKB: 899, Flows: 26, QUICFlows: 8, QUICKB: 79, RenderMS: 800},
		{Name: "instagram.com", SizeKB: 1756, Flows: 25, QUICFlows: 7, QUICKB: 736, RenderMS: 1100},
		{Name: "netflix.com", SizeKB: 1902, Flows: 49, QUICFlows: 1, QUICKB: 1, RenderMS: 2200},
		{Name: "reddit.com", SizeKB: 1928, Flows: 90, QUICFlows: 1, QUICKB: 1, RenderMS: 1500},
		{Name: "zoom.us", SizeKB: 2816, Flows: 114, QUICFlows: 3, QUICKB: 165, RenderMS: 4200},
		{Name: "sohu.com", SizeKB: 3370, Flows: 522, QUICFlows: 8, QUICKB: 1, RenderMS: 2500},
		// Remaining top-20 pages (no QUIC).
		{Name: "baidu.com", SizeKB: 2600, Flows: 80, RenderMS: 2300},
		{Name: "tmall.com", SizeKB: 2400, Flows: 110, RenderMS: 2600},
		{Name: "taobao.com", SizeKB: 2500, Flows: 120, RenderMS: 2800},
		{Name: "360.cn", SizeKB: 1500, Flows: 70, RenderMS: 1400},
		{Name: "amazon.com", SizeKB: 1400, Flows: 85, RenderMS: 1200},
		{Name: "jd.com", SizeKB: 1800, Flows: 95, RenderMS: 1600},
		{Name: "qq.com", SizeKB: 1100, Flows: 60, RenderMS: 1000},
		{Name: "wikipedia.org", SizeKB: 350, Flows: 18, RenderMS: 500},
		{Name: "microsoft.com", SizeKB: 1200, Flows: 55, RenderMS: 1100},
		{Name: "xinhuanet.com", SizeKB: 2900, Flows: 140, RenderMS: 3200},
		{Name: "yahoo.com", SizeKB: 2200, Flows: 100, RenderMS: 1900},
	}
}

// PageByName resolves a catalogue entry.
func PageByName(name string) (Page, error) {
	for _, p := range Catalogue() {
		if p.Name == name {
			return p, nil
		}
	}
	return Page{}, fmt.Errorf("webpage: unknown page %q", name)
}

// SubFlow is one fetch of a page load.
type SubFlow struct {
	Size  int64
	Round int  // dependency round (0 = HTML, then assets, then late JS)
	QUIC  bool // rides a persistent connection
	Conn  int  // persistent connection index (QUIC flows only)
}

// NumRounds is the dependency depth of the page model: the root
// document, then CSS/JS, then images/XHR.
const NumRounds = 3

// maxQUICConns bounds the persistent connections per page (browsers
// pool a handful per origin).
const maxQUICConns = 3

// Expand materialises a page into its sub-flows. Flow sizes are drawn
// so that they sum to the page weight, with the QUIC flows summing to
// the measured QUIC bytes; the draw is deterministic in r.
func (p Page) Expand(r *rng.Source) []SubFlow {
	if p.Flows <= 0 {
		return nil
	}
	flows := make([]SubFlow, 0, p.Flows)
	nQUIC := p.QUICFlows
	if nQUIC > p.Flows {
		nQUIC = p.Flows
	}
	quicBytes := int64(p.QUICKB) * KB
	tcpBytes := int64(p.SizeKB)*KB - quicBytes
	if tcpBytes < 0 {
		tcpBytes = 0
	}
	nTCP := p.Flows - nQUIC

	split := func(total int64, n int) []int64 {
		if n <= 0 {
			return nil
		}
		// Heavy-ish split: weights drawn log-uniformly so one or two
		// flows dominate, as in real pages.
		w := make([]float64, n)
		sum := 0.0
		for i := range w {
			w[i] = r.LogUniform(1, 60)
			sum += w[i]
		}
		out := make([]int64, n)
		var used int64
		for i := range w {
			out[i] = int64(float64(total) * w[i] / sum)
			if out[i] < 200 {
				out[i] = 200
			}
			used += out[i]
		}
		// Adjust the largest flow so totals match.
		li := 0
		for i := range out {
			if out[i] > out[li] {
				li = i
			}
		}
		if d := total - used; out[li]+d > 200 {
			out[li] += d
		}
		return out
	}

	for i, sz := range split(tcpBytes, nTCP) {
		round := 0
		if i > 0 {
			round = 1 + r.Intn(NumRounds-1)
		}
		flows = append(flows, SubFlow{Size: sz, Round: round})
	}
	for i, sz := range split(quicBytes, nQUIC) {
		flows = append(flows, SubFlow{
			Size:  sz,
			Round: 1 + r.Intn(NumRounds-1),
			QUIC:  true,
			Conn:  i % maxQUICConns,
		})
	}
	return flows
}

// TotalBytes sums the sub-flow sizes.
func TotalBytes(flows []SubFlow) int64 {
	var n int64
	for _, f := range flows {
		n += f.Size
	}
	return n
}
