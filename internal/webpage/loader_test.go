package webpage

import (
	"testing"

	"outran/internal/ran"
	"outran/internal/rng"
	"outran/internal/sim"
)

func testCell(t *testing.T) *ran.Cell {
	t.Helper()
	cfg := ran.DefaultLTEConfig()
	cfg.NumUEs = 2
	cfg.Grid.NumRB = 25
	cfg.Seed = 5
	cell, err := ran.NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cell
}

func TestLoadCompletes(t *testing.T) {
	cell := testCell(t)
	page, _ := PageByName("google.com")
	var res *LoadResult
	err := Load(cell, 0, page, rng.New(3), func(r LoadResult) { res = &r })
	if err != nil {
		t.Fatal(err)
	}
	cell.Run(60 * sim.Second)
	if res == nil {
		t.Fatal("page never finished loading")
	}
	if len(res.FlowFCTs) != page.Flows {
		t.Fatalf("completed %d sub-flows, want %d", len(res.FlowFCTs), page.Flows)
	}
	if res.NetTime <= 0 {
		t.Fatal("no network time recorded")
	}
	wantRender := sim.Time(page.RenderMS) * sim.Millisecond
	if res.PLT != res.NetTime+wantRender {
		t.Fatalf("PLT %v != net %v + render %v", res.PLT, res.NetTime, wantRender)
	}
}

func TestLoadRoundsAreSequential(t *testing.T) {
	// The document round must complete before any later-round flow
	// starts; we verify via the PLT being at least the sum of the
	// slowest flow per round's serialised lower bound — a cheap proxy:
	// a page with 3 rounds cannot finish in less than 3 one-way trips.
	cell := testCell(t)
	page, _ := PageByName("facebook.com")
	var res *LoadResult
	if err := Load(cell, 0, page, rng.New(4), func(r LoadResult) { res = &r }); err != nil {
		t.Fatal(err)
	}
	cell.Run(60 * sim.Second)
	if res == nil {
		t.Fatal("page never finished")
	}
	minNet := 3 * cell.Config().Path.WiredDelay
	if res.NetTime < minNet {
		t.Fatalf("net time %v violates the %d-round lower bound %v", res.NetTime, NumRounds, minNet)
	}
}

func TestLoadAllCataloguePages(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole catalogue")
	}
	cell := testCell(t)
	r := rng.New(9)
	pages := Catalogue()
	done := 0
	// Load pages back to back, as a user browsing would.
	var next func(i int)
	next = func(i int) {
		if i >= len(pages) {
			return
		}
		if err := Load(cell, i%2, pages[i], r, func(LoadResult) {
			done++
			next(i + 1)
		}); err != nil {
			t.Errorf("%s: %v", pages[i].Name, err)
		}
	}
	cell.Eng.At(sim.Millisecond, func() { next(0) })
	cell.Run(600 * sim.Second)
	if done != len(pages) {
		t.Fatalf("loaded %d/%d pages", done, len(pages))
	}
}
