package experiments

import (
	"fmt"

	"outran/internal/metrics"
	"outran/internal/ran"
	"outran/internal/sim"
	"outran/internal/workload"
)

func init() {
	register("diurnal", Diurnal)
}

// Diurnal is the workload-engine showcase: the same heavy-tailed LTE
// traffic volume, redistributed by the diurnal envelope so the cell
// swings from a quiet trough to a busy peak inside one run, with the
// live KPI time-series sampling the short-flow tail through the swing.
// PF and OutRAN see byte-identical arrival sequences (same spec, same
// workload seed), so every per-interval row is a paired comparison:
// the peak intervals are where queues build and OutRAN's FCT-p99
// protection pays; the troughs show the two schedulers converging.
func Diurnal(opt Options) ([]Table, error) {
	opt = opt.withDefaults()
	spec, _ := workload.Scenario("diurnal", "lte", 0.7)

	// Sample the KPI stream ~12 times across the recorded window.
	every := opt.Duration / 12
	if every < 500*sim.Millisecond {
		every = 500 * sim.Millisecond
	}

	type point struct {
		t     sim.Time
		flows int64
		p99   float64
	}
	run := func(sched ran.SchedulerKind) ([]point, *ran.Cell, error) {
		cfg := baseLTE(opt, sched)
		cfg.KPIEvery = every
		h := ran.Harness{
			Config:       cfg.WithWorkload(spec),
			Warmup:       warmup,
			Window:       opt.Duration,
			Tail:         pressureTail,
			Drain:        opt.Drain,
			WorkloadSeed: opt.Seed + 7919,
		}
		cell, err := h.Build()
		if err != nil {
			return nil, nil, err
		}
		var pts []point
		// Drive the cell in KPI segments through the recorded window
		// (the envelope warps arrivals over the whole warmup+window+tail
		// span; sampling windows cut the recorded part of the swing).
		for t := warmup + every; t <= warmup+opt.Duration; t += every {
			cell.Run(t)
			s := cell.SampleKPI(t)
			pts = append(pts, point{t: t - warmup, flows: s.Rec.WinFlows, p99: s.Rec.WinP99Ms})
		}
		cell.Run(h.Total())
		return pts, cell, nil
	}

	pf, pfCell, err := run(ran.SchedPF)
	if err != nil {
		return nil, err
	}
	or, orCell, err := run(ran.SchedOutRAN)
	if err != nil {
		return nil, err
	}

	series := Table{
		Title:  "Diurnal swing: per-interval completed flows and FCT p99, PF vs OutRAN",
		Header: []string{"t_s", "flows_PF", "flows_OR", "p99_PF_ms", "p99_OR_ms"},
	}
	for i := range pf {
		row := []string{f2(pf[i].t.Seconds()), fmt.Sprint(pf[i].flows), "-", f2(pf[i].p99), "-"}
		if i < len(or) {
			row[2] = fmt.Sprint(or[i].flows)
			row[4] = f2(or[i].p99)
		}
		series.Rows = append(series.Rows, row)
	}

	sum := Table{
		Title:  "Diurnal swing: whole-run comparison (identical arrival sequences)",
		Header: []string{"scheduler", "flows", "S_p95_ms", "S_p99_ms", "overall_p99_ms", "SE_bit/s/Hz", "fairness"},
	}
	for _, v := range []struct {
		name string
		c    *ran.Cell
	}{{"PF", pfCell}, {"OutRAN", orCell}} {
		st := v.c.CollectStats()
		s := v.c.FCT.ByClass(metrics.Short)
		sum.Rows = append(sum.Rows, []string{
			v.name, fmt.Sprint(st.FlowsCompleted),
			ms(s.P95), ms(s.P99), ms(v.c.FCT.Overall().P99),
			f3(st.MeanSpectralEff), f3(st.MeanFairnessIndex),
		})
	}
	return []Table{series, sum}, nil
}
