package experiments

import (
	"fmt"

	"outran/internal/phy"
	"outran/internal/ran"
	"outran/internal/sim"
	"outran/internal/workload"
)

func init() {
	register("fig17", Fig17)
	register("fig20", Fig20)
}

// Fig17 reproduces the 5G impact table: for each server placement
// (MEC 5 ms / remote 20 ms), numerology (0-3), and cell load (10%/60%),
// it reports the measured RTT, the average queueing delay, the
// short-flow queueing delay, and the short-flow 95th-percentile FCT
// for PF vs OutRAN.
func Fig17(opt Options) ([]Table, error) {
	opt = opt.withDefaults()
	dist := workload.Mirage()
	t := Table{
		Title: "Fig 17: impact of OutRAN in 5G RAN (PF vs OutRAN)",
		Header: []string{"server", "mu/slot_us", "load",
			"RTT_PF_ms", "RTT_OR_ms", "Qdelay_PF_ms", "Qdelay_OR_ms",
			"S_Qdelay_PF_ms", "S_Qdelay_OR_ms", "S_p95_PF_ms", "S_p95_OR_ms"},
	}
	servers := []struct {
		name  string
		delay sim.Time
	}{
		{"MEC(5ms)", 5 * sim.Millisecond},
		{"Remote(20ms)", 20 * sim.Millisecond},
	}
	for _, srv := range servers {
		for mu := phy.Mu0; mu <= phy.Mu3; mu++ {
			for _, load := range []float64{0.1, 0.6} {
				run := func(sched ran.SchedulerKind) (*runResult, error) {
					cfg := ran.Default5GConfig(mu)
					cfg.NumUEs = max(4, opt.UEs*2/3)
					cfg.Scheduler = sched
					cfg.Seed = opt.Seed
					cfg.Path.WiredDelay = srv.delay
					cfg.Path.UplinkDelay = srv.delay + 4*sim.Millisecond
					// Scale RB count with the option's RB fraction to
					// keep runtimes bounded.
					cfg.Grid.NumRB = cfg.Grid.NumRB * opt.RBs / 100
					if cfg.Grid.NumRB < 10 {
						cfg.Grid.NumRB = 10
					}
					// 5G capacity is large; size the window by flow
					// count instead of wall time.
					probe, err := ran.NewCell(cfg)
					if err != nil {
						return nil, err
					}
					o := opt
					o.Duration = durationForFlows(300, load, probe.EffectiveCapacityBps(), dist.Mean())
					o.Drain = 8 * sim.Second
					return runCell(cfg, workload.PoissonSpec("mirage", load), o)
				}
				pf, err := run(ran.SchedPF)
				if err != nil {
					return nil, err
				}
				or, err := run(ran.SchedOutRAN)
				if err != nil {
					return nil, err
				}
				t.Rows = append(t.Rows, []string{
					srv.name,
					fmt.Sprintf("%d/%d", int(mu), mu.SlotDuration()/sim.Microsecond),
					f2(load),
					ms(pf.Stats.MeanSRTT), ms(or.Stats.MeanSRTT),
					ms(pf.DelayMean), ms(or.DelayMean),
					ms(pf.DelayShort), ms(or.DelayShort),
					ms(shortP95(pf)), ms(shortP95(or)),
				})
			}
		}
	}
	return []Table{t}, nil
}

// Fig20 reproduces the 5G FCT-vs-load curves and the SE/fairness
// comparison under the MIRAGE mobile-app workload.
func Fig20(opt Options) ([]Table, error) {
	opt = opt.withDefaults()
	dist := workload.Mirage()
	scheds := []ran.SchedulerKind{ran.SchedPF, ran.SchedSRJF, ran.SchedOutRAN}
	loads := []float64{0.4, 0.5, 0.6, 0.7, 0.8}

	fct := Table{Title: "Fig 20(a): 5G overall average FCT (ms) vs cell load", Header: []string{"load"}}
	sys := Table{
		Title:  "Fig 20(b): 5G spectral efficiency and fairness",
		Header: []string{"scheduler", "load", "SE_bit/s/Hz", "fairness"},
	}
	for _, s := range scheds {
		fct.Header = append(fct.Header, string(s))
	}
	results := map[ran.SchedulerKind]map[float64]*runResult{}
	for _, s := range scheds {
		results[s] = map[float64]*runResult{}
		for _, load := range loads {
			cfg := ran.Default5GConfig(phy.Mu1)
			cfg.NumUEs = max(4, opt.UEs*2/3)
			cfg.Scheduler = s
			cfg.Seed = opt.Seed
			cfg.Grid.NumRB = cfg.Grid.NumRB * opt.RBs / 100
			if cfg.Grid.NumRB < 10 {
				cfg.Grid.NumRB = 10
			}
			probe, err := ran.NewCell(cfg)
			if err != nil {
				return nil, err
			}
			o := opt
			o.Duration = durationForFlows(300, load, probe.EffectiveCapacityBps(), dist.Mean())
			o.Drain = 8 * sim.Second
			res, err := runCell(cfg, workload.PoissonSpec("mirage", load), o)
			if err != nil {
				return nil, err
			}
			results[s][load] = res
		}
	}
	for _, load := range loads {
		row := []string{f2(load)}
		for _, s := range scheds {
			row = append(row, ms(results[s][load].FCT.Overall().Mean))
		}
		fct.Rows = append(fct.Rows, row)
	}
	for _, s := range scheds {
		for _, load := range loads {
			r := results[s][load]
			sys.Rows = append(sys.Rows, []string{
				string(s), f2(load), f3(r.Stats.MeanSpectralEff), f3(r.Stats.MeanFairnessIndex),
			})
		}
	}
	return []Table{fct, sys}, nil
}
