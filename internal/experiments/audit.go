package experiments

import (
	"fmt"

	"outran/internal/metrics"
	"outran/internal/obs"
	"outran/internal/ran"
	"outran/internal/rng"
	"outran/internal/sim"
	"outran/internal/workload"
)

func init() {
	register("audit", AuditExperiment)
}

// AuditExperiment runs a traced OutRAN LTE cell and cross-checks the
// observability layer against the live run: the spectral-efficiency
// and fairness aggregates replayed from the trace's se_sample events
// must equal the CellTracker's own numbers, and the per-decision
// records quantify the §5.4 finding — how much PF metric the
// ε-relaxation sacrifices per override, and how rarely it overrides at
// all. This is the experiment behind the decision-audit walkthrough in
// EXPERIMENTS.md; `outran-trace audit` computes the same aggregates
// from a trace file written by `outran-sim -trace`.
func AuditExperiment(opt Options) ([]Table, error) {
	opt = opt.withDefaults()
	cfg := baseLTE(opt, ran.SchedOutRAN)
	cell, err := ran.NewCell(cfg)
	if err != nil {
		return nil, err
	}
	ring := obs.NewRingSink(0)
	cell.SetTracer(obs.NewTracer(ring))

	arrivalSpan := warmup + opt.Duration + pressureTail
	src, err := workload.Poisson(workload.PoissonConfig{
		Dist:            workload.LTECellular(),
		NumUEs:          cfg.NumUEs,
		Load:            0.7,
		CellCapacityBps: cell.EffectiveCapacityBps(),
		Duration:        arrivalSpan,
	}, rng.New(opt.Seed+7919))
	if err != nil {
		return nil, err
	}
	cell.ScheduleSource(src, 0, arrivalSpan)
	cell.Eng.At(warmup, cell.Tracker.Reset)
	cell.Eng.At(warmup+opt.Duration, cell.Tracker.Freeze)
	cell.Run(arrivalSpan + opt.Drain)
	if err := cell.Tracer().Close(); err != nil {
		return nil, err
	}

	st := cell.CollectStats()
	events := ring.Events()
	a := obs.ComputeAudit(events)

	check := Table{
		Title:  "Trace audit: replayed aggregates vs live run",
		Header: []string{"metric", "from_trace", "live_run", "match"},
	}
	row := func(name string, trace, live float64) {
		match := "yes"
		if trace != live {
			match = fmt.Sprintf("NO (Δ=%.3g)", trace-live)
		}
		check.Rows = append(check.Rows, []string{
			name, fmt.Sprintf("%.6f", trace), fmt.Sprintf("%.6f", live), match,
		})
	}
	row("mean_spectral_eff", a.MeanSE, st.MeanSpectralEff)
	row("mean_fairness", a.MeanFairness, st.MeanFairnessIndex)
	row("mean_active_se", a.MeanActiveSE, cell.Tracker.MeanActiveSE())
	row("ttis", float64(a.TTIs), float64(st.TTIs))
	row("flows_completed", float64(completedIn(events)), float64(st.FlowsCompleted))

	overrideRate := 0.0
	if a.Decisions > 0 {
		overrideRate = float64(a.Overrides) / float64(a.Decisions)
	}
	dec := Table{
		Title:  "§5.4 decision audit: the SE cost of ε-relaxation",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"decisions", fmt.Sprintf("%d", a.Decisions)},
			{"overrides", fmt.Sprintf("%d", a.Overrides)},
			{"override_rate", fmt.Sprintf("%.2f%%", 100*overrideRate)},
			{"mean_candidates", f2(a.CandMean)},
			{"mean_pf_metric_sacrifice", fmt.Sprintf("%.6f", a.SacrificeMean)},
			{"mean_fct_ms", ms(sim.Time(metrics.MeanFloat(fctSamples(cell))))},
		},
	}
	return []Table{check, dec}, nil
}

// completedIn counts completed flow spans in a trace.
func completedIn(events []obs.Event) int {
	n := 0
	for _, f := range obs.Timelines(events) {
		if f.End >= 0 {
			n++
		}
	}
	return n
}

// fctSamples extracts the recorded FCTs as float64 nanoseconds.
func fctSamples(cell *ran.Cell) []float64 {
	samples := cell.FCT.Samples()
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = float64(s.FCT)
	}
	return out
}
