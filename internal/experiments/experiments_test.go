package experiments

import (
	"strings"
	"testing"

	"outran/internal/sim"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "fig3", "fig4", "fig7", "fig8", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17",
		"fig18a", "fig18b", "fig18c", "fig18d", "fig19", "fig20",
		"chaos", "audit", "deployment", "warmstart", "diurnal",
		"capacity",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d entries, want %d: %v", len(IDs()), len(want), IDs())
	}
	if _, ok := Lookup("fig99"); ok {
		t.Error("bogus id resolved")
	}
}

func TestTablePrinting(t *testing.T) {
	tb := Table{
		Title:  "demo",
		Header: []string{"a", "long_header"},
		Rows:   [][]string{{"xxxxxx", "1"}, {"y", "2"}},
	}
	var sb strings.Builder
	tb.Fprint(&sb)
	out := sb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	// Columns aligned: the second column starts at the same offset.
	if strings.Index(lines[1], "long_header") != strings.Index(lines[2], "1") {
		t.Fatalf("columns not aligned:\n%s", out)
	}
}

func TestOptionsDefaultsAndScaling(t *testing.T) {
	o := Options{}.withDefaults()
	if o.UEs != 30 || o.RBs != 50 || o.Seeds != 2 || o.Seed != 1 {
		t.Fatalf("defaults %+v", o)
	}
	s := Options{Scale: 0.5}.withDefaults()
	if s.UEs != 15 {
		t.Fatalf("scaled UEs %d", s.UEs)
	}
	if s.Duration != o.Duration/2 {
		t.Fatalf("scaled duration %v", s.Duration)
	}
	if s.Seeds != 1 {
		t.Fatal("reduced scale should run a single seed")
	}
	tiny := Options{Scale: 0.01}.withDefaults()
	if tiny.UEs < 2 {
		t.Fatal("UE floor violated")
	}
}

func TestDurationForFlows(t *testing.T) {
	d := durationForFlows(300, 0.6, 100e6, 30e3)
	// rate = 0.6*100e6/8/30e3 = 250 flows/s -> 1.2 s, clamped to 2 s.
	if d != 2*sim.Second {
		t.Fatalf("duration %v", d)
	}
	d = durationForFlows(300, 0.1, 10e6, 120e3)
	// rate ~1.04 flows/s -> ~288 s, clamped to 60 s.
	if d != 60*sim.Second {
		t.Fatalf("duration %v", d)
	}
	if durationForFlows(10, 0, 0, 0) != sim.Second {
		t.Fatal("degenerate input")
	}
}

// TestStaticExperiments runs the two pure-table experiments end to end.
func TestStaticExperiments(t *testing.T) {
	for _, id := range []string{"table1", "table2"} {
		f, _ := Lookup(id)
		tables, err := f(Options{})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
	}
}

// TestOverheadExperiments runs the microbenchmark-style experiments
// (they are fast and need no simulation).
func TestOverheadExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	for _, id := range []string{"fig13", "fig14"} {
		f, _ := Lookup(id)
		tables, err := f(Options{})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables[0].Rows) != 4 {
			t.Fatalf("%s: %d rows", id, len(tables[0].Rows))
		}
	}
}

// TestTinySimExperiment exercises the shared runCell machinery through
// one real (but very small) figure harness.
func TestTinySimExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	f, _ := Lookup("fig7")
	tables, err := f(Options{Scale: 0.1, Duration: 2 * sim.Second, Drain: 6 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("fig7 produced %d tables", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != 3 {
			t.Fatalf("%s: %d rows, want 3 schedulers", tb.Title, len(tb.Rows))
		}
	}
}

func TestTableCSVAndSlug(t *testing.T) {
	tb := Table{
		Title:  "Fig 15(a): overall average FCT (ms) vs cell load",
		Header: []string{"load", "PF"},
		Rows:   [][]string{{"0.40", "51.3"}},
	}
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "load,PF\n0.40,51.3\n"
	if sb.String() != want {
		t.Fatalf("csv %q, want %q", sb.String(), want)
	}
	slug := tb.Slug()
	if slug != "fig-15-a-overall-average-fct-ms-vs-cell-load" {
		t.Fatalf("slug %q", slug)
	}
}

// TestMeasureDeployment exercises the capacity measurement machinery
// at tiny scale: the simulated fields must be populated and the
// machine-efficiency headlines derivable.
func TestMeasureDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	pt, err := MeasureDeployment(CapacitySpec{
		Cells:      2,
		UEsPerCell: 3,
		RBs:        15,
		Load:       0.5,
		Window:     sim.Second,
		Drain:      2 * sim.Second,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Cells != 2 || pt.UEs != 6 || pt.Workers < 1 {
		t.Fatalf("shape: %+v", pt)
	}
	if pt.Flows == 0 || pt.ShortFlows == 0 || pt.ShortP99 <= 0 {
		t.Fatalf("no flows measured: %+v", pt)
	}
	if pt.WallSeconds <= 0 || pt.CellsPerCore <= 0 {
		t.Fatalf("wall-clock headlines missing: %+v", pt)
	}
	if pt.PeakRSS == 0 || pt.UEsPerGB <= 0 {
		t.Fatalf("RSS headlines missing: %+v", pt)
	}
}
