package experiments

import (
	"fmt"
	"sort"

	"outran/internal/ran"
	"outran/internal/rng"
	"outran/internal/sim"
	"outran/internal/webpage"
	"outran/internal/workload"
)

func init() {
	register("fig12", Fig12)
	register("table2", Table2)
}

// pltRun loads each catalogue page several times on a cell where the
// measuring UE competes with websearch background traffic (the §6.1
// setup: interactive browsing vs heavy background flows), and returns
// the per-page PLT and mean sub-flow FCT.
type pltStats struct {
	plts []sim.Time
	fcts []sim.Time
}

func pltRun(opt Options, sched ran.SchedulerKind, pages []webpage.Page, runs int) (map[string]*pltStats, error) {
	cfg := ran.DefaultLTEConfig()
	cfg.Grid.NumRB = opt.RBs
	cfg.NumUEs = 4 // the paper's over-the-air testbed has 4 phones
	cfg.Scheduler = sched
	cfg.Seed = opt.Seed
	// Web traffic mixes dozens of concurrent fetches per UE; the
	// 128-SDU default starves retransmissions of demoted flows when
	// the buffer sits full of higher-priority bytes. Size the buffer
	// toward the 5x-LTE figure the paper cites for 5G (§3).
	cfg.BufferSDUs = 512
	if sched == ran.SchedOutRAN {
		// Pages mix short fetches with multi-hundred-KB assets: the
		// long-lived latency-sensitive case §6.3 calls out. Apply the
		// paper's priority-reset safety valve.
		cfg.OutRAN.ResetPeriod = 500 * sim.Millisecond
	}
	cell, err := ran.NewCell(cfg)
	if err != nil {
		return nil, err
	}
	// Background: websearch flows to every UE at 60% average cell load.
	dur := sim.Time(len(pages)*runs+2) * 2 * sim.Second
	bg, err := workload.Poisson(workload.PoissonConfig{
		Dist:            workload.WebSearch(),
		NumUEs:          cfg.NumUEs,
		Load:            0.6,
		CellCapacityBps: cell.EffectiveCapacityBps(),
		Duration:        dur,
	}, rng.New(opt.Seed+555))
	if err != nil {
		return nil, err
	}
	// Background flows never enter the FCT recorder: an empty record
	// window marks every arrival SkipRecord.
	cell.ScheduleSource(bg, 0, 0)

	out := make(map[string]*pltStats)
	pageRNG := rng.New(opt.Seed + 777)
	// One page load every 2 s on UE 0 (the paper requests a page
	// every 15 s; the shorter spacing only compresses wall time).
	i := 0
	for run := 0; run < runs; run++ {
		for _, p := range pages {
			p := p
			at := sim.Time(i+1) * 2 * sim.Second
			i++
			st := out[p.Name]
			if st == nil {
				st = &pltStats{}
				out[p.Name] = st
			}
			cell.Eng.At(at, func() {
				err := webpage.Load(cell, 0, p, pageRNG, func(res webpage.LoadResult) {
					st.plts = append(st.plts, res.PLT)
					st.fcts = append(st.fcts, res.FlowFCTs...)
				})
				if err != nil {
					panic(err)
				}
			})
		}
	}
	cell.Run(dur + 20*sim.Second)
	return out, nil
}

func meanT(v []sim.Time) sim.Time {
	if len(v) == 0 {
		return 0
	}
	var s sim.Time
	for _, x := range v {
		s += x
	}
	return s / sim.Time(len(v))
}

// Fig12 reproduces the page-load-time comparison over the Alexa top-20
// catalogue (Fig 12 + Fig 21): per-page mean PLT for vanilla PF
// ("srsRAN") vs OutRAN, the improvement, and the sub-flow FCT gain.
func Fig12(opt Options) ([]Table, error) {
	opt = opt.withDefaults()
	pages := webpage.Catalogue()
	runs := 3
	if opt.Scale > 0 && opt.Scale < 1 {
		runs = 1
		pages = pages[:max(3, int(float64(len(pages))*opt.Scale))]
	}
	pf, err := pltRun(opt, ran.SchedPF, pages, runs)
	if err != nil {
		return nil, err
	}
	or, err := pltRun(opt, ran.SchedOutRAN, pages, runs)
	if err != nil {
		return nil, err
	}
	t := Table{
		Title:  "Fig 12/21: page load time, srsRAN(PF) vs OutRAN",
		Header: []string{"page", "PLT_PF_ms", "PLT_OR_ms", "PLT_gain", "FCT_PF_ms", "FCT_OR_ms", "FCT_gain"},
	}
	names := make([]string, 0, len(pages))
	for _, p := range pages {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	var pltGain, fctGain float64
	n := 0
	for _, name := range names {
		a, b := pf[name], or[name]
		if a == nil || b == nil || len(a.plts) == 0 || len(b.plts) == 0 {
			continue
		}
		pa, pb := meanT(a.plts), meanT(b.plts)
		fa, fb := meanT(a.fcts), meanT(b.fcts)
		gainP := 1 - float64(pb)/float64(pa)
		gainF := 1 - float64(fb)/float64(fa)
		pltGain += gainP
		fctGain += gainF
		n++
		t.Rows = append(t.Rows, []string{
			name, ms(pa), ms(pb), fmt.Sprintf("%.1f%%", gainP*100),
			ms(fa), ms(fb), fmt.Sprintf("%.1f%%", gainF*100),
		})
	}
	if n > 0 {
		t.Rows = append(t.Rows, []string{
			"AVERAGE", "", "", fmt.Sprintf("%.1f%%", pltGain/float64(n)*100),
			"", "", fmt.Sprintf("%.1f%%", fctGain/float64(n)*100),
		})
	}
	return []Table{t}, nil
}

// Table2 prints the QUIC flow statistics of the page catalogue.
func Table2(opt Options) ([]Table, error) {
	t := Table{
		Title:  "Table 2: flow statistics for QUIC supported webpages",
		Header: []string{"Page", "Page Size (KB)", "QUIC bytes (KB)", "# Flows", "# QUIC Flows"},
	}
	for _, p := range webpage.Catalogue() {
		if p.QUICFlows == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			p.Name,
			fmt.Sprintf("%d", p.SizeKB),
			fmt.Sprintf("%d", p.QUICKB),
			fmt.Sprintf("%d", p.Flows),
			fmt.Sprintf("%d", p.QUICFlows),
		})
	}
	return []Table{t}, nil
}
