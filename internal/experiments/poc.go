package experiments

import (
	"fmt"

	"outran/internal/metrics"
	"outran/internal/ran"
	"outran/internal/workload"
)

func init() {
	register("fig7", Fig7)
	register("fig8", Fig8)
}

// Fig7 is the proof-of-concept comparison (§4.3): OutRAN(ε=0.2) vs
// strict MLFQ vs PF — CDFs of spectral efficiency, fairness, and the
// FCT split into short and long flows.
func Fig7(opt Options) ([]Table, error) {
	opt = opt.withDefaults()
	spec := workload.PoissonSpec("lte", 0.6)

	type variant struct {
		name string
		res  *runResult
	}
	var variants []variant
	for _, v := range []struct {
		name  string
		sched ran.SchedulerKind
	}{
		{"PF", ran.SchedPF},
		{"OutRAN(eps=0.2)", ran.SchedOutRAN},
		{"StrictMLFQ", ran.SchedStrictMLFQ},
	} {
		res, err := runCell(baseLTE(opt, v.sched), spec, opt)
		if err != nil {
			return nil, err
		}
		variants = append(variants, variant{v.name, res})
	}

	sys := Table{
		Title:  "Fig 7(a,b): spectral efficiency and fairness distribution (per 50-TTI samples)",
		Header: []string{"scheduler", "SE_mean", "SE_active", "SE_p10", "SE_p90", "fair_mean", "fair_p10", "fair_p90"},
	}
	for _, v := range variants {
		se := v.res.SESamples
		fa := v.res.FairSamples
		sys.Rows = append(sys.Rows, []string{
			v.name,
			f3(metrics.MeanFloat(se)), f3(v.res.ActiveSE),
			f3(metrics.FloatPercentile(se, 0.1)), f3(metrics.FloatPercentile(se, 0.9)),
			f3(metrics.MeanFloat(fa)), f3(metrics.FloatPercentile(fa, 0.1)), f3(metrics.FloatPercentile(fa, 0.9)),
		})
	}

	fct := Table{
		Title:  "Fig 7(c): FCT distribution, short (<10KB) and long (>0.1MB) flows",
		Header: []string{"scheduler", "S_mean_ms", "S_p95_ms", "S_p99_ms", "L_mean_ms", "L_p99_ms"},
	}
	for _, v := range variants {
		s := v.res.FCT.ByClass(metrics.Short)
		l := v.res.FCT.ByClass(metrics.Long)
		fct.Rows = append(fct.Rows, []string{
			v.name, ms(s.Mean), ms(s.P95), ms(s.P99), ms(l.Mean), ms(l.P99),
		})
	}
	return []Table{sys, fct}, nil
}

// Fig8 sweeps the relaxation threshold ε, producing the SE-vs-fairness
// frontier of the sensitivity figure, plus the top-K ablation the
// paper argues against in §4.3.
func Fig8(opt Options) ([]Table, error) {
	opt = opt.withDefaults()
	spec := workload.PoissonSpec("lte", 0.6)

	t := Table{
		Title:  "Fig 8: OutRAN sensitivity to eps (PF baseline at eps=0)",
		Header: []string{"eps", "SE_bit/s/Hz", "SE_active", "fairness", "S_mean_ms", "S_p95_ms"},
	}
	for _, eps := range []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0} {
		cfg := baseLTE(opt, ran.SchedOutRAN)
		cfg.OutRAN.Epsilon = eps
		res, err := runCell(cfg, spec, opt)
		if err != nil {
			return nil, err
		}
		s := res.FCT.ByClass(metrics.Short)
		t.Rows = append(t.Rows, []string{
			f2(eps), f3(res.Stats.MeanSpectralEff), f3(res.ActiveSE), f3(res.Stats.MeanFairnessIndex),
			ms(s.Mean), ms(s.P95),
		})
	}

	topk := Table{
		Title:  "Fig 8 ablation: eps relaxation vs top-K candidate set",
		Header: []string{"variant", "SE_bit/s/Hz", "fairness", "S_mean_ms"},
	}
	for _, k := range []int{2, 4, 8} {
		cfg := baseLTE(opt, ran.SchedOutRAN)
		cfg.OutRAN.Epsilon = 0.2
		cfg.OutRAN.TopK = k
		res, err := runCell(cfg, spec, opt)
		if err != nil {
			return nil, err
		}
		s := res.FCT.ByClass(metrics.Short)
		topk.Rows = append(topk.Rows, []string{
			fmt.Sprintf("topK=%d", k), f3(res.Stats.MeanSpectralEff), f3(res.Stats.MeanFairnessIndex), ms(s.Mean),
		})
	}
	return []Table{t, topk}, nil
}
