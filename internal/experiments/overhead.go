package experiments

import (
	"fmt"
	"runtime"
	"time"

	"outran/internal/core"
	"outran/internal/ip"
	"outran/internal/mac"
	"outran/internal/pdcp"
	"outran/internal/phy"
	"outran/internal/rng"
	"outran/internal/sim"
)

func init() {
	register("fig13", Fig13)
	register("fig14", Fig14)
}

// mlfqCls adapts core.MLFQ to the PDCP classifier for the overhead
// microbenchmarks (mirrors the adapter inside internal/ran).
type mlfqCls struct{ p *core.MLFQ }

func (c mlfqCls) Classify(sent int64, _ pdcp.FlowMeta) int { return c.p.PriorityFor(sent) }

// Fig13 reproduces the throughput & resource usage measurement: the
// per-SDU cost of OutRAN's flow identification and the flow-table
// memory footprint as the number of active flows scales from 1k to 8k,
// plus the resulting fraction of the 125 µs NR µ3 TTI — the paper's
// argument that the overhead cannot dent the processing throughput.
func Fig13(opt Options) ([]Table, error) {
	t := Table{
		Title: "Fig 13: OutRAN flow-identification overhead vs active flows",
		Header: []string{"flows", "ns_per_SDU", "flowtable_KB", "pct_of_125us_TTI",
			"throughput_headroom"},
	}
	for _, nFlows := range []int{1000, 2000, 4000, 8000} {
		perSDU, tableKB, err := measureInspect(nFlows)
		if err != nil {
			return nil, err
		}
		pct := perSDU / 125000 * 100
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", nFlows),
			fmt.Sprintf("%.0f", perSDU),
			fmt.Sprintf("%d", tableKB),
			fmt.Sprintf("%.3f%%", pct),
			"OK (per-SDU cost ≪ TTI)",
		})
	}
	return []Table{t}, nil
}

// measureInspect times PDCP Submit (header inspection + flow table +
// MLFQ tagging + ciphering) over nFlows concurrent flows.
//
//outran:wallclock measures real per-SDU CPU cost (Table 2), not simulated time
func measureInspect(nFlows int) (nsPerSDU float64, tableKB int, err error) {
	eng := &sim.Engine{}
	var seq uint64
	tx, err := pdcp.NewTx(eng, pdcp.TxConfig{SNBits: 12, Bearer: 6}, mlfqCls{core.DefaultMLFQ()}, &seq)
	if err != nil {
		return 0, 0, err
	}
	r := rng.New(99)
	pkts := make([]ip.Packet, nFlows)
	for i := range pkts {
		pkts[i] = ip.Packet{
			Tuple: ip.FiveTuple{
				Src: ip.AddrFrom(10, 0, byte(i>>8), byte(i)), Dst: ip.AddrFrom(10, 1, 0, 1),
				SrcPort: 443, DstPort: uint16(1024 + i%60000), Proto: ip.ProtoTCP,
			},
			PayloadLen: 1400,
		}
	}
	const rounds = 30
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	n := 0
	for round := 0; round < rounds; round++ {
		for i := range pkts {
			pkts[i].Seq = uint32(r.Uint64())
			if tx.Submit(pkts[i], pdcp.FlowMeta{FlowSize: -1}) == nil {
				return 0, 0, fmt.Errorf("submit failed")
			}
			n++
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	heap := int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	if heap < 0 {
		heap = 0
	}
	return float64(elapsed.Nanoseconds()) / float64(n), int(heap / 1024), nil
}

// Fig14 reproduces the scalability-vs-RBs measurement: wall-clock cost
// of one TTI of MAC scheduling for PF vs OutRAN as the number of RBs
// grows — both scale as O(|U||B|) and OutRAN's second pass stays a
// small constant factor.
func Fig14(opt Options) ([]Table, error) {
	t := Table{
		Title:  "Fig 14: per-TTI scheduling cost vs number of RBs (20 users)",
		Header: []string{"RBs", "PF_us_per_TTI", "OutRAN_us_per_TTI", "ratio", "pct_of_1ms_TTI"},
	}
	const users = 20
	for _, rbs := range []int{25, 50, 75, 100} {
		pf := measureSched(mac.NewPF(), users, rbs)
		outran, err := core.NewInterUser(mac.PFMetric, "PF", 0.2)
		if err != nil {
			return nil, err
		}
		or := measureSched(outran, users, rbs)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", rbs),
			fmt.Sprintf("%.1f", pf),
			fmt.Sprintf("%.1f", or),
			f2(or / pf),
			fmt.Sprintf("%.2f%%", or/1000*100),
		})
	}
	return []Table{t}, nil
}

// measureSched times Allocate in microseconds per TTI.
//
//outran:wallclock measures real scheduler CPU cost (Fig 14), not simulated time
func measureSched(s mac.Scheduler, nUsers, nRB int) float64 {
	grid := phy.Grid{Numerology: phy.Mu0, NumRB: nRB, CarrierHz: 2.68e9}
	r := rng.New(7)
	users := make([]*mac.User, nUsers)
	for i := range users {
		cqis := make([]phy.CQI, 13)
		for j := range cqis {
			cqis[j] = phy.CQI(1 + r.Intn(15))
		}
		perPrio := make([]int, 4)
		perPrio[r.Intn(4)] = 1000
		users[i] = &mac.User{
			ID:         mac.UserID(i),
			SubbandCQI: cqis,
			AvgTputBps: 1e5 + r.Float64()*1e7,
			Buffer:     mac.BufferStatus{TotalBytes: 1000, PerPriority: perPrio},
		}
	}
	const ttis = 300
	start := time.Now()
	for i := 0; i < ttis; i++ {
		s.Allocate(sim.Time(i)*sim.Millisecond, users, grid)
	}
	return float64(time.Since(start).Microseconds()) / ttis
}
