package experiments

import (
	"outran/internal/channel"
	"outran/internal/metrics"
	"outran/internal/phy"
	"outran/internal/ran"
	"outran/internal/workload"
)

func init() {
	register("fig19", Fig19)
}

// Fig19 reproduces the Colosseum experiments: a four-cell topology (4
// eNodeBs x 4 UEs each, 15 RBs as in the SCOPE configuration) under
// the Rome / Boston / POWDER RF scenarios at cell loads 0.2/0.4/0.6,
// comparing vanilla PF ("srsRAN") against OutRAN on the FCT columns of
// the paper's table. Cells are independent (no inter-cell
// interference, as in the paper's per-cell traffic model); results
// aggregate over the four cells.
func Fig19(opt Options) ([]Table, error) {
	opt = opt.withDefaults()
	const numCells = 4
	t := Table{
		Title: "Fig 19: Colosseum-style 4-cell FCT results (PF='srsRAN')",
		Header: []string{"scenario", "load", "sched",
			"overall_ms", "S_ms", "S_p95_ms", "M_ms", "L_ms"},
	}
	scenarios := []struct {
		name string
		sc   channel.Scenario
	}{
		{"Rome (close, moderate)", channel.ColosseumRome()},
		{"Boston (close, fast)", channel.ColosseumBoston()},
		{"POWDER (medium, static)", channel.ColosseumPOWDER()},
	}
	for _, sc := range scenarios {
		for _, load := range []float64{0.2, 0.4, 0.6} {
			for _, sched := range []ran.SchedulerKind{ran.SchedPF, ran.SchedOutRAN} {
				agg := &metrics.FCTRecorder{}
				for cellIdx := 0; cellIdx < numCells; cellIdx++ {
					cfg := ran.DefaultLTEConfig()
					cfg.Grid = phy.Colosseum()
					cfg.Scenario = sc.sc
					cfg.NumUEs = 4
					cfg.Scheduler = sched
					cfg.Seed = opt.Seed + uint64(cellIdx)*101
					res, err := runCell(cfg, workload.PoissonSpec("lte", load), opt)
					if err != nil {
						return nil, err
					}
					for _, s := range res.FCT.Samples() {
						agg.Record(s)
					}
				}
				name := "srsRAN(PF)"
				if sched == ran.SchedOutRAN {
					name = "OutRAN"
				}
				t.Rows = append(t.Rows, []string{
					sc.name, f2(load), name,
					ms(agg.Overall().Mean),
					ms(agg.ByClass(metrics.Short).Mean),
					ms(agg.ByClass(metrics.Short).P95),
					ms(agg.ByClass(metrics.Medium).Mean),
					ms(agg.ByClass(metrics.Long).Mean),
				})
			}
		}
	}
	return []Table{t}, nil
}
