// Package experiments contains one harness per table and figure of the
// paper's evaluation. Each harness builds the workload and cell(s),
// runs the simulation, and returns the same rows/series the paper
// reports, so `outran-bench <id>` regenerates the artifact. Absolute
// numbers differ from the paper (different substrate); EXPERIMENTS.md
// records the shape comparison.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"

	"outran/internal/deploy"
	"outran/internal/metrics"
	"outran/internal/ran"
	"outran/internal/sim"
	"outran/internal/workload"
)

// Options scales the experiments. The defaults reproduce the paper's
// shapes in seconds per run; Full approaches the paper's scale.
type Options struct {
	UEs      int
	RBs      int
	Duration sim.Time
	Drain    sim.Time
	Seed     uint64
	// Seeds is the number of independent repetitions aggregated per
	// data point (heavy-tailed workloads make single runs noisy).
	Seeds int
	// Scale multiplies UEs and Duration; used by the benches to run
	// reduced but shape-preserving versions.
	Scale float64
	// Workers bounds how many independent runs (seeds, deployment
	// cells) execute concurrently; <= 0 means GOMAXPROCS. Results are
	// aggregated in seed order, so the worker count never changes
	// them.
	Workers int
}

// withDefaults fills the standard configuration.
func (o Options) withDefaults() Options {
	if o.UEs == 0 {
		o.UEs = 30
	}
	if o.RBs == 0 {
		o.RBs = 50
	}
	if o.Duration == 0 {
		o.Duration = 20 * sim.Second
	}
	if o.Drain == 0 {
		o.Drain = 15 * sim.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Seeds == 0 {
		o.Seeds = 2
	}
	if o.Scale > 0 && o.Scale != 1 {
		o.UEs = max(2, int(float64(o.UEs)*o.Scale))
		o.Duration = sim.Time(float64(o.Duration) * o.Scale)
		if o.Scale < 1 {
			o.Seeds = 1
		}
	}
	return o
}

// Table is a printable result artifact.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// WriteCSV renders the table as CSV (header row first).
func (t Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Slug returns a filesystem-friendly name derived from the title.
func (t Table) Slug() string {
	s := strings.ToLower(t.Title)
	var b strings.Builder
	dash := false
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			dash = false
		default:
			if !dash && b.Len() > 0 {
				b.WriteByte('-')
				dash = true
			}
		}
	}
	out := strings.Trim(b.String(), "-")
	if len(out) > 60 {
		out = out[:60]
	}
	return out
}

// Fprint renders the table with aligned columns.
func (t Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// runResult aggregates a data point over opt.Seeds independent runs:
// FCT samples are merged, scalar metrics averaged, counters summed.
type runResult struct {
	FCT           *metrics.FCTRecorder
	SESamples     []float64
	ActiveSamples []float64
	FairSamples   []float64
	SampleTimes   []sim.Time // first seed's series (time-series tables)
	Stats         ran.Stats
	// ActiveSE is the mean active-resource spectral efficiency (bits
	// per used RB-second-Hz): the radio-efficiency cost of scheduling
	// decisions, insensitive to deferred backlog.
	ActiveSE   float64
	DelayMean  sim.Time
	DelayShort sim.Time
}

// Measurement methodology shared by the harnesses: a warmup transient
// is excluded, FCTs are recorded for flows arriving in the main
// window, and arrivals continue through a pressure tail so the flows
// recorded near the end of the window complete under sustained load
// (steady state, not a draining cell). SE/fairness are sampled over
// the main window only.
const (
	warmup       = 2 * sim.Second
	pressureTail = 8 * sim.Second
)

// runCell aggregates opt.Seeds repetitions of runOnce. The seeds run
// across the shared worker pool; aggregation folds in seed order after
// the pool drains, so the worker count never changes the result.
func runCell(cfg ran.Config, spec workload.Spec, opt Options) (*runResult, error) {
	agg := &runResult{FCT: &metrics.FCTRecorder{}}
	n := opt.Seeds
	if n < 1 {
		n = 1
	}
	cells := make([]*ran.Cell, n)
	err := deploy.ForEach(n, opt.Workers, func(s int) error {
		o := opt
		o.Seed = opt.Seed + uint64(s)*1009
		c := cfg.WithSeed(o.Seed)
		var runErr error
		cells[s], runErr = runOnce(c, spec, o)
		return runErr
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: seed %w", err)
	}
	var delaySum, delayShortSum, srttSum sim.Time
	for s := 0; s < n; s++ {
		cell := cells[s]
		st := cell.CollectStats()
		for _, smp := range cell.FCT.Samples() {
			agg.FCT.Record(smp)
		}
		for i := 0; i < cell.FCT.Started(); i++ {
			agg.FCT.FlowStarted()
		}
		agg.SESamples = append(agg.SESamples, cell.Tracker.SpectralEfficiencySamples()...)
		agg.ActiveSamples = append(agg.ActiveSamples, cell.Tracker.ActiveSESamples()...)
		agg.FairSamples = append(agg.FairSamples, cell.Tracker.FairnessSamples()...)
		if s == 0 {
			agg.SampleTimes = cell.Tracker.SampleTimes()
		}
		agg.Stats.BufferDrops += st.BufferDrops
		agg.Stats.DecipherFailures += st.DecipherFailures
		agg.Stats.ReassemblyDrops += st.ReassemblyDrops
		agg.Stats.HARQFailures += st.HARQFailures
		agg.Stats.AMAbandoned += st.AMAbandoned
		agg.Stats.AMRetxBytes += st.AMRetxBytes
		agg.Stats.FlowsStarted += st.FlowsStarted
		agg.Stats.FlowsCompleted += st.FlowsCompleted
		agg.Stats.TTIs += st.TTIs
		srttSum += st.MeanSRTT
		delaySum += cell.Delay.Mean()
		delayShortSum += cell.Delay.MeanShort()
	}
	agg.Stats.MeanSpectralEff = metrics.MeanFloat(agg.SESamples)
	agg.ActiveSE = metrics.MeanFloat(agg.ActiveSamples)
	agg.Stats.MeanFairnessIndex = metrics.MeanFloat(agg.FairSamples)
	agg.Stats.MeanSRTT = srttSum / sim.Time(n)
	agg.DelayMean = delaySum / sim.Time(n)
	agg.DelayShort = delayShortSum / sim.Time(n)
	return agg, nil
}

// runOnce runs one cell through the shared ran.Harness entry point
// (warmup + opt.Duration recorded + pressure tail, then drain).
func runOnce(cfg ran.Config, spec workload.Spec, opt Options) (*ran.Cell, error) {
	return ran.Harness{
		Config:       cfg.WithWorkload(spec),
		Warmup:       warmup,
		Window:       opt.Duration,
		Tail:         pressureTail,
		Drain:        opt.Drain,
		WorkloadSeed: opt.Seed + 7919,
	}.Run()
}

// baseLTE builds the standard LTE config for an experiment through the
// validated ran.Config path.
func baseLTE(opt Options, sched ran.SchedulerKind) ran.Config {
	return ran.DefaultLTEConfig().
		WithTopology(opt.UEs, opt.RBs).
		ForScheduler(sched).
		WithSeed(opt.Seed)
}

// ms formats a sim.Time in milliseconds.
func ms(t sim.Time) string { return fmt.Sprintf("%.1f", t.Milliseconds()) }

// f3 formats a float with 3 decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// f2 formats a float with 2 decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Func runs one experiment and returns its tables.
type Func func(Options) ([]Table, error)

// registry maps experiment ids to harnesses.
var registry = map[string]Func{}

func register(id string, f Func) { registry[id] = f }

// Lookup resolves an experiment id.
func Lookup(id string) (Func, bool) {
	f, ok := registry[id]
	return f, ok
}

// IDs lists the registered experiment ids in order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// shortP95 is a convenience accessor used by several harnesses.
func shortP95(r *runResult) sim.Time {
	return r.FCT.ByClass(metrics.Short).P95
}

// durationForFlows returns the arrival window needed for roughly
// target flows at the given load — used by the 5G experiments, where
// the much larger capacity means a short window already yields good
// statistics.
func durationForFlows(target int, load, capacityBps, meanFlowBytes float64) sim.Time {
	if load <= 0 || capacityBps <= 0 || meanFlowBytes <= 0 {
		return sim.Second
	}
	rate := load * capacityBps / 8 / meanFlowBytes // flows per second
	d := sim.Time(float64(target) / rate * float64(sim.Second))
	if d < 2*sim.Second {
		d = 2 * sim.Second
	}
	if d > 60*sim.Second {
		d = 60 * sim.Second
	}
	return d
}
