package experiments

import (
	"fmt"

	"outran/internal/metrics"
	"outran/internal/ran"
	"outran/internal/sim"
	"outran/internal/workload"
)

func init() {
	register("fig18a", Fig18a)
	register("fig18b", Fig18b)
	register("fig18c", Fig18c)
	register("fig18d", Fig18d)
}

// fairnessWindows is the T_f sweep of the ablation study. The largest
// values behave like MT (fairness window longer than the run).
var fairnessWindows = []sim.Time{
	10 * sim.Millisecond, 100 * sim.Millisecond, sim.Second, 10 * sim.Second, 100 * sim.Second,
}

// Fig18a reproduces the PF trade-off frontier: spectral efficiency vs
// fairness as the fairness window T_f grows from RR-like (10 ms) to
// MT-like (100 s / MT).
func Fig18a(opt Options) ([]Table, error) {
	opt = opt.withDefaults()
	spec := workload.PoissonSpec("lte", 0.6)
	t := Table{
		Title:  "Fig 18(a): PF frontier across fairness windows T_f",
		Header: []string{"T_f", "SE_bit/s/Hz", "fairness"},
	}
	for _, tf := range fairnessWindows {
		cfg := baseLTE(opt, ran.SchedPF)
		cfg.FairnessWindow = tf
		res, err := runCell(cfg, spec, opt)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			tf.String(), f3(res.Stats.MeanSpectralEff), f3(res.Stats.MeanFairnessIndex),
		})
	}
	cfgMT := baseLTE(opt, ran.SchedMT)
	res, err := runCell(cfgMT, spec, opt)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"MT", f3(res.Stats.MeanSpectralEff), f3(res.Stats.MeanFairnessIndex)})
	return []Table{t}, nil
}

// Fig18b is the component ablation: legacy scheduler vs legacy +
// intra-user only (eps=0) vs full OutRAN, across fairness windows and
// MT — normalized average FCT as in the paper.
func Fig18b(opt Options) ([]Table, error) {
	opt = opt.withDefaults()
	spec := workload.PoissonSpec("lte", 0.6)
	t := Table{
		Title:  "Fig 18(b): ablation — normalized avg FCT (legacy / +intra-user / full OutRAN)",
		Header: []string{"T_f", "legacy_ms", "intra_ms", "outran_ms", "intra_norm", "outran_norm"},
	}
	type variantCfg func() ran.Config
	run := func(mk variantCfg) (sim.Time, error) {
		res, err := runCell(mk(), spec, opt)
		if err != nil {
			return 0, err
		}
		return res.FCT.Overall().Mean, nil
	}
	addRow := func(label string, legacy, intra, full variantCfg) error {
		l, err := run(legacy)
		if err != nil {
			return err
		}
		i, err := run(intra)
		if err != nil {
			return err
		}
		f, err := run(full)
		if err != nil {
			return err
		}
		norm := func(v sim.Time) string {
			if l == 0 {
				return "n/a"
			}
			return f3(float64(v) / float64(l))
		}
		t.Rows = append(t.Rows, []string{label, ms(l), ms(i), ms(f), norm(i), norm(f)})
		return nil
	}
	for _, tf := range fairnessWindows {
		tf := tf
		legacy := func() ran.Config {
			c := baseLTE(opt, ran.SchedPF)
			c.FairnessWindow = tf
			return c
		}
		intra := func() ran.Config {
			c := baseLTE(opt, ran.SchedOutRAN)
			c.FairnessWindow = tf
			c.OutRAN.Epsilon = 0
			return c
		}
		full := func() ran.Config {
			c := baseLTE(opt, ran.SchedOutRAN)
			c.FairnessWindow = tf
			return c
		}
		if err := addRow(tf.String(), legacy, intra, full); err != nil {
			return nil, err
		}
	}
	// MT row: OutRAN wrapping the MT metric.
	legacyMT := func() ran.Config { return baseLTE(opt, ran.SchedMT) }
	intraMT := func() ran.Config {
		c := baseLTE(opt, ran.SchedOutRAN)
		c.InnerScheduler = ran.SchedMT
		c.OutRAN.Epsilon = 0
		return c
	}
	fullMT := func() ran.Config {
		c := baseLTE(opt, ran.SchedOutRAN)
		c.InnerScheduler = ran.SchedMT
		return c
	}
	if err := addRow("MT", legacyMT, intraMT, fullMT); err != nil {
		return nil, err
	}
	return []Table{t}, nil
}

// Fig18c compares the RLC AM and UM modes under PF and OutRAN —
// short-flow FCT tail, plus the AM bandwidth-waste counters.
func Fig18c(opt Options) ([]Table, error) {
	opt = opt.withDefaults()
	spec := workload.PoissonSpec("lte", 0.6)
	t := Table{
		Title:  "Fig 18(c): RLC AM vs UM mode, PF vs OutRAN",
		Header: []string{"mode+sched", "S_mean_ms", "S_p95_ms", "S_p99_ms", "SE", "fairness", "retx_KB"},
	}
	for _, v := range []struct {
		name  string
		mode  ran.RLCMode
		sched ran.SchedulerKind
	}{
		{"AM+PF", ran.AM, ran.SchedPF},
		{"AM+OutRAN", ran.AM, ran.SchedOutRAN},
		{"UM+PF", ran.UM, ran.SchedPF},
		{"UM+OutRAN", ran.UM, ran.SchedOutRAN},
	} {
		cfg := baseLTE(opt, v.sched)
		cfg.RLC = v.mode
		res, err := runCell(cfg, spec, opt)
		if err != nil {
			return nil, err
		}
		s := res.FCT.ByClass(metrics.Short)
		t.Rows = append(t.Rows, []string{
			v.name, ms(s.Mean), ms(s.P95), ms(s.P99),
			f3(res.Stats.MeanSpectralEff), f3(res.Stats.MeanFairnessIndex),
			fmt.Sprintf("%d", res.Stats.AMRetxBytes/1024),
		})
	}
	return []Table{t}, nil
}

// Fig18d reproduces the priority-reset case study: an incast-like
// burst workload (8 KB flows, 10% of volume) on top of the LTE
// distribution at 80% load; the reset period S sweeps from none down
// to 100 ms, trading short-flow gains for long-flow protection.
func Fig18d(opt Options) ([]Table, error) {
	opt = opt.withDefaults()
	t := Table{
		Title:  "Fig 18(d): priority reset period vs FCT (normalized to PF)",
		Header: []string{"reset", "S_avg_norm", "L_avg_norm", "S_avg_ms", "L_avg_ms", "S_p95_ms"},
	}

	// The base workload takes 90% of the volume; the incast class the
	// remaining 10%, as synchronized 8 KB bursts over the whole span.
	spec := workload.Spec{
		Load: 0.8,
		Classes: []workload.ClassSpec{
			{Kind: workload.ClassWeb, Share: 0.9},
			{Kind: workload.ClassIncast, Share: 0.1, Size: 8 * 1024, Burst: 12},
		},
	}
	run := func(cfg ran.Config) (*runResult, error) {
		return runCell(cfg, spec, opt)
	}

	pf, err := run(baseLTE(opt, ran.SchedPF))
	if err != nil {
		return nil, err
	}
	pfS := pf.FCT.ByClass(metrics.Short).Mean
	pfL := pf.FCT.ByClass(metrics.Long).Mean
	norm := func(v, base sim.Time) string {
		if base == 0 {
			return "n/a"
		}
		return f3(float64(v) / float64(base))
	}
	resets := []struct {
		label  string
		period sim.Time
	}{
		{"none", 0},
		{"10s", 10 * sim.Second},
		{"1s", sim.Second},
		{"500ms", 500 * sim.Millisecond},
		{"200ms", 200 * sim.Millisecond},
		{"100ms", 100 * sim.Millisecond},
	}
	for _, rs := range resets {
		cfg := baseLTE(opt, ran.SchedOutRAN)
		cfg.OutRAN.ResetPeriod = rs.period
		res, err := run(cfg)
		if err != nil {
			return nil, err
		}
		s := res.FCT.ByClass(metrics.Short)
		l := res.FCT.ByClass(metrics.Long)
		t.Rows = append(t.Rows, []string{
			rs.label, norm(s.Mean, pfS), norm(l.Mean, pfL), ms(s.Mean), ms(l.Mean), ms(s.P95),
		})
	}
	t.Rows = append(t.Rows, []string{"PF", "1.000", "1.000", ms(pfS), ms(pfL),
		ms(pf.FCT.ByClass(metrics.Short).P95)})
	return []Table{t}, nil
}
