package experiments

import (
	"fmt"

	"outran/internal/fault"
	"outran/internal/ran"
	"outran/internal/sim"
)

func init() {
	register("chaos", Chaos)
}

// chaosIntensities is the fault-plan arrival-rate sweep: fault-free
// baseline, mild chaos, heavy chaos.
var chaosIntensities = []float64{0, 0.3, 0.7}

// Chaos is the robustness experiment: PF vs OutRAN under randomized
// fault schedules of increasing intensity, AM RLC, with the runtime
// invariant monitor attached to every run. Reported per cell: mean
// FCT, completed flows, re-establishments, abandoned AM PDUs, and the
// monitor verdict — degradation should be graceful and invariants
// must hold at every intensity.
func Chaos(opt Options) ([]Table, error) {
	opt = opt.withDefaults()
	t := Table{
		Title: "Chaos sweep: FCT degradation and invariants under fault injection (AM RLC)",
		Header: []string{"scheduler", "intensity", "mean FCT (ms)", "flows done",
			"RLFs", "AM abandoned", "invariants"},
	}
	for _, sched := range []ran.SchedulerKind{ran.SchedPF, ran.SchedOutRAN} {
		for _, intensity := range chaosIntensities {
			var fct sim.Time
			var flows int
			var rlfs, abandoned, violated uint64
			for s := 0; s < opt.Seeds; s++ {
				cfg := ran.DefaultLTEConfig()
				cfg.NumUEs = opt.UEs
				cfg.Grid.NumRB = opt.RBs
				cfg.Scheduler = sched
				cfg.RLC = ran.AM
				res, err := fault.Run(fault.RunConfig{
					Cell:      cfg,
					Load:      0.6,
					Duration:  opt.Duration,
					Drain:     opt.Drain,
					Intensity: intensity,
					Seed:      opt.Seed + uint64(s),
				})
				if err != nil {
					return nil, err
				}
				fct += res.MeanFCT()
				flows += len(res.Samples)
				rlfs += res.Stats.Reestablishments
				abandoned += res.Stats.AMAbandoned
				violated += res.Monitor.Violated
			}
			verdict := "clean"
			if violated > 0 {
				verdict = fmt.Sprintf("%d VIOLATED", violated)
			}
			t.Rows = append(t.Rows, []string{
				string(sched), f2(intensity), ms(fct / sim.Time(opt.Seeds)),
				fmt.Sprint(flows), fmt.Sprint(rlfs), fmt.Sprint(abandoned), verdict,
			})
		}
	}
	return []Table{t}, nil
}
