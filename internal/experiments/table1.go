package experiments

import (
	"fmt"

	"outran/internal/cn"
)

// Table1 reproduces the paper's Table 1: QoS profiling of mobile
// applications on a commercial-level 5G NSA testbed — everything but
// VoIP and IMS shares the default best-effort bearer.
func Table1(opt Options) ([]Table, error) {
	t := Table{
		Title:  "Table 1: QoS profiling of mobile applications (QCI = 5QI)",
		Header: []string{"Application", "Traffic Class", "Bearer", "QCI", "Service"},
	}
	for _, row := range cn.Table1() {
		bearer := "Default"
		if row.Bearer.Dedicated {
			bearer = "Dedicated GBR"
		} else {
			bearer = fmt.Sprintf("Default (ID=%d)", row.Bearer.ID)
		}
		t.Rows = append(t.Rows, []string{
			row.Application,
			row.Class.String(),
			bearer,
			fmt.Sprintf("%d", row.Bearer.Profile.QCI),
			row.Bearer.Profile.Service,
		})
	}
	// Classifier demonstration: representative apps all map to the
	// default bearer except VoIP/IMS.
	demo := Table{
		Title:  "Table 1 classifier check: app -> bearer mapping",
		Header: []string{"app", "QCI", "dedicated"},
	}
	for _, app := range []string{"volte", "ims", "chrome", "instagram", "netflix-tcp", "ftp"} {
		b := cn.ClassifyApp(app)
		demo.Rows = append(demo.Rows, []string{
			app, fmt.Sprintf("%d", b.Bearer.Profile.QCI), fmt.Sprintf("%v", b.Bearer.Dedicated),
		})
	}
	return []Table{t, demo}, nil
}
