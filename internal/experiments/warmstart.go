package experiments

import (
	"fmt"

	"outran/internal/deploy"
	"outran/internal/metrics"
	"outran/internal/ran"
	"outran/internal/sim"
	"outran/internal/snapshot"
	"outran/internal/workload"
)

func init() { register("warmstart", WarmStart) }

// WarmStart is the capacity-style probe sweep built on the snapshot
// subsystem: the cell runs its warmup transient ONCE, snapshots, and
// every probe point forks from that one post-warmup image instead of
// re-paying the warmup. Each fork injects a probe burst of short flows
// into the identical warmed-up cell and measures how the burst's FCT
// degrades as the burst grows — the knee locates the cell's residual
// capacity under the steady background load. Because restoration is
// byte-exact, every probe point sees precisely the same queue state,
// MLFQ priorities, HARQ processes and rng positions at fork time; the
// probe burst is the only difference between the points.
func WarmStart(opt Options) ([]Table, error) {
	opt = opt.withDefaults()
	// The workload spec lives on the config so the probe forks rebuild
	// an identical cell: snapshot restore demands a matching fingerprint.
	cfg := baseLTE(opt, ran.SchedOutRAN).WithWorkload(workload.PoissonSpec("lte", 0.6))

	// One warmed-up cell, snapshotted at the end of the transient.
	h := ran.Harness{
		Config:       cfg,
		Warmup:       warmup,
		Window:       opt.Duration,
		Tail:         pressureTail,
		Drain:        opt.Drain,
		WorkloadSeed: opt.Seed + 7919,
		Snapshots:    true,
	}
	base, err := h.Build()
	if err != nil {
		return nil, fmt.Errorf("experiments: warmstart: %w", err)
	}
	base.Run(warmup)
	var b snapshot.Builder
	if err := base.SnapshotTo(&b); err != nil {
		return nil, fmt.Errorf("experiments: warmstart snapshot: %w", err)
	}
	img := b.Bytes()
	total := warmup + opt.Duration + pressureTail + opt.Drain

	bursts := []int{0, 2, 4, 8, 16, 32}
	const probeBytes = 64 << 10 // short-class probes: the paper's FCT focus
	type probeResult struct {
		fcts []sim.Time
		p95  sim.Time // background short-flow p95 under the burst
	}
	results := make([]probeResult, len(bursts))
	err = deploy.ForEach(len(bursts), opt.Workers, func(i int) error {
		a, err := snapshot.Open(img)
		if err != nil {
			return err
		}
		c, err := ran.NewCell(cfg)
		if err != nil {
			return err
		}
		if err := c.RestoreSnapshot(a); err != nil {
			return err
		}
		// The probe burst: injected at fork time, spread over the UEs,
		// kept out of the background FCT recorder.
		fcts := make([]sim.Time, 0, bursts[i])
		for j := 0; j < bursts[i]; j++ {
			err := c.StartFlow(j%cfg.NumUEs, probeBytes, ran.FlowOptions{
				SkipRecord: true,
				OnComplete: func(fct sim.Time) { fcts = append(fcts, fct) },
			})
			if err != nil {
				return err
			}
		}
		c.Run(total)
		results[i] = probeResult{fcts: fcts, p95: shortP95ForCell(c)}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: warmstart probe %w", err)
	}

	tbl := Table{
		Title:  "Warm-started capacity probe (OutRAN, forked from one post-warmup snapshot)",
		Header: []string{"burst_flows", "probe_done", "probe_mean_ms", "probe_max_ms", "bg_short_p95_ms"},
	}
	for i, burst := range bursts {
		r := results[i]
		var sum, maxFCT sim.Time
		for _, f := range r.fcts {
			sum += f
			if f > maxFCT {
				maxFCT = f
			}
		}
		mean := sim.Time(0)
		if len(r.fcts) > 0 {
			mean = sum / sim.Time(len(r.fcts))
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", burst),
			fmt.Sprintf("%d", len(r.fcts)),
			ms(mean),
			ms(maxFCT),
			ms(r.p95),
		})
	}
	return []Table{tbl}, nil
}

// shortP95ForCell reads the short-class FCT p95 straight off a cell.
func shortP95ForCell(c *ran.Cell) sim.Time {
	return c.FCT.ByClass(metrics.Short).P95
}
