package experiments

import (
	"outran/internal/metrics"
	"outran/internal/ran"
	"outran/internal/workload"
)

func init() {
	register("fig15", Fig15)
	register("fig16", Fig16)
}

// lteSchedulers is the scheduler lineup of the main LTE evaluation.
var lteSchedulers = []ran.SchedulerKind{
	ran.SchedPF, ran.SchedSRJF, ran.SchedPSS, ran.SchedCQA, ran.SchedOutRAN,
}

// lteLoads is the cell-load sweep of §6.2.
var lteLoads = []float64{0.4, 0.5, 0.6, 0.7, 0.8}

// lteSweepCache memoises the scheduler x load grid shared by fig15 and
// fig16 (both figures come from the same runs in the paper too).
var lteSweepCache = map[Options]map[ran.SchedulerKind]map[float64]*runResult{}

// lteSweep runs (or recalls) the full scheduler x load grid.
func lteSweep(opt Options) (map[ran.SchedulerKind]map[float64]*runResult, error) {
	if got, ok := lteSweepCache[opt]; ok {
		return got, nil
	}
	out := make(map[ran.SchedulerKind]map[float64]*runResult)
	for _, sched := range lteSchedulers {
		out[sched] = make(map[float64]*runResult)
		for _, load := range lteLoads {
			res, err := runCell(baseLTE(opt, sched), workload.PoissonSpec("lte", load), opt)
			if err != nil {
				return nil, err
			}
			out[sched][load] = res
		}
	}
	lteSweepCache[opt] = out
	return out, nil
}

// Fig15 reproduces the LTE FCT-vs-load curves: overall average, short
// 95th percentile, medium average, long average for PF / SRJF / PSS /
// CQA / OutRAN.
func Fig15(opt Options) ([]Table, error) {
	opt = opt.withDefaults()
	sweep, err := lteSweep(opt)
	if err != nil {
		return nil, err
	}
	mk := func(title string, get func(*runResult) string) Table {
		t := Table{Title: title, Header: []string{"load"}}
		for _, s := range lteSchedulers {
			t.Header = append(t.Header, string(s))
		}
		for _, load := range lteLoads {
			row := []string{f2(load)}
			for _, s := range lteSchedulers {
				row = append(row, get(sweep[s][load]))
			}
			t.Rows = append(t.Rows, row)
		}
		return t
	}
	return []Table{
		mk("Fig 15(a): overall average FCT (ms) vs cell load", func(r *runResult) string {
			return ms(r.FCT.Overall().Mean)
		}),
		mk("Fig 15(b): short (0,10KB] 95%-ile FCT (ms) vs cell load", func(r *runResult) string {
			return ms(r.FCT.ByClass(metrics.Short).P95)
		}),
		mk("Fig 15(c): medium (10KB,0.1MB] average FCT (ms) vs cell load", func(r *runResult) string {
			return ms(r.FCT.ByClass(metrics.Medium).Mean)
		}),
		mk("Fig 15(d): long (0.1MB,inf) average FCT (ms) vs cell load", func(r *runResult) string {
			return ms(r.FCT.ByClass(metrics.Long).Mean)
		}),
	}, nil
}

// Fig16 reproduces the overall spectral-efficiency vs fairness scatter
// across loads for the same scheduler lineup.
func Fig16(opt Options) ([]Table, error) {
	opt = opt.withDefaults()
	sweep, err := lteSweep(opt)
	if err != nil {
		return nil, err
	}
	t := Table{
		Title:  "Fig 16: spectral efficiency vs fairness across cell loads",
		Header: []string{"scheduler", "load", "SE_bit/s/Hz", "SE_active", "fairness"},
	}
	for _, s := range lteSchedulers {
		for _, load := range lteLoads {
			r := sweep[s][load]
			t.Rows = append(t.Rows, []string{
				string(s), f2(load), f3(r.Stats.MeanSpectralEff), f3(r.ActiveSE), f3(r.Stats.MeanFairnessIndex),
			})
		}
	}
	return []Table{t}, nil
}
