package experiments

import (
	"outran/internal/metrics"
	"outran/internal/ran"
	"outran/internal/workload"
)

func init() {
	register("fig3", Fig3)
	register("fig4", Fig4)
	register("table1", Table1)
}

// Fig3 reproduces the motivation benefit figure: SRJF flow scheduling
// at the eNodeB vs the PF baseline — (a) short-flow average and
// 99th-percentile FCT, (b) sensitivity to per-user buffer size (x1 and
// x5, the 5G-scale buffer the paper cites).
func Fig3(opt Options) ([]Table, error) {
	opt = opt.withDefaults()
	spec := workload.PoissonSpec("lte", 0.6)

	run := func(sched ran.SchedulerKind, bufMul int) (*runResult, error) {
		cfg := baseLTE(opt, sched)
		cfg.BufferSDUs = 128 * bufMul
		return runCell(cfg, spec, opt)
	}
	pf1, err := run(ran.SchedPF, 1)
	if err != nil {
		return nil, err
	}
	srjf1, err := run(ran.SchedSRJF, 1)
	if err != nil {
		return nil, err
	}
	pf5, err := run(ran.SchedPF, 5)
	if err != nil {
		return nil, err
	}
	srjf5, err := run(ran.SchedSRJF, 5)
	if err != nil {
		return nil, err
	}

	a := Table{
		Title:  "Fig 3(a): short flow (<10KB) FCT, SRJF vs PF (normalized to PF)",
		Header: []string{"scheduler", "avg_ms", "p99_ms", "avg_norm", "p99_norm"},
	}
	pfS := pf1.FCT.ByClass(metrics.Short)
	srjfS := srjf1.FCT.ByClass(metrics.Short)
	norm := func(a, b float64) string {
		if b == 0 {
			return "n/a"
		}
		return f3(a / b)
	}
	a.Rows = append(a.Rows,
		[]string{"SRJF", ms(srjfS.Mean), ms(srjfS.P99),
			norm(float64(srjfS.Mean), float64(pfS.Mean)), norm(float64(srjfS.P99), float64(pfS.P99))},
		[]string{"PF", ms(pfS.Mean), ms(pfS.P99), "1.000", "1.000"},
	)

	b := Table{
		Title:  "Fig 3(b): short flow FCT vs per-user buffer size (normalized to PF x1)",
		Header: []string{"buffer", "SRJF_avg_ms", "PF_avg_ms", "SRJF_norm", "PF_norm"},
	}
	base := float64(pfS.Mean)
	s5 := srjf5.FCT.ByClass(metrics.Short)
	p5 := pf5.FCT.ByClass(metrics.Short)
	b.Rows = append(b.Rows,
		[]string{"x1", ms(srjfS.Mean), ms(pfS.Mean), norm(float64(srjfS.Mean), base), "1.000"},
		[]string{"x5", ms(s5.Mean), ms(p5.Mean), norm(float64(s5.Mean), base), norm(float64(p5.Mean), base)},
	)
	return []Table{a, b}, nil
}

// Fig4 reproduces the motivation cost figure: spectral efficiency and
// fairness of SRJF vs PF over time.
func Fig4(opt Options) ([]Table, error) {
	opt = opt.withDefaults()
	spec := workload.PoissonSpec("lte", 0.6)
	pf, err := runCell(baseLTE(opt, ran.SchedPF), spec, opt)
	if err != nil {
		return nil, err
	}
	srjf, err := runCell(baseLTE(opt, ran.SchedSRJF), spec, opt)
	if err != nil {
		return nil, err
	}
	summary := Table{
		Title:  "Fig 4: side-effects of SRJF flow scheduling (means over the loaded window)",
		Header: []string{"scheduler", "spectral_eff_bit/s/Hz", "SE_active", "fairness_index", "SE_active_vs_PF", "fair_vs_PF"},
	}
	rel := func(a, b float64) string {
		if b == 0 {
			return "n/a"
		}
		return f3(a / b)
	}
	summary.Rows = append(summary.Rows,
		[]string{"PF", f3(pf.Stats.MeanSpectralEff), f3(pf.ActiveSE), f3(pf.Stats.MeanFairnessIndex), "1.000", "1.000"},
		[]string{"SRJF", f3(srjf.Stats.MeanSpectralEff), f3(srjf.ActiveSE), f3(srjf.Stats.MeanFairnessIndex),
			rel(srjf.ActiveSE, pf.ActiveSE),
			rel(srjf.Stats.MeanFairnessIndex, pf.Stats.MeanFairnessIndex)},
	)
	series := Table{
		Title:  "Fig 4 time series: SE and fairness per 50-TTI block",
		Header: []string{"t_s", "PF_SE", "SRJF_SE", "PF_fair", "SRJF_fair"},
	}
	pfSE := pf.SESamples
	sjSE := srjf.SESamples
	pfF := pf.FairSamples
	sjF := srjf.FairSamples
	times := pf.SampleTimes
	step := len(times) / 20
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(times); i += step {
		row := []string{f2(times[i].Seconds())}
		row = append(row, f2(pfSE[i]))
		if i < len(sjSE) {
			row = append(row, f2(sjSE[i]))
		} else {
			row = append(row, "-")
		}
		row = append(row, f2(pfF[i]))
		if i < len(sjF) {
			row = append(row, f2(sjF[i]))
		} else {
			row = append(row, "-")
		}
		series.Rows = append(series.Rows, row)
	}
	return []Table{summary, series}, nil
}
