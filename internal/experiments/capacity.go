package experiments

import (
	"fmt"
	"runtime"
	"time"

	"outran/internal/deploy"
	"outran/internal/ran"
	"outran/internal/sim"
	"outran/internal/workload"
)

func init() {
	register("capacity", Capacity)
}

// CapacitySLO is the flow-completion service-level objective the
// capacity search probes against: a load point is sustainable while
// the deployment-aggregate p99 FCT of the short class stays at or
// under this bound. The SLO is on short flows, not the overall
// distribution, because the heavy-tailed workload puts elephants in
// the overall p99 at any load — short-flow tail latency is the
// user-visible stall budget the paper's arguments are about.
const CapacitySLO = 250 * sim.Millisecond

// CapacitySpec fixes one deployment measurement point: a cell count, a
// per-cell topology, and an offered load, run through the deployment
// runtime with the streaming FCT recorder (the deployment default —
// capacity runs are exactly the scale exact recording cannot afford).
type CapacitySpec struct {
	Cells      int
	UEsPerCell int
	RBs        int
	Load       float64
	Window     sim.Time
	Drain      sim.Time
	Workers    int               // <= 0: GOMAXPROCS
	Sched      ran.SchedulerKind // "" : SchedOutRAN
	Seed       uint64
}

// CapacityPoint is one measured deployment point: the simulated
// outcome (p99, flows) plus the machine-efficiency headline numbers
// derived from wall clock and peak RSS. CellsPerCore is how many cells
// one core sustains at real-time speed (cells × sim-seconds per
// core-wall-second); UEsPerGB divides the deployment's UE population
// by the process's peak resident set.
type CapacityPoint struct {
	Cells        int
	UEs          int // total across cells
	Workers      int // effective pool size
	Load         float64
	ShortP99     sim.Time // p99 FCT of the short class (the SLO metric)
	ShortFlows   int
	Flows        int
	SimSeconds   float64
	WallSeconds  float64
	CellsPerCore float64
	UEsPerGB     float64
	PeakRSS      uint64
}

// effectiveWorkers resolves the deploy pool semantics (0 = GOMAXPROCS,
// never more workers than cells) into the divisor the per-core
// normalisation needs.
func (s CapacitySpec) effectiveWorkers() int {
	w := s.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > s.Cells {
		w = s.Cells
	}
	return w
}

// MeasureDeployment runs one fixed-load deployment and returns the
// capacity point. The wall-clock and RSS numbers are machine facts,
// not simulation facts: everything simulated stays byte-identical for
// a given spec regardless of worker count or host speed.
func MeasureDeployment(spec CapacitySpec) (CapacityPoint, error) {
	sched := spec.Sched
	if sched == "" {
		sched = ran.SchedOutRAN
	}
	cfg := ran.DefaultLTEConfig().
		WithTopology(spec.UEsPerCell, spec.RBs).
		ForScheduler(sched).
		WithSeed(spec.Seed).
		WithWorkload(workload.PoissonSpec("lte", spec.Load))
	const capWarmup = 500 * sim.Millisecond
	dcfg := deploy.Config{
		Cells:   spec.Cells,
		Workers: spec.Workers,
		Cell:    cfg,
		Warmup:  capWarmup,
		Window:  spec.Window,
		Drain:   spec.Drain,
		Seed:    spec.Seed,
	}
	//outran:wallclock measures deployment throughput (cells/core); never enters simulated results
	start := time.Now()
	res, err := deploy.Run(dcfg)
	if err != nil {
		return CapacityPoint{}, fmt.Errorf("capacity: %d cells at load %.2f: %w", spec.Cells, spec.Load, err)
	}
	//outran:wallclock measures deployment throughput (cells/core); never enters simulated results
	wall := time.Since(start).Seconds()
	workers := spec.effectiveWorkers()
	simSec := (capWarmup + spec.Window + spec.Drain).Seconds()
	pt := CapacityPoint{
		Cells:       spec.Cells,
		UEs:         spec.Cells * spec.UEsPerCell,
		Workers:     workers,
		Load:        spec.Load,
		ShortP99:    res.Aggregate.FCTShort.P99,
		ShortFlows:  res.Aggregate.FCTShort.Count,
		Flows:       res.Aggregate.FCTOverall.Count,
		SimSeconds:  simSec,
		WallSeconds: wall,
		PeakRSS:     deploy.PeakRSSBytes(),
	}
	if wall > 0 && workers > 0 {
		pt.CellsPerCore = float64(spec.Cells) * simSec / (wall * float64(workers))
	}
	if pt.PeakRSS > 0 {
		pt.UEsPerGB = float64(pt.UEs) / (float64(pt.PeakRSS) / (1 << 30))
	}
	return pt, nil
}

// CapacitySearch binary-searches the offered load per cell until the
// deployment-aggregate short-flow FCT p99 breaks the SLO, and returns
// the highest sustainable point found. The bracket [0.1, 1.2] spans "trivially
// sustainable" to "offered load past cell capacity"; five bisection
// steps pin the knee to ~2% of load, well inside run-to-run noise.
func CapacitySearch(spec CapacitySpec, slo sim.Time) (CapacityPoint, error) {
	lo, hi := 0.1, 1.2
	probe := func(load float64) (CapacityPoint, bool, error) {
		s := spec
		s.Load = load
		pt, err := MeasureDeployment(s)
		if err != nil {
			return pt, false, err
		}
		return pt, pt.ShortFlows > 0 && pt.ShortP99 <= slo, nil
	}
	// The upper bracket first: if even past-capacity load holds the
	// SLO, the SLO is not binding at this scale and hi is the answer.
	if pt, ok, err := probe(hi); err != nil {
		return pt, err
	} else if ok {
		return pt, nil
	}
	best, ok, err := probe(lo)
	if err != nil {
		return best, err
	}
	if !ok {
		// Even the lightest load misses the SLO: report the lo point so
		// the caller sees how far off it is rather than an error.
		return best, nil
	}
	for i := 0; i < 5; i++ {
		mid := (lo + hi) / 2
		pt, ok, err := probe(mid)
		if err != nil {
			return best, err
		}
		if ok {
			best, lo = pt, mid
		} else {
			hi = mid
		}
	}
	return best, nil
}

// Capacity is the experiment harness: sweep the cell count at a fixed
// worker pool, binary-search the sustainable load per cell, and report
// each knee with the machine-efficiency headline numbers. The load and
// p99 columns are deterministic per seed; the wall/cells-per-core/
// UEs-per-GB columns are machine facts and vary by host.
func Capacity(opt Options) ([]Table, error) {
	opt = opt.withDefaults()
	counts := []int{2, 4, 8}
	if opt.Scale > 0 && opt.Scale < 1 {
		counts = []int{2, 4}
	}
	window := opt.Duration
	if window > 6*sim.Second {
		window = 6 * sim.Second
	}
	drain := opt.Drain
	if drain > 6*sim.Second {
		drain = 6 * sim.Second
	}
	t := Table{
		Title: fmt.Sprintf("Capacity: max offered load per cell before short-flow FCT p99 breaks the %v SLO", CapacitySLO),
		Header: []string{"sched", "cells", "UEs", "workers", "load*", "short p99 (ms)", "flows",
			"wall (s)", "cells/core", "UEs/GB", "peak RSS (MB)"},
	}
	for _, sched := range []ran.SchedulerKind{ran.SchedPF, ran.SchedOutRAN} {
		for _, cells := range counts {
			pt, err := CapacitySearch(CapacitySpec{
				Cells:      cells,
				UEsPerCell: opt.UEs,
				RBs:        opt.RBs,
				Window:     window,
				Drain:      drain,
				Workers:    opt.Workers,
				Sched:      sched,
				Seed:       opt.Seed,
			}, CapacitySLO)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				string(sched),
				fmt.Sprint(pt.Cells), fmt.Sprint(pt.UEs), fmt.Sprint(pt.Workers),
				f2(pt.Load), ms(pt.ShortP99), fmt.Sprint(pt.Flows),
				f2(pt.WallSeconds), f2(pt.CellsPerCore), f2(pt.UEsPerGB),
				fmt.Sprintf("%.0f", float64(pt.PeakRSS)/(1<<20)),
			})
		}
	}
	return []Table{t}, nil
}
