package experiments

import (
	"fmt"

	"outran/internal/deploy"
	"outran/internal/ran"
	"outran/internal/workload"
)

func init() {
	register("deployment", Deployment)
}

// Deployment exercises the multi-cell deployment runtime (paper §7
// across two live cells): PF vs OutRAN on a two-cell deployment with a
// scripted mid-run handover of UE 0 from cell 0 to cell 1. The
// transferred flow state re-anchors MLFQ priorities at the target, so
// OutRAN's short-flow protection survives the migration. One row per
// cell plus the deployment aggregate, including how many flows moved.
func Deployment(opt Options) ([]Table, error) {
	opt = opt.withDefaults()
	t := Table{
		Title: "Two-cell deployment with mid-run handover (UE 0: cell 0 -> cell 1)",
		Header: []string{"scheduler", "cell", "flows done", "FCT mean (ms)",
			"FCT p95 (ms)", "short p95 (ms)", "SE (b/s/Hz)", "fairness", "flows moved"},
	}
	for _, sched := range []ran.SchedulerKind{ran.SchedPF, ran.SchedOutRAN} {
		res, err := deploy.Run(deploy.Config{
			Cells:   2,
			Workers: opt.Workers,
			Cell:    baseLTE(opt, sched).WithWorkload(workload.PoissonSpec("lte", 0.6)),
			Warmup:  warmup,
			Window:  opt.Duration,
			Tail:    pressureTail,
			Drain:   opt.Drain,
			Seed:    opt.Seed,
			Handovers: []deploy.Handover{{
				At:            warmup + opt.Duration/2,
				UE:            0,
				From:          0,
				To:            1,
				ContinueBytes: 256 << 10,
			}},
		})
		if err != nil {
			return nil, err
		}
		for _, c := range res.Cells {
			s := c.Summary
			t.Rows = append(t.Rows, []string{
				string(sched), fmt.Sprint(c.Cell),
				fmt.Sprint(s.Counters.FlowsCompleted),
				ms(s.FCTOverall.Mean), ms(s.FCTOverall.P95), ms(s.FCTShort.P95),
				f3(s.Counters.MeanSpectralEff), f3(s.Counters.MeanFairnessIndex),
				"-",
			})
		}
		agg := res.Aggregate
		t.Rows = append(t.Rows, []string{
			string(sched), "all",
			fmt.Sprint(agg.Counters.FlowsCompleted),
			ms(agg.FCTOverall.Mean), ms(agg.FCTOverall.P95), ms(agg.FCTShort.P95),
			f3(agg.Counters.MeanSpectralEff), f3(agg.Counters.MeanFairnessIndex),
			fmt.Sprint(agg.FlowsTransferred),
		})
	}
	return []Table{t}, nil
}
