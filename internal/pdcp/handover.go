package pdcp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"outran/internal/ip"
)

// errAlreadyImported guards against double imports: flow state (or a
// snapshot) may be merged into a given entity instance only once.
// Handover and restore both rebuild the PDCP entity before importing,
// so a second import into the same instance is always a programming
// error that would silently clobber live state.
var errAlreadyImported = errors.New("pdcp: entity already imported state once")

// Flow-state transfer for handover (§7 of the paper): when a UE moves
// to a target xNodeB, the source can ship its per-flow sent-bytes
// table along with the forwarded data so the MLFQ priorities survive
// the handover. The paper prices this at 41 bytes per flow — 37 for
// the five-tuple record and 4 for the sent-byte counter — and this
// encoding matches that budget exactly.

// FlowRecordLen is the wire size of one exported flow state — the
// paper's 41-byte per-flow handover cost. Exported so the deployment
// runtime can count transferred flows from the blob length.
const FlowRecordLen = 41

// flowRecordLen is the internal alias the codecs use.
const flowRecordLen = FlowRecordLen

// ExportFlowState serialises the flow table. Layout per flow:
//
//	src IP (4) | dst IP (4) | src port (2) | dst port (2) | proto (1)
//	padded five-tuple region to 37 bytes | sent bytes (4, saturating)
//
// Records are emitted in canonical five-tuple order so the blob — and
// everything downstream of it, byte budgets included — is identical
// across same-seed runs.
func (t *Tx) ExportFlowState() []byte {
	out := make([]byte, 0, len(t.flows)*flowRecordLen)
	var rec [flowRecordLen]byte
	for _, tuple := range t.sortedFlowKeys() {
		fe := t.flows[tuple]
		for i := range rec {
			rec[i] = 0
		}
		copy(rec[0:4], tuple.Src[:])
		copy(rec[4:8], tuple.Dst[:])
		binary.BigEndian.PutUint16(rec[8:10], tuple.SrcPort)
		binary.BigEndian.PutUint16(rec[10:12], tuple.DstPort)
		rec[12] = tuple.Proto
		sent := fe.sentBytes
		if sent > 0xffffffff {
			sent = 0xffffffff
		}
		binary.BigEndian.PutUint32(rec[37:41], uint32(sent))
		out = append(out, rec[:]...)
	}
	return out
}

// ImportFlowState merges an exported table into this entity (the
// target xNodeB after handover). Existing entries are overwritten:
// the source cell's view is fresher. An entity accepts at most one
// import per lifetime; re-importing returns a wrapped error.
func (t *Tx) ImportFlowState(data []byte) error {
	if t.imported {
		return fmt.Errorf("pdcp: importing %d-byte flow state blob: %w", len(data), errAlreadyImported)
	}
	if len(data)%flowRecordLen != 0 {
		return fmt.Errorf("pdcp: flow state blob length %d not a multiple of %d", len(data), flowRecordLen)
	}
	t.imported = true
	now := t.eng.Now()
	for off := 0; off < len(data); off += flowRecordLen {
		rec := data[off : off+flowRecordLen]
		var tuple ip.FiveTuple
		copy(tuple.Src[:], rec[0:4])
		copy(tuple.Dst[:], rec[4:8])
		tuple.SrcPort = binary.BigEndian.Uint16(rec[8:10])
		tuple.DstPort = binary.BigEndian.Uint16(rec[10:12])
		tuple.Proto = rec[12]
		sent := int64(binary.BigEndian.Uint32(rec[37:41]))
		fe := t.newFlowEntry()
		fe.sentBytes = sent
		fe.lastSeen = now
		t.flows[tuple] = fe
	}
	return nil
}
