package pdcp

import (
	"testing"

	"outran/internal/core"
	"outran/internal/ip"
	"outran/internal/sim"
)

// BenchmarkSubmit measures the full PDCP ingress path: header
// serialisation, five-tuple inspection, flow-table update, MLFQ
// tagging, and (immediate mode) SN assignment + AES-CTR ciphering.
// This is the paper's "~150 ns per PDCP SDU" overhead claim (§6.1).
func BenchmarkSubmit(b *testing.B) {
	eng := &sim.Engine{}
	var seq uint64
	tx, err := NewTx(eng, TxConfig{SNBits: 12, Bearer: 6}, mlfqCls{core.DefaultMLFQ()}, &seq)
	if err != nil {
		b.Fatal(err)
	}
	pkt := testPkt(5000, 0, 1400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt.Tuple.DstPort = uint16(1024 + i%1000) // 1000 active flows
		if tx.Submit(pkt, FlowMeta{FlowSize: -1}) == nil {
			b.Fatal("submit failed")
		}
	}
}

// BenchmarkSubmitDelayedSN isolates the inspection path (ciphering
// deferred to transmission).
func BenchmarkSubmitDelayedSN(b *testing.B) {
	eng := &sim.Engine{}
	var seq uint64
	tx, err := NewTx(eng, TxConfig{SNBits: 12, Bearer: 6, DelayedSN: true}, mlfqCls{core.DefaultMLFQ()}, &seq)
	if err != nil {
		b.Fatal(err)
	}
	pkt := testPkt(5000, 0, 1400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt.Tuple.DstPort = uint16(1024 + i%1000)
		if tx.Submit(pkt, FlowMeta{FlowSize: -1}) == nil {
			b.Fatal("submit failed")
		}
	}
}

// BenchmarkDecipher measures the UE-side receive path.
func BenchmarkDecipher(b *testing.B) {
	eng := &sim.Engine{}
	var seq uint64
	cfg := TxConfig{SNBits: 12, Bearer: 6}
	tx, err := NewTx(eng, cfg, nil, &seq)
	if err != nil {
		b.Fatal(err)
	}
	rx, err := NewRx(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	sdu := tx.Submit(testPkt(5000, 0, 1400), FlowMeta{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rx.next = 0 // replay the same SDU
		rx.OnSDU(sdu)
	}
	if rx.DecipherFailures() > 0 {
		b.Fatal("decipher failures in bench")
	}
}

var sinkTuple ip.FiveTuple

// BenchmarkParseFiveTuple is the raw header-inspection hot path.
func BenchmarkParseFiveTuple(b *testing.B) {
	pkt := testPkt(5000, 1, 1400)
	buf := make([]byte, ip.HeadersLen)
	if _, err := pkt.Marshal(buf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft, err := ip.ParseFiveTuple(buf)
		if err != nil {
			b.Fatal(err)
		}
		sinkTuple = ft
	}
}
