// Package pdcp implements the Packet Data Convergence Protocol entity
// of the xNodeB user plane: downlink header inspection with a
// per-flow sent-bytes table (the input to OutRAN's intra-user MLFQ,
// §4.2), sequence numbering, and AES-CTR ciphering keyed on the PDCP
// COUNT (EEA2-like). It supports both the standard numbering point
// (at PDCP ingress) and OutRAN's delayed numbering at RLC PDU build
// time (§4.4), which keeps ciphering consistent when the RLC reorders
// SDUs across flows.
package pdcp

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"

	"outran/internal/ip"
	"outran/internal/rlc"
	"outran/internal/sim"
)

// Classifier assigns each ingress packet an intra-user queue priority.
// OutRAN's classifier uses only sentBytes (information-agnostic MLFQ);
// the oracle baselines (SRJF/PSS/CQA intra-user flow ordering) read
// the flow metadata instead. A nil Classifier tags everything priority
// 0 (the legacy FIFO behaviour).
type Classifier interface {
	Classify(sentBytes int64, meta FlowMeta) int
}

// FlowMeta carries per-flow side information the simulator knows but
// OutRAN must not use: the oracle flow size for SRJF and the dedicated
// QoS profile for the PSS/CQA baselines.
type FlowMeta struct {
	FlowSize    int64 // total flow bytes; <0 unknown
	QoS         bool
	DelayBudget sim.Time
}

type flowEntry struct {
	sentBytes int64
	lastSeen  sim.Time
	prio      int // last classified priority, for level-change tracing
}

// maxFlowEntries bounds the flow table; beyond it, entries idle for
// more than flowIdleEviction are swept.
const (
	maxFlowEntries   = 8192
	flowIdleEviction = 10 * sim.Second
)

// ctrState is the per-entity AES-CTR scratch. The stdlib
// cipher.NewCTR allocates a stream object on every call; on the
// per-SDU ciphering path that is one garbage object per packet, so
// counter mode is implemented here directly. The keystream is
// byte-identical to cipher.NewCTR over the same IV — the full 16-byte
// IV is one big-endian counter, incremented once per AES block
// (TestKeystreamMatchesStdlibCTR pins this). The scratch lives on the
// entity struct, not the stack: slices passed through the cipher.Block
// interface escape, and struct-held arrays keep the path
// allocation-free.
type ctrState struct {
	iv [16]byte
	ks [16]byte
}

// apply XORs the EEA2-style keystream for (count, bearer) over data
// in place.
//
//outran:allocfree
func (c *ctrState) apply(block cipher.Block, count uint32, bearer uint8, data []byte) {
	binary.BigEndian.PutUint32(c.iv[0:4], count)
	c.iv[4] = bearer
	// iv[5] direction bit = 0 (downlink); rest zero.
	for i := 5; i < 16; i++ {
		c.iv[i] = 0
	}
	for off := 0; off < len(data); off += aes.BlockSize {
		block.Encrypt(c.ks[:], c.iv[:])
		n := len(data) - off
		if n > aes.BlockSize {
			n = aes.BlockSize
		}
		for j := 0; j < n; j++ {
			data[off+j] ^= c.ks[j]
		}
		for k := len(c.iv) - 1; k >= 0; k-- {
			c.iv[k]++
			if c.iv[k] != 0 {
				break
			}
		}
	}
}

// headerArenaChunk is how many SDU header buffers one arena allocation
// amortises over. Headers are retained for each SDU's lifetime, so
// they cannot be pooled outright — the arena instead folds per-packet
// allocations into one per chunk.
const headerArenaChunk = 64

// TxConfig configures a transmitting PDCP entity.
type TxConfig struct {
	// SNBits is the sequence number width (LTE UM DRBs use 7 or 12).
	SNBits int
	// DelayedSN defers numbering & ciphering to RLC PDU build (§4.4).
	DelayedSN bool
	// Key is the 16-byte ciphering key shared with the UE.
	Key [16]byte
	// Bearer identifies the radio bearer in the keystream input.
	Bearer uint8
}

// Tx is the downlink PDCP entity of one UE.
type Tx struct {
	eng        *sim.Engine
	cfg        TxConfig
	classifier Classifier
	block      cipher.Block
	nextSN     uint32
	flows      map[ip.FiveTuple]*flowEntry
	feFree     []*flowEntry // entries swept by evictIdle, recycled by newFlowEntry
	sduSeq     *uint64
	ctr        ctrState
	arena      []byte // header-buffer arena; see headerArenaChunk

	// OnSNAssign, when set, observes every sequence-number assignment —
	// with delayed numbering this is the moment the SDU's first byte is
	// scheduled for the air (the tracing layer's pdcp_sn event).
	OnSNAssign func(flow ip.FiveTuple, sn uint32)
	// OnLevelChange, when set, observes intra-user priority transitions
	// of a flow: the new level and the sent-bytes total that triggered
	// the reclassification (the tracing layer's mlfq event).
	OnLevelChange func(flow ip.FiveTuple, level int, sentBytes int64)

	// Stats.
	submitted  uint64
	inspectErr uint64

	// imported guards ImportFlowState against double imports.
	imported bool
}

// NewTx builds a transmitting entity. sduSeq is the cell-wide SDU id
// counter shared across UEs.
func NewTx(eng *sim.Engine, cfg TxConfig, classifier Classifier, sduSeq *uint64) (*Tx, error) {
	if cfg.SNBits < 5 || cfg.SNBits > 18 {
		return nil, fmt.Errorf("pdcp: SN width %d outside [5,18]", cfg.SNBits)
	}
	block, err := aes.NewCipher(cfg.Key[:])
	if err != nil {
		return nil, err
	}
	return &Tx{
		eng:        eng,
		cfg:        cfg,
		classifier: classifier,
		block:      block,
		flows:      make(map[ip.FiveTuple]*flowEntry),
		sduSeq:     sduSeq,
	}, nil
}

// snMask returns the SN modulus mask.
func (t *Tx) snMask() uint32 { return 1<<uint(t.cfg.SNBits) - 1 }

// Submit performs header inspection and hands the packet to the RLC
// as an SDU. It returns the SDU (for the caller to enqueue) — nil if
// the packet could not be parsed.
func (t *Tx) Submit(pkt ip.Packet, meta FlowMeta) *rlc.SDU {
	// Serialise the real headers: this is the inspected byte buffer
	// and later the ciphered portion of the SDU. The buffer is carved
	// from the arena (full-capacity slice, so neighbours can't bleed)
	// because the SDU retains it for its lifetime.
	if len(t.arena) < ip.HeadersLen {
		t.arena = make([]byte, headerArenaChunk*ip.HeadersLen)
	}
	hdr := t.arena[0:ip.HeadersLen:ip.HeadersLen]
	t.arena = t.arena[ip.HeadersLen:]
	if _, err := pkt.Marshal(hdr); err != nil {
		t.inspectErr++
		return nil
	}
	tuple, err := ip.ParseFiveTuple(hdr)
	if err != nil {
		t.inspectErr++
		return nil
	}
	now := t.eng.Now()
	fe := t.flows[tuple]
	if fe == nil {
		if len(t.flows) >= maxFlowEntries {
			t.evictIdle(now)
		}
		fe = t.newFlowEntry()
		t.flows[tuple] = fe
	}
	prio := 0
	if t.classifier != nil {
		prio = t.classifier.Classify(fe.sentBytes, meta)
	}
	if prio != fe.prio {
		if t.OnLevelChange != nil {
			t.OnLevelChange(tuple, prio, fe.sentBytes)
		}
		fe.prio = prio
	}
	fe.sentBytes += int64(pkt.PayloadLen)
	fe.lastSeen = now

	*t.sduSeq++
	sdu := &rlc.SDU{
		ID:          *t.sduSeq,
		Size:        pkt.TotalLen(),
		Priority:    prio,
		Arrival:     now,
		Flow:        tuple,
		FlowSize:    meta.FlowSize,
		QoS:         meta.QoS,
		DelayBudget: meta.DelayBudget,
		PDCPSN:      rlc.SNUnassigned,
		Header:      hdr,
		Packet:      pkt,
	}
	if !t.cfg.DelayedSN {
		t.AssignSN(sdu)
	}
	t.submitted++
	return sdu
}

// AssignSN numbers and ciphers the SDU. With DelayedSN it is handed
// to the RLC entity as its AssignSN callback so numbering happens in
// transmission order (§4.4).
//
//outran:allocfree
func (t *Tx) AssignSN(s *rlc.SDU) {
	sn := t.nextSN & t.snMask()
	count := t.nextSN // full COUNT, monotonically increasing
	t.nextSN++
	s.PDCPSN = sn
	t.applyKeystream(count, s.Header)
	if t.OnSNAssign != nil {
		t.OnSNAssign(s.Flow, sn)
	}
}

// applyKeystream XORs the EEA2-style AES-CTR keystream for the given
// COUNT over data.
func (t *Tx) applyKeystream(count uint32, data []byte) {
	t.ctr.apply(t.block, count, t.cfg.Bearer, data)
}

// ResetFlowStates zeroes every flow's sent-bytes, boosting all flows
// back to the top MLFQ priority (§6.3 "priority reset").
func (t *Tx) ResetFlowStates() {
	//outran:orderfree every entry is zeroed; visit order cannot matter
	for _, fe := range t.flows {
		fe.sentBytes = 0
	}
}

// sortedFlowKeys returns the flow-table keys in canonical five-tuple
// order: the deterministic iteration order for any walk whose effects
// are order-sensitive.
func (t *Tx) sortedFlowKeys() []ip.FiveTuple {
	keys := make([]ip.FiveTuple, 0, len(t.flows))
	for tuple := range t.flows {
		keys = append(keys, tuple)
	}
	ip.SortTuples(keys)
	return keys
}

// FlowCount returns the number of tracked flows.
func (t *Tx) FlowCount() int { return len(t.flows) }

// FlowTuples returns the tracked flow five-tuples in canonical order —
// the same order ExportFlowState emits records in.
func (t *Tx) FlowTuples() []ip.FiveTuple { return t.sortedFlowKeys() }

// SentBytes returns the tracked sent-bytes of a flow (testing/metrics).
func (t *Tx) SentBytes(tuple ip.FiveTuple) int64 {
	if fe := t.flows[tuple]; fe != nil {
		return fe.sentBytes
	}
	return 0
}

// evictIdle sweeps entries idle past the eviction horizon. The walk
// runs in canonical tuple order so the discard sequence — visible to
// anything observing the table, e.g. a concurrent export — is stable
// across same-seed runs.
func (t *Tx) evictIdle(now sim.Time) {
	for _, k := range t.sortedFlowKeys() {
		if now-t.flows[k].lastSeen > flowIdleEviction {
			t.feFree = append(t.feFree, t.flows[k])
			delete(t.flows, k)
		}
	}
}

// newFlowEntry returns a zeroed flow-table entry, recycling one swept
// by evictIdle when available — at city scale the flow table churns
// through millions of short flows, and the sweep feeds them straight
// back instead of leaving a garbage trail.
func (t *Tx) newFlowEntry() *flowEntry {
	if n := len(t.feFree); n > 0 {
		fe := t.feFree[n-1]
		t.feFree[n-1] = nil
		t.feFree = t.feFree[:n-1]
		*fe = flowEntry{}
		return fe
	}
	return &flowEntry{}
}

// Rx is the receiving PDCP entity at the UE. It infers the full COUNT
// from the PDU's truncated SN using the standard half-window rule; a
// wrong inference (reordering beyond the SN window, exactly the hazard
// §4.4 describes for un-delayed numbering) deciphers to garbage, which
// the IP checksum catches and the packet is dropped.
type Rx struct {
	cfg     TxConfig
	block   cipher.Block
	next    uint32 // expected next COUNT
	Deliver func(ip.Packet)

	ctr ctrState
	hdr []byte // decipher scratch, reused across OnSDU calls

	delivered    uint64
	decipherFail uint64
}

// NewRx builds the UE-side receiving entity. Config must match Tx.
func NewRx(cfg TxConfig, deliver func(ip.Packet)) (*Rx, error) {
	block, err := aes.NewCipher(cfg.Key[:])
	if err != nil {
		return nil, err
	}
	return &Rx{cfg: cfg, block: block, Deliver: deliver}, nil
}

// inferCount maps a received SN to the COUNT closest to the expected
// next COUNT (half-window HFN inference).
func (r *Rx) inferCount(sn uint32) uint32 {
	bits := uint(r.cfg.SNBits)
	mod := uint32(1) << bits
	half := mod >> 1
	expSN := r.next & (mod - 1)
	hfn := r.next >> bits
	var count uint32
	switch {
	case sn >= expSN && sn-expSN < half:
		count = hfn<<bits | sn
	case sn < expSN && expSN-sn > half:
		count = (hfn+1)<<bits | sn // wrapped forward
	default:
		// sn behind expected: same HFN if possible, else previous.
		if sn <= expSN {
			count = hfn<<bits | sn
		} else if hfn > 0 {
			count = (hfn-1)<<bits | sn
		} else {
			count = sn
		}
	}
	return count
}

// OnSDU processes one reassembled PDCP PDU delivered by the RLC. The
// decipher buffer is entity-owned scratch (the parsed ip.Packet is a
// value and retains nothing), so the per-SDU receive path does not
// allocate.
//
//outran:allocfree
func (r *Rx) OnSDU(s *rlc.SDU) {
	count := r.inferCount(s.PDCPSN)
	if cap(r.hdr) < len(s.Header) {
		//outran:allocok capacity-guarded scratch growth; header sizes are fixed per config
		r.hdr = make([]byte, len(s.Header))
	}
	hdr := r.hdr[:len(s.Header)]
	copy(hdr, s.Header)
	r.ctr.apply(r.block, count, r.cfg.Bearer, hdr)
	pkt, err := ip.Unmarshal(hdr)
	if err != nil {
		r.decipherFail++
		return
	}
	if count >= r.next {
		r.next = count + 1
	}
	r.delivered++
	if r.Deliver != nil {
		r.Deliver(pkt)
	}
}

// Delivered returns successfully deciphered and delivered packets.
func (r *Rx) Delivered() uint64 { return r.delivered }

// DecipherFailures returns packets dropped due to COUNT mismatch.
func (r *Rx) DecipherFailures() uint64 { return r.decipherFail }
