package pdcp

import (
	"fmt"

	"outran/internal/ip"
	"outran/internal/sim"
	"outran/internal/snapshot"
)

// Structural sentinels for the PDCP snapshot walk.
const (
	tagTx = 0x7d01
	tagRx = 0x7d02
)

// Snapshot encodes the transmitting entity's full mutable state — the
// generalisation of ExportFlowState the checkpoint format needs: the
// cipher COUNT position (nextSN), the complete flow table including
// last-seen times and traced priority levels, and the stat counters.
// The cipher block and scratch are reconstruction/products of the key
// and are not encoded. Flows are written in canonical five-tuple order.
func (t *Tx) Snapshot(e *snapshot.Encoder) {
	e.Mark(tagTx)
	e.U32(t.nextSN)
	keys := t.sortedFlowKeys()
	e.U32(uint32(len(keys)))
	for _, tuple := range keys {
		fe := t.flows[tuple]
		ip.PutTuple(e, tuple)
		e.I64(fe.sentBytes)
		e.I64(int64(fe.lastSeen))
		e.Int(fe.prio)
	}
	e.U64(t.submitted)
	e.U64(t.inspectErr)
}

// Restore overlays a snapshot onto a freshly built entity. Restoring
// into an entity that has already numbered SDUs or tracked flows is
// an error (double import).
func (t *Tx) Restore(d *snapshot.Decoder) error {
	if t.nextSN != 0 || len(t.flows) != 0 || t.submitted != 0 {
		return fmt.Errorf("pdcp: restoring tx entity: %w", errAlreadyImported)
	}
	d.Expect(tagTx)
	t.nextSN = d.U32()
	n := d.Count(1 << 24)
	for i := 0; i < n && d.Err() == nil; i++ {
		tuple := ip.GetTuple(d)
		fe := t.newFlowEntry()
		fe.sentBytes = d.I64()
		fe.lastSeen = sim.Time(d.I64())
		fe.prio = d.Int()
		t.flows[tuple] = fe
	}
	t.submitted = d.U64()
	t.inspectErr = d.U64()
	if err := d.Err(); err != nil {
		return fmt.Errorf("pdcp: restoring tx entity: %w", err)
	}
	return nil
}

// Snapshot encodes the receiving entity: the expected COUNT and the
// delivery counters. Scratch and the cipher block are rebuilt from
// config on the restore side.
func (r *Rx) Snapshot(e *snapshot.Encoder) {
	e.Mark(tagRx)
	e.U32(r.next)
	e.U64(r.delivered)
	e.U64(r.decipherFail)
}

// Restore overlays a snapshot onto a freshly built entity.
func (r *Rx) Restore(d *snapshot.Decoder) error {
	if r.next != 0 || r.delivered != 0 || r.decipherFail != 0 {
		return fmt.Errorf("pdcp: restoring rx entity: %w", errAlreadyImported)
	}
	d.Expect(tagRx)
	r.next = d.U32()
	r.delivered = d.U64()
	r.decipherFail = d.U64()
	if err := d.Err(); err != nil {
		return fmt.Errorf("pdcp: restoring rx entity: %w", err)
	}
	return nil
}
