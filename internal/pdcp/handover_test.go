package pdcp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"outran/internal/core"
)

func TestFlowStateExportImportRoundTrip(t *testing.T) {
	_, src, _, _ := newPair(t, defaultCfg(), nil)
	a := testPkt(5000, 0, 1000)
	b := testPkt(6000, 0, 700)
	src.Submit(a, FlowMeta{})
	src.Submit(a, FlowMeta{})
	src.Submit(b, FlowMeta{})

	blob := src.ExportFlowState()
	if len(blob) != 2*41 {
		t.Fatalf("blob %d bytes, want 2 flows x 41 (the paper's per-flow cost)", len(blob))
	}

	_, dst, _, _ := newPair(t, defaultCfg(), nil)
	if err := dst.ImportFlowState(blob); err != nil {
		t.Fatal(err)
	}
	if got := dst.SentBytes(a.Tuple); got != 2000 {
		t.Fatalf("flow a sent-bytes %d after handover, want 2000", got)
	}
	if got := dst.SentBytes(b.Tuple); got != 700 {
		t.Fatalf("flow b sent-bytes %d after handover, want 700", got)
	}
}

func TestFlowStatePreservesPriorityAcrossHandover(t *testing.T) {
	policy := core.MustMLFQ([]int64{1500})
	_, src, _, _ := newPair(t, defaultCfg(), mlfqCls{policy})
	pkt := testPkt(5000, 0, 1000)
	src.Submit(pkt, FlowMeta{})
	src.Submit(pkt, FlowMeta{})
	// The flow has sent 2000 bytes: its next packet is P2 at the source.

	_, dst, _, _ := newPair(t, defaultCfg(), mlfqCls{policy})
	if err := dst.ImportFlowState(src.ExportFlowState()); err != nil {
		t.Fatal(err)
	}
	s := dst.Submit(pkt, FlowMeta{})
	if s.Priority != 1 {
		t.Fatalf("post-handover priority %d: demotion state lost (fresh-start would be 0)", s.Priority)
	}
}

func TestFlowStateImportValidation(t *testing.T) {
	// Any length that is not a whole number of records is corrupt:
	// truncated final record, stray header byte, off-by-one splice.
	for _, n := range []int{1, 40, 42, 81, flowRecordLen*3 - 1} {
		_, tx, _, _ := newPair(t, defaultCfg(), nil)
		if err := tx.ImportFlowState(make([]byte, n)); err == nil {
			t.Fatalf("%d-byte blob accepted; want length-validation error", n)
		}
	}
	_, tx, _, _ := newPair(t, defaultCfg(), nil)
	if err := tx.ImportFlowState(nil); err != nil {
		t.Fatal("empty blob should be a no-op")
	}
}

func TestFlowStateDoubleImportRejected(t *testing.T) {
	_, src, _, _ := newPair(t, defaultCfg(), nil)
	src.Submit(testPkt(5000, 0, 1000), FlowMeta{})
	blob := src.ExportFlowState()

	_, dst, _, _ := newPair(t, defaultCfg(), nil)
	if err := dst.ImportFlowState(blob); err != nil {
		t.Fatal(err)
	}
	err := dst.ImportFlowState(blob)
	if err == nil {
		t.Fatal("second import accepted; it would clobber live flow state")
	}
	if !errors.Is(err, errAlreadyImported) {
		t.Fatalf("double-import error not wrapped for errors.Is: %v", err)
	}
	// A rejected length does not burn the entity's one import.
	_, dst2, _, _ := newPair(t, defaultCfg(), nil)
	if err := dst2.ImportFlowState(make([]byte, 40)); err == nil {
		t.Fatal("truncated blob accepted")
	}
	if err := dst2.ImportFlowState(blob); err != nil {
		t.Fatalf("valid import after a rejected one: %v", err)
	}
}

func TestFlowStateResetAlternative(t *testing.T) {
	// The paper's fallback: "we can reset the state at the new xNodeB
	// and start fresh" — an un-imported target simply tags the flow's
	// next packet top priority.
	policy := core.MustMLFQ([]int64{1500})
	_, src, _, _ := newPair(t, defaultCfg(), mlfqCls{policy})
	pkt := testPkt(5000, 0, 1000)
	src.Submit(pkt, FlowMeta{})
	src.Submit(pkt, FlowMeta{})

	_, fresh, _, _ := newPair(t, defaultCfg(), mlfqCls{policy})
	s := fresh.Submit(pkt, FlowMeta{})
	if s.Priority != 0 {
		t.Fatalf("fresh-start priority %d, want 0", s.Priority)
	}
}

func TestFlowStateExportDeterministicOrder(t *testing.T) {
	// The export blob is wire-visible state: two exports of the same
	// table must be byte-identical, and the records must come out in
	// canonical five-tuple order regardless of insertion order — map
	// iteration order must never leak into the handover payload.
	insert := func(ports []uint16) *Tx {
		_, tx, _, _ := newPair(t, defaultCfg(), nil)
		for _, p := range ports {
			pkt := testPkt(p, 0, 500)
			tx.Submit(pkt, FlowMeta{})
		}
		return tx
	}
	fwd := insert([]uint16{5000, 5001, 5002, 5003, 5004, 5005, 5006, 5007})
	rev := insert([]uint16{5007, 5006, 5005, 5004, 5003, 5002, 5001, 5000})

	blobF := fwd.ExportFlowState()
	blobR := rev.ExportFlowState()
	if !bytes.Equal(blobF, blobR) {
		t.Fatal("export order depends on insertion order")
	}
	if !bytes.Equal(blobF, fwd.ExportFlowState()) {
		t.Fatal("re-export of the same table is not byte-identical")
	}
	// Records ascend by destination port (the only varying tuple field).
	var prev uint16
	for off := 0; off < len(blobF); off += flowRecordLen {
		port := binary.BigEndian.Uint16(blobF[off+10 : off+12])
		if off > 0 && port <= prev {
			t.Fatalf("record at offset %d out of canonical order: port %d after %d", off, port, prev)
		}
		prev = port
	}
}
