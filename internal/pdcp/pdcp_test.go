package pdcp

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"testing"

	"outran/internal/analysis/probetest"
	"outran/internal/core"
	"outran/internal/ip"
	"outran/internal/rlc"
	"outran/internal/sim"
)

func testPkt(dstPort uint16, seq uint32, payload int) ip.Packet {
	return ip.Packet{
		Tuple: ip.FiveTuple{
			Src: ip.AddrFrom(10, 0, 0, 1), Dst: ip.AddrFrom(10, 1, 0, 1),
			SrcPort: 443, DstPort: dstPort, Proto: ip.ProtoTCP,
		},
		Seq:        seq,
		PayloadLen: payload,
	}
}

func newPair(t *testing.T, cfg TxConfig, cls Classifier) (*sim.Engine, *Tx, *Rx, *[]ip.Packet) {
	t.Helper()
	eng := &sim.Engine{}
	var seq uint64
	tx, err := NewTx(eng, cfg, cls, &seq)
	if err != nil {
		t.Fatal(err)
	}
	var got []ip.Packet
	rx, err := NewRx(cfg, func(p ip.Packet) { got = append(got, p) })
	if err != nil {
		t.Fatal(err)
	}
	return eng, tx, rx, &got
}

// mlfqCls adapts core.MLFQ to the Classifier interface for tests.
type mlfqCls struct{ p *core.MLFQ }

func (c mlfqCls) Classify(sent int64, _ FlowMeta) int { return c.p.PriorityFor(sent) }

func defaultCfg() TxConfig {
	return TxConfig{SNBits: 12, Key: [16]byte{1, 2, 3}, Bearer: 6}
}

func TestSubmitDeliverRoundTrip(t *testing.T) {
	_, tx, rx, got := newPair(t, defaultCfg(), nil)
	pkt := testPkt(5000, 777, 1400)
	sdu := tx.Submit(pkt, FlowMeta{FlowSize: 1400})
	if sdu == nil {
		t.Fatal("submit failed")
	}
	if sdu.PDCPSN == rlc.SNUnassigned {
		t.Fatal("immediate mode left SN unassigned")
	}
	rx.OnSDU(sdu)
	if len(*got) != 1 {
		t.Fatalf("delivered %d", len(*got))
	}
	d := (*got)[0]
	if d.Tuple != pkt.Tuple || d.Seq != pkt.Seq || d.PayloadLen != pkt.PayloadLen {
		t.Fatalf("delivered %+v, want %+v", d, pkt)
	}
	if rx.DecipherFailures() != 0 {
		t.Fatal("decipher failure on clean path")
	}
}

func TestHeaderIsActuallyCiphered(t *testing.T) {
	_, tx, _, _ := newPair(t, defaultCfg(), nil)
	pkt := testPkt(5000, 1, 100)
	sdu := tx.Submit(pkt, FlowMeta{})
	// The ciphered header must not parse as a valid packet.
	if _, err := ip.Unmarshal(sdu.Header); err == nil {
		t.Fatal("header readable without deciphering")
	}
}

func TestWrongKeyFailsDecipher(t *testing.T) {
	_, tx, _, _ := newPair(t, defaultCfg(), nil)
	badCfg := defaultCfg()
	badCfg.Key = [16]byte{9, 9, 9}
	rxBad, err := NewRx(badCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sdu := tx.Submit(testPkt(5000, 1, 100), FlowMeta{})
	rxBad.OnSDU(sdu)
	if rxBad.DecipherFailures() != 1 {
		t.Fatal("wrong key deciphered successfully")
	}
}

func TestFlowTableTracksSentBytes(t *testing.T) {
	_, tx, _, _ := newPair(t, defaultCfg(), nil)
	pkt := testPkt(5000, 0, 1000)
	tx.Submit(pkt, FlowMeta{})
	tx.Submit(pkt, FlowMeta{})
	if got := tx.SentBytes(pkt.Tuple); got != 2000 {
		t.Fatalf("sent bytes %d", got)
	}
	other := testPkt(6000, 0, 500)
	tx.Submit(other, FlowMeta{})
	if tx.FlowCount() != 2 {
		t.Fatalf("flow count %d", tx.FlowCount())
	}
	if got := tx.SentBytes(other.Tuple); got != 500 {
		t.Fatalf("other flow bytes %d", got)
	}
}

func TestClassifierTagsByPriorSentBytes(t *testing.T) {
	policy := core.MustMLFQ([]int64{1500})
	_, tx, _, _ := newPair(t, defaultCfg(), mlfqCls{policy})
	pkt := testPkt(5000, 0, 1000)
	s1 := tx.Submit(pkt, FlowMeta{})
	s2 := tx.Submit(pkt, FlowMeta{})
	s3 := tx.Submit(pkt, FlowMeta{})
	// PIAS semantics: the packet is tagged with the bytes sent BEFORE
	// it — first packet P1 (0 bytes), second P1 (1000 < 1500), third
	// P2 (2000 >= 1500).
	if s1.Priority != 0 || s2.Priority != 0 || s3.Priority != 1 {
		t.Fatalf("priorities %d,%d,%d", s1.Priority, s2.Priority, s3.Priority)
	}
}

func TestResetFlowStatesBoostsPriority(t *testing.T) {
	policy := core.MustMLFQ([]int64{500})
	_, tx, _, _ := newPair(t, defaultCfg(), mlfqCls{policy})
	pkt := testPkt(5000, 0, 1000)
	tx.Submit(pkt, FlowMeta{})
	s := tx.Submit(pkt, FlowMeta{})
	if s.Priority != 1 {
		t.Fatal("setup: expected demotion")
	}
	tx.ResetFlowStates()
	s = tx.Submit(pkt, FlowMeta{})
	if s.Priority != 0 {
		t.Fatalf("priority after reset %d, want 0", s.Priority)
	}
}

func TestDelayedSNOutOfOrderTransmissionStillDeciphers(t *testing.T) {
	cfg := defaultCfg()
	cfg.DelayedSN = true
	_, tx, rx, got := newPair(t, cfg, nil)
	// Two SDUs submitted in order A, B but transmitted B, A (the MLFQ
	// reordering). With delayed numbering, SNs follow transmission
	// order, so the receiver deciphers both.
	a := tx.Submit(testPkt(5000, 0, 100), FlowMeta{})
	b := tx.Submit(testPkt(6000, 0, 100), FlowMeta{})
	if a.PDCPSN != rlc.SNUnassigned || b.PDCPSN != rlc.SNUnassigned {
		t.Fatal("delayed mode assigned SN at ingress")
	}
	tx.AssignSN(b) // transmitted first
	tx.AssignSN(a)
	rx.OnSDU(b)
	rx.OnSDU(a)
	if len(*got) != 2 || rx.DecipherFailures() != 0 {
		t.Fatalf("delivered %d, failures %d", len(*got), rx.DecipherFailures())
	}
}

func TestImmediateSNDeepReorderingFailsDecipher(t *testing.T) {
	// The §4.4 hazard: with numbering at ingress and a small SN space,
	// holding one SDU back while many others are transmitted pushes
	// the receiver's HFN inference past the held SDU's COUNT, and its
	// deciphering fails. Delayed numbering (previous test) avoids it.
	cfg := defaultCfg()
	cfg.SNBits = 5 // window of 16
	_, tx, rx, got := newPair(t, cfg, nil)
	held := tx.Submit(testPkt(5000, 0, 100), FlowMeta{})
	for i := 0; i < 40; i++ {
		s := tx.Submit(testPkt(6000, uint32(i), 100), FlowMeta{})
		rx.OnSDU(s)
	}
	rx.OnSDU(held) // 40 SNs late: beyond the 5-bit window
	if rx.DecipherFailures() == 0 {
		t.Fatalf("deep reordering deciphered anyway (delivered %d)", len(*got))
	}
}

func TestSNWrapAroundInOrder(t *testing.T) {
	cfg := defaultCfg()
	cfg.SNBits = 5
	_, tx, rx, got := newPair(t, cfg, nil)
	// 100 packets in order across three SN wraps: all must decipher.
	for i := 0; i < 100; i++ {
		s := tx.Submit(testPkt(5000, uint32(i), 100), FlowMeta{})
		rx.OnSDU(s)
	}
	if len(*got) != 100 || rx.DecipherFailures() != 0 {
		t.Fatalf("delivered %d failures %d", len(*got), rx.DecipherFailures())
	}
}

func TestModerateReorderingWithinWindowOK(t *testing.T) {
	cfg := defaultCfg() // 12-bit SN: window 2048
	_, tx, rx, got := newPair(t, cfg, nil)
	var batch []*rlc.SDU
	for i := 0; i < 20; i++ {
		batch = append(batch, tx.Submit(testPkt(5000, uint32(i), 100), FlowMeta{}))
	}
	// Deliver in reversed order: well within the half-window.
	for i := len(batch) - 1; i >= 0; i-- {
		rx.OnSDU(batch[i])
	}
	if len(*got) != 20 || rx.DecipherFailures() != 0 {
		t.Fatalf("delivered %d failures %d", len(*got), rx.DecipherFailures())
	}
}

func TestSNBitsValidation(t *testing.T) {
	eng := &sim.Engine{}
	var seq uint64
	bad := defaultCfg()
	bad.SNBits = 3
	if _, err := NewTx(eng, bad, nil, &seq); err == nil {
		t.Fatal("SNBits=3 accepted")
	}
	bad.SNBits = 20
	if _, err := NewTx(eng, bad, nil, &seq); err == nil {
		t.Fatal("SNBits=20 accepted")
	}
}

func TestMetaPropagation(t *testing.T) {
	_, tx, _, _ := newPair(t, defaultCfg(), nil)
	meta := FlowMeta{FlowSize: 9999, QoS: true, DelayBudget: 50 * sim.Millisecond}
	s := tx.Submit(testPkt(5000, 0, 100), meta)
	if s.FlowSize != 9999 || !s.QoS || s.DelayBudget != 50*sim.Millisecond {
		t.Fatalf("meta not propagated: %+v", s)
	}
}

// TestKeystreamMatchesStdlibCTR pins the hand-rolled counter mode to
// the stdlib: for the same (key, count, bearer) the keystream must be
// byte-identical to cipher.NewCTR over the EEA2-style IV, including
// across the per-block counter increment and a ragged tail. Any
// divergence here would silently break Tx/Rx interop and same-seed
// trace identity.
func TestKeystreamMatchesStdlibCTR(t *testing.T) {
	key := [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		t.Fatal(err)
	}
	var ctr ctrState
	for _, n := range []int{1, 15, 16, 17, 40, 127} {
		for _, count := range []uint32{0, 1, 0xfffffffe, 0xffffffff} {
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(i * 7)
			}
			want := make([]byte, n)
			var iv [16]byte
			binary.BigEndian.PutUint32(iv[0:4], count)
			iv[4] = 5
			cipher.NewCTR(block, iv[:]).XORKeyStream(want, data)
			ctr.apply(block, count, 5, data)
			if !bytes.Equal(data, want) {
				t.Fatalf("len %d count %#x: manual CTR diverges from stdlib", n, count)
			}
		}
	}
}

// cipherPair builds a delayed-SN Tx/Rx pair and one submitted SDU for
// the zero-alloc probes: DelayedSN leaves the header plaintext at
// Submit, so each probe run exercises number+cipher from a fixed COUNT.
func cipherPair(t *testing.T) (*Tx, *Rx, *rlc.SDU, []byte) {
	t.Helper()
	cfg := TxConfig{SNBits: 12, DelayedSN: true, Key: [16]byte{1}, Bearer: 3}
	eng := &sim.Engine{}
	var seq uint64
	tx, err := NewTx(eng, cfg, nil, &seq)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewRx(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sdu := tx.Submit(testPkt(8080, 0, 1000), FlowMeta{FlowSize: -1})
	if sdu == nil {
		t.Fatal("submit failed")
	}
	hdr := append([]byte(nil), sdu.Header...)
	return tx, rx, sdu, hdr
}

// TestCipherPathsZeroAlloc pins the per-SDU ciphering paths: after
// warm-up, Tx.AssignSN (number + cipher), Rx.OnSDU (decipher + parse
// + deliver) and the raw keystream core must not allocate. The probe
// registry is keyed by //outran:allocfree annotation (probetest.Run
// enforces the match).
func TestCipherPathsZeroAlloc(t *testing.T) {
	probetest.Run(t, ".", map[string]func(t *testing.T){
		"(*ctrState).apply": func(t *testing.T) {
			block, err := aes.NewCipher(make([]byte, 16))
			if err != nil {
				t.Fatal(err)
			}
			var ctr ctrState
			data := make([]byte, 40)
			allocs := testing.AllocsPerRun(100, func() {
				ctr.apply(block, 7, 3, data)
			})
			if allocs != 0 {
				t.Errorf("apply: %.1f allocs/call, want 0", allocs)
			}
		},
		"(*Tx).AssignSN": func(t *testing.T) {
			tx, _, sdu, hdr := cipherPair(t)
			allocs := testing.AllocsPerRun(100, func() {
				copy(sdu.Header, hdr)
				tx.nextSN = 0 // keep COUNT fixed so each run ciphers identically
				tx.AssignSN(sdu)
			})
			if allocs != 0 {
				t.Errorf("AssignSN: %.1f allocs/SDU, want 0", allocs)
			}
		},
		"(*Rx).OnSDU": func(t *testing.T) {
			tx, rx, sdu, hdr := cipherPair(t)
			copy(sdu.Header, hdr)
			tx.nextSN = 0
			tx.AssignSN(sdu)
			allocs := testing.AllocsPerRun(100, func() {
				rx.next = 0
				rx.OnSDU(sdu)
			})
			if allocs != 0 {
				t.Errorf("OnSDU: %.1f allocs/SDU, want 0", allocs)
			}
			if rx.DecipherFailures() > 0 {
				t.Fatalf("decipher failures: %d", rx.DecipherFailures())
			}
		},
	})
}
