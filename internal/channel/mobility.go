package channel

import (
	"math"

	"outran/internal/rng"
	"outran/internal/sim"
)

// Mobility is a random-waypoint walker inside a disc around the base
// station, matching the paper's "random mobility with an average
// walking speed of 1.4 m/s within a 200 m radius" setup. Positions are
// a pure function of time given the seed, via a precomputed leg list
// extended lazily.
type Mobility struct {
	radiusM  float64
	speedMPS float64
	r        *rng.Source
	legs     []leg
}

type leg struct {
	start  sim.Time
	end    sim.Time
	x0, y0 float64
	x1, y1 float64
}

// NewMobility places the UE uniformly in the disc and starts walking.
// speedMPS of 0 pins the UE in place.
func NewMobility(radiusM, speedMPS float64, r *rng.Source) *Mobility {
	m := &Mobility{radiusM: radiusM, speedMPS: speedMPS, r: r}
	x, y := m.randomPoint()
	if speedMPS <= 0 {
		m.legs = append(m.legs, leg{start: 0, end: math.MaxInt64, x0: x, y0: y, x1: x, y1: y})
		return m
	}
	m.appendLeg(0, x, y)
	return m
}

func (m *Mobility) randomPoint() (float64, float64) {
	// Uniform over the disc via sqrt radius.
	rad := m.radiusM * math.Sqrt(m.r.Float64())
	theta := 2 * math.Pi * m.r.Float64()
	return rad * math.Cos(theta), rad * math.Sin(theta)
}

func (m *Mobility) appendLeg(start sim.Time, x0, y0 float64) {
	x1, y1 := m.randomPoint()
	dist := math.Hypot(x1-x0, y1-y0)
	dur := sim.Time(dist / m.speedMPS * float64(sim.Second))
	if dur < sim.Millisecond {
		dur = sim.Millisecond
	}
	m.legs = append(m.legs, leg{start: start, end: start + dur, x0: x0, y0: y0, x1: x1, y1: y1})
}

// Position returns the UE's (x, y) at time t.
func (m *Mobility) Position(t sim.Time) (float64, float64) {
	for {
		last := m.legs[len(m.legs)-1]
		if t <= last.end {
			break
		}
		m.appendLeg(last.end, last.x1, last.y1)
	}
	// Usually the query hits the last few legs; scan backwards.
	for i := len(m.legs) - 1; i >= 0; i-- {
		l := m.legs[i]
		if t >= l.start {
			span := float64(l.end - l.start)
			frac := 0.0
			if span > 0 {
				frac = float64(t-l.start) / span
			}
			if frac > 1 {
				frac = 1
			}
			return l.x0 + frac*(l.x1-l.x0), l.y0 + frac*(l.y1-l.y0)
		}
	}
	return m.legs[0].x0, m.legs[0].y0
}

// DistanceM returns the distance from the base station at the origin.
func (m *Mobility) DistanceM(t sim.Time) float64 {
	x, y := m.Position(t)
	return math.Hypot(x, y)
}
