package channel

import (
	"testing"

	"outran/internal/phy"
	"outran/internal/rng"
	"outran/internal/sim"
)

var sinkCQI phy.CQI

// BenchmarkCQI measures the per-subband channel evaluation that runs
// for every UE on every CQI reporting period.
func BenchmarkCQI(b *testing.B) {
	m := Pedestrian().NewUEChannel(2.68e9, rng.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkCQI = m.CQI(sim.Time(i)*sim.Millisecond, i%m.NumSubbands())
	}
}

var sinkF float64

func BenchmarkSINR(b *testing.B) {
	m := Pedestrian().NewUEChannel(2.68e9, rng.New(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF = m.SINRdB(sim.Time(i)*sim.Millisecond, 0)
	}
}

func BenchmarkMobilityPosition(b *testing.B) {
	m := NewMobility(200, 1.4, rng.New(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := m.Position(sim.Time(i) * sim.Millisecond)
		sinkF = x + y
	}
}
