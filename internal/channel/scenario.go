package channel

import (
	"fmt"

	"outran/internal/rng"
)

// Scenario is a named channel environment used to instantiate the
// per-UE channels of a cell.
type Scenario struct {
	Name string
	// SINR mixture (Fig 2b): each UE draws a class, then a mean SINR
	// normally distributed around the class centre.
	Classes []SINRClass
	// Mobility parameters.
	SpeedMPS float64
	RadiusM  float64
	// Frequency selectivity.
	NumSubbands int
	// Shadowing std dev in dB.
	ShadowingStd float64
	// PathLossExp > 0 enables distance-driven SINR drift.
	PathLossExp float64
}

// SINRClass is one component of the SINR mixture.
type SINRClass struct {
	Name   string
	MeanDB float64
	StdDB  float64
	Weight float64
}

// Pedestrian reproduces the paper's main evaluation environment: the
// 3GPP pedestrian fading trace with UEs spread across Medium / Good /
// Excellent channel classes (Fig 2b), walking at 1.4 m/s in a 200 m
// cell.
func Pedestrian() Scenario {
	return Scenario{
		Name: "pedestrian",
		Classes: []SINRClass{
			{Name: "medium", MeanDB: 10, StdDB: 2.5, Weight: 0.3},
			{Name: "good", MeanDB: 22, StdDB: 3, Weight: 0.45},
			{Name: "excellent", MeanDB: 34, StdDB: 3, Weight: 0.25},
		},
		SpeedMPS:     1.4,
		RadiusM:      200,
		NumSubbands:  13,
		ShadowingStd: 2,
		PathLossExp:  0, // mean SINR already drawn per class
	}
}

// Urban28GHz approximates the NS-3 5G-LENA urban channel at 28 GHz
// used for the paper's 5G simulations: higher variance means, more
// stable small-scale dynamics relative to the short slots.
func Urban28GHz() Scenario {
	return Scenario{
		Name: "urban-28ghz",
		Classes: []SINRClass{
			{Name: "cell-edge", MeanDB: 8, StdDB: 2, Weight: 0.25},
			{Name: "mid", MeanDB: 18, StdDB: 3, Weight: 0.45},
			{Name: "near", MeanDB: 30, StdDB: 3, Weight: 0.3},
		},
		SpeedMPS:     1.4,
		RadiusM:      100,
		NumSubbands:  9,
		ShadowingStd: 3,
		PathLossExp:  0,
	}
}

// Colosseum scenario presets approximating the SCOPE RF scenarios used
// in Fig 19. Each differs in UE distance (mean SINR) and mobility.
func ColosseumRome() Scenario { // close, moderate mobility
	return Scenario{
		Name: "rome",
		Classes: []SINRClass{
			{Name: "close", MeanDB: 24, StdDB: 4, Weight: 1},
		},
		SpeedMPS: 3, RadiusM: 80, NumSubbands: 5, ShadowingStd: 3,
	}
}

func ColosseumBoston() Scenario { // close, fast mobility
	return Scenario{
		Name: "boston",
		Classes: []SINRClass{
			{Name: "close", MeanDB: 22, StdDB: 4, Weight: 1},
		},
		SpeedMPS: 9, RadiusM: 80, NumSubbands: 5, ShadowingStd: 3,
	}
}

func ColosseumPOWDER() Scenario { // medium distance, static
	return Scenario{
		Name: "powder",
		Classes: []SINRClass{
			{Name: "medium", MeanDB: 14, StdDB: 3, Weight: 1},
		},
		SpeedMPS: 0, RadiusM: 120, NumSubbands: 5, ShadowingStd: 3,
	}
}

// ScenarioByName resolves a preset by name.
func ScenarioByName(name string) (Scenario, error) {
	switch name {
	case "pedestrian":
		return Pedestrian(), nil
	case "urban-28ghz":
		return Urban28GHz(), nil
	case "rome":
		return ColosseumRome(), nil
	case "boston":
		return ColosseumBoston(), nil
	case "powder":
		return ColosseumPOWDER(), nil
	}
	return Scenario{}, fmt.Errorf("channel: unknown scenario %q", name)
}

// NewUEChannel draws one UE's channel from the scenario.
func (s Scenario) NewUEChannel(carrierHz float64, r *rng.Source) *Model {
	mean := s.drawMeanSINR(r)
	var mob *Mobility
	if s.RadiusM > 0 {
		mob = NewMobility(s.RadiusM, s.SpeedMPS, r.Fork())
	}
	return New(Config{
		MeanSINRdB:   mean,
		SpeedMPS:     s.SpeedMPS,
		CarrierHz:    carrierHz,
		NumSubbands:  s.NumSubbands,
		Mobility:     mob,
		PathLossExp:  s.PathLossExp,
		ShadowingStd: s.ShadowingStd,
	}, r.Fork())
}

func (s Scenario) drawMeanSINR(r *rng.Source) float64 {
	total := 0.0
	for _, c := range s.Classes {
		total += c.Weight
	}
	u := r.Float64() * total
	for _, c := range s.Classes {
		if u < c.Weight {
			return r.Normal(c.MeanDB, c.StdDB)
		}
		u -= c.Weight
	}
	last := s.Classes[len(s.Classes)-1]
	return r.Normal(last.MeanDB, last.StdDB)
}
