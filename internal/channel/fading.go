// Package channel models the time- and frequency-varying wireless
// channel each UE experiences: log-distance path loss with shadowing,
// Jakes (sum-of-sinusoids) Rayleigh fading with Doppler from the UE's
// speed, per-subband frequency-selective offsets, and random-waypoint
// pedestrian mobility. It substitutes for the 3GPP 36.141 fading
// traces and the NS-3/Colosseum channel emulation used in the paper.
package channel

import (
	"math"

	"outran/internal/phy"
	"outran/internal/rng"
	"outran/internal/sim"
)

const speedOfLight = 299792458.0

// jakes is a deterministic Rayleigh fading process realised as a sum
// of sinusoids (Jakes' model). The complex gain at time t is a pure
// function of t, so the process needs no per-tick state updates and
// can be sampled at arbitrary simulation times.
type jakes struct {
	dopplerHz float64
	phasesI   []float64
	phasesQ   []float64
	angles    []float64
}

const numOscillators = 8

func newJakes(dopplerHz float64, r *rng.Source) *jakes {
	j := &jakes{
		dopplerHz: dopplerHz,
		phasesI:   make([]float64, numOscillators),
		phasesQ:   make([]float64, numOscillators),
		angles:    make([]float64, numOscillators),
	}
	for n := 0; n < numOscillators; n++ {
		j.phasesI[n] = 2 * math.Pi * r.Float64()
		j.phasesQ[n] = 2 * math.Pi * r.Float64()
		// Random arrival angles give a smoother Doppler spectrum
		// than the classic deterministic spacing.
		j.angles[n] = 2 * math.Pi * r.Float64()
	}
	return j
}

// gainDB returns the instantaneous fading gain in dB (0 dB average
// power) at time t.
func (j *jakes) gainDB(t sim.Time) float64 {
	if j.dopplerHz <= 0 {
		// Static channel: fixed draw baked into phase 0.
		sum := 0.0
		for n := 0; n < numOscillators; n++ {
			sum += math.Cos(j.phasesI[n]) + math.Cos(j.phasesQ[n])
		}
		// Mild static multipath offset in [-3, +3] dB.
		return 3 * math.Tanh(sum/4)
	}
	ts := t.Seconds()
	var i, q float64
	for n := 0; n < numOscillators; n++ {
		w := 2 * math.Pi * j.dopplerHz * math.Cos(j.angles[n]) * ts
		i += math.Cos(w + j.phasesI[n])
		q += math.Sin(w + j.phasesQ[n])
	}
	norm := float64(numOscillators)
	p := (i*i + q*q) / norm // unit mean power
	if p < 1e-6 {
		p = 1e-6
	}
	return 10 * math.Log10(p)
}

// Model is the downlink channel of one UE. Zero value is not usable;
// construct with New.
type Model struct {
	meanSINRdB  float64
	subbands    []*jakes
	wideband    *jakes
	mob         *Mobility
	plExponent  float64
	refDistM    float64
	shadowingDB float64
}

// Config parameterises a UE channel.
type Config struct {
	MeanSINRdB   float64 // long-term average SINR at the reference distance
	SpeedMPS     float64 // UE speed (Doppler); 0 for static
	CarrierHz    float64 // downlink carrier frequency
	NumSubbands  int     // frequency-selective granularity (>=1)
	Mobility     *Mobility
	PathLossExp  float64 // 0 disables distance-driven SINR drift
	ShadowingStd float64 // lognormal shadowing std dev in dB
}

// New builds a channel model using r for all random draws.
func New(cfg Config, r *rng.Source) *Model {
	if cfg.NumSubbands < 1 {
		cfg.NumSubbands = 1
	}
	doppler := cfg.SpeedMPS / speedOfLight * cfg.CarrierHz
	m := &Model{
		meanSINRdB: cfg.MeanSINRdB,
		mob:        cfg.Mobility,
		plExponent: cfg.PathLossExp,
		refDistM:   100,
		wideband:   newJakes(doppler, r),
	}
	if cfg.ShadowingStd > 0 {
		m.shadowingDB = r.Normal(0, cfg.ShadowingStd)
	}
	m.subbands = make([]*jakes, cfg.NumSubbands)
	for i := range m.subbands {
		m.subbands[i] = newJakes(doppler, r)
	}
	return m
}

// SINRdB returns the instantaneous SINR (dB) on the given subband.
func (m *Model) SINRdB(t sim.Time, subband int) float64 {
	if subband < 0 {
		subband = 0
	}
	sb := m.subbands[subband%len(m.subbands)]
	s := m.meanSINRdB + m.shadowingDB
	// Wideband fading dominates; subband fading adds frequency
	// selectivity around it.
	s += 0.7*m.wideband.gainDB(t) + 0.3*sb.gainDB(t)
	if m.mob != nil && m.plExponent > 0 {
		d := m.mob.DistanceM(t)
		if d < 1 {
			d = 1
		}
		s -= 10 * m.plExponent * math.Log10(d/m.refDistM)
	}
	return s
}

// CQI returns the CQI the UE would report for the subband at time t.
func (m *Model) CQI(t sim.Time, subband int) phy.CQI {
	return phy.CQIFromSINR(m.SINRdB(t, subband))
}

// NumSubbands returns the frequency-selective granularity.
func (m *Model) NumSubbands() int { return len(m.subbands) }

// MeanSINRdB returns the configured long-term average SINR.
func (m *Model) MeanSINRdB() float64 { return m.meanSINRdB }
