package channel

import (
	"math"
	"testing"

	"outran/internal/rng"
	"outran/internal/sim"
)

func TestFadingZeroMeanPower(t *testing.T) {
	r := rng.New(1)
	m := New(Config{MeanSINRdB: 20, SpeedMPS: 1.4, CarrierHz: 2.68e9, NumSubbands: 1}, r)
	sum := 0.0
	const n = 5000
	for i := 0; i < n; i++ {
		tm := sim.Time(i) * sim.Millisecond
		sum += m.SINRdB(tm, 0)
	}
	mean := sum / n
	// Rayleigh fading in dB has mean about -2.5 dB (E[log] < log E);
	// the long-run average SINR should sit near the configured mean,
	// allowing for that bias.
	if math.Abs(mean-20) > 4 {
		t.Fatalf("long-run mean SINR %g far from configured 20", mean)
	}
}

func TestFadingVaries(t *testing.T) {
	r := rng.New(2)
	m := New(Config{MeanSINRdB: 20, SpeedMPS: 1.4, CarrierHz: 2.68e9, NumSubbands: 1}, r)
	var lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < 2000; i++ {
		v := m.SINRdB(sim.Time(i)*sim.Millisecond, 0)
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi-lo < 6 {
		t.Fatalf("pedestrian fading range only %.1f dB", hi-lo)
	}
}

func TestFadingTimeCoherence(t *testing.T) {
	// At 1.4 m/s / 2.68 GHz the Doppler is ~12.5 Hz: the channel must
	// be strongly correlated across 1 ms and decorrelated across
	// seconds.
	r := rng.New(3)
	m := New(Config{MeanSINRdB: 20, SpeedMPS: 1.4, CarrierHz: 2.68e9, NumSubbands: 1}, r)
	var step1ms, step1s float64
	const n = 400
	for i := 0; i < n; i++ {
		base := sim.Time(i) * 5 * sim.Millisecond
		a := m.SINRdB(base, 0)
		step1ms += math.Abs(m.SINRdB(base+sim.Millisecond, 0) - a)
		step1s += math.Abs(m.SINRdB(base+sim.Second, 0) - a)
	}
	if step1ms/n > step1s/n {
		t.Fatalf("channel less coherent at 1 ms (%g) than 1 s (%g)", step1ms/n, step1s/n)
	}
	if step1ms/n > 1.5 {
		t.Fatalf("1 ms channel step %g dB too large for pedestrian Doppler", step1ms/n)
	}
}

func TestStaticChannelConstant(t *testing.T) {
	r := rng.New(4)
	m := New(Config{MeanSINRdB: 15, SpeedMPS: 0, CarrierHz: 2.68e9, NumSubbands: 1}, r)
	a := m.SINRdB(0, 0)
	b := m.SINRdB(10*sim.Second, 0)
	if a != b {
		t.Fatalf("static channel changed: %g -> %g", a, b)
	}
}

func TestSubbandsDiffer(t *testing.T) {
	r := rng.New(5)
	m := New(Config{MeanSINRdB: 20, SpeedMPS: 1.4, CarrierHz: 2.68e9, NumSubbands: 8}, r)
	if m.NumSubbands() != 8 {
		t.Fatalf("NumSubbands %d", m.NumSubbands())
	}
	diff := 0.0
	for i := 0; i < 100; i++ {
		tm := sim.Time(i) * 10 * sim.Millisecond
		diff += math.Abs(m.SINRdB(tm, 0) - m.SINRdB(tm, 5))
	}
	if diff/100 < 0.2 {
		t.Fatal("no frequency selectivity between subbands")
	}
}

func TestDeterministicAcrossConstruction(t *testing.T) {
	m1 := New(Config{MeanSINRdB: 18, SpeedMPS: 1.4, CarrierHz: 2.68e9, NumSubbands: 3}, rng.New(99))
	m2 := New(Config{MeanSINRdB: 18, SpeedMPS: 1.4, CarrierHz: 2.68e9, NumSubbands: 3}, rng.New(99))
	for i := 0; i < 100; i++ {
		tm := sim.Time(i) * sim.Millisecond
		if m1.SINRdB(tm, i%3) != m2.SINRdB(tm, i%3) {
			t.Fatal("same seed, different channel")
		}
	}
}

func TestMobilityStaysInDisc(t *testing.T) {
	m := NewMobility(200, 1.4, rng.New(6))
	for i := 0; i < 1000; i++ {
		d := m.DistanceM(sim.Time(i) * sim.Second)
		if d > 200.0001 {
			t.Fatalf("walked outside the disc: %g m", d)
		}
	}
}

func TestMobilitySpeed(t *testing.T) {
	m := NewMobility(200, 1.4, rng.New(7))
	for i := 0; i < 500; i++ {
		t0 := sim.Time(i) * sim.Second
		x0, y0 := m.Position(t0)
		x1, y1 := m.Position(t0 + sim.Second)
		d := math.Hypot(x1-x0, y1-y0)
		if d > 1.4*1.01 {
			t.Fatalf("moved %g m in 1 s at 1.4 m/s", d)
		}
	}
}

func TestMobilityStatic(t *testing.T) {
	m := NewMobility(100, 0, rng.New(8))
	x0, y0 := m.Position(0)
	x1, y1 := m.Position(100 * sim.Second)
	if x0 != x1 || y0 != y1 {
		t.Fatal("static UE moved")
	}
}

func TestScenarioPresets(t *testing.T) {
	for _, name := range []string{"pedestrian", "urban-28ghz", "rome", "boston", "powder"} {
		s, err := ScenarioByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ch := s.NewUEChannel(2.68e9, rng.New(9))
		v := ch.SINRdB(0, 0)
		if v < -20 || v > 60 {
			t.Errorf("%s: implausible SINR %g", name, v)
		}
	}
	if _, err := ScenarioByName("nowhere"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestPedestrianMixture(t *testing.T) {
	// Fig 2b: UEs spread across medium/good/excellent classes. Drawing
	// many UEs must produce a wide spread of mean SINRs.
	s := Pedestrian()
	r := rng.New(10)
	var lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < 200; i++ {
		m := s.NewUEChannel(2.68e9, r)
		lo = math.Min(lo, m.MeanSINRdB())
		hi = math.Max(hi, m.MeanSINRdB())
	}
	if lo > 12 || hi < 28 {
		t.Fatalf("SINR mixture spread [%g, %g] too narrow for Fig 2b", lo, hi)
	}
}

func TestCQIUsesChannel(t *testing.T) {
	r := rng.New(11)
	good := New(Config{MeanSINRdB: 35, CarrierHz: 2.68e9, NumSubbands: 1}, r)
	bad := New(Config{MeanSINRdB: -5, CarrierHz: 2.68e9, NumSubbands: 1}, r)
	if good.CQI(0, 0) <= bad.CQI(0, 0) {
		t.Fatal("CQI ordering does not follow SINR")
	}
}
