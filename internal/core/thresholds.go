package core

import (
	"math"

	"outran/internal/rng"
)

// SolveThresholds finds K-1 MLFQ demotion thresholds minimising the
// PIAS mean "tag time" objective for the given flow-size distribution.
//
// Following PIAS (Bai et al., NSDI'15), under heavy load the time a
// flow spends in queue P_i is proportional to the bytes it sends at
// priority i weighted by the volume of traffic at equal-or-higher
// priority that can pre-empt it. We minimise
//
//	T({α}) = Σ_i  load_i · Σ_{j<=i} bytes_j(α)
//
// where bytes_j is the expected bytes a random flow sends while tagged
// priority j. The paper solved this with SciPy's global optimizer;
// here we seed with the equal-split quantiles and refine by cyclic
// coordinate descent over a log-spaced grid, which converges to the
// same solutions on these one-dimensional-per-coordinate objectives.
func SolveThresholds(k int, dist *rng.EmpiricalCDF) []int64 {
	if k < 2 {
		k = 2
	}
	th := EqualSplit(k, dist.Quantile)
	cost := thresholdCost(th, dist)
	// Candidate grid: log-spaced across the distribution support.
	lo, hi := dist.Min(), dist.Max()
	if lo < 1 {
		lo = 1
	}
	const gridN = 60
	grid := make([]int64, 0, gridN)
	for i := 0; i < gridN; i++ {
		v := int64(math.Exp(math.Log(lo) + (math.Log(hi)-math.Log(lo))*float64(i)/(gridN-1)))
		if len(grid) == 0 || v > grid[len(grid)-1] {
			grid = append(grid, v)
		}
	}
	for pass := 0; pass < 8; pass++ {
		improved := false
		for i := range th {
			bestV, bestC := th[i], cost
			for _, v := range grid {
				if i > 0 && v <= th[i-1] {
					continue
				}
				if i < len(th)-1 && v >= th[i+1] {
					continue
				}
				trial := append([]int64(nil), th...)
				trial[i] = v
				c := thresholdCost(trial, dist)
				if c < bestC {
					bestV, bestC = v, c
				}
			}
			if bestV != th[i] {
				th[i] = bestV
				cost = bestC
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	sortInt64(th)
	// Enforce strict monotonicity after grid snapping.
	for i := 1; i < len(th); i++ {
		if th[i] <= th[i-1] {
			th[i] = th[i-1] + 1
		}
	}
	return th
}

// thresholdCost evaluates the PIAS-style objective by quadrature over
// the flow-size distribution.
func thresholdCost(th []int64, dist *rng.EmpiricalCDF) float64 {
	k := len(th) + 1
	// bytesAt[j]: expected bytes a random flow transmits while at
	// priority j.
	bytesAt := make([]float64, k)
	const n = 400
	for s := 0; s < n; s++ {
		u := (float64(s) + 0.5) / n
		size := dist.Quantile(u)
		prev := 0.0
		for j := 0; j < k; j++ {
			var upper float64
			if j < len(th) {
				upper = float64(th[j])
			} else {
				upper = math.Inf(1)
			}
			seg := math.Min(size, upper) - prev
			if seg <= 0 {
				break
			}
			bytesAt[j] += seg / n
			prev = math.Min(size, upper)
		}
	}
	// loadShare[i]: fraction of total traffic volume sent at priority i.
	total := 0.0
	for _, b := range bytesAt {
		total += b
	}
	if total <= 0 {
		return math.Inf(1)
	}
	cost := 0.0
	cum := 0.0
	for i := 0; i < k; i++ {
		cum += bytesAt[i]
		// Bytes at priority i wait behind all traffic at priority <= i.
		cost += bytesAt[i] / total * cum
	}
	return cost
}
