// Package core implements OutRAN's contribution: the per-UE MLFQ
// intra-user flow scheduler policy (§4.2), the PIAS-style demotion
// threshold optimizer, and the ε-relaxation inter-user flow scheduler
// (§4.3, Algorithm 1) that wraps any per-RB metric MAC scheduler.
package core

import (
	"fmt"
	"sort"
)

// MLFQ is the multi-level feedback queue demotion policy shared by all
// users (§4.2): K priority queues P_1..P_K and K-1 thresholds α_1..
// α_{K-1}. A flow's packets carry priority i while the flow's
// sent-bytes lie in [α_{i-1}, α_i); priorities only ever decrease.
// Priorities here are 0-based: 0 is P_1 (highest).
type MLFQ struct {
	thresholds []int64 // ascending, len K-1
}

// DefaultQueues is the queue count used throughout the paper's
// evaluation; performance is steady for K > 4 (§4.2).
const DefaultQueues = 4

// NewMLFQ builds a policy from ascending positive byte thresholds.
// len(thresholds)+1 queues result.
func NewMLFQ(thresholds []int64) (*MLFQ, error) {
	if len(thresholds) == 0 {
		return nil, fmt.Errorf("core: MLFQ needs at least one threshold")
	}
	for i, t := range thresholds {
		if t <= 0 {
			return nil, fmt.Errorf("core: MLFQ threshold %d is non-positive (%d)", i, t)
		}
		if i > 0 && t <= thresholds[i-1] {
			return nil, fmt.Errorf("core: MLFQ thresholds not strictly increasing at %d", i)
		}
	}
	return &MLFQ{thresholds: append([]int64(nil), thresholds...)}, nil
}

// MustMLFQ panics on error; for fixed configuration tables.
func MustMLFQ(thresholds []int64) *MLFQ {
	m, err := NewMLFQ(thresholds)
	if err != nil {
		panic(err)
	}
	return m
}

// DefaultMLFQ returns the policy used in the evaluation: 4 queues with
// thresholds solved offline for the LTE cellular flow-size
// distribution (see SolveThresholds).
func DefaultMLFQ() *MLFQ {
	// Solved for the Huang et al. LTE distribution; roughly the 55th,
	// 80th and 93rd percentiles of flow size.
	return MustMLFQ([]int64{10 * 1024, 100 * 1024, 1024 * 1024})
}

// NumQueues returns K.
func (m *MLFQ) NumQueues() int { return len(m.thresholds) + 1 }

// Thresholds returns a copy of the demotion thresholds.
func (m *MLFQ) Thresholds() []int64 {
	return append([]int64(nil), m.thresholds...)
}

// PriorityFor returns the 0-based priority of a packet of a flow that
// has already sent sentBytes before this packet. New flows (0 bytes)
// start at priority 0 (P_1).
func (m *MLFQ) PriorityFor(sentBytes int64) int {
	// Thresholds are few (K-1 <= ~7); linear scan beats binary search.
	for i, t := range m.thresholds {
		if sentBytes < t {
			return i
		}
	}
	return len(m.thresholds)
}

// PriorityForSize returns the final (lowest) priority a flow of the
// given total size reaches — used by analytical tests.
func (m *MLFQ) PriorityForSize(size int64) int {
	if size <= 0 {
		return 0
	}
	return m.PriorityFor(size - 1)
}

// EqualSplit returns K-1 thresholds at the evenly spaced quantiles of
// the given flow-size distribution — the standard seed for threshold
// optimization.
func EqualSplit(k int, quantile func(u float64) float64) []int64 {
	if k < 2 {
		k = 2
	}
	th := make([]int64, 0, k-1)
	var prev int64
	for i := 1; i < k; i++ {
		v := int64(quantile(float64(i) / float64(k)))
		if v <= prev {
			v = prev + 1
		}
		th = append(th, v)
		prev = v
	}
	return th
}

// sortInt64 sorts in place (small helper kept local; stdlib only).
func sortInt64(v []int64) {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
}
