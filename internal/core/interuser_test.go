package core

import (
	"testing"
	"testing/quick"

	"outran/internal/analysis/probetest"
	"outran/internal/mac"
	"outran/internal/phy"
	"outran/internal/rng"
)

// testUsers builds a set of backlogged users with controllable CQI and
// MLFQ top priority.
func testUsers(cqis []phy.CQI, topPrio []int) []*mac.User {
	users := make([]*mac.User, len(cqis))
	for i := range cqis {
		perPrio := make([]int, 4)
		perPrio[topPrio[i]] = 1000
		users[i] = &mac.User{
			ID:         mac.UserID(i),
			SubbandCQI: []phy.CQI{cqis[i]},
			AvgTputBps: 1e6, // equal PF denominators: metric ∝ rate
			Buffer:     mac.BufferStatus{TotalBytes: 1000, PerPriority: perPrio},
		}
	}
	return users
}

func grid1() phy.Grid { return phy.Grid{Numerology: phy.Mu0, NumRB: 4, CarrierHz: 2e9} }

func TestEpsilonZeroMatchesLegacy(t *testing.T) {
	users := testUsers([]phy.CQI{15, 10, 5}, []int{3, 0, 0})
	legacy := mac.NewPF()
	outran, err := NewInterUser(mac.PFMetric, "PF", 0)
	if err != nil {
		t.Fatal(err)
	}
	a := legacy.Allocate(0, users, grid1())
	b := outran.Allocate(0, users, grid1())
	for i := range a.RBOwner {
		if a.RBOwner[i] != b.RBOwner[i] {
			t.Fatalf("eps=0 diverges from legacy at RB %d: %d vs %d", i, a.RBOwner[i], b.RBOwner[i])
		}
	}
}

func TestReselectionPrefersShortFlowUser(t *testing.T) {
	// User 0 has the best channel but only long-flow (P4) traffic;
	// user 1 is within epsilon and holds P1 traffic -> user 1 wins.
	users := testUsers([]phy.CQI{15, 14, 5}, []int{3, 0, 0})
	outran, err := NewInterUser(mac.PFMetric, "PF", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	alloc := outran.Allocate(0, users, grid1())
	for b, o := range alloc.RBOwner {
		if o != 1 {
			t.Fatalf("RB %d given to user %d, want 1", b, o)
		}
	}
}

func TestReselectionRespectsEpsilonFloor(t *testing.T) {
	// User 2 has P1 traffic but a channel far below (1-eps) of the
	// best metric: it must NOT be selected.
	users := testUsers([]phy.CQI{15, 15, 3}, []int{2, 2, 0})
	outran, err := NewInterUser(mac.PFMetric, "PF", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	alloc := outran.Allocate(0, users, grid1())
	for b, o := range alloc.RBOwner {
		if o == 2 {
			t.Fatalf("RB %d went to the bad-channel user despite eps floor", b)
		}
	}
}

func TestTieBreakKeepsBestMetric(t *testing.T) {
	// Same priority everywhere: the original best-metric user keeps
	// the RBs (spectral efficiency preserved).
	users := testUsers([]phy.CQI{15, 13, 12}, []int{1, 1, 1})
	outran, err := NewInterUser(mac.PFMetric, "PF", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	alloc := outran.Allocate(0, users, grid1())
	for b, o := range alloc.RBOwner {
		if o != 0 {
			t.Fatalf("RB %d not kept by best user: %d", b, o)
		}
	}
}

func TestStrictMLFQIgnoresChannel(t *testing.T) {
	// Strict MLFQ (eps=1) picks the P1 user even with the worst
	// channel — the datacenter port that costs spectral efficiency.
	users := testUsers([]phy.CQI{15, 14, 2}, []int{2, 2, 0})
	alloc := StrictMLFQ().Allocate(0, users, grid1())
	for b, o := range alloc.RBOwner {
		if o != 2 {
			t.Fatalf("strict MLFQ RB %d to user %d, want 2", b, o)
		}
	}
}

func TestEmptyBuffersGetNothing(t *testing.T) {
	users := testUsers([]phy.CQI{15, 15}, []int{0, 0})
	users[0].Buffer.TotalBytes = 0
	users[1].Buffer.TotalBytes = 0
	outran, _ := NewInterUser(mac.PFMetric, "PF", 0.2)
	alloc := outran.Allocate(0, users, grid1())
	for b, o := range alloc.RBOwner {
		if o != -1 {
			t.Fatalf("RB %d allocated to %d with no backlog", b, o)
		}
	}
}

func TestTopKSelection(t *testing.T) {
	// Top-K with K=2: only the two best metrics are candidates even
	// though user 2 (P1) is within any epsilon of nothing.
	users := testUsers([]phy.CQI{15, 14, 13}, []int{2, 2, 0})
	s := &InterUser{Inner: mac.PFMetric, TopK: 2, name: "topk"}
	alloc := s.Allocate(0, users, grid1())
	for b, o := range alloc.RBOwner {
		if o == 2 {
			t.Fatalf("RB %d to user outside top-K", b)
		}
	}
	// K=3 admits user 2, who then wins on priority.
	s.TopK = 3
	alloc = s.Allocate(0, users, grid1())
	for b, o := range alloc.RBOwner {
		if o != 2 {
			t.Fatalf("RB %d to %d; top-3 should admit the P1 user", b, o)
		}
	}
}

// Property (the paper's guarantee, §4.3): for every RB, the selected
// user's metric is at least (1-eps) of the maximum metric.
func TestEpsilonGuaranteeProperty(t *testing.T) {
	prop := func(seed uint64, epsRaw uint8) bool {
		r := rng.New(seed)
		eps := float64(epsRaw%100) / 100
		n := 2 + r.Intn(8)
		cqis := make([]phy.CQI, n)
		prios := make([]int, n)
		for i := range cqis {
			cqis[i] = phy.CQI(1 + r.Intn(15))
			prios[i] = r.Intn(4)
		}
		users := testUsers(cqis, prios)
		// Randomise PF denominators too.
		for _, u := range users {
			u.AvgTputBps = 1e5 + r.Float64()*1e7
		}
		s, err := NewInterUser(mac.PFMetric, "PF", eps)
		if err != nil {
			return false
		}
		g := grid1()
		alloc := s.Allocate(0, users, g)
		for b, o := range alloc.RBOwner {
			if o < 0 {
				return false // all users backlogged: every RB must go somewhere
			}
			max := 0.0
			for _, u := range users {
				if m := mac.PFMetric(u, b, g, 0); m > max {
					max = m
				}
			}
			got := mac.PFMetric(users[o], b, g, 0)
			if got < (1-eps)*max-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestInterUserZeroAllocs pins the zero-allocation hot path for the
// OutRAN inter-user scheduler in all three candidate-set modes: the
// ε relaxation, the top-K ablation, and strict MLFQ. After the first
// TTI grows the scratch (AllocsPerRun's warm-up call), steady-state
// Allocate must not allocate. The probe registry is keyed by
// //outran:allocfree annotation (probetest.Run enforces the match).
func TestInterUserZeroAllocs(t *testing.T) {
	probetest.Run(t, ".", map[string]func(t *testing.T){
		"(*InterUser).Allocate": func(t *testing.T) {
			users := testUsers([]phy.CQI{15, 10, 5, 0, 8}, []int{3, 0, 2, 1, 0})
			g := grid1()
			eps, err := NewInterUser(mac.PFMetric, "PF", 0.2)
			if err != nil {
				t.Fatal(err)
			}
			topK, err := NewInterUser(mac.PFMetric, "PF", 0)
			if err != nil {
				t.Fatal(err)
			}
			topK.TopK = 2
			for _, c := range []struct {
				name string
				s    *InterUser
			}{
				{"epsilon", eps}, {"topK", topK}, {"strictMLFQ", StrictMLFQ()},
			} {
				s := c.s
				allocs := testing.AllocsPerRun(100, func() {
					s.Allocate(0, users, g)
				})
				if allocs != 0 {
					t.Errorf("%s: %.1f allocs/TTI, want 0", c.name, allocs)
				}
			}
		},
	})
}
