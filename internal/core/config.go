package core

import (
	"fmt"

	"outran/internal/sim"
)

// Config gathers every OutRAN knob in one place. The zero value is not
// valid; start from DefaultConfig.
type Config struct {
	// Epsilon is the inter-user relaxation threshold (§4.3). The paper
	// ships 0.2; values below 0.4 form the stable plateau of Fig 8.
	Epsilon float64
	// Queues is the MLFQ queue count K (§4.2).
	Queues int
	// Thresholds are the K-1 demotion thresholds in bytes. Leave nil
	// to use the defaults solved for the LTE workload.
	Thresholds []int64
	// ResetPeriod, when > 0, periodically resets every flow's
	// sent-bytes so long-lived latency-sensitive flows regain priority
	// ("priority boost", §6.3). Zero disables resets.
	ResetPeriod sim.Time
	// DelayedSN performs PDCP SN numbering and ciphering at RLC PDU
	// build time instead of PDCP ingress (§4.4). Disabling it with
	// MLFQ enabled reproduces the decipher failures the paper warns
	// about; it exists as a knob only for that ablation.
	DelayedSN bool
	// SegmentPromotion promotes a segmented SDU's remainder to the
	// head of the top priority queue so reassembly windows do not
	// expire (§4.4).
	SegmentPromotion bool
	// TopK, when > 0, replaces the ε relaxation with a top-K-users
	// candidate set — the strictly worse alternative §4.3 argues
	// against; kept for the ablation benches.
	TopK int
}

// DefaultConfig returns the configuration used in the paper's main
// evaluation.
func DefaultConfig() Config {
	return Config{
		Epsilon:          0.2,
		Queues:           DefaultQueues,
		Thresholds:       nil,
		ResetPeriod:      0,
		DelayedSN:        true,
		SegmentPromotion: true,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Epsilon < 0 || c.Epsilon > 1 {
		return fmt.Errorf("core: epsilon %g outside [0,1]", c.Epsilon)
	}
	if c.Queues < 2 {
		return fmt.Errorf("core: need at least 2 MLFQ queues, got %d", c.Queues)
	}
	if c.Thresholds != nil && len(c.Thresholds) != c.Queues-1 {
		return fmt.Errorf("core: %d queues need %d thresholds, got %d",
			c.Queues, c.Queues-1, len(c.Thresholds))
	}
	if c.ResetPeriod < 0 {
		return fmt.Errorf("core: negative reset period %v", c.ResetPeriod)
	}
	return nil
}

// Policy builds the MLFQ policy from the config.
func (c Config) Policy() (*MLFQ, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.Thresholds != nil {
		return NewMLFQ(c.Thresholds)
	}
	if c.Queues == DefaultQueues {
		return DefaultMLFQ(), nil
	}
	// Spread defaults geometrically from 10 KB when K differs.
	th := make([]int64, c.Queues-1)
	v := int64(10 * 1024)
	for i := range th {
		th[i] = v
		v *= 10
	}
	return NewMLFQ(th)
}
