package core

import (
	"testing"

	"outran/internal/mac"
	"outran/internal/phy"
	"outran/internal/rng"
	"outran/internal/sim"
)

func benchUsers(n int) []*mac.User {
	users := make([]*mac.User, n)
	for i := range users {
		cqis := make([]phy.CQI, 13)
		for j := range cqis {
			cqis[j] = phy.CQI(1 + (i*7+j*3)%15)
		}
		perPrio := make([]int, 4)
		perPrio[i%4] = 1000
		users[i] = &mac.User{
			ID:         mac.UserID(i),
			SubbandCQI: cqis,
			AvgTputBps: float64(1e5 + i*31337),
			Buffer:     mac.BufferStatus{TotalBytes: 1500, PerPriority: perPrio},
		}
	}
	return users
}

// BenchmarkInterUserVsPF quantifies the cost of OutRAN's second pass
// relative to plain PF: the paper's claim is it stays within the same
// O(|U||B|) complexity (§4.3, Fig 14).
func BenchmarkInterUserAllocate20x50(b *testing.B) {
	s, err := NewInterUser(mac.PFMetric, "PF", 0.2)
	if err != nil {
		b.Fatal(err)
	}
	grid := phy.Grid{Numerology: phy.Mu0, NumRB: 50, CarrierHz: 2.68e9}
	users := benchUsers(20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Allocate(sim.Time(i)*sim.Millisecond, users, grid)
	}
}

func BenchmarkInterUserAllocate100x100(b *testing.B) {
	s, err := NewInterUser(mac.PFMetric, "PF", 0.2)
	if err != nil {
		b.Fatal(err)
	}
	grid := phy.Grid{Numerology: phy.Mu0, NumRB: 100, CarrierHz: 2.68e9}
	users := benchUsers(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Allocate(sim.Time(i)*sim.Millisecond, users, grid)
	}
}

func BenchmarkMLFQPriorityFor(b *testing.B) {
	m := DefaultMLFQ()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.PriorityFor(int64(i) * 997 % (4 << 20))
	}
}

func BenchmarkSolveThresholds(b *testing.B) {
	dist := benchDist()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveThresholds(4, dist)
	}
}

// benchDist is a local flow-size distribution for the solver bench
// (avoids importing workload from core's tests).
func benchDist() *rng.EmpiricalCDF {
	return rng.MustCDF([]rng.CDFPoint{
		{Value: 1000, Prob: 0.4},
		{Value: 10000, Prob: 0.8},
		{Value: 100000, Prob: 0.95},
		{Value: 5000000, Prob: 1},
	})
}
