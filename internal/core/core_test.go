package core

import (
	"testing"
	"testing/quick"

	"outran/internal/mac"
	"outran/internal/workload"
)

func TestMLFQValidation(t *testing.T) {
	if _, err := NewMLFQ(nil); err == nil {
		t.Error("empty thresholds accepted")
	}
	if _, err := NewMLFQ([]int64{0, 10}); err == nil {
		t.Error("non-positive threshold accepted")
	}
	if _, err := NewMLFQ([]int64{10, 10}); err == nil {
		t.Error("non-increasing thresholds accepted")
	}
	m, err := NewMLFQ([]int64{100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumQueues() != 3 {
		t.Fatalf("queues %d", m.NumQueues())
	}
}

func TestPriorityForDemotion(t *testing.T) {
	m := MustMLFQ([]int64{100, 1000, 10000})
	cases := []struct {
		sent int64
		want int
	}{
		{0, 0}, {99, 0}, {100, 1}, {999, 1}, {1000, 2}, {9999, 2}, {10000, 3}, {1 << 40, 3},
	}
	for _, c := range cases {
		if got := m.PriorityFor(c.sent); got != c.want {
			t.Errorf("PriorityFor(%d) = %d, want %d", c.sent, got, c.want)
		}
	}
}

func TestPriorityNeverDecreasesWithBytes(t *testing.T) {
	m := DefaultMLFQ()
	prop := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return m.PriorityFor(x) <= m.PriorityFor(y)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityForSize(t *testing.T) {
	m := MustMLFQ([]int64{100})
	if m.PriorityForSize(0) != 0 || m.PriorityForSize(100) != 0 || m.PriorityForSize(101) != 1 {
		t.Fatal("PriorityForSize boundary wrong")
	}
}

func TestShortFlowsStayTopPriority(t *testing.T) {
	// The paper's design: a flow under the first threshold completes
	// entirely at P1.
	m := DefaultMLFQ()
	th := m.Thresholds()
	if m.PriorityForSize(th[0]) != 0 {
		t.Fatal("flow exactly at first threshold should finish in P1")
	}
}

func TestThresholdsCopy(t *testing.T) {
	m := MustMLFQ([]int64{10, 20})
	th := m.Thresholds()
	th[0] = 999
	if m.PriorityFor(15) != 1 {
		t.Fatal("Thresholds() leaked internal state")
	}
}

func TestEqualSplit(t *testing.T) {
	dist := workload.LTECellular()
	th := EqualSplit(4, dist.Quantile)
	if len(th) != 3 {
		t.Fatalf("got %d thresholds", len(th))
	}
	for i := 1; i < len(th); i++ {
		if th[i] <= th[i-1] {
			t.Fatal("equal-split thresholds not increasing")
		}
	}
}

func TestSolveThresholdsImprovesOnEqualSplit(t *testing.T) {
	dist := workload.LTECellular()
	seed := EqualSplit(4, dist.Quantile)
	solved := SolveThresholds(4, dist)
	if len(solved) != 3 {
		t.Fatalf("got %d thresholds", len(solved))
	}
	cSeed := thresholdCost(seed, dist)
	cSolved := thresholdCost(solved, dist)
	if cSolved > cSeed+1e-9 {
		t.Fatalf("optimizer made cost worse: %g > %g", cSolved, cSeed)
	}
	for i := 1; i < len(solved); i++ {
		if solved[i] <= solved[i-1] {
			t.Fatal("solved thresholds not strictly increasing")
		}
	}
	// The solved thresholds must be usable.
	if _, err := NewMLFQ(solved); err != nil {
		t.Fatal(err)
	}
}

func TestSolveThresholdsDeterministic(t *testing.T) {
	dist := workload.Mirage()
	a := SolveThresholds(4, dist)
	b := SolveThresholds(4, dist)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("optimizer not deterministic")
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Epsilon = 1.5
	if bad.Validate() == nil {
		t.Error("epsilon > 1 accepted")
	}
	bad = good
	bad.Queues = 1
	if bad.Validate() == nil {
		t.Error("single queue accepted")
	}
	bad = good
	bad.Thresholds = []int64{1, 2} // wrong count for 4 queues
	if bad.Validate() == nil {
		t.Error("threshold count mismatch accepted")
	}
	bad = good
	bad.ResetPeriod = -1
	if bad.Validate() == nil {
		t.Error("negative reset period accepted")
	}
}

func TestConfigPolicy(t *testing.T) {
	cfg := DefaultConfig()
	p, err := cfg.Policy()
	if err != nil {
		t.Fatal(err)
	}
	if p.NumQueues() != DefaultQueues {
		t.Fatalf("default policy has %d queues", p.NumQueues())
	}
	cfg.Queues = 6
	p, err = cfg.Policy()
	if err != nil {
		t.Fatal(err)
	}
	if p.NumQueues() != 6 {
		t.Fatalf("custom policy has %d queues", p.NumQueues())
	}
	cfg.Thresholds = []int64{1, 2, 3, 4, 5}
	if _, err = cfg.Policy(); err != nil {
		t.Fatal(err)
	}
}

func TestNewInterUserValidation(t *testing.T) {
	if _, err := NewInterUser(nil, "PF", 0.2); err == nil {
		t.Error("nil metric accepted")
	}
	if _, err := NewInterUser(mac.PFMetric, "PF", -0.1); err == nil {
		t.Error("negative epsilon accepted")
	}
	if _, err := NewInterUser(mac.PFMetric, "PF", 1.1); err == nil {
		t.Error("epsilon > 1 accepted")
	}
	s, err := NewInterUser(mac.PFMetric, "PF", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "OutRAN(PF,eps=0.2)" {
		t.Fatalf("name %q", s.Name())
	}
}
