package core

import (
	"fmt"

	"outran/internal/mac"
	"outran/internal/phy"
	"outran/internal/sim"
)

// InterUser is OutRAN's inter-user flow scheduler (§4.3, Algorithm 1).
// It wraps any per-RB metric and, for every RB, first finds the best
// metric m_max exactly as the legacy scheduler would, then re-selects
// among the candidate set U' = {u : m_u >= (1-ε)·m_max} the user whose
// queued flows hold the highest MLFQ priority. Ties on priority keep
// the best metric, preserving spectral efficiency inside the relaxed
// band. ε=0 degenerates to the legacy scheduler; ε=1 is channel-blind
// strict priority.
type InterUser struct {
	Inner   mac.MetricFunc
	Epsilon float64
	// TopK, when > 0, replaces the ε relaxation with a "top-K users by
	// metric" candidate set. The paper argues this alternative is
	// worse (§4.3); it is kept for the ablation benches.
	TopK int

	// OnDecision, when set, observes every RB allocation: the user the
	// legacy metric would have picked (best, with metric bestM), the
	// size of the relaxed candidate set, and the user actually chosen
	// (sel, with metric selM and MLFQ level selLevel). The relative
	// metric sacrifice (bestM-selM)/bestM is the paper's §5.4
	// per-decision spectral-efficiency cost. Nil costs one pointer
	// check per RB.
	OnDecision DecisionFunc

	name string

	// Unconditional decision audit, maintained for every allocated RB
	// (plain field arithmetic — alloc-free, and independent of the
	// OnDecision hook so live KPI sampling and tracing coexist):
	// decisions counts allocated RBs, overrides how often relaxation
	// picked a different user than the legacy metric, and sacSum the
	// summed relative metric sacrifice (§5.4).
	decisions uint64
	overrides uint64
	sacSum    float64

	// Per-TTI scratch reused across Allocate calls (see the
	// mac.Scheduler ownership contract): the returned allocation, the
	// per-user metric vector, and the top-K candidate buffer.
	scratch mac.Allocation
	metrics []float64
	cands   []topKCand
}

// Audit returns the running decision counters: allocated RBs,
// override count, and the summed §5.4 relative metric sacrifice.
func (s *InterUser) Audit() (decisions, overrides uint64, sacSum float64) {
	return s.decisions, s.overrides, s.sacSum
}

// SetAudit overwrites the decision counters — the snapshot-restore
// path uses it; everything else should only read via Audit.
func (s *InterUser) SetAudit(decisions, overrides uint64, sacSum float64) {
	s.decisions, s.overrides, s.sacSum = decisions, overrides, sacSum
}

// topKCand is one entry of the top-K candidate scratch.
type topKCand struct {
	ui int
	m  float64
}

// DecisionFunc receives one scheduler decision record per allocated RB.
type DecisionFunc func(now sim.Time, rb, best, sel int, bestM, selM float64, selLevel, candidates int)

// NewInterUser wraps the given metric with relaxation ε in [0, 1].
func NewInterUser(inner mac.MetricFunc, innerName string, epsilon float64) (*InterUser, error) {
	if epsilon < 0 || epsilon > 1 {
		return nil, fmt.Errorf("core: epsilon %g outside [0,1]", epsilon)
	}
	if inner == nil {
		return nil, fmt.Errorf("core: nil inner metric")
	}
	return &InterUser{
		Inner:   inner,
		Epsilon: epsilon,
		name:    fmt.Sprintf("OutRAN(%s,eps=%g)", innerName, epsilon),
	}, nil
}

// Name implements mac.Scheduler.
func (s *InterUser) Name() string { return s.name }

// Allocate implements mac.Scheduler with one extra pass per RB,
// keeping the O(|U||B|) complexity of the legacy scheduler.
//
//outran:allocfree
//outran:scratch
func (s *InterUser) Allocate(now sim.Time, users []*mac.User, grid phy.Grid) mac.Allocation {
	s.scratch.Reset(grid.NumRB)
	alloc := s.scratch
	// Metric scratch reused across RBs and TTIs.
	if cap(s.metrics) < len(users) {
		//outran:allocok capacity-guarded scratch growth; reruns only when the user population grows
		s.metrics = make([]float64, len(users))
	}
	metrics := s.metrics[:len(users)]
	for b := 0; b < grid.NumRB; b++ {
		// First iteration: the legacy selection (lines 4-8).
		best := -1
		mMax := 0.0
		for ui, u := range users {
			metrics[ui] = 0
			if !u.Buffer.Backlogged() {
				continue
			}
			m := s.Inner(u, b, grid, now)
			metrics[ui] = m
			if m <= 0 {
				continue
			}
			if best == -1 || m > mMax {
				best, mMax = ui, m
			}
		}
		if best == -1 {
			continue
		}
		// Second iteration: re-selection among the relaxed candidate
		// set (lines 11-16).
		sel := best
		selPrio := users[best].Buffer.TopPriority()
		selMetric := mMax
		candidates := 1
		if s.TopK > 0 {
			sel, selPrio, selMetric = s.topKSelect(users, metrics, best)
			candidates = s.TopK
			if candidates > len(users) {
				candidates = len(users)
			}
		} else if s.Epsilon > 0 {
			candidates = 0
			floor := (1 - s.Epsilon) * mMax
			for ui, u := range users {
				if metrics[ui] <= 0 || metrics[ui] < floor {
					continue
				}
				candidates++
				p := u.Buffer.TopPriority()
				if p < selPrio || (p == selPrio && metrics[ui] > selMetric) {
					sel, selPrio, selMetric = ui, p, metrics[ui]
				}
			}
		}
		alloc.RBOwner[b] = sel
		s.decisions++
		if sel != best {
			s.overrides++
			s.sacSum += (mMax - selMetric) / mMax
		}
		if s.OnDecision != nil {
			s.OnDecision(now, b, best, sel, mMax, selMetric, selPrio, candidates)
		}
	}
	return alloc
}

// topKSelect implements the alternative candidate set for the
// ablation: the K users with the highest metrics, regardless of how
// far below m_max they fall.
func (s *InterUser) topKSelect(users []*mac.User, metrics []float64, best int) (int, int, float64) {
	if cap(s.cands) < len(users) {
		//outran:allocok capacity-guarded scratch growth; reruns only when the user population grows
		s.cands = make([]topKCand, 0, len(users))
	}
	cands := s.cands[:0]
	for ui := range users {
		if metrics[ui] > 0 {
			//outran:allocok bounded by the guard above: at most len(users) appends into cap >= len(users)
			cands = append(cands, topKCand{ui, metrics[ui]})
		}
	}
	// Partial selection sort for the top K (K is small).
	k := s.TopK
	if k > len(cands) {
		k = len(cands)
	}
	for i := 0; i < k; i++ {
		maxJ := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].m > cands[maxJ].m {
				maxJ = j
			}
		}
		cands[i], cands[maxJ] = cands[maxJ], cands[i]
	}
	sel := best
	selPrio := users[best].Buffer.TopPriority()
	selMetric := metrics[best]
	for i := 0; i < k; i++ {
		u := users[cands[i].ui]
		p := u.Buffer.TopPriority()
		if p < selPrio || (p == selPrio && cands[i].m > selMetric) {
			sel, selPrio, selMetric = cands[i].ui, p, cands[i].m
		}
	}
	return sel, selPrio, selMetric
}

// StrictMLFQ is the datacenter-style strict priority scheduler ported
// unchanged to the xNodeB (the "strict MLFQ" comparison of Fig 7): it
// always serves the user holding the globally highest MLFQ priority,
// breaking ties by PF metric. Equivalent to InterUser with ε=1.
func StrictMLFQ() *InterUser {
	return &InterUser{Inner: mac.PFMetric, Epsilon: 1, name: "StrictMLFQ"}
}
