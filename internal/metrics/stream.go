package metrics

import (
	"fmt"

	"outran/internal/obs"
	"outran/internal/sim"
	"outran/internal/snapshot"
)

// Streaming FCT accumulation: instead of retaining one FCTSample per
// completed flow (unbounded at city scale), an FCTStream counts each
// completion into one of six fixed-layout exponential histograms —
// [size class] × [incast / non-incast] — and answers the same Stats
// queries as the exact recorder by merging the relevant subset and
// interpolating quantiles.
//
// Bucket geometry bounds the quantile error: with per-bucket growth
// 2^(1/16) ≈ 1.0443, any value is at most ~4.43% away from its bucket
// edges, so interpolated p50/p99 stay within the 5% relative-error
// budget of the exact estimator (mean and max are exact — tracked sum
// and max). Memory is fixed: 6 histograms × 341 buckets ≈ 20 KB per
// cell regardless of flow count.
const (
	// streamFactor is 2^(1/16).
	streamFactor = 1.0442737824274138
	// streamStart is the first bucket's upper bound: 0.05 ms in ns.
	streamStart = 50e3
	// streamBuckets spans 0.05 ms .. ~120 s, past any simulated FCT.
	streamBuckets = 340
)

// streamBounds is the shared bucket layout of every streaming FCT
// histogram (values in nanoseconds).
var streamBounds = obs.ExpBuckets(streamStart, streamFactor, streamBuckets)

// StreamBounds returns the streaming FCT bucket layout (ns upper
// bounds), for consumers that build mergeable histograms of their own.
func StreamBounds() []float64 {
	return append([]float64(nil), streamBounds...)
}

// tagStream is the structural sentinel for an FCTStream snapshot.
const tagStream = 0x4e04

// FCTStream is the bounded-memory streaming FCT accumulator.
type FCTStream struct {
	// hists[class][0] counts non-incast completions, [class][1]
	// incast-marked ones.
	hists [3][2]*obs.Histogram
}

// NewFCTStream returns an empty streaming accumulator.
func NewFCTStream() *FCTStream {
	s := &FCTStream{}
	for c := range s.hists {
		for i := range s.hists[c] {
			s.hists[c][i] = obs.NewHistogram(streamBounds)
		}
	}
	return s
}

// Record counts one completed flow. The per-flow UE attribution of
// the exact recorder is intentionally dropped — that is the memory
// the streaming path exists to not spend.
func (s *FCTStream) Record(sample FCTSample) {
	i := 0
	if sample.Incast {
		i = 1
	}
	s.hists[ClassOf(sample.Size)][i].Observe(float64(sample.FCT))
}

// Completed returns the total number of recorded completions.
func (s *FCTStream) Completed() int {
	var n uint64
	for c := range s.hists {
		for i := range s.hists[c] {
			n += s.hists[c][i].Count()
		}
	}
	return int(n)
}

// Merge folds other's counts into s (cross-cell aggregation). The
// layouts always match — every stream shares streamBounds — so an
// error here means memory corruption, not usage.
func (s *FCTStream) Merge(other *FCTStream) error {
	for c := range s.hists {
		for i := range s.hists[c] {
			if err := s.hists[c][i].Merge(other.hists[c][i]); err != nil {
				return fmt.Errorf("metrics: merging fct streams: %w", err)
			}
		}
	}
	return nil
}

// stats merges the selected histograms and summarises them. class < 0
// selects all classes; incast < 0 selects both populations, 0 only
// non-incast, 1 only incast.
func (s *FCTStream) stats(class SizeClass, incast int) Stats {
	m := obs.NewHistogram(streamBounds)
	for c := range s.hists {
		if class >= 0 && SizeClass(c) != class {
			continue
		}
		for i := range s.hists[c] {
			if incast >= 0 && i != incast {
				continue
			}
			// Shared layout: Merge cannot fail.
			m.Merge(s.hists[c][i]) //nolint:errcheck
		}
	}
	return histStats(m)
}

// histStats summarises a histogram of nanosecond durations as the
// recorder's Stats schema: count, exact mean and max, interpolated
// percentiles.
func histStats(h *obs.Histogram) Stats {
	n := h.Count()
	if n == 0 {
		return Stats{}
	}
	return Stats{
		Count: int(n),
		Mean:  sim.Time(h.Sum() / float64(n)),
		P50:   sim.Time(h.Quantile(0.50)),
		P95:   sim.Time(h.Quantile(0.95)),
		P99:   sim.Time(h.Quantile(0.99)),
		Max:   sim.Time(h.Max()),
	}
}

// Overall returns stats over all completions.
func (s *FCTStream) Overall() Stats { return s.stats(-1, -1) }

// ByClass returns stats for one size class.
func (s *FCTStream) ByClass(c SizeClass) Stats { return s.stats(c, -1) }

// IncastStats returns stats over incast-marked completions only.
func (s *FCTStream) IncastStats() Stats { return s.stats(-1, 1) }

// NonIncastByClass returns stats for one class excluding incast.
func (s *FCTStream) NonIncastByClass(c SizeClass) Stats { return s.stats(c, 0) }

// Snapshot encodes all six histograms in fixed order.
func (s *FCTStream) Snapshot(e *snapshot.Encoder) {
	e.Mark(tagStream)
	for c := range s.hists {
		for i := range s.hists[c] {
			s.hists[c][i].Snapshot(e)
		}
	}
}

// Restore overlays a snapshot onto a freshly built stream.
func (s *FCTStream) Restore(d *snapshot.Decoder) error {
	d.Expect(tagStream)
	for c := range s.hists {
		for i := range s.hists[c] {
			if err := s.hists[c][i].RestoreSnapshot(d); err != nil {
				return fmt.Errorf("restoring fct stream: %w", err)
			}
		}
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("restoring fct stream: %w", err)
	}
	return nil
}
