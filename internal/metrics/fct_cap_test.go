package metrics

import (
	"testing"

	"outran/internal/sim"
	"outran/internal/snapshot"
)

// TestExactRecorderCapDegrades is the regression gate for the
// unbounded-retention bug: an exact recorder that hits its
// retained-sample cap must fold everything into a streaming
// accumulator and keep answering — with no per-flow retention from
// that point on — instead of growing without bound.
func TestExactRecorderCapDegrades(t *testing.T) {
	const cap = 100
	samples := paperSamples(5000, 11)

	exact := &FCTRecorder{}
	exact.SetExactCap(-1) // reference: unbounded exact estimator
	capped := &FCTRecorder{}
	capped.SetExactCap(cap)
	for _, s := range samples {
		exact.Record(s)
		capped.Record(s)
	}

	if !capped.Degraded() {
		t.Fatal("recorder over cap did not degrade")
	}
	if capped.Stream() == nil {
		t.Fatal("degraded recorder has no stream")
	}
	if got := capped.Samples(); got != nil {
		t.Fatalf("degraded recorder retains %d samples, want none", len(got))
	}
	if capped.Completed() != len(samples) {
		t.Fatalf("degraded recorder lost completions: %d, want %d", capped.Completed(), len(samples))
	}

	// Every sample — retained before the cap and recorded after — must
	// be in the stream: count and max exact, mean within float noise,
	// quantiles within the streaming path's documented error budget.
	got, want := capped.Overall(), exact.Overall()
	if got.Count != want.Count || got.Max != want.Max {
		t.Errorf("degraded stats %+v vs exact %+v", got, want)
	}
	if e := relErr(got.Mean, want.Mean); e > 1e-9 {
		t.Errorf("degraded mean %v vs exact %v (rel %g)", got.Mean, want.Mean, e)
	}
	if e := relErr(got.P99, want.P99); e > 0.05 {
		t.Errorf("degraded p99 %v vs exact %v (rel %g)", got.P99, want.P99, e)
	}
}

// TestExactRecorderCapBoundary: the recorder retains exactly cap
// samples before degrading, and the default cap applies when none is
// set.
func TestExactRecorderCapBoundary(t *testing.T) {
	r := &FCTRecorder{}
	r.SetExactCap(10)
	for i := 0; i < 10; i++ {
		r.Record(FCTSample{Size: 100, FCT: sim.Millisecond})
	}
	if r.Degraded() {
		t.Fatal("recorder degraded at the cap, want at cap+1")
	}
	if len(r.Samples()) != 10 {
		t.Fatalf("retained %d samples, want 10", len(r.Samples()))
	}
	r.Record(FCTSample{Size: 100, FCT: sim.Millisecond})
	if !r.Degraded() {
		t.Fatal("recorder past cap did not degrade")
	}
	if r.Completed() != 11 {
		t.Fatalf("completed %d, want 11", r.Completed())
	}

	var def FCTRecorder
	if got := def.exactCap(); got != DefaultExactCap {
		t.Fatalf("default cap %d, want %d", got, DefaultExactCap)
	}
	unbounded := &FCTRecorder{}
	unbounded.SetExactCap(-1)
	if got := unbounded.exactCap(); got >= 0 {
		t.Fatalf("unbounded cap resolves to %d, want negative", got)
	}
}

// TestDegradedRecorderSnapshotRoundTrip: a checkpoint taken after the
// cap degrade must restore onto an exact-constructed recorder (the
// config still says exact) by replaying the degrade, so crash-resume
// continues byte-identically.
func TestDegradedRecorderSnapshotRoundTrip(t *testing.T) {
	r := &FCTRecorder{}
	r.SetExactCap(50)
	for _, s := range paperSamples(120, 13) {
		r.Record(s)
	}
	if !r.Degraded() {
		t.Fatal("setup: recorder did not degrade")
	}
	var e snapshot.Encoder
	r.Snapshot(&e)

	restored := &FCTRecorder{} // exact-constructed, as the config would build it
	restored.SetExactCap(50)
	if err := restored.Restore(snapshot.NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !restored.Degraded() {
		t.Fatal("restored recorder lost the degraded flag")
	}
	if got, want := restored.Overall(), r.Overall(); got != want {
		t.Errorf("restored stats %+v != original %+v", got, want)
	}
	// Recording after restore keeps streaming, never re-retains.
	restored.Record(FCTSample{Size: 100, FCT: sim.Millisecond})
	if restored.Samples() != nil {
		t.Fatal("restored degraded recorder retained a sample")
	}
}

// TestExactRecorderSnapshotRoundTrip: the exact path's snapshot (with
// the new degradation flag in the codec) still round-trips retained
// samples losslessly.
func TestExactRecorderSnapshotRoundTrip(t *testing.T) {
	r := &FCTRecorder{}
	for _, s := range paperSamples(40, 17) {
		r.Record(s)
	}
	var e snapshot.Encoder
	r.Snapshot(&e)
	restored := &FCTRecorder{}
	if err := restored.Restore(snapshot.NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Degraded() {
		t.Fatal("exact snapshot restored as degraded")
	}
	if got, want := restored.Samples(), r.Samples(); len(got) != len(want) {
		t.Fatalf("restored %d samples, want %d", len(got), len(want))
	}
	if got, want := restored.Overall(), r.Overall(); got != want {
		t.Errorf("restored stats %+v != original %+v", got, want)
	}
}
