package metrics

import (
	"math"
	"testing"

	"outran/internal/sim"
)

// Edge cases of the fairness index the scheduler sweep never hits:
// empty and single-flow sets, all-equal throughputs, and negative
// inputs (which the index clamps to zero).

func TestJainIndexEmptyFlowSet(t *testing.T) {
	if got := JainIndex(nil); got != 1 {
		t.Fatalf("empty set index %g, want 1", got)
	}
	if got := JainIndex([]float64{}); got != 1 {
		t.Fatalf("empty slice index %g, want 1", got)
	}
}

func TestJainIndexSingleFlow(t *testing.T) {
	if got := JainIndex([]float64{42.5}); got != 1 {
		t.Fatalf("single-flow index %g, want 1", got)
	}
	if got := JainIndex([]float64{0}); got != 1 {
		t.Fatalf("single zero-throughput flow index %g, want 1", got)
	}
}

func TestJainIndexAllEqualThroughputs(t *testing.T) {
	for _, n := range []int{2, 3, 17, 100} {
		v := make([]float64, n)
		for i := range v {
			v[i] = 3.25
		}
		if got := JainIndex(v); math.Abs(got-1) > 1e-12 {
			t.Fatalf("n=%d equal throughputs index %g, want 1", n, got)
		}
	}
}

func TestJainIndexNegativeClamped(t *testing.T) {
	// Negative throughputs are clamped to zero, so {-1, 1} behaves as
	// {0, 1}: one user takes everything -> 1/n.
	got := JainIndex([]float64{-1, 1})
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("clamped index %g, want 0.5", got)
	}
	if got := JainIndex([]float64{-3, -7}); got != 1 {
		t.Fatalf("all-negative (all-clamped) index %g, want 1", got)
	}
}

func TestFloatPercentileEmpty(t *testing.T) {
	if got := FloatPercentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile %g, want 0", got)
	}
}

// recordingObserver captures the TrackerObserver callbacks in order.
type recordingObserver struct {
	samples  []float64 // activeSE values, to check the idle-block marker
	resets   int
	freezes  int
	lastTime sim.Time
}

func (r *recordingObserver) OnSample(now sim.Time, se, fairness, activeSE float64) {
	r.samples = append(r.samples, activeSE)
	r.lastTime = now
}
func (r *recordingObserver) OnReset()  { r.resets++ }
func (r *recordingObserver) OnFreeze() { r.freezes++ }

func TestTrackerObserverMirrorsSamples(t *testing.T) {
	tr := NewCellTracker(18e6)
	tr.SamplePeriod = 5
	tr.RBBandwidthHz = 180e3
	tr.TTISeconds = 0.001
	rec := &recordingObserver{}
	tr.Obs = rec

	now := sim.Time(0)
	tick := func(bits, rbs int) {
		now += sim.Millisecond
		tr.OnTTIUsed(now, bits, rbs, []float64{1, 1})
	}
	for i := 0; i < 6; i++ {
		tick(18000, 10) // first tick anchors; 5 more fold one sample
	}
	if len(rec.samples) != 1 {
		t.Fatalf("observer saw %d samples, tracker folded %d",
			len(rec.samples), len(tr.SpectralEfficiencySamples()))
	}
	if rec.samples[0] < 0 {
		t.Fatal("active block reported the idle marker")
	}
	if rec.lastTime != now {
		t.Fatalf("sample stamped %v, want %v", rec.lastTime, now)
	}
	for i := 0; i < 5; i++ {
		tick(0, 0) // idle block: folds a sample with no active-SE part
	}
	if len(rec.samples) != 2 || rec.samples[1] != -1 {
		t.Fatalf("idle block should report activeSE -1, got %v", rec.samples)
	}
	tr.Freeze()
	if rec.freezes != 1 {
		t.Fatalf("freezes %d, want 1", rec.freezes)
	}
	tr.Reset()
	if rec.resets != 1 {
		t.Fatalf("resets %d, want 1", rec.resets)
	}
	if len(tr.SpectralEfficiencySamples()) != 0 {
		t.Fatal("reset did not clear samples")
	}
}
