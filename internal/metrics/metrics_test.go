package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"outran/internal/sim"
)

func TestClassOf(t *testing.T) {
	cases := []struct {
		size int64
		want SizeClass
	}{
		{1, Short}, {10 * 1024, Short}, {10*1024 + 1, Medium},
		{100 * 1024, Medium}, {100*1024 + 1, Long}, {1 << 30, Long},
	}
	for _, c := range cases {
		if got := ClassOf(c.size); got != c.want {
			t.Errorf("ClassOf(%d) = %v, want %v", c.size, got, c.want)
		}
	}
	if Short.String() != "S" || Medium.String() != "M" || Long.String() != "L" {
		t.Fatal("class names")
	}
}

func TestStatsBasics(t *testing.T) {
	var fcts []sim.Time
	for i := 1; i <= 100; i++ {
		fcts = append(fcts, sim.Time(i)*sim.Millisecond)
	}
	s := ComputeStats(fcts)
	if s.Count != 100 {
		t.Fatalf("count %d", s.Count)
	}
	if s.Mean != sim.Time(50.5*float64(sim.Millisecond)) {
		t.Fatalf("mean %v", s.Mean)
	}
	if s.Max != 100*sim.Millisecond {
		t.Fatalf("max %v", s.Max)
	}
	if s.P50 < 50*sim.Millisecond || s.P50 > 51*sim.Millisecond {
		t.Fatalf("p50 %v", s.P50)
	}
	if s.P99 < 99*sim.Millisecond || s.P99 > 100*sim.Millisecond {
		t.Fatalf("p99 %v", s.P99)
	}
}

func TestStatsEmpty(t *testing.T) {
	if s := ComputeStats(nil); s.Count != 0 || s.Mean != 0 {
		t.Fatal("empty stats not zero")
	}
}

func TestPercentileUnsortedInputNotRequired(t *testing.T) {
	sorted := []sim.Time{10, 20, 30, 40}
	if Percentile(sorted, 0) != 10 || Percentile(sorted, 1) != 40 {
		t.Fatal("extremes wrong")
	}
	if Percentile(sorted, 0.5) != 25 {
		t.Fatalf("median %v", Percentile(sorted, 0.5))
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestRecorderClassFiltering(t *testing.T) {
	var r FCTRecorder
	r.FlowStarted()
	r.FlowStarted()
	r.FlowStarted()
	r.Record(FCTSample{Size: 5 * 1024, FCT: 10 * sim.Millisecond})
	r.Record(FCTSample{Size: 50 * 1024, FCT: 30 * sim.Millisecond})
	r.Record(FCTSample{Size: 5 * 1024 * 1024, FCT: 900 * sim.Millisecond, Incast: true})
	if r.Started() != 3 || r.Completed() != 3 {
		t.Fatal("counters wrong")
	}
	if r.ByClass(Short).Count != 1 || r.ByClass(Medium).Count != 1 || r.ByClass(Long).Count != 1 {
		t.Fatal("class filters wrong")
	}
	if r.Overall().Count != 3 {
		t.Fatal("overall wrong")
	}
	if r.IncastStats().Count != 1 {
		t.Fatal("incast filter wrong")
	}
	if r.NonIncastByClass(Short).Count != 1 || r.NonIncastByClass(Long).Count != 0 {
		t.Fatal("non-incast filter wrong")
	}
}

func TestCDFOutput(t *testing.T) {
	vals, probs := CDF([]sim.Time{30, 10, 20})
	if vals[0] != 10 || vals[2] != 30 {
		t.Fatal("CDF not sorted")
	}
	if probs[2] != 1 || math.Abs(probs[0]-1.0/3) > 1e-9 {
		t.Fatalf("probs %v", probs)
	}
}

func TestJainIndexKnownValues(t *testing.T) {
	if JainIndex([]float64{5, 5, 5, 5}) != 1 {
		t.Fatal("equal allocation should be 1")
	}
	got := JainIndex([]float64{1, 0, 0, 0})
	if math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("single-user index %g, want 0.25", got)
	}
	if JainIndex(nil) != 1 || JainIndex([]float64{0, 0}) != 1 {
		t.Fatal("degenerate cases")
	}
}

// Property: Jain's index always lies in [1/n, 1].
func TestJainIndexBoundsProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		v := make([]float64, len(raw))
		any := false
		for i, x := range raw {
			v[i] = float64(x)
			if x > 0 {
				any = true
			}
		}
		j := JainIndex(v)
		if !any {
			return j == 1
		}
		n := float64(len(v))
		return j >= 1/n-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCellTrackerSampling(t *testing.T) {
	tr := NewCellTracker(18e6)
	tr.SamplePeriod = 10
	now := sim.Time(0)
	for i := 0; i < 36; i++ {
		now += sim.Millisecond
		tr.OnTTI(now, 18000, []float64{1, 1})
	}
	// 35 TTIs at period 10 (first tick anchors the clock) -> 3 samples.
	if len(tr.SpectralEfficiencySamples()) != 3 {
		t.Fatalf("samples %d", len(tr.SpectralEfficiencySamples()))
	}
	// 18000 bits/ms over 18 MHz = 1 bit/s/Hz.
	for _, se := range tr.SpectralEfficiencySamples() {
		if math.Abs(se-1) > 1e-9 {
			t.Fatalf("SE sample %g, want 1", se)
		}
	}
	if tr.MeanFairness() != 1 {
		t.Fatalf("fairness %g", tr.MeanFairness())
	}
	if tr.TotalBits() != 36*18000 {
		t.Fatalf("total bits %d", tr.TotalBits())
	}
}

func TestCellTrackerFreeze(t *testing.T) {
	tr := NewCellTracker(18e6)
	tr.SamplePeriod = 5
	now := sim.Time(0)
	for i := 0; i < 10; i++ {
		now += sim.Millisecond
		tr.OnTTI(now, 1000, nil)
	}
	n := len(tr.SpectralEfficiencySamples())
	tr.Freeze()
	for i := 0; i < 10; i++ {
		now += sim.Millisecond
		tr.OnTTI(now, 1000, nil)
	}
	if len(tr.SpectralEfficiencySamples()) != n {
		t.Fatal("tracker accumulated after freeze")
	}
}

func TestDelayTracker(t *testing.T) {
	var d DelayTracker
	d.Record(10*sim.Millisecond, true)
	d.Record(30*sim.Millisecond, false)
	if d.Mean() != 20*sim.Millisecond {
		t.Fatalf("mean %v", d.Mean())
	}
	if d.MeanShort() != 10*sim.Millisecond {
		t.Fatalf("short mean %v", d.MeanShort())
	}
	if d.Count() != 2 {
		t.Fatal("count")
	}
	var empty DelayTracker
	if empty.Mean() != 0 || empty.MeanShort() != 0 {
		t.Fatal("empty tracker")
	}
}

func TestFloatPercentile(t *testing.T) {
	v := []float64{3, 1, 2}
	if FloatPercentile(v, 0) != 1 || FloatPercentile(v, 1) != 3 || FloatPercentile(v, 0.5) != 2 {
		t.Fatal("float percentile wrong")
	}
	if FloatPercentile(nil, 0.5) != 0 {
		t.Fatal("empty input")
	}
	// Input must not be mutated.
	if v[0] != 3 {
		t.Fatal("input mutated")
	}
}

func TestMeanFloat(t *testing.T) {
	if MeanFloat([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if MeanFloat(nil) != 0 {
		t.Fatal("empty mean")
	}
}
