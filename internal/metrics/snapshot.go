package metrics

import (
	"fmt"

	"outran/internal/sim"
	"outran/internal/snapshot"
)

// Structural sentinels for the metrics snapshot walk.
const (
	tagTracker = 0x4e01
	tagFCT     = 0x4e02
	tagDelay   = 0x4e03
)

// errRestoreDirty flags a restore into an accumulator that has
// already collected samples — the restore path always rebuilds
// metrics objects fresh, so prior state means a wiring bug.
var errRestoreDirty = fmt.Errorf("metrics: restore target not freshly constructed")

// Snapshot encodes the tracker's complete accumulation state: block
// clock, running totals, and every folded sample series. Config
// fields (BandwidthHz, SamplePeriod, RBBandwidthHz, TTISeconds) and
// the observer hook are re-established at construction and excluded.
func (c *CellTracker) Snapshot(e *snapshot.Encoder) {
	e.Mark(tagTracker)
	e.Int(c.ttiCount)
	e.I64(c.bitsThisBlock)
	e.I64(c.rbsThisBlock)
	e.I64(int64(c.blockStart))
	e.I64(c.totalBits)
	putF64s(e, c.seSamples)
	putF64s(e, c.activeSamples)
	putF64s(e, c.fairSamples)
	putF64s(e, c.fairSums)
	putF64s(e, c.fairSumSqs)
	putF64s(e, c.fairNs)
	e.U32(uint32(len(c.seTimes)))
	for _, t := range c.seTimes {
		e.I64(int64(t))
	}
	e.Bool(c.frozen)
	e.Bool(c.started)
}

// Restore overlays a snapshot onto a freshly built tracker.
func (c *CellTracker) Restore(d *snapshot.Decoder) error {
	if c.started || len(c.seSamples) != 0 || c.totalBits != 0 {
		return fmt.Errorf("restoring cell tracker: %w", errRestoreDirty)
	}
	d.Expect(tagTracker)
	c.ttiCount = d.Int()
	c.bitsThisBlock = d.I64()
	c.rbsThisBlock = d.I64()
	c.blockStart = sim.Time(d.I64())
	c.totalBits = d.I64()
	c.seSamples = getF64s(d)
	c.activeSamples = getF64s(d)
	c.fairSamples = getF64s(d)
	c.fairSums = getF64s(d)
	c.fairSumSqs = getF64s(d)
	c.fairNs = getF64s(d)
	n := d.Count(1 << 28)
	for i := 0; i < n && d.Err() == nil; i++ {
		c.seTimes = append(c.seTimes, sim.Time(d.I64()))
	}
	c.frozen = d.Bool()
	c.started = d.Bool()
	if err := d.Err(); err != nil {
		return fmt.Errorf("restoring cell tracker: %w", err)
	}
	return nil
}

// Snapshot encodes the recorder's mode and degradation flags, then
// either every completed-flow sample (exact path) or the six
// streaming histograms, plus the started count.
func (r *FCTRecorder) Snapshot(e *snapshot.Encoder) {
	e.Mark(tagFCT)
	e.Bool(r.stream != nil)
	e.Bool(r.degraded)
	if r.stream != nil {
		r.stream.Snapshot(e)
		e.Int(r.started)
		return
	}
	e.U32(uint32(len(r.samples)))
	for _, s := range r.samples {
		e.I64(s.Size)
		e.I64(int64(s.FCT))
		e.Int(s.UE)
		e.Bool(s.Incast)
	}
	e.Int(r.started)
}

// Restore overlays a snapshot onto a freshly built recorder. The
// snapshot's mode must match the recorder's — the construction path
// (config-driven) decides the mode, never the checkpoint — with one
// exception: a snapshot taken after a cap degrade (streaming +
// degraded) restores onto an exact-constructed recorder by replaying
// the degrade first, so a resumed run continues exactly where the
// crashed one left off.
func (r *FCTRecorder) Restore(d *snapshot.Decoder) error {
	if len(r.samples) != 0 || r.started != 0 || (r.stream != nil && r.stream.Completed() != 0) {
		return fmt.Errorf("restoring fct recorder: %w", errRestoreDirty)
	}
	d.Expect(tagFCT)
	streaming := d.Bool()
	degraded := d.Bool()
	if d.Err() == nil && degraded && r.stream == nil {
		r.degrade()
	}
	if d.Err() == nil && streaming != (r.stream != nil) {
		return fmt.Errorf("%w: fct recorder mode mismatch: snapshot streaming=%v, target streaming=%v",
			snapshot.ErrCorrupt, streaming, r.stream != nil)
	}
	if streaming {
		r.degraded = degraded
		if err := r.stream.Restore(d); err != nil {
			return fmt.Errorf("restoring fct recorder: %w", err)
		}
		r.started = d.Int()
		if err := d.Err(); err != nil {
			return fmt.Errorf("restoring fct recorder: %w", err)
		}
		return nil
	}
	n := d.Count(1 << 28)
	for i := 0; i < n && d.Err() == nil; i++ {
		var s FCTSample
		s.Size = d.I64()
		s.FCT = sim.Time(d.I64())
		s.UE = d.Int()
		s.Incast = d.Bool()
		r.samples = append(r.samples, s)
	}
	r.started = d.Int()
	if err := d.Err(); err != nil {
		return fmt.Errorf("restoring fct recorder: %w", err)
	}
	return nil
}

// Snapshot encodes the delay accumulators.
func (d *DelayTracker) Snapshot(e *snapshot.Encoder) {
	e.Mark(tagDelay)
	e.I64(int64(d.sum))
	e.Int(d.count)
	e.I64(int64(d.sumS))
	e.Int(d.cntS)
}

// Restore overlays a snapshot onto a freshly built tracker.
func (d *DelayTracker) Restore(dec *snapshot.Decoder) error {
	if d.count != 0 || d.sum != 0 {
		return fmt.Errorf("restoring delay tracker: %w", errRestoreDirty)
	}
	dec.Expect(tagDelay)
	d.sum = sim.Time(dec.I64())
	d.count = dec.Int()
	d.sumS = sim.Time(dec.I64())
	d.cntS = dec.Int()
	if err := dec.Err(); err != nil {
		return fmt.Errorf("restoring delay tracker: %w", err)
	}
	return nil
}

func putF64s(e *snapshot.Encoder, v []float64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.F64(x)
	}
}

func getF64s(d *snapshot.Decoder) []float64 {
	n := d.Count(1 << 28)
	if n == 0 || d.Err() != nil {
		return nil
	}
	out := make([]float64, 0, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		out = append(out, d.F64())
	}
	return out
}
