package metrics

import (
	"math"

	"outran/internal/sim"
)

// JainIndex computes Jain's fairness index (eq. 3 of the paper) over
// per-user long-term average throughputs. It is 1 for a perfectly
// equal allocation and 1/n when one user takes everything. Users with
// zero throughput are included, as in the paper's definition.
func JainIndex(tputs []float64) float64 {
	n := len(tputs)
	if n == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, t := range tputs {
		if t < 0 {
			t = 0
		}
		sum += t
		sumSq += t * t
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

// TrackerObserver mirrors a CellTracker's sample folds and window
// boundaries to an external consumer — the tracing layer records them
// as se_sample / tracker_reset / tracker_freeze events so end-of-run
// aggregates can be reproduced from a trace alone. activeSE is < 0
// when the block carried no data on any RB (no active sample folded).
type TrackerObserver interface {
	OnSample(now sim.Time, se, fairness, activeSE float64)
	OnReset()
	OnFreeze()
}

// CellTracker samples spectral efficiency and fairness every
// SamplePeriod TTIs (the paper uses 50) and accumulates the time
// series for the CDF/timeseries figures.
type CellTracker struct {
	BandwidthHz  float64
	SamplePeriod int // TTIs per sample

	// Obs, when set, observes every sample fold and window boundary.
	Obs TrackerObserver

	ttiCount      int
	bitsThisBlock int64
	rbsThisBlock  int64 // RB-TTIs actually carrying data this block
	blockStart    sim.Time
	totalBits     int64

	// RBBandwidthHz and TTISeconds convert used RB-TTIs to
	// resource-seconds for the active-SE metric; set by the cell.
	RBBandwidthHz float64
	TTISeconds    float64

	seSamples     []float64
	activeSamples []float64
	fairSamples   []float64
	// Per-block raw moments of the user-throughput vector behind each
	// fairness sample (negative tputs clamped to 0, as in JainIndex).
	// A deployment aggregates cells by summing these per block and
	// recomputing Jain over the union — mean-of-per-cell-indices is
	// not the fairness of the combined user population.
	fairSums   []float64
	fairSumSqs []float64
	fairNs     []float64
	seTimes    []sim.Time
	frozen     bool
	started    bool
}

// Freeze stops sample accumulation; used to measure over the loaded
// window only, excluding the drain tail of a run.
func (c *CellTracker) Freeze() {
	c.frozen = true
	if c.Obs != nil {
		c.Obs.OnFreeze()
	}
}

// Reset discards everything accumulated so far and resumes sampling —
// used to cut the warmup transient out of the measurement window.
func (c *CellTracker) Reset() {
	c.frozen = false
	c.started = false
	c.ttiCount = 0
	c.bitsThisBlock = 0
	c.rbsThisBlock = 0
	c.totalBits = 0
	c.seSamples = nil
	c.activeSamples = nil
	c.fairSamples = nil
	c.fairSums = nil
	c.fairSumSqs = nil
	c.fairNs = nil
	c.seTimes = nil
	if c.Obs != nil {
		c.Obs.OnReset()
	}
}

// NewCellTracker builds a tracker for a cell of the given bandwidth.
func NewCellTracker(bandwidthHz float64) *CellTracker {
	return &CellTracker{BandwidthHz: bandwidthHz, SamplePeriod: 50}
}

// OnTTI records one TTI's delivered bits and the users' served-bits
// vector; every SamplePeriod TTIs it folds a sample.
func (c *CellTracker) OnTTI(now sim.Time, servedBits int, userTputs []float64) {
	c.OnTTIUsed(now, servedBits, 0, userTputs)
}

// OnTTIUsed additionally records the number of RBs that carried data
// this TTI, enabling the active-resource spectral efficiency metric
// (bits per used RB-second-Hz) that is insensitive to how much
// backlog a scheduler defers past the measurement window.
func (c *CellTracker) OnTTIUsed(now sim.Time, servedBits, usedRBs int, userTputs []float64) {
	if c.frozen {
		return
	}
	if !c.started {
		// The first tick anchors the block clock; its bits are counted
		// from the next full block (the exact duration before it is
		// unknowable).
		c.started = true
		c.blockStart = now
		c.totalBits += int64(servedBits)
		return
	}
	c.bitsThisBlock += int64(servedBits)
	c.rbsThisBlock += int64(usedRBs)
	c.totalBits += int64(servedBits)
	c.ttiCount++
	if c.ttiCount >= c.SamplePeriod {
		dur := (now - c.blockStart).Seconds()
		if dur > 0 {
			se := float64(c.bitsThisBlock) / dur / c.BandwidthHz
			// Jain's index computed from raw moments (identical
			// arithmetic to JainIndex) so the moments can also be
			// retained for cross-cell aggregation.
			var fsum, fsumSq float64
			for _, t := range userTputs {
				if t < 0 {
					t = 0
				}
				fsum += t
				fsumSq += t * t
			}
			fair := 1.0
			if fsumSq != 0 {
				fair = fsum * fsum / (float64(len(userTputs)) * fsumSq)
			}
			c.seSamples = append(c.seSamples, se)
			c.seTimes = append(c.seTimes, now)
			c.fairSamples = append(c.fairSamples, fair)
			c.fairSums = append(c.fairSums, fsum)
			c.fairSumSqs = append(c.fairSumSqs, fsumSq)
			c.fairNs = append(c.fairNs, float64(len(userTputs)))
			activeSE := -1.0
			if c.rbsThisBlock > 0 && c.RBBandwidthHz > 0 && c.TTISeconds > 0 {
				resourceSecHz := float64(c.rbsThisBlock) * c.RBBandwidthHz * c.TTISeconds
				activeSE = float64(c.bitsThisBlock) / resourceSecHz
				c.activeSamples = append(c.activeSamples, activeSE)
			}
			if c.Obs != nil {
				c.Obs.OnSample(now, se, fair, activeSE)
			}
		}
		c.ttiCount = 0
		c.bitsThisBlock = 0
		c.rbsThisBlock = 0
		c.blockStart = now
	}
}

// SpectralEfficiencySamples returns the per-block SE series (bit/s/Hz).
func (c *CellTracker) SpectralEfficiencySamples() []float64 { return c.seSamples }

// ActiveSESamples returns the per-block active-resource SE series
// (bits per used RB-second-Hz).
func (c *CellTracker) ActiveSESamples() []float64 { return c.activeSamples }

// MeanActiveSE returns the average active-resource SE.
func (c *CellTracker) MeanActiveSE() float64 { return mean(c.activeSamples) }

// FairnessSamples returns the per-block Jain index series.
func (c *CellTracker) FairnessSamples() []float64 { return c.fairSamples }

// FairnessMoments returns the per-block raw moments behind the
// fairness series: per-user throughput sum, sum of squares, and user
// count for each sampled block. Deployment roll-ups sum these across
// cells block-by-block and recompute Jain over the merged population.
func (c *CellTracker) FairnessMoments() (sums, sumSqs, ns []float64) {
	return c.fairSums, c.fairSumSqs, c.fairNs
}

// SampleTimes returns the sample timestamps.
func (c *CellTracker) SampleTimes() []sim.Time { return c.seTimes }

// MeanSpectralEfficiency returns the average over all samples.
func (c *CellTracker) MeanSpectralEfficiency() float64 { return mean(c.seSamples) }

// MeanFairness returns the average Jain index over all samples.
func (c *CellTracker) MeanFairness() float64 { return mean(c.fairSamples) }

// TotalBits returns cumulative delivered bits.
func (c *CellTracker) TotalBits() int64 { return c.totalBits }

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// MeanFloat is the exported mean helper used by the experiment
// harnesses.
func MeanFloat(v []float64) float64 { return mean(v) }

// FloatPercentile returns the p-quantile of an unsorted float slice.
func FloatPercentile(v []float64, p float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	for i := 1; i < len(s); i++ { // insertion sort; series are short
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	idx := p * float64(len(s)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return s[lo]
	}
	frac := idx - float64(lo)
	return s[lo] + frac*(s[hi]-s[lo])
}

// DelayTracker accumulates queueing delays (time from xNodeB ingress
// to first transmission) for the Fig 17 queue-delay columns.
type DelayTracker struct {
	sum   sim.Time
	count int
	sumS  sim.Time // short-flow packets only
	cntS  int
}

// Record adds one packet's queueing delay; short marks packets of
// short flows.
func (d *DelayTracker) Record(delay sim.Time, short bool) {
	d.sum += delay
	d.count++
	if short {
		d.sumS += delay
		d.cntS++
	}
}

// Mean returns the average queueing delay.
func (d *DelayTracker) Mean() sim.Time {
	if d.count == 0 {
		return 0
	}
	return d.sum / sim.Time(d.count)
}

// MeanShort returns the average over short-flow packets.
func (d *DelayTracker) MeanShort() sim.Time {
	if d.cntS == 0 {
		return 0
	}
	return d.sumS / sim.Time(d.cntS)
}

// Count returns recorded packets.
func (d *DelayTracker) Count() int { return d.count }
