package metrics

import (
	"math"
	"math/rand"
	"testing"

	"outran/internal/sim"
	"outran/internal/snapshot"
)

// paperSamples draws a deterministic flow population shaped like the
// paper's workload mix: mostly short flows with fast completions, a
// medium band, and a heavy long-flow tail, with a sprinkling of
// incast-marked completions.
func paperSamples(n int, seed int64) []FCTSample {
	r := rand.New(rand.NewSource(seed))
	out := make([]FCTSample, 0, n)
	for i := 0; i < n; i++ {
		var size int64
		var fct float64
		switch p := r.Float64(); {
		case p < 0.6: // short: ≤10 KB, a few ms
			size = 1 + r.Int63n(ShortMax)
			fct = 2e6 * math.Exp(r.Float64()*2.5)
		case p < 0.9: // medium: 10–100 KB, tens of ms
			size = ShortMax + 1 + r.Int63n(MediumMax-ShortMax)
			fct = 20e6 * math.Exp(r.Float64()*2)
		default: // long: >100 KB, up to tens of seconds
			size = MediumMax + 1 + r.Int63n(10<<20)
			fct = 200e6 * math.Exp(r.Float64()*3)
		}
		out = append(out, FCTSample{
			Size:   size,
			FCT:    sim.Time(fct),
			UE:     i % 16,
			Incast: r.Float64() < 0.1,
		})
	}
	return out
}

func relErr(got, want sim.Time) float64 {
	if want == 0 {
		return 0
	}
	return math.Abs(float64(got-want)) / float64(want)
}

// TestStreamMatchesExact is the accuracy gate for the streaming FCT
// path: on a paper-shaped flow population, every Stats view's p50/p99
// must land within 5% of the exact per-sample estimator, with count
// and max exact and the mean within float tolerance.
func TestStreamMatchesExact(t *testing.T) {
	exact := &FCTRecorder{}
	stream := NewStreamingFCTRecorder()
	for _, s := range paperSamples(20000, 3) {
		exact.Record(s)
		stream.Record(s)
	}
	if exact.Completed() != stream.Completed() {
		t.Fatalf("completed: exact %d stream %d", exact.Completed(), stream.Completed())
	}
	if stream.Samples() != nil {
		t.Fatal("streaming recorder retained per-flow samples")
	}
	type view struct {
		name string
		a, b Stats
	}
	views := []view{
		{"overall", exact.Overall(), stream.Stream().Overall()},
		{"short", exact.ByClass(Short), stream.Stream().ByClass(Short)},
		{"medium", exact.ByClass(Medium), stream.Stream().ByClass(Medium)},
		{"long", exact.ByClass(Long), stream.Stream().ByClass(Long)},
		{"incast", exact.IncastStats(), stream.Stream().IncastStats()},
	}
	for _, v := range views {
		if v.a.Count != v.b.Count {
			t.Errorf("%s: count exact %d stream %d", v.name, v.a.Count, v.b.Count)
		}
		if v.a.Max != v.b.Max {
			t.Errorf("%s: max exact %v stream %v", v.name, v.a.Max, v.b.Max)
		}
		if e := relErr(v.b.Mean, v.a.Mean); e > 1e-9 {
			t.Errorf("%s: mean exact %v stream %v (rel %g)", v.name, v.a.Mean, v.b.Mean, e)
		}
		for _, q := range []struct {
			name    string
			ex, str sim.Time
		}{
			{"p50", v.a.P50, v.b.P50},
			{"p95", v.a.P95, v.b.P95},
			{"p99", v.a.P99, v.b.P99},
		} {
			if e := relErr(q.str, q.ex); e > 0.05 {
				t.Errorf("%s %s: exact %v stream %v (rel err %.4f > 0.05)",
					v.name, q.name, q.ex, q.str, e)
			}
		}
	}
}

// TestStreamMergeMatchesUnion: merging two cells' streams must answer
// like a single stream that saw both populations.
func TestStreamMergeMatchesUnion(t *testing.T) {
	a, b, union := NewFCTStream(), NewFCTStream(), NewFCTStream()
	for _, s := range paperSamples(3000, 5) {
		a.Record(s)
		union.Record(s)
	}
	for _, s := range paperSamples(2000, 6) {
		b.Record(s)
		union.Record(s)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got, want := a.Overall(), union.Overall()
	if got.Count != want.Count || got.Max != want.Max || got.P50 != want.P50 || got.P99 != want.P99 {
		t.Errorf("merged stats differ from union:\n  merged %+v\n  union  %+v", got, want)
	}
}

// TestStreamSnapshotRoundTrip: a restored stream must answer every
// query identically — the checkpoint path depends on it.
func TestStreamSnapshotRoundTrip(t *testing.T) {
	s := NewFCTStream()
	for _, smp := range paperSamples(1500, 9) {
		s.Record(smp)
	}
	var e snapshot.Encoder
	s.Snapshot(&e)
	r := NewFCTStream()
	d := snapshot.NewDecoder(e.Bytes())
	if err := r.Restore(d); err != nil {
		t.Fatal(err)
	}
	if got, want := r.Overall(), s.Overall(); got != want {
		t.Errorf("restored stats %+v != original %+v", got, want)
	}
	if r.Completed() != s.Completed() {
		t.Errorf("restored count %d != %d", r.Completed(), s.Completed())
	}
}

// TestExactRecorderUnchanged: the zero-value recorder still retains
// samples — the streaming path is opt-in.
func TestExactRecorderUnchanged(t *testing.T) {
	r := &FCTRecorder{}
	r.Record(FCTSample{Size: 100, FCT: sim.Millisecond})
	if len(r.Samples()) != 1 {
		t.Fatalf("exact recorder retained %d samples, want 1", len(r.Samples()))
	}
	if r.Stream() != nil {
		t.Fatal("exact recorder reports a stream")
	}
}
