// Package metrics collects the evaluation metrics of the paper: flow
// completion times bucketed by size class, Jain's fairness index over
// the users' long-term throughput (eq. 3), spectral efficiency
// sampled every 50 TTIs, and queueing delay.
package metrics

import (
	"math"
	"sort"

	"outran/internal/sim"
)

// Size-class boundaries used throughout the paper's evaluation:
// short (0,10 KB], medium (10 KB, 0.1 MB], long (0.1 MB, inf).
const (
	ShortMax  = 10 * 1024
	MediumMax = 100 * 1024
)

// SizeClass buckets a flow by its size.
type SizeClass int

// Size classes.
const (
	Short SizeClass = iota
	Medium
	Long
)

func (c SizeClass) String() string {
	switch c {
	case Short:
		return "S"
	case Medium:
		return "M"
	case Long:
		return "L"
	}
	return "?"
}

// ClassOf returns the size class of a flow.
func ClassOf(size int64) SizeClass {
	switch {
	case size <= ShortMax:
		return Short
	case size <= MediumMax:
		return Medium
	default:
		return Long
	}
}

// FCTSample records one completed flow.
type FCTSample struct {
	Size   int64
	FCT    sim.Time
	UE     int
	Incast bool
}

// DefaultExactCap bounds the exact recorder's retained samples. An
// FCTSample is 32 bytes, so the default caps per-flow retention at
// ~32 MB per recorder; past it the recorder auto-degrades to the
// streaming path (see Record) instead of growing without bound.
const DefaultExactCap = 1 << 20

// FCTRecorder accumulates flow completion times. The zero value is
// the exact recorder, retaining every sample up to a hard cap;
// NewStreamingFCTRecorder builds the bounded-memory variant that
// counts completions into fixed-layout histograms instead (see
// FCTStream).
type FCTRecorder struct {
	samples  []FCTSample
	started  int
	limit    int        // retained-sample cap; 0 = DefaultExactCap, < 0 = unbounded
	degraded bool       // exact path hit its cap and fell back to streaming
	stream   *FCTStream // non-nil selects the streaming path
}

// NewStreamingFCTRecorder returns a recorder on the bounded-memory
// streaming path: no per-flow retention, quantiles interpolated from
// exponential histograms within ~4.4% of the exact estimator.
func NewStreamingFCTRecorder() *FCTRecorder {
	return &FCTRecorder{stream: NewFCTStream()}
}

// FlowStarted counts an admitted flow (for completion-rate checks).
func (r *FCTRecorder) FlowStarted() { r.started++ }

// SetExactCap overrides the exact path's retained-sample cap: n > 0
// caps retention at n samples, n < 0 removes the cap (explicit
// opt-out for tooling that must see every sample), n = 0 restores
// DefaultExactCap. No effect on the streaming path.
func (r *FCTRecorder) SetExactCap(n int) { r.limit = n }

// exactCap resolves the effective retained-sample cap (< 0 means
// unbounded).
func (r *FCTRecorder) exactCap() int {
	if r.limit == 0 {
		return DefaultExactCap
	}
	return r.limit
}

// Record adds a completed flow. On the exact path, hitting the
// retained-sample cap degrades the recorder to the streaming path —
// every retained sample is folded into a fresh FCTStream, retention
// stops, and Degraded() reports the fallback so callers can surface
// it — rather than letting a metro-scale run grow memory without
// bound.
func (r *FCTRecorder) Record(s FCTSample) {
	if r.stream == nil {
		if lim := r.exactCap(); lim > 0 && len(r.samples) >= lim {
			r.degrade()
		}
	}
	if r.stream != nil {
		r.stream.Record(s)
		return
	}
	r.samples = append(r.samples, s)
}

// degrade folds the retained samples into a streaming accumulator and
// switches the recorder to the streaming path. Deterministic: it
// triggers on sample count alone, so same-seed runs degrade at the
// same completion.
func (r *FCTRecorder) degrade() {
	s := NewFCTStream()
	for _, sample := range r.samples {
		s.Record(sample)
	}
	r.samples = nil
	r.stream = s
	r.degraded = true
}

// Degraded reports whether the exact path hit its cap and fell back
// to streaming accumulation.
func (r *FCTRecorder) Degraded() bool { return r.degraded }

// Started returns the number of started flows.
func (r *FCTRecorder) Started() int { return r.started }

// Completed returns the number of completed flows.
func (r *FCTRecorder) Completed() int {
	if r.stream != nil {
		return r.stream.Completed()
	}
	return len(r.samples)
}

// Samples returns the raw samples. The streaming path retains none
// and returns nil — callers needing per-flow records must use the
// exact recorder.
func (r *FCTRecorder) Samples() []FCTSample { return r.samples }

// Stream returns the streaming accumulator, nil on the exact path.
func (r *FCTRecorder) Stream() *FCTStream { return r.stream }

// fctsOf filters by class; class < 0 selects everything.
func (r *FCTRecorder) fctsOf(class SizeClass, incastOnly bool) []sim.Time {
	out := make([]sim.Time, 0, len(r.samples))
	for _, s := range r.samples {
		if class >= 0 && ClassOf(s.Size) != class {
			continue
		}
		if incastOnly && !s.Incast {
			continue
		}
		out = append(out, s.FCT)
	}
	return out
}

// Stats summarises a set of FCTs. The JSON field names are part of the
// run-summary schema (see RunSummary) shared by outran-bench,
// outran-chaos and the trace tooling.
type Stats struct {
	Count int      `json:"count"`
	Mean  sim.Time `json:"mean_ns"`
	P50   sim.Time `json:"p50_ns"`
	P95   sim.Time `json:"p95_ns"`
	P99   sim.Time `json:"p99_ns"`
	Max   sim.Time `json:"max_ns"`
}

// ComputeStats summarises durations (empty input gives zeros).
func ComputeStats(fcts []sim.Time) Stats {
	if len(fcts) == 0 {
		return Stats{}
	}
	sorted := append([]sim.Time(nil), fcts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum sim.Time
	for _, v := range sorted {
		sum += v
	}
	return Stats{
		Count: len(sorted),
		Mean:  sum / sim.Time(len(sorted)),
		P50:   Percentile(sorted, 0.50),
		P95:   Percentile(sorted, 0.95),
		P99:   Percentile(sorted, 0.99),
		Max:   sorted[len(sorted)-1],
	}
}

// Percentile returns the p-quantile of an ascending slice.
func Percentile(sorted []sim.Time, p float64) sim.Time {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := p * float64(len(sorted)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return sorted[lo]
	}
	frac := idx - float64(lo)
	return sorted[lo] + sim.Time(frac*float64(sorted[hi]-sorted[lo]))
}

// Overall returns stats over all completed flows.
func (r *FCTRecorder) Overall() Stats {
	if r.stream != nil {
		return r.stream.Overall()
	}
	return ComputeStats(r.fctsOf(-1, false))
}

// ByClass returns stats for one size class.
func (r *FCTRecorder) ByClass(c SizeClass) Stats {
	if r.stream != nil {
		return r.stream.ByClass(c)
	}
	return ComputeStats(r.fctsOf(c, false))
}

// IncastStats returns stats over incast-marked flows only.
func (r *FCTRecorder) IncastStats() Stats {
	if r.stream != nil {
		return r.stream.IncastStats()
	}
	return ComputeStats(r.fctsOf(-1, true))
}

// NonIncastByClass returns stats for one class excluding incast flows.
func (r *FCTRecorder) NonIncastByClass(c SizeClass) Stats {
	if r.stream != nil {
		return r.stream.NonIncastByClass(c)
	}
	out := make([]sim.Time, 0, len(r.samples))
	for _, s := range r.samples {
		if !s.Incast && ClassOf(s.Size) == c {
			out = append(out, s.FCT)
		}
	}
	return ComputeStats(out)
}

// CDF returns (value, cumulative probability) pairs for plotting.
func CDF(fcts []sim.Time) (values []sim.Time, probs []float64) {
	sorted := append([]sim.Time(nil), fcts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	probs = make([]float64, len(sorted))
	for i := range sorted {
		probs[i] = float64(i+1) / float64(len(sorted))
	}
	return sorted, probs
}
