package metrics

import "outran/internal/sim"

// RunCounters is the end-of-run counter schema of one cell run. It
// used to live as ran.Stats (which is now an alias of this type); the
// move consolidates the two Stats structs behind one JSON-exportable
// schema so traces, summaries and the chaos/bench tooling share field
// names.
type RunCounters struct {
	BufferDrops       int      `json:"buffer_drops"`
	BufferEvictions   int      `json:"buffer_evictions"`
	DecipherFailures  uint64   `json:"decipher_failures"`
	ReassemblyDrops   uint64   `json:"reassembly_drops"`
	HARQFailures      uint64   `json:"harq_failures"`
	AMAbandoned       uint64   `json:"am_abandoned"`
	AMRetxBytes       uint64   `json:"am_retx_bytes"`
	MeanSRTT          sim.Time `json:"mean_srtt_ns"`
	FlowsStarted      int      `json:"flows_started"`
	FlowsCompleted    int      `json:"flows_completed"`
	TTIs              uint64   `json:"ttis"`
	MeanSpectralEff   float64  `json:"mean_spectral_eff"`
	MeanFairnessIndex float64  `json:"mean_fairness_index"`

	// Fault-related counters (zero outside chaos runs).
	AMDeliveryFailures uint64 `json:"am_delivery_failures"` // AM PDUs abandoned past maxRetx, via callback
	HARQFeedbackErrors uint64 `json:"harq_feedback_errors"` // injected ACK<->NACK flips
	BackhaulDrops      uint64 `json:"backhaul_drops"`       // packets dropped on the CN->PDCP path
	Reestablishments   uint64 `json:"reestablishments"`     // RRC re-establishments performed
}

// RunSummary is the complete JSON-exportable summary of one run: the
// configuration line, the counter schema, and the FCT distribution per
// size class. outran-sim -json and outran-chaos -json emit it; the
// decision-audit tooling cross-checks trace-derived aggregates against
// it.
type RunSummary struct {
	Scheduler string `json:"scheduler"`
	RLC       string `json:"rlc"`
	UEs       int    `json:"ues"`
	RBs       int    `json:"rbs"`
	Seed      uint64 `json:"seed"`

	Counters RunCounters `json:"counters"`

	FCTOverall Stats `json:"fct_overall"`
	FCTShort   Stats `json:"fct_short"`
	FCTMedium  Stats `json:"fct_medium"`
	FCTLong    Stats `json:"fct_long"`

	DelayMean  sim.Time `json:"queue_delay_mean_ns"`
	DelayShort sim.Time `json:"queue_delay_short_ns"`

	// Metrics is the flattened obs.Registry export (counters, gauges,
	// histogram buckets) keyed by instrument name.
	Metrics map[string]float64 `json:"metrics,omitempty"`

	// Phases is the sub-TTI phase profile (mean wall ns/TTI per phase),
	// present only when the run enabled the phase profiler. Wall-clock
	// derived and therefore nondeterministic — it is deliberately kept
	// out of Metrics so byte-compared outputs never include it.
	Phases map[string]float64 `json:"phases,omitempty"`
}
