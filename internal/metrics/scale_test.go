package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// TestStreamMergeManyCells is the deployment-scale property test for
// FCTStream.Merge: folding 128 per-cell streams into an aggregate in
// cell order must (a) answer exactly like one union stream that saw
// every completion — merge is lossless count addition over a shared
// layout — and (b) stay within the documented ~4.4% relative quantile
// error of the exact per-sample estimator.
func TestStreamMergeManyCells(t *testing.T) {
	const cells = 128
	exact := &FCTRecorder{}
	exact.SetExactCap(-1)
	union := NewFCTStream()
	agg := NewFCTStream()
	for cell := 0; cell < cells; cell++ {
		// Heterogeneous cells: population size and mix vary by seed.
		s := NewFCTStream()
		for _, smp := range paperSamples(50+cell*3, int64(1000+cell)) {
			s.Record(smp)
			union.Record(smp)
			exact.Record(smp)
		}
		if err := agg.Merge(s); err != nil {
			t.Fatalf("cell %d: %v", cell, err)
		}
	}

	views := []struct {
		name        string
		agg, un, ex Stats
	}{
		{"overall", agg.Overall(), union.Overall(), exact.Overall()},
		{"short", agg.ByClass(Short), union.ByClass(Short), exact.ByClass(Short)},
		{"medium", agg.ByClass(Medium), union.ByClass(Medium), exact.ByClass(Medium)},
		{"long", agg.ByClass(Long), union.ByClass(Long), exact.ByClass(Long)},
		{"incast", agg.IncastStats(), union.IncastStats(), exact.IncastStats()},
	}
	for _, v := range views {
		// (a) merged-in-cell-order == union, bit for bit.
		if v.agg != v.un {
			t.Errorf("%s: merged %+v != union %+v", v.name, v.agg, v.un)
		}
		// (b) merged vs exact: quantiles within the bucket-geometry
		// bound (2^(1/16) growth → ≤ ~4.43% from a bucket edge; the
		// repo-wide budget is 5%).
		for _, q := range []struct {
			name     string
			got, ref float64
		}{
			{"p50", float64(v.agg.P50), float64(v.ex.P50)},
			{"p95", float64(v.agg.P95), float64(v.ex.P95)},
			{"p99", float64(v.agg.P99), float64(v.ex.P99)},
		} {
			if q.ref == 0 {
				continue
			}
			if e := math.Abs(q.got-q.ref) / q.ref; e > 0.05 {
				t.Errorf("%s %s: merged %g exact %g (rel err %.4f > 0.05)",
					v.name, q.name, q.got, q.ref, e)
			}
		}
		if v.agg.Count != v.ex.Count || v.agg.Max != v.ex.Max {
			t.Errorf("%s: merged count/max %+v vs exact %+v", v.name, v.agg, v.ex)
		}
	}
}

// TestFairnessMomentRollupManyCells: Jain's index over a deployment
// is recomputed from summed per-cell raw moments (Σtput, Σtput², n)
// block by block — the deploy package's aggregation rule. Against 100+
// cells' worth of synthetic throughput vectors, the moment roll-up
// must match JainIndex over the concatenated user population to float
// precision, and must NOT match the mean of per-cell indices (the
// naive aggregation this rule exists to avoid).
func TestFairnessMomentRollupManyCells(t *testing.T) {
	const cells = 120
	r := rand.New(rand.NewSource(42))
	var sum, sumSq, n float64
	var allTputs []float64
	var perCell []float64
	for cell := 0; cell < cells; cell++ {
		users := 4 + r.Intn(12)
		tputs := make([]float64, users)
		scale := math.Exp(r.Float64() * 3) // cells differ in load
		for u := range tputs {
			tputs[u] = scale * r.Float64()
		}
		var s, q float64
		for _, tp := range tputs {
			s += tp
			q += tp * tp
		}
		sum += s
		sumSq += q
		n += float64(users)
		allTputs = append(allTputs, tputs...)
		perCell = append(perCell, JainIndex(tputs))
	}

	merged := sum * sum / (n * sumSq)
	want := JainIndex(allTputs)
	if e := math.Abs(merged-want) / want; e > 1e-12 {
		t.Fatalf("moment roll-up %.15f != union Jain %.15f (rel %g)", merged, want, e)
	}
	naive := MeanFloat(perCell)
	if math.Abs(naive-want) < 1e-3 {
		t.Fatalf("test population too homogeneous: naive mean-of-indices %.6f ≈ union %.6f", naive, want)
	}
}
