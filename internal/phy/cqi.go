package phy

import "math"

// CQI is the 4-bit Channel Quality Indicator a UE reports (0..15).
// 0 means out of range; 1..15 index the efficiency table.
type CQI int

// MaxCQI is the highest reportable CQI.
const MaxCQI CQI = 15

// cqiEfficiency is the 3GPP 36.213 Table 7.2.3-1 spectral efficiency
// (information bits per resource element) for CQI 1..15, 256QAM table
// extended at the top to match the paper's 256QAM SISO configuration.
var cqiEfficiency = [16]float64{
	0,      // CQI 0: out of range
	0.1523, // QPSK 78/1024
	0.2344,
	0.3770,
	0.6016,
	0.8770,
	1.1758,
	1.4766, // 16QAM starts
	1.9141,
	2.4063,
	2.7305, // 64QAM starts
	3.3223,
	3.9023,
	4.5234,
	5.1152,
	5.5547, // 64QAM 948/1024
}

// Efficiency returns the spectral efficiency in bits per resource
// element for this CQI.
func (c CQI) Efficiency() float64 {
	if c < 0 {
		return 0
	}
	if c > MaxCQI {
		c = MaxCQI
	}
	return cqiEfficiency[c]
}

// cqiSINRdB is the approximate SINR threshold (dB) at which each CQI
// becomes decodable at 10% BLER. Derived from the standard exponential
// effective-SINR fit used by LTE link-adaptation studies.
var cqiSINRdB = [16]float64{
	math.Inf(-1),
	-6.7, -4.7, -2.3, 0.2, 2.4, 4.3, 5.9, 8.1, 10.3, 11.7, 14.1, 16.3, 18.7, 21.0, 22.7,
}

// CQIFromSINR maps an SINR in dB to the highest CQI decodable at the
// 10% BLER target.
func CQIFromSINR(sinrDB float64) CQI {
	best := CQI(0)
	for c := CQI(1); c <= MaxCQI; c++ {
		if sinrDB >= cqiSINRdB[c] {
			best = c
		} else {
			break
		}
	}
	return best
}

// SINRFloorDB returns the SINR threshold for this CQI (the inverse of
// CQIFromSINR at bucket edges). CQI 0 returns -inf.
func (c CQI) SINRFloorDB() float64 {
	if c < 0 || c > MaxCQI {
		return math.Inf(-1)
	}
	return cqiSINRdB[c]
}

// resource elements per RB available to data after control/reference
// overhead: 12 subcarriers x 14 symbols minus ~29% overhead (PDCCH,
// CRS/DMRS), the figure LTE TBS tables embed.
const dataREPerRB = 120

// TBSBits returns the transport block size in bits for nRB resource
// blocks at the given CQI, per TTI. It follows the standard
// efficiency x usable-RE model rather than the exact 36.213 TBS
// lattice; the granularity difference is below one percent and does
// not affect scheduler comparisons.
func TBSBits(c CQI, nRB int) int {
	if nRB <= 0 || c <= 0 {
		return 0
	}
	perRB := int(c.Efficiency() * dataREPerRB)
	return perRB * nRB
}

// RBBits returns the bits one RB carries in one TTI at the given CQI.
func RBBits(c CQI) int { return TBSBits(c, 1) }

// RatePerRB returns the achievable rate of a single RB in bits/s for
// the given CQI on the given grid (the per-RB r_{u,b} of eq. 1).
func RatePerRB(c CQI, g Grid) float64 {
	return float64(RBBits(c)) / g.TTI().Seconds()
}

// SpectralEfficiency converts delivered bits over an interval and
// bandwidth to bit/s/Hz.
func SpectralEfficiency(bits int64, dur float64, bandwidthHz float64) float64 {
	if dur <= 0 || bandwidthHz <= 0 {
		return 0
	}
	return float64(bits) / dur / bandwidthHz
}
