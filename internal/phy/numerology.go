// Package phy models the parts of the LTE/5G NR physical layer that a
// MAC scheduler observes: the time/frequency resource grid
// (numerology, TTI, resource blocks), the CQI feedback scale, and the
// mapping from channel quality to achievable transport block size.
package phy

import (
	"fmt"

	"outran/internal/sim"
)

// Numerology identifies a 3GPP NR sub-carrier spacing configuration µ.
// LTE is equivalent to µ=0 (15 kHz SCS, 1 ms slot).
type Numerology int

const (
	Mu0 Numerology = iota // 15 kHz SCS, 1 ms slot (LTE and NR µ=0)
	Mu1                   // 30 kHz SCS, 500 µs slot
	Mu2                   // 60 kHz SCS, 250 µs slot
	Mu3                   // 120 kHz SCS, 125 µs slot
)

// SCSkHz returns the sub-carrier spacing in kHz: 15 * 2^µ.
func (m Numerology) SCSkHz() int { return 15 << uint(m) }

// SlotDuration returns the slot length, which is the scheduling TTI:
// 1 ms / 2^µ.
func (m Numerology) SlotDuration() sim.Time {
	return sim.Millisecond >> uint(m)
}

// RBBandwidthHz returns the bandwidth of one resource block: 12
// subcarriers at the numerology's spacing.
func (m Numerology) RBBandwidthHz() float64 {
	return 12 * float64(m.SCSkHz()) * 1000
}

func (m Numerology) String() string {
	return fmt.Sprintf("µ=%d (%d kHz SCS, %v slot)", int(m), m.SCSkHz(), m.SlotDuration())
}

// Grid describes a carrier's schedulable downlink resources.
type Grid struct {
	Numerology Numerology
	NumRB      int     // resource blocks per TTI
	CarrierHz  float64 // carrier frequency (Doppler computation)
}

// BandwidthHz returns the total scheduled bandwidth.
func (g Grid) BandwidthHz() float64 {
	return float64(g.NumRB) * g.Numerology.RBBandwidthHz()
}

// TTI returns the scheduling interval.
func (g Grid) TTI() sim.Time { return g.Numerology.SlotDuration() }

// Validate reports configuration errors.
func (g Grid) Validate() error {
	if g.NumRB <= 0 {
		return fmt.Errorf("phy: grid needs at least 1 RB, got %d", g.NumRB)
	}
	if g.Numerology < Mu0 || g.Numerology > Mu3 {
		return fmt.Errorf("phy: unsupported numerology %d", g.Numerology)
	}
	if g.CarrierHz <= 0 {
		return fmt.Errorf("phy: non-positive carrier frequency %g", g.CarrierHz)
	}
	return nil
}

// LTE20MHz is the paper's LTE testbed grid: 100 RBs in 20 MHz,
// Band 7 (2680 MHz downlink).
func LTE20MHz() Grid {
	return Grid{Numerology: Mu0, NumRB: 100, CarrierHz: 2.68e9}
}

// LTE10MHz is a 50-RB LTE carrier.
func LTE10MHz() Grid {
	return Grid{Numerology: Mu0, NumRB: 50, CarrierHz: 2.68e9}
}

// Colosseum is the SCOPE/Colosseum srsRAN configuration: 15 RBs (3 MHz).
func Colosseum() Grid {
	return Grid{Numerology: Mu0, NumRB: 15, CarrierHz: 2.68e9}
}

// NR100MHz returns the paper's 5G grid for the given numerology. At
// 30 kHz SCS a 100 MHz carrier carries 273 RBs (3GPP 38.101-1); the RB
// count scales inversely with SCS for other numerologies.
func NR100MHz(mu Numerology) Grid {
	var nRB int
	switch mu {
	case Mu0:
		nRB = 270 // 3GPP caps µ=0 at 50 MHz/270 RB; widest config
	case Mu1:
		nRB = 273
	case Mu2:
		nRB = 135
	case Mu3:
		nRB = 66 // FR2-style allocation
	}
	return Grid{Numerology: mu, NumRB: nRB, CarrierHz: 28e9}
}
