package phy

import (
	"math"
	"testing"
	"testing/quick"

	"outran/internal/sim"
)

func TestNumerologySlots(t *testing.T) {
	cases := []struct {
		mu   Numerology
		scs  int
		slot sim.Time
	}{
		{Mu0, 15, sim.Millisecond},
		{Mu1, 30, 500 * sim.Microsecond},
		{Mu2, 60, 250 * sim.Microsecond},
		{Mu3, 120, 125 * sim.Microsecond},
	}
	for _, c := range cases {
		if c.mu.SCSkHz() != c.scs {
			t.Errorf("µ%d SCS %d, want %d", c.mu, c.mu.SCSkHz(), c.scs)
		}
		if c.mu.SlotDuration() != c.slot {
			t.Errorf("µ%d slot %v, want %v", c.mu, c.mu.SlotDuration(), c.slot)
		}
	}
}

func TestRBBandwidth(t *testing.T) {
	if got := Mu0.RBBandwidthHz(); got != 180e3 {
		t.Fatalf("LTE RB bandwidth %g, want 180 kHz", got)
	}
	if got := Mu3.RBBandwidthHz(); got != 1440e3 {
		t.Fatalf("µ3 RB bandwidth %g, want 1440 kHz (paper §4.1)", got)
	}
}

func TestGridPresets(t *testing.T) {
	lte := LTE20MHz()
	if lte.NumRB != 100 {
		t.Fatalf("LTE 20 MHz has %d RBs, want 100", lte.NumRB)
	}
	if lte.BandwidthHz() != 18e6 {
		t.Fatalf("LTE scheduled bandwidth %g", lte.BandwidthHz())
	}
	nr := NR100MHz(Mu1)
	if nr.NumRB != 273 {
		t.Fatalf("NR 100 MHz µ1 has %d RBs, want 273", nr.NumRB)
	}
	for _, g := range []Grid{lte, LTE10MHz(), Colosseum(), nr, NR100MHz(Mu0), NR100MHz(Mu2), NR100MHz(Mu3)} {
		if err := g.Validate(); err != nil {
			t.Errorf("preset invalid: %v", err)
		}
	}
}

func TestGridValidate(t *testing.T) {
	if err := (Grid{Numerology: Mu0, NumRB: 0, CarrierHz: 1e9}).Validate(); err == nil {
		t.Error("0 RBs accepted")
	}
	if err := (Grid{Numerology: Numerology(9), NumRB: 10, CarrierHz: 1e9}).Validate(); err == nil {
		t.Error("bad numerology accepted")
	}
	if err := (Grid{Numerology: Mu0, NumRB: 10}).Validate(); err == nil {
		t.Error("zero carrier accepted")
	}
}

func TestCQIEfficiencyMonotonic(t *testing.T) {
	prev := 0.0
	for c := CQI(1); c <= MaxCQI; c++ {
		e := c.Efficiency()
		if e <= prev {
			t.Fatalf("efficiency not increasing at CQI %d", c)
		}
		prev = e
	}
	if CQI(0).Efficiency() != 0 {
		t.Fatal("CQI 0 should have zero efficiency")
	}
	if CQI(-1).Efficiency() != 0 || CQI(99).Efficiency() != MaxCQI.Efficiency() {
		t.Fatal("out-of-range CQI not clamped")
	}
}

func TestCQIFromSINRMonotonic(t *testing.T) {
	prev := CQI(0)
	for s := -10.0; s <= 30; s += 0.25 {
		c := CQIFromSINR(s)
		if c < prev {
			t.Fatalf("CQI decreased with SINR at %g dB", s)
		}
		prev = c
	}
	if CQIFromSINR(-20) != 0 {
		t.Fatal("very low SINR should give CQI 0")
	}
	if CQIFromSINR(40) != MaxCQI {
		t.Fatal("very high SINR should give CQI 15")
	}
}

func TestCQISINRRoundTrip(t *testing.T) {
	for c := CQI(1); c <= MaxCQI; c++ {
		if got := CQIFromSINR(c.SINRFloorDB()); got != c {
			t.Fatalf("CQIFromSINR(floor(%d)) = %d", c, got)
		}
		if got := CQIFromSINR(c.SINRFloorDB() - 0.01); got != c-1 {
			t.Fatalf("just below floor of %d gives %d", c, got)
		}
	}
}

func TestTBSBits(t *testing.T) {
	if TBSBits(0, 10) != 0 || TBSBits(5, 0) != 0 {
		t.Fatal("degenerate TBS not zero")
	}
	// Linear in nRB.
	one := TBSBits(10, 1)
	if TBSBits(10, 7) != 7*one {
		t.Fatal("TBS not linear in RBs")
	}
	// LTE 20 MHz at top CQI should be near the paper's 97 Mbps
	// (256QAM SISO) figure: within a factor accounting for our 64QAM
	// table top.
	peak := float64(TBSBits(MaxCQI, 100)) / Mu0.SlotDuration().Seconds()
	if peak < 55e6 || peak > 110e6 {
		t.Fatalf("LTE peak rate %g Mbps implausible", peak/1e6)
	}
}

func TestRatePerRB(t *testing.T) {
	g := LTE20MHz()
	r := RatePerRB(10, g)
	want := float64(RBBits(10)) / 0.001
	if math.Abs(r-want) > 1 {
		t.Fatalf("RatePerRB %g want %g", r, want)
	}
	// Same CQI at µ3 yields higher per-RB rate (wider RB, shorter slot).
	if RatePerRB(10, NR100MHz(Mu3)) <= r {
		t.Fatal("µ3 RB rate should exceed LTE RB rate")
	}
}

func TestSpectralEfficiency(t *testing.T) {
	if SpectralEfficiency(18e6, 1, 18e6) != 1 {
		t.Fatal("SE computation wrong")
	}
	if SpectralEfficiency(100, 0, 18e6) != 0 || SpectralEfficiency(100, 1, 0) != 0 {
		t.Fatal("degenerate SE should be 0")
	}
}

// Property: TBS is monotone in both CQI and RB count.
func TestTBSMonotoneProperty(t *testing.T) {
	prop := func(c1, c2 uint8, n1, n2 uint8) bool {
		cqiA, cqiB := CQI(c1%16), CQI(c2%16)
		rbA, rbB := int(n1%100)+1, int(n2%100)+1
		if cqiA > cqiB {
			cqiA, cqiB = cqiB, cqiA
		}
		if rbA > rbB {
			rbA, rbB = rbB, rbA
		}
		return TBSBits(cqiA, rbA) <= TBSBits(cqiB, rbB)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
