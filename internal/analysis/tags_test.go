package analysis

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fixtureSource reads one fixture file for line-anchor lookups.
func fixtureSource(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestTaggedFuncs checks the parser-only annotation enumeration the
// AllocsPerRun suites build their probe registries from.
func TestTaggedFuncs(t *testing.T) {
	dir := filepath.Join("testdata", "src", "scratchown")
	got, err := TaggedFuncs(dir, TagScratch)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"(*Sched).Allocate", "Source.Status", "wrap"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TaggedFuncs(scratch) = %v, want %v", got, want)
	}
	dir = filepath.Join("testdata", "src", "allocfree")
	got, err = TaggedFuncs(dir, TagAllocFree)
	if err != nil {
		t.Fatal(err)
	}
	want = []string{"captureFree", "grow", "hot"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TaggedFuncs(allocfree) = %v, want %v", got, want)
	}
}

// TestCoverageDiff checks the probe-registry reconciliation used by
// the per-package zero-alloc suites.
func TestCoverageDiff(t *testing.T) {
	dir := filepath.Join("testdata", "src", "allocfree")
	unprobed, stale, err := CoverageDiff(dir, TagAllocFree, []string{"hot", "grow", "bogus"})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"captureFree"}; !reflect.DeepEqual(unprobed, want) {
		t.Errorf("unprobed = %v, want %v", unprobed, want)
	}
	if want := []string{"bogus"}; !reflect.DeepEqual(stale, want) {
		t.Errorf("stale = %v, want %v", stale, want)
	}
	unprobed, stale, err = CoverageDiff(dir, TagAllocFree, []string{"captureFree", "grow", "hot"})
	if err != nil {
		t.Fatal(err)
	}
	if len(unprobed) != 0 || len(stale) != 0 {
		t.Errorf("exact match reported unprobed=%v stale=%v", unprobed, stale)
	}
}

// TestKnownDirectives pins the complete directive vocabulary: growing
// it is deliberate (a new analyzer or annotation), and the directive
// pass rejects everything else.
func TestKnownDirectives(t *testing.T) {
	want := []string{
		"allocfree", "allocok", "floateq", "globalrand", "orderfree",
		"scratch", "scratchsafe", "simtime", "wallclock",
	}
	if got := KnownDirectives(); !reflect.DeepEqual(got, want) {
		t.Errorf("KnownDirectives() = %v, want %v", got, want)
	}
}

// TestDirectiveInventory checks the baseline inventory shape: per-file
// per-directive counts with root-relative slash paths, including
// malformed attempts (the directive pass flags those; the inventory
// still counts them so the baseline diff shows them).
func TestDirectiveInventory(t *testing.T) {
	dir := filepath.Join("testdata", "src", "directive")
	pkg, err := LoadDir(dir, "fixture/directive")
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	inv := DirectiveInventory(abs, []*Package{pkg})
	counts := inv["directive.go"]
	if counts == nil {
		t.Fatalf("inventory missing root-relative file entry: %v", inv)
	}
	for directive, n := range map[string]int{
		"orderfre":  1, // unknown names still count
		"allocfree": 2, // one misplaced, one valid
		"scratch":   1,
		"orderfree": 1,
	} {
		if counts[directive] != n {
			t.Errorf("inventory[directive.go][%s] = %d, want %d (all: %v)", directive, counts[directive], n, counts)
		}
	}
}
