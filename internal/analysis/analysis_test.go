package analysis

import (
	"bufio"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// fixtureFindings runs one analyzer over the fixture package in
// testdata/src/<name> (bypassing the analyzer's path scope, which is
// meaningless for fixtures) and returns the flagged lines per file.
func fixtureFindings(t *testing.T, a *Analyzer) (got map[string][]int, pkg *Package) {
	t.Helper()
	dir := filepath.Join("testdata", "src", a.Name)
	pkg, err := LoadDir(dir, "fixture/"+a.Name)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	var findings []Finding
	pass := &Pass{Analyzer: a, Pkg: pkg, findings: &findings}
	a.Run(pass)
	got = map[string][]int{}
	for _, f := range findings {
		base := filepath.Base(f.Pos.Filename)
		got[base] = append(got[base], f.Pos.Line)
	}
	return got, pkg
}

// wantLines scans the fixture sources for `want:<analyzer>` markers.
func wantLines(t *testing.T, pkg *Package, name string) map[string][]int {
	t.Helper()
	want := map[string][]int{}
	seen := map[string]bool{}
	for _, fn := range pkg.Filenames {
		if seen[fn] {
			continue
		}
		seen[fn] = true
		f, err := os.Open(fn)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		line := 0
		for sc.Scan() {
			line++
			if strings.Contains(sc.Text(), "want:"+name) {
				base := filepath.Base(fn)
				want[base] = append(want[base], line)
			}
		}
		f.Close()
	}
	return want
}

func sortAll(m map[string][]int) {
	for _, v := range m {
		sort.Ints(v)
	}
}

func equalLineSets(a, b map[string][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || len(va) != len(vb) {
			return false
		}
		for i := range va {
			if va[i] != vb[i] {
				return false
			}
		}
	}
	return true
}

// TestAnalyzersAgainstFixtures is the table-driven fixture check: for
// every analyzer, the flagged lines must exactly match the want
// markers — so each fixture demonstrates both caught violations and
// accepted justifications (directive-carrying lines with no marker).
func TestAnalyzersAgainstFixtures(t *testing.T) {
	for _, a := range DefaultAnalyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			got, pkg := fixtureFindings(t, a)
			want := wantLines(t, pkg, a.Name)
			sortAll(got)
			sortAll(want)
			if len(want) == 0 {
				t.Fatalf("fixture for %s declares no want markers", a.Name)
			}
			if !equalLineSets(got, want) {
				t.Errorf("findings mismatch\n got: %v\nwant: %v", got, want)
			}
			// Every fixture must also exercise the justification path:
			// at least one accepted //outran:<directive> comment.
			if a.Directive != "" {
				justified := 0
				for _, f := range pkg.Files {
					for _, d := range pkg.directivesOf(f) {
						if d[a.Directive] {
							justified++
						}
					}
				}
				if justified == 0 {
					t.Errorf("fixture for %s contains no //outran:%s justification", a.Name, a.Directive)
				}
			}
		})
	}
}

// TestScopeFiltering checks that RunAnalyzers honors analyzer scopes:
// a determinism-scoped analyzer must skip packages outside the L2
// stack even when they contain violations.
func TestScopeFiltering(t *testing.T) {
	dir := filepath.Join("testdata", "src", "maprange")
	inScope, err := LoadDir(dir, "outran/internal/mac")
	if err != nil {
		t.Fatal(err)
	}
	outOfScope, err := LoadDir(dir, "outran/internal/webpage")
	if err != nil {
		t.Fatal(err)
	}
	a := MapRange()
	if got := RunAnalyzers([]*Package{inScope}, []*Analyzer{a}); len(got) == 0 {
		t.Error("maprange reported nothing for an in-scope package with violations")
	}
	if got := RunAnalyzers([]*Package{outOfScope}, []*Analyzer{a}); len(got) != 0 {
		t.Errorf("maprange reported %d findings outside its scope", len(got))
	}
}

// TestFindingsSorted checks the deterministic output ordering the CI
// gate depends on (identical trees must print identical reports).
func TestFindingsSorted(t *testing.T) {
	dir := filepath.Join("testdata", "src", "maprange")
	pkg, err := LoadDir(dir, "outran/internal/mac")
	if err != nil {
		t.Fatal(err)
	}
	a := MapRange()
	first := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	for i := 0; i < 5; i++ {
		again := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
		if len(again) != len(first) {
			t.Fatalf("run %d: %d findings, first run had %d", i, len(again), len(first))
		}
		for j := range again {
			if again[j] != first[j] {
				t.Fatalf("run %d: finding %d differs: %v vs %v", i, j, again[j], first[j])
			}
		}
	}
	for i := 1; i < len(first); i++ {
		if first[i].Pos.Filename == first[i-1].Pos.Filename && first[i].Pos.Line < first[i-1].Pos.Line {
			t.Errorf("findings not sorted: %v before %v", first[i-1], first[i])
		}
	}
}

// TestCleanTree runs the full default suite over the real module — the
// same check CI performs with `go run ./cmd/outran-vet ./...` — and
// demands a clean report. Any regression that reintroduces a map-order
// or wall-clock hazard fails here, inside plain `go test ./...`.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide type check is slow; skipped with -short")
	}
	pkgs, err := LoadModule(".")
	if err != nil {
		t.Fatal(err)
	}
	findings := RunAnalyzers(pkgs, DefaultAnalyzers())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestParseModulePath covers the go.mod module-path extraction.
func TestParseModulePath(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"module outran\n\ngo 1.22\n", "outran"},
		{"// comment\nmodule \"quoted/path\"\n", "quoted/path"},
		{"module\tfoo/bar // trailing\n", "foo/bar"},
		{"go 1.22\n", ""},
		{"moduleX bad\n", ""},
	}
	for _, c := range cases {
		if got := parseModulePath([]byte(c.in)); got != c.want {
			t.Errorf("parseModulePath(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
