package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// funcInfo is one function declared in a non-test file of the module,
// with everything the contract passes need to reason about it.
type funcInfo struct {
	obj  *types.Func
	decl *ast.FuncDecl
	file *ast.File
	pkg  *Package
	// tags are the contract annotations on the doc comment
	// (allocfree, scratch).
	tags map[string]bool
	// root, for allocfree-closure members, names the annotated
	// function this one was reached from (itself when annotated).
	root string
}

// Name returns the diagnostic name: "(*T).M", "T.M" or "F".
func (fi *funcInfo) Name() string {
	return funcDeclName(fi.decl)
}

// funcDeclName renders a FuncDecl's receiver-qualified name.
func funcDeclName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return decl.Name.Name
	}
	t := decl.Recv.List[0].Type
	var recv string
	switch rt := t.(type) {
	case *ast.StarExpr:
		recv = "(*" + typeExprName(rt.X) + ")"
	default:
		recv = typeExprName(t)
	}
	return recv + "." + decl.Name.Name
}

// typeExprName renders a receiver base-type expression (Ident, or
// IndexExpr/IndexListExpr for generic receivers).
func typeExprName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return typeExprName(t.X)
	case *ast.IndexListExpr:
		return typeExprName(t.X)
	}
	return "?"
}

// docTags extracts the contract annotations of a doc comment group.
func docTags(doc *ast.CommentGroup) map[string]bool {
	if doc == nil {
		return nil
	}
	var tags map[string]bool
	for _, c := range doc.List {
		m := directiveRe.FindStringSubmatch(c.Text)
		if m == nil {
			continue
		}
		if m[1] == TagAllocFree || m[1] == TagScratch {
			if tags == nil {
				tags = map[string]bool{}
			}
			tags[m[1]] = true
		}
	}
	return tags
}

// funcIndex is the module-wide view of declared functions and
// annotated interface methods that the allocfree, scratchown and
// escape passes share. It is built once per analysis run and cached on
// the analyzer closure.
type funcIndex struct {
	// funcs maps every module-declared function object (non-test
	// files) to its declaration info. Object identity is stable across
	// packages because the tolerant importer memoises module packages.
	funcs map[*types.Func]*funcInfo
	// scratchFuncs holds every function object annotated
	// //outran:scratch — FuncDecls and interface methods alike.
	scratchFuncs map[*types.Func]bool
	// allocChecked is the allocfree closure: every function reachable
	// through static module-internal calls from an annotated root, in
	// a deterministic order (roots sorted by position, BFS).
	allocChecked []*funcInfo
	// byFile indexes allocChecked functions per filename for the
	// line-range lookups of the escape check.
	byFile map[string][]*funcInfo
}

// buildFuncIndex indexes the module's functions, annotations and the
// allocfree call closure.
func buildFuncIndex(pkgs []*Package) *funcIndex {
	idx := &funcIndex{
		funcs:        map[*types.Func]*funcInfo{},
		scratchFuncs: map[*types.Func]bool{},
		byFile:       map[string][]*funcInfo{},
	}
	var roots []*funcInfo
	for _, pkg := range pkgs {
		for i, file := range pkg.Files {
			if strings.HasSuffix(pkg.Filenames[i], "_test.go") {
				continue
			}
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					obj, _ := pkg.Info.Defs[d.Name].(*types.Func)
					if obj == nil {
						continue
					}
					fi := &funcInfo{obj: obj, decl: d, file: file, pkg: pkg, tags: docTags(d.Doc)}
					idx.funcs[obj] = fi
					if fi.tags[TagAllocFree] {
						fi.root = fi.Name()
						roots = append(roots, fi)
					}
					if fi.tags[TagScratch] {
						idx.scratchFuncs[obj] = true
					}
				case *ast.GenDecl:
					// Interface methods can carry //outran:scratch so the
					// contract follows dynamic dispatch (e.g. the
					// mac.Scheduler interface).
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						it, ok := ts.Type.(*ast.InterfaceType)
						if !ok || it.Methods == nil {
							continue
						}
						for _, m := range it.Methods.List {
							if len(m.Names) == 0 || docTags(m.Doc) == nil {
								continue
							}
							obj, _ := pkg.Info.Defs[m.Names[0]].(*types.Func)
							if obj == nil {
								continue
							}
							if docTags(m.Doc)[TagScratch] {
								idx.scratchFuncs[obj] = true
							}
						}
					}
				}
			}
		}
	}
	// Deterministic closure: roots in position order, BFS over
	// module-internal static calls.
	sort.Slice(roots, func(i, j int) bool {
		pi := roots[i].pkg.Fset.Position(roots[i].decl.Pos())
		pj := roots[j].pkg.Fset.Position(roots[j].decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Line < pj.Line
	})
	seen := map[*types.Func]bool{}
	queue := roots
	for _, r := range roots {
		seen[r.obj] = true
	}
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		idx.allocChecked = append(idx.allocChecked, fi)
		fname := fi.pkg.Fset.Position(fi.decl.Pos()).Filename
		// Positions carry whatever path the loader parsed with (often
		// relative to the working directory); key the lookup table on
		// absolute paths so the escape check's joined paths match.
		if abs, err := filepath.Abs(fname); err == nil {
			fname = abs
		}
		idx.byFile[fname] = append(idx.byFile[fname], fi)
		for _, callee := range calleesOf(fi.pkg, fi.decl) {
			ci := idx.funcs[callee]
			if ci == nil || seen[callee] {
				continue
			}
			seen[callee] = true
			ci.root = fi.root
			queue = append(queue, ci)
		}
	}
	return idx
}

// calleesOf returns the module-resolvable functions a declaration
// statically calls, in source order. Calls through function values and
// interface methods do not resolve and are deliberately absent — the
// allocfree pass proves properties of the static call graph only.
func calleesOf(pkg *Package, decl *ast.FuncDecl) []*types.Func {
	if decl.Body == nil {
		return nil
	}
	var out []*types.Func
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var obj types.Object
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			obj = pkg.Info.Uses[fun]
		case *ast.SelectorExpr:
			obj = pkg.Info.Uses[fun.Sel]
		}
		if f, ok := obj.(*types.Func); ok {
			out = append(out, f)
		}
		return true
	})
	return out
}

// checkedIn returns the allocfree-closure members declared in pkg.
func (idx *funcIndex) checkedIn(pkg *Package) []*funcInfo {
	var out []*funcInfo
	for _, fi := range idx.allocChecked {
		if fi.pkg == pkg {
			out = append(out, fi)
		}
	}
	return out
}

// checkedAt returns the allocfree-closure member spanning file:line,
// or nil.
func (idx *funcIndex) checkedAt(filename string, line int) *funcInfo {
	for _, fi := range idx.byFile[filename] {
		start := fi.pkg.Fset.Position(fi.decl.Pos()).Line
		end := fi.pkg.Fset.Position(fi.decl.End()).Line
		if line >= start && line <= end {
			return fi
		}
	}
	return nil
}

// indexCache memoises one funcIndex per module view so the three
// passes sharing it do not rebuild it per package. Keyed on the
// identity of the package slice's first element: one LoadModule call
// produces one stable slice.
type indexCache struct {
	key *Package
	idx *funcIndex
}

func (c *indexCache) get(pkgs []*Package) *funcIndex {
	if len(pkgs) == 0 {
		return &funcIndex{}
	}
	if c.idx == nil || c.key != pkgs[0] {
		c.idx = buildFuncIndex(pkgs)
		c.key = pkgs[0]
	}
	return c.idx
}
