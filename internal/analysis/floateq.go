package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands in the
// scheduler metric packages. The ε-relaxation scheduler (§4.3) is
// defined over metric *tolerances*; exact float equality there is
// either a bug (values that differ by rounding noise compare unequal)
// or an accident waiting for one. Comparisons that are genuinely
// exact — e.g. against a sentinel the code itself stored — carry
// `//outran:floateq`.
func FloatEq() *Analyzer {
	a := &Analyzer{
		Name:      "floateq",
		Doc:       "flags exact float ==/!= in scheduler metric code; use explicit tolerances",
		Directive: "floateq",
		Scope:     MetricScope,
	}
	a.Run = func(p *Pass) {
		for _, file := range p.NonTestFiles() {
			ast.Inspect(file, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloat(p.Pkg.Info.TypeOf(be.X)) && !isFloat(p.Pkg.Info.TypeOf(be.Y)) {
					return true
				}
				if p.Justified(file, be.Pos()) {
					return true
				}
				p.Reportf(be.Pos(), "exact floating-point %s; compare with an explicit tolerance, or justify with //outran:floateq", be.Op)
				return true
			})
		}
	}
	return a
}

// isFloat reports whether t's underlying type is a floating-point
// (or complex) basic type. Untyped float constants count: comparing a
// typed float against them is still an exact comparison.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}
