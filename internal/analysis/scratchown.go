package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ScratchOwn enforces the ownership contract of `//outran:scratch`
// functions: the returned value aliases callee-owned scratch and is
// valid only until the callee's next call, so a call site must not
// retain it. Retention, at every call site in the module, means:
//
//   - storing the result (or a local holding it) to a struct field,
//     global, slice/map element or composite literal
//   - capturing it in a function literal, goroutine or defer
//   - retaining it through append
//   - returning it from a function not itself annotated
//     `//outran:scratch` (annotating the wrapper propagates the
//     contract to its callers; this is how Status wrappers chain)
//
// An intervening Clone() detaches the value and ends the analysis.
// Sites that retain deliberately within the documented validity window
// (e.g. a per-TTI buffer consumed before the next call) carry
// `//outran:scratchsafe` with a rationale. The annotation works on
// interface methods too (mac.Scheduler.Allocate), so dynamic dispatch
// does not lose the contract.
//
// The taint tracking is single-level and intraprocedural: a local
// initialised directly from a scratch call (or from such a local) is
// tracked; aliases laundered through struct fields or collections are
// not — those stores are themselves findings, which is the point.
func ScratchOwn() *Analyzer {
	a := &Analyzer{
		Name:      "scratchown",
		Doc:       "checks call sites of //outran:scratch functions for retention without Clone()",
		Directive: "scratchsafe",
	}
	var cache indexCache
	a.Run = func(p *Pass) {
		idx := cache.get(p.Module())
		if len(idx.scratchFuncs) == 0 {
			return
		}
		for _, file := range p.NonTestFiles() {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				sc := &scratchChecker{p: p, idx: idx, file: file, decl: fn, tainted: map[*types.Var]bool{}}
				sc.check()
			}
		}
	}
	return a
}

// scratchChecker analyzes one function body.
type scratchChecker struct {
	p       *Pass
	idx     *funcIndex
	file    *ast.File
	decl    *ast.FuncDecl
	tainted map[*types.Var]bool
}

func (sc *scratchChecker) check() {
	// Source-order walk: taint flows forward only, which matches Go's
	// declare-before-use scoping. The ancestor stack distinguishes
	// returns of the function itself from returns inside function
	// literals (the capture check owns the latter).
	var stack []ast.Node
	inLit := func() bool {
		for _, n := range stack {
			if _, ok := n.(*ast.FuncLit); ok {
				return true
			}
		}
		return false
	}
	ast.Inspect(sc.decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch node := n.(type) {
		case *ast.AssignStmt:
			sc.checkAssign(node)
		case *ast.ValueSpec:
			sc.checkValueSpec(node)
		case *ast.ReturnStmt:
			if !inLit() {
				sc.checkReturn(node)
			}
		case *ast.CallExpr:
			sc.checkCall(node)
		case *ast.GoStmt:
			sc.checkEscapeStmt(node.Call, "a goroutine")
		case *ast.DeferStmt:
			sc.checkEscapeStmt(node.Call, "a deferred call")
		case *ast.FuncLit:
			sc.checkCapture(node)
		}
		stack = append(stack, n)
		return true
	})
}

// scratchCall returns the annotated callee when e is a direct call of
// an //outran:scratch function, else nil.
func (sc *scratchChecker) scratchCall(e ast.Expr) *types.Func {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = sc.p.Pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = sc.p.Pkg.Info.Uses[fun.Sel]
	}
	f, ok := obj.(*types.Func)
	if !ok || !sc.idx.scratchFuncs[f] {
		return nil
	}
	return f
}

// isClone reports whether e is a .Clone() call — the sanctioned detach.
func isClone(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Clone"
}

// taintedIdent returns the tracked local variable when e is one.
func (sc *scratchChecker) taintedIdent(e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := sc.p.Pkg.Info.Uses[id].(*types.Var)
	if !ok {
		v, ok = sc.p.Pkg.Info.Defs[id].(*types.Var)
		if !ok {
			return nil
		}
	}
	if sc.tainted[v] {
		return v
	}
	return nil
}

// scratchValue reports whether e carries a scratch value: a direct
// scratch call or a tainted local, described for diagnostics.
func (sc *scratchChecker) scratchValue(e ast.Expr) (string, bool) {
	if f := sc.scratchCall(e); f != nil {
		return "the result of //outran:scratch " + shortFuncName(f), true
	}
	if v := sc.taintedIdent(e); v != nil {
		return "scratch-aliasing local " + v.Name(), true
	}
	return "", false
}

func (sc *scratchChecker) report(n ast.Node, format string, args ...interface{}) {
	if sc.p.Justified(sc.file, n.Pos()) {
		return
	}
	sc.p.Reportf(n.Pos(), format+"; Clone() first, or justify with //outran:scratchsafe", args...)
}

// checkAssign classifies each RHS of an assignment.
func (sc *scratchChecker) checkAssign(as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		desc, isScratch := sc.scratchValue(rhs)
		if !isScratch {
			continue
		}
		// Match LHS positionally (1:1 assignments; a scratch function
		// returning multiple values would pair every LHS).
		var lhss []ast.Expr
		if len(as.Lhs) == len(as.Rhs) {
			lhss = as.Lhs[i : i+1]
		} else {
			lhss = as.Lhs
		}
		for _, lhs := range lhss {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				sc.report(as, "%s stored to %s, which outlives the scratch validity window", desc, lhsKind(lhs))
				continue
			}
			if id.Name == "_" {
				continue
			}
			v, ok := sc.localVar(id)
			if !ok {
				sc.report(as, "%s stored to package-level variable %s", desc, id.Name)
				continue
			}
			sc.tainted[v] = true
		}
	}
}

// checkValueSpec handles `var x = scratchCall()`.
func (sc *scratchChecker) checkValueSpec(vs *ast.ValueSpec) {
	for i, rhs := range vs.Values {
		desc, isScratch := sc.scratchValue(rhs)
		if !isScratch || i >= len(vs.Names) {
			continue
		}
		if v, ok := sc.localVar(vs.Names[i]); ok {
			sc.tainted[v] = true
		} else {
			sc.report(vs, "%s stored to package-level variable %s", desc, vs.Names[i].Name)
		}
	}
}

// localVar resolves id to a function-local (or parameter) variable.
func (sc *scratchChecker) localVar(id *ast.Ident) (*types.Var, bool) {
	obj := sc.p.Pkg.Info.Defs[id]
	if obj == nil {
		obj = sc.p.Pkg.Info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil, false
	}
	// Local iff declared inside this function declaration.
	if v.Pos() < sc.decl.Pos() || v.Pos() >= sc.decl.End() {
		return nil, false
	}
	return v, true
}

// checkReturn flags scratch values escaping through an un-annotated
// function's return.
func (sc *scratchChecker) checkReturn(rs *ast.ReturnStmt) {
	for _, res := range rs.Results {
		desc, isScratch := sc.scratchValue(res)
		if !isScratch {
			continue
		}
		if fi := sc.idx.funcs[sc.enclosingObj()]; fi != nil && fi.tags[TagScratch] {
			continue // annotated wrapper: the contract propagates to its callers
		}
		sc.report(rs, "%s returned from %s, which is not annotated //outran:scratch", desc, funcDeclName(sc.decl))
	}
}

// enclosingObj returns the object of the function being checked.
func (sc *scratchChecker) enclosingObj() *types.Func {
	f, _ := sc.p.Pkg.Info.Defs[sc.decl.Name].(*types.Func)
	return f
}

// checkCall flags retention through append.
func (sc *scratchChecker) checkCall(call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return
	}
	if b, ok := sc.p.Pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return
	}
	for _, arg := range call.Args[1:] {
		if desc, isScratch := sc.scratchValue(arg); isScratch {
			sc.report(arg, "%s retained by append", desc)
		}
	}
}

// checkEscapeStmt flags scratch values flowing into go/defer calls,
// which run outside the current validity window.
func (sc *scratchChecker) checkEscapeStmt(call *ast.CallExpr, what string) {
	ast.Inspect(call, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if isClone(e) {
			return false // Clone() detaches; its receiver is read, not retained
		}
		if desc, isScratch := sc.scratchValue(e); isScratch {
			sc.report(n, "%s passed to %s", desc, what)
			return false
		}
		return true
	})
}

// checkCapture flags closures capturing tainted locals.
func (sc *scratchChecker) checkCapture(lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v := sc.taintedIdent(id); v != nil && v.Pos() < lit.Pos() {
			sc.report(id, "scratch-aliasing local %s captured by a closure", v.Name())
		}
		return true
	})
}

// lhsKind describes a non-identifier assignment target.
func lhsKind(e ast.Expr) string {
	switch e.(type) {
	case *ast.SelectorExpr:
		return "a struct field"
	case *ast.IndexExpr:
		return "a slice or map element"
	case *ast.StarExpr:
		return "a pointed-to location"
	}
	return "a non-local location"
}

// shortFuncName renders a *types.Func as "(*T).M", "T.M", "I.M" or
// "F" without the import path noise of FullName.
func shortFuncName(f *types.Func) string {
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return f.Name()
	}
	rt := sig.Recv().Type()
	s := types.TypeString(rt, func(p *types.Package) string { return "" })
	s = strings.ReplaceAll(s, ".", "")
	if strings.HasPrefix(s, "*") {
		return "(" + s + ")." + f.Name()
	}
	return s + "." + f.Name()
}
