package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// TaggedFuncs parses the non-test Go files of dir (no type checking —
// cheap enough for a test helper) and returns the receiver-qualified
// names of the functions and interface methods whose doc comment
// carries the given contract annotation (TagAllocFree or TagScratch).
// Names render as "(*T).M", "T.M", "I.M" or "F", sorted.
//
// The AllocsPerRun suites use this to enumerate their targets from the
// annotations themselves, so the set of functions proven allocation-
// free at runtime and the set enforced statically cannot drift apart:
// annotating a function without extending the suite's probe registry
// fails the test, and vice versa.
// CoverageDiff compares names — the keys of a package's zero-alloc
// probe registry — against the functions annotated with tag in dir.
// unprobed lists annotated functions no probe names; stale lists
// probes naming no annotated function. Both empty means the registry
// and the annotations agree exactly.
func CoverageDiff(dir, tag string, names []string) (unprobed, stale []string, err error) {
	tagged, err := TaggedFuncs(dir, tag)
	if err != nil {
		return nil, nil, err
	}
	taggedSet := make(map[string]bool, len(tagged))
	for _, n := range tagged {
		taggedSet[n] = true
	}
	nameSet := make(map[string]bool, len(names))
	for _, n := range names {
		nameSet[n] = true
		if !taggedSet[n] {
			stale = append(stale, n)
		}
	}
	for _, n := range tagged {
		if !nameSet[n] {
			unprobed = append(unprobed, n)
		}
	}
	sort.Strings(unprobed)
	sort.Strings(stale)
	return unprobed, stale, nil
}

func TaggedFuncs(dir, tag string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %v", name, err)
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if docTags(d.Doc)[tag] {
					names = append(names, funcDeclName(d))
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					it, ok := ts.Type.(*ast.InterfaceType)
					if !ok || it.Methods == nil {
						continue
					}
					for _, m := range it.Methods.List {
						if len(m.Names) > 0 && docTags(m.Doc)[tag] {
							names = append(names, ts.Name.Name+"."+m.Names[0].Name)
						}
					}
				}
			}
		}
	}
	sort.Strings(names)
	return names, nil
}
