package analysis

import (
	"go/ast"
	"go/types"
)

// SimTime extends the wallclock check to the rest of the
// non-determinism surface. Simulated time advances only through the
// sim.Engine event loop; anything that couples behavior to the host —
// real timers, the process environment, or lock-free memory ordering —
// makes same-seed runs diverge:
//
//   - time.Sleep / time.After / time.Tick / time.NewTicker /
//     time.NewTimer / time.AfterFunc: real-time waits and timers
//     (time.Now/Since stay with the wallclock pass)
//   - os.Getenv / os.LookupEnv / os.Environ: environment-dependent
//     scheduling or configuration (experiment knobs thread through
//     explicit config structs instead)
//   - sync/atomic anywhere: atomics imply cross-goroutine data flow
//     whose interleaving the simulator does not control; the
//     deploy runtime's justified counters carry `//outran:simtime`
//
// Cold paths that genuinely need the host (the bench CLI's progress
// ticker, CI plumbing) justify per site with `//outran:simtime` and a
// rationale.
func SimTime() *Analyzer {
	a := &Analyzer{
		Name:      "simtime",
		Doc:       "flags real timers, environment reads and atomics that break simulated-time determinism",
		Directive: "simtime",
	}
	realTimers := map[string]bool{
		"Sleep": true, "After": true, "Tick": true,
		"NewTicker": true, "NewTimer": true, "AfterFunc": true,
	}
	envReads := map[string]bool{
		"Getenv": true, "LookupEnv": true, "Environ": true,
	}
	a.Run = func(p *Pass) {
		for _, file := range p.NonTestFiles() {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
				if !ok {
					return true
				}
				switch pn.Imported().Path() {
				case "time":
					if realTimers[sel.Sel.Name] && !p.Justified(file, sel.Pos()) {
						p.Reportf(sel.Pos(), "time.%s is a real timer; schedule through sim.Engine, or justify host-time use with //outran:simtime", sel.Sel.Name)
					}
				case "os":
					if envReads[sel.Sel.Name] && !p.Justified(file, sel.Pos()) {
						p.Reportf(sel.Pos(), "os.%s makes simulation behavior depend on the process environment; thread configuration explicitly, or justify with //outran:simtime", sel.Sel.Name)
					}
				case "sync/atomic":
					if !p.Justified(file, sel.Pos()) {
						p.Reportf(sel.Pos(), "sync/atomic.%s implies host-scheduled cross-goroutine data flow; use the event loop, or justify with //outran:simtime", sel.Sel.Name)
					}
				}
				return true
			})
		}
	}
	return a
}
