package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and (tolerantly) type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Filenames  []string // parallel to Files
	Types      *types.Package
	Info       *types.Info

	dirs map[*ast.File]directives
}

// directivesOf lazily indexes a file's justification directives.
func (p *Package) directivesOf(f *ast.File) directives {
	if p.dirs == nil {
		p.dirs = map[*ast.File]directives{}
	}
	d, ok := p.dirs[f]
	if !ok {
		d = fileDirectives(p.Fset, f)
		p.dirs[f] = d
	}
	return d
}

// LoadModule parses and type-checks every package of the Go module
// rooted at (or above) dir. Type checking is best-effort: unresolved
// imports degrade to empty placeholder packages and type errors are
// ignored, so the analyzers see accurate types for everything declared
// inside the module even when the environment cannot resolve the rest.
func LoadModule(dir string) ([]*Package, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	byPath := map[string]*pkgSrc{}
	err = filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() {
			name := fi.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("analysis: %v", perr)
		}
		pdir := filepath.Dir(path)
		ip := modPath
		if rel, rerr := filepath.Rel(root, pdir); rerr == nil && rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		// Separate-package files in the same directory (package main in
		// examples, external test packages) keep the directory's import
		// path: the analyzers key on paths, not package names.
		src := byPath[ip]
		if src == nil {
			src = &pkgSrc{importPath: ip, dir: pdir}
			byPath[ip] = src
		}
		src.files = append(src.files, f)
		src.names = append(src.names, path)
		return nil
	})
	if err != nil {
		return nil, err
	}

	paths := make([]string, 0, len(byPath))
	for ip := range byPath {
		paths = append(paths, ip)
	}
	sort.Strings(paths)

	im := newTolerantImporter(fset, modPath, byPath)
	var pkgs []*Package
	for _, ip := range paths {
		pkg := im.check(ip)
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single directory dir as a package
// with the given import path — the fixture-loading entry point used by
// the analyzer tests.
func LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	src := &pkgSrc{importPath: importPath, dir: dir}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, perr := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if perr != nil {
			return nil, perr
		}
		src.files = append(src.files, f)
		src.names = append(src.names, filepath.Join(dir, e.Name()))
	}
	if len(src.files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	im := newTolerantImporter(fset, importPath, map[string]*pkgSrc{importPath: src})
	pkg := im.check(importPath)
	if pkg == nil {
		return nil, fmt.Errorf("analysis: checking %s produced no package", importPath)
	}
	return pkg, nil
}

type pkgSrc struct {
	importPath string
	dir        string
	files      []*ast.File
	names      []string
}

// tolerantImporter resolves module-internal imports from the parsed
// sources, stdlib imports through the source importer, and anything
// else (or anything that fails) as an empty placeholder package, so a
// missing dependency can never abort the analysis.
type tolerantImporter struct {
	fset     *token.FileSet
	modPath  string
	srcs     map[string]*pkgSrc
	std      types.Importer
	done     map[string]*Package
	extern   map[string]*types.Package
	inFlight map[string]bool
}

func newTolerantImporter(fset *token.FileSet, modPath string, srcs map[string]*pkgSrc) *tolerantImporter {
	return &tolerantImporter{
		fset:     fset,
		modPath:  modPath,
		srcs:     srcs,
		std:      importer.ForCompiler(fset, "source", nil),
		done:     map[string]*Package{},
		extern:   map[string]*types.Package{},
		inFlight: map[string]bool{},
	}
}

// Import implements types.Importer.
func (im *tolerantImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if src, ok := im.srcs[path]; ok {
		if im.inFlight[path] {
			// Import cycle: hand back a placeholder; the cycle itself
			// is go vet's problem, not ours.
			return im.placeholder(path), nil
		}
		if pkg := im.check(src.importPath); pkg != nil && pkg.Types != nil {
			return pkg.Types, nil
		}
		return im.placeholder(path), nil
	}
	if p, ok := im.extern[path]; ok {
		return p, nil
	}
	if p := im.importStd(path); p != nil {
		im.extern[path] = p
		return p, nil
	}
	return im.placeholder(path), nil
}

// importStd imports path with the stdlib source importer, absorbing
// any failure (panic included) into a nil result.
func (im *tolerantImporter) importStd(path string) (pkg *types.Package) {
	defer func() {
		if recover() != nil {
			pkg = nil
		}
	}()
	p, err := im.std.Import(path)
	if err != nil {
		return nil
	}
	return p
}

func (im *tolerantImporter) placeholder(path string) *types.Package {
	if p, ok := im.extern[path]; ok {
		return p
	}
	name := path[strings.LastIndex(path, "/")+1:]
	p := types.NewPackage(path, name)
	p.MarkComplete()
	im.extern[path] = p
	return p
}

// check type-checks one module package (memoised).
func (im *tolerantImporter) check(importPath string) *Package {
	if pkg, ok := im.done[importPath]; ok {
		return pkg
	}
	src := im.srcs[importPath]
	if src == nil {
		return nil
	}
	im.inFlight[importPath] = true
	defer delete(im.inFlight, importPath)

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer:         im,
		Error:            func(error) {}, // tolerate: placeholders yield benign errors
		FakeImportC:      true,
		IgnoreFuncBodies: false,
	}
	// Test files may declare an external package (foo_test) alongside
	// foo; type-check each package name separately so the checker never
	// sees a mixed file set.
	byName := map[string][]int{}
	for i, f := range src.files {
		byName[f.Name.Name] = append(byName[f.Name.Name], i)
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)

	pkg := &Package{
		ImportPath: importPath,
		Dir:        src.dir,
		Fset:       im.fset,
	}
	// The primary (non _test) package name carries the exported types.
	for _, n := range names {
		idx := byName[n]
		files := make([]*ast.File, 0, len(idx))
		for _, i := range idx {
			files = append(files, src.files[i])
			pkg.Files = append(pkg.Files, src.files[i])
			pkg.Filenames = append(pkg.Filenames, src.names[i])
		}
		tp, _ := conf.Check(importPath, im.fset, files, info) // errors already absorbed
		if !strings.HasSuffix(n, "_test") || pkg.Types == nil {
			if pkg.Types == nil {
				pkg.Types = tp
			}
		}
	}
	pkg.Info = info
	im.done[importPath] = pkg
	return pkg
}

// findModule locates the enclosing go.mod and returns its directory
// and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			mp := parseModulePath(data)
			if mp == "" {
				return "", "", fmt.Errorf("analysis: no module path in %s/go.mod", d)
			}
			return d, mp, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
		d = parent
	}
}

// parseModulePath extracts the module path from go.mod contents.
func parseModulePath(data []byte) string {
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		rest, ok := strings.CutPrefix(line, "module")
		if !ok || rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
			continue
		}
		rest = strings.TrimSpace(rest)
		if rest == "" {
			continue
		}
		if rest[0] == '"' {
			if s, err := strconv.Unquote(rest); err == nil {
				return s
			}
			continue
		}
		return strings.Fields(rest)[0]
	}
	return ""
}
