package analysis

import (
	"go/ast"
	"strings"
)

// Directive validates the `//outran:` directive vocabulary itself. A
// misspelled suppression (`//outran:orderfre`) or a contract
// annotation in the wrong place would otherwise be skipped silently —
// the check it was supposed to silence or establish simply would not
// apply. This pass makes that a vet failure:
//
//   - unknown names: anything not in KnownDirectives
//   - malformed spelling: space-separated variants (`// outran: x`)
//     that the justification scanner deliberately does not match
//   - misplaced annotations: `//outran:allocfree` and
//     `//outran:scratch` bind contracts to declarations, so they are
//     valid only in the doc comment of a function declaration or an
//     interface method
//
// Test files are included: the inventory that VET_BASELINE.json pins
// counts them, so they follow the same vocabulary. This pass accepts
// no justification directive — an invalid directive is always a bug.
func Directive() *Analyzer {
	a := &Analyzer{
		Name: "directive",
		Doc:  "errors on unknown, malformed or misplaced //outran: directives",
	}
	var known map[string]bool // built lazily: KnownDirectives() constructs analyzers
	a.Run = func(p *Pass) {
		if known == nil {
			known = map[string]bool{}
			for _, name := range KnownDirectives() {
				known[name] = true
			}
		}
		for _, file := range p.Pkg.Files {
			annotationSpots := annotationComments(file)
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					raw := rawDirectiveRe.FindStringSubmatch(c.Text)
					if raw == nil {
						continue
					}
					strict := directiveRe.FindStringSubmatch(c.Text)
					if strict == nil {
						p.Reportf(c.Pos(), "malformed outran directive %q; write //outran:<name> with no spaces", strings.TrimPrefix(c.Text, "//"))
						continue
					}
					name := strict[1]
					if !known[name] {
						p.Reportf(c.Pos(), "unknown outran directive %q; known: %s", name, strings.Join(KnownDirectives(), ", "))
						continue
					}
					if (name == TagAllocFree || name == TagScratch) && !annotationSpots[c] {
						p.Reportf(c.Pos(), "//outran:%s is a contract annotation; it must be in the doc comment of a function or interface method", name)
					}
				}
			}
		}
	}
	return a
}

// annotationComments collects the comments where contract annotations
// are allowed to bind: doc comments of function declarations and of
// named interface methods.
func annotationComments(file *ast.File) map[*ast.Comment]bool {
	spots := map[*ast.Comment]bool{}
	addDoc := func(doc *ast.CommentGroup) {
		if doc == nil {
			return
		}
		for _, c := range doc.List {
			spots[c] = true
		}
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			addDoc(d.Doc)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				it, ok := ts.Type.(*ast.InterfaceType)
				if !ok || it.Methods == nil {
					continue
				}
				for _, m := range it.Methods.List {
					if len(m.Names) > 0 {
						addDoc(m.Doc)
					}
				}
			}
		}
	}
	return spots
}
