// Package probetest wires a package's zero-alloc probe registry to
// its //outran:allocfree annotations. Each hot-path package declares
// a map from annotated function name (as analysis.TaggedFuncs renders
// it, e.g. "(*SRJF).Allocate") to an AllocsPerRun probe, and calls
// Run from a single test. Run fails when the registry and the
// annotations drift apart in either direction, so the annotation is
// the single source of truth for which functions are proven
// allocation-free at runtime.
package probetest

import (
	"sort"
	"testing"

	"outran/internal/analysis"
)

// Run checks that the keys of probes match the //outran:allocfree
// annotations in dir exactly, then runs every probe as a named
// subtest in sorted order.
func Run(t *testing.T, dir string, probes map[string]func(t *testing.T)) {
	t.Helper()
	names := make([]string, 0, len(probes))
	for n := range probes {
		names = append(names, n)
	}
	unprobed, stale, err := analysis.CoverageDiff(dir, analysis.TagAllocFree, names)
	if err != nil {
		t.Fatal(err)
	}
	if len(unprobed) > 0 {
		t.Errorf("//outran:allocfree functions without a zero-alloc probe: %v", unprobed)
	}
	if len(stale) > 0 {
		t.Errorf("zero-alloc probes naming no //outran:allocfree function: %v", stale)
	}
	sort.Strings(names)
	for _, name := range names {
		t.Run(name, probes[name])
	}
}
