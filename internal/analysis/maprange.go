package analysis

import (
	"go/ast"
	"go/types"
)

// MapRange flags `range` over a map in the determinism-critical
// packages. Go randomizes map iteration order on purpose, so any map
// range whose body's effects depend on visit order makes same-seed
// runs diverge — the exact failure mode that invalidates scheduler
// comparisons.
//
// Two shapes are accepted without justification:
//
//   - collect-only loops, whose body does nothing but append keys or
//     values to slices (the "collect then sort" fix pattern); and
//   - loops carrying an `//outran:orderfree` directive, asserting the
//     body is order-insensitive (e.g. zeroing every entry, or folding
//     with a commutative operation like min/sum).
func MapRange() *Analyzer {
	a := &Analyzer{
		Name:      "maprange",
		Doc:       "flags order-sensitive iteration over Go maps in simulation state paths",
		Directive: "orderfree",
		Scope:     DeterminismScope,
	}
	a.Run = func(p *Pass) {
		for _, file := range p.NonTestFiles() {
			ast.Inspect(file, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv := p.Pkg.Info.TypeOf(rs.X)
				if tv == nil {
					return true
				}
				if _, isMap := tv.Underlying().(*types.Map); !isMap {
					return true
				}
				if collectOnlyBody(rs.Body) {
					return true
				}
				if p.Justified(file, rs.Pos()) {
					return true
				}
				p.Reportf(rs.Pos(), "range over map %s iterates in randomized order; collect keys and sort, or justify with //outran:orderfree", types.TypeString(tv, types.RelativeTo(p.Pkg.Types)))
				return true
			})
		}
	}
	return a
}

// collectOnlyBody reports whether every statement of the loop body is
// a self-append (`xs = append(xs, …)`) — an order-insensitive
// collection that the caller is expected to sort.
func collectOnlyBody(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	for _, stmt := range body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		dst, ok := call.Args[0].(*ast.Ident)
		if !ok || dst.Name != lhs.Name {
			return false
		}
	}
	return true
}
