// Package analysis implements outran-vet, the repository's standing
// determinism and correctness gate. The simulator's headline claims
// (FCT distributions, ε-relaxation trade-offs) are only reproducible
// if every run with the same seed produces bit-identical schedules, so
// a small suite of custom static analyzers — built on the stdlib
// go/ast, go/parser and go/types packages, with zero external module
// dependencies — polices the code patterns that silently break
// run-to-run determinism:
//
//   - maprange: iteration over Go maps (randomized order) in
//     flow-state and scheduling paths
//   - wallclock: time.Now / time.Since leaking wall-clock time into
//     simulated time
//   - globalrand: the global math/rand stream instead of the seeded
//     per-scenario *rng.Source threading
//   - floateq: exact float ==/!= in scheduler metric code, where
//     ε-relaxation comparisons must use explicit tolerances
//
// A flagged site that is genuinely safe carries a justification
// directive comment (`//outran:orderfree`, `//outran:wallclock`, …)
// on its line, the line above, or the doc comment of the enclosing
// function; the analyzer then accepts it. Run the suite with
//
//	go run ./cmd/outran-vet ./...
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic at a source position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one static check run over a type-checked package.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in the
	// `//outran:<name>`-style justification directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Directive is the justification directive that silences this
	// analyzer at a site (without the `//outran:` prefix). Empty means
	// the analyzer accepts no justifications.
	Directive string
	// Scope restricts the analyzer to packages whose import path it
	// accepts. A nil Scope runs everywhere.
	Scope func(importPath string) bool
	// Run inspects one package and reports findings via the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// All is every package of the module under analysis (including
	// Pkg). Module-scoped passes — the hot-path contract checks, which
	// follow static calls across package boundaries — build their
	// cross-package indexes from it. Nil degrades to just Pkg.
	All []*Package

	findings *[]Finding
}

// Module returns the module-wide package view: All when populated,
// otherwise just the pass's own package.
func (p *Pass) Module() []*Package {
	if len(p.All) > 0 {
		return p.All
	}
	return []*Package{p.Pkg}
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// directiveRe matches outran justification directives. The directive
// must start the comment: `//outran:orderfree optional rationale`.
var directiveRe = regexp.MustCompile(`^//outran:([a-z]+)`)

// rawDirectiveRe matches anything that looks like an attempted outran
// directive, valid or not — the directive pass uses it to catch
// misspellings that directiveRe would silently skip.
var rawDirectiveRe = regexp.MustCompile(`^//\s*outran:\s*([^ \t]*)`)

// DirectiveInventory counts every `//outran:` directive (including
// test files and malformed attempts), keyed by root-relative file path
// and directive name. It is the machine-readable suppression inventory
// the committed VET_BASELINE.json pins: adding or removing a directive
// anywhere in the tree changes the inventory and must show up as an
// explicit baseline diff.
func DirectiveInventory(root string, pkgs []*Package) map[string]map[string]int {
	inv := map[string]map[string]int{}
	for _, pkg := range pkgs {
		for i, f := range pkg.Files {
			name := pkg.Filenames[i]
			if abs, err := filepath.Abs(name); err == nil {
				name = abs
			}
			if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = filepath.ToSlash(rel)
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := rawDirectiveRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					if inv[name] == nil {
						inv[name] = map[string]int{}
					}
					inv[name][m[1]]++
				}
			}
		}
	}
	return inv
}

// directives indexes the justification comments of one file: the set
// of directive names present on each source line.
type directives map[int]map[string]bool

// fileDirectives scans a file's comments for outran directives.
func fileDirectives(fset *token.FileSet, f *ast.File) directives {
	d := directives{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := directiveRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			line := fset.Position(c.Pos()).Line
			if d[line] == nil {
				d[line] = map[string]bool{}
			}
			d[line][m[1]] = true
		}
	}
	return d
}

// Justified reports whether the analyzer's directive appears on the
// node's line, the line immediately above it, or in the doc comment of
// the function enclosing the node. file must be the *ast.File that
// contains pos.
func (p *Pass) Justified(file *ast.File, pos token.Pos) bool {
	name := p.Analyzer.Directive
	if name == "" {
		return false
	}
	return p.Pkg.justifiedAtLine(file, p.Pkg.Fset.Position(pos).Line, name)
}

// justifiedAtLine reports whether directive name appears on the given
// source line, the line above it, or in the doc comment of the
// function declaration spanning that line. It is the shared
// justification rule behind Pass.Justified and the escape-analysis
// check (which only has file:line positions to work from).
func (pkg *Package) justifiedAtLine(file *ast.File, line int, name string) bool {
	d := pkg.directivesOf(file)
	if d[line][name] || d[line-1][name] {
		return true
	}
	// Function-level justification via the doc comment.
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Doc == nil {
			continue
		}
		start := pkg.Fset.Position(fn.Pos()).Line
		end := pkg.Fset.Position(fn.End()).Line
		if line < start || line > end {
			continue
		}
		for _, c := range fn.Doc.List {
			if m := directiveRe.FindStringSubmatch(c.Text); m != nil && m[1] == name {
				return true
			}
		}
	}
	return false
}

// NonTestFiles yields the package's non-test files with their names.
func (p *Pass) NonTestFiles() []*ast.File {
	var out []*ast.File
	for i, f := range p.Pkg.Files {
		if strings.HasSuffix(p.Pkg.Filenames[i], "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// ScopeUnder returns a Scope accepting import paths equal to or below
// any of the given prefixes (path-segment aware).
func ScopeUnder(prefixes ...string) func(string) bool {
	return func(importPath string) bool {
		for _, p := range prefixes {
			if importPath == p || strings.HasPrefix(importPath, p+"/") {
				return true
			}
		}
		return false
	}
}

// DeterminismScope covers the packages whose execution order feeds the
// simulated schedule: everything on the per-TTI and per-packet paths.
var DeterminismScope = ScopeUnder(
	"outran/internal/sim",
	"outran/internal/mac",
	"outran/internal/core",
	"outran/internal/rlc",
	"outran/internal/pdcp",
	"outran/internal/ran",
	"outran/internal/phy",
	"outran/internal/channel",
	"outran/internal/fault",
	"outran/internal/obs",
	"outran/internal/deploy",
)

// MetricScope covers the scheduler metric code where ε-relaxation
// comparisons live.
var MetricScope = ScopeUnder(
	"outran/internal/mac",
	"outran/internal/core",
)

// Annotation directives mark declarations as carrying a checked
// contract (as opposed to justification directives, which silence a
// finding at a site):
//
//   - `//outran:allocfree` on a function's doc comment asserts the
//     function performs no heap allocation in steady state; the
//     allocfree pass and the compiler escape-analysis check verify it
//     along with everything it statically calls within the module.
//   - `//outran:scratch` on a function's (or interface method's) doc
//     comment asserts the return value aliases callee-owned scratch;
//     the scratchown pass checks every call site for unsafe retention.
const (
	TagAllocFree = "allocfree"
	TagScratch   = "scratch"
)

// KnownDirectives is the complete `//outran:` vocabulary: every
// justification directive accepted by an analyzer plus the two
// contract annotations. The directive pass rejects anything else, so
// a misspelled suppression is a build error instead of a silently
// disabled check.
func KnownDirectives() []string {
	names := []string{TagAllocFree, TagScratch}
	for _, a := range DefaultAnalyzers() {
		if a.Directive != "" {
			names = append(names, a.Directive)
		}
	}
	sort.Strings(names)
	return names
}

// DefaultAnalyzers returns the suite outran-vet runs, in stable order.
// The directive pass runs last so its vocabulary check covers every
// other analyzer's suppressions.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		MapRange(),
		WallClock(),
		GlobalRand(),
		FloatEq(),
		AllocFree(),
		ScratchOwn(),
		SimTime(),
		Directive(),
	}
}

// RunAnalyzers applies the analyzers to the packages and returns all
// findings sorted by file, line and column.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Scope != nil && !a.Scope(pkg.ImportPath) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, All: pkgs, findings: &findings}
			a.Run(pass)
		}
	}
	sortFindings(findings)
	return findings
}

// sortFindings orders findings by file, line, column and analyzer —
// the deterministic report order the CI gate diffs.
func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		fi, fj := findings[i], findings[j]
		if fi.Pos.Filename != fj.Pos.Filename {
			return fi.Pos.Filename < fj.Pos.Filename
		}
		if fi.Pos.Line != fj.Pos.Line {
			return fi.Pos.Line < fj.Pos.Line
		}
		if fi.Pos.Column != fj.Pos.Column {
			return fi.Pos.Column < fj.Pos.Column
		}
		return fi.Analyzer < fj.Analyzer
	})
}
