package analysis

import "strconv"

// GlobalRand flags imports of math/rand and math/rand/v2. The global
// rand stream is process-wide state: draws from one subsystem perturb
// every other, and rand/v2's global is seeded randomly, so results
// stop being a function of the scenario seed. All randomness must
// thread the per-scenario *rng.Source (internal/rng), Fork()ed per
// subsystem. A deliberate exception (e.g. generating a non-result
// artifact) carries `//outran:globalrand` on the import.
func GlobalRand() *Analyzer {
	a := &Analyzer{
		Name:      "globalrand",
		Doc:       "flags math/rand imports in favor of the seeded per-scenario *rng.Source",
		Directive: "globalrand",
	}
	a.Run = func(p *Pass) {
		for _, file := range p.NonTestFiles() {
			for _, imp := range file.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path != "math/rand" && path != "math/rand/v2" {
					continue
				}
				if p.Justified(file, imp.Pos()) {
					continue
				}
				p.Reportf(imp.Pos(), "import of %s: thread the scenario-seeded *rng.Source (internal/rng) instead, or justify with //outran:globalrand", path)
			}
		}
	}
	return a
}
