// Package fixture exercises the scratchown analyzer: results of
// //outran:scratch functions must not be retained — stored to fields,
// globals or collections, captured by closures or goroutines, or
// returned from un-annotated functions — without an intervening
// Clone() or an //outran:scratchsafe justification.
package fixture

// Alloc aliases scheduler-owned scratch.
type Alloc struct{ IDs []int }

// Clone returns a detached copy safe to retain.
func (a *Alloc) Clone() *Alloc {
	c := &Alloc{IDs: make([]int, len(a.IDs))}
	copy(c.IDs, a.IDs)
	return c
}

// Sched owns the scratch its Allocate hands out.
type Sched struct {
	scratch Alloc
	saved   *Alloc
}

// Allocate returns scheduler-owned scratch, valid until the next call.
//
//outran:scratch
func (s *Sched) Allocate(n int) *Alloc {
	s.scratch.IDs = s.scratch.IDs[:0]
	for i := 0; i < n; i++ {
		s.scratch.IDs = append(s.scratch.IDs, i)
	}
	return &s.scratch
}

// Source shows the annotation on an interface method: the contract
// survives dynamic dispatch.
type Source interface {
	// Status aliases internal scratch.
	//
	//outran:scratch
	Status() *Alloc
}

var global *Alloc

func use(*Alloc) {}

// misuse demonstrates every retention class the pass flags.
func misuse(s *Sched, out []*Alloc, src Source) []*Alloc {
	s.saved = s.Allocate(1)            // want:scratchown
	global = s.Allocate(2)             // want:scratchown
	a := s.Allocate(3)                 // tainted local: fine by itself
	out = append(out, a)               // want:scratchown
	go use(a)                          // want:scratchown
	defer use(a)                       // want:scratchown
	hold := func() *Alloc { return a } // want:scratchown
	b := src.Status()
	out[0] = b // want:scratchown
	_ = hold
	return out
}

// leak returns scratch from a function that is not itself annotated,
// silently widening the validity window.
func leak(s *Sched) *Alloc {
	return s.Allocate(4) // want:scratchown
}

// wrap is annotated //outran:scratch, so forwarding the scratch is the
// contract propagating to wrap's own callers — no finding.
//
//outran:scratch
func wrap(s *Sched) *Alloc {
	return s.Allocate(5)
}

// keep detaches with Clone before retaining: no findings.
func keep(s *Sched) *Alloc {
	a := s.Allocate(6)
	use(a)
	return a.Clone()
}

// window retains deliberately inside the documented validity window;
// the justification records why.
func window(s *Sched) {
	//outran:scratchsafe consumed before the next Allocate in the same TTI
	s.saved = s.Allocate(7)
	use(s.saved)
}
