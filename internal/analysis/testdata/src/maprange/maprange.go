// Package fixture exercises the maprange analyzer: order-sensitive
// map iteration is flagged, collect-then-sort loops and justified
// order-free loops are accepted, and slice ranges are ignored.
package fixture

import "sort"

type counters map[string]int

// positives reads values in iteration order — the classic
// nondeterminism bug.
func positives(m counters) []string {
	var out []string
	for k, v := range m { // want:maprange
		if v > 0 {
			out = append(out, k)
		}
	}
	return out
}

// firstKey is order-sensitive even without a body side effect chain:
// whichever key the runtime yields first wins.
func firstKey(m counters) string {
	for k := range m { // want:maprange
		return k
	}
	return ""
}

// sortedKeys is the fix pattern: a collect-only loop (accepted) whose
// caller sorts before iterating.
func sortedKeys(m counters) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// reset zeroes every entry; visit order cannot matter, and the
// directive says so.
func reset(m counters) {
	//outran:orderfree every entry is overwritten with the same value
	for k := range m {
		m[k] = 0
	}
}

// total folds with a commutative operation, justified on the same line.
func total(m counters) int {
	s := 0
	for _, v := range m { //outran:orderfree sum is commutative
		s += v
	}
	return s
}

// sliceSum ranges over a slice: never flagged.
func sliceSum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
