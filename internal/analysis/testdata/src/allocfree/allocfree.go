// Package fixture exercises the allocfree analyzer: every allocation
// construct inside an //outran:allocfree function (or a function it
// statically calls) is flagged unless justified with //outran:allocok.
package fixture

// scratch is reused storage, grown only off the hot path.
var scratch []int

// sink takes an interface parameter, forcing callers to box.
func sink(v interface{}) {}

// hot is the annotated hot path: each construct below is a finding.
//
//outran:allocfree
func hot(n int, xs []int) int {
	buf := make([]int, n)         // want:allocfree
	p := new(int)                 // want:allocfree
	xs = append(xs, n)            // want:allocfree
	fn := func() int { return n } // want:allocfree
	sink(n)                       // want:allocfree
	_ = any(n)                    // want:allocfree
	if n < 0 {
		panic(n) // want:allocfree
	}
	_ = buf
	_ = p
	return fn() + helper(n) + len(xs)
}

// helper is un-annotated but statically called from hot, so it is in
// the checked closure.
func helper(n int) int {
	ys := make([]int, 0, n) // want:allocfree
	return len(ys)
}

// grow shows the justified amortized pattern: capacity-guarded scratch
// growth is allocation-free in steady state.
//
//outran:allocfree
func grow(n int) {
	if cap(scratch) < n {
		//outran:allocok amortized scratch growth; steady state reuses capacity
		scratch = make([]int, n)
	}
	scratch = scratch[:n]
}

// captureFree shows that a capture-free literal is accepted.
//
//outran:allocfree
func captureFree() int {
	f := func() int { return 1 }
	return f()
}

// cold is neither annotated nor called from an annotated function:
// it may allocate freely.
func cold(n int) []int {
	return make([]int, n)
}
