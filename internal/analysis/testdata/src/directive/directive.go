// Package fixture exercises the directive analyzer: unknown names,
// malformed spellings and misplaced contract annotations are all
// findings, because each one means a check silently did not apply.
package fixture

//outran:orderfre typo of orderfree; silently suppresses nothing — want:directive
var lookup = map[int]int{}

// spaced carries the malformed spelling the justification scanner
// deliberately does not match.
// outran: wallclock this never justified anything — want:directive
func spaced() {}

// outran: empty name is malformed too — want:directive
var empty int

//outran:allocfree annotation on a var binds to nothing — want:directive
var misplacedTag int

// ok carries a properly placed contract annotation.
//
//outran:allocfree
func ok() {}

// Source shows the other valid annotation spot: an interface method.
type Source interface {
	//outran:scratch
	Status() int
}

// justified shows a correctly spelled suppression: not a finding here
// (whether it silences anything is the owning analyzer's business).
func justified() map[int]int {
	//outran:orderfree drained into a sorted slice by the caller
	return lookup
}
