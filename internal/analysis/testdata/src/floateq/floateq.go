// Package fixture exercises the floateq analyzer: exact float ==/!=
// is flagged in metric code, tolerance comparisons and justified
// sentinel checks are accepted, and integer equality is ignored.
package fixture

const eps = 1e-9

// metricEqual compares two scheduler metrics exactly — rounding noise
// makes this diverge between algebraically equal computations.
func metricEqual(a, b float64) bool {
	return a == b // want:floateq
}

// changed is the != twin.
func changed(m float64) bool {
	return m != 0.0 // want:floateq
}

// close32 shows float32 operands are caught too.
func close32(a, b float32) bool {
	return a == b // want:floateq
}

// tolerant is the fix pattern: an explicit ε window.
func tolerant(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

// unservedSentinel compares against the exact value this code itself
// assigned, which is justified.
func unservedSentinel(tput float64) bool {
	//outran:floateq -1 is a stored sentinel, not a computed metric
	return tput == -1
}

// intEqual is not a float comparison.
func intEqual(a, b int) bool {
	return a == b
}
