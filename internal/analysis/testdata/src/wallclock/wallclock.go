// Package fixture exercises the wallclock analyzer: time.Now and
// time.Since are flagged unless the surrounding function's doc (or the
// call site itself) carries an //outran:wallclock justification.
package fixture

import "time"

// stamp leaks the wall clock into whatever consumes it.
func stamp() time.Time {
	return time.Now() // want:wallclock
}

// elapsedSince is equally order-of-host-speed dependent.
func elapsedSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want:wallclock
}

// measure times a function's real CPU cost: wall-clock use is the
// point, and the function-level directive exempts both calls.
//
//outran:wallclock measures real execution cost, not simulated time
func measure(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// lineLevel shows a call-site justification.
func lineLevel() time.Time {
	//outran:wallclock log banner timestamp only; never enters results
	return time.Now()
}

// parseOK uses the time package without touching the wall clock.
func parseOK(s string) (time.Time, error) {
	return time.Parse(time.RFC3339, s)
}
