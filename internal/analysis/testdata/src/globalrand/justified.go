package fixture

import (
	//outran:globalrand jitter for a log banner; never feeds results
	crand "math/rand/v2"
)

// banner draws decoration only; the justification on the import
// records why the global stream is tolerable here.
func banner() int {
	return crand.IntN(10)
}
