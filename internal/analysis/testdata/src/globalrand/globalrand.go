// Package fixture exercises the globalrand analyzer: math/rand and
// math/rand/v2 imports are flagged unless justified.
package fixture

import (
	"math/rand" // want:globalrand
)

// roll uses the global stream: draws here perturb every other
// subsystem and are not a function of the scenario seed.
func roll() int {
	return rand.Intn(6)
}
