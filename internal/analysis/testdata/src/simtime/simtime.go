// Package fixture exercises the simtime analyzer: real timers,
// environment reads and sync/atomic are flagged unless justified with
// //outran:simtime.
package fixture

import (
	"os"
	"sync/atomic"
	"time"
)

var hits atomic.Int64 // want:simtime

// delay couples execution to the host clock three different ways.
func delay() {
	time.Sleep(time.Millisecond) // want:simtime
	<-time.After(time.Second)    // want:simtime
	t := time.NewTimer(0)        // want:simtime
	t.Stop()
}

// fromEnv makes behavior depend on the process environment.
func fromEnv() string {
	return os.Getenv("OUTRAN_MODE") // want:simtime
}

// count uses a host-scheduled atomic.
func count() {
	atomic.AddInt64(new(int64), 1) // want:simtime
}

// progress drives a real UI ticker; the justification records that it
// never feeds simulated results.
func progress() {
	//outran:simtime CLI progress display only; never enters results
	tick := time.NewTicker(time.Second)
	tick.Stop()
}

// formatting uses the time package without touching the host clock.
func formatting(d time.Duration) string {
	return d.String()
}
