package analysis

import (
	"go/ast"
	"go/types"
)

// WallClock flags time.Now and time.Since. Simulated time comes from
// sim.Engine.Now(); wall-clock reads anywhere else couple results to
// host speed and scheduling, so same-seed runs stop being
// reproducible. Code that legitimately measures real CPU cost (the
// overhead experiments, the bench CLI's progress timer) is exempted
// with an `//outran:wallclock` directive.
func WallClock() *Analyzer {
	a := &Analyzer{
		Name:      "wallclock",
		Doc:       "flags time.Now/time.Since outside justified real-time measurement code",
		Directive: "wallclock",
	}
	a.Run = func(p *Pass) {
		for _, file := range p.NonTestFiles() {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if sel.Sel.Name != "Now" && sel.Sel.Name != "Since" {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
				if !ok || pn.Imported().Path() != "time" {
					return true
				}
				if p.Justified(file, sel.Pos()) {
					return true
				}
				p.Reportf(sel.Pos(), "time.%s reads the wall clock; use the sim.Engine clock, or justify real-time measurement with //outran:wallclock", sel.Sel.Name)
				return true
			})
		}
	}
	return a
}
