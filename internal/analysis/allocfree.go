package analysis

import (
	"go/ast"
	"go/types"
)

// AllocFree verifies the static half of the `//outran:allocfree`
// contract: a function so annotated — and everything it statically
// calls within the module — must contain no obvious allocation syntax.
// Flagged constructs:
//
//   - make and new (direct heap requests)
//   - append (may grow its backing array)
//   - function literals that capture variables (closure allocation)
//   - interface boxing: a concrete value passed where an interface is
//     expected (including panic's argument) or converted to an
//     interface type
//
// Amortized patterns — capacity-guarded scratch growth, cold error and
// panic paths — are justified per site with `//outran:allocok` and a
// rationale. What this pass cannot see (calls through function values
// or interface methods, allocations the compiler introduces) is
// covered dynamically by the AllocsPerRun suites and statically by the
// escape-analysis check (RunEscapeCheck), which drives the compiler's
// own `-gcflags=-m` verdicts over the same annotated bodies.
func AllocFree() *Analyzer {
	a := &Analyzer{
		Name:      "allocfree",
		Doc:       "verifies //outran:allocfree functions (and their static callees) contain no allocation syntax",
		Directive: "allocok",
	}
	var cache indexCache
	a.Run = func(p *Pass) {
		idx := cache.get(p.Module())
		for _, fi := range idx.checkedIn(p.Pkg) {
			checkAllocFreeBody(p, fi)
		}
	}
	return a
}

// checkAllocFreeBody scans one closure member's body for allocation
// syntax.
func checkAllocFreeBody(p *Pass, fi *funcInfo) {
	if fi.decl.Body == nil {
		return
	}
	ctx := ""
	if fi.Name() != fi.root {
		ctx = " (in the //outran:allocfree closure of " + fi.root + ")"
	}
	report := func(n ast.Node, format string, args ...interface{}) {
		if p.Justified(fi.file, n.Pos()) {
			return
		}
		p.Reportf(n.Pos(), format+ctx+"; justify amortized or cold-path allocation with //outran:allocok", args...)
	}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			if capturesOuter(p.Pkg, fi.decl, node) {
				report(node, "closure captures variables and may heap-allocate in %s", fi.Name())
			}
			// Still scan the literal's body (it runs on the same path).
			return true
		case *ast.CallExpr:
			checkAllocCall(p, fi, node, report)
		}
		return true
	})
}

// checkAllocCall classifies one call inside an allocfree body.
func checkAllocCall(p *Pass, fi *funcInfo, call *ast.CallExpr, report func(ast.Node, string, ...interface{})) {
	// Builtin allocators.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := p.Pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call, "make allocates in %s", fi.Name())
			case "new":
				report(call, "new allocates in %s", fi.Name())
			case "append":
				report(call, "append may grow its backing array in %s", fi.Name())
			case "panic":
				if len(call.Args) == 1 && boxes(p.Pkg, call.Args[0]) {
					report(call.Args[0], "panic argument boxes into an interface in %s", fi.Name())
				}
			}
			return
		}
	}
	tv, ok := p.Pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	// Explicit conversion to an interface type: any(x), io.Reader(r).
	if tv.IsType() {
		if len(call.Args) == 1 && types.IsInterface(tv.Type) && boxes(p.Pkg, call.Args[0]) {
			report(call, "conversion boxes %s into %s in %s",
				typeStr(p.Pkg, p.Pkg.Info.TypeOf(call.Args[0])), typeStr(p.Pkg, tv.Type), fi.Name())
		}
		return
	}
	// Interface-typed parameters box concrete arguments.
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if ok && call.Ellipsis == 0 {
		params := sig.Params()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= params.Len()-1:
				if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
					pt = sl.Elem()
				}
			case i < params.Len():
				pt = params.At(i).Type()
			}
			if pt != nil && types.IsInterface(pt) && boxes(p.Pkg, arg) {
				report(arg, "argument boxes %s into %s in %s",
					typeStr(p.Pkg, p.Pkg.Info.TypeOf(arg)), typeStr(p.Pkg, pt), fi.Name())
			}
		}
	}
}

// boxes reports whether passing arg where an interface is expected
// performs an interface conversion that may allocate: the argument's
// static type is concrete (and not untyped nil).
func boxes(pkg *Package, arg ast.Expr) bool {
	at := pkg.Info.TypeOf(arg)
	if at == nil || types.IsInterface(at) {
		return false
	}
	if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

// typeStr renders a type relative to the package under analysis.
func typeStr(pkg *Package, t types.Type) string {
	if t == nil {
		return "?"
	}
	return types.TypeString(t, types.RelativeTo(pkg.Types))
}

// capturesOuter reports whether the function literal references a
// variable declared in the enclosing declaration outside the literal —
// the captures that force the closure (and captured locals) onto the
// heap when it escapes.
func capturesOuter(pkg *Package, decl *ast.FuncDecl, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= decl.Pos() && v.Pos() < lit.Pos() {
			captured = true
		}
		return true
	})
	return captured
}
