package fault

import (
	"reflect"
	"testing"

	"outran/internal/ran"
	"outran/internal/sim"
)

// smallCell is the scaled-down cell every fault test runs on.
func smallCell(sched ran.SchedulerKind, mode ran.RLCMode) ran.Config {
	cfg := ran.DefaultLTEConfig()
	cfg.NumUEs = 6
	cfg.Grid.NumRB = 25
	cfg.Scheduler = sched
	cfg.RLC = mode
	return cfg
}

func TestPlanDeterminism(t *testing.T) {
	pc := PlanConfig{NumUEs: 10, Horizon: 2 * sim.Second, Intensity: 1}
	p1 := NewPlan(99, pc)
	p2 := NewPlan(99, pc)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("same seed produced different plans")
	}
	if len(p1) == 0 {
		t.Fatal("intensity-1 plan over 2 s is empty")
	}
	for i := 1; i < len(p1); i++ {
		if p1[i].Start < p1[i-1].Start {
			t.Fatalf("plan not sorted at %d: %v after %v", i, p1[i], p1[i-1])
		}
	}
	if p3 := NewPlan(100, pc); reflect.DeepEqual(p1, p3) {
		t.Fatal("different seeds produced identical plans")
	}
	if p := NewPlan(99, PlanConfig{NumUEs: 10, Horizon: sim.Second}); p != nil {
		t.Fatal("zero intensity should yield an empty plan")
	}
}

// TestChaosDeterminism is satellite 4: the PR 1 same-seed gates
// extended to chaos runs. Identical fault schedule + seed must yield
// identical FCT traces, stats, monitor reports, and injector stats.
func TestChaosDeterminism(t *testing.T) {
	for _, sched := range []ran.SchedulerKind{ran.SchedPF, ran.SchedOutRAN} {
		sched := sched
		t.Run(string(sched), func(t *testing.T) {
			run := func() Result {
				res, err := Run(RunConfig{
					Cell:      smallCell(sched, ran.AM),
					Load:      0.6,
					Duration:  800 * sim.Millisecond,
					Drain:     4 * sim.Second,
					Intensity: 1,
					Seed:      42,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			r1, r2 := run(), run()
			if !reflect.DeepEqual(r1.Plan, r2.Plan) {
				t.Fatal("fault plans differ between same-seed runs")
			}
			if len(r1.Samples) == 0 {
				t.Fatal("no flows completed under chaos")
			}
			if len(r1.Samples) != len(r2.Samples) {
				t.Fatalf("completed %d vs %d flows", len(r1.Samples), len(r2.Samples))
			}
			for i := range r1.Samples {
				if r1.Samples[i] != r2.Samples[i] {
					t.Fatalf("FCT trace diverges at flow %d: %+v vs %+v", i, r1.Samples[i], r2.Samples[i])
				}
			}
			if r1.Stats != r2.Stats {
				t.Fatalf("stats differ:\n run 1: %+v\n run 2: %+v", r1.Stats, r2.Stats)
			}
			if r1.Injector != r2.Injector {
				t.Fatalf("injector stats differ:\n run 1: %+v\n run 2: %+v", r1.Injector, r2.Injector)
			}
			m1, m2 := r1.Monitor, r2.Monitor
			if m1.Checks != m2.Checks || m1.Deliveries != m2.Deliveries || m1.Violated != m2.Violated {
				t.Fatalf("monitor reports differ:\n run 1: %+v\n run 2: %+v", m1, m2)
			}
		})
	}
}

// TestMonitorCleanBaseline runs the monitor with no injection over
// both RLC modes and both schedulers: a fault-free simulation must not
// trip a single invariant.
func TestMonitorCleanBaseline(t *testing.T) {
	for _, mode := range []ran.RLCMode{ran.UM, ran.AM} {
		for _, sched := range []ran.SchedulerKind{ran.SchedPF, ran.SchedOutRAN} {
			mode, sched := mode, sched
			t.Run(mode.String()+"/"+string(sched), func(t *testing.T) {
				res, err := Run(RunConfig{
					Cell:     smallCell(sched, mode),
					Load:     0.6,
					Duration: 600 * sim.Millisecond,
					Drain:    4 * sim.Second,
					Seed:     7,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Monitor.Clean() {
					t.Fatalf("baseline run violated invariants: %v", res.Monitor.Violations)
				}
				if res.Monitor.Checks == 0 || res.Monitor.Deliveries == 0 {
					t.Fatalf("monitor observed nothing: %+v", res.Monitor)
				}
				if res.Stats.Reestablishments != 0 || res.Injector != (InjectorStats{}) {
					t.Fatalf("baseline run injected faults: %+v %+v", res.Stats, res.Injector)
				}
			})
		}
	}
}

// TestChaosSweepNoViolations is the multi-seed acceptance gate in
// miniature: randomized fault schedules across seeds and schedulers,
// AM mode, with the monitor on — zero invariant violations, and the
// faults must demonstrably bite (injections observed, RLFs performed).
func TestChaosSweepNoViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed chaos sweep")
	}
	var agg InjectorStats
	var reest uint64
	// Whether a fault class bites inside a short window is seed-luck;
	// these seeds were picked so every class demonstrably fires under
	// the workload engine's arrival stream.
	for _, sched := range []ran.SchedulerKind{ran.SchedPF, ran.SchedOutRAN} {
		for seed := uint64(10); seed <= 13; seed++ {
			res, err := Run(RunConfig{
				Cell:      smallCell(sched, ran.AM),
				Load:      0.6,
				Duration:  800 * sim.Millisecond,
				Drain:     4 * sim.Second,
				Intensity: 1.5,
				Seed:      seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Monitor.Clean() {
				t.Fatalf("%s seed %d: invariant violations: %v", sched, seed, res.Monitor.Violations)
			}
			agg.CQIDropped += res.Injector.CQIDropped
			agg.HARQFlipped += res.Injector.HARQFlipped
			agg.PDUsDropped += res.Injector.PDUsDropped
			agg.BackhaulDropped += res.Injector.BackhaulDropped
			agg.RLFs += res.Injector.RLFs
			agg.ForcedRLFs += res.Injector.ForcedRLFs
			reest += res.Stats.Reestablishments
		}
	}
	if agg.CQIDropped == 0 || agg.HARQFlipped == 0 || agg.PDUsDropped == 0 {
		t.Fatalf("chaos did not bite: %+v", agg)
	}
	if reest == 0 {
		t.Fatalf("no re-establishment exercised across the sweep: %+v", agg)
	}
}

// TestForceRLFReestablish pins the re-establishment path directly: a
// single ForceRLF event mid-run must re-anchor the UE (entities
// rebuilt, flow-state preserved) with the monitor staying clean and
// traffic still completing.
func TestForceRLFReestablish(t *testing.T) {
	cfg := smallCell(ran.SchedOutRAN, ran.AM)
	cell, err := ran.NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(cell)
	inj := NewInjector(cell, 5)
	plan := Plan{{Kind: ForceRLF, UE: 0, Start: 100 * sim.Millisecond}}
	Attach(cell, plan, inj, mon)

	done := 0
	for i := 0; i < 4; i++ {
		if err := cell.StartFlow(0, 200_000, ran.FlowOptions{
			OnComplete: func(sim.Time) { done++ },
		}); err != nil {
			t.Fatal(err)
		}
	}
	cell.Run(10 * sim.Second)

	if got := cell.Reestablishments(); got != 1 {
		t.Fatalf("reestablishments = %d, want 1", got)
	}
	if inj.Stats().ForcedRLFs != 1 {
		t.Fatalf("forced RLFs = %d, want 1", inj.Stats().ForcedRLFs)
	}
	if done != 4 {
		t.Fatalf("only %d/4 flows completed after re-establishment", done)
	}
	if rep := mon.Finalize(); !rep.Clean() {
		t.Fatalf("monitor violations after re-establishment: %v", rep.Violations)
	}
}

// TestNaturalRLFFromPDULoss drives the full satellite-1 signal path at
// cell level: a sustained 100% RLC PDU loss burst makes the AM
// transmitter exhaust maxRetx, every abandonment is surfaced in
// ran.Stats (AMDeliveryFailures), the failure streak trips a natural
// radio-link failure, and after the burst lifts traffic completes with
// the monitor clean.
func TestNaturalRLFFromPDULoss(t *testing.T) {
	cfg := smallCell(ran.SchedPF, ran.AM)
	cell, err := ran.NewCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(cell)
	inj := NewInjector(cell, 3)
	// One abandonment takes ~8 poll-retransmit cycles, so a 1.5 s burst
	// yields only a couple; declare RLF on the first.
	inj.RLFThreshold = 1
	plan := Plan{{Kind: PDULoss, UE: 0, Start: 20 * sim.Millisecond,
		Duration: 1500 * sim.Millisecond, Magnitude: 1.0}}
	Attach(cell, plan, inj, mon)

	done := 0
	if err := cell.StartFlow(0, 300_000, ran.FlowOptions{
		OnComplete: func(sim.Time) { done++ },
	}); err != nil {
		t.Fatal(err)
	}
	cell.Run(20 * sim.Second)

	st := cell.CollectStats()
	if st.AMAbandoned == 0 {
		t.Fatal("sustained PDU loss never exhausted maxRetx")
	}
	if st.AMDeliveryFailures != st.AMAbandoned {
		t.Fatalf("stats: %d abandoned but %d delivery failures signalled",
			st.AMAbandoned, st.AMDeliveryFailures)
	}
	if inj.Stats().RLFs == 0 || st.Reestablishments == 0 {
		t.Fatalf("abandonment streak never tripped a natural RLF: inj=%+v stats=%+v",
			inj.Stats(), st)
	}
	if done != 1 {
		t.Fatal("flow never completed after the loss burst lifted")
	}
	if rep := mon.Finalize(); !rep.Clean() {
		t.Fatalf("invariant violations: %v", rep.Violations)
	}
}
