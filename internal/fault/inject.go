package fault

import (
	"outran/internal/ran"
	"outran/internal/rlc"
	"outran/internal/rng"
	"outran/internal/sim"
)

// DefaultRLFThreshold is how many AM delivery failures (PDUs abandoned
// past maxRetx) a UE accumulates before the injector declares a
// radio-link failure and re-establishes it — the natural RLF path, as
// opposed to a ForceRLF plan event.
const DefaultRLFThreshold = 4

// InjectorStats counts what the injector actually did — useful both
// for reports and for the determinism gates (same seed, same counts).
type InjectorStats struct {
	CQIDropped      uint64
	HARQFlipped     uint64
	PDUsDropped     uint64
	BackhaulDropped uint64
	RLFs            uint64 // natural (threshold) radio-link failures
	ForcedRLFs      uint64 // plan-scheduled ForceRLF events
}

// Injector owns the mutable fault state: which plan events are active
// right now, folded into per-UE accumulators the hooks read. All
// mutation happens on the event loop via scheduled apply/revert
// events, so hook reads never race and runs reproduce exactly.
type Injector struct {
	cell *ran.Cell
	r    *rng.Source

	// RLFThreshold overrides DefaultRLFThreshold when > 0.
	RLFThreshold int

	// plan is the schedule the pending apply/revert events index into;
	// the external-rebuild hook re-derives each pending closure from it
	// on snapshot restore.
	plan Plan

	fadeDB    []float64 // per-UE sum of active fade magnitudes (dB)
	cqiBlack  []int     // per-UE count of active CQI blackouts
	harqProb  []float64 // per-UE sum of active flip probabilities
	pduProb   []float64 // per-UE sum of active drop probabilities
	bhExtraMs float64   // sum of active backhaul delay magnitudes (ms)
	bhOutage  int       // count of active backhaul outages

	failStreak []int  // per-UE AM delivery failures since last RLF
	rlfPending []bool // re-establishment scheduled but not yet run

	stats InjectorStats
}

// NewInjector builds an injector for the cell, drawing probabilistic
// decisions (flip/drop coin tosses, backhaul jitter) from its own
// stream seeded with seed.
func NewInjector(cell *ran.Cell, seed uint64) *Injector {
	n := cell.Config().NumUEs
	return &Injector{
		cell:       cell,
		r:          rng.New(seed),
		fadeDB:     make([]float64, n),
		cqiBlack:   make([]int, n),
		harqProb:   make([]float64, n),
		pduProb:    make([]float64, n),
		failStreak: make([]int, n),
		rlfPending: make([]bool, n),
	}
}

// Stats returns what the injector has done so far.
func (in *Injector) Stats() InjectorStats { return in.stats }

// External-event key space: plan transitions are keyed by
// (plan index << 1 | phase) and deferred RLF re-establishments by
// (rlfKeyBit | ue). The keys are what a restored run hands back to
// rebuildExternal to reconstruct the pending closures.
const (
	phaseApply  = 0
	phaseRevert = 1
	rlfKeyBit   = uint64(1) << 63
)

// Schedule installs the plan's apply/revert transitions on the cell's
// engine and registers the injector as the cell's external-event
// rebuilder. Call before the first Run. WorkerCrash events are
// deployment-level directives and are not scheduled on the engine.
func (in *Injector) Schedule(plan Plan) {
	in.PrepareResume(plan)
	for i, ev := range plan {
		if ev.Kind == WorkerCrash {
			continue
		}
		ev := ev
		in.cell.ScheduleExternal(ev.Start, uint64(i)<<1|phaseApply, func() { in.apply(ev) })
		if ev.Kind != ForceRLF {
			in.cell.ScheduleExternal(ev.End(), uint64(i)<<1|phaseRevert, func() { in.revert(ev) })
		}
	}
}

// PrepareResume installs the plan and the external-rebuild hook
// WITHOUT scheduling anything — the restore path, where the pending
// transitions come back from the snapshot's registry and only their
// closures must be re-derived. The plan must be the original run's
// (re-derive it from the same seed).
func (in *Injector) PrepareResume(plan Plan) {
	in.plan = plan
	in.cell.SetExternalRebuild(in.rebuildExternal)
}

// rebuildExternal maps a pending external-event key back to its
// closure; nil for keys outside the injector's space.
func (in *Injector) rebuildExternal(key uint64) func() {
	if key&rlfKeyBit != 0 {
		ue := int(key &^ rlfKeyBit)
		if ue < 0 || ue >= len(in.rlfPending) {
			return nil
		}
		return func() { in.reestablish(ue) }
	}
	i := int(key >> 1)
	if i < 0 || i >= len(in.plan) {
		return nil
	}
	ev := in.plan[i]
	if key&1 == phaseRevert {
		return func() { in.revert(ev) }
	}
	return func() { in.apply(ev) }
}

func (in *Injector) apply(ev Event) {
	switch ev.Kind {
	case DeepFade, Outage:
		in.fadeDB[ev.UE] += ev.Magnitude
	case CQIBlackout:
		in.cqiBlack[ev.UE]++
	case HARQCorrupt:
		in.harqProb[ev.UE] += ev.Magnitude
	case PDULoss:
		in.pduProb[ev.UE] += ev.Magnitude
	case BackhaulDegrade:
		in.bhExtraMs += ev.Magnitude
	case BackhaulOutage:
		in.bhOutage++
	case ForceRLF:
		in.stats.ForcedRLFs++
		in.triggerRLF(ev.UE)
	}
}

func (in *Injector) revert(ev Event) {
	switch ev.Kind {
	case DeepFade, Outage:
		in.fadeDB[ev.UE] -= ev.Magnitude
	case CQIBlackout:
		in.cqiBlack[ev.UE]--
	case HARQCorrupt:
		in.harqProb[ev.UE] -= ev.Magnitude
	case PDULoss:
		in.pduProb[ev.UE] -= ev.Magnitude
	case BackhaulDegrade:
		in.bhExtraMs -= ev.Magnitude
	case BackhaulOutage:
		in.bhOutage--
	}
}

// triggerRLF schedules a deferred re-establishment (ReestablishUE must
// not run inside an RLC pull path; see its doc). The rlfPending guard
// keeps the per-UE key unique among pending events.
func (in *Injector) triggerRLF(ue int) {
	if in.rlfPending[ue] {
		return
	}
	in.rlfPending[ue] = true
	in.cell.ScheduleExternalAfter(0, rlfKeyBit|uint64(ue), func() { in.reestablish(ue) })
}

func (in *Injector) reestablish(ue int) {
	in.rlfPending[ue] = false
	in.failStreak[ue] = 0
	if err := in.cell.ReestablishUE(ue); err != nil {
		panic(err) // ue index is always valid here
	}
}

// onDeliveryFail is the natural-RLF trigger: enough abandoned AM PDUs
// in a row and the UE's radio link is declared failed.
func (in *Injector) onDeliveryFail(ue int, _ uint32) {
	if in.rlfPending[ue] {
		return
	}
	in.failStreak[ue]++
	th := in.RLFThreshold
	if th <= 0 {
		th = DefaultRLFThreshold
	}
	if in.failStreak[ue] >= th {
		in.stats.RLFs++
		in.triggerRLF(ue)
	}
}

// hooks returns the injector's side of the ran.FaultHooks contract.
func (in *Injector) hooks() ran.FaultHooks {
	return ran.FaultHooks{
		SINROffsetDB: func(ue int, _ sim.Time) float64 {
			return -in.fadeDB[ue]
		},
		DropCQIReport: func(ue int, _ sim.Time) bool {
			if in.cqiBlack[ue] > 0 {
				in.stats.CQIDropped++
				return true
			}
			return false
		},
		CorruptHARQFeedback: func(ue int, _ sim.Time, ok bool) bool {
			if p := min(in.harqProb[ue], 1); p > 0 && in.r.Float64() < p {
				in.stats.HARQFlipped++
				return !ok
			}
			return ok
		},
		DropRLCPDU: func(ue int, _ sim.Time, _ *rlc.PDU) bool {
			if p := min(in.pduProb[ue], 1); p > 0 && in.r.Float64() < p {
				in.stats.PDUsDropped++
				return true
			}
			return false
		},
		Backhaul: func(_ sim.Time) (sim.Time, bool) {
			if in.bhOutage > 0 {
				in.stats.BackhaulDropped++
				return 0, true
			}
			if in.bhExtraMs > 0 {
				// Jitter in [0.5, 1.5) of the nominal extra delay.
				j := 0.5 + in.r.Float64()
				return sim.Time(in.bhExtraMs * j * float64(sim.Millisecond)), false
			}
			return 0, false
		},
		OnDeliveryFail: in.onDeliveryFail,
	}
}
