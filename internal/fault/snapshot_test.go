package fault

import (
	"reflect"
	"testing"

	"outran/internal/ran"
	"outran/internal/rng"
	"outran/internal/sim"
	"outran/internal/snapshot"
	"outran/internal/workload"
)

// chaosParts is one chaos run's moving parts, built exactly as
// fault.Run builds them but with the snapshot registry enabled.
type chaosParts struct {
	cell *ran.Cell
	mon  *Monitor
	inj  *Injector
	plan Plan
}

const (
	chaosSeed     = uint64(42)
	chaosDuration = 800 * sim.Millisecond
	chaosDrain    = 4 * sim.Second
)

// chaosCellConfig is the full cell configuration of the chaos scenario,
// workload included — restore rebuilds from it, and the snapshot
// fingerprint covers the workload spec.
func chaosCellConfig(cellSeed uint64) ran.Config {
	return smallCell(ran.SchedOutRAN, ran.AM).
		WithSeed(cellSeed).
		WithWorkload(workload.PoissonSpec("lte", 0.6))
}

// buildChaos mirrors fault.Run's seed derivation and assembly for a
// snapshot-enabled chaos run (OutRAN, AM, intensity 1).
func buildChaos(t *testing.T) chaosParts {
	t.Helper()
	master := rng.New(chaosSeed)
	cellSeed := master.Uint64()
	wlSeed := master.Uint64()
	planSeed := master.Uint64()
	injSeed := master.Uint64()

	var p chaosParts
	cell, err := ran.Harness{
		Config:       chaosCellConfig(cellSeed),
		Window:       chaosDuration,
		Drain:        chaosDrain,
		WorkloadSeed: wlSeed,
		Snapshots:    true,
		Setup: func(c *ran.Cell) error {
			p.mon = NewMonitor(c)
			p.plan = NewPlan(planSeed, PlanConfig{
				NumUEs:    c.Config().NumUEs,
				Horizon:   chaosDuration + chaosDrain/2,
				Intensity: 1,
			})
			p.inj = NewInjector(c, injSeed)
			Attach(c, p.plan, p.inj, p.mon)
			return nil
		},
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	p.cell = cell
	return p
}

func (p chaosParts) finish(t *testing.T) Result {
	t.Helper()
	p.cell.Run(chaosDuration + chaosDrain)
	return Result{
		Samples:  p.cell.FCT.Samples(),
		Stats:    p.cell.CollectStats(),
		Monitor:  p.mon.Finalize(),
		Injector: p.inj.Stats(),
		Plan:     p.plan,
	}
}

// TestChaosResumeEquivalence extends the resume-equivalence gate to
// runs with the full chaos layer attached: mid-run snapshot of cell +
// injector + monitor, restore into fresh instances, identical FCT
// trace, stats, injector stats and monitor report at the end. The
// snapshot lands mid-plan, so active fault accumulators, the pending
// apply/revert transitions and the injector's rng position all cross
// the checkpoint.
func TestChaosResumeEquivalence(t *testing.T) {
	ref := buildChaos(t).finish(t)
	if len(ref.Samples) == 0 {
		t.Fatal("no flows completed under chaos")
	}
	if ref.Injector == (InjectorStats{}) {
		t.Fatal("chaos did not bite; the scenario exercises nothing")
	}

	// Same run, interrupted mid-plan.
	p := buildChaos(t)
	mid := 300 * sim.Millisecond
	p.cell.Run(mid)
	var b snapshot.Builder
	if err := p.cell.SnapshotTo(&b); err != nil {
		t.Fatalf("cell snapshot: %v", err)
	}
	p.inj.SnapshotTo(&b)
	p.mon.SnapshotTo(&b)
	a, err := snapshot.Open(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	// Fresh process: rebuild from config + seeds, overlay the snapshot.
	master := rng.New(chaosSeed)
	cellSeed := master.Uint64()
	_ = master.Uint64() // workload seed: arrivals come back via the registry
	planSeed := master.Uint64()
	injSeed := master.Uint64()
	cell2, err := ran.NewCell(chaosCellConfig(cellSeed))
	if err != nil {
		t.Fatal(err)
	}
	mon2 := NewMonitor(cell2)
	inj2 := NewInjector(cell2, injSeed)
	plan2 := NewPlan(planSeed, PlanConfig{
		NumUEs:    cell2.Config().NumUEs,
		Horizon:   chaosDuration + chaosDrain/2,
		Intensity: 1,
	})
	h := inj2.hooks()
	h.OnTTI = mon2.onTTI
	h.OnDeliver = mon2.onDeliver
	h.OnReestablish = mon2.onReestablish
	cell2.SetFaultHooks(h)
	inj2.PrepareResume(plan2)
	if err := cell2.RestoreSnapshot(a); err != nil {
		t.Fatalf("cell restore: %v", err)
	}
	if err := inj2.RestoreFrom(a); err != nil {
		t.Fatalf("injector restore: %v", err)
	}
	if err := mon2.RestoreFrom(a); err != nil {
		t.Fatalf("monitor restore: %v", err)
	}
	res := chaosParts{cell: cell2, mon: mon2, inj: inj2, plan: plan2}.finish(t)

	if len(ref.Samples) != len(res.Samples) {
		t.Fatalf("uninterrupted chaos run completed %d flows, resumed %d", len(ref.Samples), len(res.Samples))
	}
	for i := range ref.Samples {
		if ref.Samples[i] != res.Samples[i] {
			t.Fatalf("FCT trace diverges at flow %d: %+v vs %+v", i, ref.Samples[i], res.Samples[i])
		}
	}
	if ref.Stats != res.Stats {
		t.Fatalf("stats differ:\n uninterrupted: %+v\n resumed:       %+v", ref.Stats, res.Stats)
	}
	if ref.Injector != res.Injector {
		t.Fatalf("injector stats differ:\n uninterrupted: %+v\n resumed:       %+v", ref.Injector, res.Injector)
	}
	if !reflect.DeepEqual(ref.Monitor, res.Monitor) {
		t.Fatalf("monitor reports differ:\n uninterrupted: %+v\n resumed:       %+v", ref.Monitor, res.Monitor)
	}
}

// TestInjectorRestoreErrors: truncated or foreign sections surface as
// wrapped errors, never panics.
func TestInjectorRestoreErrors(t *testing.T) {
	p := buildChaos(t)
	p.cell.Run(100 * sim.Millisecond)
	var b snapshot.Builder
	p.inj.SnapshotTo(&b)
	p.mon.SnapshotTo(&b)
	a, err := snapshot.Open(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	// Restore into an injector with a different UE count.
	small := smallCell(ran.SchedOutRAN, ran.AM)
	small.NumUEs = 3
	cellSmall, err := ran.NewCell(small)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewInjector(cellSmall, 1).RestoreFrom(a); err == nil {
		t.Fatal("UE-count mismatch restored cleanly; want error")
	}
	if err := NewMonitor(cellSmall).RestoreFrom(a); err == nil {
		t.Fatal("monitor UE-count mismatch restored cleanly; want error")
	}

	// A section that is missing entirely.
	var empty snapshot.Builder
	var e snapshot.Encoder
	e.U64(1)
	empty.Add("unrelated", &e)
	a2, err := snapshot.Open(empty.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	cell3, err := ran.NewCell(smallCell(ran.SchedOutRAN, ran.AM))
	if err != nil {
		t.Fatal(err)
	}
	if err := NewInjector(cell3, 1).RestoreFrom(a2); err == nil {
		t.Fatal("missing injector section restored cleanly; want error")
	}
	if err := NewMonitor(cell3).RestoreFrom(a2); err == nil {
		t.Fatal("missing monitor section restored cleanly; want error")
	}
}
