// Package fault is the deterministic chaos layer of the simulator: a
// seed-driven fault-injection framework plus a runtime invariant
// monitor. A Plan is a reproducible schedule of fault events (deep
// fades, CQI blackouts, HARQ feedback corruption, RLC PDU loss,
// backhaul degradation, forced radio-link failures); an Injector
// translates the active events into ran.FaultHooks perturbations; a
// Monitor rides the same hooks to assert cross-layer invariants every
// TTI and at teardown. Everything draws from its own rng.Source and
// runs on the single-threaded event loop, so a chaos run with the same
// seed reproduces bit-for-bit — the property the determinism gates
// check.
package fault

import (
	"fmt"
	"sort"

	"outran/internal/rng"
	"outran/internal/sim"
)

// Kind names a fault class.
type Kind int

// Fault kinds, ordered as tie-breaker in the plan sort.
const (
	// DeepFade subtracts Magnitude dB from one UE's SINR — a fading
	// dip below what the channel model produces on its own.
	DeepFade Kind = iota
	// Outage is a fade deep enough (>= 40 dB) that nothing decodes.
	Outage
	// CQIBlackout drops every CQI report from one UE, so the MAC link-
	// adapts on a stale channel estimate.
	CQIBlackout
	// HARQCorrupt flips each HARQ ACK/NACK with probability Magnitude.
	HARQCorrupt
	// PDULoss drops each delivered RLC PDU with probability Magnitude
	// (burst interference below HARQ granularity).
	PDULoss
	// BackhaulDegrade adds Magnitude ms of jittered one-way delay to
	// every downlink packet on the CN path (cell-wide, UE = -1).
	BackhaulDegrade
	// BackhaulOutage drops every downlink packet on the CN path for
	// the duration (cell-wide, UE = -1).
	BackhaulOutage
	// ForceRLF triggers an immediate radio-link failure and RRC
	// re-establishment for one UE (Duration and Magnitude unused).
	ForceRLF
	// WorkerCrash is a deployment-level directive, not a sim event: the
	// worker running this cell dies at Start and the deployment runtime
	// must restore the cell from its latest checkpoint and replay. The
	// injector ignores it (UE, Duration and Magnitude unused); plans
	// never generate it — it is scripted by crash-recovery tests and
	// the deployment runtime's chaos mode.
	WorkerCrash

	numKinds
)

func (k Kind) String() string {
	switch k {
	case DeepFade:
		return "deep-fade"
	case Outage:
		return "outage"
	case CQIBlackout:
		return "cqi-blackout"
	case HARQCorrupt:
		return "harq-corrupt"
	case PDULoss:
		return "pdu-loss"
	case BackhaulDegrade:
		return "backhaul-degrade"
	case BackhaulOutage:
		return "backhaul-outage"
	case ForceRLF:
		return "force-rlf"
	case WorkerCrash:
		return "worker-crash"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one scheduled fault: Kind hits UE (or the whole cell when
// UE is -1) from Start for Duration, with a kind-specific Magnitude.
type Event struct {
	Kind      Kind
	UE        int // -1 for cell-wide (backhaul) faults
	Start     sim.Time
	Duration  sim.Time
	Magnitude float64
}

// End returns the instant the fault reverts.
func (e Event) End() sim.Time { return e.Start + e.Duration }

func (e Event) String() string {
	return fmt.Sprintf("%v ue=%d @%v +%v mag=%.2f", e.Kind, e.UE, e.Start, e.Duration, e.Magnitude)
}

// Plan is a deterministic fault schedule, sorted by (Start, Kind, UE,
// Duration) so the apply/revert event insertion order — and therefore
// the engine's FIFO tie-break — is identical across same-seed runs.
type Plan []Event

// PlanConfig parameterises plan generation.
type PlanConfig struct {
	NumUEs  int
	Horizon sim.Time // faults start within [0, Horizon)
	// Intensity scales every fault class's arrival rate; 1.0 is the
	// nominal chaos level, 0 yields an empty plan.
	Intensity float64
}

// kindRate is the nominal per-second arrival rate of each fault class
// at Intensity 1 (per cell; per-UE faults pick a uniform victim).
var kindRates = [numKinds]float64{
	DeepFade:        2.0,
	Outage:          1.0,
	CQIBlackout:     1.0,
	HARQCorrupt:     1.0,
	PDULoss:         1.0,
	BackhaulDegrade: 0.5,
	BackhaulOutage:  0.3,
	ForceRLF:        0.2,
	WorkerCrash:     0, // never generated; scripted only (Poisson(0) draws nothing, so existing seeds keep their plans)
}

// NewPlan draws a randomized fault schedule from the seed. Identical
// (seed, cfg) pairs yield identical plans on every platform.
func NewPlan(seed uint64, cfg PlanConfig) Plan {
	if cfg.NumUEs <= 0 || cfg.Horizon <= 0 || cfg.Intensity <= 0 {
		return nil
	}
	r := rng.New(seed)
	var plan Plan
	secs := cfg.Horizon.Seconds()
	for k := Kind(0); k < numKinds; k++ {
		n := r.Poisson(kindRates[k] * cfg.Intensity * secs)
		for i := 0; i < n; i++ {
			ev := Event{
				Kind:  k,
				UE:    r.Intn(cfg.NumUEs),
				Start: sim.Time(r.Float64() * float64(cfg.Horizon)),
			}
			switch k {
			case DeepFade:
				ev.Duration = uniformDur(r, 20, 100)
				ev.Magnitude = 8 + 12*r.Float64() // 8–20 dB
			case Outage:
				ev.Duration = uniformDur(r, 50, 300)
				ev.Magnitude = 40 + 20*r.Float64() // 40–60 dB
			case CQIBlackout:
				ev.Duration = uniformDur(r, 50, 200)
				ev.Magnitude = 1
			case HARQCorrupt:
				ev.Duration = uniformDur(r, 50, 200)
				ev.Magnitude = 0.1 + 0.4*r.Float64() // flip prob 0.1–0.5
			case PDULoss:
				ev.Duration = uniformDur(r, 50, 200)
				ev.Magnitude = 0.05 + 0.25*r.Float64() // drop prob
			case BackhaulDegrade:
				ev.UE = -1
				ev.Duration = uniformDur(r, 100, 500)
				ev.Magnitude = 5 + 25*r.Float64() // extra ms, jittered
			case BackhaulOutage:
				ev.UE = -1
				ev.Duration = uniformDur(r, 30, 150)
				ev.Magnitude = 1
			case ForceRLF:
				ev.Duration = 0
				ev.Magnitude = 0
			}
			plan = append(plan, ev)
		}
	}
	sort.Slice(plan, func(i, j int) bool {
		a, b := plan[i], plan[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.UE != b.UE {
			return a.UE < b.UE
		}
		return a.Duration < b.Duration
	})
	return plan
}

func uniformDur(r *rng.Source, loMs, hiMs float64) sim.Time {
	ms := loMs + (hiMs-loMs)*r.Float64()
	return sim.Time(ms * float64(sim.Millisecond))
}
