package fault

import (
	"fmt"

	"outran/internal/sim"
	"outran/internal/snapshot"
)

// Structural sentinels for the chaos layer's snapshot blocks.
const (
	tagInjector = 0x4a01
	tagMonitor  = 0x4a02
)

// SectionInjector and SectionMonitor name the archive sections the
// chaos layer adds next to the cell's own (see ran.Cell.SnapshotTo).
const (
	SectionInjector = "fault-injector"
	SectionMonitor  = "fault-monitor"
)

// SnapshotTo appends the injector's mutable state — accumulators, rng
// position, RLF bookkeeping, stats — as one section. The plan itself
// is NOT serialised: it re-derives from the run seed, and the pending
// apply/revert transitions live in the cell's pending-event registry
// keyed for rebuildExternal.
func (in *Injector) SnapshotTo(b *snapshot.Builder) {
	var e snapshot.Encoder
	e.Mark(tagInjector)
	st := in.r.State()
	for _, w := range st {
		e.U64(w)
	}
	e.Int(in.RLFThreshold)
	e.U32(uint32(len(in.fadeDB)))
	for i := range in.fadeDB {
		e.F64(in.fadeDB[i])
		e.Int(in.cqiBlack[i])
		e.F64(in.harqProb[i])
		e.F64(in.pduProb[i])
		e.Int(in.failStreak[i])
		e.Bool(in.rlfPending[i])
	}
	e.F64(in.bhExtraMs)
	e.Int(in.bhOutage)
	e.U64(in.stats.CQIDropped)
	e.U64(in.stats.HARQFlipped)
	e.U64(in.stats.PDUsDropped)
	e.U64(in.stats.BackhaulDropped)
	e.U64(in.stats.RLFs)
	e.U64(in.stats.ForcedRLFs)
	b.Add(SectionInjector, &e)
}

// RestoreFrom overlays a snapshot onto a freshly built injector. Call
// PrepareResume first (the pending-event rebuild needs the plan), then
// ran.Cell.RestoreSnapshot, then this.
func (in *Injector) RestoreFrom(a *snapshot.Archive) error {
	d, err := a.Section(SectionInjector)
	if err != nil {
		return fmt.Errorf("fault: restoring injector: %w", err)
	}
	d.Expect(tagInjector)
	var st [4]uint64
	for i := range st {
		st[i] = d.U64()
	}
	rlfTh := d.Int()
	n := d.Count(1 << 20)
	if d.Err() == nil && n != len(in.fadeDB) {
		return fmt.Errorf("fault: restoring injector: %w: snapshot has %d UEs, injector %d",
			snapshot.ErrCorrupt, n, len(in.fadeDB))
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		in.fadeDB[i] = d.F64()
		in.cqiBlack[i] = d.Int()
		in.harqProb[i] = d.F64()
		in.pduProb[i] = d.F64()
		in.failStreak[i] = d.Int()
		in.rlfPending[i] = d.Bool()
	}
	in.bhExtraMs = d.F64()
	in.bhOutage = d.Int()
	in.stats.CQIDropped = d.U64()
	in.stats.HARQFlipped = d.U64()
	in.stats.PDUsDropped = d.U64()
	in.stats.BackhaulDropped = d.U64()
	in.stats.RLFs = d.U64()
	in.stats.ForcedRLFs = d.U64()
	if err := d.Err(); err != nil {
		return fmt.Errorf("fault: restoring injector: %w", err)
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("fault: restoring injector: %w: %d trailing bytes",
			snapshot.ErrCorrupt, d.Remaining())
	}
	in.r.SetState(st)
	in.RLFThreshold = rlfTh
	return nil
}

// SnapshotTo appends the monitor's full state, so a resumed chaos run
// reports the same checks/deliveries/violations a crash-free run
// would. Seen-SDU IDs are encoded in sorted order for byte-stable
// output.
func (m *Monitor) SnapshotTo(b *snapshot.Builder) {
	var e snapshot.Encoder
	e.Mark(tagMonitor)
	e.I64(int64(m.lastTTI))
	e.Bool(m.firstTTI)
	ids := make([]uint64, 0, len(m.seen))
	//outran:orderfree collected IDs are sorted before encoding
	for id := range m.seen {
		ids = append(ids, id)
	}
	sortU64(ids)
	e.U32(uint32(len(ids)))
	for _, id := range ids {
		e.U64(id)
	}
	e.U32(uint32(len(m.lastSN)))
	for i := range m.lastSN {
		e.U32(m.lastSN[i])
		e.Bool(m.hasSN[i])
	}
	e.U64(m.report.Checks)
	e.U64(m.report.Deliveries)
	e.U64(m.report.Violated)
	e.U32(uint32(len(m.report.Violations)))
	for _, v := range m.report.Violations {
		e.I64(int64(v.At))
		e.String(v.Rule)
		e.String(v.Detail)
	}
	b.Add(SectionMonitor, &e)
}

// RestoreFrom overlays a snapshot onto a freshly built monitor.
func (m *Monitor) RestoreFrom(a *snapshot.Archive) error {
	d, err := a.Section(SectionMonitor)
	if err != nil {
		return fmt.Errorf("fault: restoring monitor: %w", err)
	}
	d.Expect(tagMonitor)
	lastTTI := d.I64()
	firstTTI := d.Bool()
	n := d.Count(1 << 28)
	seen := make(map[uint64]bool, n)
	for i := 0; i < n && d.Err() == nil; i++ {
		seen[d.U64()] = true
	}
	nsn := d.Count(1 << 20)
	if d.Err() == nil && nsn != len(m.lastSN) {
		return fmt.Errorf("fault: restoring monitor: %w: snapshot has %d UEs, monitor %d",
			snapshot.ErrCorrupt, nsn, len(m.lastSN))
	}
	for i := 0; i < nsn && d.Err() == nil; i++ {
		m.lastSN[i] = d.U32()
		m.hasSN[i] = d.Bool()
	}
	m.report.Checks = d.U64()
	m.report.Deliveries = d.U64()
	m.report.Violated = d.U64()
	nv := d.Count(maxViolations)
	var violations []Violation
	for i := 0; i < nv && d.Err() == nil; i++ {
		violations = append(violations, Violation{
			At:     sim.Time(d.I64()),
			Rule:   d.String(),
			Detail: d.String(),
		})
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("fault: restoring monitor: %w", err)
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("fault: restoring monitor: %w: %d trailing bytes",
			snapshot.ErrCorrupt, d.Remaining())
	}
	m.lastTTI = sim.Time(lastTTI)
	m.firstTTI = firstTTI
	m.seen = seen
	m.report.Violations = violations
	return nil
}

func sortU64(v []uint64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
