package fault

import (
	"fmt"

	"outran/internal/mac"
	"outran/internal/ran"
	"outran/internal/rlc"
	"outran/internal/sim"
)

// maxViolations bounds the report so a broken invariant in a long run
// does not swallow the process; the count keeps incrementing.
const maxViolations = 64

// Violation is one invariant breach, timestamped in simulation time.
type Violation struct {
	At     sim.Time
	Rule   string
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%v [%s] %s", v.At, v.Rule, v.Detail)
}

// Report summarises a monitored run.
type Report struct {
	Checks     uint64 // TTI-level invariant sweeps performed
	Deliveries uint64 // SDUs observed crossing RLC->PDCP
	Violated   uint64 // total violations (may exceed len(Violations))
	Violations []Violation
}

// Clean reports whether no invariant was violated.
func (r Report) Clean() bool { return r.Violated == 0 }

// Monitor is the runtime invariant checker. Attached to a cell it
// asserts, every TTI: engine clock monotonicity, RB-grid conservation
// (every resource block accounted to exactly one owner in range), and
// the cell's structural audit (RLC AM tx/rx consistency, bounded
// queue growth, HARQ bookkeeping). Per delivery it asserts no-
// duplicate SDU delivery and — when the configuration guarantees it —
// in-order PDCP SN delivery per UE. Finalize adds teardown checks.
type Monitor struct {
	cell    *ran.Cell
	numUEs  int
	numRB   int
	snMod   uint32 // PDCP SN space size, for wrap-aware comparison
	inOrder bool   // config guarantees per-UE in-order delivery

	lastTTI  sim.Time
	firstTTI bool

	seen   map[uint64]bool // delivered SDU IDs (duplicate check)
	lastSN []uint32
	hasSN  []bool

	report Report
}

// NewMonitor builds a monitor for the cell. The in-order delivery
// check is armed only when the configuration guarantees it: RLC AM
// (no-loss) and either plain FIFO queueing or OutRAN's delayed SN
// numbering with segment promotion (§4.4), where SNs are assigned in
// wire order. AM with MLFQ reordering but immediate SNs legitimately
// delivers out of order, so the check would false-positive there.
func NewMonitor(cell *ran.Cell) *Monitor {
	cfg := cell.Config()
	mlfq := cfg.Scheduler == ran.SchedOutRAN || cfg.Scheduler == ran.SchedStrictMLFQ
	inOrder := cfg.RLC == ran.AM &&
		(!mlfq || (cfg.OutRAN.DelayedSN && cfg.OutRAN.SegmentPromotion))
	return &Monitor{
		cell:     cell,
		numUEs:   cfg.NumUEs,
		numRB:    cfg.Grid.NumRB,
		snMod:    uint32(1) << uint(cfg.PDCPSNBits),
		inOrder:  inOrder,
		firstTTI: true,
		seen:     make(map[uint64]bool),
		lastSN:   make([]uint32, cfg.NumUEs),
		hasSN:    make([]bool, cfg.NumUEs),
	}
}

// Report returns the violations and counters collected so far.
func (m *Monitor) Report() Report { return m.report }

func (m *Monitor) violate(rule, format string, args ...interface{}) {
	m.report.Violated++
	if len(m.report.Violations) < maxViolations {
		m.report.Violations = append(m.report.Violations, Violation{
			At:     m.cell.Eng.Now(),
			Rule:   rule,
			Detail: fmt.Sprintf(format, args...),
		})
	}
}

// onTTI runs the per-interval sweep.
func (m *Monitor) onTTI(now sim.Time, alloc mac.Allocation) {
	m.report.Checks++
	if !m.firstTTI && now <= m.lastTTI {
		m.violate("clock-monotone", "TTI at %v after TTI at %v", now, m.lastTTI)
	}
	m.firstTTI = false
	m.lastTTI = now

	if len(alloc.RBOwner) != m.numRB {
		m.violate("rb-conservation", "allocation covers %d RBs, grid has %d", len(alloc.RBOwner), m.numRB)
	}
	for rb, owner := range alloc.RBOwner {
		if owner < -1 || owner >= m.numUEs {
			m.violate("rb-owner-range", "RB %d owned by %d, want [-1,%d)", rb, owner, m.numUEs)
		}
	}
	if err := m.cell.AuditInvariants(); err != nil {
		m.violate("structural-audit", "%v", err)
	}
}

// onDeliver observes one SDU crossing from RLC up to PDCP at the UE.
func (m *Monitor) onDeliver(ue int, sdu *rlc.SDU) {
	m.report.Deliveries++
	if m.seen[sdu.ID] {
		m.violate("no-duplicate", "ue %d: SDU %d delivered twice", ue, sdu.ID)
	}
	m.seen[sdu.ID] = true
	if !m.inOrder || ue < 0 || ue >= m.numUEs {
		return
	}
	sn := sdu.PDCPSN % m.snMod
	if m.hasSN[ue] {
		// Wrap-aware: sn must be "ahead" of the last SN within half
		// the SN space (the same half-window rule PDCP HFN inference
		// uses).
		diff := (sn - m.lastSN[ue]) % m.snMod
		if diff == 0 || diff >= m.snMod/2 {
			m.violate("in-order", "ue %d: PDCP SN %d after %d", ue, sn, m.lastSN[ue])
		}
	}
	m.lastSN[ue] = sn
	m.hasSN[ue] = true
}

// onReestablish resets per-UE tracking: re-establishment rebuilds the
// PDCP entities with fresh COUNT state, so the SN sequence restarts.
func (m *Monitor) onReestablish(ue int, _ sim.Time) {
	if ue >= 0 && ue < m.numUEs {
		m.hasSN[ue] = false
	}
}

// Finalize runs the teardown checks and returns the final report.
func (m *Monitor) Finalize() Report {
	if err := m.cell.AuditInvariants(); err != nil {
		m.violate("final-audit", "%v", err)
	}
	st := m.cell.CollectStats()
	if st.FlowsCompleted > st.FlowsStarted {
		m.violate("flow-conservation", "%d flows completed, only %d started", st.FlowsCompleted, st.FlowsStarted)
	}
	// Every abandoned AM PDU must have fired the delivery-failure
	// callback — the silent-loss regression this PR fixes.
	if st.AMAbandoned != st.AMDeliveryFailures {
		m.violate("am-loss-signalled", "%d PDUs abandoned but %d delivery failures signalled", st.AMAbandoned, st.AMDeliveryFailures)
	}
	return m.report
}

// Attach wires the injector (may be nil for monitor-only baselines)
// and monitor (may be nil) into one merged hook set on the cell, and
// schedules the plan's transitions. Call once, before the first Run.
func Attach(cell *ran.Cell, plan Plan, inj *Injector, mon *Monitor) {
	var h ran.FaultHooks
	if inj != nil {
		h = inj.hooks()
		inj.Schedule(plan)
	}
	if mon != nil {
		h.OnTTI = mon.onTTI
		h.OnDeliver = mon.onDeliver
		h.OnReestablish = mon.onReestablish
	}
	cell.SetFaultHooks(h)
}
