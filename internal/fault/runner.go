package fault

import (
	"outran/internal/metrics"
	"outran/internal/ran"
	"outran/internal/rng"
	"outran/internal/sim"
	"outran/internal/workload"
)

// RunConfig describes one monitored (and optionally chaos-injected)
// simulation run. The single Seed deterministically derives the cell,
// workload, plan, and injector streams, so a (config, seed) pair fully
// pins the run.
type RunConfig struct {
	Cell     ran.Config
	Load     float64  // offered load vs. effective capacity
	Duration sim.Time // workload arrival window
	Drain    sim.Time // extra run time after the last arrival (default 6 s)
	// Workload overrides the default Poisson LTE spec; the zero value
	// offers workload.PoissonSpec("lte", Load).
	Workload workload.Spec
	// Intensity scales the fault plan; 0 disables injection entirely
	// (monitor-only baseline).
	Intensity    float64
	RLFThreshold int // 0 = DefaultRLFThreshold
	Seed         uint64
}

// Result bundles everything a chaos run produces.
type Result struct {
	Samples  []metrics.FCTSample
	Stats    ran.Stats
	Monitor  Report
	Injector InjectorStats
	Plan     Plan
}

// MeanFCT returns the mean flow completion time, or 0 with no samples.
func (r Result) MeanFCT() sim.Time {
	if len(r.Samples) == 0 {
		return 0
	}
	var sum sim.Time
	for _, s := range r.Samples {
		sum += s.FCT
	}
	return sum / sim.Time(len(r.Samples))
}

// Run executes one monitored run: build the cell, attach the invariant
// monitor (always) and the fault injector (when Intensity > 0),
// schedule a Poisson workload, run to completion, and finalize.
func Run(rc RunConfig) (Result, error) {
	if rc.Drain <= 0 {
		rc.Drain = 6 * sim.Second
	}
	if rc.Load <= 0 {
		rc.Load = 0.7
	}
	if !rc.Workload.Enabled() {
		rc.Workload = workload.PoissonSpec("lte", rc.Load)
	}
	master := rng.New(rc.Seed)
	cellSeed := master.Uint64()
	wlSeed := master.Uint64()
	planSeed := master.Uint64()
	injSeed := master.Uint64()

	var res Result
	var mon *Monitor
	var inj *Injector
	cell, err := ran.Harness{
		Config:       rc.Cell.WithSeed(cellSeed).WithWorkload(rc.Workload),
		Window:       rc.Duration,
		Drain:        rc.Drain,
		WorkloadSeed: wlSeed,
		// Setup runs before the workload is scheduled, so plan events
		// keep their historical ordering against same-time arrivals.
		Setup: func(c *ran.Cell) error {
			mon = NewMonitor(c)
			if rc.Intensity > 0 {
				res.Plan = NewPlan(planSeed, PlanConfig{
					NumUEs:    c.Config().NumUEs,
					Horizon:   rc.Duration + rc.Drain/2,
					Intensity: rc.Intensity,
				})
				inj = NewInjector(c, injSeed)
				inj.RLFThreshold = rc.RLFThreshold
			}
			Attach(c, res.Plan, inj, mon)
			return nil
		},
	}.Run()
	if err != nil {
		return Result{}, err
	}

	res.Samples = cell.FCT.Samples()
	res.Stats = cell.CollectStats()
	res.Monitor = mon.Finalize()
	if inj != nil {
		res.Injector = inj.Stats()
	}
	return res, nil
}
