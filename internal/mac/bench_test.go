package mac

import (
	"testing"

	"outran/internal/phy"
	"outran/internal/sim"
)

// benchUsers builds a deterministic user population.
func benchUsers(n int) []*User {
	users := make([]*User, n)
	for i := range users {
		cqis := make([]phy.CQI, 13)
		for j := range cqis {
			cqis[j] = phy.CQI(1 + (i*7+j*3)%15)
		}
		perPrio := make([]int, 4)
		perPrio[i%4] = 1000
		users[i] = &User{
			ID:         UserID(i),
			SubbandCQI: cqis,
			AvgTputBps: float64(1e5 + i*31337),
			Buffer:     BufferStatus{TotalBytes: 1500, PerPriority: perPrio},
		}
	}
	return users
}

func benchAllocate(b *testing.B, s Scheduler, users, rbs int) {
	b.Helper()
	grid := phy.Grid{Numerology: phy.Mu0, NumRB: rbs, CarrierHz: 2.68e9}
	us := benchUsers(users)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Allocate(sim.Time(i)*sim.Millisecond, us, grid)
	}
}

func BenchmarkPFAllocate20x50(b *testing.B)   { benchAllocate(b, NewPF(), 20, 50) }
func BenchmarkPFAllocate100x100(b *testing.B) { benchAllocate(b, NewPF(), 100, 100) }
func BenchmarkMTAllocate20x50(b *testing.B)   { benchAllocate(b, NewMT(), 20, 50) }
func BenchmarkSRJFAllocate20x50(b *testing.B) { benchAllocate(b, &SRJF{}, 20, 50) }
func BenchmarkPSSAllocate20x50(b *testing.B)  { benchAllocate(b, &PSS{}, 20, 50) }
func BenchmarkCQAAllocate20x50(b *testing.B)  { benchAllocate(b, &CQA{}, 20, 50) }
