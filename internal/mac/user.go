// Package mac implements the downlink MAC scheduler of an xNodeB: the
// per-RB metric allocation framework of §4.1 (eq. 1 / Algorithm 1) and
// the concrete schedulers the paper evaluates — Proportional Fair,
// Maximum Throughput, Round Robin, the SRJF oracle, and the QoS-aware
// PSS and CQA baselines. The OutRAN inter-user scheduler in
// internal/core wraps any per-RB metric scheduler from this package.
package mac

import (
	"math"

	"outran/internal/phy"
	"outran/internal/sim"
)

// UserID identifies an attached UE within a cell.
type UserID int

// BufferStatus is the downlink buffer state the RLC reports to the MAC
// via the Buffer Status Report. OutRAN extends the BSR with the
// per-MLFQ-priority queued bytes (§4.3 / Appendix B); the oracle and
// QoS fields feed the SRJF/PSS/CQA baselines only.
type BufferStatus struct {
	// TotalBytes queued for the UE across all queues.
	TotalBytes int
	// PerPriority holds queued bytes per MLFQ priority (index 0 is the
	// highest priority). Nil when the RLC runs a plain FIFO.
	PerPriority []int
	// HOLArrival is the arrival time of the head-of-line SDU (zero
	// value when the buffer is empty).
	HOLArrival sim.Time
	// OracleMinRemaining is the smallest remaining flow size (bytes)
	// among flows with queued data — SRJF's clairvoyant input.
	// Negative when unknown/unused.
	OracleMinRemaining int64
	// QoSBytes is the number of queued bytes belonging to flows with a
	// dedicated low-latency QoS profile (PSS/CQA baselines).
	QoSBytes int
	// QoSHOLArrival is the arrival time of the oldest queued QoS SDU.
	QoSHOLArrival sim.Time
	// QoSDelayBudget is the packet delay budget of the QoS profile
	// (e.g. 50 ms); zero when no QoS flows are queued.
	QoSDelayBudget sim.Time
}

// Backlogged reports whether the UE has data to schedule.
func (b BufferStatus) Backlogged() bool { return b.TotalBytes > 0 }

// TopPriority returns the index of the highest-priority non-empty MLFQ
// queue, or K (one past the last) when PerPriority is empty/absent.
// Lower is better, matching the paper's P1 > P2 > … ordering.
func (b BufferStatus) TopPriority() int {
	for i, n := range b.PerPriority {
		if n > 0 {
			return i
		}
	}
	return len(b.PerPriority)
}

// User is the MAC-visible state of one attached UE, refreshed by the
// cell every TTI (buffer status) and every CQI period (channel).
type User struct {
	ID UserID
	// SubbandCQI is the latest reported CQI per subband.
	SubbandCQI []phy.CQI
	// AvgTputBps is the exponentially smoothed served throughput
	// (the PF scheduler's long-term average, eq. 1).
	AvgTputBps float64
	// Buffer is the latest buffer status report.
	Buffer BufferStatus
	// LastServed is when the user last received any RB (RR input).
	LastServed sim.Time
}

// CQIForRB maps an RB index to the CQI of the subband containing it.
func (u *User) CQIForRB(rb, numRB int) phy.CQI {
	if len(u.SubbandCQI) == 0 {
		return 0
	}
	sb := rb * len(u.SubbandCQI) / numRB
	if sb >= len(u.SubbandCQI) {
		sb = len(u.SubbandCQI) - 1
	}
	return u.SubbandCQI[sb]
}

// RateForRB returns the achievable rate r_{u,b} in bits/s.
func (u *User) RateForRB(rb int, grid phy.Grid) float64 {
	return phy.RatePerRB(u.CQIForRB(rb, grid.NumRB), grid)
}

// UpdateAvgTput folds one TTI's served bits into the PF average with
// smoothing factor beta = TTI/T_f (the fairness window, §6.3).
func (u *User) UpdateAvgTput(servedBits int, tti sim.Time, fairnessWindow sim.Time) {
	if fairnessWindow <= 0 {
		return
	}
	beta := float64(tti) / float64(fairnessWindow)
	if beta > 1 {
		beta = 1
	}
	inst := float64(servedBits) / tti.Seconds()
	u.AvgTputBps = (1-beta)*u.AvgTputBps + beta*inst
}

// minAvgTput floors the PF denominator so new users are not divided
// by zero (standard PF bootstrap).
const minAvgTput = 1e3

func pfDenominator(u *User) float64 {
	return math.Max(u.AvgTputBps, minAvgTput)
}
