package mac

import (
	"outran/internal/phy"
	"outran/internal/sim"
)

// SRJF is the clairvoyant Shortest Remaining Job First scheduler used
// as the motivation baseline (§3): it gives every RB to the user whose
// queued flows include the one with the smallest remaining size,
// entirely ignoring channel conditions. This is optimal for FCT over
// a fixed-rate link and, as the paper shows, disastrous for spectral
// efficiency and fairness over a wireless one.
type SRJF struct {
	// scratch is the reusable allocation returned by Allocate; see the
	// Scheduler ownership contract.
	scratch Allocation
}

// Name implements Scheduler.
func (*SRJF) Name() string { return "SRJF" }

// Allocate implements Scheduler.
//
//outran:allocfree
//outran:scratch
func (s *SRJF) Allocate(now sim.Time, users []*User, grid phy.Grid) Allocation {
	s.scratch.Reset(grid.NumRB)
	alloc := s.scratch
	best := -1
	var bestRem int64
	for ui, u := range users {
		if !u.Buffer.Backlogged() {
			continue
		}
		rem := u.Buffer.OracleMinRemaining
		if rem < 0 {
			// Unknown size sorts last, after any known size.
			rem = 1 << 62
		}
		if best == -1 || rem < bestRem {
			best, bestRem = ui, rem
		}
	}
	if best == -1 {
		return alloc
	}
	for b := range alloc.RBOwner {
		// Skip RBs the winner cannot decode at all.
		if users[best].CQIForRB(b, grid.NumRB) == 0 {
			continue
		}
		alloc.RBOwner[b] = best
	}
	return alloc
}
