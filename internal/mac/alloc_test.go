package mac

import (
	"testing"

	"outran/internal/analysis/probetest"
)

// allocUsers is the shared workload for the zero-alloc probes: a mix
// that exercises the all-zero-metric fallback and an empty buffer.
func allocUsers() []*User {
	users := []*User{
		user(0, 10, 1e6, 1000),
		user(1, 4, 2e6, 500),
		user(2, 0, 1e5, 800), // exercises the all-zero-metric fallback
		user(3, 15, 5e5, 0),  // empty buffer
	}
	users[0].Buffer.QoSBytes = 200
	return users
}

// probeAllocate builds a steady-state zero-alloc probe over the given
// schedulers. AllocsPerRun's warm-up call covers the first-TTI scratch
// growth.
func probeAllocate(scheds ...Scheduler) func(t *testing.T) {
	return func(t *testing.T) {
		users := allocUsers()
		g := grid()
		for _, s := range scheds {
			s := s
			allocs := testing.AllocsPerRun(100, func() {
				s.Allocate(0, users, g)
			})
			if allocs != 0 {
				t.Errorf("%s: %.1f allocs/TTI, want 0", s.Name(), allocs)
			}
		}
	}
}

// TestAllocateZeroAllocs pins the tentpole property on every MAC
// scheduler: after the first TTI grows the scratch, steady-state
// Allocate performs no heap allocation. The probe registry is keyed
// by //outran:allocfree annotation; probetest.Run fails if the two
// drift apart in either direction.
func TestAllocateZeroAllocs(t *testing.T) {
	probetest.Run(t, ".", map[string]func(t *testing.T){
		"(*MetricScheduler).Allocate": probeAllocate(NewPF(), NewMT(), NewRR()),
		"(*SRJF).Allocate":            probeAllocate(&SRJF{}),
		"(*PSS).Allocate":             probeAllocate(&PSS{}),
		"(*CQA).Allocate":             probeAllocate(&CQA{}),
	})
}

// TestAllocationResetReuses checks Reset keeps the backing array when
// capacity suffices and Clone detaches from the scratch.
func TestAllocationResetReuses(t *testing.T) {
	a := NewAllocation(8)
	p := &a.RBOwner[0]
	a.RBOwner[3] = 2
	a.Reset(4)
	if len(a.RBOwner) != 4 || &a.RBOwner[0] != p {
		t.Fatal("Reset reallocated despite sufficient capacity")
	}
	for _, o := range a.RBOwner {
		if o != -1 {
			t.Fatal("Reset left an RB assigned")
		}
	}
	a.RBOwner[0] = 1
	c := a.Clone()
	a.RBOwner[0] = 2
	if c.RBOwner[0] != 1 {
		t.Fatal("Clone aliases the scratch")
	}
}

// TestAllocateScratchReused pins the ownership contract: consecutive
// Allocate calls on one scheduler return allocations sharing backing
// storage.
func TestAllocateScratchReused(t *testing.T) {
	s := NewPF()
	users := []*User{user(0, 10, 1e6, 1000)}
	a1 := s.Allocate(0, users, grid())
	a2 := s.Allocate(0, users, grid())
	if &a1.RBOwner[0] != &a2.RBOwner[0] {
		t.Fatal("scratch not reused across Allocate calls")
	}
}
