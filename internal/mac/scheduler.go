package mac

import (
	"outran/internal/phy"
	"outran/internal/sim"
)

// Allocation is the result of one TTI's RB allocation. RBOwner[b] is
// the index into the users slice of the UE that owns RB b, or -1.
type Allocation struct {
	RBOwner []int
}

// NewAllocation returns an allocation with all RBs unassigned.
func NewAllocation(numRB int) Allocation {
	a := Allocation{RBOwner: make([]int, numRB)}
	for i := range a.RBOwner {
		a.RBOwner[i] = -1
	}
	return a
}

// Allocated returns the number of RBs assigned to any user.
func (a Allocation) Allocated() int {
	n := 0
	for _, o := range a.RBOwner {
		if o >= 0 {
			n++
		}
	}
	return n
}

// RBCount returns the number of RBs assigned to user index ui.
func (a Allocation) RBCount(ui int) int {
	n := 0
	for _, o := range a.RBOwner {
		if o == ui {
			n++
		}
	}
	return n
}

// Scheduler allocates the grid's RBs to backlogged users each TTI.
type Scheduler interface {
	Name() string
	Allocate(now sim.Time, users []*User, grid phy.Grid) Allocation
}

// MetricFunc is a per-RB scheduling metric m_{u,b}(t) (eq. 1). Higher
// wins the RB.
type MetricFunc func(u *User, rb int, grid phy.Grid, now sim.Time) float64

// MetricScheduler is the standard sub-optimal per-RB allocator of
// §4.1: for each RB it assigns the RB to the backlogged user with the
// best metric, independently of other RBs — O(|U||B|).
type MetricScheduler struct {
	SchedName string
	Metric    MetricFunc
}

// Name implements Scheduler.
func (s *MetricScheduler) Name() string { return s.SchedName }

// Allocate implements Scheduler.
func (s *MetricScheduler) Allocate(now sim.Time, users []*User, grid phy.Grid) Allocation {
	alloc := NewAllocation(grid.NumRB)
	for b := 0; b < grid.NumRB; b++ {
		best := -1
		bestM := 0.0
		for ui, u := range users {
			if !u.Buffer.Backlogged() {
				continue
			}
			m := s.Metric(u, b, grid, now)
			if m <= 0 {
				continue
			}
			if best == -1 || m > bestM {
				best, bestM = ui, m
			}
		}
		alloc.RBOwner[b] = best
	}
	return alloc
}

// PFMetric is the Proportional Fair per-RB metric r_{u,b}/R̃_u.
func PFMetric(u *User, rb int, grid phy.Grid, now sim.Time) float64 {
	return u.RateForRB(rb, grid) / pfDenominator(u)
}

// MTMetric is the Maximum Throughput metric r_{u,b}.
func MTMetric(u *User, rb int, grid phy.Grid, now sim.Time) float64 {
	return u.RateForRB(rb, grid)
}

// NewPF returns the de-facto standard Proportional Fair scheduler.
func NewPF() *MetricScheduler {
	return &MetricScheduler{SchedName: "PF", Metric: PFMetric}
}

// NewMT returns the Maximum Throughput scheduler.
func NewMT() *MetricScheduler {
	return &MetricScheduler{SchedName: "MT", Metric: MTMetric}
}

// NewRR returns a Round-Robin-like scheduler that favours the least
// recently served backlogged user (channel-blind).
func NewRR() *MetricScheduler {
	return &MetricScheduler{
		SchedName: "RR",
		Metric: func(u *User, rb int, grid phy.Grid, now sim.Time) float64 {
			if u.CQIForRB(rb, grid.NumRB) == 0 {
				return 0
			}
			// Older LastServed -> larger metric.
			return 1 + float64(now-u.LastServed)
		},
	}
}
