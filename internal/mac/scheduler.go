package mac

import (
	"outran/internal/phy"
	"outran/internal/sim"
)

// Allocation is the result of one TTI's RB allocation. RBOwner[b] is
// the index into the users slice of the UE that owns RB b, or -1.
type Allocation struct {
	RBOwner []int
}

// NewAllocation returns an allocation with all RBs unassigned.
func NewAllocation(numRB int) Allocation {
	a := Allocation{}
	a.Reset(numRB)
	return a
}

// Reset resizes the allocation to numRB with every RB unassigned,
// reusing the backing array when capacity allows. Schedulers call it
// once per TTI on their scratch allocation, so the steady-state
// scheduling path performs no allocation.
func (a *Allocation) Reset(numRB int) {
	if cap(a.RBOwner) < numRB {
		//outran:allocok capacity-guarded scratch growth; first TTI only, steady state reuses the array
		a.RBOwner = make([]int, numRB)
	}
	a.RBOwner = a.RBOwner[:numRB]
	for i := range a.RBOwner {
		a.RBOwner[i] = -1
	}
}

// Clone returns an independent copy. Callers that retain an
// allocation past the owning scheduler's next Allocate must clone it
// (see the Scheduler ownership contract).
func (a Allocation) Clone() Allocation {
	return Allocation{RBOwner: append([]int(nil), a.RBOwner...)}
}

// Allocated returns the number of RBs assigned to any user.
func (a Allocation) Allocated() int {
	n := 0
	for _, o := range a.RBOwner {
		if o >= 0 {
			n++
		}
	}
	return n
}

// RBCount returns the number of RBs assigned to user index ui.
func (a Allocation) RBCount(ui int) int {
	n := 0
	for _, o := range a.RBOwner {
		if o == ui {
			n++
		}
	}
	return n
}

// Scheduler allocates the grid's RBs to backlogged users each TTI.
//
// Ownership contract: the Allocation returned by Allocate aliases
// scratch owned by the scheduler and is valid only until the next
// Allocate call on the same scheduler — exactly one TTI, the lifetime
// the MAC needs. Callers that retain it longer must Clone it. One
// scheduler instance serves one cell; concurrent Allocate calls on a
// shared instance are not supported.
type Scheduler interface {
	Name() string
	// Allocate assigns the grid's RBs for one TTI. The returned
	// Allocation aliases scheduler-owned scratch (see the ownership
	// contract above); the scratchown vet pass checks every call site.
	//
	//outran:scratch
	Allocate(now sim.Time, users []*User, grid phy.Grid) Allocation
}

// MetricFunc is a per-RB scheduling metric m_{u,b}(t) (eq. 1). Higher
// wins the RB.
type MetricFunc func(u *User, rb int, grid phy.Grid, now sim.Time) float64

// MetricScheduler is the standard sub-optimal per-RB allocator of
// §4.1: for each RB it assigns the RB to the backlogged user with the
// best metric, independently of other RBs — O(|U||B|).
type MetricScheduler struct {
	SchedName string
	Metric    MetricFunc

	// scratch is the reusable allocation returned by Allocate; see the
	// Scheduler ownership contract.
	scratch Allocation
}

// Name implements Scheduler.
func (s *MetricScheduler) Name() string { return s.SchedName }

// Allocate implements Scheduler. An RB whose metrics are all <= 0 but
// that has backlogged users falls back to the best backlogged user
// (ties to the lowest index) instead of idling: a deep fade must
// degrade a user's rate, not strand queued data on free capacity.
//
//outran:allocfree
//outran:scratch
func (s *MetricScheduler) Allocate(now sim.Time, users []*User, grid phy.Grid) Allocation {
	s.scratch.Reset(grid.NumRB)
	for b := 0; b < grid.NumRB; b++ {
		best := -1
		bestM := 0.0
		fallback := -1
		fallbackM := 0.0
		for ui, u := range users {
			if !u.Buffer.Backlogged() {
				continue
			}
			m := s.Metric(u, b, grid, now)
			if fallback == -1 || m > fallbackM {
				fallback, fallbackM = ui, m
			}
			if m <= 0 {
				continue
			}
			if best == -1 || m > bestM {
				best, bestM = ui, m
			}
		}
		if best == -1 {
			best = fallback
		}
		s.scratch.RBOwner[b] = best
	}
	return s.scratch
}

// PFMetric is the Proportional Fair per-RB metric r_{u,b}/R̃_u.
func PFMetric(u *User, rb int, grid phy.Grid, now sim.Time) float64 {
	return u.RateForRB(rb, grid) / pfDenominator(u)
}

// MTMetric is the Maximum Throughput metric r_{u,b}.
func MTMetric(u *User, rb int, grid phy.Grid, now sim.Time) float64 {
	return u.RateForRB(rb, grid)
}

// NewPF returns the de-facto standard Proportional Fair scheduler.
func NewPF() *MetricScheduler {
	return &MetricScheduler{SchedName: "PF", Metric: PFMetric}
}

// NewMT returns the Maximum Throughput scheduler.
func NewMT() *MetricScheduler {
	return &MetricScheduler{SchedName: "MT", Metric: MTMetric}
}

// NewRR returns a Round-Robin-like scheduler that favours the least
// recently served backlogged user (channel-blind).
func NewRR() *MetricScheduler {
	return &MetricScheduler{
		SchedName: "RR",
		Metric: func(u *User, rb int, grid phy.Grid, now sim.Time) float64 {
			if u.CQIForRB(rb, grid.NumRB) == 0 {
				return 0
			}
			// Older LastServed -> larger metric.
			return 1 + float64(now-u.LastServed)
		},
	}
}
