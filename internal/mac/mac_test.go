package mac

import (
	"testing"

	"outran/internal/phy"
	"outran/internal/sim"
)

func grid() phy.Grid { return phy.Grid{Numerology: phy.Mu0, NumRB: 6, CarrierHz: 2e9} }

func user(id int, cqi phy.CQI, avgTput float64, backlog int) *User {
	return &User{
		ID:         UserID(id),
		SubbandCQI: []phy.CQI{cqi},
		AvgTputBps: avgTput,
		Buffer:     BufferStatus{TotalBytes: backlog},
	}
}

func TestBufferStatusTopPriority(t *testing.T) {
	b := BufferStatus{PerPriority: []int{0, 0, 5, 0}}
	if b.TopPriority() != 2 {
		t.Fatalf("top %d", b.TopPriority())
	}
	b = BufferStatus{PerPriority: []int{0, 0, 0, 0}}
	if b.TopPriority() != 4 {
		t.Fatalf("empty queues top %d, want K", b.TopPriority())
	}
	b = BufferStatus{}
	if b.TopPriority() != 0 {
		t.Fatalf("FIFO top %d, want 0", b.TopPriority())
	}
}

func TestCQIForRBSubbandMapping(t *testing.T) {
	u := &User{SubbandCQI: []phy.CQI{3, 7, 11}}
	if u.CQIForRB(0, 9) != 3 || u.CQIForRB(4, 9) != 7 || u.CQIForRB(8, 9) != 11 {
		t.Fatal("subband mapping wrong")
	}
	empty := &User{}
	if empty.CQIForRB(0, 9) != 0 {
		t.Fatal("no CQI should map to 0")
	}
}

func TestMTSelectsBestChannel(t *testing.T) {
	users := []*User{
		user(0, 5, 1e6, 1000),
		user(1, 15, 1e6, 1000),
		user(2, 10, 1e6, 1000),
	}
	alloc := NewMT().Allocate(0, users, grid())
	for b, o := range alloc.RBOwner {
		if o != 1 {
			t.Fatalf("RB %d to %d, want best-channel user 1", b, o)
		}
	}
}

func TestPFBalancesByAverage(t *testing.T) {
	// Same channel; the user with lower past service wins.
	users := []*User{
		user(0, 10, 8e6, 1000),
		user(1, 10, 1e5, 1000),
	}
	alloc := NewPF().Allocate(0, users, grid())
	for b, o := range alloc.RBOwner {
		if o != 1 {
			t.Fatalf("RB %d to %d, want starved user 1", b, o)
		}
	}
}

func TestPFFrequencySelective(t *testing.T) {
	// Two subbands: each user is better in one; PF should split.
	u0 := &User{ID: 0, SubbandCQI: []phy.CQI{15, 4}, AvgTputBps: 1e6, Buffer: BufferStatus{TotalBytes: 1000}}
	u1 := &User{ID: 1, SubbandCQI: []phy.CQI{4, 15}, AvgTputBps: 1e6, Buffer: BufferStatus{TotalBytes: 1000}}
	alloc := NewPF().Allocate(0, []*User{u0, u1}, grid())
	if alloc.RBOwner[0] != 0 || alloc.RBOwner[5] != 1 {
		t.Fatalf("frequency-selective allocation wrong: %v", alloc.RBOwner)
	}
}

func TestEmptyBuffersSkipped(t *testing.T) {
	users := []*User{user(0, 15, 1e6, 0)}
	alloc := NewPF().Allocate(0, users, grid())
	for _, o := range alloc.RBOwner {
		if o != -1 {
			t.Fatal("allocated to empty-buffer user")
		}
	}
}

// TestAllZeroMetricFallback is the regression test for the silently
// idled RB: when every backlogged user's metric evaluates to m <= 0
// (deep-fade CQI 0 driving the rate to zero), the RB must still be
// assigned to the best backlogged user instead of going unallocated.
func TestAllZeroMetricFallback(t *testing.T) {
	users := []*User{user(0, 0, 1e6, 1000)}
	for _, s := range []Scheduler{NewPF(), NewMT(), NewRR()} {
		alloc := s.Allocate(0, users, grid())
		for _, o := range alloc.RBOwner {
			if o != 0 {
				t.Fatalf("%s idled an RB (owner %d) with a backlogged user", s.Name(), o)
			}
		}
	}
}

// TestAllZeroMetricFallbackPicksBest pins the fallback's tie-break:
// the backlogged user with the best (least negative / highest) metric
// wins, ties to the lowest index — deterministic across runs.
func TestAllZeroMetricFallbackPicksBest(t *testing.T) {
	// Both users CQI 0 -> PF metric 0 for both; lowest index must win.
	users := []*User{user(0, 0, 1e6, 1000), user(1, 0, 1e6, 1000)}
	alloc := NewPF().Allocate(0, users, grid())
	for b, o := range alloc.RBOwner {
		if o != 0 {
			t.Fatalf("RB %d to %d, want lowest-index fallback 0", b, o)
		}
	}
	// An empty-buffer user is never the fallback.
	users[0].Buffer.TotalBytes = 0
	alloc = NewPF().Allocate(0, users, grid())
	for b, o := range alloc.RBOwner {
		if o != 1 {
			t.Fatalf("RB %d to %d, want backlogged fallback 1", b, o)
		}
	}
}

func TestRRPrefersLeastRecentlyServed(t *testing.T) {
	users := []*User{
		user(0, 10, 1e6, 1000),
		user(1, 10, 1e6, 1000),
	}
	users[0].LastServed = 100 * sim.Millisecond
	users[1].LastServed = 5 * sim.Millisecond
	alloc := NewRR().Allocate(200*sim.Millisecond, users, grid())
	for _, o := range alloc.RBOwner {
		if o != 1 {
			t.Fatal("RR did not pick least recently served")
		}
	}
}

func TestSRJFPicksSmallestRemaining(t *testing.T) {
	users := []*User{
		user(0, 15, 1e6, 1000),
		user(1, 2, 1e6, 1000), // terrible channel, shortest flow
		user(2, 10, 1e6, 1000),
	}
	users[0].Buffer.OracleMinRemaining = 100000
	users[1].Buffer.OracleMinRemaining = 500
	users[2].Buffer.OracleMinRemaining = 30000
	alloc := (&SRJF{}).Allocate(0, users, grid())
	for b, o := range alloc.RBOwner {
		if o != 1 {
			t.Fatalf("RB %d to %d: SRJF must ignore channel and pick user 1", b, o)
		}
	}
}

func TestSRJFUnknownSizesLast(t *testing.T) {
	users := []*User{
		user(0, 10, 1e6, 1000),
		user(1, 10, 1e6, 1000),
	}
	users[0].Buffer.OracleMinRemaining = -1 // unknown
	users[1].Buffer.OracleMinRemaining = 1 << 40
	alloc := (&SRJF{}).Allocate(0, users, grid())
	for _, o := range alloc.RBOwner {
		if o != 1 {
			t.Fatal("known size should beat unknown")
		}
	}
}

func TestPSSPrioritySetDominates(t *testing.T) {
	users := []*User{
		user(0, 15, 1e5, 1000), // best channel + starved, but no QoS
		user(1, 8, 1e7, 1000),  // QoS traffic queued
	}
	users[1].Buffer.QoSBytes = 500
	alloc := (&PSS{}).Allocate(0, users, grid())
	for b, o := range alloc.RBOwner {
		if o != 1 {
			t.Fatalf("RB %d to %d: priority set must dominate", b, o)
		}
	}
}

func TestPSSFallsBackToPF(t *testing.T) {
	users := []*User{
		user(0, 10, 1e7, 1000),
		user(1, 10, 1e5, 1000),
	}
	alloc := (&PSS{}).Allocate(0, users, grid())
	for _, o := range alloc.RBOwner {
		if o != 1 {
			t.Fatal("PSS without QoS traffic should behave like PF")
		}
	}
}

func TestCQAWeightGrowsWithHOLDelay(t *testing.T) {
	u := user(0, 10, 1e6, 1000)
	u.Buffer.QoSBytes = 500
	u.Buffer.QoSDelayBudget = 50 * sim.Millisecond
	u.Buffer.QoSHOLArrival = 0
	early := cqaWeight(u, 5*sim.Millisecond)
	late := cqaWeight(u, 45*sim.Millisecond)
	if late <= early {
		t.Fatalf("CQA weight did not grow: %g vs %g", early, late)
	}
	if cqaWeight(user(1, 10, 1e6, 100), 0) != 1 {
		t.Fatal("no-QoS weight should be 1")
	}
}

func TestCQAPreemptsNearDeadline(t *testing.T) {
	users := []*User{
		user(0, 15, 1e6, 1000),
		user(1, 12, 1e6, 1000),
	}
	users[1].Buffer.QoSBytes = 500
	users[1].Buffer.QoSDelayBudget = 50 * sim.Millisecond
	users[1].Buffer.QoSHOLArrival = 0
	alloc := (&CQA{}).Allocate(49*sim.Millisecond, users, grid())
	for _, o := range alloc.RBOwner {
		if o != 1 {
			t.Fatal("CQA did not pre-empt near the delay budget")
		}
	}
}

func TestUpdateAvgTputEWMA(t *testing.T) {
	u := user(0, 10, 0, 0)
	tti := sim.Millisecond
	tf := 100 * sim.Millisecond
	u.UpdateAvgTput(1000, tti, tf) // inst = 1 Mbps, beta = 0.01
	if u.AvgTputBps != 1e4 {
		t.Fatalf("EWMA %g, want 1e4", u.AvgTputBps)
	}
	for i := 0; i < 5000; i++ {
		u.UpdateAvgTput(1000, tti, tf)
	}
	if u.AvgTputBps < 0.95e6 || u.AvgTputBps > 1.05e6 {
		t.Fatalf("EWMA did not converge to 1 Mbps: %g", u.AvgTputBps)
	}
}

func TestUpdateAvgTputDecays(t *testing.T) {
	u := user(0, 10, 1e6, 0)
	for i := 0; i < 2000; i++ {
		u.UpdateAvgTput(0, sim.Millisecond, 100*sim.Millisecond)
	}
	if u.AvgTputBps > 1e3 {
		t.Fatalf("idle EWMA did not decay: %g", u.AvgTputBps)
	}
}

func TestAllocationHelpers(t *testing.T) {
	a := NewAllocation(4)
	for _, o := range a.RBOwner {
		if o != -1 {
			t.Fatal("fresh allocation not empty")
		}
	}
	a.RBOwner[0], a.RBOwner[2] = 1, 1
	if a.RBCount(1) != 2 || a.RBCount(0) != 0 {
		t.Fatal("RBCount wrong")
	}
}

func TestSchedulerNames(t *testing.T) {
	for _, c := range []struct {
		s    Scheduler
		name string
	}{
		{NewPF(), "PF"}, {NewMT(), "MT"}, {NewRR(), "RR"},
		{&SRJF{}, "SRJF"}, {&PSS{}, "PSS"}, {&CQA{}, "CQA"},
	} {
		if c.s.Name() != c.name {
			t.Errorf("name %q, want %q", c.s.Name(), c.name)
		}
	}
}
