package mac

import (
	"math"

	"outran/internal/phy"
	"outran/internal/sim"
)

// The two QoS-aware baselines of §6.2. Both assume the operator has
// identified latency-sensitive flows (the paper grants them oracle
// flow-size knowledge and a 50 ms delay budget for flows < 10 KB);
// OutRAN competes against them without any such prior.

// PSS approximates the NS-3 LENA Priority Set Scheduler: users are
// split into two sets — those with queued QoS traffic form the
// priority set and are served first (time-domain priority), each set
// being scheduled with the PF metric in the frequency domain.
type PSS struct {
	// scratch is the reusable allocation returned by Allocate; see the
	// Scheduler ownership contract.
	scratch Allocation
}

// Name implements Scheduler.
func (*PSS) Name() string { return "PSS" }

// Allocate implements Scheduler.
//
//outran:allocfree
//outran:scratch
func (s *PSS) Allocate(now sim.Time, users []*User, grid phy.Grid) Allocation {
	s.scratch.Reset(grid.NumRB)
	alloc := s.scratch
	for b := 0; b < grid.NumRB; b++ {
		best, bestM := -1, 0.0
		bestQoS := false
		for ui, u := range users {
			if !u.Buffer.Backlogged() {
				continue
			}
			m := PFMetric(u, b, grid, now)
			if m <= 0 {
				continue
			}
			qos := u.Buffer.QoSBytes > 0
			// Priority set strictly dominates.
			if qos && !bestQoS {
				best, bestM, bestQoS = ui, m, true
				continue
			}
			if qos == bestQoS && (best == -1 || m > bestM) {
				best, bestM = ui, m
			}
		}
		alloc.RBOwner[b] = best
	}
	return alloc
}

// CQA approximates the Channel and QoS Aware scheduler (Bojovic &
// Baldo 2014): the per-RB metric is the PF metric weighted by the
// head-of-line delay of the user's QoS traffic relative to its delay
// budget, so QoS packets approaching their budget pre-empt everyone
// else, channel permitting.
type CQA struct {
	// ms is the wrapped metric scheduler, built on first use so the
	// per-TTI path reuses its allocation scratch.
	ms MetricScheduler
}

// Name implements Scheduler.
func (*CQA) Name() string { return "CQA" }

// cqaWeight grows from 1 toward a hard priority as the QoS HOL delay
// approaches the delay budget.
func cqaWeight(u *User, now sim.Time) float64 {
	if u.Buffer.QoSBytes == 0 || u.Buffer.QoSDelayBudget <= 0 {
		return 1
	}
	hol := now - u.Buffer.QoSHOLArrival
	frac := float64(hol) / float64(u.Buffer.QoSDelayBudget)
	if frac < 0 {
		frac = 0
	}
	if frac > 6 {
		frac = 6
	}
	// 2^(2*frac): doubles at half budget, x4 at the budget, and keeps
	// growing past it, emulating the LENA implementation's d_HOL
	// exponent while staying channel-aware.
	return math.Exp2(2 * frac)
}

// Allocate implements Scheduler.
//
//outran:allocfree
//outran:scratch
func (c *CQA) Allocate(now sim.Time, users []*User, grid phy.Grid) Allocation {
	if c.ms.Metric == nil {
		//outran:allocok one-time lazy construction of the wrapped scheduler; never reruns in steady state
		c.ms = MetricScheduler{SchedName: "CQA", Metric: func(u *User, rb int, grid phy.Grid, t sim.Time) float64 {
			return PFMetric(u, rb, grid, t) * cqaWeight(u, t)
		}}
	}
	return c.ms.Allocate(now, users, grid)
}
