package mac

import (
	"fmt"

	"outran/internal/phy"
	"outran/internal/sim"
	"outran/internal/snapshot"
)

// tagUser is the structural sentinel for one user's MAC state.
const tagUser = 0x3a01

// Snapshot encodes the user's persistent MAC state: the per-subband
// CQI view, the PF long-term average (eq. 1), and the RR recency
// stamp. Buffer is refreshed from RLC every TTI before scheduling and
// is deliberately excluded — it is per-TTI scratch, not state.
func (u *User) Snapshot(e *snapshot.Encoder) {
	e.Mark(tagUser)
	e.Int(int(u.ID))
	e.U32(uint32(len(u.SubbandCQI)))
	for _, q := range u.SubbandCQI {
		e.U8(uint8(q))
	}
	e.F64(u.AvgTputBps)
	e.I64(int64(u.LastServed))
}

// Restore overlays a snapshot onto this user. The subband count must
// match the constructed geometry: a mismatch means the snapshot came
// from a different cell configuration.
func (u *User) Restore(d *snapshot.Decoder) error {
	d.Expect(tagUser)
	id := d.Int()
	n := d.Count(1 << 16)
	if d.Err() == nil && id != int(u.ID) {
		d.Fail(fmt.Errorf("%w: user id %d in snapshot, %d constructed", snapshot.ErrCorrupt, id, u.ID))
	}
	if d.Err() == nil && n != len(u.SubbandCQI) {
		d.Fail(fmt.Errorf("%w: %d subbands in snapshot, %d constructed", snapshot.ErrCorrupt, n, len(u.SubbandCQI)))
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		u.SubbandCQI[i] = phy.CQI(d.U8())
	}
	u.AvgTputBps = d.F64()
	u.LastServed = sim.Time(d.I64())
	if err := d.Err(); err != nil {
		return fmt.Errorf("mac: restoring user %d: %w", u.ID, err)
	}
	return nil
}
