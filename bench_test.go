package outran

import (
	"io"
	"testing"

	"outran/internal/experiments"
)

// The Benchmark* functions below regenerate every table and figure of
// the paper at a reduced but shape-preserving scale (Scale 0.25: fewer
// UEs, shorter arrival windows, single seed). Run the full-scale
// versions with `go run ./cmd/outran-bench all`.

// benchOpt is the reduced scale used for the per-figure benches.
func benchOpt() experiments.Options {
	return experiments.Options{Scale: 0.25, Seed: 1}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	f, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := f(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables produced")
		}
		for _, t := range tables {
			t.Fprint(io.Discard)
		}
	}
}

func BenchmarkTable1(b *testing.B)         { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)         { runExperiment(b, "table2") }
func BenchmarkFig3(b *testing.B)           { runExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)           { runExperiment(b, "fig4") }
func BenchmarkFig7(b *testing.B)           { runExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)           { runExperiment(b, "fig8") }
func BenchmarkFig12(b *testing.B)          { runExperiment(b, "fig12") }
func BenchmarkFig13FlowScale(b *testing.B) { runExperiment(b, "fig13") }
func BenchmarkFig14RBScale(b *testing.B)   { runExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)          { runExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)          { runExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)          { runExperiment(b, "fig17") }
func BenchmarkFig18b(b *testing.B)         { runExperiment(b, "fig18b") }
func BenchmarkFig18c(b *testing.B)         { runExperiment(b, "fig18c") }
func BenchmarkFig18d(b *testing.B)         { runExperiment(b, "fig18d") }
func BenchmarkFig19(b *testing.B)          { runExperiment(b, "fig19") }
func BenchmarkFig20(b *testing.B)          { runExperiment(b, "fig20") }
