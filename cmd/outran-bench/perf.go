package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"outran/internal/core"
	"outran/internal/experiments"
	"outran/internal/mac"
	"outran/internal/obs"
	"outran/internal/phy"
	"outran/internal/ran"
	"outran/internal/rlc"
	"outran/internal/sim"
	"outran/internal/workload"
)

// The perf subcommand measures the simulator's hot paths and emits a
// machine-readable report (BENCH_outran.json) the CI perf gate diffs
// against the committed baseline:
//
//	outran-bench perf -json BENCH_outran.json
//	outran-bench perf -baseline BENCH_outran.json -gate 0.10
//
// Gated metrics fail the comparison when they regress by more than the
// gate fraction: the end-to-end ns/TTI numbers (lower is better) and
// the deployment efficiency headlines cells_per_core / ues_per_gb
// (higher is better). Micro-metrics and allocation counts are reported
// but not wall-clock-gated — the allocation counts are pinned exactly
// by the AllocsPerRun tests instead.

// perfMetric is one measurement in the report. Most metrics are
// lower-is-better wall costs keyed on NsPerOp; the deployment
// efficiency headlines (cells_per_core, ues_per_gb) are
// higher-is-better and carry their measurement in Value instead.
type perfMetric struct {
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Value holds the measurement for direction-aware metrics that are
	// not per-op wall costs.
	Value float64 `json:"value,omitempty"`
	// Gated marks the metric as enforced by the CI regression gate.
	Gated bool `json:"gated,omitempty"`
	// HigherBetter flips the gate direction: the metric fails when
	// Value drops below baseline by more than the gate fraction.
	HigherBetter bool `json:"higher_better,omitempty"`
}

// perfReport is the BENCH_outran.json schema.
type perfReport struct {
	Schema  int                   `json:"schema"`
	Go      string                `json:"go"`
	Metrics map[string]perfMetric `json:"metrics"`
}

func runPerf(argv []string) {
	fs := flag.NewFlagSet("perf", flag.ExitOnError)
	jsonOut := fs.String("json", "", "write the report as JSON to this file ('-' for stdout)")
	baseline := fs.String("baseline", "", "compare against this baseline report; exit 1 on regression")
	gate := fs.Float64("gate", 0.10, "allowed fractional regression for gated metrics")
	repeat := fs.Int("repeat", 3, "end-to-end repetitions; the fastest is reported")
	maxRSS := fs.Int("max-rss-mb", 0, "fail if the capacity deployment's peak RSS exceeds this budget in MB (0 = no budget)")
	fs.Parse(argv)

	rep := perfReport{
		Schema:  1,
		Go:      runtime.Version(),
		Metrics: map[string]perfMetric{},
	}

	for _, c := range []struct {
		key   string
		sched ran.SchedulerKind
	}{
		{"sim_pf_ns_per_tti", ran.SchedPF},
		{"sim_outran_ns_per_tti", ran.SchedOutRAN},
	} {
		m := measureSimTTI(c.sched, *repeat)
		m.Gated = true
		rep.Metrics[c.key] = m
		fmt.Fprintf(os.Stderr, "%-28s %10.0f ns/TTI\n", c.key, m.NsPerOp)
	}

	// Sub-TTI phase attribution from one profiled run. Reported but
	// never gated: the per-phase split shifts with inlining and runner
	// noise far more than the end-to-end number, and comparePerf skips
	// metrics absent from the baseline anyway.
	for key, v := range measurePhases(*repeat) {
		rep.Metrics[key] = perfMetric{NsPerOp: v}
		fmt.Fprintf(os.Stderr, "%-28s %10.0f ns/TTI\n", key, v)
	}

	rep.Metrics["sched_pf_allocate_20x50"] = benchToMetric(
		benchAllocatePerf(mac.NewPF()), allocsPerTTI(mac.NewPF()))
	rep.Metrics["sched_outran_allocate_20x50"] = benchToMetric(
		benchAllocatePerf(newPerfInterUser()), allocsPerTTI(newPerfInterUser()))
	rep.Metrics["encode_rlc_header"] = benchToMetric(benchRLCHeader(), -1)
	rep.Metrics["event_engine_schedule"] = benchToMetric(benchEngine(), -1)
	for _, k := range []string{"sched_pf_allocate_20x50", "sched_outran_allocate_20x50", "encode_rlc_header", "event_engine_schedule"} {
		m := rep.Metrics[k]
		fmt.Fprintf(os.Stderr, "%-28s %10.1f ns/op %6d B/op %8.1f allocs/op\n", k, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}

	measureCapacity(&rep, *repeat, *maxRSS)

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		buf = append(buf, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(buf)
		} else if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fatal(err)
		}
	}
	if *baseline != "" {
		if err := comparePerf(*baseline, rep, *gate); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "perf gate: OK")
	}
}

// measureCapacity runs the fixed capacity deployment (16 cells × 12
// UEs, OutRAN, load 0.6, streaming FCT) and folds the efficiency
// headlines into the report: cells_per_core and ues_per_gb, both gated
// higher-is-better, plus the ungated peak RSS for the record. With a
// budget it also enforces the peak-RSS bound the CI smoke documents.
func measureCapacity(rep *perfReport, repeat, maxRSSMB int) {
	spec := experiments.CapacitySpec{
		Cells:      16,
		UEsPerCell: 12,
		RBs:        25,
		Load:       0.6,
		Window:     1 * sim.Second,
		Drain:      1 * sim.Second,
		Seed:       1,
	}
	var best experiments.CapacityPoint
	for r := 0; r < repeat; r++ {
		pt, err := experiments.MeasureDeployment(spec)
		if err != nil {
			fatal(err)
		}
		// Fastest run wins the throughput headline; peak RSS is the
		// process high-water mark and identical across repetitions.
		if pt.CellsPerCore > best.CellsPerCore {
			best = pt
		}
	}
	rssMB := float64(best.PeakRSS) / (1 << 20)
	rep.Metrics["cells_per_core"] = perfMetric{Value: best.CellsPerCore, Gated: true, HigherBetter: true}
	rep.Metrics["ues_per_gb"] = perfMetric{Value: best.UEsPerGB, Gated: true, HigherBetter: true}
	rep.Metrics["deploy_peak_rss_mb"] = perfMetric{Value: rssMB}
	fmt.Fprintf(os.Stderr, "%-28s %10.2f cells/core (%d cells, %d workers, %.2fs wall)\n",
		"cells_per_core", best.CellsPerCore, best.Cells, best.Workers, best.WallSeconds)
	fmt.Fprintf(os.Stderr, "%-28s %10.0f UEs/GB (%d UEs, peak RSS %.0f MB)\n",
		"ues_per_gb", best.UEsPerGB, best.UEs, rssMB)
	if maxRSSMB > 0 && rssMB > float64(maxRSSMB) {
		fatal(fmt.Errorf("capacity deployment peak RSS %.0f MB exceeds the %d MB budget", rssMB, maxRSSMB))
	}
}

// comparePerf fails when a gated metric regresses past the gate
// fraction: ns/op rising for wall-cost metrics, Value falling for
// higher-is-better ones. Metrics missing from either side are skipped
// so the gate survives metric additions.
func comparePerf(path string, cur perfReport, gate float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("perf gate: %w", err)
	}
	var base perfReport
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("perf gate: %s: %w", path, err)
	}
	for key, bm := range base.Metrics {
		if !bm.Gated {
			continue
		}
		cm, ok := cur.Metrics[key]
		if !ok {
			continue
		}
		if bm.HigherBetter {
			if bm.Value <= 0 {
				continue
			}
			ratio := cm.Value / bm.Value
			if ratio < 1-gate {
				return fmt.Errorf("perf gate: %s regressed %.1f%%: %.2f -> %.2f (gate %.0f%%)",
					key, (1-ratio)*100, bm.Value, cm.Value, gate*100)
			}
			fmt.Fprintf(os.Stderr, "perf gate: %-28s %+6.1f%% (%.2f -> %.2f)\n",
				key, (ratio-1)*100, bm.Value, cm.Value)
			continue
		}
		if bm.NsPerOp <= 0 {
			continue
		}
		ratio := cm.NsPerOp / bm.NsPerOp
		if ratio > 1+gate {
			return fmt.Errorf("perf gate: %s regressed %.1f%%: %.0f -> %.0f ns/op (gate %.0f%%)",
				key, (ratio-1)*100, bm.NsPerOp, cm.NsPerOp, gate*100)
		}
		fmt.Fprintf(os.Stderr, "perf gate: %-28s %+6.1f%% (%.0f -> %.0f ns/op)\n",
			key, (ratio-1)*100, bm.NsPerOp, cm.NsPerOp)
	}
	return nil
}

// measureSimTTI runs the standard harness end to end and reports wall
// nanoseconds per simulated TTI — the headline number the CI gate
// protects. The fastest of repeat runs is reported to shed scheduler
// noise on shared runners.
func measureSimTTI(sched ran.SchedulerKind, repeat int) perfMetric {
	best := math.MaxFloat64
	for r := 0; r < repeat; r++ {
		cfg := ran.DefaultLTEConfig()
		cfg.Grid.NumRB = 25
		cfg.NumUEs = 12
		cfg.Scheduler = sched
		h := ran.Harness{
			Config: cfg.WithWorkload(workload.PoissonSpec("lte", 0.6)),
			Warmup: 100 * sim.Millisecond,
			Window: 1 * sim.Second,
			Tail:   100 * sim.Millisecond,
			Drain:  200 * sim.Millisecond,
		}
		//outran:wallclock perf measurement; never enters simulated results
		start := time.Now()
		cell, err := h.Run()
		if err != nil {
			fatal(err)
		}
		//outran:wallclock perf measurement; never enters simulated results
		elapsed := float64(time.Since(start).Nanoseconds())
		ttis := float64(h.Total() / cell.Config().Grid.TTI())
		if v := elapsed / ttis; v < best {
			best = v
		}
	}
	return perfMetric{NsPerOp: best}
}

// measurePhases runs the OutRAN harness once per repetition with the
// sub-TTI phase profiler installed and reports, per phase, the lowest
// mean wall ns/TTI seen — keyed phase_<name>_ns_per_tti.
func measurePhases(repeat int) map[string]float64 {
	best := map[string]float64{}
	for r := 0; r < repeat; r++ {
		cfg := ran.DefaultLTEConfig()
		cfg.Grid.NumRB = 25
		cfg.NumUEs = 12
		cfg.Scheduler = ran.SchedOutRAN
		h := ran.Harness{
			Config: cfg.WithWorkload(workload.PoissonSpec("lte", 0.6)),
			Warmup: 100 * sim.Millisecond,
			Window: 1 * sim.Second,
			Tail:   100 * sim.Millisecond,
			Drain:  200 * sim.Millisecond,
		}
		cell, err := h.Build()
		if err != nil {
			fatal(err)
		}
		cell.SetPhaseProfiler(obs.NewPhaseProfiler())
		cell.Run(h.Total())
		for name, v := range cell.PhaseProfiler().NsPerTTI() {
			key := "phase_" + name + "_ns_per_tti"
			if b, ok := best[key]; !ok || v < b {
				best[key] = v
			}
		}
	}
	return best
}

// newPerfInterUser builds the OutRAN inter-user scheduler with the
// default relaxation for the micro benches.
func newPerfInterUser() mac.Scheduler {
	s, err := core.NewInterUser(mac.PFMetric, "PF", core.DefaultConfig().Epsilon)
	if err != nil {
		fatal(err)
	}
	return s
}

// perfUsers mirrors the mac package's benchmark population: 20 users,
// 50 RBs, mixed CQI, all backlogged.
func perfUsers(n, subbands int) []*mac.User {
	us := make([]*mac.User, n)
	for i := range us {
		cq := make([]phy.CQI, subbands)
		for b := range cq {
			cq[b] = phy.CQI(1 + (i+b)%15)
		}
		perPrio := make([]int, 4)
		perPrio[i%4] = 1000
		us[i] = &mac.User{
			ID:         mac.UserID(i),
			SubbandCQI: cq,
			AvgTputBps: 1e6 * float64(1+i%7),
			Buffer:     mac.BufferStatus{TotalBytes: 1000, PerPriority: perPrio},
		}
	}
	return us
}

func perfGrid() phy.Grid {
	return phy.Grid{Numerology: phy.Mu0, NumRB: 50, CarrierHz: 2e9}
}

func benchAllocatePerf(s mac.Scheduler) testing.BenchmarkResult {
	users := perfUsers(20, 12)
	g := perfGrid()
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Allocate(0, users, g)
		}
	})
}

// allocsPerTTI measures steady-state allocations per Allocate call via
// testing.AllocsPerRun — the same measurement the zero-alloc tests pin.
func allocsPerTTI(s mac.Scheduler) float64 {
	users := perfUsers(20, 12)
	g := perfGrid()
	return testing.AllocsPerRun(200, func() { s.Allocate(0, users, g) })
}

func benchRLCHeader() testing.BenchmarkResult {
	p := &rlc.PDU{SN: 42, Segments: []rlc.Segment{
		{Offset: 10, Len: 700},
		{Offset: 0, Len: 800, Last: true},
	}}
	buf := make([]byte, 0, 64)
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = p.AppendWireHeader(buf[:0])
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchEngine() testing.BenchmarkResult {
	var e sim.Engine
	fn := func() {}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.At(e.Now(), fn)
			e.Run()
		}
	})
}

// benchToMetric folds a BenchmarkResult into the report, optionally
// overriding the allocation count with an AllocsPerRun measurement
// (allocs < 0 keeps the benchmark's own count).
func benchToMetric(r testing.BenchmarkResult, allocs float64) perfMetric {
	if allocs < 0 {
		allocs = float64(r.AllocsPerOp())
	}
	return perfMetric{
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: allocs,
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
